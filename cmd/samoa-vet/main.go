// Command samoa-vet statically checks microprotocol isolation and
// concurrency contracts (see internal/analysis). It loads the named
// package patterns, runs the eight analyzers, and exits 1 if anything
// was found:
//
//	samoa-vet ./internal/... ./examples/... ./cmd/...
//	samoa-vet -checks lockorder,atomics ./internal/cc
//	samoa-vet -json ./...     # machine-readable findings for CI
//	samoa-vet -github ./...   # GitHub Actions error annotations
//	samoa-vet -stats ./...    # per-package model + per-check findings/elapsed
//
// Deliberate findings are silenced in source with //samoa:ignore <check>
// — rationale, on the flagged line or the line above it; the ignores
// check audits those directives (rationale present, check name known,
// suppression still live), so suppressions cannot rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array")
		githubOut = flag.Bool("github", false, "emit findings as GitHub Actions annotations")
		checks    = flag.String("checks", "all", "comma-separated checks to run ("+strings.Join(analysis.CheckNames(), ",")+")")
		list      = flag.Bool("list", false, "list the available checks and exit")
		stats     = flag.Bool("stats", false, "print per-package model and per-check findings/elapsed statistics to stderr")
	)
	flag.Parse()

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samoa-vet:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "samoa-vet:", err)
		os.Exit(2)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samoa-vet:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	perCheck := make(map[string]analysis.CheckStat)
	loadFailed := false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "samoa-vet:", err)
			loadFailed = true
			continue
		}
		pkgDiags, pkgStats := analysis.RunChecksStats(pkg, analyzers)
		diags = append(diags, pkgDiags...)
		if *stats {
			for _, s := range pkgStats {
				agg := perCheck[s.Name]
				agg.Name = s.Name
				agg.Findings += s.Findings
				agg.Elapsed += s.Elapsed
				perCheck[s.Name] = agg
			}
			model := analysis.ExtractModel(pkg)
			resolvedSpecs := 0
			for _, s := range model.IsoSites {
				if s.Spec != nil && s.Spec.SpecComplete {
					resolvedSpecs++
				}
			}
			fmt.Fprintf(os.Stderr, "samoa-vet: %-40s handlers=%-3d bindings=%-3d isosites=%-3d resolved-specs=%d\n",
				pkg.ImportPath, len(model.Handlers), len(model.Bindings), len(model.IsoSites), resolvedSpecs)
		}
	}
	if *stats {
		// Aggregate per-check table, in the analyzers' run order.
		for _, a := range analyzers {
			s, ok := perCheck[a.Name]
			if !ok {
				continue
			}
			fmt.Fprintf(os.Stderr, "samoa-vet: check %-12s findings=%-4d elapsed=%s\n",
				s.Name, s.Findings, s.Elapsed.Round(time.Microsecond))
		}
	}

	// Report paths relative to the module root so output is stable
	// across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModuleRoot, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "samoa-vet:", err)
			os.Exit(2)
		}
	case *githubOut:
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=samoa-vet/%s::%s\n",
				d.File, d.Line, d.Column, d.Check, d.Message)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(diags) > 0:
		os.Exit(1)
	}
}
