// Command samoa-vet statically checks microprotocol isolation contracts
// (see internal/analysis). It loads the named package patterns, runs the
// five analyzers, and exits 1 if anything was found:
//
//	samoa-vet ./internal/... ./examples/...
//	samoa-vet -checks footprint,blocking ./internal/gc
//	samoa-vet -json ./...     # machine-readable findings for CI
//	samoa-vet -github ./...   # GitHub Actions error annotations
//
// Deliberate findings are silenced in source with //samoa:ignore <check>
// on the flagged line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array")
		githubOut = flag.Bool("github", false, "emit findings as GitHub Actions annotations")
		checks    = flag.String("checks", "all", "comma-separated checks to run (footprint,readonly,nestediso,blocking,routecycle)")
		list      = flag.Bool("list", false, "list the available checks and exit")
		stats     = flag.Bool("stats", false, "print per-package model-extraction statistics to stderr")
	)
	flag.Parse()

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samoa-vet:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "samoa-vet:", err)
		os.Exit(2)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samoa-vet:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	loadFailed := false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "samoa-vet:", err)
			loadFailed = true
			continue
		}
		diags = append(diags, analysis.RunChecks(pkg, analyzers)...)
		if *stats {
			model := analysis.ExtractModel(pkg)
			resolvedSpecs := 0
			for _, s := range model.IsoSites {
				if s.Spec != nil && s.Spec.SpecComplete {
					resolvedSpecs++
				}
			}
			fmt.Fprintf(os.Stderr, "samoa-vet: %-40s handlers=%-3d bindings=%-3d isosites=%-3d resolved-specs=%d\n",
				pkg.ImportPath, len(model.Handlers), len(model.Bindings), len(model.IsoSites), resolvedSpecs)
		}
	}

	// Report paths relative to the module root so output is stable
	// across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModuleRoot, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "samoa-vet:", err)
			os.Exit(2)
		}
	case *githubOut:
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=samoa-vet/%s::%s\n",
				d.File, d.Line, d.Column, d.Check, d.Message)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(diags) > 0:
		os.Exit(1)
	}
}
