package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// requireLoopbackUDP skips socket tests in environments without a
// usable loopback UDP stack (some sandboxes forbid it).
func requireLoopbackUDP(t *testing.T) {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	c.Close()
}

// nodeProc is one running samoa-node process.
type nodeProc struct {
	cmd      *exec.Cmd
	httpAddr string
	done     chan error
}

// buildNode compiles the samoa-node binary once per test.
func buildNode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "samoa-node")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building samoa-node: %v\n%s", err, out)
	}
	return bin
}

// startNode launches one samoa-node process and waits for its announce
// line. extraFile, when non-nil, is passed as fd 3 (-conn-fd 3).
func startNode(t *testing.T, bin string, args []string, extraFile *os.File) *nodeProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if extraFile != nil {
		cmd.ExtraFiles = []*os.File{extraFile}
	}
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	if extraFile != nil {
		extraFile.Close()
	}
	p := &nodeProc{cmd: cmd, done: make(chan error, 1)}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	// The first stdout line announces the node's real addresses.
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		io.Copy(io.Discard, stdout) // keep draining so the child never blocks
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatalf("node exited before announcing itself (args %v)", args)
		}
		var id int
		var udp, httpAddr string
		if _, err := fmt.Sscanf(line, "samoa-node id=%d udp=%s http=%s", &id, &udp, &httpAddr); err != nil {
			t.Fatalf("node announced %q: %v", line, err)
		}
		p.httpAddr = httpAddr
	case <-time.After(30 * time.Second):
		t.Fatalf("node never announced itself (args %v)", args)
	}
	go func() { p.done <- cmd.Wait() }()
	return p
}

// TestThreeProcessCluster boots three real samoa-node processes on
// loopback and drives replicated kvstore traffic end-to-end over their
// HTTP APIs. Flake hygiene: the test binds every UDP socket itself on
// kernel-assigned ports and hands them to the children as inherited
// descriptors (-conn-fd), so no port is ever guessed; HTTP listeners
// bind port 0 and report their address on stdout; all waits are
// deadline polls, not sleeps.
func TestThreeProcessCluster(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("relies on Unix fd inheritance")
	}
	requireLoopbackUDP(t)

	bin := buildNode(t)

	// Bind the cluster's UDP sockets up front: the full address list
	// exists before any process starts, with zero port guessing.
	const n = 3
	conns := make([]*net.UDPConn, n)
	addrs := make([]string, n)
	for i := range conns {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = pc.(*net.UDPConn)
		addrs[i] = pc.LocalAddr().String()
	}
	peerList := strings.Join(addrs, ",")

	procs := make([]*nodeProc, n)
	for i := 0; i < n; i++ {
		f, err := conns[i].File() // dup for the child
		if err != nil {
			t.Fatal(err)
		}
		conns[i].Close() // the child's dup keeps the socket alive
		procs[i] = startNode(t, bin, []string{
			"-id", fmt.Sprint(i),
			"-peers", peerList,
			"-conn-fd", "3",
			"-http", "127.0.0.1:0",
			"-rto", "15ms", "-fd-interval", "10ms"}, f)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	put := func(node int, key, val string) error {
		req, _ := http.NewRequest("PUT",
			"http://"+procs[node].httpAddr+"/kv/"+key, strings.NewReader(val))
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			return fmt.Errorf("put via node %d: HTTP %d", node, resp.StatusCode)
		}
		return nil
	}
	get := func(node int, key string) (string, bool, error) {
		resp, err := client.Get("http://" + procs[node].httpAddr + "/kv/" + key)
		if err != nil {
			return "", false, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", false, err
		}
		return string(body), resp.StatusCode == http.StatusOK, nil
	}

	// A write through node 0 becomes readable on every replica.
	if err := put(0, "greeting", "hello"); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < n; node++ {
		deadline := time.Now().Add(30 * time.Second)
		for {
			v, ok, err := get(node, "greeting")
			if err != nil {
				t.Fatalf("get via node %d: %v", node, err)
			}
			if ok && v == "hello" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never saw greeting=hello (got %q, %v)", node, v, ok)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Sustained traffic: concurrent writers spread over all three
	// processes; every write waits for its replicated apply, so ops/s
	// here is end-to-end total-order throughput over real sockets.
	const writers, perWriter = 6, 10
	start := time.Now()
	var wg sync.WaitGroup
	werrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				if err := put(w%n, fmt.Sprintf("w%d-k%d", w, k), fmt.Sprint(k)); err != nil {
					werrs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for w, err := range werrs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	ops := writers * perWriter
	t.Logf("3-process cluster: %d replicated writes in %v (%.0f ops/s, %.0f applies/s cluster-wide)",
		ops, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds(),
		float64(ops*n)/elapsed.Seconds())

	// Live reconfiguration over real sockets: a protocol bump proposed on
	// one node rides the total order, and every process hot-swaps its app
	// microprotocol — statusz must show epoch 2 and app_version 2
	// everywhere, with the store still serving.
	resp, err := client.Post("http://"+procs[1].httpAddr+"/reconfigure/2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("reconfigure: HTTP %d", resp.StatusCode)
	}
	type statusz struct {
		Epoch      uint64 `json:"epoch"`
		AppVersion uint16 `json:"app_version"`
	}
	for node := 0; node < n; node++ {
		deadline := time.Now().Add(30 * time.Second)
		for {
			var st statusz
			resp, err := client.Get("http://" + procs[node].httpAddr + "/statusz")
			if err == nil {
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
			}
			if err == nil && st.Epoch == 2 && st.AppVersion == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never reached epoch 2 / app v2 (last: %+v, err %v)", node, st, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := put(1, "post-upgrade", "ok"); err != nil {
		t.Fatalf("write after live upgrade: %v", err)
	}

	// Convergence marker, then graceful shutdown: SIGTERM must drain and
	// exit 0 on every node.
	if err := put(2, "done", "yes"); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < n; node++ {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if v, ok, _ := get(node, "done"); ok && v == "yes" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never converged on done=yes", node)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i, p := range procs {
		if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatalf("signalling node %d: %v", i, err)
		}
	}
	for i, p := range procs {
		select {
		case err := <-p.done:
			if err != nil {
				t.Errorf("node %d exited with %v; want clean drain", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d did not exit after SIGINT", i)
		}
	}
}

// TestCrashRejoinProcess is the end-to-end crash-recovery proof over
// real UDP: a node process is SIGKILLed, the survivors remove it and
// keep writing, then a *fresh process* (same ID, empty state) rejoins
// via -join-via and must serve keys written before its crash-window
// join — state it can only have received through the snapshot handoff.
func TestCrashRejoinProcess(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("relies on Unix fd inheritance")
	}
	requireLoopbackUDP(t)
	bin := buildNode(t)

	const n = 3
	conns := make([]*net.UDPConn, n)
	addrs := make([]string, n)
	for i := range conns {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = pc.(*net.UDPConn)
		addrs[i] = pc.LocalAddr().String()
	}
	peerList := strings.Join(addrs, ",")

	procs := make([]*nodeProc, n)
	for i := 0; i < n; i++ {
		f, err := conns[i].File()
		if err != nil {
			t.Fatal(err)
		}
		conns[i].Close()
		procs[i] = startNode(t, bin, []string{
			"-id", fmt.Sprint(i),
			"-peers", peerList,
			"-conn-fd", "3",
			"-http", "127.0.0.1:0",
			"-rto", "15ms", "-fd-interval", "10ms"}, f)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	put := func(node int, key, val string) error {
		req, _ := http.NewRequest("PUT",
			"http://"+procs[node].httpAddr+"/kv/"+key, strings.NewReader(val))
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			return fmt.Errorf("put via node %d: HTTP %d", node, resp.StatusCode)
		}
		return nil
	}
	get := func(node int, key string) (string, bool) {
		resp, err := client.Get("http://" + procs[node].httpAddr + "/kv/" + key)
		if err != nil {
			return "", false
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", false
		}
		return string(body), resp.StatusCode == http.StatusOK
	}
	statusView := func(node int) string {
		resp, err := client.Get("http://" + procs[node].httpAddr + "/statusz")
		if err != nil {
			return ""
		}
		defer resp.Body.Close()
		var st struct {
			View string `json:"view"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return ""
		}
		return st.View
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Pre-crash state, replicated everywhere.
	if err := put(0, "pre-crash", "survives"); err != nil {
		t.Fatal(err)
	}
	waitFor("pre-crash key on all replicas", func() bool {
		for node := 0; node < n; node++ {
			if v, ok := get(node, "pre-crash"); !ok || v != "survives" {
				return false
			}
		}
		return true
	})

	// Kill node 2's process outright and remove it from the group.
	if err := procs[2].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-procs[2].done
	resp, err := client.Post("http://"+procs[0].httpAddr+"/leave/2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("leave: HTTP %d", resp.StatusCode)
	}
	waitFor("survivors to install {0,1}", func() bool {
		return statusView(0) == "{0,1}" && statusView(1) == "{0,1}"
	})

	// A write while node 2 is down: it must reach the rejoiner via the
	// snapshot, never via delivery.
	if err := put(1, "while-down", "missed"); err != nil {
		t.Fatal(err)
	}

	// Fresh process, same ID: binds the same UDP address itself (the old
	// socket died with the process) and asks node 0 for admission.
	procs[2] = startNode(t, bin, []string{
		"-id", "2",
		"-peers", peerList,
		"-http", "127.0.0.1:0",
		"-rto", "15ms", "-fd-interval", "10ms",
		"-join-via", procs[0].httpAddr}, nil)

	waitFor("all nodes to install {0,1,2}", func() bool {
		for node := 0; node < n; node++ {
			if statusView(node) != "{0,1,2}" {
				return false
			}
		}
		return true
	})
	// The acceptance check: the restarted process serves keys written
	// before its join — proof of state transfer over real UDP.
	waitFor("rejoined node to serve pre-crash state", func() bool {
		v1, ok1 := get(2, "pre-crash")
		v2, ok2 := get(2, "while-down")
		return ok1 && v1 == "survives" && ok2 && v2 == "missed"
	})

	// And it participates in replication going forward.
	if err := put(2, "post-rejoin", "live"); err != nil {
		t.Fatal(err)
	}
	waitFor("post-rejoin key on all replicas", func() bool {
		for node := 0; node < n; node++ {
			if v, ok := get(node, "post-rejoin"); !ok || v != "live" {
				return false
			}
		}
		return true
	})

	// Graceful shutdown of the final cluster.
	for node := 0; node < n; node++ {
		if err := procs[node].cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
	}
	for node := 0; node < n; node++ {
		select {
		case err := <-procs[node].done:
			if err != nil {
				t.Errorf("node %d exited with %v; want clean drain", node, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d did not exit after SIGINT", node)
		}
	}
}
