package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// requireLoopbackUDP skips socket tests in environments without a
// usable loopback UDP stack (some sandboxes forbid it).
func requireLoopbackUDP(t *testing.T) {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	c.Close()
}

// nodeProc is one running samoa-node process.
type nodeProc struct {
	cmd      *exec.Cmd
	httpAddr string
	done     chan error
}

// TestThreeProcessCluster boots three real samoa-node processes on
// loopback and drives replicated kvstore traffic end-to-end over their
// HTTP APIs. Flake hygiene: the test binds every UDP socket itself on
// kernel-assigned ports and hands them to the children as inherited
// descriptors (-conn-fd), so no port is ever guessed; HTTP listeners
// bind port 0 and report their address on stdout; all waits are
// deadline polls, not sleeps.
func TestThreeProcessCluster(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("relies on Unix fd inheritance")
	}
	requireLoopbackUDP(t)

	bin := filepath.Join(t.TempDir(), "samoa-node")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building samoa-node: %v\n%s", err, out)
	}

	// Bind the cluster's UDP sockets up front: the full address list
	// exists before any process starts, with zero port guessing.
	const n = 3
	conns := make([]*net.UDPConn, n)
	addrs := make([]string, n)
	for i := range conns {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = pc.(*net.UDPConn)
		addrs[i] = pc.LocalAddr().String()
	}
	peerList := strings.Join(addrs, ",")

	procs := make([]*nodeProc, n)
	for i := 0; i < n; i++ {
		f, err := conns[i].File() // dup for the child
		if err != nil {
			t.Fatal(err)
		}
		conns[i].Close() // the child's dup keeps the socket alive

		cmd := exec.Command(bin,
			"-id", fmt.Sprint(i),
			"-peers", peerList,
			"-conn-fd", "3",
			"-http", "127.0.0.1:0",
			"-rto", "15ms", "-fd-interval", "10ms")
		cmd.ExtraFiles = []*os.File{f}
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		p := &nodeProc{cmd: cmd, done: make(chan error, 1)}
		procs[i] = p
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

		// The first stdout line announces the node's real addresses.
		lines := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			if sc.Scan() {
				lines <- sc.Text()
			}
			close(lines)
			io.Copy(io.Discard, stdout) // keep draining so the child never blocks
		}()
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("node %d exited before announcing itself", i)
			}
			var id int
			var udp, httpAddr string
			if _, err := fmt.Sscanf(line, "samoa-node id=%d udp=%s http=%s", &id, &udp, &httpAddr); err != nil {
				t.Fatalf("node %d announced %q: %v", i, line, err)
			}
			p.httpAddr = httpAddr
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d never announced itself", i)
		}
		go func() { p.done <- cmd.Wait() }()
	}

	client := &http.Client{Timeout: 30 * time.Second}
	put := func(node int, key, val string) error {
		req, _ := http.NewRequest("PUT",
			"http://"+procs[node].httpAddr+"/kv/"+key, strings.NewReader(val))
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			return fmt.Errorf("put via node %d: HTTP %d", node, resp.StatusCode)
		}
		return nil
	}
	get := func(node int, key string) (string, bool, error) {
		resp, err := client.Get("http://" + procs[node].httpAddr + "/kv/" + key)
		if err != nil {
			return "", false, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", false, err
		}
		return string(body), resp.StatusCode == http.StatusOK, nil
	}

	// A write through node 0 becomes readable on every replica.
	if err := put(0, "greeting", "hello"); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < n; node++ {
		deadline := time.Now().Add(30 * time.Second)
		for {
			v, ok, err := get(node, "greeting")
			if err != nil {
				t.Fatalf("get via node %d: %v", node, err)
			}
			if ok && v == "hello" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never saw greeting=hello (got %q, %v)", node, v, ok)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Sustained traffic: concurrent writers spread over all three
	// processes; every write waits for its replicated apply, so ops/s
	// here is end-to-end total-order throughput over real sockets.
	const writers, perWriter = 6, 10
	start := time.Now()
	var wg sync.WaitGroup
	werrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				if err := put(w%n, fmt.Sprintf("w%d-k%d", w, k), fmt.Sprint(k)); err != nil {
					werrs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for w, err := range werrs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	ops := writers * perWriter
	t.Logf("3-process cluster: %d replicated writes in %v (%.0f ops/s, %.0f applies/s cluster-wide)",
		ops, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds(),
		float64(ops*n)/elapsed.Seconds())

	// Convergence marker, then graceful shutdown: SIGTERM must drain and
	// exit 0 on every node.
	if err := put(2, "done", "yes"); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < n; node++ {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if v, ok, _ := get(node, "done"); ok && v == "yes" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never converged on done=yes", node)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i, p := range procs {
		if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatalf("signalling node %d: %v", i, err)
		}
	}
	for i, p := range procs {
		select {
		case err := <-p.done:
			if err != nil {
				t.Errorf("node %d exited with %v; want clean drain", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d did not exit after SIGINT", i)
		}
	}
}
