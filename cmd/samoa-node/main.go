// Command samoa-node runs one site of the replicated key-value store
// over real UDP sockets — the paper's "distributed machines" deployment
// (§7) of the stack this repository otherwise exercises in-process: the
// full SAMOA microprotocol pipeline (RelComm, RelCast, FD, Consensus,
// ABcast, Membership) under a versioning concurrency controller,
// carried by internal/transport/udpnet.
//
// A cluster is an address list; each process hosts one entry:
//
//	samoa-node -id 0 -peers 127.0.0.1:7841,127.0.0.1:7842,127.0.0.1:7843 -http 127.0.0.1:7851 &
//	samoa-node -id 1 -peers 127.0.0.1:7841,127.0.0.1:7842,127.0.0.1:7843 -http 127.0.0.1:7852 &
//	samoa-node -id 2 -peers 127.0.0.1:7841,127.0.0.1:7842,127.0.0.1:7843 -http 127.0.0.1:7853 &
//
// Clients speak HTTP to any node (writes ride the total order to every
// replica; reads are local):
//
//	samoa-node -server 127.0.0.1:7851 put greeting hello
//	samoa-node -server 127.0.0.1:7852 get greeting        # → hello, replicated
//	samoa-node -server 127.0.0.1:7853 cas greeting hello goodbye
//	samoa-node -server 127.0.0.1:7851 upgrade 2   # live protocol bump, zero downtime
//	samoa-node -server 127.0.0.1:7851 stats
//
// On startup the node prints one machine-parseable line:
//
//	samoa-node id=0 udp=127.0.0.1:7841 http=127.0.0.1:7851
//
// so harnesses that bind kernel-assigned ports (-http 127.0.0.1:0, or a
// -conn-fd inherited UDP socket) can discover the real addresses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/gc"
	"repro/internal/kvstore"
	"repro/internal/transport"
	"repro/internal/transport/udpnet"
)

func main() {
	id := flag.Int("id", 0, "this node's ID (index into -peers)")
	peers := flag.String("peers", "", "comma-separated UDP address per node, indexed by ID")
	httpAddr := flag.String("http", "127.0.0.1:0", "HTTP listen address for the KV API")
	connFD := flag.Int("conn-fd", -1, "inherited file descriptor to use as the local UDP socket (for harnesses that pre-bind port-0 sockets)")
	rto := flag.Duration("rto", 15*time.Millisecond, "retransmission timeout")
	fdInterval := flag.Duration("fd-interval", 25*time.Millisecond, "failure-detector heartbeat period")
	joinVia := flag.String("join-via", "", "HTTP address of a live member to request admission from at startup (crash-rejoin); empty for initial cluster boot")
	server := flag.String("server", "", "client mode: HTTP address of a running node; followed by get|put|del|cas|upgrade|stats and arguments")
	flag.Parse()

	if *server != "" {
		os.Exit(runClient(*server, flag.Args()))
	}
	if err := runNode(*id, *peers, *httpAddr, *connFD, *rto, *fdInterval, *joinVia); err != nil {
		fmt.Fprintf(os.Stderr, "samoa-node: %v\n", err)
		os.Exit(1)
	}
}

// backoff sleeps for attempt's capped exponential delay with ±50%
// jitter, so colliding retriers (several clients, a rejoining node)
// spread out instead of thundering together.
func backoff(attempt int) {
	d := 50 * time.Millisecond << uint(attempt)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	time.Sleep(d)
}

// retriable reports whether an HTTP outcome is worth retrying: network
// errors and 5xx responses are transient (a 503 means the replica could
// not currently replicate — e.g. quorum loss — which heals); 4xx is an
// answer, not a fault.
func retriable(code int, err error) bool {
	return err != nil || code >= 500
}

func runNode(id int, peers, httpAddr string, connFD int, rto, fdInterval time.Duration, joinVia string) error {
	if peers == "" {
		return fmt.Errorf("-peers required (comma-separated UDP addresses)")
	}
	addrs := strings.Split(peers, ",")
	if id < 0 || id >= len(addrs) {
		return fmt.Errorf("-id %d out of range for %d peers", id, len(addrs))
	}

	cfg := udpnet.Config{
		Addrs: addrs,
		Local: []transport.NodeID{transport.NodeID(id)},
	}
	if connFD >= 0 {
		f := os.NewFile(uintptr(connFD), "udp-conn")
		if f == nil {
			return fmt.Errorf("-conn-fd %d is not a valid descriptor", connFD)
		}
		conn, err := net.FilePacketConn(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("-conn-fd %d: %w", connFD, err)
		}
		cfg.Conns = make([]net.PacketConn, len(addrs))
		cfg.Conns[id] = conn
	}
	tr, err := udpnet.New(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()

	ids := make([]transport.NodeID, len(addrs))
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	store := kvstore.New(kvstore.Config{
		Net: tr, ID: transport.NodeID(id), InitialView: gc.NewView(ids...),
		Site: gc.Config{RTO: rto, FDInterval: fdInterval},
	})
	store.Start()

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		store.Stop()
		return fmt.Errorf("http listen: %w", err)
	}
	srv := &http.Server{Handler: api(store, tr, id)}
	fmt.Printf("samoa-node id=%d udp=%s http=%s\n", id, tr.Addr(transport.NodeID(id)), ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if joinVia != "" {
		go requestAdmission(joinVia, id)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("samoa-node id=%d: %v, draining\n", id, sig)
	case err := <-errc:
		store.Stop()
		return fmt.Errorf("http serve: %w", err)
	}
	srv.Close()
	store.Stop()
	for _, err := range store.Errs() {
		return fmt.Errorf("replica error: %w", err)
	}
	return nil
}

// requestAdmission asks a live member to Join this node back into the
// group, retrying with backoff until the member acknowledges: the
// crash-rejoin entry point. The snapshot-bearing sync then flows over
// UDP once the '+' view change is delivered.
func requestAdmission(via string, id int) {
	base := via
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for attempt := 0; attempt < 10; attempt++ {
		resp, err := client.Post(fmt.Sprintf("%s/join/%d", base, id), "", nil)
		code := 0
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			code = resp.StatusCode
		}
		if err == nil && code < 300 {
			return
		}
		if !retriable(code, err) {
			fmt.Fprintf(os.Stderr, "samoa-node: join via %s refused: HTTP %d\n", via, code)
			return
		}
		backoff(attempt)
	}
	fmt.Fprintf(os.Stderr, "samoa-node: join via %s never succeeded\n", via)
}

// api is the node's HTTP surface: reads are local, writes ride the
// total-order broadcast and return once applied on this replica.
func api(store *kvstore.Store, tr *udpnet.Net, id int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := store.Get(r.PathValue("key"))
		if !ok {
			http.Error(w, "no such key", http.StatusNotFound)
			return
		}
		io.WriteString(w, v)
	})
	mux.HandleFunc("PUT /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := store.Put(r.PathValue("key"), string(body)); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		if err := store.Delete(r.PathValue("key")); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /cas/{key}", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		ok, err := store.CAS(r.PathValue("key"), q.Get("old"), q.Get("new"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%v", ok)
	})
	// Membership surface: a member relays Join/Leave into the total
	// order on behalf of the target (rejoining nodes call /join via
	// -join-via; operators remove dead nodes via /leave).
	memberOp := func(op func(transport.NodeID) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			target, err := strconv.Atoi(r.PathValue("id"))
			if err != nil || target < 0 || target >= tr.Size() {
				http.Error(w, "bad node id", http.StatusBadRequest)
				return
			}
			if err := op(transport.NodeID(target)); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}
	mux.HandleFunc("POST /join/{id}", memberOp(store.Site().Join))
	mux.HandleFunc("POST /leave/{id}", memberOp(store.Site().Leave))
	// Live reconfiguration: propose a protocol-version bump. The '^'
	// operation rides the total order like a join/leave, so every replica
	// hot-swaps its app microprotocol (one configuration epoch) at the
	// same delivery point, mid-traffic, without dropping a write.
	mux.HandleFunc("POST /reconfigure/{proto}", func(w http.ResponseWriter, r *http.Request) {
		proto, err := strconv.Atoi(r.PathValue("proto"))
		if err != nil || proto <= 0 || proto > 65535 {
			http.Error(w, "bad proto version (want 1..65535)", http.StatusBadRequest)
			return
		}
		if err := store.Site().ProposeUpgrade(uint16(proto)); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		stats := tr.Stats()
		json.NewEncoder(w).Encode(map[string]any{
			"id":          id,
			"applied":     store.Applied(),
			"keys":        store.Len(),
			"view":        store.Site().View().String(),
			"epoch":       store.Site().Epoch(),
			"app_version": store.Site().AppVersion(),
			"faults": map[string]uint64{
				"dropped_loss":      stats.DroppedLoss,
				"dropped_crashed":   stats.DroppedCrashed,
				"dropped_partition": stats.DroppedPartition,
				"corrupted":         stats.Corrupted,
				"send_errors":       stats.SendErrors,
				"recovered":         stats.Recovered,
			},
			"transport": stats,
		})
	})
	return mux
}

// runClient performs one KV operation against a running node.
func runClient(server string, args []string) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(os.Stderr, "samoa-node: "+format+"\n", a...)
		return 1
	}
	if len(args) == 0 {
		return fail("client mode needs a command: get|put|del|cas|stats")
	}
	base := server
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 30 * time.Second}
	// do issues the request built by mk, retrying transient failures
	// (network errors, 5xx) with capped exponential backoff + jitter.
	// attempts == 1 disables retry — required for non-idempotent ops.
	do := func(attempts int, mk func() (*http.Request, error)) (string, int, error) {
		var (
			body string
			code int
			err  error
		)
		for attempt := 0; attempt < attempts; attempt++ {
			if attempt > 0 {
				backoff(attempt - 1)
			}
			var req *http.Request
			if req, err = mk(); err != nil {
				return "", 0, err
			}
			var resp *http.Response
			if resp, err = client.Do(req); err != nil {
				code = 0
				continue
			}
			var raw []byte
			raw, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			body, code = string(raw), resp.StatusCode
			if err == nil && !retriable(code, nil) {
				return body, code, nil
			}
		}
		return body, code, err
	}
	simple := func(method, path string) func() (*http.Request, error) {
		return func() (*http.Request, error) { return http.NewRequest(method, base+path, nil) }
	}
	const retries = 5

	cmd, args := args[0], args[1:]
	switch cmd {
	case "get":
		if len(args) != 1 {
			return fail("usage: get <key>")
		}
		body, code, err := do(retries, simple("GET", "/kv/"+url.PathEscape(args[0])))
		if err != nil {
			return fail("%v", err)
		}
		if code == http.StatusNotFound {
			return fail("no such key %q", args[0])
		}
		fmt.Println(body)
	case "put":
		if len(args) != 2 {
			return fail("usage: put <key> <value>")
		}
		// Put is idempotent (same key, same value), so retry is safe.
		key, val := args[0], args[1]
		body, code, err := do(retries, func() (*http.Request, error) {
			return http.NewRequest("PUT", base+"/kv/"+url.PathEscape(key), strings.NewReader(val))
		})
		if err != nil || code >= 300 {
			return fail("put failed: %v %s (code %d)", err, body, code)
		}
	case "del":
		if len(args) != 1 {
			return fail("usage: del <key>")
		}
		if body, code, err := do(retries, simple("DELETE", "/kv/"+url.PathEscape(args[0]))); err != nil || code >= 300 {
			return fail("del failed: %v %s (code %d)", err, body, code)
		}
	case "cas":
		if len(args) != 3 {
			return fail("usage: cas <key> <old> <new>")
		}
		// No retry: a CAS that already applied would fail its own replay
		// and report a false conflict.
		q := url.Values{"old": {args[1]}, "new": {args[2]}}
		body, code, err := do(1, simple("POST", "/cas/"+url.PathEscape(args[0])+"?"+q.Encode()))
		if err != nil || code >= 300 {
			return fail("cas failed: %v %s (code %d)", err, body, code)
		}
		fmt.Println(body)
	case "upgrade":
		if len(args) != 1 {
			return fail("usage: upgrade <proto-version>")
		}
		// Idempotent: a duplicate '^' at the same version is delivered
		// and ignored by every replica, so retry is safe.
		if body, code, err := do(retries, simple("POST", "/reconfigure/"+url.PathEscape(args[0]))); err != nil || code >= 300 {
			return fail("upgrade failed: %v %s (code %d)", err, body, code)
		}
	case "stats":
		body, _, err := do(retries, simple("GET", "/statusz"))
		if err != nil {
			return fail("%v", err)
		}
		fmt.Println(body)
	default:
		return fail("unknown command %q: want get|put|del|cas|upgrade|stats", cmd)
	}
	return 0
}
