// Command samoa-node runs one site of the replicated key-value store
// over real UDP sockets — the paper's "distributed machines" deployment
// (§7) of the stack this repository otherwise exercises in-process: the
// full SAMOA microprotocol pipeline (RelComm, RelCast, FD, Consensus,
// ABcast, Membership) under a versioning concurrency controller,
// carried by internal/transport/udpnet.
//
// A cluster is an address list; each process hosts one entry:
//
//	samoa-node -id 0 -peers 127.0.0.1:7841,127.0.0.1:7842,127.0.0.1:7843 -http 127.0.0.1:7851 &
//	samoa-node -id 1 -peers 127.0.0.1:7841,127.0.0.1:7842,127.0.0.1:7843 -http 127.0.0.1:7852 &
//	samoa-node -id 2 -peers 127.0.0.1:7841,127.0.0.1:7842,127.0.0.1:7843 -http 127.0.0.1:7853 &
//
// Clients speak HTTP to any node (writes ride the total order to every
// replica; reads are local):
//
//	samoa-node -server 127.0.0.1:7851 put greeting hello
//	samoa-node -server 127.0.0.1:7852 get greeting        # → hello, replicated
//	samoa-node -server 127.0.0.1:7853 cas greeting hello goodbye
//	samoa-node -server 127.0.0.1:7851 stats
//
// On startup the node prints one machine-parseable line:
//
//	samoa-node id=0 udp=127.0.0.1:7841 http=127.0.0.1:7851
//
// so harnesses that bind kernel-assigned ports (-http 127.0.0.1:0, or a
// -conn-fd inherited UDP socket) can discover the real addresses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gc"
	"repro/internal/kvstore"
	"repro/internal/transport"
	"repro/internal/transport/udpnet"
)

func main() {
	id := flag.Int("id", 0, "this node's ID (index into -peers)")
	peers := flag.String("peers", "", "comma-separated UDP address per node, indexed by ID")
	httpAddr := flag.String("http", "127.0.0.1:0", "HTTP listen address for the KV API")
	connFD := flag.Int("conn-fd", -1, "inherited file descriptor to use as the local UDP socket (for harnesses that pre-bind port-0 sockets)")
	rto := flag.Duration("rto", 15*time.Millisecond, "retransmission timeout")
	fdInterval := flag.Duration("fd-interval", 25*time.Millisecond, "failure-detector heartbeat period")
	server := flag.String("server", "", "client mode: HTTP address of a running node; followed by get|put|del|cas|stats and arguments")
	flag.Parse()

	if *server != "" {
		os.Exit(runClient(*server, flag.Args()))
	}
	if err := runNode(*id, *peers, *httpAddr, *connFD, *rto, *fdInterval); err != nil {
		fmt.Fprintf(os.Stderr, "samoa-node: %v\n", err)
		os.Exit(1)
	}
}

func runNode(id int, peers, httpAddr string, connFD int, rto, fdInterval time.Duration) error {
	if peers == "" {
		return fmt.Errorf("-peers required (comma-separated UDP addresses)")
	}
	addrs := strings.Split(peers, ",")
	if id < 0 || id >= len(addrs) {
		return fmt.Errorf("-id %d out of range for %d peers", id, len(addrs))
	}

	cfg := udpnet.Config{
		Addrs: addrs,
		Local: []transport.NodeID{transport.NodeID(id)},
	}
	if connFD >= 0 {
		f := os.NewFile(uintptr(connFD), "udp-conn")
		if f == nil {
			return fmt.Errorf("-conn-fd %d is not a valid descriptor", connFD)
		}
		conn, err := net.FilePacketConn(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("-conn-fd %d: %w", connFD, err)
		}
		cfg.Conns = make([]net.PacketConn, len(addrs))
		cfg.Conns[id] = conn
	}
	tr, err := udpnet.New(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()

	ids := make([]transport.NodeID, len(addrs))
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	store := kvstore.New(kvstore.Config{
		Net: tr, ID: transport.NodeID(id), InitialView: gc.NewView(ids...),
		Site: gc.Config{RTO: rto, FDInterval: fdInterval},
	})
	store.Start()

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		store.Stop()
		return fmt.Errorf("http listen: %w", err)
	}
	srv := &http.Server{Handler: api(store, tr, id)}
	fmt.Printf("samoa-node id=%d udp=%s http=%s\n", id, tr.Addr(transport.NodeID(id)), ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("samoa-node id=%d: %v, draining\n", id, sig)
	case err := <-errc:
		store.Stop()
		return fmt.Errorf("http serve: %w", err)
	}
	srv.Close()
	store.Stop()
	for _, err := range store.Errs() {
		return fmt.Errorf("replica error: %w", err)
	}
	return nil
}

// api is the node's HTTP surface: reads are local, writes ride the
// total-order broadcast and return once applied on this replica.
func api(store *kvstore.Store, tr *udpnet.Net, id int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := store.Get(r.PathValue("key"))
		if !ok {
			http.Error(w, "no such key", http.StatusNotFound)
			return
		}
		io.WriteString(w, v)
	})
	mux.HandleFunc("PUT /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := store.Put(r.PathValue("key"), string(body)); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		if err := store.Delete(r.PathValue("key")); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /cas/{key}", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		ok, err := store.CAS(r.PathValue("key"), q.Get("old"), q.Get("new"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%v", ok)
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"id":        id,
			"applied":   store.Applied(),
			"keys":      store.Len(),
			"transport": tr.Stats(),
		})
	})
	return mux
}

// runClient performs one KV operation against a running node.
func runClient(server string, args []string) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(os.Stderr, "samoa-node: "+format+"\n", a...)
		return 1
	}
	if len(args) == 0 {
		return fail("client mode needs a command: get|put|del|cas|stats")
	}
	base := server
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 30 * time.Second}
	do := func(req *http.Request) (string, int, error) {
		resp, err := client.Do(req)
		if err != nil {
			return "", 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), resp.StatusCode, err
	}
	newReq := func(method, path string) (*http.Request, error) {
		return http.NewRequest(method, base+path, nil)
	}

	cmd, args := args[0], args[1:]
	switch cmd {
	case "get":
		if len(args) != 1 {
			return fail("usage: get <key>")
		}
		req, _ := newReq("GET", "/kv/"+url.PathEscape(args[0]))
		body, code, err := do(req)
		if err != nil {
			return fail("%v", err)
		}
		if code == http.StatusNotFound {
			return fail("no such key %q", args[0])
		}
		fmt.Println(body)
	case "put":
		if len(args) != 2 {
			return fail("usage: put <key> <value>")
		}
		req, _ := http.NewRequest("PUT", base+"/kv/"+url.PathEscape(args[0]), strings.NewReader(args[1]))
		if body, code, err := do(req); err != nil || code >= 300 {
			return fail("put failed: %v %s (code %d)", err, body, code)
		}
	case "del":
		if len(args) != 1 {
			return fail("usage: del <key>")
		}
		req, _ := newReq("DELETE", "/kv/"+url.PathEscape(args[0]))
		if body, code, err := do(req); err != nil || code >= 300 {
			return fail("del failed: %v %s (code %d)", err, body, code)
		}
	case "cas":
		if len(args) != 3 {
			return fail("usage: cas <key> <old> <new>")
		}
		q := url.Values{"old": {args[1]}, "new": {args[2]}}
		req, _ := newReq("POST", "/cas/"+url.PathEscape(args[0])+"?"+q.Encode())
		body, code, err := do(req)
		if err != nil || code >= 300 {
			return fail("cas failed: %v %s (code %d)", err, body, code)
		}
		fmt.Println(body)
	case "stats":
		req, _ := newReq("GET", "/statusz")
		body, _, err := do(req)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Println(body)
	default:
		return fail("unknown command %q: want get|put|del|cas|stats", cmd)
	}
	return 0
}
