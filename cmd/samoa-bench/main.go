// Command samoa-bench runs the repository's evaluation — experiments
// E1–E13 of DESIGN.md — and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	samoa-bench               # run everything at full parameters
//	samoa-bench -quick        # reduced parameters (CI-sized)
//	samoa-bench -exp e1,e5    # run a subset
//	samoa-bench -json         # also write BENCH_E<k>.json per experiment
//	samoa-bench -cpu 1,2,4,8  # the GOMAXPROCS sweep of e11
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameters")
	exps := flag.String("exp", "all", "comma-separated experiment ids (e1..e13) or 'all'")
	jsonOut := flag.Bool("json", false, "write machine-readable results to BENCH_E<k>.json (controller → metric → value)")
	cpus := flag.String("cpu", "1,2,4,8", "comma-separated GOMAXPROCS values for the e11 contention sweep")
	flag.Parse()

	cpuList, err := parseCPUs(*cpus)
	if err != nil {
		fmt.Fprintf(os.Stderr, "samoa-bench: -cpu: %v\n", err)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(strings.ToLower(*exps), ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(id string) bool { return want["all"] || want[id] }

	fmt.Printf("GO-SAMOA evaluation — GOMAXPROCS=%d, quick=%v\n\n", runtime.GOMAXPROCS(0), *quick)

	type exp struct {
		id  string
		run func() *bench.Table
	}
	full := []exp{
		{"e1", func() *bench.Table { return bench.E1Admissibility(pick(*quick, 100, 1000), 80*time.Microsecond) }},
		{"e2", func() *bench.Table { return bench.E2Overhead(pick(*quick, 2000, 20000), 16) }},
		{"e3", func() *bench.Table {
			return bench.E3Scalability([]int{1, 2, 4, 8}, pick(*quick, 200, 1000), 200*time.Microsecond)
		}},
		{"e4", func() *bench.Table {
			return bench.E4ABcast(pickSlice(*quick, []int{3}, []int{3, 5, 7}), pick(*quick, 30, 120))
		}},
		{"e5", func() *bench.Table { return bench.E5Ablation(pick(*quick, 24, 48), 2*time.Millisecond) }},
		{"e6", func() *bench.Table { return bench.E6ViewRace(pick(*quick, 2, 10)) }},
		{"e7", func() *bench.Table {
			return bench.E7Extensions(8, pick(*quick, 40, 150), []float64{0.5, 0.9, 1.0}, 200*time.Microsecond)
		}},
		{"e8", func() *bench.Table {
			return bench.E8Rollback(8, pick(*quick, 30, 100), 100*time.Microsecond)
		}},
		{"e9", func() *bench.Table {
			return bench.E9Transport(pick(*quick, 50, 200), 256)
		}},
		{"e10", func() *bench.Table {
			return bench.E10SchedOverhead(pick(*quick, 200, 2000), 16)
		}},
		{"e11", func() *bench.Table {
			return bench.E11Contention(cpuList, 8, pick(*quick, 2000, 20000))
		}},
		{"e12", func() *bench.Table {
			return bench.E12KVOverUDP(6, pick(*quick, 10, 40))
		}},
		{"e13", func() *bench.Table {
			return bench.E13SwapLatency(8, pick(*quick, 10, 50), 100*time.Microsecond)
		}},
	}
	ran := 0
	for _, e := range full {
		if !sel(e.id) {
			continue
		}
		start := time.Now()
		tab := e.run()
		tab.Note("wall time: %v", time.Since(start).Round(time.Millisecond))
		tab.Fprint(os.Stdout)
		if *jsonOut {
			if err := writeJSON(tab); err != nil {
				fmt.Fprintf(os.Stderr, "samoa-bench: %v\n", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected; use -exp e1..e13 or all")
		os.Exit(2)
	}
}

// parseCPUs parses the -cpu flag: a comma-separated list of positive
// GOMAXPROCS values.
func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad GOMAXPROCS value %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// writeJSON records the experiment's table as BENCH_<ID>.json (e.g.
// BENCH_E2.json), seeding the repo's machine-readable perf trajectory.
func writeJSON(tab *bench.Table) error {
	doc := map[string]any{
		"id":      tab.ID,
		"title":   tab.Title,
		"results": tab.JSON(),
		"notes":   tab.Notes,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("BENCH_%s.json", strings.ToUpper(tab.ID))
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

func pick(quick bool, q, f int) int {
	if quick {
		return q
	}
	return f
}

func pickSlice(quick bool, q, f []int) []int {
	if quick {
		return q
	}
	return f
}
