// Command samoa-trace runs a workload under a chosen concurrency
// controller, records the execution, and prints the run in the paper's
// notation — the list of (event, handler) pairs (§2) — together with the
// isolation checker's verdict. It is the debugging loupe for the
// framework: point it at a controller and watch which interleavings it
// admits.
//
// Usage:
//
//	samoa-trace -controller vca-basic -comps 4 -mps 3 -len 4 -seed 7
//	samoa-trace -controller none -fig1     # the paper's Figure 1 protocol
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	ctrlName := flag.String("controller", "vca-basic", "none|serial|vca-basic|vca-bound|vca-route|vca-rw|tso")
	comps := flag.Int("comps", 4, "number of concurrent computations")
	mps := flag.Int("mps", 3, "number of microprotocols")
	scriptLen := flag.Int("len", 4, "visits per computation")
	seed := flag.Int64("seed", 1, "workload seed")
	fig1 := flag.Bool("fig1", false, "run the paper's Figure 1 protocol instead")
	dot := flag.Bool("dot", false, "also print the conflict graph in Graphviz DOT")
	flag.Parse()
	dotOut = *dot

	v, ok := bench.VariantByName(*ctrlName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown controller %q\n", *ctrlName)
		os.Exit(2)
	}

	if *fig1 {
		runFig1(v)
		return
	}
	runRandom(v, *comps, *mps, *scriptLen, *seed)
}

func runFig1(v bench.Variant) {
	f := bench.NewFig1(v, 100*time.Microsecond)
	rep := f.RunOnce()
	fmt.Printf("controller %s, Figure 1 (events a0, b0 concurrent):\n", v.Name)
	verdict(rep)
}

func runRandom(v bench.Variant, comps, mps, scriptLen int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rec := trace.NewRecorder()
	stack := core.NewStack(v.New(), core.WithTracer(rec))

	protos := make([]*core.Microprotocol, mps)
	events := make([]*core.EventType, mps)
	handlers := make([]*core.Handler, mps)
	for i := 0; i < mps; i++ {
		i := i
		protos[i] = core.NewMicroprotocol(fmt.Sprintf("P%d", i))
		events[i] = core.NewEventType(fmt.Sprintf("e%d", i))
		handlers[i] = protos[i].AddHandler("h", func(ctx *core.Context, msg core.Message) error {
			time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond) //samoa:ignore blocking — simulated handler work: the trace driver wants wall-clock interleavings, not explorability
			rest := msg.([]int)
			if len(rest) > 0 {
				return ctx.Trigger(events[rest[0]], rest[1:])
			}
			return nil
		})
	}
	stack.Register(protos...)
	for i := range events {
		stack.Bind(events[i], handlers[i])
	}

	fmt.Printf("controller %s: %d computations × %d visits over %d microprotocols (seed %d)\n",
		v.Name, comps, scriptLen, mps, seed)
	var wg sync.WaitGroup
	for k := 0; k < comps; k++ {
		script := make([]int, scriptLen)
		for i := range script {
			script[i] = rng.Intn(mps)
		}
		spec := specFor(v.Kind, script, protos, handlers)
		fmt.Printf("  k%d: visits %v\n", k+1, script)
		wg.Add(1)
		go func(script []int, spec *core.Spec) {
			defer wg.Done()
			if err := stack.External(spec, events[script[0]], script[1:]); err != nil {
				fmt.Fprintf(os.Stderr, "computation error: %v\n", err)
			}
		}(script, spec)
	}
	wg.Wait()

	fmt.Println("\nrecorded run:")
	var parts []string
	for _, p := range rec.Run() {
		parts = append(parts, fmt.Sprintf("(k%d:%s, %s)", p.Comp, eventName(p), p.Handler.MP().Name()))
	}
	fmt.Println("  " + strings.Join(parts, " "))
	fmt.Println("\ntimeline:")
	rec.WriteTimeline(os.Stdout, 72)
	st := rec.Stats()
	fmt.Printf("\nstats: %d handler executions, peak concurrency %d, per microprotocol %v\n",
		st.HandlerExecutions, st.MaxConcurrency, st.PerMicroprotocol)
	verdict(rec.Check())
}

func eventName(p trace.RunPair) string {
	if p.Event == nil {
		return "ext"
	}
	return p.Event.Name()
}

func specFor(kind string, script []int, protos []*core.Microprotocol, handlers []*core.Handler) *core.Spec {
	switch kind {
	case "bound":
		bounds := map[*core.Microprotocol]int{}
		for _, i := range script {
			bounds[protos[i]]++
		}
		return core.AccessBound(bounds)
	case "route":
		g := core.NewRouteGraph().Root(handlers[script[0]])
		for i := 0; i+1 < len(script); i++ {
			g.Edge(handlers[script[i]], handlers[script[i+1]])
		}
		return core.Route(g)
	default:
		var mps []*core.Microprotocol
		for _, i := range script {
			mps = append(mps, protos[i])
		}
		return core.Access(mps...)
	}
}

// dotOut mirrors the -dot flag.
var dotOut bool

func verdict(rep *trace.Report) {
	fmt.Println("\nisolation check:")
	fmt.Printf("  computations: %d, conflicts: %d, aborted attempts: %d\n",
		rep.Computations, rep.Conflicts, rep.Aborted)
	switch {
	case !rep.Serializable:
		fmt.Printf("  VIOLATION — no equivalent serial execution; witness cycle: %v\n", rep.Cycle)
	case rep.Serial:
		fmt.Printf("  serial run (r1-like); order: %v\n", rep.Order)
	default:
		fmt.Printf("  concurrent but isolated (r2-like); equivalent serial order: %v\n", rep.Order)
	}
	if dotOut {
		fmt.Println("\nconflict graph (DOT):")
		rep.WriteDOT(os.Stdout)
	}
}
