// Allocation-regression tests for the hot paths overhauled by the
// sealed-dispatch / dense-version-table work: the budgets asserted here
// are the contract the benchmarks in bench_test.go report against. If a
// change raises one of these averages, the fast path regressed — fix the
// path, don't raise the budget.
package repro

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc"
	"repro/internal/core"
)

// TestTriggerSealedAllocBudget asserts the sealed synchronous Trigger
// fast path is allocation-free: binding lookup reads the published
// snapshot, the handler frame comes from a pool, and vca-basic admission
// is a lock-free atomic check. The budget is 0; the < 0.5 tolerance only
// absorbs a GC emptying the frame pool mid-run.
//
// Since the deterministic-scheduler work these budgets also pin the
// hooks-compiled-in-but-inactive path: every yield point in core and
// every blocking point in cc carries a nil-hook / default-blocker
// branch, and none of them may cost an allocation.
func TestTriggerSealedAllocBudget(t *testing.T) {
	for _, name := range []string{"none", "serial", "vca-basic", "vca-bound"} {
		t.Run(name, func(t *testing.T) {
			v, ok := bench.VariantByName(name)
			if !ok {
				t.Fatal("unknown variant")
			}
			st := core.NewStack(v.New())
			mp := core.NewMicroprotocol("mp")
			h := mp.AddHandler("h", func(*core.Context, core.Message) error { return nil })
			st.Register(mp)
			et := core.NewEventType("e")
			st.Bind(et, h)
			spec := core.Access(mp)
			if name == "vca-bound" {
				// A huge bound keeps Request from exhausting the visit
				// budget across the measured iterations.
				spec = core.AccessBound(map[*core.Microprotocol]int{mp: 1 << 20})
			}
			err := st.Isolated(spec, func(ctx *core.Context) error {
				avg := testing.AllocsPerRun(200, func() {
					if err := ctx.Trigger(et, nil); err != nil {
						t.Error(err)
					}
				})
				if avg >= 0.5 {
					t.Errorf("sealed Trigger: %.2f allocs/op, budget 0", avg)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpawnCompleteAllocBudget asserts an Access-spec computation's
// controller lifecycle (Spawn + RootReturned + Complete) under vca-basic
// stays at its compiled-footprint budget: one token and one claim-node
// slice — 2 allocations, independent of how many microprotocols the spec
// declares. The sharded-admission work (DESIGN.md §11) kept this budget
// unchanged: the CAS fast path allocates nothing beyond the token, the
// release nodes are embedded in the token's slice, and the group-commit
// stack links through them in place. Sequential spawn/complete is always
// quiescent, so this loop must take the fast path every iteration — the
// SpawnStats check below pins that, so a regression that silently
// diverts the budget measurement onto the slow path cannot pass.
func TestSpawnCompleteAllocBudget(t *testing.T) {
	ctrl := cc.NewVCABasic()
	mps := make([]*core.Microprotocol, 4)
	for i := range mps {
		mps[i] = core.NewMicroprotocol(string(rune('a' + i)))
	}
	spec := core.Access(mps...)
	avg := testing.AllocsPerRun(200, func() {
		tok, err := ctrl.Spawn(context.Background(), spec)
		if err != nil {
			t.Error(err)
		}
		ctrl.RootReturned(tok)
		ctrl.Complete(tok)
	})
	if avg > 2 {
		t.Errorf("Access-spec Spawn+Complete: %.2f allocs/op, budget 2", avg)
	}
	if fast, slow := ctrl.SpawnStats(); slow != 0 || fast == 0 {
		t.Errorf("budget loop took the slow path (%d fast, %d slow); the measurement no longer covers the CAS fast path", fast, slow)
	}
}

// TestBatchedReleaseAllocBudget guards the batched deferred-release path:
// three single-slot computations completed out of spawn order force the
// later releases through the pending queue (deferred until due, then
// cascaded by one group-commit drain). The budget is exactly the spawn
// cost — 3 tokens × 2 allocations; queueing, draining, and cascading must
// contribute zero, because release nodes are token-embedded and both the
// pending queue and the release stack reuse their storage.
func TestBatchedReleaseAllocBudget(t *testing.T) {
	ctrl := cc.NewVCABasic()
	mp := core.NewMicroprotocol("m")
	spec := core.Access(mp)
	avg := testing.AllocsPerRun(200, func() {
		t1, err := ctrl.Spawn(context.Background(), spec)
		if err != nil {
			t.Error(err)
		}
		t2, err := ctrl.Spawn(context.Background(), spec)
		if err != nil {
			t.Error(err)
		}
		t3, err := ctrl.Spawn(context.Background(), spec)
		if err != nil {
			t.Error(err)
		}
		// Reverse order: t3's and t2's releases sit in the pending queue
		// until t1's release makes them due and the drain cascades.
		ctrl.Complete(t3)
		ctrl.Complete(t2)
		ctrl.Complete(t1)
	})
	if avg > 6 {
		t.Errorf("3× Spawn + out-of-order Complete: %.2f allocs/op, budget 6 (releases must be allocation-free)", avg)
	}
}
