// Command transport demonstrates the configurable transport protocol
// (internal/ctp) — this repository's second protocol system, in the
// Cactus/CTP tradition the paper builds on: a byte-message transport
// composed from Segment, Order, ARQ and Checksum microprotocols, each an
// ordinary SAMOA microprotocol scheduled under the isolated construct.
//
// It sends the same workload over a hostile link (20% loss, 10%
// corruption, reordering delays) with two compositions: the full stack,
// and raw datagrams. The full stack delivers every byte intact and in
// order; raw datagrams show why the layers exist.
package main

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/ctp"
	"repro/internal/simnet"
)

const msgs = 40

func run(name string, reliable, ordered, checksummed bool) {
	net := simnet.New(simnet.Config{
		Nodes:       2,
		MinDelay:    100 * time.Microsecond,
		MaxDelay:    3 * time.Millisecond, // heavy reordering
		LossProb:    0.20,
		CorruptProb: 0.10,
		Seed:        2026,
	})
	defer net.Close()

	var mu sync.Mutex
	var got [][]byte
	mk := func(id, peer simnet.NodeID, deliver func([]byte)) *ctp.Endpoint {
		e, err := ctp.NewEndpoint(ctp.Config{
			Net: net, ID: id, Peer: peer,
			Reliable: reliable, Ordered: ordered, Checksummed: checksummed,
			RTO: 10 * time.Millisecond, MSS: 128,
			Deliver: deliver,
		})
		if err != nil {
			panic(err)
		}
		e.Start()
		return e
	}
	a := mk(0, 1, nil)
	b := mk(1, 0, func(m []byte) {
		mu.Lock()
		got = append(got, append([]byte(nil), m...))
		mu.Unlock()
	})
	defer a.Stop()
	defer b.Stop()

	want := make([][]byte, msgs)
	for i := range want {
		want[i] = []byte(fmt.Sprintf("message %02d — %s", i, string(bytes.Repeat([]byte{'a' + byte(i%26)}, 300))))
		if err := a.Send(want[i]); err != nil {
			panic(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= msgs || (!reliable && time.Now().After(deadline.Add(-9500*time.Millisecond))) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	intact, inOrder := 0, true
	for i, m := range got {
		if i < len(want) && bytes.Equal(m, want[i]) {
			intact++
		} else {
			inOrder = false
		}
	}
	fmt.Printf("— %s —\n", name)
	fmt.Printf("  delivered %d/%d, intact-and-in-order: %v\n", len(got), msgs, inOrder && len(got) == msgs)
	fmt.Printf("  retransmits: %d, checksum rejections: %d\n", a.Retransmits(), a.BadFrames()+b.BadFrames())
	st := net.Stats()
	fmt.Printf("  link: %d sent, %d lost, %d corrupted\n\n", st.Sent, st.DroppedLoss, st.Corrupted)
	_ = intact
}

func main() {
	fmt.Printf("hostile link: 20%% loss, 10%% corruption, up to 3ms reordering; %d messages of ~320B\n\n", msgs)
	run("full stack (segment+order+arq+checksum)", true, true, true)
	run("raw datagrams (segment only)", false, false, false)
	fmt.Println("Same framework, same microprotocols — composition is configuration")
	fmt.Println("(the Cactus/CTP heritage, scheduled by SAMOA's isolated construct).")
}
