// Command quickstart builds the paper's Figure 1 protocol — handlers P,
// Q, R, S — and runs its two external events a0 and b0 under three
// schedulers:
//
//   - cactus-style None: any interleaving, including the paper's run r3,
//     which violates the isolation property;
//   - appia-style Serial: only serial runs (like r1);
//   - SAMOA's VCAbasic: concurrent runs admitted, but only isolated ones
//     (r1 and r2 — never r3).
//
// It prints each execution in the paper's run notation and the isolation
// checker's verdict.
package main

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/trace"
)

// work simulates handler processing time so computations actually overlap.
//
//samoa:ignore blocking — the sleep is the simulated workload; this demo samples real time
func work() { time.Sleep(time.Duration(rand.Intn(120)) * time.Microsecond) }

// fig1 is the protocol of Figure 1: external event a0 triggers P, which
// raises a1 (handled by R) and then a2 (handled by S); likewise b0 → Q →
// b1 (R), b2 (S). R and S are shared between the two computations.
type fig1 struct {
	stack    *core.Stack
	rec      *trace.Recorder
	a0, b0   *core.EventType
	a1, b1   *core.EventType
	a2, b2   *core.EventType
	mpP, mpQ *core.Microprotocol
	mpR, mpS *core.Microprotocol
	specA    *core.Spec // isolated [P R S] { trigger a0 m }
	specB    *core.Spec // isolated [Q R S] { trigger b0 m }
}

func newFig1(ctrl core.Controller) *fig1 {
	f := &fig1{rec: trace.NewRecorder()}
	f.stack = core.NewStack(ctrl, core.WithTracer(f.rec), core.WithName("fig1"))

	f.mpP = core.NewMicroprotocol("P")
	f.mpQ = core.NewMicroprotocol("Q")
	f.mpR = core.NewMicroprotocol("R")
	f.mpS = core.NewMicroprotocol("S")

	f.a0, f.b0 = core.NewEventType("a0"), core.NewEventType("b0")
	f.a1, f.b1 = core.NewEventType("a1"), core.NewEventType("b1")
	f.a2, f.b2 = core.NewEventType("a2"), core.NewEventType("b2")

	// P: receive a UDP packet from the ad-hoc network, pass it on.
	hP := f.mpP.AddHandler("P", func(ctx *core.Context, msg core.Message) error {
		work()
		if err := ctx.Trigger(f.a1, msg); err != nil {
			return err
		}
		work()
		return ctx.Trigger(f.a2, msg)
	})
	// Q: same, for the fixed network.
	hQ := f.mpQ.AddHandler("Q", func(ctx *core.Context, msg core.Message) error {
		work()
		if err := ctx.Trigger(f.b1, msg); err != nil {
			return err
		}
		work()
		return ctx.Trigger(f.b2, msg)
	})
	// R and S: shared processing and delivery.
	hR := f.mpR.AddHandler("R", func(*core.Context, core.Message) error { work(); return nil })
	hS := f.mpS.AddHandler("S", func(*core.Context, core.Message) error { work(); return nil })

	f.stack.Register(f.mpP, f.mpQ, f.mpR, f.mpS)
	f.stack.Bind(f.a0, hP)
	f.stack.Bind(f.b0, hQ)
	f.stack.Bind(f.a1, hR)
	f.stack.Bind(f.b1, hR)
	f.stack.Bind(f.a2, hS)
	f.stack.Bind(f.b2, hS)

	f.specA = core.Access(f.mpP, f.mpR, f.mpS)
	f.specB = core.Access(f.mpQ, f.mpR, f.mpS)
	return f
}

// runOnce fires a0 and b0 concurrently and reports the recorded run.
func (f *fig1) runOnce() (string, *trace.Report) {
	done := make(chan error, 2)
	go func() { done <- f.stack.External(f.specA, f.a0, "m") }()
	go func() { done <- f.stack.External(f.specB, f.b0, "m") }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			panic(err)
		}
	}
	var parts []string
	for _, p := range f.rec.Run() {
		parts = append(parts, p.String())
	}
	rep := f.rec.Check()
	f.rec.Reset()
	return "(" + strings.Join(parts, ", ") + ")", rep
}

func main() {
	controllers := []func() core.Controller{
		func() core.Controller { return cc.NewNone() },
		func() core.Controller { return cc.NewSerial() },
		func() core.Controller { return cc.NewVCABasic() },
	}
	for _, mk := range controllers {
		ctrl := mk()
		fmt.Printf("— controller %s —\n", ctrl.Name())
		f := newFig1(ctrl)
		serial, concurrent, violations := 0, 0, 0
		var sample string
		for i := 0; i < 200; i++ {
			run, rep := f.runOnce()
			switch {
			case !rep.Serializable:
				violations++
				sample = run
			case rep.Serial:
				serial++
			default:
				concurrent++
				sample = run
			}
		}
		fmt.Printf("  200 trials: %d serial (r1-like), %d concurrent-isolated (r2-like), %d violations (r3-like)\n",
			serial, concurrent, violations)
		if sample != "" {
			fmt.Printf("  sample non-serial run: %s\n", sample)
		}
		fmt.Println()
	}
	fmt.Println("Expected: None may violate isolation; Serial admits only serial runs;")
	fmt.Println("VCAbasic admits concurrent runs yet never a violation (paper §2, Fig. 1).")
}
