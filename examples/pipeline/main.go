// Command pipeline shows what the paper's optimised isolated variants buy
// (§4–§5): a three-stage protocol pipeline — parse → process → emit —
// where each computation visits each stage exactly once.
//
//   - Under Serial (Appia model) computations never overlap.
//   - Under VCAbasic a computation holds every declared microprotocol
//     until it completes, so the pipeline never has two computations in
//     flight.
//   - Under VCAbound, declaring the exact bound (one visit per stage)
//     releases each stage as soon as the computation's visit completes —
//     the stages run like a processor pipeline.
//   - VCAroute achieves the same through the routing graph: once a
//     handler is inactive and unreachable, its stage is released.
//
// The wall-clock ratios printed below are the paper's "more parallelism"
// claim made measurable.
package main

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

const (
	stageWork = 2 * time.Millisecond
	nItems    = 24
)

type pipeline struct {
	stack  *core.Stack
	stages []*core.Microprotocol
	hs     []*core.Handler
	evs    []*core.EventType
}

func newPipeline(ctrl core.Controller) *pipeline {
	p := &pipeline{stack: core.NewStack(ctrl)}
	names := []string{"parse", "process", "emit"}
	for i, name := range names {
		i := i
		mp := core.NewMicroprotocol(name)
		// Stages hand off asynchronously: a stage's handler completes as
		// soon as its own work is done, which is what lets VCAbound's
		// rule 4 / VCAroute's rule 4(b) release the stage early. (A
		// synchronous Trigger would nest the whole chain inside stage 0,
		// holding it for the full duration — no pipelining possible.)
		h := mp.AddHandler("run", func(ctx *core.Context, msg core.Message) error {
			time.Sleep(stageWork) //samoa:ignore blocking — simulated stage work (I/O, marshalling…); never run under the explorer
			if i+1 < len(names) {
				return ctx.AsyncTrigger(p.evs[i+1], msg)
			}
			return nil
		})
		p.stages = append(p.stages, mp)
		p.hs = append(p.hs, h)
		p.evs = append(p.evs, core.NewEventType(name))
	}
	p.stack.Register(p.stages...)
	for i := range p.evs {
		p.stack.Bind(p.evs[i], p.hs[i])
	}
	return p
}

func (p *pipeline) spec(kind string) *core.Spec {
	switch kind {
	case "bound":
		return core.AccessBound(map[*core.Microprotocol]int{
			p.stages[0]: 1, p.stages[1]: 1, p.stages[2]: 1,
		})
	case "route":
		g := core.NewRouteGraph().Root(p.hs[0]).
			Edge(p.hs[0], p.hs[1]).Edge(p.hs[1], p.hs[2])
		return core.Route(g)
	default:
		return core.Access(p.stages...)
	}
}

func run(name, kind string, ctrl core.Controller) time.Duration {
	p := newPipeline(ctrl)
	spec := p.spec(kind)
	start := time.Now()
	done := make(chan error, nItems)
	for i := 0; i < nItems; i++ {
		go func() { done <- p.stack.External(spec, p.evs[0], "item") }()
	}
	for i := 0; i < nItems; i++ {
		if err := <-done; err != nil {
			panic(err)
		}
	}
	return time.Since(start)
}

func main() {
	ideal := time.Duration(nItems+2) * stageWork // fill + drain of a 3-stage pipe
	serialT := run("serial", "basic", cc.NewSerial())
	basicT := run("vca-basic", "basic", cc.NewVCABasic())
	boundT := run("vca-bound", "bound", cc.NewVCABound())
	routeT := run("vca-route", "route", cc.NewVCARoute())

	fmt.Printf("pipeline: %d items × 3 stages × %v per stage\n\n", nItems, stageWork)
	fmt.Printf("  %-28s %8v\n", "serial (Appia model)", serialT.Round(time.Millisecond))
	fmt.Printf("  %-28s %8v\n", "isolated (VCAbasic)", basicT.Round(time.Millisecond))
	fmt.Printf("  %-28s %8v   (exact bounds: 1 visit/stage)\n", "isolated bound (VCAbound)", boundT.Round(time.Millisecond))
	fmt.Printf("  %-28s %8v   (routing graph: parse→process→emit)\n", "isolated route (VCAroute)", routeT.Round(time.Millisecond))
	fmt.Printf("\n  perfectly pipelined lower bound ≈ %v\n", ideal.Round(time.Millisecond))
	fmt.Printf("  speedup bound vs basic: %.1f×; route vs basic: %.1f×\n",
		float64(basicT)/float64(boundT), float64(basicT)/float64(routeT))
	fmt.Println("\nVCAbasic serializes computations that share microprotocols; the bound")
	fmt.Println("and route variants release each stage early (paper §5.2, §5.3).")
}
