// Command rollback demonstrates the paper's *second* algorithm group —
// "timestamp-ordering algorithms with rollback/recovery" (§1) — which the
// paper mentions but never describes, implemented here as cc.WaitDie.
//
// The scenario is the classic one versioning sidesteps: transfers between
// account microprotocols acquire locks *incrementally* in whatever order
// the transfer visits the accounts, so crossed transfers (A→B racing
// B→A) would deadlock a naive locker. Wait–die instead aborts the younger
// computation, restores the account snapshots it touched, and re-executes
// it transparently inside Stack.Isolated — the caller never notices,
// except in the abort counter and in every invariant still holding.
//
// Contrast with VCAbasic (also run below): it declares both accounts up
// front and never aborts — the paper's design choice, visible here as
// zero aborts at similar throughput.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

// account is a snapshottable balance.
type account struct{ balance int }

func (a *account) Snapshot() any    { return a.balance }
func (a *account) Restore(snap any) { a.balance = snap.(int) }

// bank wires N account microprotocols onto one stack.
type bank struct {
	stack    *core.Stack
	mps      []*core.Microprotocol
	accounts []*account
	debit    []*core.EventType
	credit   []*core.EventType
}

// transfer is the message threaded through a debit→credit chain.
type transfer struct {
	from, to, amount int
}

func newBank(ctrl core.Controller, n, initial int) *bank {
	b := &bank{stack: core.NewStack(ctrl)}
	for i := 0; i < n; i++ {
		acct := &account{balance: initial}
		mp := core.NewMicroprotocol(fmt.Sprintf("account%d", i))
		mp.SetSnapshotter(acct)
		evD := core.NewEventType(fmt.Sprintf("debit%d", i))
		evC := core.NewEventType(fmt.Sprintf("credit%d", i))
		hD := mp.AddHandler("debit", func(ctx *core.Context, msg core.Message) error {
			tr := msg.(transfer)
			acct.balance -= tr.amount
			time.Sleep(50 * time.Microsecond) //samoa:ignore blocking — simulated bookkeeping latency; never run under the explorer
			return ctx.Trigger(b.credit[tr.to], tr)
		})
		hC := mp.AddHandler("credit", func(_ *core.Context, msg core.Message) error {
			acct.balance += msg.(transfer).amount
			return nil
		})
		b.mps = append(b.mps, mp)
		b.accounts = append(b.accounts, acct)
		b.debit = append(b.debit, evD)
		b.credit = append(b.credit, evC)
		b.stack.Register(mp)
		b.stack.Bind(evD, hD)
		b.stack.Bind(evC, hC)
	}
	return b
}

func (b *bank) total() int {
	sum := 0
	for _, a := range b.accounts {
		sum += a.balance
	}
	return sum
}

func run(name string, ctrl core.Controller, aborts func() uint64) {
	const (
		nAccounts = 4
		initial   = 1000
		workers   = 8
		transfers = 50
	)
	b := newBank(ctrl, nAccounts, initial)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from := rng.Intn(nAccounts)
				to := (from + 1 + rng.Intn(nAccounts-1)) % nAccounts
				tr := transfer{from: from, to: to, amount: 1 + rng.Intn(10)}
				spec := core.Access(b.mps[from], b.mps[to])
				if err := b.stack.External(spec, b.debit[from], tr); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ab := uint64(0)
	if aborts != nil {
		ab = aborts()
	}
	fmt.Printf("%-22s %4d transfers in %8v — total balance %d (invariant %d), aborts: %d\n",
		name, workers*transfers, elapsed.Round(time.Millisecond), b.total(), nAccounts*initial, ab)
	if b.total() != nAccounts*initial {
		fmt.Println("  !!! money created or destroyed — isolation broken")
	}
}

func main() {
	fmt.Println("crossed transfers between 4 accounts, 8 concurrent workers:")
	fmt.Println()
	wd := cc.NewWaitDie()
	run("wait-die (rollback)", wd, wd.Aborts)
	run("vca-basic (versioning)", cc.NewVCABasic(), nil)
	run("serial (Appia model)", cc.NewSerial(), nil)
	fmt.Println()
	fmt.Println("Wait–die locks accounts one by one and rolls crossed transfers back;")
	fmt.Println("versioning claims both accounts up front and never aborts (paper §1).")
}
