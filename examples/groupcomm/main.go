// Command groupcomm runs the paper's §3 group-communication system end to
// end on a simulated network: three sites atomically broadcast messages,
// a fourth site joins mid-stream via the Membership microprotocol, and a
// site crashes — exercising RelComm, RelCast, the failure detector,
// consensus, ABcast, and Membership, all scheduled by VCAbasic.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/gc"
	"repro/internal/simnet"
)

func main() {
	net := simnet.New(simnet.Config{
		Nodes:    4,
		MinDelay: 200 * time.Microsecond,
		MaxDelay: 2 * time.Millisecond,
		LossProb: 0.05, // retransmission earns its keep
		Seed:     2026,
	})
	defer net.Close()

	var mu sync.Mutex
	delivered := map[simnet.NodeID][]string{}
	fifo := map[simnet.NodeID][]string{}
	views := map[simnet.NodeID][]string{}

	mkSite := func(id simnet.NodeID, view *gc.View) *gc.Site {
		s := gc.NewSite(gc.Config{
			Net: net, ID: id, InitialView: view,
			RTO:        10 * time.Millisecond,
			FDInterval: 10 * time.Millisecond,
			Deliver: func(from simnet.NodeID, data []byte) {
				mu.Lock()
				delivered[id] = append(delivered[id], string(data))
				mu.Unlock()
			},
			FDeliver: func(from simnet.NodeID, data []byte) {
				mu.Lock()
				fifo[id] = append(fifo[id], string(data))
				mu.Unlock()
			},
			OnViewChange: func(v *gc.View) {
				mu.Lock()
				views[id] = append(views[id], v.String())
				mu.Unlock()
			},
		})
		s.Start()
		return s
	}

	initial := gc.NewView(0, 1, 2)
	sites := map[simnet.NodeID]*gc.Site{}
	for id := simnet.NodeID(0); id < 3; id++ {
		sites[id] = mkSite(id, initial)
	}

	fmt.Println("phase 1: three sites broadcast concurrently")
	var wg sync.WaitGroup
	for id := simnet.NodeID(0); id < 3; id++ {
		wg.Add(1)
		go func(id simnet.NodeID) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				must(sites[id].ABcast([]byte(fmt.Sprintf("s%d/m%d", id, i))))
			}
		}(id)
	}
	wg.Wait()
	waitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delivered[0]) >= 9 && len(delivered[1]) >= 9 && len(delivered[2]) >= 9
	}, "phase-1 deliveries")

	fmt.Println("phase 2: site 3 joins (Membership → ABcast → consensus)")
	sites[3] = mkSite(3, gc.NewView(0, 1, 2, 3))
	must(sites[0].Join(3))
	waitFor(func() bool {
		return sites[0].View().Contains(3) && sites[1].View().Contains(3) && sites[2].View().Contains(3)
	}, "view {0,1,2,3} everywhere")

	fmt.Println("phase 3: broadcasts now reach the new member")
	must(sites[1].ABcast([]byte("post-join")))
	waitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, m := range delivered[3] {
			if m == "post-join" {
				return true
			}
		}
		return false
	}, "joiner delivery")

	fmt.Println("phase 3b: FIFO broadcasts (cheaper than total order) from site 2")
	for i := 0; i < 3; i++ {
		must(sites[2].FBcast([]byte(fmt.Sprintf("fifo/%d", i))))
	}
	waitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(fifo[0]) >= 3 && len(fifo[1]) >= 3 && len(fifo[3]) >= 3
	}, "fifo deliveries")

	fmt.Println("phase 4: site 0 crashes; the group keeps delivering")
	net.Crash(0)
	must(sites[2].ABcast([]byte("after-crash")))
	waitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, id := range []simnet.NodeID{1, 2, 3} {
			for _, m := range delivered[id] {
				if m == "after-crash" {
					n++
				}
			}
		}
		return n == 3
	}, "post-crash deliveries")

	mu.Lock()
	fmt.Println("\nresults:")
	for id := simnet.NodeID(0); id < 4; id++ {
		fmt.Printf("  site %d delivered %2d total-order + %d fifo messages; views seen: %v\n",
			id, len(delivered[id]), len(fifo[id]), views[id])
	}
	// Total order check across the survivors' common prefix.
	ref := delivered[1]
	agree := true
	for _, id := range []simnet.NodeID{2} {
		got := delivered[id]
		n := min(len(ref), len(got))
		for i := 0; i < n; i++ {
			if ref[i] != got[i] {
				agree = false
			}
		}
	}
	mu.Unlock()
	fmt.Printf("  total order across surviving established sites: %v\n", agree)

	st := net.Stats()
	fmt.Printf("\nnetwork: %d sent, %d delivered, %d lost (%.1f%%), %d to/from crashed\n",
		st.Sent, st.Delivered, st.DroppedLoss,
		100*float64(st.DroppedLoss)/float64(st.Sent), st.DroppedCrashed)

	for id, s := range sites {
		s.Stop()
		for _, err := range s.Errs() {
			fmt.Printf("site %d error: %v\n", id, err)
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func waitFor(cond func() bool, what string) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	panic("timeout waiting for " + what)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
