// Command viewchange tells the story of the paper's §3 "Problem" — and of
// its "Solution by Isolation" — on the real protocol stack.
//
// Site B relays a reliable broadcast from a crashed origin A to a freshly
// joined site C. B is processing the view change [+C] at the same moment
// the message arrives. RelCast installs the new view before RelComm does;
// inside that window B's rebroadcast to C hits RelComm's stale view and is
// silently discarded — the message is lost forever, because RelCast has
// already marked it seen and the origin is gone.
//
// Under the Cactus-model None controller the interleaving happens and the
// message is lost. Under SAMOA's isolated construct (VCAbasic), the two
// computations cannot interleave and C receives the message — with zero
// changes to the protocol code.
package main

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/simnet"
)

func run(name string, ctrl core.Controller) {
	net := simnet.New(simnet.Config{Nodes: 3, Seed: 7})
	defer net.Close()

	inWindow := make(chan struct{}, 1)
	release := make(chan struct{})
	delivered := make(chan struct{}, 4)

	// C: the new site; it already knows the view it joined into.
	c := gc.NewSite(gc.Config{
		Net: net, ID: 2, InitialView: gc.NewView(0, 1, 2), FDInterval: -1,
		RDeliver: func(from simnet.NodeID, data []byte) {
			delivered <- struct{}{}
		},
	})
	c.Start()
	defer c.Stop()

	// B: the relay, instrumented to pause in the §3 window (after
	// RelCast's view update, before RelComm's).
	b := gc.NewSite(gc.Config{
		Net: net, ID: 1, InitialView: gc.NewView(0, 1), FDInterval: -1,
		Controller: ctrl,
		Passive:    true, // only the two orchestrated computations run on B
		AfterRelCastView: func() {
			select {
			case inWindow <- struct{}{}:
			default:
			}
			<-release
		},
	})
	b.Start()
	defer b.Stop()

	// A (site 0) broadcast m, reached only B, and crashed.
	m := gc.BuildCastDatagram(0, 1, gc.MsgID{Origin: 0, Seq: 1}, []byte("m"))
	net.Crash(0)

	fmt.Printf("— %s —\n", name)
	fmt.Println("  B starts installing view {0,1,2} (Membership delivered [+C])")
	viewDone := make(chan error, 1)
	go func() { viewDone <- b.InjectViewChange('+', 2) }()
	<-inWindow
	fmt.Println("  B is in the window: RelCast has {0,1,2}, RelComm still has {0,1}")

	fmt.Println("  m (from crashed A) arrives at B now")
	mDone := make(chan error, 1)
	go func() { mDone <- b.InjectDatagram(m) }()

	if name == "cactus-style (None)" {
		<-mDone // interleaves freely inside the window
	} else {
		time.Sleep(30 * time.Millisecond) // m parks on the controller
	}
	close(release)
	<-viewDone
	if name != "cactus-style (None)" {
		<-mDone
	}

	select {
	case <-delivered:
		fmt.Printf("  C received m ✓ (RelComm dropped %d sends)\n\n", b.DroppedStale())
	case <-time.After(300 * time.Millisecond):
		fmt.Printf("  C NEVER receives m ✗ — RelComm silently dropped %d send(s) to C\n\n", b.DroppedStale())
	}
}

// runUpgrade is the zero-downtime act: a 3-site group under live ABcast
// traffic receives a protocol-version bump ('^') through the total
// order. Every site hot-swaps its app microprotocol — one configuration
// epoch per site, in-flight computations finishing on the old one — and
// not a single delivery is lost or reordered.
func runUpgrade() {
	net := simnet.New(simnet.Config{Nodes: 3, Seed: 7})
	defer net.Close()

	view := gc.NewView(0, 1, 2)
	counts := make([]chan struct{}, 3)
	sites := make([]*gc.Site, 3)
	for i := range sites {
		i := i
		counts[i] = make(chan struct{}, 64)
		sites[i] = gc.NewSite(gc.Config{
			Net: net, ID: simnet.NodeID(i), InitialView: view, FDInterval: -1,
			Deliver: func(simnet.NodeID, []byte) { counts[i] <- struct{}{} },
		})
		sites[i].Start()
		defer sites[i].Stop()
	}

	fmt.Println("— live upgrade (epoch swap) —")
	const msgs = 10
	for k := 0; k < msgs; k++ {
		if err := sites[k%3].ABcast([]byte{byte(k)}); err != nil {
			fmt.Println("  broadcast:", err)
			return
		}
		if k == msgs/2 {
			fmt.Println("  mid-traffic: site 0 proposes protocol v2 ('^' rides the total order)")
			if err := sites[0].ProposeUpgrade(2); err != nil {
				fmt.Println("  upgrade:", err)
				return
			}
		}
	}
	for i, ch := range counts {
		for k := 0; k < msgs; k++ {
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				fmt.Printf("  site %d delivered only %d/%d ✗\n", i, k, msgs)
				return
			}
		}
	}
	for _, s := range sites {
		fmt.Printf("  site %d: app v%d, stack epoch %d, view %s — all %d deliveries intact ✓\n",
			s.ID(), s.AppVersion(), s.Epoch(), s.View(), msgs)
	}
	fmt.Println()
}

func main() {
	run("cactus-style (None)", cc.NewNone())
	run("SAMOA isolated (VCAbasic)", cc.NewVCABasic())
	runUpgrade()
	fmt.Println("Same protocol code; only the controller differs (paper §3–§4).")
}
