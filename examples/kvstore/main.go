// Command kvstore runs a replicated key-value store — state-machine
// replication on top of the whole reproduction: SAMOA-scheduled
// microprotocols, reliable broadcast, consensus, atomic broadcast.
//
// Three replicas race compare-and-swap operations on one counter; because
// every operation rides the total order, every increment is applied
// exactly once on every replica, with no locks anywhere in the
// application: the counter ends exactly at the number of increments.
package main

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/gc"
	"repro/internal/kvstore"
	"repro/internal/simnet"
)

func main() {
	net := simnet.New(simnet.Config{
		Nodes:    3,
		MinDelay: 100 * time.Microsecond,
		MaxDelay: 1500 * time.Microsecond,
		LossProb: 0.03,
		Seed:     2026,
	})
	defer net.Close()

	view := gc.NewView(0, 1, 2)
	stores := make([]*kvstore.Store, 3)
	for i := range stores {
		stores[i] = kvstore.New(kvstore.Config{
			Net: net, ID: simnet.NodeID(i), InitialView: view,
			Site: gc.Config{FDInterval: -1, RTO: 15 * time.Millisecond},
		})
		stores[i].Start()
		defer stores[i].Stop()
	}

	must(stores[0].Put("counter", "0"))

	const perReplica = 10
	fmt.Printf("3 replicas, %d CAS-increments each, over a lossy reordering network…\n", perReplica)
	start := time.Now()
	var wg sync.WaitGroup
	retries := make([]int, 3)
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *kvstore.Store) {
			defer wg.Done()
			for n := 0; n < perReplica; n++ {
				for { // optimistic CAS loop
					cur, _ := s.Get("counter")
					v, _ := strconv.Atoi(cur)
					ok, err := s.CAS("counter", cur, strconv.Itoa(v+1))
					if err != nil {
						panic(err)
					}
					if ok {
						break
					}
					retries[i]++
				}
			}
		}(i, s)
	}
	wg.Wait()

	// Let the last applies reach every replica.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a, _ := stores[0].Get("counter")
		b, _ := stores[1].Get("counter")
		c, _ := stores[2].Get("counter")
		if a == b && b == c && a == strconv.Itoa(3*perReplica) {
			fmt.Printf("\nconverged in %v: counter = %s on every replica (want %d) ✓\n",
				time.Since(start).Round(time.Millisecond), a, 3*perReplica)
			break
		}
		if time.Now().After(deadline) {
			fmt.Printf("\nDIVERGED: %s / %s / %s\n", a, b, c)
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("CAS retries per replica (lost races resolved by the total order): %v\n", retries)
	st := net.Stats()
	fmt.Printf("network: %d datagrams, %d lost and repaired by RelComm\n", st.Sent, st.DroppedLoss)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
