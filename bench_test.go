// Root-level testing.B benchmarks, one family per experiment in
// EXPERIMENTS.md. Each benchmark exercises the corresponding workload from
// internal/bench per iteration; run cmd/samoa-bench for the full tables.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
)

// BenchmarkE1Fig1 runs one concurrent execution of Figure 1's external
// events per iteration, per controller.
func BenchmarkE1Fig1(b *testing.B) {
	for _, v := range bench.PaperVariants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			f := bench.NewFig1(v, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.RunOnce()
			}
		})
	}
}

// BenchmarkE2SpawnOnly measures the cost of an empty computation
// (spawn + complete).
func BenchmarkE2SpawnOnly(b *testing.B) {
	for _, v := range bench.Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			w := bench.NewCallWorkload(v, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunSpawnOnly(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2HandlerCalls measures a computation of 16 uncontended
// handler calls — the E2 overhead figure.
func BenchmarkE2HandlerCalls(b *testing.B) {
	for _, v := range bench.Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			w := bench.NewCallWorkload(v, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunComputation(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Chain measures throughput of 3-stage chain computations with
// CPU work, on disjoint and shared microprotocol sets, at 1 and 8 workers.
func BenchmarkE3Chain(b *testing.B) {
	for _, shared := range []bool{false, true} {
		shape := "disjoint"
		if shared {
			shape = "shared"
		}
		for _, v := range bench.PaperVariants() {
			if v.Name == "none" && shared {
				continue
			}
			for _, g := range []int{1, 8} {
				v, g := v, g
				b.Run(fmt.Sprintf("%s/%s/g%d", shape, v.Name, g), func(b *testing.B) {
					w := bench.NewScaleWorkload(v, g, shared, 50*time.Microsecond)
					ops := b.N
					if ops < g {
						ops = g
					}
					b.ResetTimer()
					if _, err := w.Run(g, ops); err != nil {
						b.Fatal(err)
					}
				})
			}
		}
	}
}

// BenchmarkE4ABcast measures one atomic broadcast delivered at every site
// of a 3-site group, per controller.
func BenchmarkE4ABcast(b *testing.B) {
	for _, v := range bench.PaperVariants() {
		if v.Name == "none" {
			continue
		}
		v := v
		b.Run(v.Name+"/n3", func(b *testing.B) {
			c := bench.NewCluster(v, 3, 77)
			defer c.Stop()
			b.ResetTimer()
			if _, err := c.Broadcast(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE5Pipeline measures a 16-item batch through the 3-stage
// pipeline per iteration, per spec-precision ablation point.
func BenchmarkE5Pipeline(b *testing.B) {
	for _, cfg := range bench.PipelineConfigs(200 * time.Microsecond) {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			p := bench.NewPipeline(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6ViewRace measures one full §3 race orchestration under
// VCAbasic (site setup + adversarial schedule + delivery).
func BenchmarkE6ViewRace(b *testing.B) {
	v, _ := bench.VariantByName("vca-basic")
	for i := 0; i < b.N; i++ {
		if res := bench.RunE6Race(v); !res.Delivered {
			b.Fatal("isolating controller lost the message")
		}
	}
}

// BenchmarkE8Rollback measures 4 workers × b.N contended computations
// (3 of 4 microprotocols each) per controller group — versioning vs
// rollback/recovery.
func BenchmarkE8Rollback(b *testing.B) {
	for _, name := range []string{"serial", "vca-basic", "tso", "wait-die"} {
		name := name
		b.Run(name, func(b *testing.B) {
			v, ok := bench.VariantByName(name)
			if !ok {
				b.Fatal("unknown variant")
			}
			w := bench.NewRollbackWorkload(v.New(), 4, 20*time.Microsecond)
			per := b.N/4 + 1
			b.ResetTimer()
			if _, err := w.Run(4, per, 3, 7); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE9Transport measures b.N 256-byte messages through the full
// (reliable, ordered, checksummed) ctp stack on a clean link.
func BenchmarkE9Transport(b *testing.B) {
	for _, shape := range bench.TransportShapes() {
		if shape.Loss > 0 || shape.Corrupt > 0 || !shape.Reliable {
			// Adversity runs are wall-clock noise, and unreliable
			// compositions legitimately drop under b.N-sized bursts
			// (inbox overflow, no repair); samoa-bench -exp e9 covers
			// the full grid at controlled message counts.
			continue
		}
		shape := shape
		b.Run(shape.Name, func(b *testing.B) {
			v, _ := bench.VariantByName("vca-basic")
			tr, err := bench.NewTransport(v, shape, 31)
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Stop()
			b.ResetTimer()
			if _, got, err := tr.Run(b.N, 256); err != nil || got < int64(b.N) {
				b.Fatalf("got %d of %d (err %v)", got, b.N, err)
			}
		})
	}
}

// BenchmarkE7ReadHeavy measures 8 workers × b.N read-only computations on
// one shared microprotocol — the §7 isolation-level ablation.
func BenchmarkE7ReadHeavy(b *testing.B) {
	for _, name := range []string{"serial", "vca-basic", "tso", "vca-rw"} {
		name := name
		b.Run(name, func(b *testing.B) {
			v, ok := bench.VariantByName(name)
			if !ok {
				b.Fatal("unknown variant")
			}
			w := bench.NewRWWorkload(v.New(), 50*time.Microsecond)
			per := b.N/8 + 1
			b.ResetTimer()
			if _, _, err := w.Run(8, per, 1.0); err != nil {
				b.Fatal(err)
			}
		})
	}
}
