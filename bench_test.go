// Root-level testing.B benchmarks, one family per experiment in
// EXPERIMENTS.md. Each benchmark exercises the corresponding workload from
// internal/bench per iteration; run cmd/samoa-bench for the full tables.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// BenchmarkE1Fig1 runs one concurrent execution of Figure 1's external
// events per iteration, per controller.
func BenchmarkE1Fig1(b *testing.B) {
	for _, v := range bench.PaperVariants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			f := bench.NewFig1(v, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.RunOnce()
			}
		})
	}
}

// BenchmarkE2SpawnOnly measures the cost of an empty computation
// (spawn + complete).
func BenchmarkE2SpawnOnly(b *testing.B) {
	for _, v := range bench.Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			w := bench.NewCallWorkload(v, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunSpawnOnly(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2HandlerCalls measures a computation of 16 uncontended
// handler calls — the E2 overhead figure.
func BenchmarkE2HandlerCalls(b *testing.B) {
	for _, v := range bench.Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			w := bench.NewCallWorkload(v, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunComputation(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Chain measures throughput of 3-stage chain computations with
// CPU work, on disjoint and shared microprotocol sets, at 1 and 8 workers.
func BenchmarkE3Chain(b *testing.B) {
	for _, shared := range []bool{false, true} {
		shape := "disjoint"
		if shared {
			shape = "shared"
		}
		for _, v := range bench.PaperVariants() {
			if v.Name == "none" && shared {
				continue
			}
			for _, g := range []int{1, 8} {
				v, g := v, g
				b.Run(fmt.Sprintf("%s/%s/g%d", shape, v.Name, g), func(b *testing.B) {
					w := bench.NewScaleWorkload(v, g, shared, 50*time.Microsecond)
					ops := b.N
					if ops < g {
						ops = g
					}
					b.ResetTimer()
					if _, err := w.Run(g, ops); err != nil {
						b.Fatal(err)
					}
				})
			}
		}
	}
}

// BenchmarkE4ABcast measures one atomic broadcast delivered at every site
// of a 3-site group, per controller.
func BenchmarkE4ABcast(b *testing.B) {
	for _, v := range bench.PaperVariants() {
		if v.Name == "none" {
			continue
		}
		v := v
		b.Run(v.Name+"/n3", func(b *testing.B) {
			c := bench.NewCluster(v, 3, 77)
			defer c.Stop()
			b.ResetTimer()
			if _, err := c.Broadcast(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE5Pipeline measures a 16-item batch through the 3-stage
// pipeline per iteration, per spec-precision ablation point.
func BenchmarkE5Pipeline(b *testing.B) {
	for _, cfg := range bench.PipelineConfigs(200 * time.Microsecond) {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			p := bench.NewPipeline(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6ViewRace measures one full §3 race orchestration under
// VCAbasic (site setup + adversarial schedule + delivery).
func BenchmarkE6ViewRace(b *testing.B) {
	v, _ := bench.VariantByName("vca-basic")
	for i := 0; i < b.N; i++ {
		if res := bench.RunE6Race(v); !res.Delivered {
			b.Fatal("isolating controller lost the message")
		}
	}
}

// BenchmarkE8Rollback measures 4 workers × b.N contended computations
// (3 of 4 microprotocols each) per controller group — versioning vs
// rollback/recovery.
func BenchmarkE8Rollback(b *testing.B) {
	for _, name := range []string{"serial", "vca-basic", "tso", "wait-die"} {
		name := name
		b.Run(name, func(b *testing.B) {
			v, ok := bench.VariantByName(name)
			if !ok {
				b.Fatal("unknown variant")
			}
			w := bench.NewRollbackWorkload(v.New(), 4, 20*time.Microsecond)
			per := b.N/4 + 1
			b.ResetTimer()
			if _, err := w.Run(4, per, 3, 7); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE9Transport measures b.N 256-byte messages through the full
// (reliable, ordered, checksummed) ctp stack on a clean link.
func BenchmarkE9Transport(b *testing.B) {
	for _, shape := range bench.TransportShapes() {
		if shape.Loss > 0 || shape.Corrupt > 0 || !shape.Reliable {
			// Adversity runs are wall-clock noise, and unreliable
			// compositions legitimately drop under b.N-sized bursts
			// (inbox overflow, no repair); samoa-bench -exp e9 covers
			// the full grid at controlled message counts.
			continue
		}
		shape := shape
		b.Run(shape.Name, func(b *testing.B) {
			v, _ := bench.VariantByName("vca-basic")
			tr, err := bench.NewTransport(v, shape, 31)
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Stop()
			b.ResetTimer()
			if _, got, err := tr.Run(b.N, 256); err != nil || got < int64(b.N) {
				b.Fatalf("got %d of %d (err %v)", got, b.N, err)
			}
		})
	}
}

// BenchmarkTriggerSealed measures the sealed-stack synchronous dispatch
// fast path: one admitted computation issuing nop Trigger calls. This is
// the per-call framework overhead floor; the sealed path must stay at
// 0 allocs/op.
func BenchmarkTriggerSealed(b *testing.B) {
	for _, name := range []string{"none", "vca-basic"} {
		v, ok := bench.VariantByName(name)
		if !ok {
			b.Fatal("unknown variant")
		}
		b.Run(name, func(b *testing.B) {
			st := core.NewStack(v.New())
			mp := core.NewMicroprotocol("mp")
			h := mp.AddHandler("h", func(*core.Context, core.Message) error { return nil })
			st.Register(mp)
			et := core.NewEventType("e")
			st.Bind(et, h)
			b.ReportAllocs()
			err := st.Isolated(core.Access(mp), func(ctx *core.Context) error {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := ctx.Trigger(et, nil); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchSnap is a trivial snapshotter so wait-die can run spawn-only
// benchmarks (it snapshots lazily at Enter, never reached here).
type benchSnap struct{}

func (benchSnap) Snapshot() any { return nil }
func (benchSnap) Restore(_ any) {}

// BenchmarkSpawnComplete measures the controller-level cost of one empty
// computation — Spawn, RootReturned, Complete — over a 4-microprotocol
// spec. This isolates rule 1 + rule 3 bookkeeping from dispatch.
func BenchmarkSpawnComplete(b *testing.B) {
	for _, v := range bench.Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			mps := make([]*core.Microprotocol, 4)
			hs := make([]*core.Handler, 4)
			for i := range mps {
				mps[i] = core.NewMicroprotocol(fmt.Sprintf("mp%d", i))
				mps[i].SetSnapshotter(benchSnap{})
				hs[i] = mps[i].AddHandler("h", func(*core.Context, core.Message) error { return nil })
			}
			var spec *core.Spec
			switch v.Kind {
			case "bound":
				bounds := make(map[*core.Microprotocol]int, len(mps))
				for _, mp := range mps {
					bounds[mp] = 4
				}
				spec = core.AccessBound(bounds)
			case "route":
				g := core.NewRouteGraph().Root(hs...)
				spec = core.Route(g)
			default:
				spec = core.Access(mps...)
			}
			ctrl := v.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok, err := ctrl.Spawn(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				ctrl.RootReturned(tok)
				ctrl.Complete(tok)
			}
		})
	}
}

// contentionStack builds `lanes` single-microprotocol lanes (no-op
// handler, one event, one Access spec each) on a fresh stack for v.
func contentionStack(v bench.Variant, lanes int) (*core.Stack, []*core.EventType, []*core.Spec) {
	st := core.NewStack(v.New())
	ets := make([]*core.EventType, lanes)
	specs := make([]*core.Spec, lanes)
	for i := 0; i < lanes; i++ {
		mp := core.NewMicroprotocol(fmt.Sprintf("mp%d", i))
		h := mp.AddHandler("h", func(*core.Context, core.Message) error { return nil })
		st.Register(mp)
		ets[i] = core.NewEventType(fmt.Sprintf("e%d", i))
		st.Bind(ets[i], h)
		specs[i] = core.Access(mp)
	}
	return st, ets, specs
}

// BenchmarkContentionDisjoint measures parallel scaling of full
// computations on disjoint microprotocol sets — framework-level
// contention (spawn admission, dispatch, wakeups) with zero algorithmic
// conflicts; under the sharded tables this is the lock-free CAS
// fast-path regime. The p1/p2/p4/p8 sub-benchmarks set b.SetParallelism,
// so a plain `go test -bench ContentionDisjoint` produces the scaling
// curve (p× goroutines per GOMAXPROCS); sweeping -cpu 1,2,4,8 on
// multi-core hardware additionally scales the Ps themselves.
func BenchmarkContentionDisjoint(b *testing.B) {
	const lanes = 8
	for _, name := range []string{"none", "vca-basic", "tso"} {
		v, ok := bench.VariantByName(name)
		if !ok {
			b.Fatal("unknown variant")
		}
		b.Run(name, func(b *testing.B) {
			for _, p := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
					st, ets, specs := contentionStack(v, lanes)
					var next atomic.Uint64
					b.SetParallelism(p)
					b.ReportAllocs()
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						lane := int(next.Add(1)-1) % lanes
						for pb.Next() {
							if err := st.External(specs[lane], ets[lane], nil); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
			}
		})
	}
}

// BenchmarkContentionZipf draws each computation's single-microprotocol
// footprint zipfian over 16 lanes: a few hot lanes see most spawns, so
// fast-path claims mix with ordered-lock slow claims and the occasional
// abandoned-claim phantom release.
func BenchmarkContentionZipf(b *testing.B) {
	const lanes = 16
	for _, name := range []string{"none", "vca-basic", "tso"} {
		v, ok := bench.VariantByName(name)
		if !ok {
			b.Fatal("unknown variant")
		}
		b.Run(name, func(b *testing.B) {
			st, ets, specs := contentionStack(v, lanes)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				z := rand.NewZipf(rand.New(rand.NewSource(int64(next.Add(1)))), 1.2, 1, lanes-1)
				for pb.Next() {
					lane := int(z.Uint64())
					if err := st.External(specs[lane], ets[lane], nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkContentionHotKey gives every computation a two-slot footprint
// {own, hot} sharing one hot microprotocol: every spawn conflicts there,
// so admission always takes the ordered-lock slow path and the isolating
// controllers serialize on the hot slot by design — the floor of the
// scaling story, reported honestly next to the disjoint ceiling.
func BenchmarkContentionHotKey(b *testing.B) {
	const lanes = 8
	for _, name := range []string{"none", "vca-basic", "tso"} {
		v, ok := bench.VariantByName(name)
		if !ok {
			b.Fatal("unknown variant")
		}
		b.Run(name, func(b *testing.B) {
			st := core.NewStack(v.New())
			hot := core.NewMicroprotocol("hot")
			hotH := hot.AddHandler("h", func(*core.Context, core.Message) error { return nil })
			st.Register(hot)
			hotEv := core.NewEventType("e-hot")
			st.Bind(hotEv, hotH)
			ets := make([]*core.EventType, lanes)
			specs := make([]*core.Spec, lanes)
			for i := 0; i < lanes; i++ {
				mp := core.NewMicroprotocol(fmt.Sprintf("own%d", i))
				h := mp.AddHandler("h", func(ctx *core.Context, msg core.Message) error {
					return ctx.Trigger(hotEv, msg)
				})
				st.Register(mp)
				ets[i] = core.NewEventType(fmt.Sprintf("e%d", i))
				st.Bind(ets[i], h)
				specs[i] = core.Access(mp, hot)
			}
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				lane := int(next.Add(1)-1) % lanes
				for pb.Next() {
					if err := st.External(specs[lane], ets[lane], nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkE7ReadHeavy measures 8 workers × b.N read-only computations on
// one shared microprotocol — the §7 isolation-level ablation.
func BenchmarkE7ReadHeavy(b *testing.B) {
	for _, name := range []string{"serial", "vca-basic", "tso", "vca-rw"} {
		name := name
		b.Run(name, func(b *testing.B) {
			v, ok := bench.VariantByName(name)
			if !ok {
				b.Fatal("unknown variant")
			}
			w := bench.NewRWWorkload(v.New(), 50*time.Microsecond)
			per := b.N/8 + 1
			b.ResetTimer()
			if _, _, err := w.Run(8, per, 1.0); err != nil {
				b.Fatal(err)
			}
		})
	}
}
