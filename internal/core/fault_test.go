package core_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

// faultStack builds a one-microprotocol stack under VCAbasic with a
// benign handler bound to the returned event.
func faultStack(t *testing.T) (*core.Stack, *core.Microprotocol, *core.EventType) {
	t.Helper()
	s := core.NewStack(cc.NewVCABasic())
	mp := core.NewMicroprotocol("fp")
	h := mp.AddHandler("h", nopHandler)
	s.Register(mp)
	et := core.NewEventType("fe")
	s.Bind(et, h)
	return s, mp, et
}

func TestPanicInRootFunction(t *testing.T) {
	s, mp, _ := faultStack(t)
	err := s.Isolated(core.Access(mp), func(*core.Context) error {
		panic("root boom")
	})
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *core.PanicError", err)
	}
	if pe.Handler != "<root>" || pe.Value != "root boom" {
		t.Errorf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "root boom") {
		t.Errorf("Error() = %q", pe.Error())
	}
	// The stack stays usable.
	if err := s.Isolated(core.Access(mp), func(*core.Context) error { return nil }); err != nil {
		t.Fatalf("follow-up: %v", err)
	}
}

func TestPanicInForkJoinsSiblings(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	mp := core.NewMicroprotocol("fp")
	var sibling atomic.Bool
	h := mp.AddHandler("h", func(ctx *core.Context, _ core.Message) error {
		ctx.Fork(func(*core.Context) error { panic("fork boom") })
		ctx.Fork(func(*core.Context) error {
			sibling.Store(true)
			return nil
		})
		return nil
	})
	s.Register(mp)
	et := core.NewEventType("fe")
	s.Bind(et, h)
	err := s.External(core.Access(mp), et, nil)
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *core.PanicError", err)
	}
	if pe.Handler != "<fork>" {
		t.Errorf("PanicError.Handler = %q", pe.Handler)
	}
	if !sibling.Load() {
		t.Error("sibling fork did not run to completion")
	}
}

// TestPanicErrorNeverUnwrapsToAbort: a handler that panics with the
// retry sentinel must not trick the stack into the rollback loop — a
// panic is a fault, never a retry signal.
func TestPanicErrorNeverUnwrapsToAbort(t *testing.T) {
	pe := &core.PanicError{Value: core.ErrComputationAborted}
	if errors.Is(pe, core.ErrComputationAborted) {
		t.Fatal("PanicError must not unwrap to ErrComputationAborted")
	}
	pe2 := &core.PanicError{Value: core.ErrClosed}
	if !errors.Is(pe2, core.ErrClosed) {
		t.Fatal("other error panic values should stay inspectable")
	}
}

func TestIsolatedCtxPreCancelled(t *testing.T) {
	s, mp, _ := faultStack(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := s.IsolatedCtx(ctx, core.Access(mp), func(*core.Context) error {
		ran = true
		return nil
	})
	var de *core.DeadlineError
	if !errors.As(err, &de) || de.Stage != "spawn" {
		t.Fatalf("err = %v, want spawn-stage *core.DeadlineError", err)
	}
	if ran {
		t.Fatal("root ran under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("DeadlineError must unwrap to the context error")
	}
}

// TestDispatchRejectsAfterCancel: a cancellation mid-computation is
// honoured at the next dispatch — the in-flight handler finishes, the
// next Trigger is refused.
func TestDispatchRejectsAfterCancel(t *testing.T) {
	s, mp, et := faultStack(t)
	ctx, cancel := context.WithCancel(context.Background())
	err := s.IsolatedCtx(ctx, core.Access(mp), func(c *core.Context) error {
		if err := c.Trigger(et, nil); err != nil {
			return err
		}
		cancel()
		return c.Trigger(et, nil)
	})
	var de *core.DeadlineError
	if !errors.As(err, &de) || de.Stage != "dispatch" {
		t.Fatalf("err = %v, want dispatch-stage *core.DeadlineError", err)
	}
}

func TestSpecTimeoutExpiresComputation(t *testing.T) {
	s, mp, _ := faultStack(t)
	spec := core.Access(mp).WithTimeout(10 * time.Millisecond)
	err := s.Isolated(spec, func(c *core.Context) error {
		deadline, ok := c.Ctx().Deadline()
		if !ok || time.Until(deadline) > 10*time.Millisecond {
			t.Error("computation context missing the spec deadline")
		}
		<-c.Ctx().Done()
		return c.Ctx().Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if err := s.Isolated(core.Access(mp), func(*core.Context) error { return nil }); err != nil {
		t.Fatalf("follow-up: %v", err)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	s, mp, et := faultStack(t)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if err := s.External(core.Access(mp), et, nil); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("External after Close = %v, want ErrClosed", err)
	}
	if err := s.Isolated(core.Access(mp), func(*core.Context) error { return nil }); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Isolated after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestCloseDrainsInFlight(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	mp := core.NewMicroprotocol("fp")
	var entered, release atomic.Bool
	h := mp.AddHandler("slow", func(*core.Context, core.Message) error {
		entered.Store(true)
		for !release.Load() {
			runtime.Gosched()
		}
		return nil
	})
	s.Register(mp)
	et := core.NewEventType("fe")
	s.Bind(et, h)

	compDone := make(chan error, 1)
	go func() { compDone <- s.External(core.Access(mp), et, nil) }()
	for !entered.Load() {
		runtime.Gosched()
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- s.Close() }()
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned %v while a computation was in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	release.Store(true)
	if err := <-compDone; err != nil {
		t.Fatalf("in-flight computation: %v", err)
	}
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the stack drained")
	}
}

func TestCloseContextTimesOutOnStuckComputation(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	mp := core.NewMicroprotocol("fp")
	var entered, release atomic.Bool
	h := mp.AddHandler("stuck", func(*core.Context, core.Message) error {
		entered.Store(true)
		for !release.Load() {
			runtime.Gosched()
		}
		return nil
	})
	s.Register(mp)
	et := core.NewEventType("fe")
	s.Bind(et, h)
	compDone := make(chan error, 1)
	go func() { compDone <- s.External(core.Access(mp), et, nil) }()
	for !entered.Load() {
		runtime.Gosched()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.CloseContext(ctx)
	var de *core.DeadlineError
	if !errors.As(err, &de) || de.Stage != "drain" {
		t.Fatalf("CloseContext = %v, want drain-stage *core.DeadlineError", err)
	}
	release.Store(true)
	if err := <-compDone; err != nil {
		t.Fatalf("stuck computation after release: %v", err)
	}
}
