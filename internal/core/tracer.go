package core

// Tracer observes the execution of a stack: computation spawns and
// completions, and the commencement and completion of every handler
// execution. Package trace provides a Recorder that reconstructs the
// paper's runs (lists of (event, handler) pairs) and checks the isolation
// property on them.
//
// Implementations must be safe for concurrent use; invocation IDs are
// process-unique and shared between the HandlerStart and HandlerEnd of one
// handler execution.
type Tracer interface {
	// Spawned reports a new computation and its declared spec.
	Spawned(comp uint64, spec *Spec)
	// HandlerStart reports that handler h commenced executing in
	// computation comp, triggered by an event of type et (nil when the
	// computation's root called the handler through External).
	HandlerStart(comp, inv uint64, et *EventType, h *Handler)
	// HandlerEnd reports that the execution started with the same inv
	// finished.
	HandlerEnd(comp, inv uint64, h *Handler)
	// Completed reports that the computation finished entirely.
	Completed(comp uint64)
	// Aborted reports that the computation's attempt was rolled back by
	// a Restorer controller; its recorded effects did not happen. A
	// retry attempt appears as a fresh computation ID.
	Aborted(comp uint64)
}

// nopTracer is used when the stack has no tracer configured.
type nopTracer struct{}

func (nopTracer) Spawned(uint64, *Spec)                             {}
func (nopTracer) HandlerStart(uint64, uint64, *EventType, *Handler) {}
func (nopTracer) HandlerEnd(uint64, uint64, *Handler)               {}
func (nopTracer) Completed(uint64)                                  {}
func (nopTracer) Aborted(uint64)                                    {}
