package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// epochSnap is one installed configuration of a stack: an immutable
// binding table plus the drain accounting of every computation pinned to
// it. The paper's static-binding assumption holds *within* an epoch —
// dispatch over a published epoch is lock-free and allocation-free — and
// live reconfiguration is modelled as a sequence of epochs: Reconfigure
// installs epoch N+1 with a pointer swap, computations already running
// keep dispatching against epoch N's table, and epoch N is retired once
// its last computation exits.
type epochSnap struct {
	n        uint64
	bindings map[*EventType][]*Handler

	// active counts computations currently pinned to this epoch; begun and
	// ended count its controller lifecycle legs, so retirement can verify
	// the same balance Stack.Close verifies globally.
	active atomic.Int64
	begun  atomic.Uint64
	ended  atomic.Uint64

	// superseded is set once a newer epoch has been installed; retirement
	// requires superseded && active == 0. retired marks the epoch dead —
	// dispatch into a retired epoch is counted as a bug by the dead-epoch
	// probe. drained closes at retirement (or, for the final epoch, never).
	superseded atomic.Bool
	retired    atomic.Bool
	drained    chan struct{}
	retireOnce sync.Once

	// succ describes the reconfiguration that superseded this epoch; it is
	// what the controller's RetireEpoch receives once the epoch drains.
	succ EpochChange
}

// EpochChange describes one reconfiguration to the stack's controller:
// the number of the newly installed epoch and the microprotocols the edit
// added, removed, and replaced. Controllers that keep per-microprotocol
// state (the version tables) implement Reconfigurer to retire removed
// slots, admit added ones, and thread replacements onto their
// predecessor's version chain.
type EpochChange struct {
	Epoch    uint64
	Added    []*Microprotocol
	Removed  []*Microprotocol
	Replaced []ReplacedMP
}

// ReplacedMP is one Epoch.Replace pair. Replacement is stronger than
// remove-plus-add: the new microprotocol inherits the old one's isolation
// identity, so computations of the old epoch still using Old serialize
// against new-epoch computations using New — the two versions may share
// state across the swap without a race. Epoch-aware controllers implement
// this by continuing Old's version slot under New.
type ReplacedMP struct {
	Old, New *Microprotocol
}

// Reconfigurer is the optional Controller interface for epoch-aware
// controllers. InstallEpoch runs synchronously inside Reconfigure, after
// the new epoch is published: the controller must stop admitting new
// claims on removed microprotocols (added ones start quiescent).
// RetireEpoch runs once the old epoch's last computation has exited: the
// controller drains removed slots to quiescence (lv == gv) and retires
// them; a non-nil error is recorded and surfaces from Stack.EpochErrs.
type Reconfigurer interface {
	InstallEpoch(EpochChange)
	RetireEpoch(EpochChange) error
}

// EpochStat is one epoch's drain accounting, for observability and the
// chaos harness's balance assertions.
type EpochStat struct {
	Epoch        uint64
	Begun, Ended uint64
	Active       int64
	Superseded   bool
	Retired      bool
}

// Epoch is the mutable clone of a stack's configuration that a
// Reconfigure edit operates on. All methods record validation errors on
// the epoch instead of panicking — a failed edit aborts the
// reconfiguration with the joined errors and leaves the live stack
// untouched. An Epoch is only valid inside its edit function.
type Epoch struct {
	stack    *Stack
	n        uint64
	bindings map[*EventType][]*Handler
	mps      map[string]*Microprotocol
	repl     []ReplacedMP
	errs     []error
}

// newEpochLocked clones the current configuration. Callers hold s.mu.
func (s *Stack) newEpochLocked() *Epoch {
	e := &Epoch{
		stack:    s,
		n:        s.snap.Load().n + 1,
		bindings: make(map[*EventType][]*Handler, len(s.bindings)),
		mps:      make(map[string]*Microprotocol, len(s.mps)),
	}
	for et, hs := range s.bindings {
		e.bindings[et] = append([]*Handler(nil), hs...)
	}
	for name, mp := range s.mps {
		e.mps[name] = mp
	}
	return e
}

func (e *Epoch) fail(format string, args ...any) {
	e.errs = append(e.errs, fmt.Errorf("samoa: epoch %d edit: "+format, append([]any{e.n}, args...)...))
}

// Number reports the epoch number this edit will install as.
func (e *Epoch) Number() uint64 { return e.n }

// MP returns the microprotocol with the given name in this epoch, or nil.
func (e *Epoch) MP(name string) *Microprotocol { return e.mps[name] }

// Register adds microprotocols to the epoch. A microprotocol registered
// with another stack, or a duplicate name, is a validation error.
func (e *Epoch) Register(mps ...*Microprotocol) {
	for _, mp := range mps {
		if mp == nil {
			e.fail("Register nil microprotocol")
			continue
		}
		if mp.stack != nil && mp.stack != e.stack {
			e.fail("microprotocol %s is registered with another stack", mp.name)
			continue
		}
		if _, dup := e.mps[mp.name]; dup {
			e.fail("duplicate microprotocol name %q", mp.name)
			continue
		}
		e.mps[mp.name] = mp
	}
}

// Remove deletes a microprotocol from the epoch and strips every binding
// of its handlers. Computations pinned to earlier epochs keep running
// against it; the controller drains and retires its version slot after
// the old epoch's last computation exits.
func (e *Epoch) Remove(name string) {
	mp := e.mps[name]
	if mp == nil {
		e.fail("Remove %q: no such microprotocol", name)
		return
	}
	delete(e.mps, name)
	for et, hs := range e.bindings {
		out := hs[:0]
		for _, h := range hs {
			if h.mp != mp {
				out = append(out, h)
			}
		}
		if len(out) == 0 {
			delete(e.bindings, et)
		} else {
			e.bindings[et] = out
		}
	}
}

// Replace substitutes next for the named microprotocol, rewriting every
// binding slot in place: a bound handler of the old microprotocol is
// replaced by next's handler of the same name, preserving bind order —
// the upgrade idiom. next must provide a handler for every bound handler
// of the old microprotocol.
//
// Replace preserves isolation identity: epoch-aware controllers continue
// the old microprotocol's version chain under next (see ReplacedMP), so
// in-flight computations of the superseded epoch serialize against
// new-epoch computations even when the two versions share state. Remove
// followed by Register gives the replacement a fresh, independent slot
// instead.
func (e *Epoch) Replace(name string, next *Microprotocol) {
	old := e.mps[name]
	if old == nil {
		e.fail("Replace %q: no such microprotocol", name)
		return
	}
	if next == nil {
		e.fail("Replace %q with nil microprotocol", name)
		return
	}
	if next.stack != nil && next.stack != e.stack {
		e.fail("Replace %q: %s is registered with another stack", name, next.name)
		return
	}
	if cur, dup := e.mps[next.name]; dup && cur != old {
		e.fail("Replace %q: name %q already registered", name, next.name)
		return
	}
	for _, hs := range e.bindings {
		for i, h := range hs {
			if h.mp != old {
				continue
			}
			nh := next.Handler(h.name)
			if nh == nil {
				e.fail("Replace %q: replacement %s has no handler %q", name, next.name, h.name)
				return
			}
			hs[i] = nh
		}
	}
	delete(e.mps, name)
	e.mps[next.name] = next
	e.repl = append(e.repl, ReplacedMP{Old: old, New: next})
}

// Bind appends handlers to an event type's binding, in order. Handlers
// must belong to microprotocols present in this epoch.
func (e *Epoch) Bind(et *EventType, hs ...*Handler) {
	if et == nil {
		e.fail("Bind nil event type")
		return
	}
	for _, h := range hs {
		if h == nil {
			e.fail("Bind %q: nil handler", et.Name())
			continue
		}
		if e.mps[h.mp.name] != h.mp {
			e.fail("Bind %q: handler %s's microprotocol is not in this epoch", et.Name(), h)
			continue
		}
		e.bindings[et] = append(e.bindings[et], h)
	}
}

// Unbind removes every handler bound to the event type.
func (e *Epoch) Unbind(et *EventType) {
	if et == nil {
		e.fail("Unbind nil event type")
		return
	}
	delete(e.bindings, et)
}

// Rebind replaces the handlers bound to the event type.
func (e *Epoch) Rebind(et *EventType, hs ...*Handler) {
	e.Unbind(et)
	e.Bind(et, hs...)
}

// Bound returns the handlers bound to et in this epoch, in bind order.
func (e *Epoch) Bound(et *EventType) []*Handler {
	return append([]*Handler(nil), e.bindings[et]...)
}

// validate checks the edited configuration as a whole: recorded edit
// errors, plus every binding resolving to a registered microprotocol.
func (e *Epoch) validate() error {
	for et, hs := range e.bindings {
		for _, h := range hs {
			if e.mps[h.mp.name] != h.mp {
				e.fail("event %q bound to %s, whose microprotocol is not in this epoch", et.Name(), h)
			}
		}
	}
	return errors.Join(e.errs...)
}

// diffLocked computes the EpochChange relative to the stack's current
// registration, by identity: plain additions and removals, with Replace
// pairs — the old side leaving and the new side arriving — reported as
// Replaced instead of as a remove plus an add. Callers hold s.mu.
func (e *Epoch) diffLocked() EpochChange {
	ch := EpochChange{Epoch: e.n}
	out := map[*Microprotocol]bool{}
	in := map[*Microprotocol]bool{}
	for name, mp := range e.stack.mps {
		if e.mps[name] != mp {
			out[mp] = true
		}
	}
	for name, mp := range e.mps {
		if e.stack.mps[name] != mp {
			in[mp] = true
		}
	}
	for _, r := range e.repl {
		if out[r.Old] && in[r.New] {
			ch.Replaced = append(ch.Replaced, r)
			delete(out, r.Old)
			delete(in, r.New)
		}
	}
	for mp := range out {
		ch.Removed = append(ch.Removed, mp)
	}
	for mp := range in {
		ch.Added = append(ch.Added, mp)
	}
	return ch
}

// Reconfigure atomically installs a new configuration epoch on a live
// stack: edit receives a mutable clone of the current epoch to
// add/remove/replace microprotocols and rebind events; the result is
// validated and, if sound, published with one pointer swap. Computations
// already running keep dispatching against their pinned epoch and the old
// epoch retires — drain-accounted, controller notified — once its last
// computation exits; new computations land on the new epoch immediately.
// Trigger dispatch stays lock-free and allocation-free throughout.
//
// Reconfigure returns once the new epoch is installed, without waiting
// for the old epoch to drain (use ReconfigureContext to wait). A failed
// validation, a panicking edit, or a stack that is (or concurrently
// becomes) closed leaves the live configuration untouched; the
// commit-point check makes a racing Close win deterministically.
func (s *Stack) Reconfigure(edit func(*Epoch)) error {
	_, err := s.reconfigure(edit)
	return err
}

// ReconfigureContext is Reconfigure plus retirement: it additionally
// waits until the superseded epoch has fully drained — every computation
// pinned to it exited and the controller retired its slots — or ctx
// expires (the swap stays installed; only the wait is abandoned). The
// swap-latency this wait measures is the zero-downtime number.
func (s *Stack) ReconfigureContext(ctx context.Context, edit func(*Epoch)) error {
	old, err := s.reconfigure(edit)
	if err != nil || old == nil {
		return err
	}
	select {
	case <-old.drained:
		return nil
	case <-ctx.Done():
		return &DeadlineError{Stage: "retire", Err: ctx.Err()}
	}
}

func (s *Stack) reconfigure(edit func(*Epoch)) (*epochSnap, error) {
	if edit == nil {
		return nil, errors.New("samoa: Reconfigure with nil edit")
	}
	s.seal()
	if err := s.yieldSafe(nil, YieldReconfigure); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	ep := s.newEpochLocked()
	var editErr error
	func() {
		defer func() {
			if v := recover(); v != nil {
				editErr = &PanicError{Stack: s.name, Handler: "<reconfigure>", Value: v, Trace: debug.Stack()}
			}
		}()
		edit(ep)
	}()
	if editErr == nil {
		editErr = ep.validate()
	}
	if editErr != nil {
		s.mu.Unlock()
		return nil, editErr
	}
	ch := ep.diffLocked()
	// Commit point: a Close that has begun by now wins — the install is
	// abandoned with the live configuration untouched.
	if s.closed.Load() {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	for _, mp := range ch.Added {
		mp.stack = s
	}
	for _, r := range ch.Replaced {
		r.New.stack = s
	}
	s.bindings = ep.bindings
	s.mps = ep.mps
	old := s.installLocked(ch)
	s.mu.Unlock()
	s.maybeRetire(old)
	return old, nil
}

// pin selects the epoch a new computation runs against: the current one,
// re-checked after the active increment so that an epoch observed to be
// current *after* publication of its successor is never pinned — the
// increment-then-recheck makes retirement ("active reached zero after
// supersession") imply no computation can still dispatch into the epoch.
func (s *Stack) pin() *epochSnap {
	for {
		ep := s.snap.Load()
		ep.active.Add(1)
		if s.snap.Load() == ep {
			return ep
		}
		s.exitEpoch(ep) // lost the race with an install: unpin and retry
	}
}

// exitEpoch retires one pinned computation and completes the epoch's
// retirement when it was the last one a superseded epoch was waiting for.
func (s *Stack) exitEpoch(ep *epochSnap) {
	if ep.active.Add(-1) == 0 && ep.superseded.Load() {
		s.retireEpoch(ep)
	}
}

// maybeRetire retires ep if it is already quiescent — the installer's
// half of the retirement race (exitEpoch is the other; retireOnce
// arbitrates).
func (s *Stack) maybeRetire(ep *epochSnap) {
	if ep != nil && ep.superseded.Load() && ep.active.Load() == 0 {
		s.retireEpoch(ep)
	}
}

// retireEpoch finishes a superseded epoch exactly once: the controller
// drains and retires removed slots, the epoch's lifecycle balance is
// verified, and the epoch is marked dead. Any violation is recorded for
// EpochErrs — retirement runs asynchronously (on the exiting
// computation's goroutine or the reconfigurer's), so there is no caller
// to return it to.
func (s *Stack) retireEpoch(ep *epochSnap) {
	ep.retireOnce.Do(func() {
		if r, ok := s.ctrl.(Reconfigurer); ok {
			if err := r.RetireEpoch(ep.succ); err != nil {
				s.recordEpochErr(fmt.Errorf("samoa: retiring epoch %d: %w", ep.n, err))
			}
		}
		if b, e := ep.begun.Load(), ep.ended.Load(); b != e {
			s.recordEpochErr(&LifecycleError{Epoch: ep.n, Begun: b, Ended: e})
		}
		ep.retired.Store(true)
		close(ep.drained)
	})
}

func (s *Stack) recordEpochErr(err error) {
	s.epochMu.Lock()
	s.epochErrs = append(s.epochErrs, err)
	s.epochMu.Unlock()
}

// CurrentEpoch reports the number of the epoch new computations land on:
// 0 before the stack seals, 1 after sealing, +1 per reconfiguration.
func (s *Stack) CurrentEpoch() uint64 {
	if ep := s.snap.Load(); ep != nil {
		return ep.n
	}
	return 0
}

// EpochStats returns the drain accounting of every epoch the stack has
// installed, oldest first — retired epochs must show Begun == Ended and
// Active == 0 (the chaos harness asserts exactly that).
func (s *Stack) EpochStats() []EpochStat {
	s.mu.Lock()
	hist := append([]*epochSnap(nil), s.history...)
	s.mu.Unlock()
	out := make([]EpochStat, len(hist))
	for i, ep := range hist {
		out[i] = EpochStat{
			Epoch:      ep.n,
			Begun:      ep.begun.Load(),
			Ended:      ep.ended.Load(),
			Active:     ep.active.Load(),
			Superseded: ep.superseded.Load(),
			Retired:    ep.retired.Load(),
		}
	}
	return out
}

// EpochDrained returns a channel closed once the given epoch has retired
// (nil if the stack never installed that epoch). The current epoch's
// channel closes only after a later reconfiguration supersedes and drains
// it.
func (s *Stack) EpochDrained(epoch uint64) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ep := range s.history {
		if ep.n == epoch {
			return ep.drained
		}
	}
	return nil
}

// EpochErrs returns every error recorded during epoch retirement —
// controller retire failures and per-epoch lifecycle imbalances. Empty in
// a healthy run.
func (s *Stack) EpochErrs() []error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return append([]error(nil), s.epochErrs...)
}

// DeadEpochDispatches counts handler lookups made by a computation whose
// epoch had already retired — the runtime probe for the "no dispatch into
// a dead epoch" invariant. Always zero unless the epoch pin protocol is
// broken.
func (s *Stack) DeadEpochDispatches() uint64 { return s.deadDispatch.Load() }
