package core_test

import (
	"testing"

	"repro/internal/core"
)

func TestEventTypeName(t *testing.T) {
	et := core.NewEventType("FromNet")
	if et.Name() != "FromNet" || et.String() != "FromNet" {
		t.Fatalf("name = %q, string = %q", et.Name(), et.String())
	}
}

func TestEventTypeIdentity(t *testing.T) {
	a, b := core.NewEventType("x"), core.NewEventType("x")
	if a == b {
		t.Fatal("distinct event types with equal names must be distinct values")
	}
}

func nopHandler(*core.Context, core.Message) error { return nil }

func TestMicroprotocolHandlers(t *testing.T) {
	p := core.NewMicroprotocol("relcomm")
	send := p.AddHandler("send", nopHandler)
	recv := p.AddHandler("recv", nopHandler)

	if p.Name() != "relcomm" || p.String() != "relcomm" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.Handler("send") != send || p.Handler("recv") != recv {
		t.Fatal("handler lookup mismatch")
	}
	if p.Handler("missing") != nil {
		t.Fatal("missing handler must be nil")
	}
	hs := p.Handlers()
	if len(hs) != 2 || hs[0] != send || hs[1] != recv {
		t.Fatalf("handlers = %v", hs)
	}
	if send.MP() != p || send.Name() != "send" || send.String() != "relcomm.send" {
		t.Fatalf("handler identity: %v %v %v", send.MP(), send.Name(), send.String())
	}
	if send.IsReadOnly() {
		t.Fatal("handler should not be read-only by default")
	}
	ro := p.AddHandler("peek", nopHandler, core.ReadOnly())
	if !ro.IsReadOnly() {
		t.Fatal("ReadOnly option not applied")
	}
}

func TestMicroprotocolIDsUnique(t *testing.T) {
	a, b := core.NewMicroprotocol("a"), core.NewMicroprotocol("b")
	if a.ID() == b.ID() {
		t.Fatal("microprotocol IDs must be unique")
	}
}

func TestAddHandlerPanics(t *testing.T) {
	p := core.NewMicroprotocol("p")
	p.AddHandler("h", nopHandler)
	mustPanic(t, "duplicate handler", func() { p.AddHandler("h", nopHandler) })
	mustPanic(t, "nil handler func", func() { p.AddHandler("g", nil) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestAccessSpecDedupAndSort(t *testing.T) {
	a := core.NewMicroprotocol("a")
	b := core.NewMicroprotocol("b")
	s := core.Access(b, a, b, nil, a)
	mps := s.MPs()
	if len(mps) != 2 {
		t.Fatalf("MPs = %v, want 2 deduplicated", mps)
	}
	if mps[0].ID() > mps[1].ID() {
		t.Fatal("MPs must be sorted by ID")
	}
	if !s.Declares(a) || !s.Declares(b) {
		t.Fatal("Declares must cover listed microprotocols")
	}
	if s.Declares(core.NewMicroprotocol("c")) {
		t.Fatal("Declares must reject unlisted microprotocols")
	}
	if s.HasBounds() || s.Graph() != nil {
		t.Fatal("Access spec must carry no bounds or graph")
	}
	if _, ok := s.Bound(a); ok {
		t.Fatal("Access spec has no bounds")
	}
}

func TestAccessBoundSpec(t *testing.T) {
	a := core.NewMicroprotocol("a")
	b := core.NewMicroprotocol("b")
	s := core.AccessBound(map[*core.Microprotocol]int{a: 2, b: 5})
	if !s.HasBounds() {
		t.Fatal("HasBounds")
	}
	if n, ok := s.Bound(a); !ok || n != 2 {
		t.Fatalf("Bound(a) = %d, %v", n, ok)
	}
	if n, ok := s.Bound(b); !ok || n != 5 {
		t.Fatalf("Bound(b) = %d, %v", n, ok)
	}
	if len(s.MPs()) != 2 {
		t.Fatalf("MPs = %v", s.MPs())
	}
}

func TestRouteGraphAndSpec(t *testing.T) {
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	hp := p.AddHandler("hp", nopHandler)
	hq := q.AddHandler("hq", nopHandler)
	hq2 := q.AddHandler("hq2", nopHandler)

	g := core.NewRouteGraph().Root(hp).Edge(hp, hq).Edge(hq, hq2)
	if !g.IsRoot(hp) || g.IsRoot(hq) {
		t.Fatal("root declaration wrong")
	}
	if !g.Contains(hp) || !g.Contains(hq) || !g.Contains(hq2) {
		t.Fatal("vertices missing")
	}
	if len(g.Succs(hp)) != 1 || g.Succs(hp)[0] != hq {
		t.Fatalf("Succs(hp) = %v", g.Succs(hp))
	}
	if len(g.Vertices()) != 3 {
		t.Fatalf("Vertices = %v", g.Vertices())
	}

	s := core.Route(g)
	if s.Graph() != g {
		t.Fatal("spec must carry the graph")
	}
	if len(s.MPs()) != 2 || !s.Declares(p) || !s.Declares(q) {
		t.Fatalf("route spec MPs = %v", s.MPs())
	}
}

func TestRouteGraphHasCycle(t *testing.T) {
	p := core.NewMicroprotocol("cyc")
	a := p.AddHandler("a", nopHandler)
	b := p.AddHandler("b", nopHandler)
	c := p.AddHandler("c", nopHandler)

	chain := core.NewRouteGraph().Root(a).Edge(a, b).Edge(b, c)
	if chain.HasCycle() {
		t.Fatal("chain reported cyclic")
	}
	diamond := core.NewRouteGraph().Root(a).Edge(a, b).Edge(a, c).Edge(b, c)
	if diamond.HasCycle() {
		t.Fatal("diamond (DAG) reported cyclic")
	}
	selfLoop := core.NewRouteGraph().Root(a).Edge(a, a)
	if !selfLoop.HasCycle() {
		t.Fatal("self-loop not reported")
	}
	back := core.NewRouteGraph().Root(a).Edge(a, b).Edge(b, c).Edge(c, a)
	if !back.HasCycle() {
		t.Fatal("back edge not reported")
	}
}
