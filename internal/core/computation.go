package core

import (
	"context"
	"sync"
)

// Computation is the run-time identity of one execution of Isolated: the
// paper's computation, i.e. an external event together with everything
// causally dependent on it (§2). The framework tracks its threads so that
// "all threads of the computation terminated" — the trigger point for the
// controllers' completion rules — is well defined.
type Computation struct {
	id    uint64
	stack *Stack
	epoch *epochSnap // the configuration epoch this computation is pinned to
	token Token
	spec  *Spec
	ctx   context.Context // bounds the computation; context.Background() if unbounded

	// rootInv is the root expression's invocation, embedded so spawning
	// a computation does not allocate it separately.
	rootInv invocation

	// wg counts asynchronous handler executions; forks are counted by
	// their spawning invocation instead, because a handler's Exit must
	// wait for the threads the handler itself spawned (rule 4 of
	// VCAbound counts a handler as completed only then).
	wg sync.WaitGroup

	mu  sync.Mutex
	err error // first error recorded
}

// ID reports the computation's stack-unique identifier.
func (c *Computation) ID() uint64 { return c.id }

// Epoch reports the configuration epoch the computation is pinned to:
// its dispatch reads that epoch's binding table for its entire lifetime,
// even if a Reconfigure installs a successor mid-flight.
func (c *Computation) Epoch() uint64 {
	if c.epoch != nil {
		return c.epoch.n
	}
	return 0
}

// handlers resolves an event type against the computation's pinned
// epoch — the dispatch-path twin of Stack.handlers. The retired check
// feeds the dead-epoch probe: a pinned epoch can never retire while the
// computation is active, so a hit means the pin protocol is broken.
func (c *Computation) handlers(et *EventType) []*Handler {
	if ep := c.epoch; ep != nil {
		if ep.retired.Load() {
			c.stack.deadDispatch.Add(1)
		}
		return ep.bindings[et]
	}
	return c.stack.handlers(et)
}

// Spec reports the spec the computation was spawned with.
func (c *Computation) Spec() *Spec { return c.spec }

// Ctx returns the context bounding the computation (never nil). Handlers
// with long-running bodies should poll it and return early when it is
// done; the dispatch path checks it before every handler call regardless.
func (c *Computation) Ctx() context.Context { return c.ctx }

// ctxErr converts an expired computation context into the *DeadlineError
// the dispatch path records before a handler call. It is the cooperative
// half of cancellation: blocking waits inside controllers observe the
// context themselves, and this check stops a cancelled computation from
// issuing further calls between those waits.
func (c *Computation) ctxErr(h *Handler) error {
	if c.ctx == nil {
		return nil
	}
	select {
	case <-c.ctx.Done():
		name := "<root>"
		if h != nil {
			name = h.String()
		}
		return &DeadlineError{Stage: "dispatch", Handler: name, Err: c.ctx.Err()}
	default:
		return nil
	}
}

// record stores the first non-nil error of the computation.
func (c *Computation) record(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *Computation) firstErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// invocation is one execution of a handler (or of the root expression,
// with handler == nil). Forked threads attach here so the invocation can
// be considered complete only after they terminate.
type invocation struct {
	handler *Handler
	forks   sync.WaitGroup
}
