package core

// Message is the payload carried by an event. The framework never inspects
// payloads; microprotocols agree on concrete types per event type.
type Message = any

// EventType identifies a kind of event. Event types are first-class
// programming objects (paper §3): they can be passed around, stored in
// data structures, and bound to handlers on a Stack.
//
// Two EventType values are the same type only if they are the same
// pointer; names are purely informational and need not be unique.
type EventType struct {
	name string
}

// NewEventType creates a fresh event type with an informational name.
func NewEventType(name string) *EventType {
	return &EventType{name: name}
}

// Name reports the informational name given at creation.
func (e *EventType) Name() string { return e.name }

// String implements fmt.Stringer.
func (e *EventType) String() string { return e.name }
