package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
)

// newNoneStack builds a stack under the unrestricted controller for
// plumbing tests that don't exercise concurrency control.
func newNoneStack(t *testing.T) *core.Stack {
	t.Helper()
	return core.NewStack(cc.NewNone())
}

func TestNewStackNilControllerPanics(t *testing.T) {
	mustPanic(t, "nil controller", func() { core.NewStack(nil) })
}

func TestRegisterAndLookup(t *testing.T) {
	s := core.NewStack(cc.NewNone(), core.WithName("test"))
	if s.Name() != "test" {
		t.Fatalf("name = %q", s.Name())
	}
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	s.Register(p, q)
	if s.MP("p") != p || s.MP("q") != q || s.MP("zz") != nil {
		t.Fatal("MP lookup mismatch")
	}
	mustPanic(t, "re-register", func() { s.Register(p) })
	p2 := core.NewMicroprotocol("p")
	mustPanic(t, "duplicate name", func() { s.Register(p2) })
}

func TestBindOrderAndBound(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	h1 := p.AddHandler("h1", nopHandler)
	h2 := p.AddHandler("h2", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h2)
	s.Bind(et, h1)
	hs := s.Bound(et)
	if len(hs) != 2 || hs[0] != h2 || hs[1] != h1 {
		t.Fatalf("Bound = %v", hs)
	}
	if got := s.Bound(core.NewEventType("other")); len(got) != 0 {
		t.Fatalf("unbound event type: %v", got)
	}
}

func TestBindForeignHandlerPanics(t *testing.T) {
	s := newNoneStack(t)
	other := core.NewMicroprotocol("other") // never registered
	h := other.AddHandler("h", nopHandler)
	mustPanic(t, "foreign handler", func() { s.Bind(core.NewEventType("e"), h) })
}

func TestSealOnFirstIsolated(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, p.Handler("h"))

	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatalf("External: %v", err)
	}
	mustPanic(t, "Bind after seal", func() { s.Bind(core.NewEventType("e2"), p.Handler("h")) })
	mustPanic(t, "Register after seal", func() { s.Register(core.NewMicroprotocol("q")) })
	mustPanic(t, "AddHandler after seal", func() { p.AddHandler("late", nopHandler) })
}

func TestRebind(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	var got []string
	mk := func(name string) core.HandlerFunc {
		return func(*core.Context, core.Message) error {
			got = append(got, name)
			return nil
		}
	}
	h1 := p.AddHandler("h1", mk("h1"))
	h2 := p.AddHandler("h2", mk("h2"))
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h1)

	spec := core.Access(p)
	if err := s.External(spec, et, nil); err != nil {
		t.Fatal(err)
	}
	// Rebind while quiescent succeeds and changes dispatch.
	if err := s.Rebind(et, h2); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	if err := s.External(spec, et, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "h1" || got[1] != "h2" {
		t.Fatalf("dispatch order = %v", got)
	}
}

func TestRebindWhileActiveFails(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)

	inComp := make(chan struct{})
	release := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- s.Isolated(core.Access(p), func(ctx *core.Context) error {
			close(inComp)
			<-release
			return nil
		})
	}()
	<-inComp
	if err := s.Rebind(et, h); !errors.Is(err, core.ErrActiveComputations) {
		t.Fatalf("Rebind during computation: %v", err)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := s.Rebind(et, h); err != nil {
		t.Fatalf("Rebind after completion: %v", err)
	}
}

func TestIsolatedNilRoot(t *testing.T) {
	s := newNoneStack(t)
	if err := s.Isolated(core.Access(), nil); err != nil {
		t.Fatalf("nil root: %v", err)
	}
}

func TestIsolatedAsync(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	ran := false
	h := p.AddHandler("h", func(*core.Context, core.Message) error {
		ran = true
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)

	done := s.IsolatedAsync(core.Access(p), func(ctx *core.Context) error {
		return ctx.Trigger(et, nil)
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("handler did not run")
	}
}

func TestComputationIDsIncrease(t *testing.T) {
	s := newNoneStack(t)
	var ids []uint64
	for i := 0; i < 3; i++ {
		if err := s.Isolated(core.Access(), func(ctx *core.Context) error {
			ids = append(ids, ctx.Computation().ID())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(ids) != 3 || !(ids[0] < ids[1] && ids[1] < ids[2]) {
		t.Fatalf("ids = %v", ids)
	}
}

// TestBindAfterSealPanicNamesBinding checks the construction-order panic
// names the event, the handlers being bound, the stack, and — now that
// "sealed" is an epoch, not forever — the live epoch and the Reconfigure
// way out.
func TestBindAfterSealPanicNamesBinding(t *testing.T) {
	s := core.NewStack(cc.NewNone(), core.WithName("audit"))
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}
	late := core.NewEventType("late")
	defer func() {
		msg, _ := recover().(string)
		for _, want := range []string{`"late"`, "p.h", `"audit"`, "Rebind", "epoch 1", "Reconfigure"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q missing %q", msg, want)
			}
		}
	}()
	s.Bind(late, h)
	t.Fatal("Bind after seal did not panic")
}

// TestPostSealPanicsNameEpoch pins the epoch identity in every post-seal
// mutation panic: after a reconfiguration the messages must name the
// *current* epoch, so the error points at the configuration actually
// live when the late mutation happened.
func TestPostSealPanicsNameEpoch(t *testing.T) {
	s := core.NewStack(cc.NewNone(), core.WithName("late"))
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(func(*core.Epoch) {}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if got := s.CurrentEpoch(); got != 2 {
		t.Fatalf("CurrentEpoch = %d, want 2", got)
	}
	check := func(name string, fn func()) {
		t.Helper()
		defer func() {
			msg, _ := recover().(string)
			if msg == "" {
				t.Errorf("%s after seal did not panic with a message", name)
				return
			}
			for _, want := range []string{"epoch 2", "Reconfigure"} {
				if !strings.Contains(msg, want) {
					t.Errorf("%s panic %q missing %q", name, msg, want)
				}
			}
		}()
		fn()
	}
	check("Register", func() { s.Register(core.NewMicroprotocol("q")) })
	check("AddHandler", func() { p.AddHandler("late", nopHandler) })
	check("SetSnapshotter", func() { p.SetSnapshotter(nil) })
	check("Bind", func() { s.Bind(core.NewEventType("e2"), h) })
}
