package core

// SpecBuilder derives Specs from a protocol's declared call graph — the
// practical rendering of the paper's §4 remark that "in the
// strongly-typed language, the proper value of argument M could be
// inferred statically": the protocol author declares each caller→callee
// pair once (a static property of the handler bodies), and every spec
// variant for every entry point falls out by reachability.
//
//	b := core.NewSpecBuilder()
//	b.Edge(recv, deliver)
//	b.Edge(recv, ack)
//	spec := b.Basic(recv)       // M = microprotocols reachable from recv
//	spec  = b.Bound(4, recv)    // same M, with a visit bound per entry
//	spec  = b.Route(recv)       // routing graph restricted to the reachable part
type SpecBuilder struct {
	edges [][2]*Handler
}

// NewSpecBuilder creates an empty builder.
func NewSpecBuilder() *SpecBuilder { return &SpecBuilder{} }

// Edge declares that the body of `from` may call `to`. Returns the
// builder for chaining.
func (b *SpecBuilder) Edge(from, to *Handler) *SpecBuilder {
	b.edges = append(b.edges, [2]*Handler{from, to})
	return b
}

// Reachable returns the set of handlers reachable from the roots
// (including the roots).
func (b *SpecBuilder) Reachable(roots ...*Handler) map[*Handler]bool {
	reach := make(map[*Handler]bool, len(roots))
	queue := append([]*Handler(nil), roots...)
	for _, r := range roots {
		reach[r] = true
	}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, e := range b.edges {
			if e[0] == h && !reach[e[1]] {
				reach[e[1]] = true
				queue = append(queue, e[1])
			}
		}
	}
	return reach
}

// Basic builds an Access spec: M is the set of microprotocols owning any
// handler reachable from the roots.
func (b *SpecBuilder) Basic(roots ...*Handler) *Spec {
	var mps []*Microprotocol
	for h := range b.Reachable(roots...) {
		mps = append(mps, h.MP())
	}
	return Access(mps...)
}

// Bound builds an AccessBound spec over the same M, declaring `bound`
// visits for every microprotocol.
func (b *SpecBuilder) Bound(bound int, roots ...*Handler) *Spec {
	bounds := map[*Microprotocol]int{}
	for h := range b.Reachable(roots...) {
		bounds[h.MP()] = bound
	}
	return AccessBound(bounds)
}

// Route builds a Route spec: the declared edges restricted to the part
// reachable from the roots, with the roots as the computation's direct
// entry handlers.
func (b *SpecBuilder) Route(roots ...*Handler) *Spec {
	reach := b.Reachable(roots...)
	g := NewRouteGraph().Root(roots...)
	for _, e := range b.edges {
		if reach[e[0]] && reach[e[1]] {
			g.Edge(e[0], e[1])
		}
	}
	return Route(g)
}
