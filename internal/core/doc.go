// Package core implements the SAMOA programming model: protocols composed
// of microprotocols whose event handlers communicate through typed events,
// executed inside computations that the runtime keeps isolated.
//
// The model follows "SAMOA: Framework for Synchronisation Augmented
// Microprotocol Approach" (Wojciechowski, Rütti, Schiper; IPDPS 2004):
//
//   - A Microprotocol groups related Handlers that share the
//     microprotocol's local state. Handlers are the only way that state is
//     (supposed to be) accessed.
//   - An EventType is a first-class value. Handlers are bound to event
//     types on a Stack; issuing an event of a type requests the execution
//     of every handler bound to it.
//   - A Computation is the set of all handler executions causally
//     dependent on one external event. Computations are spawned with
//     Stack.Isolated, the Go rendering of the paper's "isolated M e"
//     construct.
//   - A Controller (see package cc) decides when a computation may call a
//     handler, so that every concurrent execution satisfies the isolation
//     property: it is equivalent to some serial execution of the
//     computations.
//
// Handlers issue events with Context.Trigger (synchronous, exactly one
// bound handler), Context.TriggerAll (synchronous, all bound handlers),
// and their asynchronous counterparts. Context.Fork adds a thread to the
// current computation.
//
// Binding is static, as in the paper: all Bind calls must precede the
// first Isolated call on a stack. Stack.Rebind implements the paper's
// future-work extension of dynamic rebinding between computations.
package core
