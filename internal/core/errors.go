package core

import (
	"errors"
	"fmt"
	"strings"
)

// ErrActiveComputations is returned by Stack.Rebind while computations are
// in flight: the paper forbids rebinding inside computations.
var ErrActiveComputations = errors.New("samoa: rebind while computations are active")

// ErrComputationAborted is produced by rollback-based controllers (the
// paper's "timestamp-ordering algorithms with rollback/recovery" group,
// cc.WaitDie) when a computation must be undone and re-executed. It
// propagates out of triggers like any error; handlers should return it
// unchanged. Isolated re-runs the computation transparently when the
// controller asks for a retry, so callers normally never see it.
var ErrComputationAborted = errors.New("samoa: computation aborted for retry")

// ErrClosed is returned by Isolated/External once Stack.Close has begun:
// the stack rejects new computations while draining the in-flight ones.
var ErrClosed = errors.New("samoa: stack closed")

// PanicError reports a panic recovered inside a computation — in a handler
// body, the root expression, a forked thread, or a scheduling hook. The
// panic aborts only its own computation: the runtime converts it into this
// error, drives the controller's end protocol so every claimed resource is
// released, and returns it from Isolated/External. Value preserves the
// original panic value and Trace the goroutine stack at recovery.
type PanicError struct {
	Stack       string // stack name
	Handler     string // "mp.handler", or "<root>" / "<fork>" / "<hook>"
	Event       string // event type being dispatched ("" outside dispatch)
	Computation uint64 // computation ID
	Value       any    // the value passed to panic
	Trace       []byte // debug.Stack() at the recovery point
}

func (e *PanicError) Error() string {
	if e.Event != "" {
		return fmt.Sprintf("samoa: panic in %s handling %q (computation %d, stack %q): %v",
			e.Handler, e.Event, e.Computation, e.Stack, e.Value)
	}
	return fmt.Sprintf("samoa: panic in %s (computation %d, stack %q): %v",
		e.Handler, e.Computation, e.Stack, e.Value)
}

// Unwrap exposes the panic value when it was itself an error, so callers
// can errors.Is/As through a recovered panic(err). ErrComputationAborted
// is deliberately not unwrapped: a panic is a fault, never a retry signal.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok && !errors.Is(err, ErrComputationAborted) {
		return err
	}
	return nil
}

// DeadlineError reports a computation cut short by its context: the
// deadline of Spec.WithTimeout expired, or the caller's IsolatedCtx
// context was cancelled. Stage says where the computation was stopped.
type DeadlineError struct {
	Stage   string // "spawn", "enter", "dispatch", or "drain"
	Handler string // handler awaiting admission ("" outside Enter)
	Err     error  // the context's error (DeadlineExceeded or Canceled)
}

func (e *DeadlineError) Error() string {
	if e.Handler != "" {
		return fmt.Sprintf("samoa: computation cancelled at %s of %s: %v", e.Stage, e.Handler, e.Err)
	}
	return fmt.Sprintf("samoa: computation cancelled at %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the context error, so errors.Is(err,
// context.DeadlineExceeded) works through a DeadlineError.
func (e *DeadlineError) Unwrap() error { return e.Err }

// LifecycleError reports an unbalanced controller protocol discovered by
// Stack.Close — or, when Epoch is non-zero, by the retirement of that
// configuration epoch: the number of computations that began (Spawn or an
// accepted retry) differs from the number that ended (Complete or a
// retired retry token). A non-zero difference means a controller leaked
// or double-freed per-computation state.
type LifecycleError struct {
	Epoch uint64 // 0: the global close-time check
	Begun uint64
	Ended uint64
}

func (e *LifecycleError) Error() string {
	if e.Epoch != 0 {
		return fmt.Sprintf("samoa: lifecycle imbalance retiring epoch %d: %d computations begun, %d ended", e.Epoch, e.Begun, e.Ended)
	}
	return fmt.Sprintf("samoa: lifecycle imbalance on close: %d computations begun, %d ended", e.Begun, e.Ended)
}

// ReconfiguredError reports a computation whose spec declares a
// microprotocol that a live reconfiguration has removed: the slot stopped
// admitting new claims when the removing epoch installed. Callers racing
// a reconfiguration should rebuild their spec against the new epoch and
// retry.
type ReconfiguredError struct {
	MP    string // the removed microprotocol
	Epoch uint64 // the epoch whose installation removed it
}

func (e *ReconfiguredError) Error() string {
	return fmt.Sprintf("samoa: microprotocol %s was removed by reconfiguration (epoch %d); rebuild the spec and retry", e.MP, e.Epoch)
}

// UnboundError reports a trigger of an event type with no bound handler.
type UnboundError struct {
	Event string // event type name
}

func (e *UnboundError) Error() string {
	return fmt.Sprintf("samoa: no handler bound to event %q", e.Event)
}

// AmbiguousError reports Trigger/AsyncTrigger of an event type bound to
// more than one handler; the single-handler constructs mirror the paper's
// "trigger", which calls a (single) handler.
type AmbiguousError struct {
	Event string
	N     int // number of bound handlers
}

func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("samoa: event %q bound to %d handlers; use TriggerAll", e.Event, e.N)
}

// UndeclaredError reports a computation calling a handler of a
// microprotocol that is not in its declared collection M (paper §4: "An
// error exception is thrown in the thread that called isolated").
// Declared lists the spec's microprotocol names so the message points
// at the fix: add MP to the spec, or stop reaching the handler.
type UndeclaredError struct {
	MP       string   // microprotocol name
	Handler  string   // handler name
	Declared []string // the computation's declared microprotocol names
}

func (e *UndeclaredError) Error() string {
	if len(e.Declared) > 0 {
		return fmt.Sprintf("samoa: handler %s.%s not declared in the computation's spec — microprotocol %s is missing from [%s]",
			e.MP, e.Handler, e.MP, strings.Join(e.Declared, " "))
	}
	return fmt.Sprintf("samoa: handler %s.%s not declared in the computation's spec", e.MP, e.Handler)
}

// BoundExhaustedError reports a computation exceeding the least upper
// bound it declared for a microprotocol (paper §4, "isolated bound M e").
type BoundExhaustedError struct {
	MP    string
	Bound int
}

func (e *BoundExhaustedError) Error() string {
	return fmt.Sprintf("samoa: visit bound %d for microprotocol %s exhausted", e.Bound, e.MP)
}

// NoRouteError reports a handler call with no declared route in the
// computation's routing pattern (paper §4, "isolated route M e"). From is
// empty when the undeclared call was made directly by the computation's
// root expression.
type NoRouteError struct {
	From string // calling handler ("" for the root expression)
	To   string // called handler
}

func (e *NoRouteError) Error() string {
	from := e.From
	if from == "" {
		from = "<root>"
	}
	return fmt.Sprintf("samoa: no route from %s to %s in the computation's routing pattern", from, e.To)
}

// ReadOnlyViolationError reports a computation admitted as a reader of a
// microprotocol calling one of its non-read-only handlers (the §7
// isolation-level extension, cc.VCARW).
type ReadOnlyViolationError struct {
	MP      string
	Handler string
}

func (e *ReadOnlyViolationError) Error() string {
	return fmt.Sprintf("samoa: read-only computation called writing handler %s.%s", e.MP, e.Handler)
}

// SpecError reports an invalid Spec passed to Isolated (for example a
// bound-variant spec handed to the route controller, or a non-positive
// bound).
type SpecError struct {
	Controller string
	Reason     string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("samoa: invalid spec for controller %s: %s", e.Controller, e.Reason)
}
