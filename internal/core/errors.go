package core

import (
	"errors"
	"fmt"
	"strings"
)

// ErrActiveComputations is returned by Stack.Rebind while computations are
// in flight: the paper forbids rebinding inside computations.
var ErrActiveComputations = errors.New("samoa: rebind while computations are active")

// ErrComputationAborted is produced by rollback-based controllers (the
// paper's "timestamp-ordering algorithms with rollback/recovery" group,
// cc.WaitDie) when a computation must be undone and re-executed. It
// propagates out of triggers like any error; handlers should return it
// unchanged. Isolated re-runs the computation transparently when the
// controller asks for a retry, so callers normally never see it.
var ErrComputationAborted = errors.New("samoa: computation aborted for retry")

// UnboundError reports a trigger of an event type with no bound handler.
type UnboundError struct {
	Event string // event type name
}

func (e *UnboundError) Error() string {
	return fmt.Sprintf("samoa: no handler bound to event %q", e.Event)
}

// AmbiguousError reports Trigger/AsyncTrigger of an event type bound to
// more than one handler; the single-handler constructs mirror the paper's
// "trigger", which calls a (single) handler.
type AmbiguousError struct {
	Event string
	N     int // number of bound handlers
}

func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("samoa: event %q bound to %d handlers; use TriggerAll", e.Event, e.N)
}

// UndeclaredError reports a computation calling a handler of a
// microprotocol that is not in its declared collection M (paper §4: "An
// error exception is thrown in the thread that called isolated").
// Declared lists the spec's microprotocol names so the message points
// at the fix: add MP to the spec, or stop reaching the handler.
type UndeclaredError struct {
	MP       string   // microprotocol name
	Handler  string   // handler name
	Declared []string // the computation's declared microprotocol names
}

func (e *UndeclaredError) Error() string {
	if len(e.Declared) > 0 {
		return fmt.Sprintf("samoa: handler %s.%s not declared in the computation's spec — microprotocol %s is missing from [%s]",
			e.MP, e.Handler, e.MP, strings.Join(e.Declared, " "))
	}
	return fmt.Sprintf("samoa: handler %s.%s not declared in the computation's spec", e.MP, e.Handler)
}

// BoundExhaustedError reports a computation exceeding the least upper
// bound it declared for a microprotocol (paper §4, "isolated bound M e").
type BoundExhaustedError struct {
	MP    string
	Bound int
}

func (e *BoundExhaustedError) Error() string {
	return fmt.Sprintf("samoa: visit bound %d for microprotocol %s exhausted", e.Bound, e.MP)
}

// NoRouteError reports a handler call with no declared route in the
// computation's routing pattern (paper §4, "isolated route M e"). From is
// empty when the undeclared call was made directly by the computation's
// root expression.
type NoRouteError struct {
	From string // calling handler ("" for the root expression)
	To   string // called handler
}

func (e *NoRouteError) Error() string {
	from := e.From
	if from == "" {
		from = "<root>"
	}
	return fmt.Sprintf("samoa: no route from %s to %s in the computation's routing pattern", from, e.To)
}

// ReadOnlyViolationError reports a computation admitted as a reader of a
// microprotocol calling one of its non-read-only handlers (the §7
// isolation-level extension, cc.VCARW).
type ReadOnlyViolationError struct {
	MP      string
	Handler string
}

func (e *ReadOnlyViolationError) Error() string {
	return fmt.Sprintf("samoa: read-only computation called writing handler %s.%s", e.MP, e.Handler)
}

// SpecError reports an invalid Spec passed to Isolated (for example a
// bound-variant spec handed to the route controller, or a non-positive
// bound).
type SpecError struct {
	Controller string
	Reason     string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("samoa: invalid spec for controller %s: %s", e.Controller, e.Reason)
}
