package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// flakyController aborts the first N attempts of every computation — a
// minimal core.Restorer for unit-testing Isolated's retry loop
// independently of any real rollback algorithm.
type flakyController struct {
	abortFirst int
	prepared   int
	completed  int
}

type flakyToken struct{ attempt int }

func (c *flakyController) Name() string { return "flaky" }
func (c *flakyController) Spawn(context.Context, *core.Spec) (core.Token, error) {
	return &flakyToken{}, nil
}
func (c *flakyController) Request(core.Token, *core.Handler, *core.Handler) error { return nil }
func (c *flakyController) Enter(_ context.Context, t core.Token, _, _ *core.Handler) error {
	if t.(*flakyToken).attempt < c.abortFirst {
		return core.ErrComputationAborted
	}
	return nil
}
func (c *flakyController) Exit(core.Token, *core.Handler) {}
func (c *flakyController) RootReturned(core.Token)        {}
func (c *flakyController) Complete(core.Token)            { c.completed++ }
func (c *flakyController) PrepareRetry(t core.Token) (core.Token, bool) {
	c.prepared++
	return &flakyToken{attempt: t.(*flakyToken).attempt + 1}, true
}

func TestIsolatedRetriesOnAbort(t *testing.T) {
	rec := trace.NewRecorder()
	ctrl := &flakyController{abortFirst: 2}
	s := core.NewStack(ctrl, core.WithTracer(rec))
	p := core.NewMicroprotocol("p")
	runs := 0
	h := p.AddHandler("h", func(*core.Context, core.Message) error {
		runs++
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)

	rootRuns := 0
	err := s.Isolated(core.Access(p), func(ctx *core.Context) error {
		rootRuns++
		return ctx.Trigger(et, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootRuns != 3 {
		t.Fatalf("root ran %d times, want 3 (2 aborts + success)", rootRuns)
	}
	if runs != 1 {
		t.Fatalf("handler ran %d times, want 1 (aborted attempts never entered)", runs)
	}
	if ctrl.prepared != 2 || ctrl.completed != 1 {
		t.Fatalf("prepared=%d completed=%d", ctrl.prepared, ctrl.completed)
	}
	// The trace shows two aborted attempts and one completed computation,
	// each with its own ID.
	st := rec.Stats()
	if st.Spawned != 3 || st.Aborted != 2 || st.Completed != 1 {
		t.Fatalf("trace stats = %+v", st)
	}
}

// refusingController declines the retry: Isolated must surface the abort
// error.
type refusingController struct{ flakyController }

func (c *refusingController) PrepareRetry(core.Token) (core.Token, bool) { return nil, false }

func TestIsolatedAbortWithoutRetrySurfaces(t *testing.T) {
	ctrl := &refusingController{flakyController{abortFirst: 99}}
	s := core.NewStack(ctrl)
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	err := s.External(core.Access(p), et, nil)
	if !errors.Is(err, core.ErrComputationAborted) {
		t.Fatalf("err = %v", err)
	}
}

// nonRestorerAbort: a controller without PrepareRetry that returns the
// abort error is treated like any other error (no retry loop).
type abortingController struct{ flakyController }

func TestIsolatedAbortFromNonRestorer(t *testing.T) {
	// flakyController implements Restorer; build a plain controller via
	// embedding shadow: use an anonymous wrapper without PrepareRetry.
	type plain struct{ core.Controller }
	ctrl := plain{Controller: &abortingController{flakyController{abortFirst: 99}}}
	// The wrapper forwards everything, including PrepareRetry? No —
	// plain only embeds core.Controller, so the Restorer method set is
	// erased at the interface boundary.
	s := core.NewStack(ctrl)
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	err := s.External(core.Access(p), et, nil)
	if !errors.Is(err, core.ErrComputationAborted) {
		t.Fatalf("err = %v", err)
	}
}
