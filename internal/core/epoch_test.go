package core_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

// TestReconfigureReplace swaps a microprotocol for its v2 mid-lifetime:
// dispatch moves to the replacement, the old epoch retires balanced, and
// the epoch counter advances.
func TestReconfigureReplace(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	v1 := core.NewMicroprotocol("worker")
	var got []string
	h1 := v1.AddHandler("run", func(*core.Context, core.Message) error {
		got = append(got, "v1")
		return nil
	})
	s.Register(v1)
	et := core.NewEventType("e")
	s.Bind(et, h1)

	if err := s.External(core.Access(v1), et, nil); err != nil {
		t.Fatal(err)
	}

	v2 := core.NewMicroprotocol("worker")
	v2.AddHandler("run", func(*core.Context, core.Message) error {
		got = append(got, "v2")
		return nil
	})
	if err := s.Reconfigure(func(e *core.Epoch) {
		e.Replace("worker", v2)
	}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if got := s.CurrentEpoch(); got != 2 {
		t.Fatalf("CurrentEpoch = %d, want 2", got)
	}
	if mp := s.MP("worker"); mp != v2 {
		t.Fatalf("MP(worker) = %v, want the replacement", mp)
	}
	if err := s.External(core.Access(v2), et, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "v1,v2" {
		t.Fatalf("dispatch = %v", got)
	}

	// Epoch 1 had no computations in flight at the swap: it must already
	// be retired and balanced.
	select {
	case <-s.EpochDrained(1):
	case <-time.After(5 * time.Second):
		t.Fatal("epoch 1 did not retire")
	}
	stats := s.EpochStats()
	if len(stats) != 2 {
		t.Fatalf("EpochStats = %+v", stats)
	}
	if st := stats[0]; !st.Retired || st.Begun != st.Ended || st.Active != 0 {
		t.Fatalf("epoch 1 stats = %+v", st)
	}
	if st := stats[1]; st.Retired || st.Superseded {
		t.Fatalf("epoch 2 stats = %+v", st)
	}
	if errs := s.EpochErrs(); len(errs) != 0 {
		t.Fatalf("EpochErrs = %v", errs)
	}
	if n := s.DeadEpochDispatches(); n != 0 {
		t.Fatalf("DeadEpochDispatches = %d", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReconfigureOldEpochPinned is the heart of the swap protocol: a
// computation begun under epoch N keeps dispatching against epoch N's
// bindings after epoch N+1 installs, and epoch N retires only once that
// computation exits.
func TestReconfigureOldEpochPinned(t *testing.T) {
	s := core.NewStack(cc.NewNone())
	v1 := core.NewMicroprotocol("worker")
	entered := make(chan struct{})
	release := make(chan struct{})
	var v1runs, v2runs int
	h1 := v1.AddHandler("run", func(*core.Context, core.Message) error {
		v1runs++
		return nil
	})
	hold := v1.AddHandler("hold", func(ctx *core.Context, _ core.Message) error {
		close(entered)
		<-release
		return nil
	})
	s.Register(v1)
	et := core.NewEventType("e")
	etHold := core.NewEventType("hold")
	s.Bind(et, h1)
	s.Bind(etHold, hold)

	errc := make(chan error, 1)
	go func() {
		errc <- s.Isolated(core.Access(v1), func(ctx *core.Context) error {
			if err := ctx.Trigger(etHold, nil); err != nil {
				return err
			}
			// Dispatched after epoch 2 installed — must still reach v1.
			return ctx.Trigger(et, nil)
		})
	}()
	<-entered

	v2 := core.NewMicroprotocol("worker")
	v2.AddHandler("run", func(*core.Context, core.Message) error {
		v2runs++
		return nil
	})
	v2.AddHandler("hold", func(*core.Context, core.Message) error { return nil })
	if err := s.Reconfigure(func(e *core.Epoch) { e.Replace("worker", v2) }); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}

	// Old epoch must not retire while its computation is in flight.
	select {
	case <-s.EpochDrained(1):
		t.Fatal("epoch 1 retired with a pinned computation still running")
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.EpochDrained(1):
	case <-time.After(5 * time.Second):
		t.Fatal("epoch 1 did not retire after its computation exited")
	}
	if v1runs != 1 || v2runs != 0 {
		t.Fatalf("v1runs=%d v2runs=%d; the pinned computation dispatched into the wrong epoch", v1runs, v2runs)
	}
	// New spawns land on epoch 2.
	if err := s.External(core.Access(v2), et, nil); err != nil {
		t.Fatal(err)
	}
	if v2runs != 1 {
		t.Fatalf("v2runs = %d after post-swap spawn", v2runs)
	}
	if n := s.DeadEpochDispatches(); n != 0 {
		t.Fatalf("DeadEpochDispatches = %d", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if errs := s.EpochErrs(); len(errs) != 0 {
		t.Fatalf("EpochErrs = %v", errs)
	}
}

// TestReconfigureAddRemove grows and shrinks the microprotocol set on a
// live stack.
func TestReconfigureAddRemove(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	a := core.NewMicroprotocol("a")
	ha := a.AddHandler("h", nopHandler)
	s.Register(a)
	etA := core.NewEventType("ea")
	s.Bind(etA, ha)
	if err := s.External(core.Access(a), etA, nil); err != nil {
		t.Fatal(err)
	}

	b := core.NewMicroprotocol("b")
	var bruns int
	hb := b.AddHandler("h", func(*core.Context, core.Message) error {
		bruns++
		return nil
	})
	etB := core.NewEventType("eb")
	if err := s.Reconfigure(func(e *core.Epoch) {
		e.Register(b)
		e.Bind(etB, hb)
		e.Remove("a")
	}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if s.MP("a") != nil || s.MP("b") != b {
		t.Fatal("registration did not move to the new epoch")
	}
	// a's bindings were stripped with it.
	if hs := s.Bound(etA); len(hs) != 0 {
		t.Fatalf("removed mp still bound: %v", hs)
	}
	if err := s.External(core.Access(b), etB, nil); err != nil {
		t.Fatal(err)
	}
	if bruns != 1 {
		t.Fatalf("bruns = %d", bruns)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if errs := s.EpochErrs(); len(errs) != 0 {
		t.Fatalf("EpochErrs = %v", errs)
	}
}

// TestReconfigureValidation: a bad edit aborts with the joined errors and
// the live configuration is untouched; a panicking edit becomes a
// *PanicError the same way.
func TestReconfigureValidation(t *testing.T) {
	s := core.NewStack(cc.NewNone())
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}

	other := core.NewStack(cc.NewNone())
	foreign := core.NewMicroprotocol("foreign")
	foreign.AddHandler("h", nopHandler)
	other.Register(foreign)

	err := s.Reconfigure(func(e *core.Epoch) {
		e.Remove("nope")    // no such mp
		e.Register(foreign) // registered with another stack
		e.Register(p)       // duplicate name
		e.Bind(et, nil)     // nil handler
	})
	if err == nil {
		t.Fatal("invalid edit installed")
	}
	for _, want := range []string{`Remove "nope"`, "another stack", "duplicate", "nil handler"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if got := s.CurrentEpoch(); got != 1 {
		t.Fatalf("failed edit advanced the epoch to %d", got)
	}

	err = s.Reconfigure(func(e *core.Epoch) { panic("boom") })
	var pe *core.PanicError
	if !errors.As(err, &pe) || pe.Handler != "<reconfigure>" {
		t.Fatalf("panicking edit: %v", err)
	}
	if got := s.CurrentEpoch(); got != 1 {
		t.Fatalf("panicking edit advanced the epoch to %d", got)
	}
	// The stack still works.
	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDuringReconfigure pins the deterministic half of the
// close-vs-reconfigure race: a Close that begins while the edit is still
// running wins — Reconfigure observes it at the commit point, returns
// ErrClosed, and installs nothing.
func TestCloseDuringReconfigure(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}

	editing := make(chan struct{})
	closed := make(chan struct{})
	recErr := make(chan error, 1)
	go func() {
		recErr <- s.Reconfigure(func(e *core.Epoch) {
			close(editing)
			<-closed // Close completes while we're mid-edit
			e.Rebind(et, h)
		})
	}()
	<-editing
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(closed)
	if err := <-recErr; !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Reconfigure racing Close = %v, want ErrClosed", err)
	}
	if got := s.CurrentEpoch(); got != 1 {
		t.Fatalf("losing Reconfigure still installed epoch %d", got)
	}
}

// TestCloseReconfigureRaceStress hammers the unsynchronized race: each
// round one goroutine closes while another reconfigures. Every round must
// resolve to one of the two coherent outcomes — reconfigure lost
// (ErrClosed, no install) or reconfigure won (installed, then closed) —
// with no hang and a clean Close either way.
func TestCloseReconfigureRaceStress(t *testing.T) {
	for round := 0; round < 100; round++ {
		s := core.NewStack(cc.NewVCABasic())
		p := core.NewMicroprotocol("p")
		h := p.AddHandler("h", nopHandler)
		s.Register(p)
		et := core.NewEventType("e")
		s.Bind(et, h)
		if err := s.External(core.Access(p), et, nil); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		var recErr, closeErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			recErr = s.Reconfigure(func(e *core.Epoch) { e.Rebind(et, h) })
		}()
		go func() {
			defer wg.Done()
			closeErr = s.Close()
		}()
		wg.Wait()
		if closeErr != nil {
			t.Fatalf("round %d: Close = %v", round, closeErr)
		}
		switch {
		case recErr == nil:
			if got := s.CurrentEpoch(); got != 2 {
				t.Fatalf("round %d: winning Reconfigure left epoch %d", round, got)
			}
		case errors.Is(recErr, core.ErrClosed):
			if got := s.CurrentEpoch(); got != 1 {
				t.Fatalf("round %d: losing Reconfigure left epoch %d", round, got)
			}
		default:
			t.Fatalf("round %d: Reconfigure = %v", round, recErr)
		}
		if errs := s.EpochErrs(); len(errs) != 0 {
			t.Fatalf("round %d: EpochErrs = %v", round, errs)
		}
	}
}

// TestReconfigureAfterClose: a closed stack rejects reconfiguration
// outright.
func TestReconfigureAfterClose(t *testing.T) {
	s := core.NewStack(cc.NewNone())
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(func(e *core.Epoch) {}); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Reconfigure after Close = %v, want ErrClosed", err)
	}
}

// TestReconfigureContextWaitsForRetirement: the blocking variant returns
// only after the superseded epoch drained, and honours its context.
func TestReconfigureContextWaitsForRetirement(t *testing.T) {
	s := core.NewStack(cc.NewNone())
	p := core.NewMicroprotocol("p")
	entered := make(chan struct{})
	release := make(chan struct{})
	hold := p.AddHandler("hold", func(*core.Context, core.Message) error {
		close(entered)
		<-release
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, hold)

	errc := make(chan error, 1)
	go func() { errc <- s.External(core.Access(p), et, nil) }()
	<-entered

	// Bounded wait expires while the old epoch is still pinned: the swap
	// installs but the retirement wait is abandoned.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := s.ReconfigureContext(ctx, func(e *core.Epoch) {})
	var de *core.DeadlineError
	if !errors.As(err, &de) || de.Stage != "retire" {
		t.Fatalf("bounded ReconfigureContext = %v, want retire DeadlineError", err)
	}
	if got := s.CurrentEpoch(); got != 2 {
		t.Fatalf("CurrentEpoch = %d, want 2 (swap must install despite the expired wait)", got)
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.EpochDrained(1):
	case <-time.After(5 * time.Second):
		t.Fatal("epoch 1 did not retire after its computation exited")
	}
	// With the stack quiescent the blocking variant completes the full
	// swap-and-retire cycle synchronously.
	if err := s.ReconfigureContext(context.Background(), func(e *core.Epoch) {}); err != nil {
		t.Fatalf("ReconfigureContext on a quiescent stack: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if errs := s.EpochErrs(); len(errs) != 0 {
		t.Fatalf("EpochErrs = %v", errs)
	}
}
