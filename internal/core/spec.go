package core

import (
	"sort"
	"time"
)

// Spec declares, before a computation starts, which microprotocols it may
// visit — the collection M of the paper's isolated constructs. One Spec
// value carries the information needed by every controller variant:
//
//   - Access(mps...) — the basic set M ("isolated M e").
//   - AccessBound(bounds) — M plus a least upper bound on the number of
//     visits per microprotocol ("isolated bound M e").
//   - Route(graph) — a directed graph of handler calls
//     ("isolated route M e"); M is derived from the graph's vertices.
//
// A Spec is immutable once built and may be shared by any number of
// computations. Controllers use the portion of the Spec they understand:
// cc.VCABound demands bounds, cc.VCARoute demands a graph, and every
// controller can run an Access spec (treating it with its most
// conservative interpretation).
type Spec struct {
	mps     []*Microprotocol // deduplicated, sorted by ID
	bounds  map[*Microprotocol]int
	graph   *RouteGraph
	timeout time.Duration // 0 = none; see WithTimeout
}

// Access builds a basic spec: the computation may call any handler of the
// listed microprotocols, any number of times.
func Access(mps ...*Microprotocol) *Spec {
	return &Spec{mps: dedupMPs(mps)}
}

// AccessBound builds a bound spec: the computation may visit each listed
// microprotocol at most the given number of times. The set M is the key
// set of bounds.
func AccessBound(bounds map[*Microprotocol]int) *Spec {
	mps := make([]*Microprotocol, 0, len(bounds))
	b := make(map[*Microprotocol]int, len(bounds))
	for mp, n := range bounds {
		mps = append(mps, mp)
		b[mp] = n
	}
	return &Spec{mps: dedupMPs(mps), bounds: b}
}

// Route builds a routing-pattern spec from a handler-call graph. The set M
// is the set of microprotocols owning the graph's vertices.
func Route(g *RouteGraph) *Spec {
	var mps []*Microprotocol
	for h := range g.vertices {
		mps = append(mps, h.mp)
	}
	return &Spec{mps: dedupMPs(mps), graph: g}
}

// MPs returns the declared collection M, deduplicated and sorted by
// microprotocol ID. The returned slice must not be modified.
func (s *Spec) MPs() []*Microprotocol { return s.mps }

// Declares reports whether mp is in the declared collection M.
func (s *Spec) Declares(mp *Microprotocol) bool {
	for _, m := range s.mps {
		if m == mp {
			return true
		}
	}
	return false
}

// Bound returns the declared least upper bound for mp, if any.
func (s *Spec) Bound(mp *Microprotocol) (int, bool) {
	if s.bounds == nil {
		return 0, false
	}
	n, ok := s.bounds[mp]
	return n, ok
}

// HasBounds reports whether the spec carries visit bounds.
func (s *Spec) HasBounds() bool { return s.bounds != nil }

// Graph returns the routing pattern, or nil for non-route specs.
func (s *Spec) Graph() *RouteGraph { return s.graph }

// WithTimeout derives a spec whose computations carry a deadline: each
// Isolated call of the returned spec runs under a context that expires d
// after the spawn attempt starts. The paper's "isolated M e" assumes e
// terminates; WithTimeout bounds the damage when it does not — a stuck
// computation aborts with a *DeadlineError and releases its claims instead
// of blocking every overlapping computation forever. The receiver is
// unchanged; both specs share the underlying declaration and compile to
// the same controller footprint.
func (s *Spec) WithTimeout(d time.Duration) *Spec {
	out := *s
	out.timeout = d
	return &out
}

// Timeout reports the per-computation deadline, or 0 for none.
func (s *Spec) Timeout() time.Duration { return s.timeout }

func dedupMPs(mps []*Microprotocol) []*Microprotocol {
	seen := make(map[*Microprotocol]bool, len(mps))
	out := make([]*Microprotocol, 0, len(mps))
	for _, mp := range mps {
		if mp == nil || seen[mp] {
			continue
		}
		seen[mp] = true
		out = append(out, mp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// RouteGraph is the routing pattern of "isolated route M e" (paper §4): a
// directed graph whose vertices are handlers. An edge h1→h2 declares that
// the body of h1 may call h2 (directly, or through a declared path — the
// paper's rule 2 accepts any route). Roots are the handlers the
// computation's root expression may call directly.
type RouteGraph struct {
	roots    map[*Handler]bool
	edges    map[*Handler][]*Handler
	vertices map[*Handler]bool
}

// NewRouteGraph creates an empty routing pattern.
func NewRouteGraph() *RouteGraph {
	return &RouteGraph{
		roots:    make(map[*Handler]bool),
		edges:    make(map[*Handler][]*Handler),
		vertices: make(map[*Handler]bool),
	}
}

// Root declares handlers callable directly by the computation's root
// expression. It returns the graph for chaining.
func (g *RouteGraph) Root(hs ...*Handler) *RouteGraph {
	for _, h := range hs {
		g.roots[h] = true
		g.vertices[h] = true
	}
	return g
}

// Edge declares that the body of from may call to. It returns the graph
// for chaining.
func (g *RouteGraph) Edge(from, to *Handler) *RouteGraph {
	g.edges[from] = append(g.edges[from], to)
	g.vertices[from] = true
	g.vertices[to] = true
	return g
}

// IsRoot reports whether h was declared callable by the root expression.
func (g *RouteGraph) IsRoot(h *Handler) bool { return g.roots[h] }

// Contains reports whether h is a vertex of the graph.
func (g *RouteGraph) Contains(h *Handler) bool { return g.vertices[h] }

// Succs returns the direct successors of h. The result must not be
// modified.
func (g *RouteGraph) Succs(h *Handler) []*Handler { return g.edges[h] }

// Vertices returns all handlers in the graph, in unspecified order.
func (g *RouteGraph) Vertices() []*Handler {
	out := make([]*Handler, 0, len(g.vertices))
	for h := range g.vertices {
		out = append(out, h)
	}
	return out
}

// HasCycle reports whether the routing pattern contains a directed cycle.
// Cyclic patterns are legal — recursion needs them — but they prevent the
// VCAroute algorithm's rule 4(b) from ever releasing the microprotocols
// on the cycle early (the paper notes this case falls back to release at
// completion), so a protocol designer may want to know.
func (g *RouteGraph) HasCycle() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Handler]int, len(g.vertices))
	var visit func(h *Handler) bool
	visit = func(h *Handler) bool {
		color[h] = grey
		for _, s := range g.edges[h] {
			switch color[s] {
			case grey:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[h] = black
		return false
	}
	for h := range g.vertices {
		if color[h] == white && visit(h) {
			return true
		}
	}
	return false
}
