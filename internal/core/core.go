package core
