package core

// YieldPoint identifies a framework-level scheduling decision point — a
// place where, under a deterministic test scheduler, control may switch
// to another computation thread. The production runtime has no scheduler
// attached (Stack.hook is nil) and every point compiles down to one
// predictable nil-check branch.
type YieldPoint uint8

// Yield points, in the order they occur for one computation.
const (
	// YieldSpawn precedes the controller's Spawn call (and each retry
	// attempt under a rollback controller).
	YieldSpawn YieldPoint = iota
	// YieldEnter precedes the controller's Enter call of a synchronous
	// handler dispatch.
	YieldEnter
	// YieldExit follows the controller's Exit call — the moment a
	// handler's resources may have been released to other computations.
	YieldExit
	// YieldComplete precedes the controller's Complete call, so a
	// scheduler can delay a computation's final release arbitrarily.
	YieldComplete
	// YieldReconfigure precedes a Reconfigure's edit-and-install section,
	// so a deterministic scheduler can interleave epoch swaps with the
	// spawn/release points of running computations, and the chaos harness
	// can fault a reconfiguration before it commits.
	YieldReconfigure
)

// Hook is the deterministic-scheduler integration point: when attached
// with WithHook, every computation thread the stack creates is announced
// to the hook, thread joins are routed through it, and the dispatch path
// yields at the points above. Package sched's Scheduler implements it.
//
// The contract mirrors the goroutines the stack actually spawns:
//
//	task := TaskSpawn(group)   // in the spawning thread, before `go`
//	go func() {
//	    TaskBegin(task)        // first call of the new thread; may block
//	    ... thread body ...
//	    TaskEnd(task)          // last call of the thread
//	}()
//	...
//	WaitTasks(group)           // blocks until every task of group ended
//
// Group keys are opaque identities (the stack passes the *Computation for
// asynchronous handler executions and the *invocation for forks); a group
// key may be reused once WaitTasks for it has returned.
//
// Restriction: with a hook attached, every thread that spawns or joins
// computations must itself be a thread the hook knows about (for package
// sched: started via Scheduler.Go or one of the announced tasks).
// IsolatedAsync is therefore unsupported under a hook — drive
// computations from scheduler tasks instead.
type Hook interface {
	TaskSpawn(group any) any
	TaskBegin(task any)
	TaskEnd(task any)
	WaitTasks(group any)
	Yield(p YieldPoint)
}

// WithHook attaches a scheduling hook to the stack (test-only; see Hook).
func WithHook(h Hook) StackOption {
	return func(s *Stack) { s.hook = h }
}
