package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
)

// Stack is a composition of microprotocols: the unit the paper calls a
// protocol. It owns the event-type bindings and delegates admission of
// every handler call to its Controller.
//
// A stack is built in two phases. First, Register microprotocols and Bind
// event types to handlers; this phase is single-threaded and guarded by
// mu. The first Isolated call seals the stack and publishes the binding
// table as epoch 1 — an immutable snapshot behind an atomic pointer;
// afterwards dispatch (Trigger, TriggerAll, Bound) is lock-free and
// allocation-free — readers only dereference the snapshot. Bindings are
// immutable within an epoch (the paper's static-binding assumption);
// Reconfigure installs a successor epoch on a live stack (see epoch.go),
// and Rebind remains as the quiescent-only special case.
type Stack struct {
	name   string
	ctrl   Controller
	tracer Tracer
	hook   Hook // deterministic-scheduler hook; nil in production

	mu       sync.Mutex // guards bindings, mps, and history during build, Rebind, and Reconfigure
	bindings map[*EventType][]*Handler
	mps      map[string]*Microprotocol

	// snap is the current epoch — the published immutable binding table;
	// nil until sealed. Everything reachable from a published epoch is
	// never mutated — Reconfigure builds a new epoch and swaps the
	// pointer. history holds every installed epoch, oldest first.
	snap    atomic.Pointer[epochSnap]
	history []*epochSnap // guarded by mu
	sealed  atomic.Bool
	active  atomic.Int64 // computations between Isolated entry and return

	compSeq atomic.Uint64
	invSeq  atomic.Uint64

	// Shutdown state (Close). begun/ended count controller lifecycle
	// legs — a Spawn or an accepted retry begins one, a Complete or a
	// retired retry token ends one — so Close can verify the balance the
	// controllers' proofs assume. The same legs are mirrored per epoch
	// for retirement accounting.
	closed    atomic.Bool
	begun     atomic.Uint64
	ended     atomic.Uint64
	drained   chan struct{}
	drainOnce sync.Once

	// Epoch retirement diagnostics (see epoch.go).
	epochMu      sync.Mutex
	epochErrs    []error
	deadDispatch atomic.Uint64
}

// StackOption configures a Stack at creation.
type StackOption func(*Stack)

// WithTracer attaches a Tracer to the stack.
func WithTracer(t Tracer) StackOption {
	return func(s *Stack) { s.tracer = t }
}

// WithName names the stack (for diagnostics).
func WithName(name string) StackOption {
	return func(s *Stack) { s.name = name }
}

// NewStack creates a stack whose computations are scheduled by ctrl.
// Controllers hold per-stack state and must not be shared across stacks.
func NewStack(ctrl Controller, opts ...StackOption) *Stack {
	if ctrl == nil {
		panic("samoa: NewStack with nil controller")
	}
	s := &Stack{
		ctrl:     ctrl,
		tracer:   nopTracer{},
		bindings: make(map[*EventType][]*Handler),
		mps:      make(map[string]*Microprotocol),
		drained:  make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name reports the stack's name.
func (s *Stack) Name() string { return s.name }

// Controller returns the stack's concurrency controller.
func (s *Stack) Controller() Controller { return s.ctrl }

// Register adds a microprotocol to the stack. It panics on duplicate
// names, re-registration, or registration after sealing; all are
// construction-time programming errors.
func (s *Stack) Register(mps ...*Microprotocol) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed.Load() {
		panic(fmt.Sprintf("samoa: Register on stack %q after it sealed (epoch %d is live; use Reconfigure)",
			s.name, s.CurrentEpoch()))
	}
	for _, mp := range mps {
		if mp.stack != nil {
			panic(fmt.Sprintf("samoa: microprotocol %s already registered", mp.name))
		}
		if _, dup := s.mps[mp.name]; dup {
			panic(fmt.Sprintf("samoa: duplicate microprotocol name %q", mp.name))
		}
		mp.stack = s
		s.mps[mp.name] = mp
	}
}

// MP returns the registered microprotocol with the given name, or nil.
func (s *Stack) MP(name string) *Microprotocol {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mps[name]
}

// Bind binds handlers to an event type, in order. Triggering an event of
// type et requests execution of every bound handler. Bind panics if the
// stack is sealed or a handler's microprotocol is not registered.
func (s *Stack) Bind(et *EventType, hs ...*Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed.Load() {
		names := make([]string, len(hs))
		for i, h := range hs {
			names[i] = h.String()
		}
		panic(fmt.Sprintf("samoa: Bind %q → [%s] on stack %q after its first computation sealed the binding table (epoch %d is live; use Reconfigure, or Rebind while quiescent)",
			et.Name(), strings.Join(names, " "), s.name, s.CurrentEpoch()))
	}
	s.bindLocked(et, hs)
}

// Rebind replaces the handlers bound to an event type. It implements the
// paper's future-work dynamic-binding extension under the paper's own
// restriction: handlers "cannot be (re)bound inside any computation", so
// Rebind fails with ErrActiveComputations unless the stack is quiescent.
// On success the new binding table is republished atomically.
func (s *Stack) Rebind(et *EventType, hs ...*Handler) error {
	s.mu.Lock()
	if s.active.Load() > 0 {
		s.mu.Unlock()
		return ErrActiveComputations
	}
	delete(s.bindings, et)
	s.bindLocked(et, hs)
	var old *epochSnap
	if s.sealed.Load() {
		old = s.installLocked(EpochChange{})
	}
	s.mu.Unlock()
	s.maybeRetire(old)
	return nil
}

func (s *Stack) bindLocked(et *EventType, hs []*Handler) {
	for _, h := range hs {
		if h.mp.stack != s {
			panic(fmt.Sprintf("samoa: handler %s bound on a stack its microprotocol is not registered with", h))
		}
		s.bindings[et] = append(s.bindings[et], h)
	}
}

// installLocked publishes the binding table as a fresh epoch and returns
// the epoch it superseded (nil at seal time). The old epoch is marked
// superseded *before* the pointer swap, so the pin protocol's
// increment-then-recheck and exitEpoch's superseded check together
// guarantee the old epoch's retirement fires exactly once its last
// computation exits; callers must invoke maybeRetire(old) after releasing
// s.mu to cover the already-quiescent case. Callers hold s.mu.
func (s *Stack) installLocked(ch EpochChange) *epochSnap {
	old := s.snap.Load()
	n := uint64(1)
	if old != nil {
		n = old.n + 1
	}
	bindings := make(map[*EventType][]*Handler, len(s.bindings))
	for et, hs := range s.bindings {
		out := make([]*Handler, len(hs))
		copy(out, hs)
		bindings[et] = out
	}
	ep := &epochSnap{n: n, bindings: bindings, drained: make(chan struct{})}
	s.history = append(s.history, ep)
	if old != nil {
		ch.Epoch = n
		old.succ = ch
		old.superseded.Store(true)
	}
	s.snap.Store(ep)
	if old != nil {
		if r, ok := s.ctrl.(Reconfigurer); ok {
			r.InstallEpoch(old.succ)
		}
	}
	return old
}

// seal publishes the binding snapshot as epoch 1 on the first
// computation. After it returns, s.snap is non-nil and dispatch never
// touches s.mu again.
func (s *Stack) seal() {
	if s.sealed.Load() {
		return
	}
	s.mu.Lock()
	if !s.sealed.Load() {
		s.installLocked(EpochChange{})
		s.sealed.Store(true)
	}
	s.mu.Unlock()
}

// handlers returns the current epoch's binding slice for et without
// copying. Post-seal this is a lock-free read of the published snapshot;
// the result is immutable and must not be modified. Dispatch inside a
// computation goes through Computation.handlers instead, which reads the
// computation's pinned epoch.
func (s *Stack) handlers(et *EventType) []*Handler {
	if ep := s.snap.Load(); ep != nil {
		return ep.bindings[et]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bindings[et]
}

// Bound returns the handlers currently bound to et, in bind order.
func (s *Stack) Bound(et *EventType) []*Handler {
	hs := s.handlers(et)
	out := make([]*Handler, len(hs))
	copy(out, hs)
	return out
}

func (s *Stack) isSealed() bool { return s.sealed.Load() }

// Isolated spawns a new computation — the Go rendering of the paper's
// "isolated M e" — and runs root as its root expression. The spec declares
// what the computation may touch; the stack's controller enforces it and
// schedules the computation so the isolation property holds.
//
// Isolated returns after the computation completes: the root expression
// returned and every thread it transitively created (forks, asynchronous
// handler executions) terminated. It returns the first error recorded by
// the computation: a spec violation, or an error returned by root or by
// any handler.
//
// Under a rollback-based controller (core.Restorer, e.g. cc.WaitDie) a
// computation may be aborted and transparently re-executed; root and the
// handlers it reaches then run more than once, so their effects must be
// confined to microprotocol state the controller can restore.
//
// Faults are contained (DESIGN.md §10): a panic anywhere in the
// computation — root, handler body, forked thread — aborts only that
// computation, surfaces as a *PanicError, and still drives the
// controller's end protocol so every claimed version is released.
func (s *Stack) Isolated(spec *Spec, root func(ctx *Context) error) error {
	return s.IsolatedCtx(context.Background(), spec, root)
}

// IsolatedCtx is Isolated bounded by a context: when ctx is cancelled or
// its deadline expires, the computation stops issuing handler calls,
// blocked admission waits abandon with a *DeadlineError, and the
// controller releases the computation's claims so waiters behind it
// proceed. Spec.WithTimeout composes with ctx — whichever expires first
// wins. Cancellation is cooperative between handler calls: a handler body
// already running is not interrupted (poll Context.Computation().Ctx()
// inside long-running bodies).
func (s *Stack) IsolatedCtx(ctx context.Context, spec *Spec, root func(ctx *Context) error) error {
	s.seal()
	ep := s.pin()
	s.active.Add(1)
	defer s.exitActive(ep)
	if s.closed.Load() {
		return ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if d := spec.Timeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	var retryToken Token
	for {
		err, retry, next := s.attempt(ctx, ep, spec, root, retryToken)
		if retry {
			retryToken = next
			continue
		}
		return err
	}
}

// beginLeg / endLeg book one controller lifecycle leg, globally (for
// Close) and on the computation's pinned epoch (for retirement).
func (s *Stack) beginLeg(ep *epochSnap) {
	s.begun.Add(1)
	ep.begun.Add(1)
}

func (s *Stack) endLeg(ep *epochSnap) {
	s.ended.Add(1)
	ep.ended.Add(1)
}

// attempt runs one execution attempt of a computation. It owns the
// controller end protocol for the attempt's token: every path that
// acquires (or inherits) a token ends it via Complete or hands it to
// PrepareRetry, panics included — the invariant Close's lifecycle check
// verifies.
func (s *Stack) attempt(ctx context.Context, ep *epochSnap, spec *Spec, root func(ctx *Context) error, retryToken Token) (err error, retry bool, next Token) {
	if yerr := s.yieldSafe(nil, YieldSpawn); yerr != nil {
		// The hook faulted before Spawn: no token exists yet, unless this
		// is a retry attempt whose inherited token must still be retired.
		if retryToken != nil {
			s.ctrl.Complete(retryToken)
			s.endLeg(ep)
		}
		return yerr, false, nil
	}
	token := retryToken
	if token == nil {
		if cerr := ctx.Err(); cerr != nil {
			return &DeadlineError{Stage: "spawn", Err: cerr}, false, nil
		}
		var serr error
		if token, serr = s.ctrl.Spawn(ctx, spec); serr != nil {
			return serr, false, nil
		}
		s.beginLeg(ep)
	} else if cerr := ctx.Err(); cerr != nil {
		s.ctrl.Complete(token)
		s.endLeg(ep)
		return &DeadlineError{Stage: "spawn", Err: cerr}, false, nil
	}
	comp := &Computation{
		id:    s.compSeq.Add(1),
		stack: s,
		epoch: ep,
		token: token,
		spec:  spec,
		ctx:   ctx,
	}
	s.tracer.Spawned(comp.id, spec)

	if root != nil {
		comp.record(s.callRoot(comp, root))
	}
	s.waitInv(&comp.rootInv)
	s.ctrl.RootReturned(token)
	s.waitComp(comp)

	err = comp.firstErr()
	if errors.Is(err, ErrComputationAborted) {
		if r, ok := s.ctrl.(Restorer); ok {
			if nextTok, ok2 := r.PrepareRetry(token); ok2 {
				s.tracer.Aborted(comp.id)
				// The retired token ends one lifecycle leg; the accepted
				// retry begins the next.
				s.endLeg(ep)
				s.beginLeg(ep)
				return nil, true, nextTok
			}
			s.tracer.Aborted(comp.id)
			// PrepareRetry declined and cleaned up: the token is retired.
			s.endLeg(ep)
			return err, false, nil
		}
	}
	if yerr := s.yieldSafe(comp, YieldComplete); yerr != nil && err == nil {
		err = yerr
	}
	s.ctrl.Complete(token)
	s.endLeg(ep)
	s.tracer.Completed(comp.id)
	return err, false, nil
}

// callRoot runs the root expression under recover, so a panicking root
// aborts its computation instead of unwinding past the end protocol.
func (s *Stack) callRoot(comp *Computation, root func(ctx *Context) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{
				Stack:       s.name,
				Handler:     "<root>",
				Computation: comp.id,
				Value:       v,
				Trace:       debug.Stack(),
			}
		}
	}()
	return root(&Context{comp: comp, inv: &comp.rootInv})
}

// yieldSafe announces a yield point to the hook, converting a hook panic
// (the chaos harness injects faults there) into the computation error it
// simulates. Production stacks have no hook and pay one nil check.
func (s *Stack) yieldSafe(comp *Computation, p YieldPoint) (err error) {
	hk := s.hook
	if hk == nil {
		return nil
	}
	defer func() {
		if v := recover(); v != nil {
			pe := &PanicError{Stack: s.name, Handler: "<hook>", Value: v, Trace: debug.Stack()}
			if comp != nil {
				pe.Computation = comp.id
				comp.record(pe)
			}
			err = pe
		}
	}()
	hk.Yield(p)
	return nil
}

// exitActive retires one active computation — first from its pinned
// epoch (possibly completing that epoch's retirement), then from the
// global count, completing the drain when it was the last one a closing
// stack was waiting for.
func (s *Stack) exitActive(ep *epochSnap) {
	s.exitEpoch(ep)
	if s.active.Add(-1) == 0 && s.closed.Load() {
		s.drainOnce.Do(func() { close(s.drained) })
	}
}

// Close gracefully drains the stack: new computations are rejected with
// ErrClosed, in-flight ones run to completion (bound their wait with
// CloseContext or per-spec timeouts), and the controller lifecycle is
// verified — every computation that began must have ended, or Close
// returns a *LifecycleError identifying the leak. Close is idempotent and
// safe to call concurrently; every call waits for the drain.
func (s *Stack) Close() error { return s.CloseContext(context.Background()) }

// CloseContext is Close bounded by a context; it returns a *DeadlineError
// with Stage "drain" when ctx expires before the in-flight computations
// finish (the stack stays closed and keeps draining in the background).
func (s *Stack) CloseContext(ctx context.Context) error {
	s.closed.Store(true)
	if s.active.Load() == 0 {
		s.drainOnce.Do(func() { close(s.drained) })
	}
	select {
	case <-s.drained:
	case <-ctx.Done():
		return &DeadlineError{Stage: "drain", Err: ctx.Err()}
	}
	if b, e := s.begun.Load(), s.ended.Load(); b != e {
		return &LifecycleError{Begun: b, Ended: e}
	}
	return nil
}

// Closed reports whether Close has begun.
func (s *Stack) Closed() bool { return s.closed.Load() }

// waitInv blocks until every thread forked by the invocation terminated.
// Under a hook, the join is announced first so a deterministic scheduler
// can run the forked tasks to completion; the native Wait then returns
// without a scheduling dependency.
func (s *Stack) waitInv(inv *invocation) {
	if s.hook != nil {
		s.hook.WaitTasks(inv)
	}
	inv.forks.Wait()
}

// waitComp blocks until every asynchronous handler execution of the
// computation terminated (same hook protocol as waitInv).
func (s *Stack) waitComp(c *Computation) {
	if s.hook != nil {
		s.hook.WaitTasks(c)
	}
	c.wg.Wait()
}

// IsolatedAsync spawns the computation from a fresh goroutine and returns
// immediately; the returned channel yields the computation's result once.
//
// A computation must never spawn another one synchronously from inside a
// handler: the paper's model has causally *caused* computations start as
// new external events, and a nested synchronous Isolated would deadlock
// under Serial or whenever the specs overlap (the parent cannot release
// what the child waits for). Use IsolatedAsync for caused computations,
// timer-driven computations, and network receive loops.
func (s *Stack) IsolatedAsync(spec *Spec, root func(ctx *Context) error) <-chan error {
	done := make(chan error, 1)
	go func() { done <- s.Isolated(spec, root) }()
	return done
}

// External is a convenience for the common pattern of the paper §4 — a
// computation whose root expression triggers a single event, e.g.
// "isolated [relComm relCast ...] { trigger FromNet m }".
func (s *Stack) External(spec *Spec, et *EventType, msg Message) error {
	return s.Isolated(spec, func(ctx *Context) error {
		return ctx.Trigger(et, msg)
	})
}

// ExternalAll is External with TriggerAll as the root expression.
func (s *Stack) ExternalAll(spec *Spec, et *EventType, msg Message) error {
	return s.Isolated(spec, func(ctx *Context) error {
		return ctx.TriggerAll(et, msg)
	})
}
