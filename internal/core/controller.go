package core

import "context"

// Token is the controller's per-computation state, created by Spawn and
// threaded through every subsequent controller call for that computation.
type Token any

// Controller is a concurrency-control algorithm deciding when computations
// may call handlers so that every execution of the stack satisfies the
// isolation property (paper §5). Implementations live in package cc.
//
// Call protocol, per computation:
//
//	t, err := Spawn(ctx, spec)       // once, atomic w.r.t. other spawns
//	for every handler call:
//	    Request(t, caller, h)        // in the thread issuing the trigger
//	    Enter(ctx, t, caller, h)     // may block; in the executing thread
//	    ... handler runs ...
//	    Exit(t, h)                   // after the handler and its forks end
//	RootReturned(t)                  // after the root expression returns
//	Complete(t)                      // after all computation threads end
//
// Request runs in the thread that issues the trigger — before any
// goroutine handoff for asynchronous triggers — so spec violations surface
// in the calling thread, as the paper prescribes for the isolated
// constructs. Enter blocks until the call is admissible. Controllers must
// be deadlock-free for any set of well-formed computations.
//
// The context bounds every potentially-blocking call (fault containment,
// DESIGN.md §10): Spawn and Enter must abandon their wait and return a
// *DeadlineError once ctx is done. A cancelled Spawn leaves no
// per-computation state behind; a cancelled Enter leaves the token in a
// state where RootReturned and Complete still release everything the
// computation already claimed — Complete is called on every token that
// Spawn returned, cancelled or not.
type Controller interface {
	// Name identifies the algorithm (for traces and benchmarks).
	Name() string

	// Spawn atomically registers a new computation with its declared
	// spec and returns its token. Spawns are totally ordered; the order
	// fixes the equivalent serial order of the computations.
	Spawn(ctx context.Context, spec *Spec) (Token, error)

	// Request validates (and, for routing controllers, reserves) a call
	// of h issued by caller; caller is nil when the computation's root
	// expression issues the call.
	Request(t Token, caller, h *Handler) error

	// Enter blocks until the computation may execute h, or ctx is done.
	Enter(ctx context.Context, t Token, caller, h *Handler) error

	// Exit records that an execution of h — including any threads the
	// handler forked — has finished.
	Exit(t Token, h *Handler)

	// RootReturned records that the computation's root expression (the
	// paper's expression e) has returned and will issue no more direct
	// calls. Only routing controllers care.
	RootReturned(t Token)

	// Complete records that the computation has finished entirely: the
	// root expression returned and all threads terminated.
	Complete(t Token)
}

// Restorer is implemented by controllers that abort computations — the
// paper's second algorithm group, "timestamp-ordering algorithms with
// rollback/recovery". When a computation finishes with
// ErrComputationAborted, Isolated calls PrepareRetry instead of Complete:
// the controller undoes the computation's effects (restoring microprotocol
// snapshots, releasing claims) and returns the token for the retry attempt
// (typically preserving the original timestamp, for starvation freedom).
// A false second result declines the retry; the controller must have
// cleaned up, and Isolated returns the abort error to the caller.
type Restorer interface {
	PrepareRetry(t Token) (retry Token, ok bool)
}
