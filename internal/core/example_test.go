package core_test

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/core"
)

// The paper's basic construct: isolated M e. The computation declares the
// microprotocols it may touch; the controller guarantees isolation, so
// the microprotocol state needs no locks.
func ExampleStack_Isolated() {
	stack := core.NewStack(cc.NewVCABasic())

	counter := core.NewMicroprotocol("counter")
	n := 0
	inc := counter.AddHandler("inc", func(ctx *core.Context, msg core.Message) error {
		n += msg.(int)
		return nil
	})
	stack.Register(counter)

	add := core.NewEventType("Add")
	stack.Bind(add, inc)

	// isolated [counter] { trigger Add 41; trigger Add 1 }
	err := stack.Isolated(core.Access(counter), func(ctx *core.Context) error {
		if err := ctx.Trigger(add, 41); err != nil {
			return err
		}
		return ctx.Trigger(add, 1)
	})
	fmt.Println(n, err)
	// Output: 42 <nil>
}

// The bound construct: isolated bound M e. Exceeding the declared least
// upper bound of visits raises a runtime error in the calling thread.
func ExampleAccessBound() {
	stack := core.NewStack(cc.NewVCABound())

	mp := core.NewMicroprotocol("mp")
	h := mp.AddHandler("h", func(*core.Context, core.Message) error { return nil })
	stack.Register(mp)
	ev := core.NewEventType("ev")
	stack.Bind(ev, h)

	spec := core.AccessBound(map[*core.Microprotocol]int{mp: 1})
	err := stack.Isolated(spec, func(ctx *core.Context) error {
		if err := ctx.Trigger(ev, nil); err != nil {
			return err
		}
		return ctx.Trigger(ev, nil) // second visit: bound exhausted
	})
	fmt.Println(err)
	// Output: samoa: visit bound 1 for microprotocol mp exhausted
}

// The route construct: isolated route M e. Calls must follow declared
// routes; here parse may call emit only through the declared edge.
func ExampleRoute() {
	stack := core.NewStack(cc.NewVCARoute())

	parse := core.NewMicroprotocol("parse")
	emit := core.NewMicroprotocol("emit")
	evEmit := core.NewEventType("Emit")
	hEmit := emit.AddHandler("run", func(_ *core.Context, msg core.Message) error {
		fmt.Println("emit:", msg)
		return nil
	})
	hParse := parse.AddHandler("run", func(ctx *core.Context, msg core.Message) error {
		return ctx.Trigger(evEmit, msg)
	})
	stack.Register(parse, emit)
	evParse := core.NewEventType("Parse")
	stack.Bind(evParse, hParse)
	stack.Bind(evEmit, hEmit)

	graph := core.NewRouteGraph().Root(hParse).Edge(hParse, hEmit)
	err := stack.External(core.Route(graph), evParse, "payload")
	fmt.Println(err)
	// Output:
	// emit: payload
	// <nil>
}
