package core_test

import (
	"testing"

	"repro/internal/core"
)

func TestSpecBuilderReachability(t *testing.T) {
	p := core.NewMicroprotocol("pb")
	q := core.NewMicroprotocol("qb")
	r := core.NewMicroprotocol("rb")
	hp := p.AddHandler("hp", nopHandler)
	hq := q.AddHandler("hq", nopHandler)
	hr := r.AddHandler("hr", nopHandler)

	b := core.NewSpecBuilder().Edge(hp, hq) // hr disconnected
	reach := b.Reachable(hp)
	if !reach[hp] || !reach[hq] || reach[hr] {
		t.Fatalf("reach = %v", reach)
	}

	spec := b.Basic(hp)
	if !spec.Declares(p) || !spec.Declares(q) || spec.Declares(r) {
		t.Fatalf("basic spec MPs = %v", spec.MPs())
	}
}

func TestSpecBuilderBound(t *testing.T) {
	p := core.NewMicroprotocol("pb2")
	q := core.NewMicroprotocol("qb2")
	hp := p.AddHandler("hp", nopHandler)
	hq := q.AddHandler("hq", nopHandler)
	spec := core.NewSpecBuilder().Edge(hp, hq).Bound(7, hp)
	if n, ok := spec.Bound(p); !ok || n != 7 {
		t.Fatalf("bound(p) = %d, %v", n, ok)
	}
	if n, ok := spec.Bound(q); !ok || n != 7 {
		t.Fatalf("bound(q) = %d, %v", n, ok)
	}
}

func TestSpecBuilderRouteRestrictsToReachable(t *testing.T) {
	p := core.NewMicroprotocol("pb3")
	hp := p.AddHandler("hp", nopHandler)
	hq := p.AddHandler("hq", nopHandler)
	hr := p.AddHandler("hr", nopHandler)
	// hr→hq exists but hr is unreachable from hp: its edge must not
	// appear in the route spec built from root hp.
	b := core.NewSpecBuilder().Edge(hp, hq).Edge(hr, hq)
	spec := b.Route(hp)
	g := spec.Graph()
	if !g.IsRoot(hp) || !g.Contains(hq) || g.Contains(hr) {
		t.Fatalf("route graph vertices wrong: contains(hr)=%v", g.Contains(hr))
	}
	if len(g.Succs(hr)) != 0 {
		t.Fatal("unreachable edge leaked into the route graph")
	}
}

func TestSpecBuilderMultipleRoots(t *testing.T) {
	p := core.NewMicroprotocol("pb4")
	q := core.NewMicroprotocol("qb4")
	hp := p.AddHandler("hp", nopHandler)
	hq := q.AddHandler("hq", nopHandler)
	spec := core.NewSpecBuilder().Basic(hp, hq) // no edges at all
	if !spec.Declares(p) || !spec.Declares(q) {
		t.Fatalf("MPs = %v", spec.MPs())
	}
}
