package core_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
)

func TestTriggerSingleHandler(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	var got core.Message
	h := p.AddHandler("h", func(ctx *core.Context, msg core.Message) error {
		got = msg
		if ctx.Handler() != ctx.Stack().MP("p").Handler("h") {
			t.Error("ctx.Handler mismatch")
		}
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)

	err := s.Isolated(core.Access(p), func(ctx *core.Context) error {
		if ctx.Handler() != nil {
			t.Error("root ctx.Handler must be nil")
		}
		if ctx.Stack() != s {
			t.Error("ctx.Stack mismatch")
		}
		return ctx.Trigger(et, "payload")
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("msg = %v", got)
	}
}

func TestTriggerUnbound(t *testing.T) {
	s := newNoneStack(t)
	et := core.NewEventType("nobody")
	err := s.Isolated(core.Access(), func(ctx *core.Context) error {
		return ctx.Trigger(et, nil)
	})
	var ue *core.UnboundError
	if !errors.As(err, &ue) || ue.Event != "nobody" {
		t.Fatalf("err = %v", err)
	}
}

func TestTriggerAmbiguous(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	h1 := p.AddHandler("h1", nopHandler)
	h2 := p.AddHandler("h2", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h1, h2)

	err := s.Isolated(core.Access(p), func(ctx *core.Context) error {
		return ctx.Trigger(et, nil)
	})
	var ae *core.AmbiguousError
	if !errors.As(err, &ae) || ae.N != 2 {
		t.Fatalf("err = %v", err)
	}
	// AsyncTrigger has the same single-handler contract.
	err = s.Isolated(core.Access(p), func(ctx *core.Context) error {
		return ctx.AsyncTrigger(et, nil)
	})
	if !errors.As(err, &ae) {
		t.Fatalf("async err = %v", err)
	}
}

func TestTriggerAllRunsAllInOrder(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	var order []string
	mk := func(name string, fail bool) *core.Handler {
		return p.AddHandler(name, func(*core.Context, core.Message) error {
			order = append(order, name)
			if fail {
				return errors.New("boom-" + name)
			}
			return nil
		})
	}
	a := mk("a", false)
	b := mk("b", true) // failure must not stop c
	c := mk("c", false)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, a, b, c)

	err := s.Isolated(core.Access(p), func(ctx *core.Context) error {
		return ctx.TriggerAll(et, nil)
	})
	if err == nil || err.Error() != "boom-b" {
		t.Fatalf("err = %v", err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestTriggerAllUnboundIsNoop(t *testing.T) {
	s := newNoneStack(t)
	err := s.Isolated(core.Access(), func(ctx *core.Context) error {
		return ctx.TriggerAll(core.NewEventType("nobody"), nil)
	})
	if err != nil {
		t.Fatalf("TriggerAll on unbound event: %v", err)
	}
}

func TestAsyncTriggerAllWaitsForCompletion(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	var n atomic.Int32
	var hs []*core.Handler
	for _, name := range []string{"a", "b", "c"} {
		hs = append(hs, p.AddHandler(name, func(*core.Context, core.Message) error {
			n.Add(1)
			return nil
		}))
	}
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, hs...)

	if err := s.Isolated(core.Access(p), func(ctx *core.Context) error {
		return ctx.AsyncTriggerAll(et, nil)
	}); err != nil {
		t.Fatal(err)
	}
	// Isolated returns only after all computation threads terminated.
	if n.Load() != 3 {
		t.Fatalf("ran %d handlers, want 3", n.Load())
	}
}

func TestAsyncHandlerErrorSurfacesFromIsolated(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	boom := errors.New("async boom")
	h := p.AddHandler("h", func(*core.Context, core.Message) error { return boom })
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)

	err := s.Isolated(core.Access(p), func(ctx *core.Context) error {
		return ctx.AsyncTrigger(et, nil)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedSyncTriggers(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	etQ := core.NewEventType("toQ")
	var order []string
	hq := q.AddHandler("hq", func(*core.Context, core.Message) error {
		order = append(order, "hq")
		return nil
	})
	hp := p.AddHandler("hp", func(ctx *core.Context, _ core.Message) error {
		order = append(order, "hp-pre")
		if err := ctx.Trigger(etQ, nil); err != nil {
			return err
		}
		order = append(order, "hp-post")
		return nil
	})
	s.Register(p, q)
	etP := core.NewEventType("toP")
	s.Bind(etP, hp)
	s.Bind(etQ, hq)

	if err := s.External(core.Access(p, q), etP, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"hp-pre", "hq", "hp-post"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestForkJoinsBeforeIsolatedReturns(t *testing.T) {
	s := newNoneStack(t)
	var mu sync.Mutex
	var done []int
	err := s.Isolated(core.Access(), func(ctx *core.Context) error {
		for i := 0; i < 8; i++ {
			i := i
			ctx.Fork(func(*core.Context) error {
				mu.Lock()
				done = append(done, i)
				mu.Unlock()
				return nil
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 8 {
		t.Fatalf("forks completed = %d, want 8", len(done))
	}
}

func TestForkErrorRecorded(t *testing.T) {
	s := newNoneStack(t)
	boom := errors.New("fork boom")
	err := s.Isolated(core.Access(), func(ctx *core.Context) error {
		ctx.Fork(func(*core.Context) error { return boom })
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestForkInsideHandlerDelaysHandlerEnd(t *testing.T) {
	rec := make(chan string, 3)
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", func(ctx *core.Context, _ core.Message) error {
		gate := make(chan struct{})
		ctx.Fork(func(*core.Context) error {
			<-gate
			rec <- "fork"
			return nil
		})
		rec <- "body"
		close(gate)
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}
	rec <- "after"
	if a, b, c := <-rec, <-rec, <-rec; a != "body" || b != "fork" || c != "after" {
		t.Fatalf("order = %v %v %v", a, b, c)
	}
}

func TestRootErrorReturned(t *testing.T) {
	s := newNoneStack(t)
	boom := errors.New("root boom")
	if err := s.Isolated(core.Access(), func(*core.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestFirstErrorWins(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	first := errors.New("first")
	h := p.AddHandler("h", func(*core.Context, core.Message) error { return first })
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	err := s.Isolated(core.Access(p), func(ctx *core.Context) error {
		_ = ctx.Trigger(et, nil)
		return errors.New("second")
	})
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want first", err)
	}
}

func TestExternalAll(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	var n int
	h1 := p.AddHandler("h1", func(*core.Context, core.Message) error { n++; return nil })
	h2 := p.AddHandler("h2", func(*core.Context, core.Message) error { n++; return nil })
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h1, h2)
	if err := s.ExternalAll(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
}

// TestConcurrentComputationsUnderNone exercises the plumbing with many
// concurrent computations; correctness of shared counters is guaranteed
// here by atomics, not by the controller.
func TestConcurrentComputationsUnderNone(t *testing.T) {
	s := core.NewStack(cc.NewNone())
	p := core.NewMicroprotocol("p")
	var n atomic.Int64
	h := p.AddHandler("h", func(*core.Context, core.Message) error {
		n.Add(1)
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	spec := core.Access(p)

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.External(spec, et, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 64 {
		t.Fatalf("n = %d", n.Load())
	}
}
