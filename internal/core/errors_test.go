package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestErrorStrings(t *testing.T) {
	cases := []struct {
		err  error
		want []string
	}{
		{&core.UnboundError{Event: "ev"}, []string{"no handler", `"ev"`}},
		{&core.AmbiguousError{Event: "ev", N: 3}, []string{"3 handlers", "TriggerAll"}},
		{&core.UndeclaredError{MP: "relcomm", Handler: "send"}, []string{"relcomm.send", "not declared"}},
		{&core.UndeclaredError{MP: "relcomm", Handler: "send", Declared: []string{"net", "ret"}},
			[]string{"relcomm.send", "not declared", "relcomm is missing from [net ret]"}},
		{&core.BoundExhaustedError{MP: "relcomm", Bound: 4}, []string{"bound 4", "relcomm", "exhausted"}},
		{&core.NoRouteError{From: "P.hp", To: "Q.hq"}, []string{"P.hp", "Q.hq", "no route"}},
		{&core.NoRouteError{To: "Q.hq"}, []string{"<root>", "Q.hq"}},
		{&core.ReadOnlyViolationError{MP: "data", Handler: "poke"}, []string{"read-only", "data.poke"}},
		{&core.SpecError{Controller: "vca-bound", Reason: "no bounds"}, []string{"vca-bound", "no bounds"}},
		{core.ErrActiveComputations, []string{"rebind", "active"}},
	}
	for _, tc := range cases {
		msg := tc.err.Error()
		for _, want := range tc.want {
			if !strings.Contains(msg, want) {
				t.Errorf("%T: %q missing %q", tc.err, msg, want)
			}
		}
	}
}

func TestBoundReturnsCopy(t *testing.T) {
	s := newNoneStack(t)
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nopHandler)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	got := s.Bound(et)
	got[0] = nil // must not corrupt the stack's own binding slice
	if s.Bound(et)[0] != h {
		t.Fatal("Bound leaked internal slice")
	}
}

func TestStackAccessors(t *testing.T) {
	ctrl := struct{ core.Controller }{}
	_ = ctrl
	s := newNoneStack(t)
	if s.Controller() == nil {
		t.Fatal("controller accessor")
	}
}
