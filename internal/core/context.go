package core

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
)

// Context is passed to every handler execution and to the computation's
// root expression. It issues events and forks computation threads. A
// Context is only valid for the duration of the invocation it was passed
// to; handlers must not retain it.
type Context struct {
	comp *Computation
	inv  *invocation
}

// Computation returns the computation this context executes in.
func (c *Context) Computation() *Computation { return c.comp }

// Stack returns the stack this context executes on.
func (c *Context) Stack() *Stack { return c.comp.stack }

// Handler returns the handler this context was passed to, or nil in the
// computation's root expression.
func (c *Context) Handler() *Handler { return c.inv.handler }

// Ctx returns the context bounding this computation — the one passed to
// IsolatedCtx, further bounded by Spec.WithTimeout. Long-running handler
// bodies should poll it and return early once it is done.
func (c *Context) Ctx() context.Context { return c.comp.ctx }

// Trigger synchronously executes the single handler bound to et — the
// paper's "trigger" construct. It returns an UnboundError or
// AmbiguousError if not exactly one handler is bound, a controller error
// if the call violates the computation's spec, or the handler's own error.
func (c *Context) Trigger(et *EventType, msg Message) error {
	h, err := c.single(et)
	if err != nil {
		c.comp.record(err)
		return err
	}
	return c.comp.stack.callSync(c.comp, c.inv, et, h, msg)
}

// TriggerAll synchronously executes every handler bound to et, in bind
// order — the paper's "triggerAll". All bound handlers run even if an
// earlier one fails; the joined errors are returned.
func (c *Context) TriggerAll(et *EventType, msg Message) error {
	hs := c.comp.handlers(et)
	var errs []error
	for _, h := range hs {
		if err := c.comp.stack.callSync(c.comp, c.inv, et, h, msg); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// AsyncTrigger requests asynchronous execution of the single handler bound
// to et. Spec violations detectable at request time are returned in the
// calling thread; errors from the handler itself are recorded on the
// computation and surface from Isolated.
func (c *Context) AsyncTrigger(et *EventType, msg Message) error {
	h, err := c.single(et)
	if err != nil {
		c.comp.record(err)
		return err
	}
	return c.comp.stack.callAsync(c.comp, c.inv, et, h, msg)
}

// AsyncTriggerAll requests asynchronous execution of every handler bound
// to et — the paper's "asyncTriggerAll". Each handler runs in its own
// computation thread.
func (c *Context) AsyncTriggerAll(et *EventType, msg Message) error {
	hs := c.comp.handlers(et)
	var errs []error
	for _, h := range hs {
		if err := c.comp.stack.callAsync(c.comp, c.inv, et, h, msg); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Fork runs fn in a new thread of the same computation. The current
// invocation is not considered complete until fn returns, so a handler's
// forked threads delay its Exit (rule 4 of VCAbound counts a handler
// execution as completed only when "any threads spawned by the handler
// terminated"). fn's error is recorded on the computation.
func (c *Context) Fork(fn func(ctx *Context) error) {
	c.inv.forks.Add(1)
	if hk := c.comp.stack.hook; hk != nil {
		task := hk.TaskSpawn(c.inv)
		go func() {
			defer c.inv.forks.Done()
			defer hk.TaskEnd(task)
			hk.TaskBegin(task)
			c.comp.record(c.comp.stack.callFork(c.comp, c.inv, fn))
		}()
		return
	}
	go func() {
		defer c.inv.forks.Done()
		c.comp.record(c.comp.stack.callFork(c.comp, c.inv, fn))
	}()
}

func (c *Context) single(et *EventType) (*Handler, error) {
	hs := c.comp.handlers(et)
	switch len(hs) {
	case 0:
		return nil, &UnboundError{Event: et.Name()}
	case 1:
		return hs[0], nil
	default:
		return nil, &AmbiguousError{Event: et.Name(), N: len(hs)}
	}
}

// frame bundles the Context and invocation of one synchronous handler
// execution. Frames are pooled so the sealed Trigger fast path performs
// no allocations; reuse is safe because a Context is documented to be
// invalid once its invocation returns, and runHandler waits for every
// thread the handler forked before recycling the frame.
type frame struct {
	ctx Context
	inv invocation
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// callSync executes one handler call synchronously in the current thread.
func (s *Stack) callSync(comp *Computation, caller *invocation, et *EventType, h *Handler, msg Message) error {
	callerH := caller.handler
	if err := comp.ctxErr(h); err != nil {
		comp.record(err)
		return err
	}
	if err := s.ctrl.Request(comp.token, callerH, h); err != nil {
		comp.record(err)
		return err
	}
	if err := s.yieldSafe(comp, YieldEnter); err != nil {
		return err
	}
	if err := s.ctrl.Enter(comp.ctx, comp.token, callerH, h); err != nil {
		comp.record(err)
		return err
	}
	return s.runHandler(comp, et, h, msg)
}

// callAsync validates the call in the current thread (so spec violations
// surface where the trigger was issued, per paper §4) and executes the
// handler in a new computation thread.
func (s *Stack) callAsync(comp *Computation, caller *invocation, et *EventType, h *Handler, msg Message) error {
	callerH := caller.handler
	if err := comp.ctxErr(h); err != nil {
		comp.record(err)
		return err
	}
	if err := s.ctrl.Request(comp.token, callerH, h); err != nil {
		comp.record(err)
		return err
	}
	comp.wg.Add(1)
	if hk := s.hook; hk != nil {
		task := hk.TaskSpawn(comp)
		go func() {
			defer comp.wg.Done()
			defer hk.TaskEnd(task)
			hk.TaskBegin(task)
			if err := s.ctrl.Enter(comp.ctx, comp.token, callerH, h); err != nil {
				comp.record(err)
				return
			}
			_ = s.runHandler(comp, et, h, msg)
		}()
		return nil
	}
	go func() {
		defer comp.wg.Done()
		if err := s.ctrl.Enter(comp.ctx, comp.token, callerH, h); err != nil {
			comp.record(err)
			return
		}
		_ = s.runHandler(comp, et, h, msg)
	}()
	return nil
}

// runHandler runs one admitted handler execution: trace start, run the
// body (under recover — a panicking handler aborts only its computation),
// wait for the handler's forks, trace end, release via Exit. Exit runs on
// every path after a successful Enter, panic included, so the controller
// never leaks the admission.
func (s *Stack) runHandler(comp *Computation, et *EventType, h *Handler, msg Message) error {
	f := framePool.Get().(*frame)
	f.inv.handler = h
	f.ctx.comp = comp
	f.ctx.inv = &f.inv
	invID := s.invSeq.Add(1)
	s.tracer.HandlerStart(comp.id, invID, et, h)
	err := s.callHandler(&f.ctx, et, h, msg)
	// Join the handler's forks even after a panic: already-forked threads
	// may still hold the frame, and the controller counts them as part of
	// this handler execution (rule 4 of VCAbound).
	s.waitInv(&f.inv)
	s.tracer.HandlerEnd(comp.id, invID, h)
	s.ctrl.Exit(comp.token, h)
	if yerr := s.yieldSafe(comp, YieldExit); yerr != nil && err == nil {
		err = yerr
	}
	f.inv.handler = nil
	f.ctx = Context{}
	framePool.Put(f)
	if err != nil {
		comp.record(err)
	}
	return err
}

// callHandler runs the handler body under recover, converting a panic
// into a *PanicError carrying the handler/event/stack identity and the
// goroutine stack at the panic.
func (s *Stack) callHandler(ctx *Context, et *EventType, h *Handler, msg Message) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{
				Stack:       s.name,
				Handler:     h.String(),
				Event:       et.Name(),
				Computation: ctx.comp.id,
				Value:       v,
				Trace:       debug.Stack(),
			}
		}
	}()
	return h.fn(ctx, msg)
}

// callFork runs a forked thread's body under recover.
func (s *Stack) callFork(comp *Computation, inv *invocation, fn func(ctx *Context) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{
				Stack:       s.name,
				Handler:     "<fork>",
				Computation: comp.id,
				Value:       v,
				Trace:       debug.Stack(),
			}
		}
	}()
	return fn(&Context{comp: comp, inv: inv})
}
