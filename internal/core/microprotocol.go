package core

import (
	"fmt"
	"sync/atomic"
)

var mpSeq atomic.Uint64

// Microprotocol is a named group of handlers sharing local state (paper
// §2). The framework does not hold the state itself: user code closes its
// handler functions over a state struct, and the concurrency controller
// guarantees that handler executions of different computations on the same
// microprotocol never interleave in an isolation-violating way, so the
// state needs no locking of its own.
type Microprotocol struct {
	id       uint64
	name     string
	handlers []*Handler
	byName   map[string]*Handler
	stack    *Stack // set by Stack.Register
	snap     Snapshotter
}

// Snapshotter captures and restores a microprotocol's local state. The
// rollback-based controllers (the paper's second algorithm group,
// cc.WaitDie) can only schedule computations over microprotocols that
// provide one: an aborted computation's effects are undone by restoring
// the snapshots taken when it first touched each microprotocol.
type Snapshotter interface {
	// Snapshot returns a deep copy of the current state.
	Snapshot() any
	// Restore replaces the state with a previously returned snapshot.
	Restore(snapshot any)
}

// SetSnapshotter attaches the microprotocol's state snapshotting, opting
// it into rollback-based scheduling. It panics after the stack sealed.
func (p *Microprotocol) SetSnapshotter(s Snapshotter) {
	if st := p.stack; st != nil && st.isSealed() {
		panic(fmt.Sprintf("samoa: SetSnapshotter on %s after its stack sealed (epoch %d is live; attach it to a replacement microprotocol via Reconfigure)",
			p.name, st.CurrentEpoch()))
	}
	p.snap = s
}

// Snapshotter returns the attached snapshotter, or nil.
func (p *Microprotocol) Snapshotter() Snapshotter { return p.snap }

// NewMicroprotocol creates a microprotocol with no handlers.
func NewMicroprotocol(name string) *Microprotocol {
	return &Microprotocol{
		id:     mpSeq.Add(1),
		name:   name,
		byName: make(map[string]*Handler),
	}
}

// Name reports the microprotocol's name.
func (p *Microprotocol) Name() string { return p.name }

// ID reports a process-unique identifier, usable as a stable sort key.
func (p *Microprotocol) ID() uint64 { return p.id }

// String implements fmt.Stringer.
func (p *Microprotocol) String() string { return p.name }

// HandlerFunc is the body of a handler. It runs inside a computation; ctx
// issues further events and forks computation threads. A non-nil error is
// recorded on the computation and returned from Stack.Isolated.
type HandlerFunc func(ctx *Context, msg Message) error

// Handler is a code block of a microprotocol, triggered by events of the
// types it is bound to.
type Handler struct {
	mp       *Microprotocol
	name     string
	fn       HandlerFunc
	readOnly bool
}

// HandlerOption configures a handler at creation.
type HandlerOption func(*Handler)

// ReadOnly declares that the handler does not modify its microprotocol's
// state. Read/write-aware controllers (the paper's §7 isolation-level
// extension, implemented by cc.VCARW) let read-only computations share a
// microprotocol; all other controllers ignore the annotation.
func ReadOnly() HandlerOption {
	return func(h *Handler) { h.readOnly = true }
}

// AddHandler registers a new handler on the microprotocol. It panics on a
// duplicate name or if the microprotocol's stack is already sealed; both
// are construction-time programming errors.
func (p *Microprotocol) AddHandler(name string, fn HandlerFunc, opts ...HandlerOption) *Handler {
	if fn == nil {
		panic(fmt.Sprintf("samoa: nil handler func %s.%s", p.name, name))
	}
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("samoa: duplicate handler %s.%s", p.name, name))
	}
	if s := p.stack; s != nil && s.isSealed() {
		panic(fmt.Sprintf("samoa: AddHandler %s.%s after its stack sealed (epoch %d is live; build a replacement microprotocol and install it via Reconfigure)",
			p.name, name, s.CurrentEpoch()))
	}
	h := &Handler{mp: p, name: name, fn: fn}
	for _, o := range opts {
		o(h)
	}
	p.byName[name] = h
	p.handlers = append(p.handlers, h)
	return h
}

// Handler returns the handler with the given name, or nil.
func (p *Microprotocol) Handler(name string) *Handler { return p.byName[name] }

// Handlers returns the microprotocol's handlers in registration order.
// The returned slice must not be modified.
func (p *Microprotocol) Handlers() []*Handler { return p.handlers }

// Name reports the handler's name.
func (h *Handler) Name() string { return h.name }

// MP reports the microprotocol the handler belongs to.
func (h *Handler) MP() *Microprotocol { return h.mp }

// IsReadOnly reports whether the handler was declared with ReadOnly.
func (h *Handler) IsReadOnly() bool { return h.readOnly }

// String implements fmt.Stringer as "microprotocol.handler".
func (h *Handler) String() string { return h.mp.name + "." + h.name }
