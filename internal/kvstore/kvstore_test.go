package kvstore_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gc"
	"repro/internal/kvstore"
	"repro/internal/simnet"
)

// replicas builds and starts n replicas on one simnet.
func replicas(t *testing.T, n int, netCfg simnet.Config) []*kvstore.Store {
	t.Helper()
	netCfg.Nodes = n
	net := simnet.New(netCfg)
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	view := gc.NewView(ids...)
	stores := make([]*kvstore.Store, n)
	for i := 0; i < n; i++ {
		stores[i] = kvstore.New(kvstore.Config{
			Net: net, ID: simnet.NodeID(i), InitialView: view,
			Site: gc.Config{FDInterval: -1, RTO: 20 * time.Millisecond},
		})
		stores[i].Start()
	}
	t.Cleanup(func() {
		for i, s := range stores {
			s.Stop()
			for _, err := range s.Errs() {
				t.Errorf("replica %d: %v", i, err)
			}
		}
		net.Close()
	})
	return stores
}

// waitConverged waits until every replica applied `want` operations.
func waitConverged(t *testing.T, stores []*kvstore.Store, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, s := range stores {
			if s.Applied() < want {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			for i, s := range stores {
				t.Logf("replica %d applied %d", i, s.Applied())
			}
			t.Fatalf("timeout waiting for %d applies", want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadYourWrites(t *testing.T) {
	stores := replicas(t, 1, simnet.Config{Seed: 1})
	if err := stores[0].Put("k", "v1"); err != nil {
		t.Fatal(err)
	}
	// Put returns only after the local apply: the read must see it.
	if v, ok := stores[0].Get("k"); !ok || v != "v1" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	if err := stores[0].Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := stores[0].Get("k"); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestReplicasConverge(t *testing.T) {
	stores := replicas(t, 3, simnet.Config{
		Seed: 2, MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
	})
	var wg sync.WaitGroup
	const perReplica = 6
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *kvstore.Store) {
			defer wg.Done()
			for k := 0; k < perReplica; k++ {
				if err := s.Put(fmt.Sprintf("key%d", k), fmt.Sprintf("from-%d", i)); err != nil {
					t.Error(err)
				}
			}
		}(i, s)
	}
	wg.Wait()
	waitConverged(t, stores, uint64(3*perReplica))
	ref := stores[0].SnapshotMap()
	if len(ref) != perReplica {
		t.Fatalf("keys = %d, want %d", len(ref), perReplica)
	}
	for i := 1; i < 3; i++ {
		if got := stores[i].SnapshotMap(); !reflect.DeepEqual(got, ref) {
			t.Fatalf("replica %d diverged:\n%v\nvs\n%v", i, got, ref)
		}
	}
}

// TestCASExactlyOneWinner: concurrent CAS on one key from every replica —
// the total order guarantees exactly one succeeds, and all replicas agree
// on the final value.
func TestCASExactlyOneWinner(t *testing.T) {
	stores := replicas(t, 3, simnet.Config{
		Seed: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
	})
	if err := stores[0].Put("lock", "free"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, stores, 1)

	wins := make([]bool, 3)
	var wg sync.WaitGroup
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *kvstore.Store) {
			defer wg.Done()
			ok, err := s.CAS("lock", "free", fmt.Sprintf("owner-%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			wins[i] = ok
		}(i, s)
	}
	wg.Wait()
	waitConverged(t, stores, 4)

	winners := 0
	winner := -1
	for i, w := range wins {
		if w {
			winners++
			winner = i
		}
	}
	if winners != 1 {
		t.Fatalf("CAS winners = %d (%v), want exactly 1", winners, wins)
	}
	want := fmt.Sprintf("owner-%d", winner)
	for i, s := range stores {
		if v, _ := s.Get("lock"); v != want {
			t.Fatalf("replica %d: lock = %q, want %q", i, v, want)
		}
	}
}

func TestCASFailsOnWrongOld(t *testing.T) {
	stores := replicas(t, 1, simnet.Config{Seed: 4})
	if err := stores[0].Put("k", "a"); err != nil {
		t.Fatal(err)
	}
	ok, err := stores[0].CAS("k", "not-a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("CAS with stale old value succeeded")
	}
	if v, _ := stores[0].Get("k"); v != "a" {
		t.Fatalf("k = %q", v)
	}
	// CAS on a missing key fails too.
	if ok, _ := stores[0].CAS("missing", "", "x"); ok {
		t.Fatal("CAS on missing key succeeded")
	}
}

func TestSurvivesReplicaCrash(t *testing.T) {
	netCfg := simnet.Config{Seed: 5, MinDelay: 50 * time.Microsecond, MaxDelay: 300 * time.Microsecond}
	netCfg.Nodes = 3
	net := simnet.New(netCfg)
	view := gc.NewView(0, 1, 2)
	stores := make([]*kvstore.Store, 3)
	for i := 0; i < 3; i++ {
		stores[i] = kvstore.New(kvstore.Config{
			Net: net, ID: simnet.NodeID(i), InitialView: view,
			Site: gc.Config{FDInterval: 10 * time.Millisecond, SuspectAfter: 60 * time.Millisecond,
				RTO: 20 * time.Millisecond},
		})
		stores[i].Start()
	}
	defer func() {
		for _, s := range stores {
			s.Stop()
		}
		net.Close()
	}()

	if err := stores[0].Put("k", "before"); err != nil {
		t.Fatal(err)
	}
	net.Crash(2) // a quorum of 2 remains
	if err := stores[1].Put("k", "after"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v0, _ := stores[0].Get("k")
		v1, _ := stores[1].Get("k")
		if v0 == "after" && v1 == "after" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors did not converge: %q %q", v0, v1)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConvergenceProperty: random operation mixes from all replicas end
// with identical maps everywhere.
func TestConvergenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stores := replicas(t, 3, simnet.Config{
			Seed: seed, MinDelay: 20 * time.Microsecond, MaxDelay: 300 * time.Microsecond,
		})
		keys := []string{"a", "b", "c"}
		total := uint64(0)
		var wg sync.WaitGroup
		for i, s := range stores {
			n := 2 + rng.Intn(5)
			total += uint64(n)
			ops := make([]int, n)
			for j := range ops {
				ops[j] = rng.Intn(3)
			}
			wg.Add(1)
			go func(i int, s *kvstore.Store, ops []int) {
				defer wg.Done()
				for j, op := range ops {
					key := keys[(i+j)%len(keys)]
					var err error
					switch op {
					case 0:
						err = s.Put(key, fmt.Sprintf("v%d-%d", i, j))
					case 1:
						err = s.Delete(key)
					default:
						_, err = s.CAS(key, "x", "y")
					}
					if err != nil {
						t.Error(err)
					}
				}
			}(i, s, ops)
		}
		wg.Wait()
		waitConverged(t, stores, total)
		ref := stores[0].SnapshotMap()
		for i := 1; i < 3; i++ {
			if !reflect.DeepEqual(stores[i].SnapshotMap(), ref) {
				t.Errorf("seed %d: replica %d diverged", seed, i)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
