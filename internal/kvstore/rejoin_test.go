package kvstore_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/kvstore"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/faultnet"
)

// newReplica builds and starts one replica on an arbitrary transport.
func newReplica(net transport.Transport, id transport.NodeID, view *gc.View, mutate func(*gc.Config)) *kvstore.Store {
	sc := gc.Config{FDInterval: 10 * time.Millisecond, SuspectAfter: 60 * time.Millisecond, RTO: 20 * time.Millisecond}
	if mutate != nil {
		mutate(&sc)
	}
	s := kvstore.New(kvstore.Config{Net: net, ID: id, InitialView: view, Site: sc})
	s.Start()
	return s
}

func waitStore(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashRejoinStateTransfer is the crash-recovery round trip: a
// replica's node crashes and its process dies; the survivors remove it,
// keep writing, and a *fresh* replica object (same NodeID, new
// incarnation) rejoins and serves keys written both before the crash and
// while it was down — state it can only have received via snapshot
// transfer, since its map starts empty.
func TestCrashRejoinStateTransfer(t *testing.T) {
	net := simnet.New(simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 400 * time.Microsecond, Seed: 7})
	defer net.Close()
	view := gc.NewView(0, 1, 2)
	stores := make([]*kvstore.Store, 3)
	for i := range stores {
		stores[i] = newReplica(net, transport.NodeID(i), view, nil)
	}
	defer func() {
		for i, s := range stores {
			if s == nil {
				continue
			}
			s.Stop()
			if i != 2 { // replica 2's first incarnation died mid-flight
				for _, err := range s.Errs() {
					t.Errorf("replica %d: %v", i, err)
				}
			}
		}
	}()

	if err := stores[0].Put("pre-crash", "v1"); err != nil {
		t.Fatal(err)
	}
	waitStore(t, "pre-crash write everywhere", func() bool {
		for _, s := range stores {
			if _, ok := s.Get("pre-crash"); !ok {
				return false
			}
		}
		return true
	})

	// Crash replica 2: node down, process gone.
	net.Crash(2)
	stores[2].Stop()
	stores[2] = nil
	if err := stores[0].Site().Leave(2); err != nil {
		t.Fatal(err)
	}
	waitStore(t, "survivors to remove 2", func() bool {
		return !stores[0].Site().View().Contains(2) && !stores[1].Site().View().Contains(2)
	})

	// Writes while 2 is down: only the snapshot can carry these to it.
	if err := stores[1].Put("while-down", "v2"); err != nil {
		t.Fatal(err)
	}

	// Fresh incarnation rejoins: new store object, empty map, same ID.
	net.Restart(2)
	stores[2] = newReplica(net, 2, gc.NewView(0, 1, 2), nil)
	if err := stores[0].Site().Join(2); err != nil {
		t.Fatal(err)
	}
	waitStore(t, "survivors to re-admit 2", func() bool {
		return stores[0].Site().View().Contains(2) && stores[1].Site().View().Contains(2)
	})
	waitStore(t, "rejoined replica to serve pre-crash state", func() bool {
		_, ok1 := stores[2].Get("pre-crash")
		_, ok2 := stores[2].Get("while-down")
		return ok1 && ok2
	})

	// Post-rejoin writes replicate to the rejoined member too.
	if err := stores[0].Put("post-rejoin", "v3"); err != nil {
		t.Fatal(err)
	}
	waitStore(t, "maps to converge", func() bool {
		ref := stores[0].SnapshotMap()
		return len(ref) == 3 &&
			reflect.DeepEqual(ref, stores[1].SnapshotMap()) &&
			reflect.DeepEqual(ref, stores[2].SnapshotMap())
	})
}

// TestChurnUnderMessageLoss runs join/leave storms over a lossy faultnet
// (20% drop each way): every round crashes and rejoins a replica while
// writes continue; all replicas must converge on the same view and the
// same map at the end.
func TestChurnUnderMessageLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("churn storm")
	}
	inner := simnet.New(simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond, Seed: 19})
	fn := faultnet.New(faultnet.Config{Inner: inner, Seed: 19, Rates: faultnet.Rates{Drop: 0.2}})
	defer fn.Close()
	view := gc.NewView(0, 1, 2)
	stores := make([]*kvstore.Store, 3)
	for i := range stores {
		stores[i] = newReplica(fn, transport.NodeID(i), view, nil)
	}
	defer func() {
		for _, s := range stores {
			if s != nil {
				s.Stop()
			}
		}
	}()

	const rounds = 3
	for round := 0; round < rounds; round++ {
		key := fmt.Sprintf("round-%d", round)
		if err := stores[0].Put(key, "written"); err != nil {
			t.Fatalf("round %d put: %v", round, err)
		}

		// Crash replica 2, remove it, write while it is gone.
		fn.Crash(2)
		stores[2].Stop()
		stores[2] = nil
		if err := stores[0].Site().Leave(2); err != nil {
			t.Fatalf("round %d leave: %v", round, err)
		}
		waitStore(t, fmt.Sprintf("round %d: survivors drop 2", round), func() bool {
			return !stores[0].Site().View().Contains(2) && !stores[1].Site().View().Contains(2)
		})
		if err := stores[1].Put(key+"-down", "missed"); err != nil {
			t.Fatalf("round %d put while down: %v", round, err)
		}

		// Fresh incarnation rejoins through the same lossy links.
		fn.Restart(2)
		stores[2] = newReplica(fn, 2, gc.NewView(0, 1, 2), nil)
		if err := stores[0].Site().Join(2); err != nil {
			t.Fatalf("round %d join: %v", round, err)
		}
		waitStore(t, fmt.Sprintf("round %d: re-admission", round), func() bool {
			return stores[0].Site().View().Contains(2) && stores[1].Site().View().Contains(2)
		})
		waitStore(t, fmt.Sprintf("round %d: state transfer", round), func() bool {
			_, ok := stores[2].Get(key + "-down")
			return ok
		})
	}

	// Final convergence: same view and same map everywhere.
	want := "{0,1,2}"
	waitStore(t, "final views", func() bool {
		for _, s := range stores {
			if s.Site().View().String() != want {
				return false
			}
		}
		return true
	})
	waitStore(t, "final maps", func() bool {
		ref := stores[0].SnapshotMap()
		return len(ref) == 2*rounds &&
			reflect.DeepEqual(ref, stores[1].SnapshotMap()) &&
			reflect.DeepEqual(ref, stores[2].SnapshotMap())
	})
	for i, s := range stores {
		if i == 2 {
			continue // replica 2's incarnations crash mid-flight by design
		}
		for _, err := range s.Errs() {
			t.Errorf("replica %d: %v", i, err)
		}
	}
}
