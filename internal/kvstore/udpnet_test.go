package kvstore_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/kvstore"
	"repro/internal/transport"
	"repro/internal/transport/udpnet"
)

// requireLoopbackUDP skips socket tests in environments without a
// usable loopback UDP stack (some sandboxes forbid it).
func requireLoopbackUDP(t *testing.T) {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	c.Close()
}

// udpCluster is the real-socket kvstore fixture: n replicas, each on its
// own udpnet transport bound to a kernel-assigned loopback port — the
// n-process deployment shape, in-process so the test can crash and
// restart transports deterministically.
type udpCluster struct {
	nets   []*udpnet.Net
	stores []*kvstore.Store
}

func newUDPCluster(t *testing.T, n int) *udpCluster {
	t.Helper()
	nets, err := udpnet.NewCluster(n)
	if err != nil {
		t.Fatalf("udpnet.NewCluster: %v", err)
	}
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	view := gc.NewView(ids...)
	c := &udpCluster{nets: nets}
	for i := 0; i < n; i++ {
		// The failure detector stays on: consensus instances whose
		// rotating coordinator is a crashed node advance past it only on
		// suspicion, and the crash/restart test needs exactly that.
		s := kvstore.New(kvstore.Config{
			Net: nets[i], ID: transport.NodeID(i), InitialView: view,
			OpTimeout: 30 * time.Second,
			Site:      gc.Config{FDInterval: 10 * time.Millisecond, RTO: 15 * time.Millisecond},
		})
		s.Start()
		c.stores = append(c.stores, s)
	}
	t.Cleanup(func() { c.stopAndCheck(t) })
	return c
}

// stopAndCheck is the leak check (mirroring internal/chaos's drain-
// balance verification): Site.Stop closes the stack, which verifies
// begun == ended computation lifecycle — any wedged or leaked
// computation surfaces as a *core.LifecycleError in Errs.
func (c *udpCluster) stopAndCheck(t *testing.T) {
	for i, s := range c.stores {
		s.Stop()
		for _, err := range s.Errs() {
			t.Errorf("replica %d: %v", i, err)
		}
	}
	for _, n := range c.nets {
		n.Close()
	}
}

// waitConverged polls until every replica reports value for key.
func (c *udpCluster) waitConverged(t *testing.T, d time.Duration, key, want string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		all := true
		for _, s := range c.stores {
			if got, _ := s.Get(key); got != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			for i, s := range c.stores {
				got, _ := s.Get(key)
				t.Logf("replica %d: %s=%q", i, key, got)
			}
			t.Fatalf("replicas did not converge on %s=%q within %v", key, want, d)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUDPClusterConvergence drives concurrent writers through a 3-node
// kvstore over real loopback sockets: every replica applies the same
// total order, so they converge; CAS races resolve identically
// everywhere.
func TestUDPClusterConvergence(t *testing.T) {
	requireLoopbackUDP(t)
	c := newUDPCluster(t, 3)

	const perReplica = 20
	var wg sync.WaitGroup
	errs := make([]error, len(c.stores))
	for i, s := range c.stores {
		wg.Add(1)
		go func(i int, s *kvstore.Store) {
			defer wg.Done()
			for k := 0; k < perReplica; k++ {
				if err := s.Put(fmt.Sprintf("r%d-k%d", i, k), fmt.Sprint(k)); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d writer: %v", i, err)
		}
	}
	if err := c.stores[0].Put("done", "yes"); err != nil {
		t.Fatal(err)
	}
	c.waitConverged(t, 30*time.Second, "done", "yes")

	want := c.stores[0].SnapshotMap()
	if len(want) != 3*perReplica+1 {
		t.Fatalf("replica 0 holds %d keys; want %d", len(want), 3*perReplica+1)
	}
	deadline := time.Now().Add(30 * time.Second)
	for i := 1; i < len(c.stores); i++ {
		for {
			got := c.stores[i].SnapshotMap()
			if len(got) == len(want) {
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("replica %d diverged at %q: %q vs %q", i, k, got[k], v)
					}
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d holds %d keys; want %d", i, len(got), len(want))
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestUDPClusterCrashRestartRecovers is the crash/restart integration
// test over real sockets, mirroring simnet.Restart semantics: the
// crashed node's socket closes (in-flight datagrams to it are lost,
// exactly as a rebooting process loses its kernel buffers), the
// restarted incarnation starts with an empty inbox on the same address,
// and RelComm's ARQ retransmission refills what the outage lost until
// every replica converges. The majority keeps deciding during the
// outage, so writes from live replicas complete throughout.
//
// Wedge/leak checks follow internal/chaos's discipline: the wedge probe
// is a full-footprint operation (a replicated Put) on every survivor —
// and, after restart, on the revived node — that must complete within a
// deadline; the leak check is the drain-balance verification Site.Stop
// performs on every stack at cleanup (stopAndCheck).
func TestUDPClusterCrashRestartRecovers(t *testing.T) {
	requireLoopbackUDP(t)
	c := newUDPCluster(t, 3)

	if err := c.stores[0].Put("before", "outage"); err != nil {
		t.Fatal(err)
	}
	c.waitConverged(t, 30*time.Second, "before", "outage")

	// Take node 2's transport down. Its site keeps running — only the
	// network blinks, as when a NIC or switch port dies.
	c.nets[2].Crash(2)
	if !c.nets[2].Crashed(2) {
		t.Fatal("node 2 not crashed")
	}

	// The live majority still decides: writes from replicas 0 and 1
	// complete during the outage (wedge probe on the survivors).
	for i := 0; i < 2; i++ {
		if err := c.stores[i].Put(fmt.Sprintf("during-%d", i), "kept"); err != nil {
			t.Fatalf("replica %d wedged during outage: %v", i, err)
		}
	}
	if got, _ := c.stores[2].Get("during-0"); got == "kept" {
		t.Fatal("crashed node applied an operation broadcast during its outage")
	}

	if !c.nets[2].Restart(2) {
		t.Fatal("Restart refused")
	}
	// ARQ recovery: RelComm retransmits everything node 2 missed — the
	// in-flight datagrams lost to the outage — until it catches up.
	deadline := time.Now().Add(30 * time.Second)
	for {
		a, _ := c.stores[2].Get("during-0")
		b, _ := c.stores[2].Get("during-1")
		if a == "kept" && b == "kept" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never caught up: during-0=%q during-1=%q", a, b)
		}
		time.Sleep(time.Millisecond)
	}

	// Wedge probe on the revived node: a full replicated write from the
	// restarted replica itself must complete.
	if err := c.stores[2].Put("after", "restart"); err != nil {
		t.Fatalf("revived replica wedged: %v", err)
	}
	c.waitConverged(t, 30*time.Second, "after", "restart")
}
