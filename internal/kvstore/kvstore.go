// Package kvstore is a replicated key-value store built on the
// group-communication stack — state-machine replication, the canonical
// downstream use of total-order broadcast and the kind of application the
// paper's middleware exists to carry.
//
// Every write (Put, Delete, CAS) is atomically broadcast; every replica
// applies the decided operation sequence to its map in the same order, so
// replicas converge. A writer blocks until its own operation has been
// applied locally, which — because the apply order is total — gives
// read-your-writes on the writing replica and makes conditional writes
// (CAS) race-safe across replicas: of two concurrent CAS operations on
// one key, exactly one wins everywhere.
//
// Reads are served from the local replica (sequentially consistent per
// replica, not linearizable across replicas — the standard SMR trade-off
// unless reads are broadcast too).
package kvstore

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/gc"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Op kinds on the wire.
const (
	opPut uint8 = 1
	opDel uint8 = 2
	opCAS uint8 = 3
)

// Config describes one replica.
type Config struct {
	// Net, ID, InitialView place the replica in the group (see gc.Config).
	Net         transport.Transport
	ID          transport.NodeID
	InitialView *gc.View
	// OpTimeout bounds how long a write waits for its own apply
	// (default 10s); it fires when the group has lost its quorum.
	OpTimeout time.Duration
	// Site lets tests override gc knobs; all fields except Deliver are
	// honoured (the store owns delivery).
	Site gc.Config
}

// Store is one replica of the replicated map.
type Store struct {
	site    *gc.Site
	self    transport.NodeID
	timeout time.Duration

	mu      sync.RWMutex
	data    map[string]string
	applied uint64 // operations applied, for introspection

	wmu     sync.Mutex
	nextOp  uint64
	waiters map[uint64]chan bool // op seq → apply result
}

// New builds (but does not start) a replica.
func New(cfg Config) *Store {
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	s := &Store{
		self:    cfg.ID,
		timeout: cfg.OpTimeout,
		data:    make(map[string]string),
		waiters: make(map[uint64]chan bool),
	}
	sc := cfg.Site
	sc.Net = cfg.Net
	sc.ID = cfg.ID
	sc.InitialView = cfg.InitialView
	sc.Deliver = s.apply
	sc.Snapshot = s.snapshotState
	sc.InstallSnapshot = s.installSnapshot
	s.site = gc.NewSite(sc)
	return s
}

// snapshotState serialises the replicated map for state transfer to a
// joining replica. It runs inside a delivery computation, so the map is
// exactly the post-apply state at one total-order point.
func (s *Store) snapshotState() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w := wire.NewWriter(16 + 32*len(s.data))
	w.U64(s.applied)
	w.UVarint(uint64(len(s.data)))
	for k, v := range s.data {
		w.String(k)
		w.String(v)
	}
	return append([]byte(nil), w.Bytes()...)
}

// installSnapshot replaces local state with a snapshot received during
// join. Deliveries after the snapshot point re-apply on top of it.
func (s *Store) installSnapshot(snap []byte) {
	r := wire.NewReader(snap)
	applied := r.U64()
	n := r.UVarint()
	if n > uint64(len(snap)) { // length-prefixed pairs can't outnumber bytes
		return
	}
	data := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := r.String()
		v := r.String()
		if r.Err() != nil {
			return
		}
		data[k] = v
	}
	if r.Err() != nil {
		return
	}
	s.mu.Lock()
	s.data = data
	s.applied = applied
	s.mu.Unlock()
}

// Start launches the replica.
func (s *Store) Start() { s.site.Start() }

// Stop shuts the replica down.
func (s *Store) Stop() { s.site.Stop() }

// Errs surfaces computation errors from the underlying site.
func (s *Store) Errs() []error { return s.site.Errs() }

// Site exposes the underlying group-communication site (for membership
// operations in tests and examples).
func (s *Store) Site() *gc.Site { return s.site }

// encodeOp builds the broadcast payload for an operation.
func encodeOp(kind uint8, origin transport.NodeID, seq uint64, key, val, old string) []byte {
	w := wire.NewWriter(32 + len(key) + len(val) + len(old))
	w.U8(kind)
	w.U16(uint16(origin))
	w.U64(seq)
	w.String(key)
	w.String(val)
	w.String(old)
	return append([]byte(nil), w.Bytes()...)
}

// apply is the replicated state machine: it runs inside the delivery
// computation, in the same total order on every replica.
func (s *Store) apply(_ transport.NodeID, payload []byte) {
	r := wire.NewReader(payload)
	kind := r.U8()
	origin := transport.NodeID(r.U16())
	seq := r.U64()
	key := r.String()
	val := r.String()
	old := r.String()
	if r.Err() != nil {
		return // not one of ours; ignore
	}
	ok := true
	s.mu.Lock()
	switch kind {
	case opPut:
		s.data[key] = val
	case opDel:
		delete(s.data, key)
	case opCAS:
		if cur, exists := s.data[key]; exists && cur == old {
			s.data[key] = val
		} else {
			ok = false
		}
	default:
		s.mu.Unlock()
		return
	}
	s.applied++
	s.mu.Unlock()

	if origin == s.self {
		s.wmu.Lock()
		ch := s.waiters[seq]
		delete(s.waiters, seq)
		s.wmu.Unlock()
		if ch != nil {
			ch <- ok
		}
	}
}

// submit broadcasts an operation and waits for its local apply.
func (s *Store) submit(kind uint8, key, val, old string) (bool, error) {
	s.wmu.Lock()
	s.nextOp++
	seq := s.nextOp
	ch := make(chan bool, 1)
	s.waiters[seq] = ch
	s.wmu.Unlock()

	if err := s.site.ABcast(encodeOp(kind, s.self, seq, key, val, old)); err != nil {
		s.wmu.Lock()
		delete(s.waiters, seq)
		s.wmu.Unlock()
		return false, err
	}
	select {
	case ok := <-ch:
		return ok, nil
	case <-time.After(s.timeout):
		s.wmu.Lock()
		delete(s.waiters, seq)
		s.wmu.Unlock()
		return false, fmt.Errorf("kvstore: operation on %q timed out (group lost quorum?)", key)
	}
}

// Put replicates key=val; it returns once applied on this replica.
func (s *Store) Put(key, val string) error {
	_, err := s.submit(opPut, key, val, "")
	return err
}

// Delete replicates removal of key.
func (s *Store) Delete(key string) error {
	_, err := s.submit(opDel, key, "", "")
	return err
}

// CAS replicates a compare-and-swap: key moves from old to new only if it
// currently equals old — decided in the total order, so concurrent CAS
// operations on one key resolve identically on every replica.
func (s *Store) CAS(key, old, new string) (bool, error) {
	return s.submit(opCAS, key, new, old)
}

// Get reads the local replica.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Len reports the local key count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Applied reports the number of operations applied locally.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// SnapshotMap copies the local state (for convergence checks).
func (s *Store) SnapshotMap() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}
