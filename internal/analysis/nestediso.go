package analysis

import (
	"go/ast"
)

// NestedIsoAnalyzer checks for the documented deadlock at
// core.Stack.IsolatedAsync's comment: a computation must never spawn
// another one synchronously. A Stack.Isolated / External / ExternalAll
// call reachable from a handler body, a Fork closure or an isolated
// root blocks the parent computation on a child that may need
// microprotocols the parent holds — under cc.Serial (and whenever the
// specs overlap) that is a guaranteed deadlock. The fix is always
// IsolatedAsync: caused computations start as new external events.
var NestedIsoAnalyzer = &Analyzer{
	Name: "nestediso",
	Doc:  "computations must not spawn other computations synchronously",
	Run:  runNestedIso,
}

func runNestedIso(pass *Pass) {
	m := pass.Model
	visited := map[ast.Node]bool{}
	for _, cc := range m.ComputationContexts() {
		label := cc.Label
		m.WalkReachable(cc.Fn, visited, func(n ast.Node, _ *FuncNode) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			recv, name, isCore := coreFunc(m.calleeFunc(call))
			if !isCore || recv != "Stack" {
				return
			}
			switch name {
			case "Isolated", "External", "ExternalAll":
				pass.Reportf(call.Pos(),
					"synchronous Stack.%s inside %s deadlocks once the specs overlap (the parent computation holds what the child waits for) — use IsolatedAsync",
					name, label)
			}
		})
	}
}
