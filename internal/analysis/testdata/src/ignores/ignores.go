// Package ignores is golden testdata for the ignores check: the audit
// of //samoa:ignore directives themselves. Live, rationale'd
// suppressions pass; bare directives, typo'd check names and stale
// suppressions are each flagged exactly once, at the directive.
package ignores

import (
	"time"

	"repro/internal/core"
)

func build() {
	mp := core.NewMicroprotocol("I")

	// The healthy forms: a rationale after the em-dash and a finding
	// still alive in the covered window (own line or the line below).
	mp.AddHandler("ok", func(ctx *core.Context, msg core.Message) error {
		//samoa:ignore blocking — simulated latency: this fixture wants a live suppression
		time.Sleep(time.Millisecond)
		return nil
	})
	mp.AddHandler("inline", func(ctx *core.Context, msg core.Message) error {
		time.Sleep(time.Millisecond) //samoa:ignore blocking -- end-of-line form with the ASCII separator
		return nil
	})
	mp.AddHandler("everything", func(ctx *core.Context, msg core.Message) error {
		//samoa:ignore — a bare directive suppresses all checks; still needs a rationale and a live finding
		time.Sleep(time.Millisecond)
		return nil
	})

	// A directive with no rationale is rejected before anything else.
	mp.AddHandler("bare", func(ctx *core.Context, msg core.Message) error {
		// want-below `//samoa:ignore directive has no rationale`
		//samoa:ignore blocking
		time.Sleep(time.Millisecond)
		return nil
	})

	// A typo'd check name would silently suppress nothing, forever.
	mp.AddHandler("typo", func(ctx *core.Context, msg core.Message) error {
		// want-below `//samoa:ignore names unknown check "blocknig"`
		//samoa:ignore blocknig — the sleep below is deliberate
		time.Sleep(time.Millisecond)
		return nil
	})

	// The suppressed code is gone; the suppression rotted in place.
	mp.AddHandler("stale", func(ctx *core.Context, msg core.Message) error {
		// want-below `stale //samoa:ignore: blocking no longer reports anything`
		//samoa:ignore blocking — there used to be a sleep here
		return nil
	})

	// One live check does not excuse a dead one in the same directive.
	mp.AddHandler("multi", func(ctx *core.Context, msg core.Message) error {
		// want-below `stale //samoa:ignore: nestediso no longer reports anything`
		//samoa:ignore blocking,nestediso — the sleep is real; the nested Isolated is long gone
		time.Sleep(time.Millisecond)
		return nil
	})

	// A bare directive covering nothing at all.
	mp.AddHandler("deadall", func(ctx *core.Context, msg core.Message) error {
		// want-below `stale //samoa:ignore: no check reports anything at the covered lines`
		//samoa:ignore — this handler is pure
		return nil
	})
}
