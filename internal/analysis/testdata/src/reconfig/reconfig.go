// Package reconfig is golden testdata for the reconfig check:
// Reconfigure edits that break handler continuity across epochs, bind
// into microprotocols they remove, or double-edit one name.
package reconfig

import "repro/internal/core"

type group struct {
	stack *core.Stack
	ev    *core.EventType
}

func build(ctrl core.Controller) *group {
	g := &group{stack: core.NewStack(ctrl), ev: core.NewEventType("ev")}
	app := core.NewMicroprotocol("app")
	hDeliver := app.AddHandler("deliver", func(ctx *core.Context, msg core.Message) error { return nil })
	app.AddHandler("tick", func(ctx *core.Context, msg core.Message) error { return nil })
	aux := core.NewMicroprotocol("aux")
	hAux := aux.AddHandler("audit", func(ctx *core.Context, msg core.Message) error { return nil })
	g.stack.Register(app, aux)
	g.stack.Bind(g.ev, hDeliver, hAux)
	return g
}

// upgrade swaps in a successor that forgot the tick handler: Replace
// rewrites bindings by handler name, so the edit is rejected at runtime.
func (g *group) upgrade() error {
	next := core.NewMicroprotocol("app@v2")
	next.AddHandler("deliver", func(ctx *core.Context, msg core.Message) error { return nil })
	return g.stack.Reconfigure(func(e *core.Epoch) {
		e.Replace("app", next) // want `replacement app@v2 has no handler "tick"`
	})
}

// upgradeComplete carries every predecessor handler: clean.
func (g *group) upgradeComplete() error {
	next := core.NewMicroprotocol("app@v3")
	next.AddHandler("deliver", func(ctx *core.Context, msg core.Message) error { return nil })
	next.AddHandler("tick", func(ctx *core.Context, msg core.Message) error { return nil })
	return g.stack.Reconfigure(func(e *core.Epoch) {
		e.Replace("app", next)
	})
}

// retireAux removes a microprotocol and, in the same edit, binds one of
// its handlers — validation rejects the binding into a missing
// microprotocol.
func (g *group) retireAux(hAux *core.Handler) error {
	return g.stack.Reconfigure(func(e *core.Epoch) {
		e.Remove("aux")
		e.Bind(g.ev, hAux) // no finding: hAux's creation site is not resolvable here
	})
}

// retireAuxInline shows the same misuse with a resolvable handler.
func (g *group) retireAuxInline() error {
	aux2 := core.NewMicroprotocol("aux2")
	h := aux2.AddHandler("audit", func(ctx *core.Context, msg core.Message) error { return nil })
	return g.stack.Reconfigure(func(e *core.Epoch) {
		e.Register(aux2)
		e.Remove("aux2")
		e.Bind(g.ev, h) // want `Bind to handler aux2\.audit, but this edit removes "aux2"`
	})
}

// freshSlot removes a name and re-registers a new identity under it: the
// documented fresh-slot idiom, clean.
func (g *group) freshSlot() error {
	fresh := core.NewMicroprotocol("aux")
	h := fresh.AddHandler("audit", func(ctx *core.Context, msg core.Message) error { return nil })
	return g.stack.Reconfigure(func(e *core.Epoch) {
		e.Remove("aux")
		e.Register(fresh)
		e.Bind(g.ev, h)
	})
}

// doubleEdit targets one name twice in one closure: the second operation
// always fails — the first already took the name out of the epoch.
func (g *group) doubleEdit(next *core.Microprotocol) error {
	return g.stack.Reconfigure(func(e *core.Epoch) {
		e.Remove("app")
		e.Replace("app", next) // want `Replace "app": the edit already took this name out of the epoch`
	})
}

// viaHelper reaches the epoch edit through a helper function: the walk
// descends into statically resolvable callees, and ReconfigureContext's
// edit closure sits behind the context argument.
var nextV4 = core.NewMicroprotocol("app@v4")

func (g *group) viaHelper() error {
	nextV4.AddHandler("deliver", func(ctx *core.Context, msg core.Message) error { return nil })
	return g.stack.ReconfigureContext(nil, func(e *core.Epoch) {
		applySwap(e)
	})
}

func applySwap(e *core.Epoch) {
	e.Replace("app", nextV4) // want `replacement app@v4 has no handler "tick"`
}
