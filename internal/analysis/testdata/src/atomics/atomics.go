// Package atomics is golden testdata for the atomics check: the
// //samoa:guard contract, the mixed atomic/plain access smell, CAS
// retry loops that re-read their target plainly, and annotations that
// name a mutex the struct does not have.
package atomics

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	mu sync.Mutex

	// lv follows the version-table protocol: mutated only under mu,
	// read lock-free anywhere.
	lv atomic.Uint64 //samoa:guard mu — written only under mu; read lock-free

	// applied is written plainly under mu and read via atomic loads —
	// legal only because the guard annotation pins the protocol.
	applied uint64 //samoa:guard mu

	// hits has atomic and plain accesses and no declared protocol: the
	// plain sites are the mixed-access race smell.
	hits uint64

	// word is CAS-published below; its retry loop must re-read it
	// atomically.
	word uint64

	//samoa:guard nosuch
	bad uint64 // want `//samoa:guard names "nosuch", but counters has no sibling sync\.Mutex/RWMutex field of that name`
}

// advance mutates the guarded fields under mu: clean.
func (c *counters) advance(n uint64) {
	c.mu.Lock()
	if n > c.lv.Load() {
		c.lv.Store(n)
		c.applied++
	}
	c.mu.Unlock()
}

// bumpLocked follows the *Locked convention — the caller holds mu, so
// the plain write and atomic mutation are sanctioned.
func (c *counters) bumpLocked() {
	c.applied++
	c.lv.Add(1)
}

// read loads lock-free: atomic reads of guarded fields are the point.
func (c *counters) read() (uint64, uint64) {
	return c.lv.Load(), atomic.LoadUint64(&c.applied)
}

// rogue violates both guard contracts: an atomic mutation and a plain
// write with mu nowhere in sight.
func (c *counters) rogue() {
	c.lv.Store(0) // want `atomic mutation of c\.lv outside its //samoa:guard mu contract`
	c.applied = 0 // want `plain access to c\.applied outside its //samoa:guard mu contract`
	c.bad = 0     // no guard resolved: nothing to enforce
	_ = c.applied // want `plain access to c\.applied outside its //samoa:guard mu contract`
}

// mixed touches hits both ways without an annotation: the plain sites
// are flagged, the atomic ones are not.
func (c *counters) mixed() {
	c.hits++ // want `c\.hits is accessed atomically elsewhere but plainly here`
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) mixedRead() uint64 {
	return c.hits // want `c\.hits is accessed atomically elsewhere but plainly here`
}

// casRetry is the stale-compare bug: the loop CASes word but seeds the
// compare value from a plain read inside the loop.
func (c *counters) casRetry(delta uint64) {
	for {
		old := c.word // want `CAS retry loop re-reads c\.word non-atomically`
		if atomic.CompareAndSwapUint64(&c.word, old, old+delta) {
			return
		}
	}
}

// casClean reads the target atomically inside the loop: clean.
func (c *counters) casClean(delta uint64) {
	for {
		old := atomic.LoadUint64(&c.word)
		if atomic.CompareAndSwapUint64(&c.word, old, old+delta) {
			return
		}
	}
}

// watchdog shows closures are their own guard scope: the goroutine
// takes mu for itself before touching applied.
func (c *counters) watchdog() {
	go func() {
		c.mu.Lock()
		c.applied++
		c.mu.Unlock()
	}()
}

// construct writes fields in a composite literal: construction precedes
// sharing and is exempt.
func construct() *counters {
	return &counters{applied: 1, hits: 2}
}
