// Package lockorder is golden testdata for the lockorder check:
// opposite-order acquisitions, interprocedural edges, the double-lock
// self-deadlock, and the sanctioned patterns (consistent order, early
// release, goroutine isolation, the compiled lockOrder idiom).
package lockorder

import "sync"

// shard's two mutexes are taken in opposite orders by ab and ba: both
// inner acquisitions are flagged, each pointing at the other.
type shard struct {
	a sync.Mutex
	b sync.Mutex
}

func ab(s *shard) {
	s.a.Lock()
	s.b.Lock() // want `acquires s\.b while holding s\.a`
	s.b.Unlock()
	s.a.Unlock()
}

func ba(s *shard) {
	s.b.Lock()
	s.a.Lock() // want `acquires s\.a while holding s\.b`
	s.a.Unlock()
	s.b.Unlock()
}

// double reacquires the same mutex on one path: certain self-deadlock.
func double(s *shard) {
	s.a.Lock()
	s.a.Lock() // want `acquires s\.a twice on the same path`
	s.a.Unlock()
	s.a.Unlock()
}

// table's inversion is interprocedural: flush holds mu across a helper
// that takes statq, while stats nests them the other way.
type table struct {
	mu    sync.Mutex
	statq sync.Mutex
}

func (t *table) flush() {
	t.mu.Lock()
	t.pushLocked()
	t.mu.Unlock()
}

// deferred holds mu to function end (deferred unlock) through the same
// helper — same edge as flush, deduplicated, no extra finding.
func (t *table) deferred() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pushLocked()
}

func (t *table) pushLocked() {
	t.statq.Lock() // want `acquires t\.statq while holding t\.mu`
	t.statq.Unlock()
}

func (t *table) stats() {
	t.statq.Lock()
	t.mu.Lock() // want `acquires t\.mu while holding t\.statq`
	t.mu.Unlock()
	t.statq.Unlock()
}

// pair is the clean case: every path agrees x before y, releases before
// reacquiring in the other order, or hands off to a goroutine that
// starts with nothing held.
type pair struct {
	x sync.Mutex
	y sync.Mutex
}

func (p *pair) both() {
	p.x.Lock()
	p.y.Lock()
	p.y.Unlock()
	p.x.Unlock()
}

func (p *pair) again() {
	p.x.Lock()
	p.y.Lock()
	p.y.Unlock()
	p.x.Unlock()
}

func (p *pair) sequential() {
	p.x.Lock()
	p.x.Unlock()
	p.y.Lock()
	p.y.Unlock()
}

func (p *pair) reverseSequential() {
	p.y.Lock()
	p.y.Unlock()
	p.x.Lock()
	p.x.Unlock()
}

func (p *pair) spawns() {
	p.x.Lock()
	go func() {
		p.y.Lock()
		p.y.Unlock()
	}()
	p.x.Unlock()
}

// rw: read locks order against write locks exactly like exclusive ones —
// an RLock/Lock inversion still deadlocks with a writer in between.
type rw struct {
	m  sync.RWMutex
	mu sync.Mutex
}

func (r *rw) readThenLock() {
	r.m.RLock()
	r.mu.Lock() // want `acquires r\.mu while holding r\.m`
	r.mu.Unlock()
	r.m.RUnlock()
}

func (r *rw) lockThenRead() {
	r.mu.Lock()
	r.m.RLock() // want `acquires r\.m while holding r\.mu`
	r.m.RUnlock()
	r.mu.Unlock()
}

// ordered mirrors internal/cc's compiled-footprint idiom: per-slot
// mutexes acquired in the precomputed lockOrder are ordered by
// construction and never contribute edges — even though the same field
// is "reacquired" every iteration.
type orderedSlot struct {
	spawnMu sync.Mutex
	mu      sync.Mutex
}

type ordered struct {
	states    []*orderedSlot
	lockOrder []int
}

func (o *ordered) claim() {
	for _, p := range o.lockOrder {
		o.states[p].spawnMu.Lock()
	}
	for _, p := range o.lockOrder {
		o.states[p].spawnMu.Unlock()
	}
}
