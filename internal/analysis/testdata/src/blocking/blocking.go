// Package blocking is golden testdata for the blocking check: raw
// scheduling points inside handlers and controllers that the
// deterministic explorer cannot see.
package blocking

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
)

type state struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

func build() {
	mp := core.NewMicroprotocol("B")
	s := &state{ch: make(chan int)}

	mp.AddHandler("sleepy", func(ctx *core.Context, msg core.Message) error {
		time.Sleep(time.Millisecond) // want `time\.Sleep inside handler B\.sleepy`
		return nil
	})

	mp.AddHandler("chatty", func(ctx *core.Context, msg core.Message) error {
		s.ch <- 1   // want `raw channel send inside handler B\.chatty`
		v := <-s.ch // want `raw channel receive inside handler B\.chatty`
		_ = v
		for range s.ch { // want `ranging over a channel inside handler B\.chatty`
		}
		select { // want `select inside handler B\.chatty`
		case <-s.ch: // want `raw channel receive inside handler B\.chatty`
		}
		return nil
	})

	mp.AddHandler("spawner", func(ctx *core.Context, msg core.Message) error {
		go func() {}() // want `bare go statement inside handler B\.spawner`
		return nil
	})

	mp.AddHandler("synced", func(ctx *core.Context, msg core.Message) error {
		s.mu.Lock() // want `sync\.Mutex\.Lock inside handler B\.synced`
		s.mu.Unlock()
		s.wg.Wait() // want `sync\.WaitGroup\.Wait inside handler B\.synced`
		return nil
	})

	// Fork is the sanctioned way to run concurrent work: clean.
	mp.AddHandler("forker", func(ctx *core.Context, msg core.Message) error {
		ctx.Fork(func(ctx *core.Context) error { return nil })
		return nil
	})
}

// delay is ordinary code outside any computation context: not flagged.
func delay() { time.Sleep(time.Millisecond) }

// slowCtrl implements core.Controller with blocking that bypasses the
// sched.Blocker seam. Its bookkeeping mutex is exempt; its channel wait
// and sleep are not.
type slowCtrl struct {
	mu   sync.Mutex
	cond chan struct{}
}

func (c *slowCtrl) Name() string { return "slow" }

func (c *slowCtrl) Spawn(ctx context.Context, spec *core.Spec) (core.Token, error) { return nil, nil }

func (c *slowCtrl) Request(t core.Token, caller, h *core.Handler) error { return nil }

func (c *slowCtrl) Enter(ctx context.Context, t core.Token, caller, h *core.Handler) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	<-c.cond // want `raw channel receive inside controller slowCtrl\.Enter`
	return nil
}

func (c *slowCtrl) Exit(t core.Token, h *core.Handler) {}

func (c *slowCtrl) RootReturned(t core.Token) {}

func (c *slowCtrl) Complete(t core.Token) {
	time.Sleep(time.Millisecond) // want `time\.Sleep inside controller slowCtrl\.Complete`
}

// shardedCtrl models the per-slot admission pattern of DESIGN.md §11: a
// mutex per microprotocol slot, acquired in canonical order on the
// spawn slow path (here via a helper, so the exemption must propagate
// through reachable functions), and a drain mutex around batched
// releases. All of that mutex traffic is sanctioned controller
// bookkeeping; a genuinely raw scheduling point in the same method is
// still flagged.
type shardSlot struct {
	spawnMu sync.Mutex
	relMu   sync.Mutex
}

type shardedCtrl struct {
	slots []*shardSlot
	done  chan struct{}
}

func (c *shardedCtrl) Name() string { return "sharded" }

func (c *shardedCtrl) Spawn(ctx context.Context, spec *core.Spec) (core.Token, error) {
	c.claimSlow([]int{0, 1})
	return nil, nil
}

// claimSlow is reachable only from Spawn: the ordered per-slot locks
// are exempt transitively, not just when written inline.
func (c *shardedCtrl) claimSlow(order []int) {
	for _, i := range order {
		c.slots[i].spawnMu.Lock()
	}
	for _, i := range order {
		c.slots[i].spawnMu.Unlock()
	}
}

func (c *shardedCtrl) Request(t core.Token, caller, h *core.Handler) error { return nil }

func (c *shardedCtrl) Enter(ctx context.Context, t core.Token, caller, h *core.Handler) error {
	return nil
}

func (c *shardedCtrl) Exit(t core.Token, h *core.Handler) {}

func (c *shardedCtrl) RootReturned(t core.Token) {}

func (c *shardedCtrl) Complete(t core.Token) {
	c.slots[0].relMu.Lock()
	defer c.slots[0].relMu.Unlock()
	<-c.done // want `raw channel receive inside controller shardedCtrl\.Complete`
}
