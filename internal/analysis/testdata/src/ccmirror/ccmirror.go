// Package ccmirror mirrors the locking structure of internal/cc's
// version table in a self-contained fixture: per-slot mu and spawnMu,
// an atomic lv guarded by mu, a plain applied counter written under mu
// and read atomically, gv published by CAS, and the compiled-lockOrder
// slow path. It is clean under every analyzer at head; seeded_test.go
// mutates copies of it — swapping the canonical spawnMu→mu order,
// dropping a //samoa:guard, planting a stale //samoa:ignore — and
// checks the matching analyzer catches each seed.
package ccmirror

import (
	"sync"
	"sync/atomic"
)

// slot is one version-table shard, protocol annotations and all.
type slot struct {
	mu      sync.Mutex
	spawnMu sync.Mutex

	lv atomic.Uint64 //samoa:guard mu — written only under mu; read lock-free

	//samoa:guard mu — written plainly under mu; read via atomic.LoadUint64
	applied uint64

	gv atomic.Uint64
}

// fprint is a compiled footprint: the slots a spawn touches, with their
// lock order precomputed ascending so multi-slot admission cannot
// invert.
type fprint struct {
	states    []*slot
	lockOrder []int
}

// claimSlow takes every slot's spawnMu in compiled order — the
// canonical ordered-by-construction idiom.
func claimSlow(fp *fprint) {
	for _, p := range fp.lockOrder {
		fp.states[p].spawnMu.Lock()
	}
	for _, st := range fp.states {
		st.gv.Add(1)
	}
	for _, p := range fp.lockOrder {
		fp.states[p].spawnMu.Unlock()
	}
}

// claimFast is the quiescent-slot CAS admission: loads the compare
// value atomically, as the retry-loop contract requires.
func claimFast(st *slot) bool {
	for {
		old := st.gv.Load()
		if st.lv.Load() != old {
			return false
		}
		if st.gv.CompareAndSwap(old, old+1) {
			return true
		}
	}
}

// publish is the slow-path release: bookkeeping under spawnMu, then the
// lv advance under mu — the canonical spawnMu→mu nesting.
func publish(st *slot) {
	st.spawnMu.Lock()
	st.advance(st.gv.Load())
	st.spawnMu.Unlock()
}

// admit nests the same two locks in the same canonical order.
func admit(st *slot) bool {
	st.spawnMu.Lock()
	st.mu.Lock()
	ok := st.lv.Load() == st.gv.Load()
	st.mu.Unlock()
	st.spawnMu.Unlock()
	return ok
}

// advance raises lv under mu, honoring both guard contracts.
func (st *slot) advance(n uint64) {
	st.mu.Lock()
	if n > st.lv.Load() {
		st.lv.Store(n)
		st.applied++
	}
	st.mu.Unlock()
}

// stats reads the published values lock-free.
func stats(st *slot) (uint64, uint64) {
	return st.lv.Load(), atomic.LoadUint64(&st.applied)
}
