// Package footprint is golden testdata for the footprint check: a
// three-stage trigger chain e0 → A.head → e1 → B.mid → e2 → C.sink,
// spawned under specs that do and do not cover the chain.
package footprint

import "repro/internal/core"

type proto struct {
	stack         *core.Stack
	e0, e1, e2    *core.EventType
	mpA, mpB, mpC *core.Microprotocol
}

func build(ctrl core.Controller) *proto {
	p := &proto{}
	p.stack = core.NewStack(ctrl)
	p.mpA = core.NewMicroprotocol("A")
	p.mpB = core.NewMicroprotocol("B")
	p.mpC = core.NewMicroprotocol("C")
	p.e0 = core.NewEventType("e0")
	p.e1 = core.NewEventType("e1")
	p.e2 = core.NewEventType("e2")

	hA := p.mpA.AddHandler("head", func(ctx *core.Context, msg core.Message) error {
		return ctx.Trigger(p.e1, msg)
	})
	// B forwards through a helper, so the walk must bind the helper's
	// parameter to the caller's argument to see e2.
	hB := p.mpB.AddHandler("mid", func(ctx *core.Context, msg core.Message) error {
		return emit(ctx, p.e2, msg)
	})
	hC := p.mpC.AddHandler("sink", func(ctx *core.Context, msg core.Message) error {
		return nil
	})

	p.stack.Register(p.mpA, p.mpB, p.mpC)
	p.stack.Bind(p.e0, hA)
	p.stack.Bind(p.e1, hB)
	p.stack.Bind(p.e2, hC)
	return p
}

func emit(ctx *core.Context, ev *core.EventType, msg core.Message) error {
	return ctx.Trigger(ev, msg)
}

// runShort under-declares: the chain reaches C.sink but the spec stops
// at B.
func (p *proto) runShort() error {
	return p.stack.External(core.Access(p.mpA, p.mpB), p.e0, "m") // want `reaches handler C\.sink but microprotocol C is not in its declared spec \[A B\]`
}

// runFull declares the whole chain: clean.
func (p *proto) runFull() error {
	return p.stack.External(core.Access(p.mpA, p.mpB, p.mpC), p.e0, "m")
}

// runIso spawns from a root closure whose trigger reaches B and,
// transitively, C — neither declared.
func (p *proto) runIso() error {
	return p.stack.Isolated(core.Access(p.mpA), func(ctx *core.Context) error { // want `reaches handler B\.mid but microprotocol B is not in its declared spec \[A\]` `reaches handler C\.sink but microprotocol C is not in its declared spec \[A\]`
		return ctx.Trigger(p.e1, nil)
	})
}

// runDynamic builds its spec at runtime: statically unresolvable, so
// the check leaves enforcement to the controller.
func (p *proto) runDynamic(mps []*core.Microprotocol) error {
	return p.stack.External(core.Access(mps...), p.e0, "m")
}
