// Package transportpump is golden testdata for the blocking check's
// transport-pump scope: in a package with a concrete transport.Endpoint
// implementation, goroutines launched by go statements and
// time.AfterFunc callbacks are pump code. Mutex bookkeeping there is
// exempt (like controllers); sleeps, channel operations, selects and
// nested goroutines are flagged.
package transportpump

import (
	"sync"
	"time"

	"repro/internal/transport"
)

// ep implements transport.Endpoint, which turns this package's
// goroutines into pump scope.
type ep struct {
	mu    sync.Mutex
	seq   uint64
	inbox chan transport.Datagram
	quit  chan struct{}
}

func (e *ep) ID() transport.NodeID                     { return 0 }
func (e *ep) Send(to transport.NodeID, payload []byte) {}
func (e *ep) Recv() (transport.Datagram, bool)         { d, ok := <-e.inbox; return d, ok }
func (e *ep) TryRecv() (transport.Datagram, bool)      { return transport.Datagram{}, false }

// start launches the pumps. The go statement and AfterFunc here are the
// launch sites, not pump code themselves: not flagged.
func start(e *ep) {
	go e.readLoop()
	go func() {
		<-e.quit // want `raw channel receive inside transport pump goroutine started by start`
	}()
	time.AfterFunc(time.Millisecond, e.tick)
}

// readLoop is a socket-style pump: its select, receive and sleep are
// all invisible to the schedule explorer and flagged; the bookkeeping
// mutex is exempt.
func (e *ep) readLoop() {
	for {
		e.mu.Lock()
		e.seq++
		e.mu.Unlock()
		select { // want `select inside transport pump readLoop`
		case <-e.quit: // want `raw channel receive inside transport pump readLoop`
			return
		default:
		}
		time.Sleep(time.Millisecond) // want `time\.Sleep inside transport pump readLoop`
	}
}

// tick is an AfterFunc pump: the send into the inbox is flagged, the
// mutex is not.
func (e *ep) tick() {
	e.mu.Lock()
	e.seq++
	e.mu.Unlock()
	e.inbox <- transport.Datagram{} // want `raw channel send inside transport pump tick`
}

// drain is ordinary code — called synchronously, never go-launched — so
// its blocking is out of pump scope and unflagged.
func drain(e *ep) {
	for {
		select {
		case <-e.inbox:
		default:
			return
		}
	}
}
