// Package routecycle is golden testdata for the routecycle check:
// route-graph literals with and without directed handler cycles.
package routecycle

import "repro/internal/core"

func build() []*core.Spec {
	mpA := core.NewMicroprotocol("A")
	mpB := core.NewMicroprotocol("B")
	hA := mpA.AddHandler("ping", func(ctx *core.Context, msg core.Message) error { return nil })
	hB := mpB.AddHandler("pong", func(ctx *core.Context, msg core.Message) error { return nil })

	cyclic := core.NewRouteGraph().Root(hA).Edge(hA, hB).Edge(hB, hA) // want `route graph has a handler cycle \(A\.ping → B\.pong → A\.ping\)`

	selfLoop := core.NewRouteGraph().Root(hA).Edge(hA, hA) // want `route graph has a handler cycle \(A\.ping → A\.ping\)`

	// A diamond is acyclic: clean.
	acyclic := core.NewRouteGraph().Root(hA).Edge(hA, hB)

	return []*core.Spec{core.Route(cyclic), core.Route(selfLoop), core.Route(acyclic)}
}
