// Package readonly is golden testdata for the readonly check: handlers
// registered with core.ReadOnly() that do and do not live up to it.
package readonly

import "repro/internal/core"

type cache struct {
	n    int
	hits map[string]int
}

var total int

func build() {
	mp := core.NewMicroprotocol("cache")
	c := &cache{hits: map[string]int{}}

	mp.AddHandler("lying", func(ctx *core.Context, msg core.Message) error {
		c.n++ // want `handler cache\.lying is declared ReadOnly but writes captured state "c"`
		return nil
	}, core.ReadOnly())

	mp.AddHandler("honest", func(ctx *core.Context, msg core.Message) error {
		sum := c.n + len(c.hits)
		_ = sum
		return nil
	}, core.ReadOnly())

	// Not ReadOnly: writing is its job.
	mp.AddHandler("writer", func(ctx *core.Context, msg core.Message) error {
		c.n++
		return nil
	})

	// The write hides in a same-package helper; reported at the write.
	mp.AddHandler("helper", func(ctx *core.Context, msg core.Message) error {
		bumpTotal()
		return nil
	}, core.ReadOnly())

	mp.AddHandler("deleter", func(ctx *core.Context, msg core.Message) error {
		delete(c.hits, "k") // want `handler cache\.deleter is declared ReadOnly but deletes from captured state "c"`
		return nil
	}, core.ReadOnly())

	// A method handler: the receiver is the microprotocol state, never a
	// local.
	mp.AddHandler("method", c.touch, core.ReadOnly())
}

func bumpTotal() {
	total++ // want `is declared ReadOnly but writes captured state "total"`
}

func (c *cache) touch(ctx *core.Context, msg core.Message) error {
	c.hits["k"] = 1 // want `handler cache\.method is declared ReadOnly but writes captured state "c"`
	return nil
}
