// Package nestediso is golden testdata for the nestediso check:
// computations spawning other computations synchronously (deadlock) or
// asynchronously (fine).
package nestediso

import "repro/internal/core"

type nest struct {
	stack    *core.Stack
	e0, e1   *core.EventType
	mpA, mpB *core.Microprotocol
	specB    *core.Spec
}

func build(ctrl core.Controller) *nest {
	n := &nest{}
	n.stack = core.NewStack(ctrl)
	n.mpA = core.NewMicroprotocol("A")
	n.mpB = core.NewMicroprotocol("B")
	n.e0 = core.NewEventType("e0")
	n.e1 = core.NewEventType("e1")
	n.specB = core.Access(n.mpB)

	hA := n.mpA.AddHandler("head", func(ctx *core.Context, msg core.Message) error {
		return ctx.Stack().Isolated(n.specB, func(ctx *core.Context) error { // want `synchronous Stack\.Isolated inside handler A\.head`
			return nil
		})
	})

	// Spawning through a Fork closure is still inside the computation.
	hB := n.mpB.AddHandler("forker", func(ctx *core.Context, msg core.Message) error {
		ctx.Fork(func(ctx *core.Context) error {
			return ctx.Stack().External(n.specB, n.e1, nil) // want `synchronous Stack\.External inside handler B\.forker`
		})
		return nil
	})

	// Asynchronous spawning is the documented fix: clean.
	hOK := n.mpA.AddHandler("async", func(ctx *core.Context, msg core.Message) error {
		ctx.Stack().IsolatedAsync(n.specB, func(ctx *core.Context) error {
			return nil
		})
		return nil
	})

	n.stack.Register(n.mpA, n.mpB)
	n.stack.Bind(n.e0, hA, hOK)
	n.stack.Bind(n.e1, hB)
	return n
}

// spawn's root closure is itself a computation context.
func (n *nest) spawn() <-chan error {
	return n.stack.IsolatedAsync(core.Access(n.mpA), func(ctx *core.Context) error {
		return ctx.Stack().Isolated(n.specB, func(ctx *core.Context) error { // want `synchronous Stack\.Isolated inside the root closure of IsolatedAsync`
			return nil
		})
	})
}
