package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestRepoCleanAtHead is the self-application gate: samoa-vet over the
// repository's own packages must report nothing. New protocol code that
// trips a check either gets fixed or carries an explicit, rationalized
// //samoa:ignore — silence is not an option.
func TestRepoCleanAtHead(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := loader.Expand([]string{"./internal/...", "./examples/...", "./cmd/..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(dirs) == 0 {
		t.Fatal("no packages expanded")
	}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		for _, d := range analysis.RunChecks(pkg, analysis.All()) {
			t.Errorf("%s", d)
		}
	}
}

// TestSeededRegressionCaught deletes one microprotocol from the
// quickstart example's spec and checks the footprint analyzer reports
// the now-unreachable handler — the acceptance probe from the issue.
func TestSeededRegressionCaught(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	src, err := os.ReadFile(filepath.Join(loader.ModuleRoot, "examples", "quickstart", "main.go"))
	if err != nil {
		t.Fatalf("read quickstart: %v", err)
	}
	const orig = "core.Access(f.mpP, f.mpR, f.mpS)"
	if !strings.Contains(string(src), orig) {
		t.Fatalf("quickstart no longer contains %q; update this test's seed", orig)
	}
	seeded := strings.Replace(string(src), orig, "core.Access(f.mpP, f.mpR)", 1)

	// The seeded copy must live under the module root so its
	// repro/... imports resolve.
	dir, err := os.MkdirTemp("testdata", "seeded-")
	if err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(seeded), 0o644); err != nil {
		t.Fatalf("write seeded copy: %v", err)
	}

	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load seeded copy: %v", err)
	}
	diags := analysis.RunChecks(pkg, []*analysis.Analyzer{analysis.FootprintAnalyzer})
	want := regexp.MustCompile(`reaches handler S\.S but microprotocol S is not in its declared spec \[P R\]`)
	found := false
	for _, d := range diags {
		if want.MatchString(d.Message) {
			found = true
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !found {
		t.Errorf("footprint missed the seeded regression; got %d diagnostics", len(diags))
	}
}
