package analysis

import (
	"sort"
	"strings"
)

// RouteCycleAnalyzer checks core.NewRouteGraph literals for directed
// handler cycles. A cyclic routing pattern is legal — recursion needs
// one — but VCAroute's rule 4(b) can never release the microprotocols
// on the cycle before the computation completes, silently degrading a
// Route spec to Access-like locking for those microprotocols. The
// runtime exposes this as RouteGraph.HasCycle; samoa-vet surfaces it at
// build time, where the graph is declared.
var RouteCycleAnalyzer = &Analyzer{
	Name: "routecycle",
	Doc:  "route-graph literals with cycles forfeit VCAroute early release",
	Run:  runRouteCycle,
}

func runRouteCycle(pass *Pass) {
	for _, g := range pass.Model.Graphs {
		if cycle := findCycle(g); cycle != nil {
			names := make([]string, len(cycle))
			for i, h := range cycle {
				names[i] = h.String()
			}
			pass.Reportf(g.Call.Pos(),
				"route graph has a handler cycle (%s) — VCAroute cannot release its microprotocols before completion; break the cycle or accept Access-like locking",
				strings.Join(names, " → "))
		}
	}
}

// findCycle returns one directed cycle of the graph (first vertex
// repeated at the end), or nil. Vertices are visited in source order so
// the reported cycle is deterministic.
func findCycle(g *Val) []*Val {
	verts := map[*Val]bool{}
	for _, r := range g.Roots {
		verts[r] = true
	}
	for from, tos := range g.Edges {
		verts[from] = true
		for _, to := range tos {
			verts[to] = true
		}
	}
	order := make([]*Val, 0, len(verts))
	for v := range verts {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return posOf(order[i]) < posOf(order[j]) })

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*Val]int{}
	var stack []*Val
	var visit func(h *Val) []*Val
	visit = func(h *Val) []*Val {
		color[h] = grey
		stack = append(stack, h)
		for _, s := range g.Edges[h] {
			switch color[s] {
			case grey:
				// Slice the cycle out of the DFS stack.
				for i, v := range stack {
					if v == s {
						return append(append([]*Val{}, stack[i:]...), s)
					}
				}
			case white:
				if c := visit(s); c != nil {
					return c
				}
			}
		}
		color[h] = black
		stack = stack[:len(stack)-1]
		return nil
	}
	for _, h := range order {
		if color[h] == white {
			if c := visit(h); c != nil {
				return c
			}
		}
	}
	return nil
}
