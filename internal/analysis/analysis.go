package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer is one diagnostic class: a name (used in -checks selection
// and //samoa:ignore directives), a one-line doc string, and a Run
// function reporting findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the analyzers in reporting order. IgnoresAnalyzer runs
// last: it audits the suppressions the other checks honor, so keeping
// it at the end makes the ordering mirror the dependency.
func All() []*Analyzer {
	return []*Analyzer{
		FootprintAnalyzer,
		ReadOnlyAnalyzer,
		NestedIsoAnalyzer,
		BlockingAnalyzer,
		RouteCycleAnalyzer,
		LockOrderAnalyzer,
		AtomicsAnalyzer,
		ReconfigAnalyzer,
		IgnoresAnalyzer,
	}
}

// CheckNames returns every analyzer name, for help text and for the
// ignores audit's known-name set.
func CheckNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// ByName resolves a comma-separated check list ("footprint,blocking")
// against All. An empty or "all" selection returns every analyzer.
func ByName(sel string) ([]*Analyzer, error) {
	if sel == "" || sel == "all" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		a := byName[name]
		if a == nil {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(CheckNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// A Diagnostic is one finding, positioned at the offending source line.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Column  int            `json:"column"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Column, d.Message, d.Check)
}

// A Pass is one analyzer's view of one type-checked package, plus the
// extracted protocol model shared by all checks.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Model    *Model

	diags *[]Diagnostic

	// noSuppress disables //samoa:ignore handling: the ignores audit
	// needs each check's raw findings to decide whether a suppression
	// is still alive, and its own findings must not be silenceable by
	// the very directive under audit.
	noSuppress bool
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos unless a //samoa:ignore directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if !p.noSuppress && p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// A CheckStat is one analyzer's contribution to a RunChecksStats call:
// how many findings it reported (pre-dedup) and how long it ran.
type CheckStat struct {
	Name     string
	Findings int
	Elapsed  time.Duration
}

// RunChecks extracts the protocol model of pkg once and runs every
// analyzer over it, returning the deduplicated findings in file/line
// order.
func RunChecks(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunChecksStats(pkg, analyzers)
	return diags
}

// RunChecksStats is RunChecks plus a per-check findings/elapsed
// breakdown (in analyzer order), for samoa-vet -stats.
func RunChecksStats(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, []CheckStat) {
	model := ExtractModel(pkg)
	var diags []Diagnostic
	stats := make([]CheckStat, 0, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Model: model, diags: &diags}
		before := len(diags)
		start := time.Now()
		a.Run(pass)
		stats = append(stats, CheckStat{
			Name:     a.Name,
			Findings: len(diags) - before,
			Elapsed:  time.Since(start),
		})
	}
	seen := map[string]bool{}
	out := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s|%s:%d|%s", d.Check, d.File, d.Line, d.Message)
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Check < out[j].Check
	})
	return out, stats
}

// A Directive is one //samoa:ignore comment: the checks it names (or
// "all" when bare), the free-text rationale after its "—"/"--"
// separator, and where it sits. The suppression machinery consumes the
// line/checks pair; the ignores audit consumes the whole record.
type Directive struct {
	Pos       token.Pos
	File      string
	Line      int
	Checks    []string
	Rationale string
}

// ignoreDirectives scans a file's comments for //samoa:ignore lines.
// The directive suppresses findings on its own line and, when it is the
// only thing on its line, on the line below.
func ignoreDirectives(fset *token.FileSet, f *ast.File) []*Directive {
	var out []*Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//samoa:ignore")
			if !ok {
				continue
			}
			// Anything after a "—" or "--" separator is rationale.
			rationale := ""
			if list, rest, cut := strings.Cut(text, "—"); cut {
				text, rationale = list, rest
			} else if list, rest, cut := strings.Cut(text, "--"); cut {
				text, rationale = list, rest
			}
			var checks []string
			for _, name := range strings.Split(strings.TrimSpace(text), ",") {
				if name = strings.TrimSpace(name); name != "" {
					checks = append(checks, name)
				}
			}
			if len(checks) == 0 {
				checks = []string{"all"}
			}
			pos := fset.Position(c.Pos())
			out = append(out, &Directive{
				Pos:       c.Pos(),
				File:      pos.Filename,
				Line:      pos.Line,
				Checks:    checks,
				Rationale: strings.TrimSpace(rationale),
			})
		}
	}
	return out
}

// suppressed reports whether a //samoa:ignore directive on the finding's
// line or the line above covers the given check.
func (p *Package) suppressed(check string, pos token.Position) bool {
	dirs := p.ignores[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range dirs[line] {
			if name == "all" || name == check {
				return true
			}
		}
	}
	return false
}
