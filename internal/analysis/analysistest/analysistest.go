// Package analysistest runs samoa-vet analyzers over golden testdata
// packages, comparing findings against // want "regexp" expectation
// comments — the same discipline go/analysis repositories use, built
// from scratch on the stdlib.
//
// An expectation comment attaches to its own source line:
//
//	p.stack.External(spec, ev, nil) // want `reaches handler C\.sink`
//
// A want-below comment attaches to the line below it — for diagnostics
// positioned on a comment-only line (the ignores audit reports at the
// //samoa:ignore directive itself, which cannot share its line with a
// want, and whose covered window is the line under it):
//
//	// want-below `has no rationale`
//	//samoa:ignore blocking
//	time.Sleep(time.Millisecond)
//
// Several backquoted or quoted patterns may follow one want. Run fails
// the test if any diagnostic lacks a matching expectation on its line
// (unexpected finding) or any expectation goes unmatched (missed
// finding — also exactly what happens when a check is disabled).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	loaderMu sync.Mutex
	loaders  = map[string]*analysis.Loader{}
)

// sharedLoader caches one Loader per module root so testdata packages
// and their dependencies (core, cc, stdlib) type-check once per test
// binary, not once per test.
func sharedLoader(dir string) (*analysis.Loader, error) {
	loaderMu.Lock()
	defer loaderMu.Unlock()
	probe, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	if l, ok := loaders[probe.ModuleRoot]; ok {
		return l, nil
	}
	loaders[probe.ModuleRoot] = probe
	return probe, nil
}

// expectation is one want pattern, anchored to a file line.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads the package in dir, runs the analyzers, and diffs the
// findings against the package's // want comments.
func Run(t testing.TB, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader, err := sharedLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}

	wants := map[string]map[int][]*expectation{} // file → line → patterns
	for _, f := range pkg.Files {
		if err := collectWants(pkg.Fset, f, wants); err != nil {
			t.Fatalf("%v", err)
		}
	}

	diags := analysis.RunChecks(pkg, analyzers)
	for _, d := range diags {
		exps := wants[d.File][d.Line]
		found := false
		for _, e := range exps {
			if e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s [%s]", d.File, d.Line, d.Message, d.Check)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("no diagnostic at %s:%d matching %q", file, line, e.rx)
				}
			}
		}
	}
}

// collectWants parses the // want comments of one file.
func collectWants(fset *token.FileSet, f *ast.File, wants map[string]map[int][]*expectation) error {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			offset := 0
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				if text, ok = strings.CutPrefix(c.Text, "// want-below "); !ok {
					continue
				}
				offset = 1
			}
			pos := fset.Position(c.Pos())
			pos.Line += offset
			matches := wantRe.FindAllStringSubmatch(text, -1)
			if len(matches) == 0 {
				return fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
			}
			for _, mSub := range matches {
				pat := mSub[1]
				if pat == "" && mSub[2] != "" {
					unq, err := strconv.Unquote(`"` + mSub[2] + `"`)
					if err != nil {
						return fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, mSub[2], err)
					}
					pat = unq
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = map[int][]*expectation{}
				}
				wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{rx: rx})
			}
		}
	}
	return nil
}
