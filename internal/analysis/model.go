package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Kind discriminates the abstract values the extractor tracks.
type Kind int

const (
	KEvent   Kind = iota + 1 // core.NewEventType site
	KMP                      // core.NewMicroprotocol site
	KHandler                 // (*Microprotocol).AddHandler site
	KLookup                  // (*Microprotocol).Handler("name") site
	KStack                   // core.NewStack site
	KGraph                   // core.NewRouteGraph site
	KBuilder                 // core.NewSpecBuilder site
	KSpec                    // core.Access / AccessBound / Route / builder-derived
)

// Val is one abstract protocol value, identified by its creation call
// site: all storage locations a creation site flows into share the one
// Val. Fields beyond Kind/Call are decorations filled in by finalize.
type Val struct {
	Kind Kind
	Call *ast.CallExpr

	// KEvent, KMP: the literal name argument ("" if not constant).
	Name string

	// KMP: handlers registered on this microprotocol, by name.
	MPHandlers map[string]*Val

	// KHandler
	MP       *Val // owning microprotocol (nil if unresolved)
	ReadOnly bool
	Body     *FuncNode // handler function body (nil if unresolved)

	// KLookup: the handler the name lookup resolves to.
	Resolved *Val

	// KSpec
	SpecMPs      []*Val // declared microprotocols (KMP)
	SpecComplete bool   // every declared microprotocol resolved
	SpecGraph    *Val   // KGraph for core.Route specs

	// KGraph
	Roots         []*Val
	Edges         map[*Val][]*Val
	GraphComplete bool

	// KBuilder
	BEdges    [][2]*Val
	BComplete bool
}

// FuncNode is a function with a body the analyzers can walk: a function
// literal or a package-level function/method declaration.
type FuncNode struct {
	Lit  *ast.FuncLit
	Decl *ast.FuncDecl
}

// NodeOf returns the underlying AST node.
func (f *FuncNode) NodeOf() ast.Node {
	if f.Lit != nil {
		return f.Lit
	}
	return f.Decl
}

// BodyOf returns the function body (may be nil for bodyless decls).
func (f *FuncNode) BodyOf() *ast.BlockStmt {
	if f.Lit != nil {
		return f.Lit.Body
	}
	return f.Decl.Body
}

// TypeOf returns the function's type expression.
func (f *FuncNode) TypeOf() *ast.FuncType {
	if f.Lit != nil {
		return f.Lit.Type
	}
	return f.Decl.Type
}

// RecvObj returns the method receiver object, or nil.
func (f *FuncNode) RecvObj(info *types.Info) types.Object {
	if f.Decl == nil || f.Decl.Recv == nil || len(f.Decl.Recv.List) == 0 || len(f.Decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[f.Decl.Recv.List[0].Names[0]]
}

// Binding is one Bind/Rebind call: event type → handlers, on a stack.
type Binding struct {
	Call     *ast.CallExpr
	Stack    *Val // nil if the receiver stack is unresolved
	Event    *Val
	Handlers []*Val
	Complete bool // every bound handler resolved
}

// IsoSite is one computation-spawning call site: Stack.Isolated,
// IsolatedAsync, External or ExternalAll.
type IsoSite struct {
	Call   *ast.CallExpr
	Method string
	Stack  *Val      // nil if unresolved
	Spec   *Val      // KSpec, nil if unresolved
	Root   *FuncNode // Isolated/IsolatedAsync root closure
	Event  *Val      // External/ExternalAll event
}

// Model is the extracted protocol model of one package, shared by all
// analyzers.
type Model struct {
	Pkg *Package

	Handlers []*Val
	Bindings []*Binding
	IsoSites []*IsoSite
	Graphs   []*Val

	env       map[types.Object]*Val
	ambiguous map[types.Object]bool
	sites     map[*ast.CallExpr]*Val
	funcDecls map[*types.Func]*ast.FuncDecl
}

// ExtractModel lifts a type-checked package into its protocol model.
func ExtractModel(pkg *Package) *Model {
	m := &Model{
		Pkg:       pkg,
		env:       map[types.Object]*Val{},
		ambiguous: map[types.Object]bool{},
		sites:     map[*ast.CallExpr]*Val{},
		funcDecls: map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					m.funcDecls[fn] = fd
				}
			}
		}
	}
	m.propagate()
	m.finalize()
	return m
}

// propagate runs the flow-insensitive value-propagation fixpoint:
// creation sites are materialized and copied through assignments until
// the environment is stable. A storage location assigned two distinct
// values becomes ambiguous and resolves to nothing — the checks skip
// rather than guess.
func (m *Model) propagate() {
	for range 20 {
		changed := false
		for _, f := range m.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					m.siteVal(n)
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i, lhs := range n.Lhs {
							if m.bind(lhs, m.chase(n.Rhs[i], nil)) {
								changed = true
							}
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) == len(n.Values) {
						for i, name := range n.Names {
							if m.bind(name, m.chase(n.Values[i], nil)) {
								changed = true
							}
						}
					}
				}
				return true
			})
		}
		if !changed {
			return
		}
	}
}

// bind records that the storage location lhs holds v. It reports
// whether the environment changed.
func (m *Model) bind(lhs ast.Expr, v *Val) bool {
	if v == nil {
		return false
	}
	obj := m.objOf(lhs)
	if obj == nil || m.ambiguous[obj] {
		return false
	}
	if cur, ok := m.env[obj]; ok {
		if cur == v {
			return false
		}
		m.ambiguous[obj] = true
		delete(m.env, obj)
		return true
	}
	m.env[obj] = v
	return true
}

// objOf resolves an identifier or field selector to its types.Object.
// Field objects deliberately conflate instances: one abstract value per
// declared storage location is the granularity a static check wants.
func (m *Model) objOf(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := m.Pkg.Info.Defs[e]; obj != nil {
			return obj
		}
		return m.Pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		return m.Pkg.Info.Uses[e.Sel]
	}
	return nil
}

// chase resolves an expression to its abstract value, consulting the
// overlay (caller-argument bindings during interprocedural walks) before
// the package environment. Name lookups resolve through to the handler.
func (m *Model) chase(e ast.Expr, overlay map[types.Object]*Val) *Val {
	var v *Val
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		obj := m.objOf(e.(ast.Expr))
		if obj == nil {
			return nil
		}
		if ov, ok := overlay[obj]; ok {
			v = ov
		} else {
			v = m.env[obj]
		}
	case *ast.CallExpr:
		v = m.siteVal(e)
	}
	if v != nil && v.Kind == KLookup {
		return v.Resolved
	}
	return v
}

// calleeFunc resolves a call's static callee, if any.
func (m *Model) calleeFunc(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := m.Pkg.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := m.Pkg.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// coreFunc classifies a function as belonging to the framework's core
// package, returning its receiver type name ("" for package functions)
// and name.
func coreFunc(fn *types.Func) (recv, name string, ok bool) {
	if fn == nil {
		return "", "", false
	}
	p := fn.Pkg()
	if p == nil || !(p.Path() == "internal/core" || strings.HasSuffix(p.Path(), "/internal/core")) {
		return "", "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			recv = n.Obj().Name()
		}
	}
	return recv, fn.Name(), true
}

// recvExpr returns the receiver expression of a method call.
func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// siteVal materializes (and memoizes) the abstract value created by a
// call site, or nil for calls that create none. Chaining methods
// (RouteGraph.Root/Edge, SpecBuilder.Edge) resolve to their receiver's
// value so fluent construction works.
func (m *Model) siteVal(call *ast.CallExpr) *Val {
	if v, ok := m.sites[call]; ok {
		return v
	}
	recv, name, ok := coreFunc(m.calleeFunc(call))
	if !ok {
		return nil
	}
	mk := func(k Kind) *Val {
		v := &Val{Kind: k, Call: call}
		if k == KMP {
			v.MPHandlers = map[string]*Val{}
		}
		if k == KGraph {
			v.Edges = map[*Val][]*Val{}
			v.GraphComplete = true
		}
		if k == KBuilder {
			v.BComplete = true
		}
		if k == KEvent || k == KMP {
			if len(call.Args) > 0 {
				v.Name, _ = m.strConst(call.Args[0])
			}
		}
		m.sites[call] = v
		return v
	}
	switch {
	case recv == "" && name == "NewEventType":
		return mk(KEvent)
	case recv == "" && name == "NewMicroprotocol":
		return mk(KMP)
	case recv == "" && name == "NewStack":
		return mk(KStack)
	case recv == "" && name == "NewRouteGraph":
		return mk(KGraph)
	case recv == "" && name == "NewSpecBuilder":
		return mk(KBuilder)
	case recv == "" && (name == "Access" || name == "AccessBound" || name == "Route"):
		return mk(KSpec)
	case recv == "Microprotocol" && name == "AddHandler":
		return mk(KHandler)
	case recv == "Microprotocol" && name == "Handler":
		return mk(KLookup)
	case recv == "SpecBuilder" && (name == "Basic" || name == "Bound" || name == "Route"):
		return mk(KSpec)
	case (recv == "RouteGraph" && (name == "Root" || name == "Edge")) ||
		(recv == "SpecBuilder" && name == "Edge"):
		v := m.chase(recvExpr(call), nil)
		if v != nil {
			m.sites[call] = v
		}
		return v
	}
	return nil
}

// strConst evaluates an expression to a constant string.
func (m *Model) strConst(e ast.Expr) (string, bool) {
	if tv, ok := m.Pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// funcNodeOf resolves an expression to a walkable function: a literal,
// or a reference to a package-level function or method.
func (m *Model) funcNodeOf(e ast.Expr) *FuncNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return &FuncNode{Lit: e}
	case *ast.Ident, *ast.SelectorExpr:
		if fn, ok := m.objOf(e.(ast.Expr)).(*types.Func); ok {
			if decl := m.funcDecls[fn]; decl != nil && decl.Body != nil {
				return &FuncNode{Decl: decl}
			}
		}
	}
	return nil
}

// finalize decorates the materialized values — handler registration,
// name lookups, graph and builder edges, spec footprints — and collects
// the binding graph and computation-spawning sites. It runs after the
// environment is stable so argument expressions resolve as well as they
// ever will.
func (m *Model) finalize() {
	var lookups, graphOps, builderOps, specs []*ast.CallExpr
	var binds, isos []*ast.CallExpr
	for _, f := range m.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := coreFunc(m.calleeFunc(call))
			if !ok {
				return true
			}
			switch {
			case recv == "Microprotocol" && name == "AddHandler":
				m.decorateHandler(call)
			case recv == "Microprotocol" && name == "Handler":
				lookups = append(lookups, call)
			case recv == "RouteGraph" && (name == "Root" || name == "Edge"):
				graphOps = append(graphOps, call)
			case recv == "SpecBuilder" && name == "Edge":
				builderOps = append(builderOps, call)
			case recv == "" && (name == "Access" || name == "AccessBound" || name == "Route"),
				recv == "SpecBuilder" && (name == "Basic" || name == "Bound" || name == "Route"):
				specs = append(specs, call)
			case recv == "Stack" && (name == "Bind" || name == "Rebind"):
				binds = append(binds, call)
			case recv == "Stack" && (name == "Isolated" || name == "IsolatedAsync" || name == "External" || name == "ExternalAll"):
				isos = append(isos, call)
			}
			return true
		})
	}
	for _, call := range lookups {
		v := m.sites[call]
		mp := m.chase(recvExpr(call), nil)
		if v == nil || mp == nil || mp.Kind != KMP || len(call.Args) < 1 {
			continue
		}
		if name, ok := m.strConst(call.Args[0]); ok {
			v.Resolved = mp.MPHandlers[name]
		}
	}
	for _, call := range graphOps {
		g := m.sites[call]
		if g == nil || g.Kind != KGraph {
			continue
		}
		_, name, _ := coreFunc(m.calleeFunc(call))
		hs := make([]*Val, len(call.Args))
		for i, a := range call.Args {
			if h := m.chase(a, nil); h != nil && h.Kind == KHandler {
				hs[i] = h
			} else {
				g.GraphComplete = false
			}
		}
		if name == "Root" {
			for _, h := range hs {
				if h != nil {
					g.Roots = append(g.Roots, h)
				}
			}
		} else if len(hs) == 2 && hs[0] != nil && hs[1] != nil {
			g.Edges[hs[0]] = append(g.Edges[hs[0]], hs[1])
		}
	}
	for _, call := range builderOps {
		b := m.sites[call]
		if b == nil || b.Kind != KBuilder {
			continue
		}
		from, to := m.argHandler(call, 0), m.argHandler(call, 1)
		if from == nil || to == nil {
			b.BComplete = false
			continue
		}
		b.BEdges = append(b.BEdges, [2]*Val{from, to})
	}
	for _, call := range specs {
		m.decorateSpec(call)
	}
	for _, call := range binds {
		m.Bindings = append(m.Bindings, m.makeBinding(call))
	}
	for _, call := range isos {
		m.IsoSites = append(m.IsoSites, m.makeIsoSite(call))
	}
	for _, v := range m.sites {
		if v.Kind == KGraph {
			m.Graphs = append(m.Graphs, v)
		}
	}
	sort.Slice(m.Graphs, func(i, j int) bool { return m.Graphs[i].Call.Pos() < m.Graphs[j].Call.Pos() })
	sort.Slice(m.Handlers, func(i, j int) bool { return m.Handlers[i].Call.Pos() < m.Handlers[j].Call.Pos() })
	sort.Slice(m.IsoSites, func(i, j int) bool { return m.IsoSites[i].Call.Pos() < m.IsoSites[j].Call.Pos() })
}

func (m *Model) argHandler(call *ast.CallExpr, i int) *Val {
	if i >= len(call.Args) {
		return nil
	}
	if h := m.chase(call.Args[i], nil); h != nil && h.Kind == KHandler {
		return h
	}
	return nil
}

func (m *Model) decorateHandler(call *ast.CallExpr) {
	v := m.sites[call]
	if v == nil || v.Kind != KHandler || len(call.Args) < 2 {
		return
	}
	if mp := m.chase(recvExpr(call), nil); mp != nil && mp.Kind == KMP {
		v.MP = mp
	}
	v.Name, _ = m.strConst(call.Args[0])
	v.Body = m.funcNodeOf(call.Args[1])
	for _, opt := range call.Args[2:] {
		if oc, ok := ast.Unparen(opt).(*ast.CallExpr); ok {
			if recv, name, ok := coreFunc(m.calleeFunc(oc)); ok && recv == "" && name == "ReadOnly" {
				v.ReadOnly = true
			}
		}
	}
	if v.MP != nil && v.Name != "" {
		v.MP.MPHandlers[v.Name] = v
	}
	m.Handlers = append(m.Handlers, v)
}

// decorateSpec fills in a spec value's declared footprint. Anything it
// cannot resolve to a concrete microprotocol set marks the spec
// incomplete, and the footprint check skips incomplete specs.
func (m *Model) decorateSpec(call *ast.CallExpr) {
	v := m.sites[call]
	if v == nil || v.Kind != KSpec {
		return
	}
	recv, name, _ := coreFunc(m.calleeFunc(call))
	addMP := func(mp *Val) {
		if mp != nil {
			for _, have := range v.SpecMPs {
				if have == mp {
					return
				}
			}
			v.SpecMPs = append(v.SpecMPs, mp)
		}
	}
	addHandlerMP := func(h *Val) {
		if h == nil || h.MP == nil {
			v.SpecComplete = false
			return
		}
		addMP(h.MP)
	}
	v.SpecComplete = true
	switch {
	case recv == "" && name == "Access":
		if call.Ellipsis.IsValid() {
			v.SpecComplete = false
			break
		}
		for _, a := range call.Args {
			if mp := m.chase(a, nil); mp != nil && mp.Kind == KMP {
				addMP(mp)
			} else {
				v.SpecComplete = false
			}
		}
	case recv == "" && name == "AccessBound":
		lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
		if !ok {
			v.SpecComplete = false
			break
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				v.SpecComplete = false
				continue
			}
			if mp := m.chase(kv.Key, nil); mp != nil && mp.Kind == KMP {
				addMP(mp)
			} else {
				v.SpecComplete = false
			}
		}
	case recv == "" && name == "Route":
		g := m.chase(call.Args[0], nil)
		if g == nil || g.Kind != KGraph {
			v.SpecComplete = false
			break
		}
		v.SpecGraph = g
		if !g.GraphComplete {
			v.SpecComplete = false
		}
		for _, h := range g.Roots {
			addHandlerMP(h)
		}
		for from, tos := range g.Edges {
			addHandlerMP(from)
			for _, to := range tos {
				addHandlerMP(to)
			}
		}
	case recv == "SpecBuilder":
		b := m.chase(recvExpr(call), nil)
		if b == nil || b.Kind != KBuilder || !b.BComplete || call.Ellipsis.IsValid() {
			v.SpecComplete = false
			break
		}
		args := call.Args
		if name == "Bound" {
			args = args[1:]
		}
		reach := map[*Val]bool{}
		var queue []*Val
		for _, a := range args {
			h := m.chase(a, nil)
			if h == nil || h.Kind != KHandler {
				v.SpecComplete = false
				continue
			}
			if !reach[h] {
				reach[h] = true
				queue = append(queue, h)
			}
		}
		for len(queue) > 0 {
			h := queue[0]
			queue = queue[1:]
			for _, e := range b.BEdges {
				if e[0] == h && !reach[e[1]] {
					reach[e[1]] = true
					queue = append(queue, e[1])
				}
			}
		}
		for h := range reach {
			addHandlerMP(h)
		}
	}
}

func (m *Model) makeBinding(call *ast.CallExpr) *Binding {
	b := &Binding{Call: call, Complete: !call.Ellipsis.IsValid()}
	if st := m.chase(recvExpr(call), nil); st != nil && st.Kind == KStack {
		b.Stack = st
	}
	if len(call.Args) > 0 {
		if ev := m.chase(call.Args[0], nil); ev != nil && ev.Kind == KEvent {
			b.Event = ev
		}
	}
	for _, a := range call.Args[1:] {
		if h := m.chase(a, nil); h != nil && h.Kind == KHandler {
			b.Handlers = append(b.Handlers, h)
		} else {
			b.Complete = false
		}
	}
	return b
}

func (m *Model) makeIsoSite(call *ast.CallExpr) *IsoSite {
	_, name, _ := coreFunc(m.calleeFunc(call))
	site := &IsoSite{Call: call, Method: name}
	if st := m.chase(recvExpr(call), nil); st != nil && st.Kind == KStack {
		site.Stack = st
	}
	if len(call.Args) > 0 {
		if sp := m.chase(call.Args[0], nil); sp != nil && sp.Kind == KSpec {
			site.Spec = sp
		}
	}
	if len(call.Args) > 1 {
		switch name {
		case "Isolated", "IsolatedAsync":
			site.Root = m.funcNodeOf(call.Args[1])
		case "External", "ExternalAll":
			if ev := m.chase(call.Args[1], nil); ev != nil && ev.Kind == KEvent {
				site.Event = ev
			}
		}
	}
	return site
}

// BoundHandlers returns the handlers bound to ev on a stack compatible
// with st (an unresolved stack on either side matches), plus whether
// every matching binding was completely resolved.
func (m *Model) BoundHandlers(st, ev *Val) (hs []*Val, complete bool) {
	complete = true
	for _, b := range m.Bindings {
		if b.Event != ev {
			continue
		}
		if b.Stack != nil && st != nil && b.Stack != st {
			continue
		}
		hs = append(hs, b.Handlers...)
		complete = complete && b.Complete
	}
	return hs, complete
}

// StaticCallee resolves a call to a same-package function or method
// declaration the analyzers can descend into (nil otherwise).
func (m *Model) StaticCallee(call *ast.CallExpr) *FuncNode {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return &FuncNode{Lit: lit}
	}
	fn := m.calleeFunc(call)
	if fn == nil || fn.Pkg() != m.Pkg.Types {
		return nil
	}
	if decl := m.funcDecls[fn]; decl != nil && decl.Body != nil {
		return &FuncNode{Decl: decl}
	}
	return nil
}

// CompContext is one function analyzers treat as computation-context
// code: a handler body or the root closure of an isolated computation.
// Nested closures (Fork bodies, goroutines) are inside the node and
// walked with it.
type CompContext struct {
	Fn    *FuncNode
	Label string
}

// IsFrameworkPkg reports whether this package is the framework core
// itself. The runtime's own internals sit below the Hook/Blocker seam
// (they announce their blocking to the scheduler), so the explorability
// checks trust them rather than flagging the seam's implementation.
func (m *Model) IsFrameworkPkg() bool {
	return m.Pkg.ImportPath == "internal/core" || strings.HasSuffix(m.Pkg.ImportPath, "/internal/core")
}

// ComputationContexts returns the package's computation contexts in
// source order.
func (m *Model) ComputationContexts() []CompContext {
	if m.IsFrameworkPkg() {
		return nil
	}
	var out []CompContext
	seen := map[ast.Node]bool{}
	for _, h := range m.Handlers {
		if h.Body == nil || seen[h.Body.NodeOf()] {
			continue
		}
		seen[h.Body.NodeOf()] = true
		label := "handler " + h.String()
		out = append(out, CompContext{Fn: h.Body, Label: label})
	}
	for _, site := range m.IsoSites {
		if site.Root == nil || seen[site.Root.NodeOf()] {
			continue
		}
		seen[site.Root.NodeOf()] = true
		out = append(out, CompContext{Fn: site.Root, Label: "the root closure of " + site.Method})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn.NodeOf().Pos() < out[j].Fn.NodeOf().Pos() })
	return out
}

// String renders a handler value as "mp.handler" for diagnostics.
func (v *Val) String() string {
	switch v.Kind {
	case KHandler:
		mp := "?"
		if v.MP != nil {
			mp = v.MP.String()
		}
		name := v.Name
		if name == "" {
			name = "?"
		}
		return mp + "." + name
	case KMP, KEvent:
		if v.Name != "" {
			return v.Name
		}
		return "?"
	}
	return "?"
}

// MPNames renders a spec's declared microprotocol set for diagnostics.
func (v *Val) MPNames() string {
	names := make([]string, 0, len(v.SpecMPs))
	for _, mp := range v.SpecMPs {
		names = append(names, mp.String())
	}
	sort.Strings(names)
	return "[" + strings.Join(names, " ") + "]"
}

// WalkReachable walks fn's body and, transitively, every same-package
// function it statically calls, invoking visit on each node with the
// function currently being walked. Each function is entered at most
// once per visited set, so shared helpers report once per package walk.
func (m *Model) WalkReachable(fn *FuncNode, visited map[ast.Node]bool, visit func(n ast.Node, in *FuncNode)) {
	if fn == nil || fn.BodyOf() == nil || visited[fn.NodeOf()] {
		return
	}
	visited[fn.NodeOf()] = true
	var queue []*FuncNode
	ast.Inspect(fn.BodyOf(), func(n ast.Node) bool {
		if n == nil {
			return false
		}
		visit(n, fn)
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := m.StaticCallee(call); callee != nil {
				queue = append(queue, callee)
			}
		}
		return true
	})
	for _, callee := range queue {
		m.WalkReachable(callee, visited, visit)
	}
}

// posOf is a tiny convenience for deterministic ordering of values.
func posOf(v *Val) token.Pos { return v.Call.Pos() }
