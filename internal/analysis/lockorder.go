package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// LockOrderAnalyzer builds an interprocedural lock-acquisition graph
// over sync.Mutex/RWMutex values: every statically visible acquisition
// records which locks are already held on that path, and two locks
// acquired in opposite orders on different paths are a potential
// deadlock. Lock identity is the declared storage location (a field or
// variable's types.Object), deliberately conflating instances — the
// same granularity the footprint extractor uses — and anything the
// walk cannot resolve is skipped, never guessed.
//
// The canonical ascending-order idiom in internal/cc,
//
//	for _, p := range fp.lockOrder {
//		fp.states[p].spawnMu.Lock()
//	}
//
// is ordered by construction: acquisitions inside a range over a
// variable named lockOrder never contribute edges.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "two locks acquired in opposite orders on different paths deadlock",
	Run:  runLockOrder,
}

// heldLock is one lock on the walk's acquisition stack.
type heldLock struct {
	lock types.Object // the mutex's declared storage location
	base types.Object // receiver the mutex was selected from (nil if unresolved)
	name string       // source text, for diagnostics ("st.mu")
}

// lockEdge is one held→acquired observation.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos // the inner acquisition site
	fromName string
	toName   string
}

type lockWalker struct {
	pass  *Pass
	m     *Model
	edges map[[2]types.Object]*lockEdge
	// doubles are same-storage-location reacquisitions with provably
	// equal receivers: guaranteed self-deadlock, reported directly.
	doubles []*lockEdge
	// walked memoizes (function, held-set) pairs so shared helpers are
	// not re-walked per call site with identical context.
	walked map[ast.Node]map[string]bool
	// onStack breaks recursion cycles along the current call path.
	onStack map[ast.Node]bool
}

func runLockOrder(pass *Pass) {
	w := &lockWalker{
		pass:    pass,
		m:       pass.Model,
		edges:   map[[2]types.Object]*lockEdge{},
		walked:  map[ast.Node]map[string]bool{},
		onStack: map[ast.Node]bool{},
	}
	// Every function declaration and every function literal is a root:
	// goroutines, handlers and plain calls all start with nothing held.
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				w.walk(&FuncNode{Decl: fd}, nil, 0)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.walk(&FuncNode{Lit: lit}, nil, 0)
			}
			return true
		})
	}

	// An inversion is a pair with edges in both directions; report every
	// acquisition site involved, cross-referencing the opposite order.
	var found []*lockEdge
	for key, e := range w.edges {
		if _, rev := w.edges[[2]types.Object{key[1], key[0]}]; rev {
			found = append(found, e)
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	fset := pass.Fset()
	for _, e := range found {
		rev := w.edges[[2]types.Object{e.to, e.from}]
		rp := fset.Position(rev.pos)
		pass.Reportf(e.pos, "acquires %s while holding %s, but %s:%d acquires them in the opposite order — lock-order inversion can deadlock",
			e.toName, e.fromName, filepath.Base(rp.Filename), rp.Line)
	}
	sort.Slice(w.doubles, func(i, j int) bool { return w.doubles[i].pos < w.doubles[j].pos })
	for _, e := range w.doubles {
		pass.Reportf(e.pos, "acquires %s twice on the same path — guaranteed self-deadlock", e.toName)
	}
}

// heldKey canonicalizes a held set for memoization.
func heldKey(held []heldLock) string {
	ids := make([]string, len(held))
	for i, h := range held {
		ids[i] = fmt.Sprintf("%p", h.lock)
	}
	sort.Strings(ids)
	key := ""
	for _, id := range ids {
		key += id + "|"
	}
	return key
}

// walk traverses fn's body in source order, maintaining the held stack
// and descending into same-package static callees with the current
// context. Function literals launched via go statements (and deferred
// literals) are separate roots, walked from the top-level loop.
func (w *lockWalker) walk(fn *FuncNode, held []heldLock, depth int) {
	body := fn.BodyOf()
	if body == nil || depth > 32 {
		return
	}
	node := fn.NodeOf()
	if w.onStack[node] {
		return
	}
	key := heldKey(held)
	if w.walked[node][key] {
		return
	}
	if w.walked[node] == nil {
		w.walked[node] = map[string]bool{}
	}
	w.walked[node][key] = true
	w.onStack[node] = true
	defer delete(w.onStack, node)

	// Locks released inside the function must not leak into the caller's
	// view, but locks the caller holds stay held throughout: work on a
	// copy seeded with the caller's stack.
	local := append([]heldLock(nil), held...)
	callerHeld := len(held)
	orderedDepth := 0

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if rs, ok := top.(*ast.RangeStmt); ok && w.isLockOrderRange(rs) {
				orderedDepth--
			}
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if fn.Lit != n {
				return false // separate root; nothing propagates across the spawn
			}
		case *ast.GoStmt:
			// A goroutine starts with nothing held; its function is
			// walked as a root of its own, not with this path's locks.
			return false
		case *ast.DeferStmt:
			// A deferred unlock means the lock is held to function end —
			// exactly what the linear walk models by ignoring it. Other
			// deferred calls run with an unknowable held set; skip them
			// rather than guess.
			return false
		case *ast.RangeStmt:
			if w.isLockOrderRange(n) {
				orderedDepth++
			}
		case *ast.CallExpr:
			w.call(n, &local, callerHeld, orderedDepth, depth)
		}
		stack = append(stack, n)
		return true
	})
}

// call handles one call expression: acquisition, release, or descent
// into a same-package callee.
func (w *lockWalker) call(call *ast.CallExpr, local *[]heldLock, callerHeld, orderedDepth, depth int) {
	fn := w.m.calleeFunc(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		recv := recvTypeName(fn)
		if recv != "Mutex" && recv != "RWMutex" {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		lockObj := w.m.objOf(sel.X)
		if lockObj == nil {
			return // unresolvable lock value: skip, never guess
		}
		var baseObj types.Object
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			baseObj = w.m.objOf(inner.X)
		} else if _, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			baseObj = lockObj
		}
		name := exprString(w.pass.Fset(), sel.X)
		switch fn.Name() {
		case "Lock", "RLock":
			w.acquire(*local, heldLock{lock: lockObj, base: baseObj, name: name}, call.Pos(), orderedDepth)
			*local = append(*local, heldLock{lock: lockObj, base: baseObj, name: name})
		case "Unlock", "RUnlock":
			// Release the most recent matching acquisition made in this
			// function; the caller's locks are not ours to release.
			for i := len(*local) - 1; i >= callerHeld; i-- {
				if (*local)[i].lock == lockObj {
					*local = append((*local)[:i], (*local)[i+1:]...)
					break
				}
			}
		}
		return
	}
	if callee := w.m.StaticCallee(call); callee != nil && callee.Decl != nil {
		w.walk(callee, *local, depth+1)
	}
}

// acquire records the edges held→next, or a self-deadlock when next is
// provably the same lock value.
func (w *lockWalker) acquire(held []heldLock, next heldLock, pos token.Pos, orderedDepth int) {
	if orderedDepth > 0 {
		return // inside the lockOrder idiom: ordered by construction
	}
	for _, h := range held {
		if h.lock == next.lock {
			// The same declared location twice is only a certain
			// deadlock when the receivers are provably the same value;
			// distinct instances (fp.states[p] in a loop) are the
			// ordered-idiom case and stay exempt via base ambiguity.
			if h.base != nil && next.base != nil && h.base == next.base {
				w.doubles = append(w.doubles, &lockEdge{from: h.lock, to: next.lock, pos: pos, toName: next.name})
			}
			continue
		}
		key := [2]types.Object{h.lock, next.lock}
		if _, ok := w.edges[key]; !ok {
			w.edges[key] = &lockEdge{from: h.lock, to: next.lock, pos: pos, fromName: h.name, toName: next.name}
		}
	}
}

// isLockOrderRange recognizes `for _, p := range <expr>.lockOrder`:
// internal/cc compiles footprints to an ascending slot order precisely
// so multi-lock admission cannot invert.
func (w *lockWalker) isLockOrderRange(rs *ast.RangeStmt) bool {
	obj := w.m.objOf(rs.X)
	return obj != nil && obj.Name() == "lockOrder"
}

// exprString renders a small expression from source, for lock names in
// diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(fset, e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(fset, e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(fset, e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(fset, e.X)
	}
	return "?"
}
