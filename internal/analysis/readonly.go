package analysis

import (
	"go/ast"
	"go/types"
)

// ReadOnlyAnalyzer checks read-only honesty: a handler registered with
// core.ReadOnly() must not write state it captures from outside itself.
// Read/write-aware controllers (cc.VCARW) schedule ReadOnly handlers
// concurrently with other readers, so a lying annotation produces data
// races no runtime check catches. A "write" is an assignment, IncDec,
// delete or copy whose target chains down to a variable declared
// outside the function — closed-over protocol state, a method receiver,
// or a package-level variable. Writes in same-package helpers the
// handler calls count too, and are reported at the write.
var ReadOnlyAnalyzer = &Analyzer{
	Name: "readonly",
	Doc:  "ReadOnly() handlers must not write microprotocol state",
	Run:  runReadOnly,
}

func runReadOnly(pass *Pass) {
	m := pass.Model
	for _, h := range m.Handlers {
		if !h.ReadOnly || h.Body == nil {
			continue
		}
		visited := map[ast.Node]bool{}
		m.WalkReachable(h.Body, visited, func(n ast.Node, in *FuncNode) {
			for _, w := range writeTargets(n) {
				obj := rootObj(m.Pkg.Info, w.target)
				if obj == nil || isLocalTo(obj, in, m.Pkg.Info) {
					continue
				}
				pass.Reportf(n.Pos(),
					"handler %s is declared ReadOnly but %s captured state %q — VCARW will schedule it concurrently with other readers",
					h, w.verb, obj.Name())
			}
		})
	}
}

// write is one mutation a statement performs: the expression written
// through and a verb for the diagnostic.
type write struct {
	target ast.Expr
	verb   string
}

// writeTargets returns the expressions a statement writes through.
func writeTargets(n ast.Node) []write {
	switch n := n.(type) {
	case *ast.AssignStmt:
		var out []write
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			out = append(out, write{lhs, "writes"})
		}
		return out
	case *ast.IncDecStmt:
		return []write{{n.X, "writes"}}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
			if id.Name == "delete" {
				return []write{{n.Args[0], "deletes from"}}
			}
			if id.Name == "copy" {
				return []write{{n.Args[0], "copies into"}}
			}
		}
	}
	return nil
}

// rootObj chases a write target down to the variable at its base:
// s.buf[i] → s, *p → p, m[k] → m.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// A qualified package-level variable (pkg.Var) has the
			// variable at Sel; a field chain has it at the base.
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isLocalTo reports whether obj is declared inside fn — a local,
// parameter or named result — as opposed to captured state. A method
// receiver lies inside the declaration's range but *is* the
// microprotocol state, so it is never local.
func isLocalTo(obj types.Object, fn *FuncNode, info *types.Info) bool {
	if recv := fn.RecvObj(info); recv != nil && obj == recv {
		return false
	}
	node := fn.NodeOf()
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}
