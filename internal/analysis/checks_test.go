package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each golden test runs exactly one analyzer over its testdata package
// and diffs the findings against the // want comments. Disabling a
// check leaves its expectations unmatched, so these tests double as the
// guard that every check stays wired in.

func testdata(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestFootprint(t *testing.T) {
	analysistest.Run(t, testdata("footprint"), analysis.FootprintAnalyzer)
}

func TestReadOnly(t *testing.T) {
	analysistest.Run(t, testdata("readonly"), analysis.ReadOnlyAnalyzer)
}

func TestNestedIso(t *testing.T) {
	analysistest.Run(t, testdata("nestediso"), analysis.NestedIsoAnalyzer)
}

func TestBlocking(t *testing.T) {
	analysistest.Run(t, testdata("blocking"), analysis.BlockingAnalyzer)
}

func TestRouteCycle(t *testing.T) {
	analysistest.Run(t, testdata("routecycle"), analysis.RouteCycleAnalyzer)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, testdata("lockorder"), analysis.LockOrderAnalyzer)
}

func TestAtomics(t *testing.T) {
	analysistest.Run(t, testdata("atomics"), analysis.AtomicsAnalyzer)
}

func TestReconfig(t *testing.T) {
	analysistest.Run(t, testdata("reconfig"), analysis.ReconfigAnalyzer)
}

func TestIgnores(t *testing.T) {
	analysistest.Run(t, testdata("ignores"), analysis.IgnoresAnalyzer)
}

// TestTransportPump runs blocking over a package that implements
// transport.Endpoint: its go-launched loops and AfterFunc callbacks are
// pump scope.
func TestTransportPump(t *testing.T) {
	analysistest.Run(t, testdata("transportpump"), analysis.BlockingAnalyzer)
}

// TestCCMirrorClean proves the seeded-regression fixture is clean under
// every analyzer before the seeds are planted.
func TestCCMirrorClean(t *testing.T) {
	analysistest.Run(t, testdata("ccmirror"), analysis.All()...)
}

// TestByName covers the -checks selection surface.
func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 9, nil", len(all), err)
	}
	if all[len(all)-1].Name != "ignores" {
		t.Fatalf("ignores must run last (it audits the other checks' suppressions); got %q", all[len(all)-1].Name)
	}
	two, err := analysis.ByName("footprint, blocking")
	if err != nil || len(two) != 2 || two[0].Name != "footprint" || two[1].Name != "blocking" {
		t.Fatalf("ByName(\"footprint, blocking\") = %v, err %v", two, err)
	}
	if _, err := analysis.ByName("nope"); err == nil {
		t.Fatal("ByName(\"nope\") succeeded; want error")
	}
}
