package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each golden test runs exactly one analyzer over its testdata package
// and diffs the findings against the // want comments. Disabling a
// check leaves its expectations unmatched, so these tests double as the
// guard that every check stays wired in.

func testdata(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestFootprint(t *testing.T) {
	analysistest.Run(t, testdata("footprint"), analysis.FootprintAnalyzer)
}

func TestReadOnly(t *testing.T) {
	analysistest.Run(t, testdata("readonly"), analysis.ReadOnlyAnalyzer)
}

func TestNestedIso(t *testing.T) {
	analysistest.Run(t, testdata("nestediso"), analysis.NestedIsoAnalyzer)
}

func TestBlocking(t *testing.T) {
	analysistest.Run(t, testdata("blocking"), analysis.BlockingAnalyzer)
}

func TestRouteCycle(t *testing.T) {
	analysistest.Run(t, testdata("routecycle"), analysis.RouteCycleAnalyzer)
}

// TestByName covers the -checks selection surface.
func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 5 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 5, nil", len(all), err)
	}
	two, err := analysis.ByName("footprint, blocking")
	if err != nil || len(two) != 2 || two[0].Name != "footprint" || two[1].Name != "blocking" {
		t.Fatalf("ByName(\"footprint, blocking\") = %v, err %v", two, err)
	}
	if _, err := analysis.ByName("nope"); err == nil {
		t.Fatal("ByName(\"nope\") succeeded; want error")
	}
}
