// Package analysis is samoa-vet: a stdlib-only static checker for the
// framework's microprotocol isolation contracts.
//
// The runtime controllers (internal/cc) enforce the paper's isolation
// property against the Spec a computation *declares* — but nothing at
// runtime validates that the declaration itself is honest. An
// "isolated M e" whose computation reaches a microprotocol outside M is
// rejected only when that path actually executes; a handler annotated
// ReadOnly that writes state silently corrupts VCARW schedules; a
// synchronous Isolated inside a handler deadlocks only under the right
// interleaving. This package rejects those compositions at build time.
//
// It is built directly on go/parser, go/ast and go/types (no
// golang.org/x/tools): a Loader type-checks module packages from
// source, model.go lifts each package into an abstract protocol model —
// event types, microprotocols, handlers, binding graph, Spec literals,
// Isolated roots — and five Analyzer values walk that model:
//
//	footprint   Isolated/External roots that transitively reach a
//	            handler of a microprotocol absent from the declared Spec
//	readonly    ReadOnly() handlers whose bodies write captured state
//	nestediso   synchronous Isolated/External inside a computation
//	            (the documented deadlock; use IsolatedAsync)
//	blocking    raw time.Sleep, channel ops, sync blocking or bare go
//	            statements inside handlers or controllers, bypassing the
//	            sched.Blocker seam and hiding schedules from the explorer
//	routecycle  cycles in core.Route graph literals (legal, but they
//	            disable VCAroute's early release — worth knowing)
//
// All value tracking is conservative: a Spec, event type or handler the
// extractor cannot resolve to a single static value is skipped, never
// guessed, so every diagnostic is backed by a concrete static path.
// Deliberate exceptions are silenced in source with
//
//	//samoa:ignore <check>[,<check>...]    (or bare //samoa:ignore)
//
// on the flagged line or the line above it.
package analysis
