// Package analysis is samoa-vet: a stdlib-only static checker for the
// framework's microprotocol isolation and concurrency contracts.
//
// The runtime controllers (internal/cc) enforce the paper's isolation
// property against the Spec a computation *declares* — but nothing at
// runtime validates that the declaration itself is honest. An
// "isolated M e" whose computation reaches a microprotocol outside M is
// rejected only when that path actually executes; a handler annotated
// ReadOnly that writes state silently corrupts VCARW schedules; a
// synchronous Isolated inside a handler deadlocks only under the right
// interleaving. The same gap exists one layer down: the lock-free core
// documents its locking discipline ("written only under mu", "acquire
// spawnMu before mu") in prose that nothing checks. This package
// rejects both kinds of rot at build time.
//
// It is built directly on go/parser, go/ast and go/types (no
// golang.org/x/tools): a Loader type-checks module packages from
// source, model.go lifts each package into an abstract protocol model —
// event types, microprotocols, handlers, binding graph, Spec literals,
// Isolated roots — and eight Analyzer values walk that model (or the
// typed ASTs directly):
//
//	footprint   Isolated/External roots that transitively reach a
//	            handler of a microprotocol absent from the declared Spec
//	readonly    ReadOnly() handlers whose bodies write captured state
//	nestediso   synchronous Isolated/External inside a computation
//	            (the documented deadlock; use IsolatedAsync)
//	blocking    raw time.Sleep, channel ops, sync blocking or bare go
//	            statements inside handlers, controllers or transport
//	            pump goroutines, bypassing the sched.Blocker seam and
//	            hiding schedules from the explorer
//	routecycle  cycles in core.Route graph literals (legal, but they
//	            disable VCAroute's early release — worth knowing)
//	lockorder   lock-order inversions: two mutexes acquired in opposite
//	            orders on different static paths (interprocedural over
//	            static callees; the for-range-over-lockOrder idiom is
//	            recognized as ordered by construction)
//	atomics     mixed atomic/plain access to the same struct field, and
//	            violations of a declared //samoa:guard <mu> protocol:
//	            atomic loads stay lock-free, but mutations and plain
//	            accesses must hold the guard (or live in a *Locked
//	            helper); also CAS retry loops whose compare value is
//	            re-read non-atomically
//	ignores     audits every //samoa:ignore: it must carry a rationale
//	            after an em-dash, name only known checks, and still
//	            suppress a live finding — stale suppressions are flagged
//	            for deletion
//
// All value tracking is conservative: a Spec, event type, handler or
// lock identity the extractor cannot resolve to a single static value
// is skipped, never guessed, so every diagnostic is backed by a
// concrete static path. Deliberate exceptions are silenced in source
// with
//
//	//samoa:ignore <check>[,<check>...] — rationale
//
// on the flagged line or the line above it; the rationale (after an
// em-dash or "--") is mandatory, enforced by the ignores check. Field
// locking protocols are declared next to the field with
//
//	//samoa:guard <mutexFieldName> — optional note
//
// naming a sibling sync.Mutex/RWMutex field, which turns the comment
// from documentation into a checked contract.
package analysis
