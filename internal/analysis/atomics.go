package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicsAnalyzer checks struct fields that participate in atomic
// publication protocols. A field annotated
//
//	lv atomic.Uint64 //samoa:guard mu — written only under mu
//
// declares the contract internal/cc/version.go used to state in prose:
// atomic loads are free, but atomic mutations and every plain access
// must happen with the named sibling mutex held (a function that takes
// the lock itself, or one following the *Locked naming convention). A
// field with both atomic.* and plain accesses but no guard annotation
// is the mixed-access race smell and is flagged at each plain site.
// Plain re-reads of a CompareAndSwap target inside its retry loop are
// flagged specifically: the compare value must come from the atomic
// load or the CAS can succeed against a stale read.
var AtomicsAnalyzer = &Analyzer{
	Name: "atomics",
	Doc:  "atomic fields: guard contracts, mixed atomic/plain access, CAS retry re-reads",
	Run:  runAtomics,
}

// guardSpec is one //samoa:guard annotation, resolved to objects.
type guardSpec struct {
	field     *types.Var
	guardName string
	guard     *types.Var // the sibling mutex field (nil if unresolved)
	owner     string     // struct type name, for diagnostics
	pos       token.Pos  // the annotated field, for bad-annotation reports
}

// fieldAccess is one occurrence of a tracked field in source.
type fieldAccess struct {
	field  *types.Var
	sel    *ast.SelectorExpr
	base   types.Object // receiver object ("st" in st.lv), nil if unresolved
	fn     *FuncNode    // innermost enclosing function (nil at package level)
	loop   ast.Node     // innermost enclosing for/range statement, if any
	atomic bool         // via an atomic.* operation
	mutate bool         // store/add/swap/CAS rather than load
	cas    bool         // a CompareAndSwap specifically
}

func runAtomics(pass *Pass) {
	guards := collectGuards(pass)
	for _, g := range guards {
		if g.guard == nil {
			pass.Reportf(g.pos, "//samoa:guard names %q, but %s has no sibling sync.Mutex/RWMutex field of that name", g.guardName, g.owner)
		}
	}

	accesses := collectFieldAccesses(pass, guards)

	// Partition per field.
	byField := map[*types.Var][]*fieldAccess{}
	for _, a := range accesses {
		byField[a.field] = append(byField[a.field], a)
	}
	fields := make([]*types.Var, 0, len(byField))
	for f := range byField {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })

	guardOf := map[*types.Var]*guardSpec{}
	for _, g := range guards {
		guardOf[g.field] = g
	}

	for _, f := range fields {
		as := byField[f]
		// CAS retry loops first: a plain read of the CAS target in the
		// same loop is the sharpest finding and wins over the generic
		// mixed-access report at the same site.
		casLoops := map[ast.Node]bool{}
		for _, a := range as {
			if a.cas && a.loop != nil {
				casLoops[a.loop] = true
			}
		}
		casFlagged := map[*fieldAccess]bool{}
		for _, a := range as {
			if !a.atomic && a.loop != nil && casLoops[a.loop] {
				pass.Reportf(a.sel.Pos(), "CAS retry loop re-reads %s non-atomically — the compare value can be stale; use the atomic load", fieldName(f, a))
				casFlagged[a] = true
			}
		}

		if g := guardOf[f]; g != nil && g.guard != nil {
			// Annotated field: enforce the declared contract.
			for _, a := range as {
				if casFlagged[a] {
					continue
				}
				if a.atomic && !a.mutate {
					continue // lock-free reads are the point of the protocol
				}
				if holdsGuard(pass.Model, a, g.guard) {
					continue
				}
				what := "plain access to"
				if a.atomic {
					what = "atomic mutation of"
				}
				pass.Reportf(a.sel.Pos(), "%s %s outside its //samoa:guard %s contract — take %s or move the access into a *Locked helper",
					what, fieldName(f, a), g.guardName, g.guardName)
			}
			continue
		}

		// Unannotated field: mixed atomic and plain access is the race
		// smell — flag the plain sites.
		hasAtomic := false
		for _, a := range as {
			if a.atomic {
				hasAtomic = true
				break
			}
		}
		if !hasAtomic {
			continue
		}
		for _, a := range as {
			if a.atomic || casFlagged[a] {
				continue
			}
			pass.Reportf(a.sel.Pos(), "%s is accessed atomically elsewhere but plainly here — mixed atomic/plain access races; declare the protocol with //samoa:guard or use atomic ops", fieldName(f, a))
		}
	}
}

// fieldName renders a field for diagnostics, preferring the source
// receiver text.
func fieldName(f *types.Var, a *fieldAccess) string {
	if a != nil && a.sel != nil {
		return exprString(nil, a.sel)
	}
	return f.Name()
}

// collectGuards parses //samoa:guard annotations off struct field doc
// and line comments, resolving the named guard to a sibling mutex
// field.
func collectGuards(pass *Pass) []*guardSpec {
	info := pass.TypesInfo()
	var out []*guardSpec
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// Resolve sibling mutex fields up front.
			mutexes := map[string]*types.Var{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if v, ok := info.Defs[name].(*types.Var); ok && isMutexType(v.Type()) {
						mutexes[name.Name] = v
					}
				}
			}
			for _, fld := range st.Fields.List {
				guardName := guardAnnotation(fld)
				if guardName == "" || len(fld.Names) == 0 {
					continue
				}
				for _, name := range fld.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					out = append(out, &guardSpec{
						field:     v,
						guardName: guardName,
						guard:     mutexes[guardName],
						owner:     ts.Name.Name,
						pos:       name.Pos(),
					})
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's
// //samoa:guard comment (doc comment above or line comment after).
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//samoa:guard")
			if !ok {
				continue
			}
			if cut, _, found := strings.Cut(rest, "—"); found {
				rest = cut
			} else if cut, _, found := strings.Cut(rest, "--"); found {
				rest = cut
			}
			if name := strings.TrimSpace(rest); name != "" {
				return name
			}
		}
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// atomicTypeNames are the sync/atomic wrapper types whose methods this
// check classifies.
var atomicMutators = map[string]bool{
	"Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// collectFieldAccesses walks every function body, recording each use of
// a struct field that is either guard-annotated or accessed via
// sync/atomic anywhere in the package.
func collectFieldAccesses(pass *Pass, guards []*guardSpec) []*fieldAccess {
	m := pass.Model
	info := pass.TypesInfo()
	annotated := map[*types.Var]bool{}
	for _, g := range guards {
		annotated[g.field] = true
	}

	// First pass: find atomically-accessed fields, and remember the
	// selector nodes that *are* the atomic operation so the plain-access
	// pass does not double-count them.
	atomicNodes := map[*ast.SelectorExpr]*fieldAccess{}
	atomicFields := map[*types.Var]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := m.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			var target ast.Expr
			var op string
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Typed atomics: st.lv.Store(x).
				op = fn.Name()
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					target = sel.X
				}
			} else {
				// Legacy form: atomic.StoreUint64(&st.lv, x).
				op = fn.Name()
				for _, prefix := range []string{"CompareAndSwap", "Store", "Swap", "Add", "Load", "Or", "And"} {
					if strings.HasPrefix(op, prefix) {
						op = prefix
						break
					}
				}
				if len(call.Args) > 0 {
					if un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
						target = un.X
					}
				}
			}
			sel, ok := ast.Unparen(target).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			atomicFields[v] = true
			atomicNodes[sel] = &fieldAccess{
				field:  v,
				sel:    sel,
				base:   m.objOf(sel.X),
				atomic: true,
				mutate: atomicMutators[op],
				cas:    op == "CompareAndSwap",
			}
			return true
		})
	}

	tracked := func(v *types.Var) bool { return annotated[v] || atomicFields[v] }

	// Second pass: walk each function body, attributing every tracked
	// selector to its innermost function and loop. Package-level
	// initializers and composite-literal keys never appear as selector
	// uses, so construction-time writes are exempt by shape.
	var out []*fieldAccess
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				collectInFunc(m, info, &FuncNode{Decl: fd}, tracked, atomicNodes, &out)
			}
		}
	}
	return out
}

// collectInFunc records tracked-field accesses in one function body,
// recursing into nested function literals with their own context.
func collectInFunc(m *Model, info *types.Info, fn *FuncNode, tracked func(*types.Var) bool, atomicNodes map[*ast.SelectorExpr]*fieldAccess, out *[]*fieldAccess) {
	var loops []ast.Node
	var stack []ast.Node
	ast.Inspect(fn.BodyOf(), func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = loops[:len(loops)-1]
			}
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if fn.Lit != n {
				collectInFunc(m, info, &FuncNode{Lit: n}, tracked, atomicNodes, out)
				return false
			}
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.SelectorExpr:
			var loop ast.Node
			if len(loops) > 0 {
				loop = loops[len(loops)-1]
			}
			if a, ok := atomicNodes[n]; ok {
				a.fn, a.loop = fn, loop
				*out = append(*out, a)
				// The receiver inside the atomic op must not also count
				// as a plain access.
				return false
			}
			if v, ok := info.Uses[n.Sel].(*types.Var); ok && v.IsField() && tracked(v) {
				*out = append(*out, &fieldAccess{
					field: v,
					sel:   n,
					base:  m.objOf(n.X),
					fn:    fn,
					loop:  loop,
				})
			}
		}
		stack = append(stack, n)
		return true
	})
}

// holdsGuard reports whether the access happens with its guard held:
// the innermost function follows the *Locked convention, or its body
// (outside nested literals) takes the same guard on a compatible base.
// Receiver matching is lenient — an unresolvable base on either side is
// accepted, so only provable violations are reported.
func holdsGuard(m *Model, a *fieldAccess, guard *types.Var) bool {
	if a.fn == nil {
		return true // package-level initialization precedes sharing
	}
	if a.fn.Decl != nil && strings.HasSuffix(a.fn.Decl.Name.Name, "Locked") {
		return true
	}
	held := false
	ast.Inspect(a.fn.BodyOf(), func(n ast.Node) bool {
		if held {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if a.fn.Lit != n {
				return false // a closure's lock is its own, not ours
			}
		case *ast.CallExpr:
			fn := m.calleeFunc(n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return true
			}
			if name := fn.Name(); name != "Lock" && name != "RLock" {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if m.objOf(sel.X) != guard {
				return true
			}
			var lockBase types.Object
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				lockBase = m.objOf(inner.X)
			}
			if lockBase == nil || a.base == nil || lockBase == a.base {
				held = true
			}
		}
		return true
	})
	return held
}
