package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// FootprintAnalyzer checks footprint soundness: a computation spawned
// with a literal Spec must not statically reach a handler of a
// microprotocol absent from the declared set M. Reachability follows
// the binding graph through Trigger/TriggerAll/AsyncTrigger/
// AsyncTriggerAll and Fork chains, descending into same-package helper
// functions with caller-argument bindings so events passed as
// parameters still resolve. Unresolvable specs, events or handler
// bodies make the traversal incomplete — never a finding.
var FootprintAnalyzer = &Analyzer{
	Name: "footprint",
	Doc:  "isolated computations must declare every microprotocol they can reach",
	Run:  runFootprint,
}

func runFootprint(pass *Pass) {
	m := pass.Model
	for _, site := range m.IsoSites {
		if site.Spec == nil || !site.Spec.SpecComplete {
			continue
		}
		declared := map[*Val]bool{}
		for _, mp := range site.Spec.SpecMPs {
			declared[mp] = true
		}
		tr := &footprintWalk{m: m, stack: site.Stack, handlers: map[*Val]bool{}, visited: map[ast.Node]bool{}}
		switch site.Method {
		case "External", "ExternalAll":
			if site.Event == nil {
				continue
			}
			tr.triggerEvent(site.Event)
		case "Isolated", "IsolatedAsync":
			if site.Root == nil {
				continue
			}
			tr.walkFunc(site.Root, nil)
		}
		reached := make([]*Val, 0, len(tr.handlers))
		for h := range tr.handlers {
			reached = append(reached, h)
		}
		sort.Slice(reached, func(i, j int) bool { return posOf(reached[i]) < posOf(reached[j]) })
		for _, h := range reached {
			if h.MP != nil && !declared[h.MP] {
				pass.Reportf(site.Call.Pos(),
					"computation reaches handler %s but microprotocol %s is not in its declared spec %s — the controller will reject the call at runtime",
					h, h.MP, site.Spec.MPNames())
			}
		}
	}
}

// footprintWalk computes the handler closure of one computation root.
type footprintWalk struct {
	m        *Model
	stack    *Val
	handlers map[*Val]bool
	visited  map[ast.Node]bool
}

// triggerEvent adds every handler bound to ev (on a compatible stack)
// and recurses into their bodies.
func (t *footprintWalk) triggerEvent(ev *Val) {
	hs, _ := t.m.BoundHandlers(t.stack, ev)
	for _, h := range hs {
		if t.handlers[h] {
			continue
		}
		t.handlers[h] = true
		if h.Body != nil {
			t.walkFunc(h.Body, nil)
		}
	}
}

// walkFunc scans one function for trigger calls, descending into Fork
// closures (inside the node already) and same-package callees with the
// call's arguments chased into an overlay environment, so helpers that
// take an event type or spec as a parameter stay resolvable.
func (t *footprintWalk) walkFunc(fn *FuncNode, overlay map[types.Object]*Val) {
	if fn == nil || fn.BodyOf() == nil || t.visited[fn.NodeOf()] {
		return
	}
	t.visited[fn.NodeOf()] = true
	type pendingCall struct {
		fn      *FuncNode
		overlay map[types.Object]*Val
	}
	var queue []pendingCall
	ast.Inspect(fn.BodyOf(), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, isCore := coreFunc(t.m.calleeFunc(call))
		if isCore && recv == "Context" {
			switch name {
			case "Trigger", "TriggerAll", "AsyncTrigger", "AsyncTriggerAll":
				if len(call.Args) > 0 {
					if ev := t.m.chase(call.Args[0], overlay); ev != nil && ev.Kind == KEvent {
						t.triggerEvent(ev)
					}
				}
			case "Fork":
				if len(call.Args) > 0 {
					// The closure is inside this body and already
					// walked; a named function gets descended into.
					if callee := t.m.funcNodeOf(call.Args[0]); callee != nil && callee.Lit == nil {
						queue = append(queue, pendingCall{fn: callee})
					}
				}
			}
			return true
		}
		if isCore && recv == "Stack" {
			// External/Isolated inside the computation spawn a *new*
			// computation with its own spec: not part of this footprint
			// (and nestediso flags the synchronous ones). Skip the whole
			// subtree so a nested root closure is not attributed here.
			return false
		}
		if callee := t.m.StaticCallee(call); callee != nil && callee.Lit == nil {
			queue = append(queue, pendingCall{fn: callee, overlay: t.argOverlay(call, callee, overlay)})
		}
		return true
	})
	for _, pc := range queue {
		t.walkFunc(pc.fn, pc.overlay)
	}
}

// argOverlay binds a callee's parameters to the abstract values of the
// call's arguments, where they resolve.
func (t *footprintWalk) argOverlay(call *ast.CallExpr, callee *FuncNode, outer map[types.Object]*Val) map[types.Object]*Val {
	params := callee.TypeOf().Params
	if params == nil || call.Ellipsis.IsValid() {
		return nil
	}
	var paramObjs []types.Object
	for _, field := range params.List {
		for _, name := range field.Names {
			paramObjs = append(paramObjs, t.m.Pkg.Info.Defs[name])
		}
	}
	if len(paramObjs) != len(call.Args) {
		return nil
	}
	var overlay map[types.Object]*Val
	for i, arg := range call.Args {
		if v := t.m.chase(arg, outer); v != nil && paramObjs[i] != nil {
			if overlay == nil {
				overlay = map[types.Object]*Val{}
			}
			overlay[paramObjs[i]] = v
		}
	}
	return overlay
}
