package analysis

import "strings"

// IgnoresAnalyzer audits the //samoa:ignore directives themselves, so
// dogfood suppressions cannot rot: every directive must carry a
// rationale after a "—" (or "--") separator, name only checks that
// exist, and still be *live* — the named check must report at the
// covered lines when suppression is disabled. A directive that fails
// gets exactly one finding (rationale > unknown name > stale), and the
// findings here deliberately bypass suppression: a directive cannot
// silence its own audit.
var IgnoresAnalyzer = &Analyzer{
	Name: "ignores",
	Doc:  "//samoa:ignore needs a rationale, a known check, and a live finding",
}

// runIgnores is wired in init: it re-runs All() with suppression off,
// and a package-level reference back to All would be an initialization
// cycle.
func init() { IgnoresAnalyzer.Run = runIgnores }

func runIgnores(pass *Pass) {
	if len(pass.Pkg.Directives) == 0 {
		return
	}
	pass.noSuppress = true

	known := map[string]bool{"all": true}
	for _, name := range CheckNames() {
		known[name] = true
	}

	// Raw findings: every other analyzer, suppression off, against the
	// already-extracted model. raw[check][file][line] counts findings.
	raw := map[string]map[string]map[int]int{}
	var diags []Diagnostic
	for _, a := range All() {
		if a.Name == IgnoresAnalyzer.Name {
			continue
		}
		sub := &Pass{Analyzer: a, Pkg: pass.Pkg, Model: pass.Model, diags: &diags, noSuppress: true}
		a.Run(sub)
	}
	for _, d := range diags {
		if raw[d.Check] == nil {
			raw[d.Check] = map[string]map[int]int{}
		}
		if raw[d.Check][d.File] == nil {
			raw[d.Check][d.File] = map[int]int{}
		}
		raw[d.Check][d.File][d.Line]++
	}
	live := func(check, file string, line int) bool {
		// A directive covers its own line and the line below — the same
		// window suppressed() honors.
		for _, l := range []int{line, line + 1} {
			if check == "all" {
				for _, perFile := range raw {
					if perFile[file][l] > 0 {
						return true
					}
				}
			} else if raw[check][file][l] > 0 {
				return true
			}
		}
		return false
	}

	for _, d := range pass.Pkg.Directives {
		if d.Rationale == "" {
			pass.Reportf(d.Pos, "//samoa:ignore directive has no rationale — add one after an em-dash: //samoa:ignore %s — why this is safe", strings.Join(d.Checks, ","))
			continue
		}
		reported := false
		for _, check := range d.Checks {
			if !known[check] {
				pass.Reportf(d.Pos, "//samoa:ignore names unknown check %q (have %s)", check, strings.Join(CheckNames(), ", "))
				reported = true
				break
			}
		}
		if reported {
			continue
		}
		for _, check := range d.Checks {
			if !live(check, d.File, d.Line) {
				if check == "all" {
					pass.Reportf(d.Pos, "stale //samoa:ignore: no check reports anything at the covered lines — delete the directive")
				} else {
					pass.Reportf(d.Pos, "stale //samoa:ignore: %s no longer reports anything at the covered lines — delete the directive", check)
				}
				break
			}
		}
	}
}
