package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package: the unit every
// analyzer runs over.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// Directives are every //samoa:ignore in the package, in file then
	// source order — the ignores analyzer audits these.
	Directives []*Directive

	ignores map[string]map[int][]string // filename → line → suppressed checks
}

// Loader parses and type-checks module packages from source using only
// the standard library: imports inside the module are resolved against
// the module root (recursively, cached), anything else is delegated to
// go/importer's source importer, which handles GOROOT packages. One
// Loader shares a FileSet and package cache across every Load call.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	ctxt    build.Context
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module containing dir, located by
// walking up to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("samoa-vet: no go.mod found above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("samoa-vet: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		ctxt:       ctxt,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Expand resolves package patterns — "./internal/...", "./examples",
// "sub/dir" — into package directories relative to the module root, in
// sorted order. A "..." suffix walks the tree; directories named
// testdata, hidden directories, and directories without buildable
// non-test Go files are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if bp, err := l.ctxt.ImportDir(dir, 0); err == nil && len(bp.GoFiles) > 0 && !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			pat = "."
		}
		base := filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))
		if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("samoa-vet: no such package directory %s", base)
		}
		if !rec {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathOf maps a directory under the module root to its import path.
func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("samoa-vet: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks the package in dir (which must be under
// the module root), returning the cached result on repeat loads.
func (l *Loader) Load(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathOf(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("samoa-vet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("samoa-vet: %s: %v", dir, err)
	}
	var files []*ast.File
	var directives []*Directive
	ignores := map[string]map[int][]string{}
	for _, name := range bp.GoFiles {
		filename := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, filename, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		lines := map[int][]string{}
		for _, d := range ignoreDirectives(l.Fset, f) {
			directives = append(directives, d)
			lines[d.Line] = append(lines[d.Line], d.Checks...)
		}
		ignores[filename] = lines
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("samoa-vet: %v", err)
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: path,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Directives: directives,
		ignores:    ignores,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter routes module-internal import paths back through the
// Loader and everything else to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
