package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BlockingAnalyzer checks for explorability escapes: scheduling points
// the deterministic explorer (internal/sched) cannot see. Inside
// computation contexts (handler bodies, Fork closures, isolated roots)
// and inside methods of types implementing core.Controller, raw
// time.Sleep, channel operations, select, sync.Mutex/RWMutex locking,
// sync.WaitGroup/Cond waits and bare go statements all block or spawn
// outside the sched.Blocker/Hook seam, hiding schedules from
// cctest.Explore. Controllers should block through sched.Blocker
// waiters; handlers should use Fork and let the controller schedule.
// Short mutex critical sections inside controllers are exempt — the
// seam is about *waiting*, and controllers guard their own bookkeeping.
var BlockingAnalyzer = &Analyzer{
	Name: "blocking",
	Doc:  "handlers and controllers must not block outside the sched.Blocker seam",
	Run:  runBlocking,
}

func runBlocking(pass *Pass) {
	m := pass.Model
	visited := map[ast.Node]bool{}
	for _, cc := range m.ComputationContexts() {
		label := cc.Label
		m.WalkReachable(cc.Fn, visited, func(n ast.Node, _ *FuncNode) {
			reportBlocking(pass, n, label, false)
		})
	}
	ctrlVisited := map[ast.Node]bool{}
	for _, ctrl := range controllerMethods(m) {
		label := ctrl.label
		m.WalkReachable(ctrl.fn, ctrlVisited, func(n ast.Node, _ *FuncNode) {
			reportBlocking(pass, n, label, true)
		})
	}
	pumpVisited := map[ast.Node]bool{}
	for _, pump := range transportPumps(m) {
		label := pump.label
		m.WalkReachable(pump.fn, pumpVisited, func(n ast.Node, _ *FuncNode) {
			reportBlocking(pass, n, label, true)
		})
	}
}

// reportBlocking flags one AST node if it is a raw scheduling point.
// Inside controllers, plain mutex locking is allowed.
func reportBlocking(pass *Pass, n ast.Node, label string, inController bool) {
	m := pass.Model
	switch n := n.(type) {
	case *ast.SendStmt:
		pass.Reportf(n.Pos(), "raw channel send inside %s is invisible to the schedule explorer — block through sched.Blocker", label)
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			pass.Reportf(n.Pos(), "raw channel receive inside %s is invisible to the schedule explorer — block through sched.Blocker", label)
		}
	case *ast.SelectStmt:
		pass.Reportf(n.Pos(), "select inside %s is invisible to the schedule explorer — block through sched.Blocker", label)
	case *ast.RangeStmt:
		if t := m.Pkg.Info.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				pass.Reportf(n.Pos(), "ranging over a channel inside %s is invisible to the schedule explorer — block through sched.Blocker", label)
			}
		}
	case *ast.GoStmt:
		pass.Reportf(n.Pos(), "bare go statement inside %s bypasses Fork, so the explorer and the computation's join never see the task", label)
	case *ast.CallExpr:
		fn := m.calleeFunc(n)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path == "time" && fn.Name() == "Sleep" {
			pass.Reportf(n.Pos(), "time.Sleep inside %s stalls real time the explorer cannot virtualize — yield through the controller instead", label)
			return
		}
		if path != "sync" {
			return
		}
		recv := recvTypeName(fn)
		switch {
		case recv == "WaitGroup" && fn.Name() == "Wait",
			recv == "Cond" && fn.Name() == "Wait":
			pass.Reportf(n.Pos(), "sync.%s.%s inside %s is a blocking point the schedule explorer cannot order — use a sched.Blocker waiter", recv, fn.Name(), label)
		case (recv == "Mutex" || recv == "RWMutex") && (fn.Name() == "Lock" || fn.Name() == "RLock"):
			if !inController {
				pass.Reportf(n.Pos(), "sync.%s.%s inside %s hand-rolls synchronization the controller already provides and hides the blocking from the explorer", recv, fn.Name(), label)
			}
		}
	}
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if n, isNamed := t.(*types.Named); isNamed {
		return n.Obj().Name()
	}
	return ""
}

type ctrlMethod struct {
	fn    *FuncNode
	label string
}

// controllerMethods finds the methods of every package-level type that
// implements core.Controller — the per-stack schedulers whose blocking
// must route through sched.Blocker to stay explorable.
func controllerMethods(m *Model) []ctrlMethod {
	iface := controllerInterface(m.Pkg.Types)
	if iface == nil {
		return nil
	}
	var out []ctrlMethod
	scope := m.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if decl := m.funcDecls[named.Method(i)]; decl != nil && decl.Body != nil {
				out = append(out, ctrlMethod{
					fn:    &FuncNode{Decl: decl},
					label: "controller " + name + "." + named.Method(i).Name(),
				})
			}
		}
	}
	return out
}

// transportPumps finds the goroutine pumps of transport backends: in a
// package whose concrete types implement transport.Transport or
// transport.Endpoint, every function launched by a go statement and
// every time.AfterFunc callback is pump code — the socket read loops
// and delayed-delivery timers that shuttle datagrams below the
// protocol stacks. Pumps may guard their bookkeeping with mutexes
// (like controllers), but sleeps, channel operations, selects and
// nested goroutines there must be deliberate: real-network pumps
// cannot block through sched.Blocker, so each such site either drains
// through a quit-checked pattern and carries a rationale'd
// //samoa:ignore, or is a bug.
func transportPumps(m *Model) []ctrlMethod {
	if !implementsTransport(m.Pkg.Types) {
		return nil
	}
	var out []ctrlMethod
	seen := map[ast.Node]bool{}
	add := func(fn *FuncNode, label string) {
		if fn == nil || fn.BodyOf() == nil || seen[fn.NodeOf()] {
			return
		}
		seen[fn.NodeOf()] = true
		out = append(out, ctrlMethod{fn: fn, label: label})
	}
	for _, f := range m.Pkg.Files {
		var encl []string // enclosing function-name stack for labels
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if _, ok := top.(*ast.FuncDecl); ok {
					encl = encl[:len(encl)-1]
				}
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.FuncDecl:
				encl = append(encl, n.Name.Name)
			case *ast.GoStmt:
				name := "goroutine"
				if len(encl) > 0 {
					name = "goroutine started by " + encl[len(encl)-1]
				}
				if fn := m.funcNodeOf(n.Call.Fun); fn != nil {
					if fn.Decl != nil {
						name = fn.Decl.Name.Name
					}
					add(fn, "transport pump "+name)
				}
			case *ast.CallExpr:
				fn := m.calleeFunc(n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "AfterFunc" || len(n.Args) < 2 {
					break
				}
				name := "timer"
				if len(encl) > 0 {
					name = "timer set by " + encl[len(encl)-1]
				}
				if cb := m.funcNodeOf(n.Args[1]); cb != nil {
					if cb.Decl != nil {
						name = cb.Decl.Name.Name
					}
					add(cb, "transport pump "+name)
				}
			}
			return true
		})
	}
	return out
}

// implementsTransport reports whether the package declares a concrete
// (non-interface) type implementing transport.Transport or
// transport.Endpoint.
func implementsTransport(pkg *types.Package) bool {
	var ifaces []*types.Interface
	lookup := func(p *types.Package) {
		if p == nil {
			return
		}
		if p.Path() != "internal/transport" && !strings.HasSuffix(p.Path(), "/internal/transport") {
			return
		}
		for _, name := range []string{"Transport", "Endpoint"} {
			if tn, ok := p.Scope().Lookup(name).(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					ifaces = append(ifaces, iface)
				}
			}
		}
	}
	lookup(pkg)
	for _, imp := range pkg.Imports() {
		lookup(imp)
	}
	if len(ifaces) == 0 {
		return false
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		for _, iface := range ifaces {
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				return true
			}
		}
	}
	return false
}

// controllerInterface locates core.Controller from the package itself
// or its imports; nil when the package never touches core.
func controllerInterface(pkg *types.Package) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		if p == nil {
			return nil
		}
		if p.Path() != "internal/core" && !strings.HasSuffix(p.Path(), "/internal/core") {
			return nil
		}
		tn, ok := p.Scope().Lookup("Controller").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := tn.Type().Underlying().(*types.Interface)
		return iface
	}
	if iface := lookup(pkg); iface != nil {
		return iface
	}
	for _, imp := range pkg.Imports() {
		if iface := lookup(imp); iface != nil {
			return iface
		}
	}
	return nil
}
