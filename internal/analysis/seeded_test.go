package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// seedCCMirror copies the ccmirror fixture with one mutation applied
// and runs the given analyzer over the copy, returning its findings.
// The copy lives under the module root so imports resolve, mirroring
// TestSeededRegressionCaught.
func seedCCMirror(t *testing.T, orig, mutated string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	src, err := os.ReadFile(filepath.Join(loader.ModuleRoot, "internal", "analysis", "testdata", "src", "ccmirror", "ccmirror.go"))
	if err != nil {
		t.Fatalf("read ccmirror: %v", err)
	}
	if !strings.Contains(string(src), orig) {
		t.Fatalf("ccmirror no longer contains %q; update this test's seed", orig)
	}
	seeded := strings.Replace(string(src), orig, mutated, 1)

	dir, err := os.MkdirTemp("testdata", "seeded-")
	if err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "ccmirror.go"), []byte(seeded), 0o644); err != nil {
		t.Fatalf("write seeded copy: %v", err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load seeded copy: %v", err)
	}
	return analysis.RunChecks(pkg, []*analysis.Analyzer{a})
}

// expectOnly asserts every diagnostic matches want and at least one was
// reported.
func expectOnly(t *testing.T, diags []analysis.Diagnostic, want *regexp.Regexp) {
	t.Helper()
	found := false
	for _, d := range diags {
		if want.MatchString(d.Message) {
			found = true
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !found {
		t.Errorf("seeded regression missed; got %d diagnostics", len(diags))
	}
}

// TestSeededLockOrderCaught swaps admit's canonical spawnMu→mu nesting:
// the inversion against publish's order must be reported.
func TestSeededLockOrderCaught(t *testing.T) {
	diags := seedCCMirror(t,
		"\tst.spawnMu.Lock()\n\tst.mu.Lock()",
		"\tst.mu.Lock()\n\tst.spawnMu.Lock()",
		analysis.LockOrderAnalyzer)
	expectOnly(t, diags, regexp.MustCompile(`acquires .* while holding .*opposite order — lock-order inversion`))
}

// TestSeededAtomicsCaught drops the //samoa:guard on applied: the plain
// write under mu plus the atomic read elsewhere becomes the undeclared
// mixed-access smell.
func TestSeededAtomicsCaught(t *testing.T) {
	diags := seedCCMirror(t,
		"\t//samoa:guard mu — written plainly under mu; read via atomic.LoadUint64\n\tapplied uint64",
		"\tapplied uint64",
		analysis.AtomicsAnalyzer)
	expectOnly(t, diags, regexp.MustCompile(`st\.applied is accessed atomically elsewhere but plainly here`))
}

// TestSeededIgnoresCaught plants a suppression over code that reports
// nothing: the staleness audit must reject it.
func TestSeededIgnoresCaught(t *testing.T) {
	diags := seedCCMirror(t,
		"// stats reads the published values lock-free.",
		"//samoa:ignore lockorder — seeded: nothing here for lockorder to report",
		analysis.IgnoresAnalyzer)
	expectOnly(t, diags, regexp.MustCompile(`stale //samoa:ignore: lockorder no longer reports anything`))
}
