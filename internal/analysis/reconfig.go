package analysis

import (
	"go/ast"
	"sort"
)

// ReconfigAnalyzer validates live-reconfiguration edits statically. A
// Stack.Reconfigure edit closure is executed under the stack's epoch
// lock and its validation failures surface only at runtime — when the
// swap is already racing live traffic. Three misuse patterns are
// decidable from the source alone:
//
//   - A Replace whose successor microprotocol does not register a
//     handler for every handler of its predecessor: Epoch.Replace
//     rewrites bindings by handler name and rejects the edit when a
//     bound one is missing, so the upgrade fails exactly when deployed.
//   - A Bind or Rebind, inside the same edit, to a handler of a
//     microprotocol the edit removes: Epoch.validate rejects bindings
//     into microprotocols absent from the new epoch.
//   - Two edit operations (Remove/Replace) targeting the same name in
//     one closure: the second always fails — the first already took the
//     name out of the epoch.
var ReconfigAnalyzer = &Analyzer{
	Name: "reconfig",
	Doc:  "Reconfigure edits must keep handler continuity across epochs",
	Run:  runReconfig,
}

// epochOp is one Epoch method call observed inside an edit closure.
type epochOp struct {
	call *ast.CallExpr
	name string // Epoch method name
}

func runReconfig(pass *Pass) {
	m := pass.Model

	// Microprotocol creation sites by constant name, for resolving the
	// predecessor of a Replace("name", next). Ambiguous names (two
	// creation sites) resolve to nothing — the check skips, not guesses.
	mpByName := map[string][]*Val{}
	for _, v := range m.sites {
		if v.Kind == KMP && v.Name != "" {
			mpByName[v.Name] = append(mpByName[v.Name], v)
		}
	}
	uniqueMP := func(name string) *Val {
		if vs := mpByName[name]; len(vs) == 1 {
			return vs[0]
		}
		return nil
	}

	for _, f := range m.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := coreFunc(m.calleeFunc(call))
			if !ok || recv != "Stack" {
				return true
			}
			editArg := -1
			switch name {
			case "Reconfigure":
				editArg = 0
			case "ReconfigureContext":
				editArg = 1
			default:
				return true
			}
			if editArg >= len(call.Args) {
				return true
			}
			if edit := m.funcNodeOf(call.Args[editArg]); edit != nil {
				checkEdit(pass, edit, uniqueMP)
			}
			return true
		})
	}
}

// checkEdit audits one edit closure (helpers it statically calls
// included) against the three decidable misuse patterns.
func checkEdit(pass *Pass, edit *FuncNode, uniqueMP func(string) *Val) {
	m := pass.Model
	var ops []epochOp
	m.WalkReachable(edit, map[ast.Node]bool{}, func(n ast.Node, _ *FuncNode) {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, name, ok := coreFunc(m.calleeFunc(call)); ok && recv == "Epoch" {
				ops = append(ops, epochOp{call: call, name: name})
			}
		}
	})

	// Replay the edit operations in source order, tracking which names
	// the epoch has lost so far. Order matters at runtime too: a Bind
	// before a Remove is stripped with the microprotocol (valid), a Bind
	// after it survives into validation and is rejected; a removed name
	// re-registered under a fresh identity (the fresh-slot idiom) is back
	// in the epoch from that point on.
	gone := map[string]*ast.CallExpr{}
	for _, op := range ops {
		switch op.name {
		case "Remove", "Replace":
			if len(op.call.Args) == 0 {
				continue
			}
			name, ok := m.strConst(op.call.Args[0])
			if !ok {
				continue
			}
			if first, dup := gone[name]; dup {
				pos := m.Pkg.Fset.Position(first.Pos())
				pass.Reportf(op.call.Pos(),
					"%s %q: the edit already took this name out of the epoch at line %d — the second operation always fails validation",
					op.name, name, pos.Line)
				continue
			}
			gone[name] = op.call
			if op.name == "Replace" && len(op.call.Args) > 1 {
				if next := m.chase(op.call.Args[1], nil); next != nil && next.Kind == KMP {
					if next.Name != "" {
						delete(gone, next.Name)
					}
					checkReplacement(pass, op.call, uniqueMP(name), next)
				}
			}
		case "Register":
			for _, a := range op.call.Args {
				if mp := m.chase(a, nil); mp != nil && mp.Kind == KMP && mp.Name != "" {
					delete(gone, mp.Name)
				}
			}
		case "Bind", "Rebind":
			if len(op.call.Args) < 2 {
				continue
			}
			for _, a := range op.call.Args[1:] {
				h := m.chase(a, nil)
				if h == nil || h.Kind != KHandler || h.MP == nil || h.MP.Name == "" {
					continue
				}
				if _, dropped := gone[h.MP.Name]; dropped {
					pass.Reportf(op.call.Pos(),
						"%s to handler %s, but this edit removes %q — the epoch fails validation with a binding into a missing microprotocol",
						op.name, h, h.MP.Name)
				}
			}
		}
	}
}

// checkReplacement enforces handler continuity: Epoch.Replace rewrites
// each binding of the predecessor to the successor's handler of the same
// name and rejects the edit when one is missing. Handlers the package
// never binds still count — a Replace deployed behind a Bind added later
// fails the same way, and the successor covering every predecessor
// handler is the documented upgrade contract.
func checkReplacement(pass *Pass, call *ast.CallExpr, old, next *Val) {
	if old == nil || old.Kind != KMP {
		return
	}
	var missing []string
	for hname := range old.MPHandlers {
		if next.MPHandlers[hname] == nil {
			missing = append(missing, hname)
		}
	}
	sort.Strings(missing)
	for _, hname := range missing {
		pass.Reportf(call.Pos(),
			"replacement %s has no handler %q: Replace rewrites %s's bindings by handler name and rejects the edit when one is missing",
			next, hname, old)
	}
}
