package dedupe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeqInOrder(t *testing.T) {
	d := &Seq{}
	for seq := uint64(1); seq <= 100; seq++ {
		if !d.Mark(seq) {
			t.Fatalf("seq %d reported duplicate", seq)
		}
		if d.Mark(seq) {
			t.Fatalf("seq %d not deduplicated", seq)
		}
	}
	if d.SparseLen() != 0 {
		t.Fatalf("in-order marking left %d sparse entries", d.SparseLen())
	}
}

func TestSeqOutOfOrderCompacts(t *testing.T) {
	d := &Seq{}
	for _, seq := range []uint64{3, 5, 2, 4} {
		if !d.Mark(seq) {
			t.Fatalf("seq %d reported duplicate", seq)
		}
	}
	if d.SparseLen() != 4 {
		t.Fatalf("sparse = %d before the gap fills", d.SparseLen())
	}
	if !d.Mark(1) { // fills the gap: everything compacts into low
		t.Fatal("seq 1 reported duplicate")
	}
	if d.SparseLen() != 0 {
		t.Fatalf("sparse = %d after compaction, want 0", d.SparseLen())
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if !d.Seen(seq) {
			t.Fatalf("seq %d lost by compaction", seq)
		}
	}
	if d.Seen(6) {
		t.Fatal("phantom seq 6")
	}
}

// TestSeqMatchesMapProperty: under any arrival permutation with
// duplicates, seqDedupe answers exactly like a plain map would, and ends
// fully compacted whenever the seen set is gap-free.
func TestSeqMatchesMapProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		seqs := make([]uint64, 0, 2*n)
		for i := 1; i <= n; i++ {
			seqs = append(seqs, uint64(i))
			if rng.Intn(3) == 0 {
				seqs = append(seqs, uint64(i)) // duplicate
			}
		}
		rng.Shuffle(len(seqs), func(i, j int) { seqs[i], seqs[j] = seqs[j], seqs[i] })

		d := &Seq{}
		ref := map[uint64]bool{}
		for _, s := range seqs {
			want := !ref[s]
			ref[s] = true
			if got := d.Mark(s); got != want {
				t.Errorf("seed %d: mark(%d) = %v, want %v", seed, s, got, want)
			}
		}
		for s := uint64(1); s <= uint64(n)+2; s++ {
			if d.Seen(s) != ref[s] {
				t.Errorf("seed %d: seen(%d) = %v, want %v", seed, s, d.Seen(s), ref[s])
			}
		}
		// All of 1..n marked ⇒ fully compacted.
		if d.SparseLen() != 0 {
			t.Errorf("seed %d: sparse = %d after gap-free history", seed, d.SparseLen())
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqGapStaysSparse(t *testing.T) {
	d := &Seq{}
	d.Mark(1)
	d.Mark(3) // 2 is missing (lost message): 3 must stay sparse
	if d.SparseLen() != 1 {
		t.Fatalf("sparse = %d", d.SparseLen())
	}
	if d.Seen(2) {
		t.Fatal("unseen gap reported seen")
	}
}
