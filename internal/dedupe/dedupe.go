// Package dedupe provides bounded-memory duplicate suppression for
// per-source sequence numbers: a high-water mark (every seq ≤ Low was
// seen) plus a sparse set for out-of-order arrivals above it. Because
// protocol sequence numbers are per-source counters starting at 1, the
// sparse set only ever holds reordering/loss gaps instead of the whole
// history — the "finite buffers" the paper's §3 alludes to, for dedupe
// state.
package dedupe

// Seq tracks seen sequence numbers from one source. The zero value is
// ready to use.
type Seq struct {
	low    uint64
	sparse map[uint64]bool
}

// Mark records seq as seen and reports whether it was new.
func (d *Seq) Mark(seq uint64) bool {
	if seq <= d.low || d.sparse[seq] {
		return false
	}
	if seq == d.low+1 {
		d.low = seq
		for d.sparse[d.low+1] {
			d.low++
			delete(d.sparse, d.low)
		}
		return true
	}
	if d.sparse == nil {
		d.sparse = make(map[uint64]bool)
	}
	d.sparse[seq] = true
	return true
}

// Seen reports whether seq was marked.
func (d *Seq) Seen(seq uint64) bool {
	return seq <= d.low || d.sparse[seq]
}

// Low reports the high-water mark: every seq ≤ Low was seen.
func (d *Seq) Low() uint64 { return d.low }

// SparseLen reports the number of out-of-order entries awaiting
// compaction.
func (d *Seq) SparseLen() int { return len(d.sparse) }
