package simnet_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestBasicDelivery(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2})
	defer n.Close()
	n.Send(0, 1, []byte("hi"))
	d, ok := n.Node(1).Recv()
	if !ok || string(d.Payload) != "hi" || d.From != 0 || d.To != 1 {
		t.Fatalf("recv = %+v ok=%v", d, ok)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPayloadCopied(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2})
	defer n.Close()
	buf := []byte("abc")
	n.Send(0, 1, buf)
	buf[0] = 'X'
	d, _ := n.Node(1).Recv()
	if string(d.Payload) != "abc" {
		t.Fatalf("payload aliased sender's buffer: %q", d.Payload)
	}
}

func TestSelfSend(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 1})
	defer n.Close()
	n.Node(0).Send(0, []byte("loop"))
	d, ok := n.Node(0).Recv()
	if !ok || string(d.Payload) != "loop" {
		t.Fatalf("self delivery failed: %+v %v", d, ok)
	}
}

func TestDelayDelaysDelivery(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2, MinDelay: 20 * time.Millisecond, MaxDelay: 30 * time.Millisecond, Seed: 1})
	defer n.Close()
	start := time.Now()
	n.Send(0, 1, []byte("x"))
	if _, ok := n.Node(1).TryRecv(); ok {
		t.Fatal("message arrived instantly despite delay")
	}
	if _, ok := n.Node(1).Recv(); !ok {
		t.Fatal("no delivery")
	}
	if e := time.Since(start); e < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want ≥ ~20ms", e)
	}
}

func TestLossDropsRoughlyAtRate(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2, LossProb: 0.5, Seed: 42})
	defer n.Close()
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(0, 1, []byte{byte(i)})
	}
	st := n.Stats()
	if st.DroppedLoss == 0 || st.Delivered == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DroppedLoss+st.Delivered != total {
		t.Fatalf("accounting: %+v", st)
	}
	rate := float64(st.DroppedLoss) / total
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("loss rate = %.2f, want ≈ 0.5", rate)
	}
}

func TestCorruptionFlipsOneByte(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2, CorruptProb: 1.0, Seed: 9})
	defer n.Close()
	orig := []byte{1, 2, 3, 4}
	n.Send(0, 1, orig)
	d, ok := n.Node(1).Recv()
	if !ok {
		t.Fatal("no delivery")
	}
	diff := 0
	for i := range orig {
		if d.Payload[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if n.Stats().Corrupted != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

func TestNoCorruptionByDefault(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2, Seed: 9})
	defer n.Close()
	for i := 0; i < 50; i++ {
		n.Send(0, 1, []byte{0xAA})
		d, _ := n.Node(1).Recv()
		if d.Payload[0] != 0xAA {
			t.Fatal("corruption without CorruptProb")
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() uint64 {
		n := simnet.New(simnet.Config{Nodes: 2, LossProb: 0.3, Seed: 7})
		defer n.Close()
		for i := 0; i < 500; i++ {
			n.Send(0, 1, []byte{1})
		}
		return n.Stats().DroppedLoss
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different drops: %d vs %d", a, b)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2})
	defer n.Close()
	n.Crash(1)
	if !n.Crashed(1) || n.Crashed(0) {
		t.Fatal("crash state wrong")
	}
	n.Send(0, 1, []byte("x"))
	if _, ok := n.Node(1).Recv(); ok {
		t.Fatal("crashed node received a message")
	}
	st := n.Stats()
	if st.DroppedCrashed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Sends *from* a crashed node are dropped too.
	n.Send(1, 0, []byte("y"))
	if _, ok := n.Node(0).TryRecv(); ok {
		t.Fatal("message from crashed node delivered")
	}
}

func TestCrashUnblocksReceiver(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 1})
	defer n.Close()
	done := make(chan bool)
	go func() {
		_, ok := n.Node(0).Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	n.Crash(0)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv should report closure")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on crash")
	}
}

func TestRestartRevivesNode(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2})
	defer n.Close()
	n.Crash(1)
	n.Send(0, 1, []byte("lost")) // sent during the outage: stays dropped
	if !n.Restart(1) {
		t.Fatal("Restart refused a crashed node")
	}
	if n.Crashed(1) {
		t.Fatal("node still marked crashed after restart")
	}
	if _, ok := n.Node(1).TryRecv(); ok {
		t.Fatal("restarted node inherited a message sent while it was down")
	}
	n.Send(0, 1, []byte("back"))
	if d, ok := n.Node(1).Recv(); !ok || string(d.Payload) != "back" {
		t.Fatalf("post-restart delivery failed: %+v %v", d, ok)
	}
	st := n.Stats()
	if st.Recovered != 1 || st.DroppedCrashed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRestartDiscardsQueuedInbox(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2})
	defer n.Close()
	n.Send(0, 1, []byte("queued")) // delivered but never read
	n.Crash(1)
	n.Restart(1)
	if _, ok := n.Node(1).TryRecv(); ok {
		t.Fatal("restart must start from an empty inbox")
	}
}

func TestRestartRefusals(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2})
	if n.Restart(0) {
		t.Fatal("Restart of a live node must refuse")
	}
	n.Crash(0)
	n.Close()
	if n.Restart(0) {
		t.Fatal("Restart after Close must refuse")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 4})
	defer n.Close()
	n.Partition([]simnet.NodeID{0, 1}, []simnet.NodeID{2, 3})
	n.Send(0, 2, []byte("x")) // across partition: dropped
	n.Send(0, 1, []byte("y")) // within group: delivered
	if d, ok := n.Node(1).Recv(); !ok || string(d.Payload) != "y" {
		t.Fatal("intra-group delivery failed")
	}
	if _, ok := n.Node(2).TryRecv(); ok {
		t.Fatal("cross-partition delivery")
	}
	if st := n.Stats(); st.DroppedPartition != 1 {
		t.Fatalf("stats = %+v", st)
	}
	n.Heal()
	n.Send(0, 2, []byte("z"))
	if d, ok := n.Node(2).Recv(); !ok || string(d.Payload) != "z" {
		t.Fatal("post-heal delivery failed")
	}
}

func TestUnlistedNodesShareImplicitGroup(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 4})
	defer n.Close()
	n.Partition([]simnet.NodeID{0}) // 1,2,3 in implicit group 0
	n.Send(1, 2, []byte("x"))
	if _, ok := n.Node(2).Recv(); !ok {
		t.Fatal("unlisted nodes must still talk to each other")
	}
	n.Send(0, 1, []byte("y"))
	if _, ok := n.Node(1).TryRecv(); ok {
		t.Fatal("isolated node leaked a message")
	}
}

func TestInboxOverflow(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2, InboxSize: 4})
	defer n.Close()
	for i := 0; i < 10; i++ {
		n.Send(0, 1, []byte{byte(i)})
	}
	st := n.Stats()
	if st.DroppedOverflow != 6 || st.Delivered != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCloseIdempotentAndDropsSends(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 2})
	n.Close()
	n.Close()
	n.Send(0, 1, []byte("x"))
	if _, ok := n.Node(1).Recv(); ok {
		t.Fatal("send after close delivered")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	simnet.New(simnet.Config{Nodes: 0})
}

func TestConcurrentSendersAndReceivers(t *testing.T) {
	n := simnet.New(simnet.Config{Nodes: 4, MinDelay: time.Microsecond, MaxDelay: 100 * time.Microsecond, Seed: 3})
	defer n.Close()
	const perPair = 100
	var wg sync.WaitGroup
	for from := 0; from < 4; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < perPair; i++ {
				for to := 0; to < 4; to++ {
					n.Send(simnet.NodeID(from), simnet.NodeID(to), []byte{byte(i)})
				}
			}
		}(from)
	}
	var rg sync.WaitGroup
	counts := make([]int, 4)
	for to := 0; to < 4; to++ {
		rg.Add(1)
		go func(to int) {
			defer rg.Done()
			for {
				if _, ok := n.Node(simnet.NodeID(to)).Recv(); !ok {
					return
				}
				counts[to]++
				if counts[to] == 4*perPair {
					return
				}
			}
		}(to)
	}
	wg.Wait()
	done := make(chan struct{})
	go func() { rg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("receivers stuck; counts = %v, stats = %+v", counts, n.Stats())
	}
	for to, c := range counts {
		if c != 4*perPair {
			t.Fatalf("node %d received %d, want %d", to, c, 4*perPair)
		}
	}
}
