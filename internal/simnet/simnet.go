// Package simnet is an in-memory message-passing network used as the
// substrate for the group-communication experiments.
//
// The paper evaluated J-SAMOA "on distributed machines" (§7); this package
// substitutes them with N in-process nodes connected by unreliable,
// delaying links. The properties the protocols under test care about —
// loss (to exercise retransmission), delay (to exercise timeouts and
// suspicion), crashes, restarts and partitions (to exercise membership
// and recovery) — are all configurable, and the random choices come from
// a seeded generator so runs are reproducible.
//
// simnet is the deterministic-test backend of the transport seam: it
// implements transport.Transport (every node hosted in-process) and
// transport.Partitioner, and is held to the shared behavioral contract
// by internal/transport/conformance. The production backend over real
// sockets is internal/transport/udpnet.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// NodeID identifies a node; IDs are 0..Nodes-1.
type NodeID = transport.NodeID

// Config describes a network.
type Config struct {
	// Nodes is the number of nodes.
	Nodes int
	// MinDelay and MaxDelay bound the per-message one-way latency; a
	// message's delay is uniform in [MinDelay, MaxDelay]. Both zero
	// means immediate in-line delivery.
	MinDelay, MaxDelay time.Duration
	// LossProb is the probability a message is silently dropped.
	LossProb float64
	// CorruptProb is the probability a delivered message has one byte
	// flipped (exercises checksum layers).
	CorruptProb float64
	// Seed seeds the deterministic random generator.
	Seed int64
	// InboxSize bounds each node's receive queue (default 4096);
	// overflowing messages are dropped, like a full UDP socket buffer.
	InboxSize int
}

// Stats counts network activity. All fields are monotonic.
type Stats = transport.Stats

// Datagram is one unreliable message.
type Datagram = transport.Datagram

// Network is a simulated network of Nodes. Safe for concurrent use.
type Network struct {
	cfg   Config
	nodes []*Node

	mu     sync.Mutex // guards rng, groups, closed
	rng    *rand.Rand
	group  map[NodeID]int // partition group per node; nil when healed
	closed bool

	sent             atomic.Uint64
	delivered        atomic.Uint64
	corrupted        atomic.Uint64
	droppedLoss      atomic.Uint64
	droppedPartition atomic.Uint64
	droppedCrashed   atomic.Uint64
	droppedOverflow  atomic.Uint64
	recovered        atomic.Uint64
}

// nodeGen is one incarnation of a node: a crash closes its quit channel
// (unblocking receivers and dropping traffic), a restart installs a fresh
// generation with an empty inbox, so messages sent while the node was
// down stay lost.
type nodeGen struct {
	inbox chan Datagram
	quit  chan struct{}
}

// Node is one endpoint of the network.
type Node struct {
	id      NodeID
	net     *Network
	gen     atomic.Pointer[nodeGen]
	crashed atomic.Bool
}

// New creates a network. It panics on a non-positive node count (a
// construction-time programming error).
func New(cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("simnet: invalid node count %d", cfg.Nodes))
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 4096
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	n := &Network{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.Nodes; i++ {
		nd := &Node{id: NodeID(i), net: n}
		nd.gen.Store(&nodeGen{
			inbox: make(chan Datagram, cfg.InboxSize),
			quit:  make(chan struct{}),
		})
		n.nodes = append(n.nodes, nd)
	}
	return n
}

// Size reports the number of nodes.
func (n *Network) Size() int { return len(n.nodes) }

// Node returns the node with the given ID. It panics on an out-of-range
// ID.
func (n *Network) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: no node %d", id))
	}
	return n.nodes[id]
}

// Endpoint returns the node as a transport.Endpoint (the simulator hosts
// every node). It panics on an out-of-range ID.
func (n *Network) Endpoint(id NodeID) transport.Endpoint { return n.Node(id) }

// Compile-time checks: simnet is a full transport backend.
var (
	_ transport.Transport   = (*Network)(nil)
	_ transport.Partitioner = (*Network)(nil)
	_ transport.Endpoint    = (*Node)(nil)
)

// Send transmits payload from one node to another, subject to loss, delay,
// partitions and crashes. Payload bytes are copied, so the caller may
// reuse its buffer. Send never blocks.
func (n *Network) Send(from, to NodeID, payload []byte) {
	n.sent.Add(1)
	dst := n.Node(to)
	if n.Node(from).crashed.Load() || dst.crashed.Load() {
		n.droppedCrashed.Add(1)
		return
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if n.group != nil && n.group[from] != n.group[to] {
		n.mu.Unlock()
		n.droppedPartition.Add(1)
		return
	}
	if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
		n.mu.Unlock()
		n.droppedLoss.Add(1)
		return
	}
	corruptAt := -1
	if n.cfg.CorruptProb > 0 && len(payload) > 0 && n.rng.Float64() < n.cfg.CorruptProb {
		corruptAt = n.rng.Intn(len(payload))
	}
	delay := n.cfg.MinDelay
	if span := n.cfg.MaxDelay - n.cfg.MinDelay; span > 0 {
		delay += time.Duration(n.rng.Int63n(int64(span) + 1))
	}
	n.mu.Unlock()

	d := Datagram{From: from, To: to, Payload: append([]byte(nil), payload...)}
	if corruptAt >= 0 {
		d.Payload[corruptAt] ^= 0x55
		n.corrupted.Add(1)
	}
	if delay == 0 {
		n.deliver(dst, d)
		return
	}
	time.AfterFunc(delay, func() { n.deliver(dst, d) })
}

func (n *Network) deliver(dst *Node, d Datagram) {
	if dst.crashed.Load() {
		n.droppedCrashed.Add(1)
		return
	}
	g := dst.gen.Load()
	select { //samoa:ignore blocking — delivery pump below the sched seam; the default arm makes this non-blocking
	case g.inbox <- d: //samoa:ignore blocking — inbox enqueue never blocks (default arm drops on overflow)
		n.delivered.Add(1)
	case <-g.quit: //samoa:ignore blocking — crash drain: a quit generation drops instead of wedging the timer goroutine
		n.droppedCrashed.Add(1)
	default:
		n.droppedOverflow.Add(1)
	}
}

// Crash makes the node silently drop every message sent to or from it, and
// unblocks its receivers. A crashed node stays down until Restart revives
// it (crash-recovery model).
func (n *Network) Crash(id NodeID) {
	nd := n.Node(id)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || nd.crashed.Load() {
		return
	}
	nd.crashed.Store(true)
	close(nd.gen.Load().quit)
}

// Restart revives a crashed node with a fresh incarnation: its inbox
// starts empty (everything sent while it was down stays lost, as do any
// datagrams it had queued at crash time), and it sends and receives again
// afterwards. It reports false — and does nothing — when the node is not
// crashed or the network is closed.
func (n *Network) Restart(id NodeID) bool {
	nd := n.Node(id)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || !nd.crashed.Load() {
		return false
	}
	nd.gen.Store(&nodeGen{
		inbox: make(chan Datagram, n.cfg.InboxSize),
		quit:  make(chan struct{}),
	})
	nd.crashed.Store(false)
	n.recovered.Add(1)
	return true
}

// Crashed reports whether the node has crashed.
func (n *Network) Crashed(id NodeID) bool { return n.Node(id).crashed.Load() }

// Partition splits the network: messages flow only within a group. Nodes
// not listed in any group land in an implicit extra group together.
func (n *Network) Partition(groups ...[]NodeID) {
	g := make(map[NodeID]int, len(n.nodes))
	for i, grp := range groups {
		for _, id := range grp {
			g[id] = i + 1
		}
	}
	n.mu.Lock()
	n.group = g // unlisted nodes default to group 0
	n.mu.Unlock()
}

// Heal removes any partition.
func (n *Network) Heal() {
	n.mu.Lock()
	n.group = nil
	n.mu.Unlock()
}

// Close shuts the network down: subsequent sends are dropped, all
// receivers unblock, and crashed nodes can no longer be restarted. Close
// is idempotent.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, nd := range n.nodes {
		if !nd.crashed.Load() {
			close(nd.gen.Load().quit)
		}
	}
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:             n.sent.Load(),
		Delivered:        n.delivered.Load(),
		Corrupted:        n.corrupted.Load(),
		DroppedLoss:      n.droppedLoss.Load(),
		DroppedPartition: n.droppedPartition.Load(),
		DroppedCrashed:   n.droppedCrashed.Load(),
		DroppedOverflow:  n.droppedOverflow.Load(),
		Recovered:        n.recovered.Load(),
	}
}

// ID reports the node's identifier.
func (nd *Node) ID() NodeID { return nd.id }

// Recv blocks until a datagram arrives. It returns ok == false once the
// node's current incarnation has crashed or the network closed (after
// draining nothing more). A receiver that gets ok == false may call Recv
// again after a Restart to read from the new incarnation.
func (nd *Node) Recv() (Datagram, bool) {
	g := nd.gen.Load()
	select {
	case d := <-g.inbox:
		return d, true
	case <-g.quit:
		// Drain anything already queued before reporting closure.
		select {
		case d := <-g.inbox:
			return d, true
		default:
			return Datagram{}, false
		}
	}
}

// TryRecv returns a queued datagram without blocking.
func (nd *Node) TryRecv() (Datagram, bool) {
	select {
	case d := <-nd.gen.Load().inbox:
		return d, true
	default:
		return Datagram{}, false
	}
}

// Send is shorthand for sending from this node.
func (nd *Node) Send(to NodeID, payload []byte) { nd.net.Send(nd.id, to, payload) }
