package trace

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// FuzzChecker cross-validates the conflict-graph serializability checker
// against a brute-force oracle that tries every serial order of the
// computations (n ≤ 6, so at most 720 permutations). The fuzz input is
// decoded into a random history of handler start/end/abort events; the
// driver keeps its own ground-truth interval list while feeding the
// recorder, so the oracle shares no parsing with the checker.
func FuzzChecker(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1})
	f.Add([]byte{0, 3, 6, 9, 1, 4, 7, 10})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2})
	f.Add([]byte{5, 17, 254, 3, 3, 3, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			nComps = 4
			nMPs   = 3
		)
		mps := make([]*core.Microprotocol, nMPs)
		hs := make([]*core.Handler, nMPs)
		for i := range mps {
			mps[i] = core.NewMicroprotocol(fmt.Sprintf("fmp%d", i))
			hs[i] = mps[i].AddHandler("h", func(*core.Context, core.Message) error { return nil })
		}

		rec := NewRecorder()
		var (
			seq     uint64 // mirrors the recorder's Seq assignment
			invSeq  uint64
			ivals   []*ival
			open    []*ival // driver-side open stack (closed oldest-first)
			openInv []uint64
			aborted = map[uint64]bool{}
		)
		for i := 0; i < nComps; i++ {
			rec.Spawned(uint64(i+1), nil)
			seq++
		}
		for _, b := range data {
			switch b % 3 {
			case 0: // start a new access
				comp := uint64(b/3)%nComps + 1
				mp := int(b/7) % nMPs
				invSeq++
				seq++
				iv := &ival{comp: comp, mp: mp, start: seq}
				ivals = append(ivals, iv)
				open = append(open, iv)
				openInv = append(openInv, invSeq)
				rec.HandlerStart(comp, invSeq, nil, hs[mp])
			case 1: // end the oldest open access
				if len(open) == 0 {
					continue
				}
				seq++
				open[0].end = seq
				rec.HandlerEnd(open[0].comp, openInv[0], hs[open[0].mp])
				open = open[1:]
				openInv = openInv[1:]
			default: // abort a computation (its accesses never happened)
				comp := uint64(b/3)%nComps + 1
				seq++
				aborted[comp] = true
				rec.Aborted(comp)
			}
		}
		// Accesses still open at the end of the log extend past every
		// recorded event (the checker gives them end = maxSeq+1).
		for _, iv := range open {
			iv.end = seq + 1
		}

		got := rec.Check().Serializable
		want := bruteForceSerializable(ivals, aborted)
		if got != want {
			t.Fatalf("checker says serializable=%v, brute-force oracle says %v\nintervals: %+v aborted: %v",
				got, want, ivals, aborted)
		}
	})
}

// ival is one ground-truth handler access interval.
type ival struct {
	comp       uint64
	mp         int
	start, end uint64
}

// bruteForceSerializable tries every permutation of the computations: a
// history is serializable iff some total order π satisfies, for every
// pair of accesses a∈X, b∈Y (X≠Y) on the same microprotocol, that
// whenever π runs X before Y, no access of Y on that microprotocol
// completed before an access of X began. Overlapping accesses of
// different computations violate the constraint in both directions, so
// they rule out every π.
func bruteForceSerializable(ivals []*ival, aborted map[uint64]bool) bool {
	live := ivals[:0:0]
	compSet := map[uint64]bool{}
	for _, iv := range ivals {
		if !aborted[iv.comp] {
			live = append(live, iv)
			compSet[iv.comp] = true
		}
	}
	comps := make([]uint64, 0, len(compSet))
	for c := range compSet {
		comps = append(comps, c)
	}
	if len(comps) <= 1 {
		return true
	}

	valid := func(pos map[uint64]int) bool {
		for i, a := range live {
			for _, b := range live[i+1:] {
				if a.comp == b.comp || a.mp != b.mp {
					continue
				}
				// first/second by the serial order π.
				first, second := a, b
				if pos[b.comp] < pos[a.comp] {
					first, second = b, a
				}
				// π claims first's computation ran entirely before
				// second's; then every observed access of second on this
				// microprotocol must begin after first's access ended.
				if second.start < first.end {
					return false
				}
			}
		}
		return true
	}

	pos := make(map[uint64]int, len(comps))
	var permute func(k int) bool
	permute = func(k int) bool {
		if k == len(comps) {
			for i, c := range comps {
				pos[c] = i
			}
			return valid(pos)
		}
		for i := k; i < len(comps); i++ {
			comps[k], comps[i] = comps[i], comps[k]
			if permute(k + 1) {
				return true
			}
			comps[k], comps[i] = comps[i], comps[k]
		}
		return false
	}
	return permute(0)
}
