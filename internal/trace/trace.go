// Package trace records protocol runs and checks the isolation property.
//
// A run, per paper §2, is the time-ordered list of (event, handler) pairs
// of a protocol execution. The Recorder reconstructs runs from the
// core.Tracer callbacks; the Check function decides whether a recorded
// execution satisfies the isolation property — equivalence to some serial
// execution of its computations — by building the conflict graph over
// microprotocol accesses and testing it for cycles, exactly the
// serializability criterion the paper borrows from database concurrency
// control (§6).
package trace

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
)

// Kind discriminates recorded entries.
type Kind int

// Entry kinds, in the order they occur for a computation.
const (
	KindSpawn Kind = iota
	KindStart
	KindEnd
	KindComplete
	KindAbort
)

func (k Kind) String() string {
	switch k {
	case KindSpawn:
		return "spawn"
	case KindStart:
		return "start"
	case KindEnd:
		return "end"
	case KindComplete:
		return "complete"
	case KindAbort:
		return "abort"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Entry is one recorded observation. Seq totally orders observations.
type Entry struct {
	Seq     uint64
	Kind    Kind
	Comp    uint64
	Inv     uint64          // handler invocation ID (Start/End only)
	Event   *core.EventType // triggering event type (Start only; may be nil)
	Handler *core.Handler   // Start/End only
}

// Recorder implements core.Tracer, accumulating a totally ordered log of
// one stack's execution. Safe for concurrent use. Attach it with
// core.WithTracer.
type Recorder struct {
	mu      sync.Mutex
	seq     uint64
	entries []Entry
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) append(e Entry) {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	r.entries = append(r.entries, e)
	r.mu.Unlock()
}

// Spawned implements core.Tracer.
func (r *Recorder) Spawned(comp uint64, _ *core.Spec) {
	r.append(Entry{Kind: KindSpawn, Comp: comp})
}

// HandlerStart implements core.Tracer.
func (r *Recorder) HandlerStart(comp, inv uint64, et *core.EventType, h *core.Handler) {
	r.append(Entry{Kind: KindStart, Comp: comp, Inv: inv, Event: et, Handler: h})
}

// HandlerEnd implements core.Tracer.
func (r *Recorder) HandlerEnd(comp, inv uint64, h *core.Handler) {
	r.append(Entry{Kind: KindEnd, Comp: comp, Inv: inv, Handler: h})
}

// Completed implements core.Tracer.
func (r *Recorder) Completed(comp uint64) {
	r.append(Entry{Kind: KindComplete, Comp: comp})
}

// Aborted implements core.Tracer: the attempt's effects were rolled back,
// so the checker excludes its accesses.
func (r *Recorder) Aborted(comp uint64) {
	r.append(Entry{Kind: KindAbort, Comp: comp})
}

// Entries returns a copy of the log so far, in observation order.
func (r *Recorder) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Reset discards the log (the sequence counter keeps advancing).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.entries = nil
	r.mu.Unlock()
}

// Run renders the recorded execution in the paper's run notation: the
// time-ordered list of (event, handler) pairs, one per commenced handler.
func (r *Recorder) Run() []RunPair {
	var run []RunPair
	for _, e := range r.Entries() {
		if e.Kind == KindStart {
			run = append(run, RunPair{Comp: e.Comp, Event: e.Event, Handler: e.Handler})
		}
	}
	return run
}

// RunPair is one (event, handler) element of a run.
type RunPair struct {
	Comp    uint64
	Event   *core.EventType
	Handler *core.Handler
}

// String renders the pair like the paper: "(a0, P)".
func (p RunPair) String() string {
	ev := "ext"
	if p.Event != nil {
		ev = p.Event.Name()
	}
	return fmt.Sprintf("(%s, %s)", ev, p.Handler.Name())
}

// Stats summarises a recorded execution.
type Stats struct {
	// Spawned, Completed, Aborted count computation lifecycle events.
	Spawned, Completed, Aborted int
	// HandlerExecutions counts commenced handler executions.
	HandlerExecutions int
	// PerMicroprotocol counts executions by microprotocol name.
	PerMicroprotocol map[string]int
	// MaxConcurrency is the peak number of computations with an open
	// handler execution at the same instant.
	MaxConcurrency int
}

// Stats summarises the log so far.
func (r *Recorder) Stats() Stats {
	st := Stats{PerMicroprotocol: map[string]int{}}
	openByComp := map[uint64]int{}
	active := 0
	for _, e := range r.Entries() {
		switch e.Kind {
		case KindSpawn:
			st.Spawned++
		case KindComplete:
			st.Completed++
		case KindAbort:
			st.Aborted++
		case KindStart:
			st.HandlerExecutions++
			st.PerMicroprotocol[e.Handler.MP().Name()]++
			if openByComp[e.Comp] == 0 {
				active++
				if active > st.MaxConcurrency {
					st.MaxConcurrency = active
				}
			}
			openByComp[e.Comp]++
		case KindEnd:
			openByComp[e.Comp]--
			if openByComp[e.Comp] == 0 {
				active--
			}
		}
	}
	return st
}

// WriteTimeline renders an ASCII timeline of the recorded execution: one
// row per computation, time (observation sequence) on the horizontal
// axis, '=' while at least one of the computation's handlers is open and
// the handler's microprotocol initial at each commencement. Concurrent
// rows overlapping in a column is exactly the paper's notion of
// interleaved computations.
func (r *Recorder) WriteTimeline(w io.Writer, width int) {
	if width <= 10 {
		width = 72
	}
	entries := r.Entries()
	if len(entries) == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	maxSeq := entries[len(entries)-1].Seq
	col := func(seq uint64) int {
		if maxSeq <= 1 {
			return 0
		}
		return int((seq - 1) * uint64(width-1) / maxSeq)
	}
	type rowT struct {
		comp uint64
		row  []byte
	}
	var rows []*rowT
	byComp := map[uint64]*rowT{}
	getRow := func(comp uint64) *rowT {
		rw := byComp[comp]
		if rw == nil {
			rw = &rowT{comp: comp, row: bytes.Repeat([]byte{' '}, width)}
			byComp[comp] = rw
			rows = append(rows, rw)
		}
		return rw
	}
	open := map[uint64]uint64{} // inv → start seq
	for _, e := range entries {
		switch e.Kind {
		case KindStart:
			open[e.Inv] = e.Seq
			rw := getRow(e.Comp)
			c := col(e.Seq)
			initial := byte('?')
			if name := e.Handler.MP().Name(); len(name) > 0 {
				initial = name[0]
			}
			rw.row[c] = initial
		case KindEnd:
			start, ok := open[e.Inv]
			if !ok {
				continue
			}
			delete(open, e.Inv)
			rw := getRow(e.Comp)
			for c := col(start) + 1; c <= col(e.Seq) && c < width; c++ {
				if rw.row[c] == ' ' {
					rw.row[c] = '='
				}
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].comp < rows[j].comp })
	for _, rw := range rows {
		fmt.Fprintf(w, "  k%-4d |%s|\n", rw.comp, string(bytes.TrimRight(rw.row, " ")))
	}
}

// access is one handler execution interval on one microprotocol.
type access struct {
	comp       uint64
	start, end uint64 // Seq of Start/End entries; end == 0 while open
}

// Report is the result of checking a recorded execution.
type Report struct {
	// Serializable is the isolation property: the execution is
	// equivalent to some serial execution of its computations.
	Serializable bool
	// Serial reports whether the execution was literally serial: no two
	// computations' handler intervals interleaved at all.
	Serial bool
	// Order is a witness serial order of computation IDs when
	// Serializable (a topological order of the conflict graph).
	Order []uint64
	// Cycle is a witness cycle of computation IDs when not
	// Serializable.
	Cycle []uint64
	// Conflicts counts directed conflict-graph edges.
	Conflicts int
	// Computations counts computations with at least one handler
	// execution.
	Computations int
	// Aborted counts rolled-back attempts, whose accesses are excluded
	// from the analysis (their effects were undone).
	Aborted int
	// Edges lists the conflict graph's directed edges (from, to) by
	// computation ID.
	Edges [][2]uint64
}

// WriteDOT renders the conflict graph in Graphviz DOT format; nodes are
// computations, an edge k1→k2 means k1 must precede k2 in any equivalent
// serial order. Cycle members are drawn red.
func (rep *Report) WriteDOT(w io.Writer) {
	inCycle := map[uint64]bool{}
	for _, c := range rep.Cycle {
		inCycle[c] = true
	}
	fmt.Fprintln(w, "digraph conflicts {")
	nodes := map[uint64]bool{}
	addNode := func(c uint64) {
		if nodes[c] {
			return
		}
		nodes[c] = true
		attr := ""
		if inCycle[c] {
			attr = " [color=red]"
		}
		fmt.Fprintf(w, "  k%d%s;\n", c, attr)
	}
	for _, c := range rep.Order {
		addNode(c)
	}
	for _, e := range rep.Edges {
		addNode(e[0])
		addNode(e[1])
		attr := ""
		if inCycle[e[0]] && inCycle[e[1]] {
			attr = " [color=red]"
		}
		fmt.Fprintf(w, "  k%d -> k%d%s;\n", e[0], e[1], attr)
	}
	fmt.Fprintln(w, "}")
}

// Concurrent reports whether the execution both interleaved computations
// and stayed serializable — the class of runs (like the paper's r2) that
// SAMOA admits but Appia forbids.
func (rep *Report) Concurrent() bool { return rep.Serializable && !rep.Serial }

// Check analyses the recorded execution. Each handler execution is one
// operation on its microprotocol; operations of different computations on
// the same microprotocol conflict. The conflict graph has an edge k1→k2
// when an operation of k1 on some microprotocol precedes (by start order)
// an operation of k2 on it; overlapping operations of different
// computations on one microprotocol conflict both ways. The execution
// satisfies the isolation property iff the graph is acyclic.
func (r *Recorder) Check() *Report {
	entries := r.Entries()

	// Attempts rolled back by a Restorer controller never happened;
	// drop their accesses entirely.
	aborted := make(map[uint64]bool)
	for _, e := range entries {
		if e.Kind == KindAbort {
			aborted[e.Comp] = true
		}
	}

	// Pair Start/End entries into accesses, grouped by microprotocol.
	open := make(map[uint64]*access) // by Inv
	byMP := make(map[*core.Microprotocol][]*access)
	comps := make(map[uint64]bool)
	var compSpans = make(map[uint64]*[2]uint64) // [min start, max end]
	for _, e := range entries {
		if aborted[e.Comp] {
			continue
		}
		switch e.Kind {
		case KindStart:
			a := &access{comp: e.Comp, start: e.Seq}
			open[e.Inv] = a
			byMP[e.Handler.MP()] = append(byMP[e.Handler.MP()], a)
			comps[e.Comp] = true
			if sp := compSpans[e.Comp]; sp == nil {
				compSpans[e.Comp] = &[2]uint64{e.Seq, e.Seq}
			}
		case KindEnd:
			if a := open[e.Inv]; a != nil {
				a.end = e.Seq
				delete(open, e.Inv)
				if sp := compSpans[e.Comp]; sp != nil && e.Seq > sp[1] {
					sp[1] = e.Seq
				}
			}
		}
	}
	// Open accesses (still running) extend to the end of the log.
	maxSeq := uint64(0)
	if n := len(entries); n > 0 {
		maxSeq = entries[n-1].Seq + 1
	}
	for _, a := range open {
		a.end = maxSeq
	}

	rep := &Report{Computations: len(comps), Aborted: len(aborted)}

	// Conflict edges.
	edges := make(map[uint64]map[uint64]bool)
	addEdge := func(from, to uint64) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[uint64]bool)
		}
		if !edges[from][to] {
			edges[from][to] = true
			rep.Conflicts++
			rep.Edges = append(rep.Edges, [2]uint64{from, to})
		}
	}
	for _, accs := range byMP {
		sort.Slice(accs, func(i, j int) bool { return accs[i].start < accs[j].start })
		for i, a := range accs {
			for _, b := range accs[i+1:] {
				if a.comp == b.comp {
					continue
				}
				addEdge(a.comp, b.comp) // a started first
				if b.start < a.end {    // overlap: also conflicts back
					addEdge(b.comp, a.comp)
				}
			}
		}
	}

	// Literal seriality: computation handler spans pairwise disjoint.
	rep.Serial = true
	spans := make([]struct {
		comp uint64
		lo   uint64
		hi   uint64
	}, 0, len(compSpans))
	for c, sp := range compSpans {
		spans = append(spans, struct {
			comp uint64
			lo   uint64
			hi   uint64
		}{c, sp[0], sp[1]})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			rep.Serial = false
			break
		}
	}

	// Topological sort / cycle detection (deterministic order).
	ids := make([]uint64, 0, len(comps))
	for c := range comps {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[uint64]int, len(ids))
	var order []uint64
	var cycle []uint64
	var path []uint64
	var visit func(u uint64) bool
	visit = func(u uint64) bool {
		color[u] = grey
		path = append(path, u)
		succs := make([]uint64, 0, len(edges[u]))
		for v := range edges[u] {
			succs = append(succs, v)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, v := range succs {
			switch color[v] {
			case white:
				if !visit(v) {
					return false
				}
			case grey:
				// Cut the witness cycle out of the DFS path.
				for i, w := range path {
					if w == v {
						cycle = append(cycle, path[i:]...)
						break
					}
				}
				return false
			}
		}
		path = path[:len(path)-1]
		color[u] = black
		order = append(order, u)
		return true
	}
	for _, u := range ids {
		if color[u] == white && !visit(u) {
			rep.Cycle = cycle
			return rep
		}
	}
	// order is reverse-topological; flip it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rep.Serializable = true
	rep.Order = order
	return rep
}
