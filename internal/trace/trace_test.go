package trace_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// fab fabricates handler Start/End observations directly on a Recorder,
// so checker behaviour can be pinned on exact schedules.
type fab struct {
	rec *trace.Recorder
	inv uint64
	hs  map[string]*core.Handler
}

func newFab(mps ...string) *fab {
	f := &fab{rec: trace.NewRecorder(), hs: map[string]*core.Handler{}}
	for _, name := range mps {
		mp := core.NewMicroprotocol(name)
		f.hs[name] = mp.AddHandler("h", func(*core.Context, core.Message) error { return nil })
	}
	return f
}

// call records a complete handler execution by comp on mp.
func (f *fab) call(comp uint64, mp string) {
	f.inv++
	f.rec.HandlerStart(comp, f.inv, nil, f.hs[mp])
	f.rec.HandlerEnd(comp, f.inv, f.hs[mp])
}

// start begins an execution, returning its invocation ID for end.
func (f *fab) start(comp uint64, mp string) uint64 {
	f.inv++
	f.rec.HandlerStart(comp, f.inv, nil, f.hs[mp])
	return f.inv
}

func (f *fab) end(comp, inv uint64, mp string) {
	f.rec.HandlerEnd(comp, inv, f.hs[mp])
}

func TestCheckEmptyLog(t *testing.T) {
	rep := trace.NewRecorder().Check()
	if !rep.Serializable || !rep.Serial || rep.Computations != 0 {
		t.Fatalf("empty: %+v", rep)
	}
}

// TestCheckSerialRunR1 is the paper's run r1: kb entirely after ka.
func TestCheckSerialRunR1(t *testing.T) {
	f := newFab("P", "Q", "R", "S")
	f.call(1, "P")
	f.call(1, "R")
	f.call(1, "S")
	f.call(2, "Q")
	f.call(2, "R")
	f.call(2, "S")
	rep := f.rec.Check()
	if !rep.Serializable || !rep.Serial {
		t.Fatalf("r1: %+v", rep)
	}
	if len(rep.Order) != 2 || rep.Order[0] != 1 || rep.Order[1] != 2 {
		t.Fatalf("order = %v", rep.Order)
	}
	if rep.Computations != 2 {
		t.Fatalf("computations = %d", rep.Computations)
	}
}

// TestCheckConcurrentRunR2 is the paper's r2: interleaved but isolated —
// ka reaches every shared microprotocol before kb.
func TestCheckConcurrentRunR2(t *testing.T) {
	f := newFab("P", "Q", "R", "S")
	f.call(1, "P")
	f.call(2, "Q") // kb starts before ka finished: not serial
	f.call(1, "R")
	f.call(1, "S")
	f.call(2, "R")
	f.call(2, "S")
	rep := f.rec.Check()
	if !rep.Serializable {
		t.Fatalf("r2 must be serializable: cycle %v", rep.Cycle)
	}
	if rep.Serial {
		t.Fatal("r2 is interleaved, not serial")
	}
	if !rep.Concurrent() {
		t.Fatal("r2 is the concurrent-yet-isolated class")
	}
}

// TestCheckViolationRunR3 is the paper's r3: ka before kb on R, kb before
// ka on S — a conflict cycle.
func TestCheckViolationRunR3(t *testing.T) {
	f := newFab("P", "Q", "R", "S")
	f.call(1, "P")
	f.call(2, "Q")
	f.call(1, "R")
	f.call(2, "R")
	f.call(2, "S")
	f.call(1, "S")
	rep := f.rec.Check()
	if rep.Serializable {
		t.Fatal("r3 must violate isolation")
	}
	if len(rep.Cycle) < 2 {
		t.Fatalf("cycle witness = %v", rep.Cycle)
	}
}

// TestCheckOverlappingAccessesConflictBothWays: two computations inside
// one microprotocol simultaneously cannot be serialized.
func TestCheckOverlappingAccesses(t *testing.T) {
	f := newFab("P")
	i1 := f.start(1, "P")
	i2 := f.start(2, "P")
	f.end(1, i1, "P")
	f.end(2, i2, "P")
	rep := f.rec.Check()
	if rep.Serializable {
		t.Fatal("overlapping accesses on one microprotocol must be a violation")
	}
}

// TestCheckOpenAccessExtends: an access with no End (still running when
// the log was cut) conflicts with everything after its start.
func TestCheckOpenAccess(t *testing.T) {
	f := newFab("P")
	f.start(1, "P") // never ends
	f.call(2, "P")
	rep := f.rec.Check()
	if rep.Serializable {
		t.Fatal("open access must overlap later accesses")
	}
}

func TestCheckSameComputationNoConflict(t *testing.T) {
	f := newFab("P")
	i1 := f.start(1, "P")
	i2 := f.start(1, "P") // same computation: concurrent self-accesses OK
	f.end(1, i2, "P")
	f.end(1, i1, "P")
	rep := f.rec.Check()
	if !rep.Serializable {
		t.Fatalf("single computation must be serializable: %+v", rep)
	}
}

func TestCheckThreeWayCycle(t *testing.T) {
	f := newFab("X", "Y", "Z")
	f.call(1, "X")
	f.call(2, "X") // 1→2
	f.call(2, "Y")
	f.call(3, "Y") // 2→3
	f.call(3, "Z")
	f.call(1, "Z") // 3→1
	rep := f.rec.Check()
	if rep.Serializable {
		t.Fatal("3-cycle must violate isolation")
	}
	if len(rep.Cycle) != 3 {
		t.Fatalf("cycle = %v, want all three computations", rep.Cycle)
	}
}

func TestCheckChainTopoOrder(t *testing.T) {
	f := newFab("X", "Y")
	f.call(3, "X")
	f.call(1, "X") // 3→1
	f.call(1, "Y")
	f.call(2, "Y") // 1→2
	rep := f.rec.Check()
	if !rep.Serializable {
		t.Fatalf("chain: %+v", rep)
	}
	want := []uint64{3, 1, 2}
	for i, c := range want {
		if rep.Order[i] != c {
			t.Fatalf("order = %v, want %v", rep.Order, want)
		}
	}
	if rep.Conflicts != 2 {
		t.Fatalf("conflicts = %d, want 2", rep.Conflicts)
	}
}

func TestRunNotation(t *testing.T) {
	rec := trace.NewRecorder()
	mp := core.NewMicroprotocol("R")
	h := mp.AddHandler("recv", func(*core.Context, core.Message) error { return nil })
	et := core.NewEventType("a1")
	rec.HandlerStart(1, 1, et, h)
	rec.HandlerEnd(1, 1, h)
	run := rec.Run()
	if len(run) != 1 {
		t.Fatalf("run = %v", run)
	}
	if got := run[0].String(); got != "(a1, recv)" {
		t.Fatalf("pair = %q", got)
	}
	if run[0].Comp != 1 {
		t.Fatalf("comp = %d", run[0].Comp)
	}
}

func TestRunNotationNilEvent(t *testing.T) {
	rec := trace.NewRecorder()
	mp := core.NewMicroprotocol("R")
	h := mp.AddHandler("recv", func(*core.Context, core.Message) error { return nil })
	rec.HandlerStart(1, 1, nil, h)
	if got := rec.Run()[0].String(); !strings.Contains(got, "ext") {
		t.Fatalf("pair = %q", got)
	}
}

func TestEntriesAndReset(t *testing.T) {
	rec := trace.NewRecorder()
	rec.Spawned(1, nil)
	rec.Completed(1)
	es := rec.Entries()
	if len(es) != 2 || es[0].Kind != trace.KindSpawn || es[1].Kind != trace.KindComplete {
		t.Fatalf("entries = %v", es)
	}
	if es[0].Seq >= es[1].Seq {
		t.Fatal("seq must increase")
	}
	if es[0].Kind.String() != "spawn" || es[1].Kind.String() != "complete" {
		t.Fatal("kind strings")
	}
	rec.Reset()
	if len(rec.Entries()) != 0 {
		t.Fatal("reset must clear the log")
	}
}

func TestStats(t *testing.T) {
	f := newFab("P", "Q")
	f.rec.Spawned(1, nil)
	f.rec.Spawned(2, nil)
	i1 := f.start(1, "P")
	i2 := f.start(2, "Q") // both computations open: peak 2
	f.end(1, i1, "P")
	f.end(2, i2, "Q")
	f.call(1, "P")
	f.rec.Completed(1)
	f.rec.Aborted(2)
	st := f.rec.Stats()
	if st.Spawned != 2 || st.Completed != 1 || st.Aborted != 1 {
		t.Fatalf("lifecycle counts: %+v", st)
	}
	if st.HandlerExecutions != 3 || st.PerMicroprotocol["P"] != 2 || st.PerMicroprotocol["Q"] != 1 {
		t.Fatalf("execution counts: %+v", st)
	}
	if st.MaxConcurrency != 2 {
		t.Fatalf("peak concurrency = %d, want 2", st.MaxConcurrency)
	}
}

func TestCheckExcludesAbortedAttempts(t *testing.T) {
	f := newFab("P")
	// An aborted attempt overlapping another computation would be a
	// violation — but its effects were rolled back, so it must not
	// count.
	i1 := f.start(1, "P")
	i2 := f.start(2, "P")
	f.end(1, i1, "P")
	f.end(2, i2, "P")
	f.rec.Aborted(2)
	rep := f.rec.Check()
	if !rep.Serializable {
		t.Fatalf("aborted attempt polluted the analysis: %+v", rep)
	}
	if rep.Aborted != 1 || rep.Computations != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestWriteDOT(t *testing.T) {
	f := newFab("X", "Y")
	f.call(1, "X")
	f.call(2, "X")
	f.call(2, "Y")
	f.call(1, "Y") // cycle: 1→2 on X, 2→1 on Y
	rep := f.rec.Check()
	if rep.Serializable {
		t.Fatal("expected violation")
	}
	var sb strings.Builder
	rep.WriteDOT(&sb)
	out := sb.String()
	for _, want := range []string{"digraph conflicts", "k1 -> k2", "k2 -> k1", "color=red"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	if len(rep.Edges) != 2 {
		t.Fatalf("edges = %v", rep.Edges)
	}
}

func TestWriteDOTAcyclic(t *testing.T) {
	f := newFab("X")
	f.call(1, "X")
	f.call(2, "X")
	rep := f.rec.Check()
	var sb strings.Builder
	rep.WriteDOT(&sb)
	if strings.Contains(sb.String(), "color=red") {
		t.Fatal("acyclic graph coloured red")
	}
}

func TestWriteTimeline(t *testing.T) {
	f := newFab("P", "Q")
	i1 := f.start(1, "P")
	i2 := f.start(2, "Q")
	f.end(2, i2, "Q")
	f.end(1, i1, "P")
	var sb strings.Builder
	f.rec.WriteTimeline(&sb, 40)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline rows = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "k1") || !strings.Contains(lines[0], "P") {
		t.Fatalf("row 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "k2") || !strings.Contains(lines[1], "Q") {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestWriteTimelineEmpty(t *testing.T) {
	var sb strings.Builder
	trace.NewRecorder().WriteTimeline(&sb, 40)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatalf("out = %q", sb.String())
	}
}

func TestKindStrings(t *testing.T) {
	if trace.KindStart.String() != "start" || trace.KindEnd.String() != "end" {
		t.Fatal("kind strings")
	}
	if trace.Kind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}
