package cc_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

func TestVCABoundName(t *testing.T) {
	if cc.NewVCABound().Name() != "vca-bound" {
		t.Fatal("name")
	}
}

func TestVCABoundRequiresBounds(t *testing.T) {
	s := core.NewStack(cc.NewVCABound())
	p := core.NewMicroprotocol("p")
	p.AddHandler("h", nop)
	s.Register(p)
	err := s.Isolated(core.Access(p), nil)
	var se *core.SpecError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SpecError", err)
	}
}

func TestVCABoundRejectsNonPositiveBound(t *testing.T) {
	s := core.NewStack(cc.NewVCABound())
	p := core.NewMicroprotocol("p")
	p.AddHandler("h", nop)
	s.Register(p)
	err := s.Isolated(core.AccessBound(map[*core.Microprotocol]int{p: 0}), nil)
	var se *core.SpecError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SpecError", err)
	}
}

func TestVCABoundUndeclared(t *testing.T) {
	s := core.NewStack(cc.NewVCABound())
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	hq := q.AddHandler("h", nop)
	s.Register(p, q)
	et := core.NewEventType("q")
	s.Bind(et, hq)
	err := s.External(core.AccessBound(map[*core.Microprotocol]int{p: 1}), et, nil)
	var ue *core.UndeclaredError
	if !errors.As(err, &ue) || ue.MP != "q" {
		t.Fatalf("err = %v", err)
	}
}

// TestVCABoundExhaustion: exceeding the declared least upper bound raises
// a runtime error in the thread that issued the call (paper §4).
func TestVCABoundExhaustion(t *testing.T) {
	s := core.NewStack(cc.NewVCABound())
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nop)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)

	err := s.Isolated(core.AccessBound(map[*core.Microprotocol]int{p: 2}), func(ctx *core.Context) error {
		if err := ctx.Trigger(et, nil); err != nil {
			return err
		}
		if err := ctx.Trigger(et, nil); err != nil {
			return err
		}
		err := ctx.Trigger(et, nil) // third visit: bound exhausted
		var be *core.BoundExhaustedError
		if !errors.As(err, &be) || be.Bound != 2 {
			t.Errorf("in-thread error = %v, want BoundExhaustedError{2}", err)
		}
		return err
	})
	var be *core.BoundExhaustedError
	if !errors.As(err, &be) {
		t.Fatalf("Isolated error = %v", err)
	}
}

// TestVCABoundEarlyRelease is the algorithm's selling point (§5.2): once
// k1 has visited p the declared number of times, a later computation may
// enter p while k1 is still running elsewhere.
func TestVCABoundEarlyRelease(t *testing.T) {
	s := core.NewStack(cc.NewVCABound())
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	hp := p.AddHandler("h", nop)
	holdQ := make(chan struct{})
	inQ := make(chan struct{})
	hq := q.AddHandler("h", func(*core.Context, core.Message) error {
		close(inQ)
		<-holdQ
		return nil
	})
	s.Register(p, q)
	etP, etQ := core.NewEventType("p"), core.NewEventType("q")
	s.Bind(etP, hp)
	s.Bind(etQ, hq)

	k1done := make(chan error, 1)
	go func() {
		k1done <- s.Isolated(core.AccessBound(map[*core.Microprotocol]int{p: 1, q: 1}), func(ctx *core.Context) error {
			if err := ctx.Trigger(etP, nil); err != nil { // exhausts bound on p
				return err
			}
			return ctx.Trigger(etQ, nil) // lingers in q
		})
	}()
	<-inQ

	// k2 shares only p; k1 exhausted its bound on p, so k2 proceeds now.
	k2done := make(chan error, 1)
	go func() { k2done <- s.External(core.AccessBound(map[*core.Microprotocol]int{p: 1}), etP, nil) }()
	select {
	case err := <-k2done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("k2 blocked on p although k1 exhausted its bound — no early release")
	}
	close(holdQ)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
}

// TestVCABoundNoEarlyReleaseUnderBasic is the contrast case: the same
// scenario under VCAbasic blocks k2 until k1 completes.
func TestVCABoundNoEarlyReleaseUnderBasic(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	hp := p.AddHandler("h", nop)
	holdQ := make(chan struct{})
	inQ := make(chan struct{})
	hq := q.AddHandler("h", func(*core.Context, core.Message) error {
		close(inQ)
		<-holdQ
		return nil
	})
	s.Register(p, q)
	etP, etQ := core.NewEventType("p"), core.NewEventType("q")
	s.Bind(etP, hp)
	s.Bind(etQ, hq)

	k1done := make(chan error, 1)
	go func() {
		k1done <- s.Isolated(core.Access(p, q), func(ctx *core.Context) error {
			if err := ctx.Trigger(etP, nil); err != nil {
				return err
			}
			return ctx.Trigger(etQ, nil)
		})
	}()
	<-inQ

	k2done := make(chan error, 1)
	go func() { k2done <- s.External(core.Access(p), etP, nil) }()
	select {
	case <-k2done:
		t.Fatal("VCAbasic must hold p until k1 completes")
	case <-time.After(50 * time.Millisecond):
	}
	close(holdQ)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
	if err := <-k2done; err != nil {
		t.Fatal(err)
	}
}

// TestVCABoundUnderdeclaredVisitsStillRelease: visiting fewer times than
// declared is fine (paper §4); rule 3 upgrades the remainder at
// completion.
func TestVCABoundUnderdeclared(t *testing.T) {
	s := core.NewStack(cc.NewVCABound())
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nop)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	spec := core.AccessBound(map[*core.Microprotocol]int{p: 10})
	// Visit once, declared ten; the next computation must not be stuck.
	for i := 0; i < 3; i++ {
		if err := s.External(spec, et, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVCABoundConcurrentVisitsWithinComputation(t *testing.T) {
	s := core.NewStack(cc.NewVCABound())
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nop)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	err := s.Isolated(core.AccessBound(map[*core.Microprotocol]int{p: 8}), func(ctx *core.Context) error {
		for i := 0; i < 8; i++ {
			if err := ctx.AsyncTrigger(et, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVCABoundHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		hammer(t, cc.NewVCABound(), "bound", 4, randScripts(rng, 12, 4, 6))
	}
}

func TestVCABoundPropertyIsolation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		hammer(t, cc.NewVCABound(), "bound", m, randScripts(rng, 2+rng.Intn(8), m, 5))
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestVCABoundOverdeclaredProperty: declaring looser bounds than actually
// used must stay correct (only less parallel).
func TestVCABoundOverdeclaredProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		p := newProto(cc.NewVCABound(), m)
		scripts := randScripts(rng, 2+rng.Intn(6), m, 4)
		done := make(chan error, len(scripts))
		for _, seq := range scripts {
			bounds := map[*core.Microprotocol]int{}
			for _, i := range seq {
				bounds[p.mps[i]] += 1 + rng.Intn(3) // over-declare
			}
			go func(seq []int, spec *core.Spec) {
				done <- p.stack.External(spec, p.events[seq[0]], &visitScript{seq: seq})
			}(seq, core.AccessBound(bounds))
		}
		for range scripts {
			if err := <-done; err != nil {
				t.Error(err)
			}
		}
		if !p.rec.Check().Serializable {
			t.Error("not serializable with over-declared bounds")
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
