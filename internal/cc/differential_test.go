package cc

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cctest"
	"repro/internal/core"
	"repro/internal/sched"
)

// These tests pit the sharded lock-free admission path (VCABasic over
// versionTable) against the retained single-mutex reference
// implementation (RefVCABasic): identical operation sequences must yield
// identical version assignments and identical admission decisions, no
// matter which mix of fast-path and slow-path claims the sharded side
// took. The driver is single-threaded and both implementations are
// deterministic under it, so any divergence is a real semantic break in
// the sharded protocol, not scheduling noise.

// shardedVersions reads (gv, lv) of mp from a sharded controller's table
// — the differential observation point mirroring RefVCABasic.versions.
func shardedVersions(c *VCABasic, mp *core.Microprotocol) (gv, lv uint64) {
	c.vt.mu.Lock()
	defer c.vt.mu.Unlock()
	i, ok := c.vt.index[mp]
	if !ok {
		return 0, 0
	}
	st := c.vt.states[i]
	return st.gv.Load(), st.lv.Load()
}

func TestDifferentialShardedVsReference(t *testing.T) {
	const (
		seeds    = 10
		mpsCount = 6
		specPool = 8
		spawns   = 80
	)
	var totalFast, totalSlow uint64
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			mps := make([]*core.Microprotocol, mpsCount)
			for i := range mps {
				mps[i] = core.NewMicroprotocol(fmt.Sprintf("mp%d", i))
			}
			// A small pool of specs, reused across spawns, so the sharded
			// side exercises its compiled-footprint cache too.
			specs := make([]*core.Spec, specPool)
			for i := range specs {
				var sub []*core.Microprotocol
				for _, mp := range mps {
					if rng.Intn(2) == 0 {
						sub = append(sub, mp)
					}
				}
				if len(sub) == 0 {
					sub = append(sub, mps[rng.Intn(len(mps))])
				}
				specs[i] = core.Access(sub...)
			}

			sh := NewVCABasic()
			ref := NewRefVCABasic()
			type liveComp struct {
				spec *core.Spec
				sTok *basicToken
				rTok *refToken
			}
			var live []liveComp

			check := func(when string) {
				t.Helper()
				for i, mp := range mps {
					sgv, slv := shardedVersions(sh, mp)
					rgv, rlv := ref.versions(mp)
					if sgv != rgv || slv != rlv {
						t.Fatalf("%s: mp%d diverged: sharded (gv=%d, lv=%d), reference (gv=%d, lv=%d)",
							when, i, sgv, slv, rgv, rlv)
					}
				}
			}

			spawned := 0
			for spawned < spawns || len(live) > 0 {
				if spawned < spawns && (len(live) == 0 || rng.Float64() < 0.6) {
					spec := specs[rng.Intn(len(specs))]
					sTok, err := sh.Spawn(nil, spec)
					if err != nil {
						t.Fatalf("sharded spawn: %v", err)
					}
					rTok, err := ref.Spawn(nil, spec)
					if err != nil {
						t.Fatalf("reference spawn: %v", err)
					}
					st, rt := sTok.(*basicToken), rTok.(*refToken)
					for i, mp := range spec.MPs() {
						if got, want := st.nodes[i].target, rt.pv[mp]; got != want {
							t.Fatalf("spawn %d: pv of %s diverged: sharded %d, reference %d",
								spawned, mp.Name(), got, want)
						}
						// Identical admission decisions: both sides admit a
						// visit exactly when lv has reached pv−1, so equal
						// pv (checked above) and equal lv trajectories
						// (checked after every op) pin the decision point.
						if got, want := st.nodes[i].minLv, rt.pv[mp]-1; got != want {
							t.Fatalf("spawn %d: admission threshold of %s diverged: sharded waits lv>=%d, reference waits lv>=%d",
								spawned, mp.Name(), got, want)
						}
					}
					live = append(live, liveComp{spec: spec, sTok: st, rTok: rt})
					spawned++
					check(fmt.Sprintf("after spawn %d", spawned))
				} else {
					// Complete a random live computation — deliberately out
					// of spawn order, so deferred releases queue up and the
					// batched drain applies cascades.
					k := rng.Intn(len(live))
					c := live[k]
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					sh.Complete(c.sTok)
					ref.Complete(c.rTok)
					check("after complete")
				}
			}

			// Everything completed: every slot must be quiescent (lv == gv)
			// on both sides.
			for i, mp := range mps {
				sgv, slv := shardedVersions(sh, mp)
				if sgv != slv {
					t.Fatalf("mp%d not quiescent after drain: gv=%d, lv=%d", i, sgv, slv)
				}
			}
			fast, slow := sh.SpawnStats()
			if fast+slow != uint64(spawned) {
				t.Fatalf("spawn stats %d fast + %d slow != %d spawns", fast, slow, spawned)
			}
			totalFast += fast
			totalSlow += slow
		})
	}
	// The workload mix must have exercised both admission paths, or the
	// differential comparison proved nothing about one of them.
	if totalFast == 0 || totalSlow == 0 {
		t.Fatalf("differential workload covered only one admission path: fast=%d, slow=%d", totalFast, totalSlow)
	}
	t.Logf("admission paths covered: %d fast, %d slow", totalFast, totalSlow)
}

// TestDifferentialConcurrent runs the same randomized concurrent workload
// through both implementations (separately — each owns its state) and
// compares the terminal version vectors: with every computation
// completed, gv and lv per microprotocol depend only on the multiset of
// footprints spawned, so they must agree across implementations even
// though interleavings differ.
func TestDifferentialConcurrent(t *testing.T) {
	const (
		workers  = 8
		perWkr   = 50
		mpsCount = 4
	)
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mps := make([]*core.Microprotocol, mpsCount)
		for i := range mps {
			mps[i] = core.NewMicroprotocol(fmt.Sprintf("mp%d", i))
		}
		specs := make([]*core.Spec, 6)
		for i := range specs {
			var sub []*core.Microprotocol
			for _, mp := range mps {
				if rng.Intn(2) == 0 {
					sub = append(sub, mp)
				}
			}
			if len(sub) == 0 {
				sub = append(sub, mps[rng.Intn(len(mps))])
			}
			specs[i] = core.Access(sub...)
		}
		// Pre-draw each worker's spec sequence so both controllers see the
		// same multiset of footprints.
		plans := make([][]*core.Spec, workers)
		for w := range plans {
			plans[w] = make([]*core.Spec, perWkr)
			for j := range plans[w] {
				plans[w][j] = specs[rng.Intn(len(specs))]
			}
		}
		run := func(ctrl core.Controller) {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(plan []*core.Spec) {
					defer wg.Done()
					for _, spec := range plan {
						tok, err := ctrl.Spawn(nil, spec)
						if err != nil {
							panic(err)
						}
						ctrl.Complete(tok)
					}
				}(plans[w])
			}
			wg.Wait()
		}
		sh := NewVCABasic()
		ref := NewRefVCABasic()
		run(sh)
		run(ref)
		for i, mp := range mps {
			sgv, slv := shardedVersions(sh, mp)
			rgv, rlv := ref.versions(mp)
			if sgv != rgv || slv != rlv || sgv != slv {
				t.Fatalf("seed %d: mp%d terminal state diverged: sharded (gv=%d, lv=%d), reference (gv=%d, lv=%d)",
					seed, i, sgv, slv, rgv, rlv)
			}
		}
	}
}

// TestExploreReachesFastPath proves the deterministic explorer still
// drives executions through the lock-free CAS fast path: across the
// cctest.Explore workload set (every execution creates a fresh
// controller, accumulated here), the controllers must report both
// fast-path and slow-path spawns — i.e. sharding did not push admission
// off the schedulable seam, and the explorer's interleavings cover both
// claim regimes.
func TestExploreReachesFastPath(t *testing.T) {
	var mu sync.Mutex
	var ctrls []*VCABasic
	cctest.Explore(t, cctest.ExploreConfig{
		New: func() core.Controller {
			c := NewVCABasic()
			mu.Lock()
			ctrls = append(ctrls, c)
			mu.Unlock()
			return c
		},
		Kind:     cctest.KindBasic,
		Strategy: func() sched.Strategy { return sched.NewRandomWalk(7) },
		Runs:     60,
		MaxSteps: 20000,
	})
	var fast, slow uint64
	for _, c := range ctrls {
		f, s := c.SpawnStats()
		fast += f
		slow += s
	}
	if fast == 0 {
		t.Fatalf("explored executions never took the CAS fast path (fast=0, slow=%d)", slow)
	}
	if slow == 0 {
		t.Fatalf("explored executions never took the ordered-lock slow path (fast=%d, slow=0)", fast)
	}
	t.Logf("explored spawns: %d fast, %d slow", fast, slow)
}

// TestShardedDisjointRace hammers disjoint single-slot footprints from
// many goroutines — the pure CAS-fast-path regime — under whatever
// -race/-cpu the test run carries, and checks the per-slot version
// arithmetic came out exact.
func TestShardedDisjointRace(t *testing.T) {
	const lanes, per = 8, 200
	c := NewVCABasic()
	mps := make([]*core.Microprotocol, lanes)
	specs := make([]*core.Spec, lanes)
	for i := range mps {
		mps[i] = core.NewMicroprotocol(fmt.Sprintf("lane%d", i))
		specs[i] = core.Access(mps[i])
	}
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tok, err := c.Spawn(nil, specs[i])
				if err != nil {
					panic(err)
				}
				st := tok.(*basicToken)
				st.fp.states[0].waitAtLeast(st.nodes[0].minLv)
				c.Complete(tok)
			}
		}(i)
	}
	wg.Wait()
	for i, mp := range mps {
		gv, lv := shardedVersions(c, mp)
		if gv != per || lv != per {
			t.Fatalf("lane %d: gv=%d, lv=%d, want %d/%d", i, gv, lv, per, per)
		}
	}
	fast, slow := c.SpawnStats()
	if fast+slow != lanes*per {
		t.Fatalf("stats: %d fast + %d slow != %d spawns", fast, slow, lanes*per)
	}
	t.Logf("disjoint hammer: %d fast, %d slow", fast, slow)
}

// TestShardedOverlapRace hammers overlapping multi-slot footprints — the
// regime where fast-path claims race slow-path ordered locking and
// abandoned claims retire as phantom releases — and checks the table
// still quiesces with exact counts.
func TestShardedOverlapRace(t *testing.T) {
	const workers, per = 8, 150
	c := NewVCABasic()
	a := core.NewMicroprotocol("a")
	b := core.NewMicroprotocol("b")
	d := core.NewMicroprotocol("d")
	specs := []*core.Spec{
		core.Access(a, b),
		core.Access(b, d),
		core.Access(a, d),
		core.Access(a, b, d),
	}
	counts := make(map[*core.Microprotocol]uint64)
	var cmu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			local := make(map[*core.Microprotocol]uint64)
			for j := 0; j < per; j++ {
				spec := specs[rng.Intn(len(specs))]
				tok, err := c.Spawn(nil, spec)
				if err != nil {
					panic(err)
				}
				for _, mp := range spec.MPs() {
					local[mp]++
				}
				c.Complete(tok)
			}
			cmu.Lock()
			for mp, n := range local {
				counts[mp] += n
			}
			cmu.Unlock()
		}(w)
	}
	wg.Wait()
	// Quiescence may lag Complete by one in-flight drain handoff on other
	// goroutines — but all goroutines have joined, and a drainer only runs
	// on a goroutine that pushed, so the queues are fully drained here.
	for _, mp := range []*core.Microprotocol{a, b, d} {
		gv, lv := shardedVersions(c, mp)
		// Phantom releases from abandoned fast-path claims advance gv and
		// lv together beyond the spawn count, so exact claim totals are a
		// lower bound; quiescence must be exact.
		if gv != lv {
			t.Fatalf("%s not quiescent: gv=%d, lv=%d", mp.Name(), gv, lv)
		}
		if gv < counts[mp] {
			t.Fatalf("%s: gv=%d below spawn count %d", mp.Name(), gv, counts[mp])
		}
	}
}
