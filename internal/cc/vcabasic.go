package cc

import "repro/internal/core"

// VCABasic is the Basic Version-Counting Algorithm of paper §5.1,
// implementing the plain "isolated M e" construct.
//
// Rule 1: spawning a computation k atomically increments the global
// version counter gv of every declared microprotocol and snapshots the
// results as k's private versions pv.
//
// Rule 2: k may call a handler of microprotocol p only when
// pv[p]−1 == lv[p], i.e. every earlier-spawned computation that declared p
// has released it.
//
// Rule 3: when k completes, each declared p's local version is upgraded to
// pv[p] — in spawn order, via the deferred-release queue.
type VCABasic struct {
	vt *versionTable
}

// NewVCABasic creates a controller enforcing the basic version-counting
// algorithm. The controller holds per-stack state; do not share it.
func NewVCABasic() *VCABasic { return &VCABasic{vt: newVersionTable()} }

// Name implements core.Controller.
func (c *VCABasic) Name() string { return "vca-basic" }

type basicEntry struct {
	st *mpState
	pv uint64
}

type basicToken struct {
	entries map[*core.Microprotocol]*basicEntry
}

// Spawn implements rule 1.
func (c *VCABasic) Spawn(spec *core.Spec) (core.Token, error) {
	t := &basicToken{entries: make(map[*core.Microprotocol]*basicEntry, len(spec.MPs()))}
	c.vt.mu.Lock()
	for _, mp := range spec.MPs() {
		c.vt.gv[mp]++
		t.entries[mp] = &basicEntry{st: c.vt.stateLocked(mp), pv: c.vt.gv[mp]}
	}
	c.vt.mu.Unlock()
	return t, nil
}

// Request rejects calls to microprotocols outside the declared set M
// (paper §4: an error is raised in the thread that issued the call).
func (c *VCABasic) Request(t core.Token, _, h *core.Handler) error {
	if t.(*basicToken).entries[h.MP()] == nil {
		return &core.UndeclaredError{MP: h.MP().Name(), Handler: h.Name()}
	}
	return nil
}

// Enter implements rule 2: block until the private version matches.
func (c *VCABasic) Enter(t core.Token, _, h *core.Handler) error {
	e := t.(*basicToken).entries[h.MP()]
	if e == nil {
		return &core.UndeclaredError{MP: h.MP().Name(), Handler: h.Name()}
	}
	e.st.wait(func(lv uint64) bool { return lv+1 >= e.pv })
	return nil
}

// Exit implements core.Controller; the basic algorithm releases nothing
// before completion.
func (c *VCABasic) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op for VCABasic).
func (c *VCABasic) RootReturned(core.Token) {}

// Complete implements rule 3: upgrade every declared microprotocol's local
// version to the private version, in spawn order.
func (c *VCABasic) Complete(t core.Token) {
	for _, e := range t.(*basicToken).entries {
		e.st.request(e.pv-1, e.pv)
	}
}
