package cc

import (
	"context"

	"repro/internal/core"
	"repro/internal/sched"
)

// VCABasic is the Basic Version-Counting Algorithm of paper §5.1,
// implementing the plain "isolated M e" construct.
//
// Rule 1: spawning a computation k atomically increments the global
// version counter gv of every declared microprotocol and snapshots the
// results as k's private versions pv.
//
// Rule 2: k may call a handler of microprotocol p only when
// pv[p]−1 == lv[p], i.e. every earlier-spawned computation that declared p
// has released it.
//
// Rule 3: when k completes, each declared p's local version is upgraded to
// pv[p] — in spawn order, via the deferred-release queue.
type VCABasic struct {
	vt *versionTable
}

// NewVCABasic creates a controller enforcing the basic version-counting
// algorithm. The controller holds per-stack state; do not share it.
func NewVCABasic() *VCABasic { return &VCABasic{vt: newVersionTable()} }

// Name implements core.Controller.
func (c *VCABasic) Name() string { return "vca-basic" }

// SetBlocker implements sched.Schedulable.
func (c *VCABasic) SetBlocker(b sched.Blocker) { c.vt.setBlocker(b) }

// SpawnStats reports how many spawns took the lock-free fast path and
// the ordered-lock slow path (see DESIGN.md §11).
func (c *VCABasic) SpawnStats() (fast, slow uint64) { return c.vt.spawnStats() }

// InstallEpoch implements core.Reconfigurer: removed microprotocols stop
// admitting claims, added ones start quiescent, and cached footprints
// touching removed slots are re-derived against the new epoch.
func (c *VCABasic) InstallEpoch(ec core.EpochChange) { c.vt.installEpoch(ec) }

// RetireEpoch implements core.Reconfigurer: removed slots drain to
// quiescence (lv == gv) before the superseded epoch retires.
func (c *VCABasic) RetireEpoch(ec core.EpochChange) error { return c.vt.retireEpoch(ec) }

// basicToken carries the computation's claims — one release node per
// footprint position; nodes[i].target is the private version pv[i].
type basicToken struct {
	fp    *footprint
	nodes []relNode
}

// Spawn implements rule 1: an array walk over the compiled footprint —
// two allocations, no map churn, and no lock at all when the footprint's
// slots are quiescent (versionTable.claim). Spawn never blocks, so the
// context is not consulted.
func (c *VCABasic) Spawn(_ context.Context, spec *core.Spec) (core.Token, error) {
	fp, err := c.vt.footprint(spec)
	if err != nil {
		return nil, err
	}
	t := &basicToken{fp: fp, nodes: make([]relNode, len(fp.slots))}
	if err := c.vt.claim(fp, t.nodes); err != nil {
		return nil, err
	}
	return t, nil
}

// Request rejects calls to microprotocols outside the declared set M
// (paper §4: an error is raised in the thread that issued the call).
func (c *VCABasic) Request(t core.Token, _, h *core.Handler) error {
	if t.(*basicToken).fp.pos(h.MP()) < 0 {
		return undeclared(h, t.(*basicToken).fp.mps)
	}
	return nil
}

// Enter implements rule 2: block until the private version matches, or
// the computation's context expires (the versions stay claimed either
// way; Complete releases them). The threshold pv[i]−1 is the claim's
// recorded minLv.
func (c *VCABasic) Enter(ctx context.Context, t core.Token, _, h *core.Handler) error {
	tok := t.(*basicToken)
	i := tok.fp.pos(h.MP())
	if i < 0 {
		return undeclared(h, tok.fp.mps)
	}
	if err := tok.fp.states[i].waitAtLeastCtx(ctx, tok.nodes[i].minLv); err != nil {
		return deadline("enter", h, err)
	}
	return nil
}

// Exit implements core.Controller; the basic algorithm releases nothing
// before completion.
func (c *VCABasic) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op for VCABasic).
func (c *VCABasic) RootReturned(core.Token) {}

// Complete implements rule 3: upgrade every declared microprotocol's local
// version to the private version, in spawn order — by pushing the token's
// embedded nodes onto the slots' group-commit stacks (no allocation).
func (c *VCABasic) Complete(t core.Token) {
	tok := t.(*basicToken)
	for i, st := range tok.fp.states {
		st.requestNode(&tok.nodes[i])
	}
}
