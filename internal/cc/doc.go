// Package cc provides the concurrency-control algorithms of the SAMOA
// runtime (paper §5) plus the baselines the paper compares against and the
// §7 future-work extensions.
//
// Algorithms from the paper:
//
//   - VCABasic (§5.1) — the basic version-counting algorithm behind
//     "isolated M e". A computation gets a private version per declared
//     microprotocol at spawn; a handler call is admitted only when the
//     private version is exactly one ahead of the microprotocol's local
//     version; completions upgrade local versions in spawn order.
//   - VCABound (§5.2) — "isolated bound M e". Global counters advance by
//     the declared least upper bound; handler completions bump local
//     versions (rule 4), so a computation that exhausts its bound on a
//     microprotocol releases it to successors before completing.
//   - VCARoute (§5.3) — "isolated route M e". A per-computation routing
//     graph of handler calls; microprotocols whose handlers are all
//     inactive and unreachable from active handlers are released early
//     (rule 4b).
//
// Baselines:
//
//   - Serial — the Appia model: computations never overlap (one at a
//     time). Trivially isolating, minimally concurrent.
//   - None — the Cactus model: no runtime control; the programmer is on
//     their own. Not isolating; used to demonstrate the races SAMOA
//     prevents.
//
// Extensions (paper §7):
//
//   - VCARW — isolation levels by handler kind: computations whose
//     declared use of a microprotocol is read-only share it with other
//     readers; writers serialize as in VCABasic.
//   - TSO — a conservative timestamp-ordering scheduler (the paper's
//     "second group" of algorithms, without rollback); per the paper's §6
//     remark, it admits only serial-equivalent schedules at roughly
//     Serial's concurrency for conflicting computations.
//
// Every controller is deadlock-free: spawns are totally ordered by a
// registration lock, so waits only ever point from later-spawned to
// earlier-spawned computations and the wait-for graph is acyclic.
// Controllers hold per-stack state; do not share one across stacks.
package cc
