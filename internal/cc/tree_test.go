package cc_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/trace"
)

// treeNode is a branching computation script: visit mp, then trigger each
// child (synchronously or asynchronously). Trees with async fan-out are
// what distinguish computations ("possibly multi-threaded transactions")
// from plain call chains.
type treeNode struct {
	mp       int
	children []*treeNode
	async    []bool // parallel to children
}

// randTree builds a random script tree over m microprotocols.
func randTree(rng *rand.Rand, m, maxNodes int) *treeNode {
	root := &treeNode{mp: rng.Intn(m)}
	nodes := []*treeNode{root}
	for len(nodes) < maxNodes && rng.Intn(4) != 0 {
		parent := nodes[rng.Intn(len(nodes))]
		child := &treeNode{mp: rng.Intn(m)}
		parent.children = append(parent.children, child)
		parent.async = append(parent.async, rng.Intn(2) == 0)
		nodes = append(nodes, child)
	}
	return root
}

func (n *treeNode) countVisits(counts map[int]int) {
	counts[n.mp]++
	for _, c := range n.children {
		c.countVisits(counts)
	}
}

// treeProto hosts the tree workloads. Counters are atomic because a tree
// may fan out asynchronously to the same microprotocol *within one
// computation*, and the isolation property only orders computations
// against each other — intra-computation thread consistency is the
// programmer's responsibility (the paper's Fig. 1 *assumes* handlers R
// and S are atomic). Isolation itself is asserted via the trace checker.
type treeProto struct {
	stack    *core.Stack
	rec      *trace.Recorder
	mps      []*core.Microprotocol
	handlers []*core.Handler
	events   []*core.EventType
	counters []atomic.Int64
}

func newTreeProto(ctrl core.Controller, m int) *treeProto {
	p := &treeProto{rec: trace.NewRecorder()}
	p.stack = core.NewStack(ctrl, core.WithTracer(p.rec))
	p.counters = make([]atomic.Int64, m)
	for i := 0; i < m; i++ {
		i := i
		mp := core.NewMicroprotocol(fmt.Sprintf("t%d", i))
		h := mp.AddHandler("visit", func(ctx *core.Context, msg core.Message) error {
			node := msg.(*treeNode)
			runtime.Gosched()
			p.counters[i].Add(1)
			for ci, child := range node.children {
				ev := p.events[child.mp]
				var err error
				if node.async[ci] {
					err = ctx.AsyncTrigger(ev, child)
				} else {
					err = ctx.Trigger(ev, child)
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		p.mps = append(p.mps, mp)
		p.handlers = append(p.handlers, h)
		p.events = append(p.events, core.NewEventType(fmt.Sprintf("te%d", i)))
	}
	p.stack.Register(p.mps...)
	for i := range p.events {
		p.stack.Bind(p.events[i], p.handlers[i])
	}
	return p
}

// specFor derives the spec of the given kind from the tree's structure.
func (p *treeProto) specFor(kind string, root *treeNode) *core.Spec {
	counts := map[int]int{}
	root.countVisits(counts)
	switch kind {
	case "bound":
		bounds := map[*core.Microprotocol]int{}
		for i, n := range counts {
			bounds[p.mps[i]] = n
		}
		return core.AccessBound(bounds)
	case "route":
		g := core.NewRouteGraph().Root(p.handlers[root.mp])
		var walk func(n *treeNode)
		walk = func(n *treeNode) {
			for _, c := range n.children {
				g.Edge(p.handlers[n.mp], p.handlers[c.mp])
				walk(c)
			}
		}
		walk(root)
		return core.Route(g)
	default:
		var mps []*core.Microprotocol
		for i := range counts {
			mps = append(mps, p.mps[i])
		}
		return core.Access(mps...)
	}
}

func (p *treeProto) run(kind string, root *treeNode) error {
	return p.stack.External(p.specFor(kind, root), p.events[root.mp], root)
}

// runTreeWorkload launches the trees concurrently and verifies counters
// and serializability.
func runTreeWorkload(t *testing.T, ctrl core.Controller, kind string, m int, trees []*treeNode) {
	t.Helper()
	p := newTreeProto(ctrl, m)
	var wg sync.WaitGroup
	for _, tr := range trees {
		wg.Add(1)
		go func(tr *treeNode) {
			defer wg.Done()
			if err := p.run(kind, tr); err != nil {
				t.Errorf("%s/%s: %v", ctrl.Name(), kind, err)
			}
		}(tr)
	}
	wg.Wait()
	want := make([]int, m)
	for _, tr := range trees {
		counts := map[int]int{}
		tr.countVisits(counts)
		for i, n := range counts {
			want[i] += n
		}
	}
	for i := range want {
		if got := p.counters[i].Load(); got != int64(want[i]) {
			t.Errorf("%s/%s: counter[%d] = %d, want %d", ctrl.Name(), kind, i, got, want[i])
		}
	}
	if rep := p.rec.Check(); !rep.Serializable {
		t.Errorf("%s/%s: tree workload not serializable: %v", ctrl.Name(), kind, rep.Cycle)
	}
}

// TestTreeWorkloadsAllControllers: randomized branching, async-fanning
// computations stay isolated under every controller variant.
func TestTreeWorkloadsAllControllers(t *testing.T) {
	combos := []struct {
		name string
		mk   func() core.Controller
		kind string
	}{
		{"serial", func() core.Controller { return cc.NewSerial() }, "basic"},
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, "basic"},
		{"vca-bound", func() core.Controller { return cc.NewVCABound() }, "bound"},
		{"vca-route", func() core.Controller { return cc.NewVCARoute() }, "route"},
		{"tso", func() core.Controller { return cc.NewTSO() }, "basic"},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			prop := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				m := 2 + rng.Intn(3)
				trees := make([]*treeNode, 2+rng.Intn(6))
				for i := range trees {
					trees[i] = randTree(rng, m, 8)
				}
				runTreeWorkload(t, combo.mk(), combo.kind, m, trees)
				return !t.Failed()
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTreeDeepAsyncFanout: a wide async fan-out from one handler — the
// "multi-threaded computation" case — is admitted and isolated.
func TestTreeDeepAsyncFanout(t *testing.T) {
	root := &treeNode{mp: 0}
	for i := 0; i < 12; i++ {
		root.children = append(root.children, &treeNode{mp: 1 + i%2})
		root.async = append(root.async, true)
	}
	for _, combo := range []struct {
		mk   func() core.Controller
		kind string
	}{
		{func() core.Controller { return cc.NewVCABasic() }, "basic"},
		{func() core.Controller { return cc.NewVCABound() }, "bound"},
		{func() core.Controller { return cc.NewVCARoute() }, "route"},
	} {
		runTreeWorkload(t, combo.mk(), combo.kind, 3, []*treeNode{root, root, root})
	}
}
