package cc_test

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/cctest"
	"repro/internal/core"
	"repro/internal/trace"
)

// faultCase enumerates every controller for the fault-containment
// regressions. Unlike the conformance battery, None is included in the
// panic test: even a non-isolating controller must survive a panicking
// handler.
type faultCase struct {
	name string
	new  func() core.Controller
	kind cctest.Kind
}

var faultCases = []faultCase{
	{"serial", func() core.Controller { return cc.NewSerial() }, cctest.KindBasic},
	{"none", func() core.Controller { return cc.NewNone() }, cctest.KindBasic},
	{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, cctest.KindBasic},
	{"vca-bound", func() core.Controller { return cc.NewVCABound() }, cctest.KindBound},
	{"vca-route", func() core.Controller { return cc.NewVCARoute() }, cctest.KindRoute},
	{"vca-rw", func() core.Controller { return cc.NewVCARW() }, cctest.KindBasic},
	{"tso", func() core.Controller { return cc.NewTSO() }, cctest.KindBasic},
	{"wait-die", func() core.Controller { return cc.NewWaitDie() }, cctest.KindBasic},
}

type nopSnap struct{}

func (nopSnap) Snapshot() any { return nil }
func (nopSnap) Restore(any)   {}

// faultFixture is a two-microprotocol stack: mp0 carries a panicking
// handler and a counting one (which chains to mp1's counter), so a
// follow-up computation overlapping the panicked footprint proves the
// controller released everything.
type faultFixture struct {
	ctrl        core.Controller
	stack       *core.Stack
	rec         *trace.Recorder
	mp0, mp1    *core.Microprotocol
	hBoom       *core.Handler
	hOk, hOk1   *core.Handler
	hSlow       *core.Handler
	evBoom      *core.EventType
	evOk, evOk1 *core.EventType
	evSlow      *core.EventType
	count       atomic.Int64
	slowEntered atomic.Bool
	slowRelease atomic.Bool
	slowBoom    atomic.Bool // hSlow panics (after release) instead of returning
}

func newFaultFixture(c faultCase) *faultFixture {
	f := &faultFixture{rec: trace.NewRecorder(), ctrl: c.new()}
	f.stack = core.NewStack(f.ctrl, core.WithTracer(f.rec))
	f.mp0 = core.NewMicroprotocol("fmp0")
	f.mp1 = core.NewMicroprotocol("fmp1")
	f.mp0.SetSnapshotter(nopSnap{})
	f.mp1.SetSnapshotter(nopSnap{})
	f.hBoom = f.mp0.AddHandler("boom", func(*core.Context, core.Message) error {
		panic("kaboom")
	})
	f.evOk1 = core.NewEventType("fok1")
	f.hOk = f.mp0.AddHandler("ok", func(ctx *core.Context, _ core.Message) error {
		f.count.Add(1)
		return ctx.Trigger(f.evOk1, nil)
	})
	f.hOk1 = f.mp1.AddHandler("ok1", func(*core.Context, core.Message) error {
		f.count.Add(1)
		return nil
	})
	f.hSlow = f.mp0.AddHandler("slow", func(*core.Context, core.Message) error {
		f.slowEntered.Store(true)
		for !f.slowRelease.Load() {
			runtime.Gosched()
		}
		if f.slowBoom.Load() {
			panic("late kaboom")
		}
		return nil
	})
	f.evBoom = core.NewEventType("fboom")
	f.evOk = core.NewEventType("fok")
	f.evSlow = core.NewEventType("fslow")
	f.stack.Register(f.mp0, f.mp1)
	f.stack.Bind(f.evBoom, f.hBoom)
	f.stack.Bind(f.evOk, f.hOk)
	f.stack.Bind(f.evOk1, f.hOk1)
	f.stack.Bind(f.evSlow, f.hSlow)
	return f
}

// spec builds the right flavour for a footprint rooted at root; wide
// footprints cover both microprotocols, narrow ones only mp0.
func (f *faultFixture) spec(kind cctest.Kind, root *core.Handler, wide bool) *core.Spec {
	switch kind {
	case cctest.KindBound:
		bounds := map[*core.Microprotocol]int{f.mp0: 1}
		if wide {
			bounds[f.mp1] = 1
		}
		return core.AccessBound(bounds)
	case cctest.KindRoute:
		g := core.NewRouteGraph().Root(root)
		if wide {
			g.Edge(f.hOk, f.hOk1)
		}
		return core.Route(g)
	default:
		if wide {
			return core.Access(f.mp0, f.mp1)
		}
		return core.Access(f.mp0)
	}
}

// TestPanicContainedPerController: a panicking handler surfaces as a
// typed PanicError carrying its identity, and a follow-up computation
// with an overlapping footprint completes — the panic released every
// version slot it held.
func TestPanicContainedPerController(t *testing.T) {
	for _, c := range faultCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			f := newFaultFixture(c)
			err := f.stack.External(f.spec(c.kind, f.hBoom, c.kind != cctest.KindRoute), f.evBoom, nil)
			var pe *core.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("panicking handler returned %v, want *core.PanicError", err)
			}
			if pe.Value != "kaboom" {
				t.Errorf("PanicError.Value = %v", pe.Value)
			}
			if pe.Handler != f.hBoom.String() {
				t.Errorf("PanicError.Handler = %q, want %q", pe.Handler, f.hBoom.String())
			}
			if len(pe.Trace) == 0 {
				t.Error("PanicError.Trace empty")
			}
			// Overlapping follow-up must complete; the timeout converts a
			// wedged controller into a typed failure instead of a hang.
			follow := f.spec(c.kind, f.hOk, true).WithTimeout(10 * time.Second)
			if err := f.stack.External(follow, f.evOk, nil); err != nil {
				t.Fatalf("follow-up after panic: %v", err)
			}
			if f.count.Load() < 2 {
				t.Fatalf("follow-up ran %d handler bodies, want 2", f.count.Load())
			}
			cctest.AssertInvariants(t, f.rec)
		})
	}
}

// TestEpochPinnedFramesRelease: computations begun under epoch N that die
// abnormally — one by panic, one by deadline — after epoch N+1 installs
// still release against epoch N's version slots: the old epoch drains
// with balanced accounting, the controller's retire wait observes the
// removed slot quiescent, and work on the new epoch (whose replacement
// slot starts quiescent) is admitted immediately. A stale spec naming the
// removed microprotocol is rejected with a typed ReconfiguredError.
func TestEpochPinnedFramesRelease(t *testing.T) {
	for _, c := range faultCases {
		c := c
		if !strings.HasPrefix(c.name, "vca-") {
			continue // only the version-table controllers are epoch-aware
		}
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			f := newFaultFixture(c)
			f.slowBoom.Store(true)

			// A: pinned to epoch 1, wedged inside hSlow holding mp0.
			aDone := make(chan error, 1)
			go func() {
				aDone <- f.stack.External(f.spec(c.kind, f.hSlow, false), f.evSlow, nil)
			}()
			for !f.slowEntered.Load() {
				runtime.Gosched()
			}
			// B: pinned to epoch 1, claims mp0+mp1, blocks behind A on mp0
			// until its deadline fires.
			bDone := make(chan error, 1)
			go func() {
				bDone <- f.stack.External(
					f.spec(c.kind, f.hOk, true).WithTimeout(300*time.Millisecond), f.evOk, nil)
			}()
			ss := f.ctrl.(interface{ SpawnStats() (uint64, uint64) })
			for {
				fast, slow := ss.SpawnStats()
				if fast+slow >= 2 {
					break // both computations claimed their epoch-1 versions
				}
				runtime.Gosched()
			}

			// Epoch 2: swap fmp1 for a v2 while A wedges and B waits.
			v2 := core.NewMicroprotocol("fmp1v2")
			v2ok1 := v2.AddHandler("ok1", func(*core.Context, core.Message) error {
				f.count.Add(1)
				return nil
			})
			if err := f.stack.Reconfigure(func(e *core.Epoch) { e.Replace("fmp1", v2) }); err != nil {
				t.Fatalf("Reconfigure: %v", err)
			}
			if got := f.stack.CurrentEpoch(); got != 2 {
				t.Fatalf("CurrentEpoch = %d, want 2", got)
			}

			// B dies by deadline, A by panic — both against epoch 1.
			var de *core.DeadlineError
			if err := <-bDone; !errors.As(err, &de) {
				t.Fatalf("blocked computation returned %v, want *core.DeadlineError", err)
			}
			f.slowRelease.Store(true)
			var pe *core.PanicError
			if err := <-aDone; !errors.As(err, &pe) {
				t.Fatalf("wedged computation returned %v, want *core.PanicError", err)
			}

			// Epoch 1 retires: every frame it admitted released its slots.
			select {
			case <-f.stack.EpochDrained(1):
			case <-time.After(10 * time.Second):
				t.Fatal("epoch 1 did not drain after its computations died")
			}
			for _, st := range f.stack.EpochStats() {
				if st.Epoch == 1 {
					if st.Begun != st.Ended || st.Active != 0 || !st.Retired {
						t.Fatalf("epoch 1 stats unbalanced: %+v", st)
					}
				}
			}
			if errs := f.stack.EpochErrs(); len(errs) != 0 {
				t.Fatalf("epoch errors: %v", errs)
			}
			if n := f.stack.DeadEpochDispatches(); n != 0 {
				t.Fatalf("%d dispatches into a retired epoch", n)
			}

			// A stale spec naming the removed microprotocol is rejected...
			var re *core.ReconfiguredError
			if err := f.stack.External(f.spec(c.kind, f.hOk, true), f.evOk, nil); !errors.As(err, &re) {
				t.Fatalf("stale spec returned %v, want *core.ReconfiguredError", err)
			}
			// ...while the rebuilt spec runs on epoch 2's quiescent slots.
			var follow *core.Spec
			switch c.kind {
			case cctest.KindBound:
				follow = core.AccessBound(map[*core.Microprotocol]int{f.mp0: 1, v2: 1})
			case cctest.KindRoute:
				follow = core.Route(core.NewRouteGraph().Root(f.hOk).Edge(f.hOk, v2ok1))
			default:
				follow = core.Access(f.mp0, v2)
			}
			if err := f.stack.External(follow.WithTimeout(10*time.Second), f.evOk, nil); err != nil {
				t.Fatalf("follow-up on new epoch: %v", err)
			}
			if f.count.Load() < 2 {
				t.Fatalf("follow-up ran %d handler bodies, want 2", f.count.Load())
			}
			cctest.AssertInvariants(t, f.rec)
		})
	}
}

// TestDeadlineReleasesPerController: a computation bounded by
// Spec.WithTimeout that blocks behind a long-running one times out with a
// typed DeadlineError, and once the blocker finishes the controller
// admits new overlapping work — the abandoned wait left no residue.
// None is excluded: it never blocks admission, so nothing can time out.
func TestDeadlineReleasesPerController(t *testing.T) {
	for _, c := range faultCases {
		c := c
		if c.name == "none" {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			f := newFaultFixture(c)
			done := make(chan error, 1)
			go func() {
				done <- f.stack.External(f.spec(c.kind, f.hSlow, false), f.evSlow, nil)
			}()
			for !f.slowEntered.Load() {
				runtime.Gosched()
			}
			err := f.stack.External(
				f.spec(c.kind, f.hOk, true).WithTimeout(50*time.Millisecond), f.evOk, nil)
			var de *core.DeadlineError
			if !errors.As(err, &de) {
				t.Fatalf("blocked computation returned %v, want *core.DeadlineError", err)
			}
			f.slowRelease.Store(true)
			if err := <-done; err != nil {
				t.Fatalf("blocker failed: %v", err)
			}
			follow := f.spec(c.kind, f.hOk, true).WithTimeout(10 * time.Second)
			if err := f.stack.External(follow, f.evOk, nil); err != nil {
				t.Fatalf("follow-up after timeout: %v", err)
			}
			cctest.AssertInvariants(t, f.rec)
		})
	}
}
