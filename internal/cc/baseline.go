package cc

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// Serial is the Appia baseline (paper §§1–2): computations never overlap.
// Spawn blocks until the previous computation completes, so every run is
// serial — trivially isolated, with no internal concurrency across
// computations.
type Serial struct {
	mu   sync.Mutex
	note *notifier
	busy bool
}

// NewSerial creates the serial (Appia-model) controller.
func NewSerial() *Serial { return &Serial{note: newNotifier()} }

// Name implements core.Controller.
func (c *Serial) Name() string { return "serial" }

// SetBlocker implements sched.Schedulable.
func (c *Serial) SetBlocker(b sched.Blocker) {
	c.mu.Lock()
	c.note.blk = b
	c.mu.Unlock()
}

// Spawn blocks until the stack is quiescent, then admits the computation;
// a cancelled wait leaves no claim behind. Admission is FIFO: a spawn
// that finds the stack busy (or other spawns already parked) parks, and
// Complete hands the slot to the longest waiter directly. Without the
// handoff a completing thread that immediately re-spawns wins the freed
// slot every time — parked spawns starve, and a computation pinned to a
// superseded epoch can hold that epoch's drain open forever (live
// reconfiguration's settle would never finish).
func (c *Serial) Spawn(ctx context.Context, _ *core.Spec) (core.Token, error) {
	c.mu.Lock()
	if !c.busy && len(c.note.ws) == 0 {
		c.busy = true
		c.mu.Unlock()
		return nil, nil
	}
	if err := c.note.waitLockedCtx(&c.mu, ctx); err != nil {
		c.mu.Unlock()
		return nil, deadline("spawn", nil, err)
	}
	// Woken by Complete's handoff: busy stayed true on our behalf.
	c.mu.Unlock()
	return nil, nil
}

// Request implements core.Controller (no per-call control).
func (c *Serial) Request(core.Token, *core.Handler, *core.Handler) error { return nil }

// Enter implements core.Controller (no per-call control).
func (c *Serial) Enter(context.Context, core.Token, *core.Handler, *core.Handler) error { return nil }

// Exit implements core.Controller (no per-call control).
func (c *Serial) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op).
func (c *Serial) RootReturned(core.Token) {}

// Complete releases the stack: the slot transfers to the longest-parked
// spawn when one exists (busy stays true for it), and frees up otherwise.
func (c *Serial) Complete(core.Token) {
	c.mu.Lock()
	if !c.note.signalLocked() {
		c.busy = false
	}
	c.mu.Unlock()
}

// None is the Cactus baseline (paper §§1–2): the runtime imposes no
// synchronisation at all; any interleaving of computations may occur, and
// the programmer is responsible for correctness. It does not enforce the
// isolation property — package trace's checker demonstrates the resulting
// violations in the tests and in experiment E1.
type None struct{}

// NewNone creates the unrestricted (Cactus-model) controller.
func NewNone() *None { return &None{} }

// Name implements core.Controller.
func (c *None) Name() string { return "none" }

// Spawn implements core.Controller (no control).
func (c *None) Spawn(context.Context, *core.Spec) (core.Token, error) { return nil, nil }

// Request implements core.Controller (no control).
func (c *None) Request(core.Token, *core.Handler, *core.Handler) error { return nil }

// Enter implements core.Controller (no control).
func (c *None) Enter(context.Context, core.Token, *core.Handler, *core.Handler) error { return nil }

// Exit implements core.Controller (no control).
func (c *None) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op).
func (c *None) RootReturned(core.Token) {}

// Complete implements core.Controller (no control).
func (c *None) Complete(core.Token) {}
