package cc_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestRouteCallerThroughFork: a thread forked by handler hp calls with
// hp as the route caller, so the edge hp→hq admits the call.
func TestRouteCallerThroughFork(t *testing.T) {
	var f *routeFixture
	ran := false
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			ctx.Fork(func(fctx *core.Context) error {
				return fctx.Trigger(f.eQ, nil)
			})
			return nil
		},
		"hq": func(*core.Context, core.Message) error { ran = true; return nil },
	})
	g := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq)
	if err := f.s.External(core.Route(g), f.eP, nil); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("forked trigger did not run")
	}
}

// TestRouteAsyncRequestErrorInCallerThread: the route check of an
// asynchronous trigger fails in the thread that issued it (paper §4).
func TestRouteAsyncRequestErrorInCallerThread(t *testing.T) {
	var f *routeFixture
	var innerErr error
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			innerErr = ctx.AsyncTrigger(f.eR, nil) // no route hp→hr
			return nil
		},
	})
	g := core.NewRouteGraph().Root(f.hp).Edge(f.hr, f.hq).Edge(f.hp, f.hq)
	if err := f.s.External(core.Route(g), f.eP, nil); err == nil {
		t.Fatal("expected error")
	}
	var nr *core.NoRouteError
	if !errors.As(innerErr, &nr) {
		t.Fatalf("inner err = %v (must surface synchronously)", innerErr)
	}
}

// TestRouteTriggerAllMultipleBindings: one event bound to handlers of two
// microprotocols under a route spec; both edges declared, both run.
func TestRouteTriggerAllMultipleBindings(t *testing.T) {
	s := core.NewStack(cc.NewVCARoute())
	p := core.NewMicroprotocol("P")
	q := core.NewMicroprotocol("Q")
	r := core.NewMicroprotocol("R")
	var ranQ, ranR bool
	fanout := core.NewEventType("fanout")
	hq := q.AddHandler("hq", func(*core.Context, core.Message) error { ranQ = true; return nil })
	hr := r.AddHandler("hr", func(*core.Context, core.Message) error { ranR = true; return nil })
	hp := p.AddHandler("hp", func(ctx *core.Context, _ core.Message) error {
		return ctx.TriggerAll(fanout, nil)
	})
	s.Register(p, q, r)
	root := core.NewEventType("root")
	s.Bind(root, hp)
	s.Bind(fanout, hq, hr)
	g := core.NewRouteGraph().Root(hp).Edge(hp, hq).Edge(hp, hr)
	if err := s.External(core.Route(g), root, nil); err != nil {
		t.Fatal(err)
	}
	if !ranQ || !ranR {
		t.Fatalf("ranQ=%v ranR=%v", ranQ, ranR)
	}
}

// TestEquivalentFinalStateAcrossControllers: the same workload produces
// the same final counters under every isolating controller — the
// observable meaning of "equivalent to some serial execution".
func TestEquivalentFinalStateAcrossControllers(t *testing.T) {
	scripts := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 1, 2}, {0, 2}, {2}, {0, 0, 1}}
	want := []int{5, 5, 5}
	kinds := map[string]string{
		"serial": "basic", "vca-basic": "basic", "vca-bound": "bound",
		"vca-route": "route", "tso": "basic",
	}
	mks := map[string]func() core.Controller{
		"serial":    func() core.Controller { return cc.NewSerial() },
		"vca-basic": func() core.Controller { return cc.NewVCABasic() },
		"vca-bound": func() core.Controller { return cc.NewVCABound() },
		"vca-route": func() core.Controller { return cc.NewVCARoute() },
		"tso":       func() core.Controller { return cc.NewTSO() },
	}
	for name, mk := range mks {
		p := newProto(mk(), 3)
		var wg sync.WaitGroup
		for _, seq := range scripts {
			wg.Add(1)
			go func(seq []int) {
				defer wg.Done()
				if err := p.run(kinds[name], seq); err != nil {
					t.Error(err)
				}
			}(seq)
		}
		wg.Wait()
		for i, w := range want {
			if p.counters[i] != w {
				t.Errorf("%s: counter[%d] = %d, want %d", name, i, p.counters[i], w)
			}
		}
	}
}

// TestTracerSeesSpawnAndComplete: the recorder observes the full
// computation lifecycle in order.
func TestTracerLifecycle(t *testing.T) {
	rec := trace.NewRecorder()
	s := core.NewStack(cc.NewVCABasic(), core.WithTracer(rec))
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nop)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	if err := s.External(core.Access(p), et, nil); err != nil {
		t.Fatal(err)
	}
	es := rec.Entries()
	if len(es) != 4 {
		t.Fatalf("entries = %v", es)
	}
	wantKinds := []trace.Kind{trace.KindSpawn, trace.KindStart, trace.KindEnd, trace.KindComplete}
	for i, k := range wantKinds {
		if es[i].Kind != k {
			t.Fatalf("entry %d = %v, want %v", i, es[i].Kind, k)
		}
	}
	if es[1].Event != et || es[1].Handler != h {
		t.Fatal("start entry payload wrong")
	}
}
