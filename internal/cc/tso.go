package cc

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// TSO is a conservative timestamp-ordering scheduler — a representative of
// the paper's "second group" of algorithms (timestamp ordering, §1) in its
// no-rollback, "ultimate conservative" form (§6): instead of aborting
// late operations, it refuses to start a computation until doing so cannot
// require an abort.
//
// Each computation takes a timestamp at spawn. A computation is admitted
// once (a) no admitted, still-running computation shares a declared
// microprotocol with it, and (b) no waiting computation with a smaller
// timestamp shares one — so conflicting computations run one at a time, in
// timestamp order, while disjoint computations proceed freely.
//
// As the paper remarks, conservative timestamp ordering "produce[s] serial
// executions" for conflicting workloads; experiment E7 confirms that shape
// against the versioning algorithms.
type TSO struct {
	mu     sync.Mutex
	note   *notifier
	nextTS uint64

	admitted map[*tsoToken]bool
	waiting  []*tsoToken // ascending timestamps
}

// tsoToken reuses the spec's deduplicated, ID-sorted microprotocol slice;
// declaration checks and conflict detection walk it directly instead of a
// per-spawn map.
type tsoToken struct {
	ts  uint64
	mps []*core.Microprotocol // Spec.MPs(): sorted by ID, immutable
}

// NewTSO creates the conservative timestamp-ordering controller.
func NewTSO() *TSO {
	return &TSO{admitted: make(map[*tsoToken]bool), note: newNotifier()}
}

// Name implements core.Controller.
func (c *TSO) Name() string { return "tso" }

// SetBlocker implements sched.Schedulable.
func (c *TSO) SetBlocker(b sched.Blocker) {
	c.mu.Lock()
	c.note.blk = b
	c.mu.Unlock()
}

// conflicts reports whether the tokens share a declared microprotocol — a
// merge-intersection of two ID-sorted slices.
func (a *tsoToken) conflicts(b *tsoToken) bool {
	i, j := 0, 0
	for i < len(a.mps) && j < len(b.mps) {
		switch {
		case a.mps[i] == b.mps[j]:
			return true
		case a.mps[i].ID() < b.mps[j].ID():
			i++
		default:
			j++
		}
	}
	return false
}

func (a *tsoToken) declares(mp *core.Microprotocol) bool {
	for _, m := range a.mps {
		if m == mp {
			return true
		}
	}
	return false
}

// Spawn blocks until the computation is admissible or ctx expires. A
// cancelled spawn leaves the waiting list and re-broadcasts: its presence
// may have been the only thing blocking a younger conflicting waiter.
func (c *TSO) Spawn(ctx context.Context, spec *core.Spec) (core.Token, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextTS++
	tok := &tsoToken{ts: c.nextTS, mps: spec.MPs()}
	c.waiting = append(c.waiting, tok)
	for !c.admissibleLocked(tok) {
		if err := c.note.waitLockedCtx(&c.mu, ctx); err != nil {
			c.removeWaitingLocked(tok)
			c.note.broadcastLocked()
			return nil, deadline("spawn", nil, err)
		}
	}
	c.removeWaitingLocked(tok)
	c.admitted[tok] = true
	return tok, nil
}

func (c *TSO) removeWaitingLocked(tok *tsoToken) {
	for i, w := range c.waiting {
		if w == tok {
			c.waiting = append(c.waiting[:i], c.waiting[i+1:]...)
			break
		}
	}
}

func (c *TSO) admissibleLocked(tok *tsoToken) bool {
	for adm := range c.admitted {
		if tok.conflicts(adm) {
			return false
		}
	}
	for _, w := range c.waiting {
		if w.ts < tok.ts && tok.conflicts(w) {
			return false
		}
	}
	return true
}

// Request validates the declared set.
func (c *TSO) Request(t core.Token, _, h *core.Handler) error {
	if !t.(*tsoToken).declares(h.MP()) {
		return undeclared(h, t.(*tsoToken).mps)
	}
	return nil
}

// Enter implements core.Controller; admission happened at Spawn.
func (c *TSO) Enter(context.Context, core.Token, *core.Handler, *core.Handler) error { return nil }

// Exit implements core.Controller (no per-call bookkeeping).
func (c *TSO) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op).
func (c *TSO) RootReturned(core.Token) {}

// Complete releases the computation's claims and wakes waiters.
func (c *TSO) Complete(t core.Token) {
	c.mu.Lock()
	delete(c.admitted, t.(*tsoToken))
	c.note.broadcastLocked()
	c.mu.Unlock()
}
