package cc_test

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/core"
)

// counterState is a snapshottable counter for the WaitDie example.
type counterState struct{ v int }

func (s *counterState) Snapshot() any    { return s.v }
func (s *counterState) Restore(snap any) { s.v = snap.(int) }

// The rollback group in miniature: a microprotocol opts into rollback
// scheduling by providing a Snapshotter; aborted computations are undone
// and transparently re-executed by Isolated.
func ExampleNewWaitDie() {
	ctrl := cc.NewWaitDie()
	stack := core.NewStack(ctrl)

	state := &counterState{}
	counter := core.NewMicroprotocol("counter")
	counter.SetSnapshotter(state)
	inc := counter.AddHandler("inc", func(*core.Context, core.Message) error {
		state.v++
		return nil
	})
	stack.Register(counter)
	ev := core.NewEventType("Inc")
	stack.Bind(ev, inc)

	for i := 0; i < 3; i++ {
		if err := stack.External(core.Access(counter), ev, nil); err != nil {
			fmt.Println(err)
		}
	}
	fmt.Println(state.v, ctrl.Aborts())
	// Output: 3 0
}

// The Appia and Cactus baselines differ only in what they forbid: Serial
// admits one computation at a time, None admits anything.
func ExampleNewSerial() {
	stack := core.NewStack(cc.NewSerial())
	mp := core.NewMicroprotocol("mp")
	h := mp.AddHandler("h", func(*core.Context, core.Message) error { return nil })
	stack.Register(mp)
	ev := core.NewEventType("ev")
	stack.Bind(ev, h)
	fmt.Println(stack.External(core.Access(mp), ev, nil))
	// Output: <nil>
}
