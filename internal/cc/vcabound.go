package cc

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// VCABound is the Version-Counting with Least-Upper-Bound Algorithm of
// paper §5.2, implementing "isolated bound M e".
//
// Rule 1: gv advances by bound[p], the declared least upper bound of
// visits, and pv snapshots the result.
//
// Rule 2: a call is admitted while pv[p]−bound[p] ≤ lv[p] < pv[p]; a
// computation that tries to exceed its own declared bound gets a
// BoundExhaustedError in the thread that issued the call.
//
// Rule 4: every completed handler execution increments lv[p] by one, so a
// computation that used up its bound on p hands p to its successor before
// completing — the extra parallelism this algorithm buys.
//
// Rule 3: completion upgrades any lv[p] still below pv[p] (the computation
// visited p fewer times than declared), never downgrading.
type VCABound struct {
	vt *versionTable
}

// NewVCABound creates a controller enforcing the least-upper-bound
// version-counting algorithm. Specs must be built with core.AccessBound.
// Its version table claims with the spec's bounds as rule-1 deltas.
func NewVCABound() *VCABound { return &VCABound{vt: newBoundVersionTable()} }

// Name implements core.Controller.
func (c *VCABound) Name() string { return "vca-bound" }

// SetBlocker implements sched.Schedulable.
func (c *VCABound) SetBlocker(b sched.Blocker) { c.vt.setBlocker(b) }

// SpawnStats reports how many spawns took the lock-free fast path and
// the ordered-lock slow path (see DESIGN.md §11).
func (c *VCABound) SpawnStats() (fast, slow uint64) { return c.vt.spawnStats() }

// InstallEpoch implements core.Reconfigurer (see versionTable.installEpoch).
func (c *VCABound) InstallEpoch(ec core.EpochChange) { c.vt.installEpoch(ec) }

// RetireEpoch implements core.Reconfigurer (see versionTable.retireEpoch).
func (c *VCABound) RetireEpoch(ec core.EpochChange) error { return c.vt.retireEpoch(ec) }

// boundToken carries the computation's claims and consumed visit counts,
// parallel to the spec's compiled footprint. nodes[i].target is pv[i];
// nodes[i].minLv is pv[i]−bound[i], the admission window's lower edge.
type boundToken struct {
	mu        sync.Mutex
	fp        *footprint
	nodes     []relNode
	requested []uint64 //samoa:guard mu — visits consumed so far
}

// Spawn implements rule 1. The footprint is validated in full before any
// counter moves, so an invalid spec cannot leave gv advanced with no
// matching release.
func (c *VCABound) Spawn(_ context.Context, spec *core.Spec) (core.Token, error) {
	if !spec.HasBounds() {
		return nil, &core.SpecError{Controller: c.Name(), Reason: "spec carries no visit bounds; build it with core.AccessBound"}
	}
	fp, err := c.vt.footprint(spec)
	if err != nil {
		return nil, err
	}
	for i, b := range fp.bounds {
		if b == 0 {
			return nil, &core.SpecError{Controller: c.Name(), Reason: "non-positive bound for microprotocol " + fp.mps[i].Name()}
		}
	}
	t := &boundToken{
		fp:        fp,
		nodes:     make([]relNode, len(fp.slots)),
		requested: make([]uint64, len(fp.slots)),
	}
	if err := c.vt.claim(fp, t.nodes); err != nil {
		return nil, err
	}
	return t, nil
}

// Request consumes one declared visit of h's microprotocol, failing when
// the least upper bound is exhausted (paper §4: "A runtime error exception
// will be thrown if the number is exhausted").
func (c *VCABound) Request(t core.Token, _, h *core.Handler) error {
	tok := t.(*boundToken)
	i := tok.fp.pos(h.MP())
	if i < 0 {
		return undeclared(h, tok.fp.mps)
	}
	tok.mu.Lock()
	defer tok.mu.Unlock()
	if tok.requested[i] >= tok.fp.bounds[i] {
		return &core.BoundExhaustedError{MP: h.MP().Name(), Bound: int(tok.fp.bounds[i])}
	}
	tok.requested[i]++
	return nil
}

// Enter implements rule 2. Waiting for lv to reach the window's lower edge
// (the claim's recorded minLv = pv−bound) suffices: lv < pv is invariant
// while the computation still holds unconsumed budget, because lv only
// passes pv−1 through this computation's own rule-4 increments or its
// rule-3 completion.
func (c *VCABound) Enter(ctx context.Context, t core.Token, _, h *core.Handler) error {
	tok := t.(*boundToken)
	i := tok.fp.pos(h.MP())
	if i < 0 {
		return undeclared(h, tok.fp.mps)
	}
	if err := tok.fp.states[i].waitAtLeastCtx(ctx, tok.nodes[i].minLv); err != nil {
		return deadline("enter", h, err)
	}
	return nil
}

// Exit implements rule 4: a completed handler execution bumps the local
// version by one.
func (c *VCABound) Exit(t core.Token, h *core.Handler) {
	tok := t.(*boundToken)
	if i := tok.fp.pos(h.MP()); i >= 0 {
		tok.fp.states[i].bump()
	}
}

// RootReturned implements core.Controller (no-op for VCABound).
func (c *VCABound) RootReturned(core.Token) {}

// Complete implements rule 3, pushing the token's embedded release nodes
// (upgrade lv to pv once lv ≥ pv−bound; never downgrading).
func (c *VCABound) Complete(t core.Token) {
	tok := t.(*boundToken)
	for i, st := range tok.fp.states {
		st.requestNode(&tok.nodes[i])
	}
}
