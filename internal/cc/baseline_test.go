package cc_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/trace"
)

func TestSerialAdmitsOneComputationAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 4; trial++ {
		rep := hammer(t, cc.NewSerial(), "basic", 3, randScripts(rng, 10, 3, 5))
		if !rep.Serial {
			t.Fatal("Serial controller produced a non-serial run")
		}
	}
}

func TestSerialBlocksSpawnUntilCompletion(t *testing.T) {
	s := core.NewStack(cc.NewSerial())
	hold := make(chan struct{})
	started := make(chan struct{})
	k1done := make(chan error, 1)
	go func() {
		k1done <- s.Isolated(core.Access(), func(*core.Context) error {
			close(started)
			<-hold
			return nil
		})
	}()
	<-started
	k2done := make(chan error, 1)
	go func() { k2done <- s.Isolated(core.Access(), func(*core.Context) error { return nil }) }()
	select {
	case <-k2done:
		t.Fatal("second computation admitted while first active")
	case <-time.After(50 * time.Millisecond):
	}
	close(hold)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
	if err := <-k2done; err != nil {
		t.Fatal(err)
	}
}

// TestNoneAdmitsIsolationViolation orchestrates the paper's run r3 (§2):
// computation ka sees R before kb but S after kb — a conflict cycle. Under
// the Cactus-model None controller the schedule goes through, and the
// checker reports the violation.
func TestNoneAdmitsIsolationViolation(t *testing.T) {
	rec := trace.NewRecorder()
	s := core.NewStack(cc.NewNone(), core.WithTracer(rec))
	mpR := core.NewMicroprotocol("R")
	mpS := core.NewMicroprotocol("S")
	hR := mpR.AddHandler("r", nop)
	hS := mpS.AddHandler("s", nop)
	s.Register(mpR, mpS)
	eR, eS := core.NewEventType("eR"), core.NewEventType("eS")
	s.Bind(eR, hR)
	s.Bind(eS, hS)
	spec := core.Access(mpR, mpS)

	aR := make(chan struct{}) // ka finished R
	bS := make(chan struct{}) // kb finished S
	kaDone := make(chan error, 1)
	kbDone := make(chan error, 1)
	go func() {
		kaDone <- s.Isolated(spec, func(ctx *core.Context) error {
			if err := ctx.Trigger(eR, nil); err != nil {
				return err
			}
			close(aR)
			<-bS // let kb touch R and S first
			return ctx.Trigger(eS, nil)
		})
	}()
	go func() {
		kbDone <- s.Isolated(spec, func(ctx *core.Context) error {
			<-aR
			if err := ctx.Trigger(eR, nil); err != nil {
				return err
			}
			if err := ctx.Trigger(eS, nil); err != nil {
				return err
			}
			close(bS)
			return nil
		})
	}()
	if err := <-kaDone; err != nil {
		t.Fatal(err)
	}
	if err := <-kbDone; err != nil {
		t.Fatal(err)
	}
	rep := rec.Check()
	if rep.Serializable {
		t.Fatal("r3-style schedule must be reported as an isolation violation")
	}
	if len(rep.Cycle) == 0 {
		t.Fatal("violation report must carry a witness cycle")
	}
}

// TestNoneImposesNoBlocking: under None even fully-overlapping specs
// overlap in time.
func TestNoneImposesNoBlocking(t *testing.T) {
	s := core.NewStack(cc.NewNone())
	p := core.NewMicroprotocol("p")
	hold := make(chan struct{})
	entered := make(chan struct{}, 2)
	h := p.AddHandler("h", func(*core.Context, core.Message) error {
		entered <- struct{}{}
		<-hold
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	spec := core.Access(p)
	done := make(chan error, 2)
	go func() { done <- s.External(spec, et, nil) }()
	go func() { done <- s.External(spec, et, nil) }()
	// Both handlers get in simultaneously.
	<-entered
	<-entered
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestControllersAcceptAnySpecKind: Serial and None run bound and route
// specs too (they simply ignore the extra structure).
func TestControllersAcceptAnySpecKind(t *testing.T) {
	for _, mk := range []func() core.Controller{
		func() core.Controller { return cc.NewSerial() },
		func() core.Controller { return cc.NewNone() },
	} {
		for _, kind := range []string{"basic", "bound", "route"} {
			ctrl := mk()
			p := newProto(ctrl, 2)
			if err := p.run(kind, []int{0, 1, 0}); err != nil {
				t.Fatalf("%s/%s: %v", ctrl.Name(), kind, err)
			}
		}
	}
}

// TestSerialSpawnHandoffFIFO pins the anti-barging guarantee: when a
// computation completes while another spawn is parked, the slot transfers
// to the parked spawn — a fresh spawn issued right after the Complete
// queues behind it. Without the handoff, a thread looping
// spawn→work→complete→spawn re-claims the freed slot every time and
// parked spawns starve; a starved spawn pinned to a superseded epoch
// holds that epoch's drain open forever (see live reconfiguration).
func TestSerialSpawnHandoffFIFO(t *testing.T) {
	ctrl := cc.NewSerial()
	ctx := context.Background()
	tokA, err := ctrl.Spawn(ctx, core.Access())
	if err != nil {
		t.Fatal(err)
	}
	bAdmitted := make(chan struct{})
	go func() {
		tokB, err := ctrl.Spawn(ctx, core.Access())
		if err != nil {
			t.Error(err)
			return
		}
		close(bAdmitted)
		ctrl.Complete(tokB)
	}()
	time.Sleep(50 * time.Millisecond) // let B park behind A
	ctrl.Complete(tokA)
	tokC, err := ctrl.Spawn(ctx, core.Access()) // the barger
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-bAdmitted:
	default:
		t.Fatal("a spawn issued after Complete barged ahead of the parked one")
	}
	ctrl.Complete(tokC)
}

// TestSerialCancelledWaiterReleasesSlot: a parked spawn abandoned by its
// context leaves no claim behind — the handoff skips it and the slot
// frees normally.
func TestSerialCancelledWaiterReleasesSlot(t *testing.T) {
	ctrl := cc.NewSerial()
	tokA, err := ctrl.Spawn(context.Background(), core.Access())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := ctrl.Spawn(ctx, core.Access()); err == nil {
		t.Fatal("expired spawn admitted")
	}
	ctrl.Complete(tokA)
	tokB, err := ctrl.Spawn(context.Background(), core.Access())
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Complete(tokB)
}
