package cc

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// RefVCABasic is the retained single-mutex reference implementation of
// the basic version-counting algorithm: one controller-wide mutex guards
// map-keyed gv/lv counters and a flat deferred-release list, and every
// blocked computation parks on one broadcast set. This is the
// pre-sharding architecture in its plainest form — deliberately naive,
// kept as the differential-testing oracle for the lock-free sharded
// admission path (DESIGN.md §11): any workload must observe identical
// version assignments and admission decisions from both.
//
// It is exercised by the conformance battery and the differential tests;
// production code should use VCABasic.
type RefVCABasic struct {
	mu      sync.Mutex
	n       *notifier
	gv      map[*core.Microprotocol]uint64
	lv      map[*core.Microprotocol]uint64
	pending map[*core.Microprotocol][]release
}

// NewRefVCABasic creates the reference controller.
func NewRefVCABasic() *RefVCABasic {
	return &RefVCABasic{
		n:       newNotifier(),
		gv:      make(map[*core.Microprotocol]uint64),
		lv:      make(map[*core.Microprotocol]uint64),
		pending: make(map[*core.Microprotocol][]release),
	}
}

// Name implements core.Controller.
func (c *RefVCABasic) Name() string { return "ref-vca-basic" }

// SetBlocker implements sched.Schedulable.
func (c *RefVCABasic) SetBlocker(b sched.Blocker) {
	c.mu.Lock()
	c.n.blk = b
	c.mu.Unlock()
}

// refToken carries the computation's private versions, map-keyed.
type refToken struct {
	mps []*core.Microprotocol
	pv  map[*core.Microprotocol]uint64
}

// Spawn implements rule 1 under the global mutex.
func (c *RefVCABasic) Spawn(_ context.Context, spec *core.Spec) (core.Token, error) {
	mps := spec.MPs()
	t := &refToken{mps: mps, pv: make(map[*core.Microprotocol]uint64, len(mps))}
	c.mu.Lock()
	for _, mp := range mps {
		c.gv[mp]++
		t.pv[mp] = c.gv[mp]
	}
	c.mu.Unlock()
	return t, nil
}

func (t *refToken) declared(mp *core.Microprotocol) bool {
	_, ok := t.pv[mp]
	return ok
}

// Request rejects calls outside the declared set.
func (c *RefVCABasic) Request(t core.Token, _, h *core.Handler) error {
	tok := t.(*refToken)
	if !tok.declared(h.MP()) {
		return undeclared(h, tok.mps)
	}
	return nil
}

// Enter implements rule 2: predicate loop under the global mutex, parked
// on the broadcast set.
func (c *RefVCABasic) Enter(ctx context.Context, t core.Token, _, h *core.Handler) error {
	tok := t.(*refToken)
	mp := h.MP()
	if !tok.declared(mp) {
		return undeclared(h, tok.mps)
	}
	min := tok.pv[mp] - 1
	c.mu.Lock()
	for c.lv[mp] < min {
		if err := c.n.waitLockedCtx(&c.mu, ctx); err != nil {
			c.mu.Unlock()
			return deadline("enter", h, err)
		}
	}
	c.mu.Unlock()
	return nil
}

// Exit implements core.Controller (no early release in the basic
// algorithm).
func (c *RefVCABasic) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op).
func (c *RefVCABasic) RootReturned(core.Token) {}

// Complete implements rule 3: queue each release, apply everything due,
// broadcast once.
func (c *RefVCABasic) Complete(t core.Token) {
	tok := t.(*refToken)
	c.mu.Lock()
	for _, mp := range tok.mps {
		pv := tok.pv[mp]
		c.pending[mp] = append(c.pending[mp], release{minLv: pv - 1, target: pv})
	}
	c.applyLocked()
	c.mu.Unlock()
}

// applyLocked drains due releases to a fixpoint (cascades included) and
// broadcasts when any local version moved. Callers hold c.mu.
func (c *RefVCABasic) applyLocked() {
	moved := false
	for changed := true; changed; {
		changed = false
		for mp, q := range c.pending {
			kept := q[:0]
			for _, r := range q {
				if c.lv[mp] >= r.minLv {
					if r.target > c.lv[mp] {
						c.lv[mp] = r.target
					}
					moved, changed = true, true
				} else {
					kept = append(kept, r)
				}
			}
			if len(kept) == 0 {
				delete(c.pending, mp)
			} else {
				c.pending[mp] = kept
			}
		}
	}
	if moved {
		c.n.broadcastLocked()
	}
}

// versions reports (gv, lv) of mp — the differential tests' observation
// point.
func (c *RefVCABasic) versions(mp *core.Microprotocol) (gv, lv uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gv[mp], c.lv[mp]
}
