package cc_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// proto is a script-driven test protocol: m microprotocols, each with one
// "visit" handler doing an unsynchronized read-modify-write on a counter.
// A computation executes a script — a sequence of microprotocol indices —
// as a chain: the root triggers the first visit, each visit triggers the
// next. Counters are deliberately not atomic: if a controller fails to
// isolate computations, the race detector and the lost-update check both
// catch it.
type proto struct {
	stack    *core.Stack
	rec      *trace.Recorder
	mps      []*core.Microprotocol
	events   []*core.EventType
	handlers []*core.Handler
	counters []int
}

// visitScript is the message threaded through a chain of visits.
type visitScript struct {
	seq []int // microprotocol indices
	pos int
}

func newProto(ctrl core.Controller, m int) *proto {
	p := &proto{rec: trace.NewRecorder()}
	p.stack = core.NewStack(ctrl, core.WithTracer(p.rec))
	p.counters = make([]int, m)
	for i := 0; i < m; i++ {
		i := i
		mp := core.NewMicroprotocol(fmt.Sprintf("mp%d", i))
		h := mp.AddHandler("visit", func(ctx *core.Context, msg core.Message) error {
			s := msg.(*visitScript)
			v := p.counters[i]
			runtime.Gosched()
			p.counters[i] = v + 1
			if s.pos+1 < len(s.seq) {
				return ctx.Trigger(p.events[s.seq[s.pos+1]], &visitScript{seq: s.seq, pos: s.pos + 1})
			}
			return nil
		})
		p.mps = append(p.mps, mp)
		p.handlers = append(p.handlers, h)
		p.events = append(p.events, core.NewEventType(fmt.Sprintf("visit%d", i)))
	}
	p.stack.Register(p.mps...)
	for i, et := range p.events {
		p.stack.Bind(et, p.handlers[i])
	}
	return p
}

// specFor builds the spec a controller kind needs for a script.
func (p *proto) specFor(kind string, seq []int) *core.Spec {
	switch kind {
	case "bound":
		bounds := map[*core.Microprotocol]int{}
		for _, i := range seq {
			bounds[p.mps[i]]++
		}
		return core.AccessBound(bounds)
	case "route":
		g := core.NewRouteGraph().Root(p.handlers[seq[0]])
		for i := 0; i+1 < len(seq); i++ {
			g.Edge(p.handlers[seq[i]], p.handlers[seq[i+1]])
		}
		return core.Route(g)
	default:
		var mps []*core.Microprotocol
		for _, i := range seq {
			mps = append(mps, p.mps[i])
		}
		return core.Access(mps...)
	}
}

// run executes one computation for the script and returns its error.
func (p *proto) run(kind string, seq []int) error {
	if len(seq) == 0 {
		return p.stack.Isolated(p.specFor(kind, []int{}), nil)
	}
	return p.stack.External(p.specFor(kind, seq), p.events[seq[0]], &visitScript{seq: seq})
}

// hammer launches the scripts concurrently and verifies: no errors, no
// lost updates, and a serializable trace.
func hammer(t *testing.T, ctrl core.Controller, kind string, m int, scripts [][]int) *trace.Report {
	t.Helper()
	p := newProto(ctrl, m)
	var wg sync.WaitGroup
	errs := make([]error, len(scripts))
	for i, seq := range scripts {
		wg.Add(1)
		go func(i int, seq []int) {
			defer wg.Done()
			errs[i] = p.run(kind, seq)
		}(i, seq)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("computation %d (%v): %v", i, scripts[i], err)
		}
	}
	want := make([]int, m)
	for _, seq := range scripts {
		for _, i := range seq {
			want[i]++
		}
	}
	for i := range want {
		if p.counters[i] != want[i] {
			t.Fatalf("lost update on mp%d: counter = %d, want %d", i, p.counters[i], want[i])
		}
	}
	rep := p.rec.Check()
	if !rep.Serializable {
		t.Fatalf("%s: execution not serializable; cycle %v", ctrl.Name(), rep.Cycle)
	}
	return rep
}

// randScripts builds n random visit scripts over m microprotocols.
func randScripts(rng *rand.Rand, n, m, maxLen int) [][]int {
	scripts := make([][]int, n)
	for i := range scripts {
		l := 1 + rng.Intn(maxLen)
		seq := make([]int, l)
		for j := range seq {
			seq[j] = rng.Intn(m)
		}
		scripts[i] = seq
	}
	return scripts
}
