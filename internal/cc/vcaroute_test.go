package cc_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

func TestVCARouteName(t *testing.T) {
	if cc.NewVCARoute().Name() != "vca-route" {
		t.Fatal("name")
	}
}

func TestVCARouteRequiresGraph(t *testing.T) {
	s := core.NewStack(cc.NewVCARoute())
	p := core.NewMicroprotocol("p")
	p.AddHandler("h", nop)
	s.Register(p)
	err := s.Isolated(core.Access(p), nil)
	var se *core.SpecError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SpecError", err)
	}
}

// routeFixture: three microprotocols P, Q, R. P has a second, inert
// handler hp2 (so another computation can touch P without cascading into
// Q), and Q has a second handler hq2 to exercise multi-handler
// microprotocols.
type routeFixture struct {
	s                    *core.Stack
	p, q, r              *core.Microprotocol
	hp, hp2, hq, hq2, hr *core.Handler
	eP, eP2, eQ, eQ2, eR *core.EventType
}

func newRouteFixture(fns map[string]core.HandlerFunc) *routeFixture {
	f := &routeFixture{
		s: core.NewStack(cc.NewVCARoute()),
		p: core.NewMicroprotocol("P"),
		q: core.NewMicroprotocol("Q"),
		r: core.NewMicroprotocol("R"),
	}
	get := func(name string) core.HandlerFunc {
		if fn := fns[name]; fn != nil {
			return fn
		}
		return nop
	}
	f.hp = f.p.AddHandler("hp", get("hp"))
	f.hp2 = f.p.AddHandler("hp2", get("hp2"))
	f.hq = f.q.AddHandler("hq", get("hq"))
	f.hq2 = f.q.AddHandler("hq2", get("hq2"))
	f.hr = f.r.AddHandler("hr", get("hr"))
	f.s.Register(f.p, f.q, f.r)
	f.eP, f.eP2, f.eQ, f.eQ2, f.eR = core.NewEventType("eP"), core.NewEventType("eP2"), core.NewEventType("eQ"), core.NewEventType("eQ2"), core.NewEventType("eR")
	f.s.Bind(f.eP, f.hp)
	f.s.Bind(f.eP2, f.hp2)
	f.s.Bind(f.eQ, f.hq)
	f.s.Bind(f.eQ2, f.hq2)
	f.s.Bind(f.eR, f.hr)
	return f
}

func TestVCARouteNonRootDirectCall(t *testing.T) {
	f := newRouteFixture(nil)
	g := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq)
	// The root expression calls hq directly, but only hp is a root.
	err := f.s.External(core.Route(g), f.eQ, nil)
	var nr *core.NoRouteError
	if !errors.As(err, &nr) || nr.From != "" {
		t.Fatalf("err = %v", err)
	}
}

func TestVCARouteUndeclaredEdge(t *testing.T) {
	var innerErr error
	var f *routeFixture
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			innerErr = ctx.Trigger(f.eR, nil) // no route hp→…→hr
			return nil
		},
	})
	g := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq)
	// R must be a vertex (else the error is UndeclaredError), but must
	// not be reachable from hp: hang it upstream with hr→hq.
	g.Edge(f.hr, f.hq)
	if err := f.s.External(core.Route(g), f.eP, nil); err == nil {
		t.Fatal("expected error from Isolated")
	}
	var nr *core.NoRouteError
	if !errors.As(innerErr, &nr) || nr.From != "P.hp" || nr.To != "R.hr" {
		t.Fatalf("inner err = %v", innerErr)
	}
}

func TestVCARouteUndeclaredMicroprotocol(t *testing.T) {
	var innerErr error
	var f *routeFixture
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			innerErr = ctx.Trigger(f.eR, nil) // R not even a vertex
			return nil
		},
	})
	g := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq)
	if err := f.s.External(core.Route(g), f.eP, nil); err == nil {
		t.Fatal("expected error")
	}
	var ue *core.UndeclaredError
	if !errors.As(innerErr, &ue) || ue.MP != "R" {
		t.Fatalf("inner err = %v", innerErr)
	}
}

// TestVCARoutePathCall: rule 2 admits any call with a route (path), not
// only a direct edge: hp may call hr through hp→hq→hr.
func TestVCARoutePathCall(t *testing.T) {
	var f *routeFixture
	ran := false
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			return ctx.Trigger(f.eR, nil)
		},
		"hr": func(*core.Context, core.Message) error { ran = true; return nil },
	})
	g := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq).Edge(f.hq, f.hr)
	if err := f.s.External(core.Route(g), f.eP, nil); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("hr did not run")
	}
}

func TestVCARouteSelfLoopRecursion(t *testing.T) {
	var f *routeFixture
	n := 0
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			n++
			if n < 4 {
				return ctx.Trigger(f.eP, nil)
			}
			return nil
		},
	})
	g := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hp)
	if err := f.s.External(core.Route(g), f.eP, nil); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
}

// TestVCARouteEarlyRelease is rule 4(b): after hp exits and the root
// returns, P is unreachable from the still-active hq, so a second
// computation may enter P while the first is still inside Q.
func TestVCARouteEarlyRelease(t *testing.T) {
	var f *routeFixture
	holdQ := make(chan struct{})
	inQ := make(chan struct{})
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			return ctx.AsyncTrigger(f.eQ, nil)
		},
		"hq": func(*core.Context, core.Message) error {
			close(inQ)
			<-holdQ
			return nil
		},
	})
	g1 := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq)
	k1done := make(chan error, 1)
	go func() { k1done <- f.s.External(core.Route(g1), f.eP, nil) }()
	<-inQ

	// k2 uses only P, through the inert hp2 (hp would cascade into Q).
	g2 := core.NewRouteGraph().Root(f.hp2)
	k2done := make(chan error, 1)
	go func() { k2done <- f.s.External(core.Route(g2), f.eP2, nil) }()
	select {
	case err := <-k2done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("k2 blocked on P although rule 4(b) should have released it")
	}
	close(holdQ)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
}

// TestVCARouteNoReleaseWhileReachable: P must NOT be released while an
// active handler can still reach it (edge hq→hp exists), even though hp is
// inactive.
func TestVCARouteNoReleaseWhileReachable(t *testing.T) {
	var f *routeFixture
	holdQ := make(chan struct{})
	inQ := make(chan struct{})
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			return ctx.AsyncTrigger(f.eQ, nil)
		},
		"hq": func(*core.Context, core.Message) error {
			close(inQ)
			<-holdQ
			return nil
		},
	})
	// Cycle: hp→hq→hp. While hq runs, P stays reachable.
	g1 := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq).Edge(f.hq, f.hp)
	k1done := make(chan error, 1)
	go func() { k1done <- f.s.External(core.Route(g1), f.eP, nil) }()
	<-inQ

	g2 := core.NewRouteGraph().Root(f.hp2)
	k2done := make(chan error, 1)
	go func() { k2done <- f.s.External(core.Route(g2), f.eP2, nil) }()
	select {
	case <-k2done:
		t.Fatal("P released while still reachable from active hq")
	case <-time.After(50 * time.Millisecond):
	}
	close(holdQ)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
	if err := <-k2done; err != nil { // rule 3 releases at completion
		t.Fatal(err)
	}
}

// TestVCARouteCallAfterRelease: calling a handler whose microprotocol was
// already released by rule 4(b) is a routing violation.
func TestVCARouteCallAfterRelease(t *testing.T) {
	var f *routeFixture
	var lateErr error
	released := make(chan struct{})
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			return ctx.AsyncTrigger(f.eQ, nil)
		},
		"hq": func(ctx *core.Context, _ core.Message) error {
			<-released // wait until P was early-released
			lateErr = ctx.Trigger(f.eP, nil)
			return nil
		},
	})
	// hq→hp edge declared... no: with that edge P stays reachable. The
	// violation needs P released, so no edge back: route check fails for
	// lack of a path *and* for absence from the graph.
	g := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq)
	k1done := make(chan error, 1)
	go func() { k1done <- f.s.External(core.Route(g), f.eP, nil) }()

	// P is released once hp exits and the root returns; give it a moment.
	time.Sleep(50 * time.Millisecond)
	close(released)
	if err := <-k1done; err == nil {
		t.Fatal("expected routing violation")
	}
	var nr *core.NoRouteError
	if !errors.As(lateErr, &nr) {
		t.Fatalf("late err = %v", lateErr)
	}
}

// TestVCARouteMultiHandlerMicroprotocol: a microprotocol is released only
// when ALL of its handlers are inactive and unreachable.
func TestVCARouteMultiHandlerMicroprotocol(t *testing.T) {
	var f *routeFixture
	holdQ2 := make(chan struct{})
	inQ2 := make(chan struct{})
	f = newRouteFixture(map[string]core.HandlerFunc{
		"hp": func(ctx *core.Context, _ core.Message) error {
			return ctx.AsyncTrigger(f.eQ2, nil)
		},
		"hq2": func(*core.Context, core.Message) error {
			close(inQ2)
			<-holdQ2
			return nil
		},
	})
	// hq (of Q) is never called, but hq2 (also of Q) runs: Q must be held.
	g1 := core.NewRouteGraph().Root(f.hp).Edge(f.hp, f.hq2).Edge(f.hp, f.hq)
	k1done := make(chan error, 1)
	go func() { k1done <- f.s.External(core.Route(g1), f.eP, nil) }()
	<-inQ2

	g2 := core.NewRouteGraph().Root(f.hq)
	k2done := make(chan error, 1)
	go func() { k2done <- f.s.External(core.Route(g2), f.eQ, nil) }()
	select {
	case <-k2done:
		t.Fatal("Q released while hq2 active")
	case <-time.After(50 * time.Millisecond):
	}
	close(holdQ2)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
	if err := <-k2done; err != nil {
		t.Fatal(err)
	}
}

func TestVCARouteHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		hammer(t, cc.NewVCARoute(), "route", 4, randScripts(rng, 12, 4, 6))
	}
}

func TestVCARoutePropertyIsolation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		hammer(t, cc.NewVCARoute(), "route", m, randScripts(rng, 2+rng.Intn(8), m, 5))
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
