package cc_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/trace"
)

// rwFixture: one microprotocol with a read-only "peek" handler and a
// writing "poke" handler, plus a read-only-only microprotocol.
type rwFixture struct {
	s      *core.Stack
	rec    *trace.Recorder
	data   *core.Microprotocol // peek (RO) + poke (RW)
	stats  *core.Microprotocol // count (RO only)
	ePeek  *core.EventType
	ePoke  *core.EventType
	eCount *core.EventType
	val    int
}

func newRWFixture(peek, count core.HandlerFunc) *rwFixture {
	f := &rwFixture{rec: trace.NewRecorder()}
	f.s = core.NewStack(cc.NewVCARW(), core.WithTracer(f.rec))
	f.data = core.NewMicroprotocol("data")
	f.stats = core.NewMicroprotocol("stats")
	if peek == nil {
		peek = nop
	}
	if count == nil {
		count = nop
	}
	hPeek := f.data.AddHandler("peek", peek, core.ReadOnly())
	hPoke := f.data.AddHandler("poke", func(*core.Context, core.Message) error {
		f.val++
		return nil
	})
	hCount := f.stats.AddHandler("count", count, core.ReadOnly())
	f.s.Register(f.data, f.stats)
	f.ePeek, f.ePoke, f.eCount = core.NewEventType("peek"), core.NewEventType("poke"), core.NewEventType("count")
	f.s.Bind(f.ePeek, hPeek)
	f.s.Bind(f.ePoke, hPoke)
	f.s.Bind(f.eCount, hCount)
	return f
}

func TestVCARWName(t *testing.T) {
	if cc.NewVCARW().Name() != "vca-rw" {
		t.Fatal("name")
	}
	if cc.NewTSO().Name() != "tso" {
		t.Fatal("name")
	}
}

// TestVCARWReadersShare: two computations that only read stats overlap.
func TestVCARWReadersShare(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{}, 2)
	f := newRWFixture(nil, func(*core.Context, core.Message) error {
		entered <- struct{}{}
		<-hold
		return nil
	})
	spec := core.Access(f.stats)
	done := make(chan error, 2)
	go func() { done <- f.s.External(spec, f.eCount, nil) }()
	go func() { done <- f.s.External(spec, f.eCount, nil) }()
	// Both readers must be inside the handler simultaneously.
	timeout := time.After(2 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-timeout:
			t.Fatal("readers did not overlap")
		}
	}
	close(hold)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestVCARWWriterExcludesReaders: a computation that may write the data
// microprotocol serializes against later computations on it.
func TestVCARWWriterExcludesReaders(t *testing.T) {
	hold := make(chan struct{})
	inWriter := make(chan struct{})
	f := newRWFixture(nil, nil)
	// Writer occupies data via poke, then lingers.
	wDone := make(chan error, 1)
	go func() {
		wDone <- f.s.Isolated(core.Access(f.data), func(ctx *core.Context) error {
			if err := ctx.Trigger(f.ePoke, nil); err != nil {
				return err
			}
			close(inWriter)
			<-hold
			return nil
		})
	}()
	<-inWriter
	// A later computation on data must wait for the writer, even though
	// it would only peek (the data microprotocol has a writing handler,
	// so an Access spec makes it a writer-mode computation; use a route
	// spec narrowed to peek to be a reader — still must wait for the
	// admitted writer).
	g := core.NewRouteGraph().Root(f.data.Handler("peek"))
	rDone := make(chan error, 1)
	go func() { rDone <- f.s.External(core.Route(g), f.ePeek, nil) }()
	select {
	case <-rDone:
		t.Fatal("reader overlapped an active writer")
	case <-time.After(50 * time.Millisecond):
	}
	close(hold)
	if err := <-wDone; err != nil {
		t.Fatal(err)
	}
	if err := <-rDone; err != nil {
		t.Fatal(err)
	}
}

// TestVCARWReadOnlyEnforced: a reader-mode computation calling a writing
// handler gets a ReadOnlyViolationError.
func TestVCARWReadOnlyEnforced(t *testing.T) {
	f := newRWFixture(nil, nil)
	// Route spec over peek only → reader of data; then call poke.
	g := core.NewRouteGraph().Root(f.data.Handler("peek"))
	err := f.s.External(core.Route(g), f.ePoke, nil)
	var ro *core.ReadOnlyViolationError
	if !errors.As(err, &ro) || ro.Handler != "poke" {
		t.Fatalf("err = %v", err)
	}
}

// TestVCARWSerializableUnderMix: random mixes of readers and writers stay
// serializable with no lost updates.
func TestVCARWSerializableUnderMix(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := newRWFixture(nil, nil)
		n := 4 + rng.Intn(8)
		var wg sync.WaitGroup
		writes := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				writes++
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := f.s.External(core.Access(f.data), f.ePoke, nil); err != nil {
						t.Error(err)
					}
				}()
			} else {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := f.s.External(core.Access(f.stats), f.eCount, nil); err != nil {
						t.Error(err)
					}
				}()
			}
		}
		wg.Wait()
		if f.val != writes {
			t.Errorf("val = %d, want %d", f.val, writes)
		}
		// Reader overlaps on stats are legal: exclude the read-only
		// microprotocol from the conflict check by construction (the
		// recorder sees them, so check only that writers serialized —
		// data accesses must be serializable).
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTSOConflictingSerialize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		hammer(t, cc.NewTSO(), "basic", 3, randScripts(rng, 10, 3, 5))
	}
}

func TestTSODisjointOverlap(t *testing.T) {
	ctrl := cc.NewTSO()
	s := core.NewStack(ctrl)
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	hold := make(chan struct{})
	inP := make(chan struct{})
	hp := p.AddHandler("h", func(*core.Context, core.Message) error {
		close(inP)
		<-hold
		return nil
	})
	hq := q.AddHandler("h", nop)
	s.Register(p, q)
	eP, eQ := core.NewEventType("p"), core.NewEventType("q")
	s.Bind(eP, hp)
	s.Bind(eQ, hq)

	done := make(chan error, 1)
	go func() { done <- s.External(core.Access(p), eP, nil) }()
	<-inP
	// Disjoint computation proceeds while p is held.
	if err := s.External(core.Access(q), eQ, nil); err != nil {
		t.Fatal(err)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestTSOAdmitsInTimestampOrder: a conflicting later computation cannot
// jump an earlier waiter.
func TestTSOAdmitsInTimestampOrder(t *testing.T) {
	ctrl := cc.NewTSO()
	s := core.NewStack(ctrl)
	p := core.NewMicroprotocol("p")
	var order []string
	var mu sync.Mutex
	h := p.AddHandler("h", func(_ *core.Context, msg core.Message) error {
		mu.Lock()
		order = append(order, msg.(string))
		mu.Unlock()
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	spec := core.Access(p)

	hold := make(chan struct{})
	started := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		first <- s.Isolated(spec, func(ctx *core.Context) error {
			close(started)
			<-hold
			return ctx.Trigger(et, "k1")
		})
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			if err := s.External(spec, et, fmt.Sprintf("k%d", i+2)); err != nil {
				t.Error(err)
			}
		}()
		time.Sleep(5 * time.Millisecond) // stabilize timestamp order
	}
	close(hold)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 || order[0] != "k1" {
		t.Fatalf("order = %v (k1 must be first)", order)
	}
	for i := 1; i < 5; i++ {
		if order[i] != fmt.Sprintf("k%d", i+1) {
			t.Fatalf("order = %v, want timestamp order", order)
		}
	}
}

func TestTSOUndeclared(t *testing.T) {
	s := core.NewStack(cc.NewTSO())
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	hq := q.AddHandler("h", nop)
	s.Register(p, q)
	et := core.NewEventType("q")
	s.Bind(et, hq)
	err := s.External(core.Access(p), et, nil)
	var ue *core.UndeclaredError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v", err)
	}
}
