package cc_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/cctest"
	"repro/internal/core"
)

// TestConformance runs the shared controller-conformance battery
// (package cctest) against every isolating controller. The deliberately
// unsafe None baseline is excluded: it exists to violate the property
// the battery checks.
func TestConformance(t *testing.T) {
	cases := []struct {
		name string
		cfg  cctest.Config
	}{
		{"serial", cctest.Config{
			New:            func() core.Controller { return cc.NewSerial() },
			Kind:           cctest.KindBasic,
			SkipUndeclared: true, // Appia model: no spec validation
		}},
		{"vca-basic", cctest.Config{
			New:  func() core.Controller { return cc.NewVCABasic() },
			Kind: cctest.KindBasic,
		}},
		{"ref-vca-basic", cctest.Config{
			New:  func() core.Controller { return cc.NewRefVCABasic() },
			Kind: cctest.KindBasic,
		}},
		{"vca-bound", cctest.Config{
			New:  func() core.Controller { return cc.NewVCABound() },
			Kind: cctest.KindBound,
		}},
		{"vca-route", cctest.Config{
			New:  func() core.Controller { return cc.NewVCARoute() },
			Kind: cctest.KindRoute,
		}},
		{"vca-rw", cctest.Config{
			New:  func() core.Controller { return cc.NewVCARW() },
			Kind: cctest.KindBasic,
		}},
		{"tso", cctest.Config{
			New:  func() core.Controller { return cc.NewTSO() },
			Kind: cctest.KindBasic,
		}},
		{"wait-die", cctest.Config{
			New:      func() core.Controller { return cc.NewWaitDie() },
			Kind:     cctest.KindBasic,
			Snapshot: true, // rollback scheduling needs snapshotters
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { cctest.Run(t, tc.cfg) })
	}
}
