package cc_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
)

// TestUndeclaredNamesSpec checks that every spec-enforcing controller's
// rejection names both the offending microprotocol and the computation's
// declared set, so the error alone locates the spec to fix.
func TestUndeclaredNamesSpec(t *testing.T) {
	variants := []struct {
		name string
		mk   func() core.Controller
		spec func(p *core.Microprotocol) *core.Spec
	}{
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() },
			func(p *core.Microprotocol) *core.Spec { return core.Access(p) }},
		{"vca-bound", func() core.Controller { return cc.NewVCABound() },
			func(p *core.Microprotocol) *core.Spec {
				return core.AccessBound(map[*core.Microprotocol]int{p: 1})
			}},
		{"tso", func() core.Controller { return cc.NewTSO() },
			func(p *core.Microprotocol) *core.Spec { return core.Access(p) }},
		{"vca-rw", func() core.Controller { return cc.NewVCARW() },
			func(p *core.Microprotocol) *core.Spec { return core.Access(p) }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			s := core.NewStack(v.mk())
			p := core.NewMicroprotocol("p")
			q := core.NewMicroprotocol("q")
			hq := q.AddHandler("h", nop)
			s.Register(p, q)
			et := core.NewEventType("e")
			s.Bind(et, hq)
			err := s.External(v.spec(p), et, nil)
			var ue *core.UndeclaredError
			if !errors.As(err, &ue) {
				t.Fatalf("err = %v, want UndeclaredError", err)
			}
			if len(ue.Declared) != 1 || ue.Declared[0] != "p" {
				t.Errorf("Declared = %v, want [p]", ue.Declared)
			}
			if msg := ue.Error(); !strings.Contains(msg, "q is missing from [p]") {
				t.Errorf("message %q does not name the declared spec", msg)
			}
		})
	}
}
