package cc_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
)

func TestVCABasicName(t *testing.T) {
	if cc.NewVCABasic().Name() != "vca-basic" {
		t.Fatal("name")
	}
}

func TestVCABasicUndeclared(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	hp := p.AddHandler("h", nop)
	hq := q.AddHandler("h", nop)
	s.Register(p, q)
	etP, etQ := core.NewEventType("p"), core.NewEventType("q")
	s.Bind(etP, hp)
	s.Bind(etQ, hq)

	// A computation declaring only p must not call q's handler.
	err := s.Isolated(core.Access(p), func(ctx *core.Context) error {
		if err := ctx.Trigger(etP, nil); err != nil {
			return err
		}
		err := ctx.Trigger(etQ, nil)
		var ue *core.UndeclaredError
		if !errors.As(err, &ue) {
			t.Errorf("in-thread error = %v, want UndeclaredError", err)
		}
		return err
	})
	var ue *core.UndeclaredError
	if !errors.As(err, &ue) || ue.MP != "q" {
		t.Fatalf("Isolated error = %v", err)
	}
}

func TestVCABasicDeclaredButUnusedIsFine(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nop)
	q := core.NewMicroprotocol("q") // declared, never called
	s.Register(p, q)
	et := core.NewEventType("e")
	s.Bind(et, h)
	if err := s.External(core.Access(p, q), et, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVCABasicBlocksSecondComputation reproduces the scenario of the
// Lemma 1 proof: k2, spawned after k1 with a shared microprotocol p, may
// only call handlers of p after k1 has completed.
func TestVCABasicBlocksSecondComputation(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	p := core.NewMicroprotocol("p")
	hold := make(chan struct{})
	entered1 := make(chan struct{})
	h := p.AddHandler("h", func(_ *core.Context, msg core.Message) error {
		if msg == "k1" {
			close(entered1)
			<-hold
		}
		return nil
	})
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)
	spec := core.Access(p)

	k1done := make(chan error, 1)
	go func() { k1done <- s.External(spec, et, "k1") }()
	<-entered1

	k2done := make(chan error, 1)
	go func() { k2done <- s.External(spec, et, "k2") }()

	select {
	case <-k2done:
		t.Fatal("k2 ran while k1 held p")
	case <-time.After(50 * time.Millisecond):
	}
	close(hold)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
	if err := <-k2done; err != nil {
		t.Fatal(err)
	}
}

// TestVCABasicUnvisitedUpgradeOrder is the second case of the Lemma 1
// proof: k1 declares p but never calls it; k2 (spawned later, sharing p)
// still must wait for k1's completion before touching p — upgrades happen
// in spawn order.
func TestVCABasicUnvisitedUpgradeOrder(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	p := core.NewMicroprotocol("p")
	h := p.AddHandler("h", nop)
	s.Register(p)
	et := core.NewEventType("e")
	s.Bind(et, h)

	hold := make(chan struct{})
	spawned1 := make(chan struct{})
	k1done := make(chan error, 1)
	go func() {
		k1done <- s.Isolated(core.Access(p), func(*core.Context) error {
			close(spawned1)
			<-hold // k1 never calls p, just lingers
			return nil
		})
	}()
	<-spawned1

	k2done := make(chan error, 1)
	go func() { k2done <- s.External(core.Access(p), et, nil) }()

	select {
	case <-k2done:
		t.Fatal("k2 touched p before k1 (older version holder) completed")
	case <-time.After(50 * time.Millisecond):
	}
	close(hold)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
	if err := <-k2done; err != nil {
		t.Fatal(err)
	}
}

// TestVCABasicDisjointRunConcurrently checks that computations with
// disjoint specs overlap freely.
func TestVCABasicDisjointRunConcurrently(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	holdP := make(chan struct{})
	enteredP := make(chan struct{})
	hp := p.AddHandler("h", func(*core.Context, core.Message) error {
		close(enteredP)
		<-holdP
		return nil
	})
	hq := q.AddHandler("h", nop)
	s.Register(p, q)
	etP, etQ := core.NewEventType("p"), core.NewEventType("q")
	s.Bind(etP, hp)
	s.Bind(etQ, hq)

	k1done := make(chan error, 1)
	go func() { k1done <- s.External(core.Access(p), etP, nil) }()
	<-enteredP

	// q-only computation must complete while k1 still holds p.
	if err := s.External(core.Access(q), etQ, nil); err != nil {
		t.Fatal(err)
	}
	close(holdP)
	if err := <-k1done; err != nil {
		t.Fatal(err)
	}
}

// TestVCABasicReentrant checks that nested and repeated calls within one
// computation are always admitted (the version is held for the whole
// computation).
func TestVCABasicReentrant(t *testing.T) {
	s := core.NewStack(cc.NewVCABasic())
	p := core.NewMicroprotocol("p")
	var depth, calls int
	et := core.NewEventType("e")
	h := p.AddHandler("h", func(ctx *core.Context, msg core.Message) error {
		calls++
		d := msg.(int)
		if d > depth {
			depth = d
		}
		if d < 3 {
			return ctx.Trigger(et, d+1)
		}
		return nil
	})
	s.Register(p)
	s.Bind(et, h)
	if err := s.External(core.Access(p), et, 1); err != nil {
		t.Fatal(err)
	}
	if depth != 3 || calls != 3 {
		t.Fatalf("depth = %d calls = %d", depth, calls)
	}
}

func TestVCABasicHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		hammer(t, cc.NewVCABasic(), "basic", 4, randScripts(rng, 12, 4, 6))
	}
}

// TestVCABasicPropertyIsolation is the property-based test: any random
// workload executed under VCAbasic is serializable with no lost updates.
func TestVCABasicPropertyIsolation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		hammer(t, cc.NewVCABasic(), "basic", m, randScripts(rng, 2+rng.Intn(8), m, 5))
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func nop(*core.Context, core.Message) error { return nil }
