package cc

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sched"
)

// White-box tests for the deferred-release version machinery shared by the
// VCA* controllers.

func TestMPStateBumpAndWait(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	if st.localVersion() != 0 {
		t.Fatal("initial lv must be 0")
	}
	st.bump()
	st.bump()
	if st.localVersion() != 2 {
		t.Fatalf("lv = %d", st.localVersion())
	}
	// waitAtLeast returns immediately once the threshold is reached.
	st.waitAtLeast(2)
}

func TestMPStateReleaseImmediate(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	st.request(0, 3) // lv(0) >= minLv(0): apply now
	if got := st.localVersion(); got != 3 {
		t.Fatalf("lv = %d, want 3", got)
	}
}

func TestMPStateReleaseDeferredUntilDue(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	st.request(2, 5) // not due: lv=0 < 2
	if got := st.localVersion(); got != 0 {
		t.Fatalf("lv = %d, want 0 (release deferred)", got)
	}
	st.bump() // lv=1
	if got := st.localVersion(); got != 1 {
		t.Fatalf("lv = %d, want 1", got)
	}
	st.bump() // lv=2: the pending release fires, lv jumps to 5
	if got := st.localVersion(); got != 5 {
		t.Fatalf("lv = %d, want 5", got)
	}
}

func TestMPStateReleasesApplyInVersionOrder(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	// Three computations completing out of spawn order: the queue must
	// chain them 0→1→2→3 regardless of request order.
	st.request(2, 3) // k3
	st.request(1, 2) // k2
	if st.localVersion() != 0 {
		t.Fatal("nothing due yet")
	}
	st.request(0, 1) // k1: fires and cascades through k2 and k3
	if got := st.localVersion(); got != 3 {
		t.Fatalf("lv = %d, want 3 after cascade", got)
	}
}

func TestMPStateNeverDowngrades(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	st.request(0, 5)
	st.request(0, 2) // stale target below current lv: must be dropped
	if got := st.localVersion(); got != 5 {
		t.Fatalf("lv = %d, want 5 (no downgrade)", got)
	}
}

func TestMPStateWaitWakesOnRelease(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	done := make(chan struct{})
	go func() {
		st.waitAtLeast(4)
		close(done)
	}()
	st.request(0, 4)
	<-done
}

// TestMPStateTargetedWakeup: a release wakes exactly the waiters whose
// thresholds it satisfies; higher-threshold waiters stay parked.
func TestMPStateTargetedWakeup(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	low := make(chan struct{})
	high := make(chan struct{})
	go func() {
		st.waitAtLeast(1)
		close(low)
	}()
	go func() {
		st.waitAtLeast(10)
		close(high)
	}()
	// Wait until both goroutines are actually parked.
	for {
		st.mu.Lock()
		n := len(st.waiters)
		st.mu.Unlock()
		if n == 2 {
			break
		}
	}
	st.bump() // lv=1: admits only the low-threshold waiter
	<-low
	select {
	case <-high:
		t.Fatal("high-threshold waiter woken below its threshold")
	default:
	}
	st.request(1, 10) // lv jumps to 10: admits the rest
	<-high
}

// TestMPStateNoChangeNoSignal: a request that leaves lv unchanged must
// not disturb the wait queue.
func TestMPStateNoChangeNoSignal(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	st.request(0, 3)
	parked := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(parked)
		st.waitAtLeast(5)
		close(done)
	}()
	<-parked
	for {
		st.mu.Lock()
		n := len(st.waiters)
		st.mu.Unlock()
		if n == 1 {
			break
		}
	}
	st.request(0, 2) // stale: lv stays 3
	select {
	case <-done:
		t.Fatal("waiter woken although lv did not change")
	default:
	}
	st.request(3, 5)
	<-done
}

// TestMPStateCascadePropertyRandomOrder: any permutation of a chain of
// releases k_i = (i, i+1) ends with lv == n.
func TestMPStateCascadeProperty(t *testing.T) {
	prop := func(perm []int) bool {
		n := len(perm)
		if n == 0 {
			return true
		}
		// Build a permutation of 0..n-1 out of arbitrary ints.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i, v := range perm {
			j := abs(v) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		st := newMPState(sched.DefaultBlocker())
		for _, i := range order {
			st.request(uint64(i), uint64(i+1))
		}
		return st.localVersion() == uint64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestMPStateConcurrentBumpers(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				st.bump()
			}
		}()
	}
	wg.Wait()
	if got := st.localVersion(); got != 800 {
		t.Fatalf("lv = %d, want 800", got)
	}
}

func TestVersionTableDenseSlots(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	vt.mu.Lock()
	sp := vt.slotLocked(p)
	sq := vt.slotLocked(q)
	again := vt.slotLocked(p)
	vt.mu.Unlock()
	if sp != 0 || sq != 1 || again != sp {
		t.Fatalf("slots = %d, %d, %d; want 0, 1, 0", sp, sq, again)
	}
	if len(vt.states) != 2 {
		t.Fatalf("table sized %d, want 2", len(vt.states))
	}
	if vt.states[sp] == nil || vt.states[sp] == vt.states[sq] {
		t.Fatal("states must be distinct and non-nil")
	}
}

// TestFootprintCompiledOnce: repeated spawns of one spec reuse the same
// compiled footprint, and its arrays mirror the spec.
func TestFootprintCompiledOnce(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	spec := core.AccessBound(map[*core.Microprotocol]int{p: 2, q: 3})
	fp1 := mustFootprint(t, vt, spec)
	fp2 := mustFootprint(t, vt, spec)
	if fp1 != fp2 {
		t.Fatal("footprint must be compiled once per spec")
	}
	if len(fp1.mps) != 2 || len(fp1.slots) != 2 || len(fp1.states) != 2 {
		t.Fatalf("footprint arrays sized %d/%d/%d", len(fp1.mps), len(fp1.slots), len(fp1.states))
	}
	for i, mp := range fp1.mps {
		if fp1.pos(mp) != i {
			t.Fatalf("pos(%s) = %d, want %d", mp.Name(), fp1.pos(mp), i)
		}
		want, _ := spec.Bound(mp)
		if fp1.bounds[i] != uint64(want) {
			t.Fatalf("bounds[%d] = %d, want %d", i, fp1.bounds[i], want)
		}
	}
	if fp1.pos(core.NewMicroprotocol("other")) != -1 {
		t.Fatal("pos of undeclared microprotocol must be -1")
	}
}

// --- claim protocol: sharded admission, CAS fast path, group commit
// (DESIGN.md §11) ---

func mustFootprint(t *testing.T, vt *versionTable, spec *core.Spec) *footprint {
	t.Helper()
	fp, err := vt.footprint(spec)
	if err != nil {
		t.Fatalf("footprint: %v", err)
	}
	return fp
}

func mustClaim(t *testing.T, vt *versionTable, fp *footprint, nodes []relNode) {
	t.Helper()
	if err := vt.claim(fp, nodes); err != nil {
		t.Fatalf("claim: %v", err)
	}
}

func TestClaimFastOnQuiescentSlots(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	fp := mustFootprint(t, vt, core.Access(p, q))
	nodes := make([]relNode, 2)
	mustClaim(t, vt, fp, nodes)
	for i := range nodes {
		if nodes[i].minLv != 0 || nodes[i].target != 1 {
			t.Fatalf("nodes[%d] = %+v, want {0 1}", i, nodes[i])
		}
		if got := fp.states[i].gv.Load(); got != 1 {
			t.Fatalf("slot %d gv = %d, want 1", i, got)
		}
	}
	if fast, slow := vt.spawnStats(); fast != 1 || slow != 0 {
		t.Fatalf("stats fast=%d slow=%d, want 1/0", fast, slow)
	}
}

func TestClaimFallsBackWhenInFlight(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	fp := mustFootprint(t, vt, core.Access(p, q))
	n1 := make([]relNode, 2)
	n2 := make([]relNode, 2)
	mustClaim(t, vt, fp, n1) // quiescent table: fast
	mustClaim(t, vt, fp, n2) // n1 in flight on both slots: ordered-lock slow path
	for i := range n2 {
		if n2[i].minLv != 1 || n2[i].target != 2 {
			t.Fatalf("n2[%d] = %+v, want {1 2} (ordered after n1)", i, n2[i])
		}
	}
	if fast, slow := vt.spawnStats(); fast != 1 || slow != 1 {
		t.Fatalf("stats fast=%d slow=%d, want 1/1", fast, slow)
	}
	// Releasing both restores quiescence; the next claim is fast again.
	for i := range n1 {
		fp.states[i].requestNode(&n1[i])
	}
	for i := range n2 {
		fp.states[i].requestNode(&n2[i])
	}
	n3 := make([]relNode, 2)
	mustClaim(t, vt, fp, n3)
	if fast, slow := vt.spawnStats(); fast != 2 || slow != 1 {
		t.Fatalf("stats fast=%d slow=%d, want 2/1", fast, slow)
	}
	if n3[0].target != 3 {
		t.Fatalf("n3 target = %d, want 3", n3[0].target)
	}
}

func TestUnclaimRollsBackUntouchedClaims(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	fp := mustFootprint(t, vt, core.Access(p, q))
	nodes := make([]relNode, 2)
	if !vt.claimFast(fp, nodes) {
		t.Fatal("claimFast on a fresh table must succeed")
	}
	vt.unclaim(fp, nodes, 2)
	for i, st := range fp.states {
		if gv, lv := st.gv.Load(), st.lv.Load(); gv != 0 || lv != 0 {
			t.Fatalf("slot %d after rollback: gv=%d lv=%d, want 0/0", i, gv, lv)
		}
	}
}

// TestUnclaimPhantomWhenBuiltUpon: a fast-path claim another spawn has
// already stacked a version on cannot be CAS-reverted; unclaim retires it
// as a phantom release, keeping the slot's version chain gap-free.
func TestUnclaimPhantomWhenBuiltUpon(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	fp := mustFootprint(t, vt, core.Access(p))
	nodes := make([]relNode, 1)
	if !vt.claimFast(fp, nodes) {
		t.Fatal("claimFast on a fresh table must succeed")
	}
	st := fp.states[0]
	st.gv.Add(1) // a concurrent claim builds on top (gv: 1 → 2)
	vt.unclaim(fp, nodes, 1)
	// The rollback CAS (1 → 0) must have failed; the phantom release
	// (minLv 0, target 1) applies immediately, handing the slot to the
	// stacked claim.
	if gv, lv := st.gv.Load(), st.lv.Load(); gv != 2 || lv != 1 {
		t.Fatalf("after phantom: gv=%d lv=%d, want 2/1", gv, lv)
	}
	// The stacked claim's own release then quiesces the slot.
	st.request(1, 2)
	if gv, lv := st.gv.Load(), st.lv.Load(); gv != 2 || lv != 2 {
		t.Fatalf("after stacked release: gv=%d lv=%d, want 2/2", gv, lv)
	}
}

// --- epoch-aware admission: install marks, retire drains (live
// reconfiguration, DESIGN.md §15) ---

// TestInstallEpochStopsAdmission: after installEpoch removes a
// microprotocol, both admission paths reject claims on its slot with the
// removal's typed error, in-flight claims release normally, retireEpoch
// drains the slot to quiescence, and a spec naming the removed
// microprotocol no longer compiles.
func TestInstallEpochStopsAdmission(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	q := core.NewMicroprotocol("q")
	fp := mustFootprint(t, vt, core.Access(p, q))
	held := make([]relNode, 2)
	mustClaim(t, vt, fp, held) // in flight across the removal

	vt.installEpoch(core.EpochChange{Epoch: 2, Removed: []*core.Microprotocol{q}})

	var re *core.ReconfiguredError
	nodes := make([]relNode, 2)
	if err := vt.claim(fp, nodes); !errors.As(err, &re) || re.MP != "q" || re.Epoch != 2 {
		t.Fatalf("claim after removal = %v, want ReconfiguredError{q, 2}", err)
	}
	// The slow path under the admission locks rejects too.
	if err := vt.claimSlow(fp, nodes); !errors.As(err, &re) {
		t.Fatalf("claimSlow after removal = %v, want ReconfiguredError", err)
	}
	// The compiled footprint was invalidated, and recompiling fails
	// because the spec names the removed microprotocol.
	if _, ok := vt.footprints.Load(core.Access(p, q)); ok {
		t.Fatal("footprint touching a removed slot must leave the cache")
	}
	if _, err := vt.footprint(core.Access(q)); !errors.As(err, &re) {
		t.Fatalf("footprint naming removed mp = %v, want ReconfiguredError", err)
	}
	// A disjoint spec is untouched.
	fpP := mustFootprint(t, vt, core.Access(p))

	// The in-flight claim releases; the retire drain then observes
	// quiescence and returns.
	for i := range held {
		fp.states[i].requestNode(&held[i])
	}
	if err := vt.retireEpoch(core.EpochChange{Epoch: 2, Removed: []*core.Microprotocol{q}}); err != nil {
		t.Fatalf("retireEpoch: %v", err)
	}
	st := fp.states[1]
	if g, l := st.gv.Load(), st.lv.Load(); g != l {
		t.Fatalf("removed slot not quiescent after retire: gv=%d lv=%d", g, l)
	}
	// The surviving slot keeps admitting.
	one := make([]relNode, 1)
	mustClaim(t, vt, fpP, one)
}

// TestInstallEpochReAddResumes: a later epoch re-adding a removed
// microprotocol clears the rejection marker and the slot resumes its
// version chain where it left off.
func TestInstallEpochReAddResumes(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	fp := mustFootprint(t, vt, core.Access(p))
	n1 := make([]relNode, 1)
	mustClaim(t, vt, fp, n1)
	fp.states[0].requestNode(&n1[0])

	vt.installEpoch(core.EpochChange{Epoch: 2, Removed: []*core.Microprotocol{p}})
	if err := vt.claim(fp, n1); err == nil {
		t.Fatal("claim on removed slot must fail")
	}
	vt.installEpoch(core.EpochChange{Epoch: 3, Added: []*core.Microprotocol{p}})

	fp2 := mustFootprint(t, vt, core.Access(p))
	n2 := make([]relNode, 1)
	mustClaim(t, vt, fp2, n2)
	if n2[0].minLv != 1 || n2[0].target != 2 {
		t.Fatalf("re-added slot claim = %+v, want {1 2} (chain resumed)", n2[0])
	}
}

// TestInstallEpochReplaceContinuesSlot: a replacement microprotocol
// inherits its predecessor's version slot, so a claim through the new
// identity serializes behind an in-flight claim still holding the old
// one — the version chain continues across the swap instead of forking
// into an independent quiescent slot. Specs still naming the old side
// are rejected like removals, and no drain is owed for the pair.
func TestInstallEpochReplaceContinuesSlot(t *testing.T) {
	vt := newVersionTable()
	p := core.NewMicroprotocol("p")
	fp := mustFootprint(t, vt, core.Access(p))
	n1 := make([]relNode, 1)
	mustClaim(t, vt, fp, n1) // in-flight: holds version 1

	p2 := core.NewMicroprotocol("p2")
	ec := core.EpochChange{Epoch: 2, Replaced: []core.ReplacedMP{{Old: p, New: p2}}}
	vt.installEpoch(ec)

	// Specs naming the old identity are rejected at (re)compile: the
	// swap invalidated the cached footprint, and the retired map catches
	// the rebuild. (A claim racing the install through an already-compiled
	// footprint is tolerated — it serializes on the shared slot, so
	// isolation holds either way.)
	var re *core.ReconfiguredError
	if _, err := vt.footprint(core.Access(p)); !errors.As(err, &re) {
		t.Fatalf("compiling spec naming replaced-out mp: err = %v, want ReconfiguredError", err)
	} else if re.MP != "p" || re.Epoch != 2 {
		t.Fatalf("ReconfiguredError = %+v, want {p 2}", re)
	}

	// The new identity continues the chain: its claim lands behind the
	// in-flight version 1, not at a fresh quiescent slot.
	fp2 := mustFootprint(t, vt, core.Access(p2))
	if fp2.states[0] != fp.states[0] {
		t.Fatal("replacement must share its predecessor's version slot")
	}
	n2 := make([]relNode, 1)
	mustClaim(t, vt, fp2, n2)
	if n2[0].minLv != 1 || n2[0].target != 2 {
		t.Fatalf("replacement claim = %+v, want {1 2} (chain continued)", n2[0])
	}
	// No drain owed: the slot lives on under the new identity even while
	// both claims are still outstanding.
	if err := vt.retireEpoch(ec); err != nil {
		t.Fatalf("retireEpoch: %v", err)
	}
	fp.states[0].requestNode(&n1[0])
	fp2.states[0].requestNode(&n2[0])
	if lv, gv := fp2.states[0].localVersion(), fp2.states[0].gv.Load(); lv != 2 || gv != 2 {
		t.Fatalf("slot lv/gv = %d/%d after releases, want 2/2", lv, gv)
	}
}

// TestDrainBatchesGroupCommit: releases pushed while another thread holds
// the drain flag pile up on the stack, and one drain folds the whole
// batch — applying the cascade and advancing lv once.
func TestDrainBatchesGroupCommit(t *testing.T) {
	st := newMPState(sched.DefaultBlocker())
	if !st.draining.CompareAndSwap(0, 1) {
		t.Fatal("fresh state must not be draining")
	}
	// Pushers lose the drain flag and return; nothing applies yet.
	st.request(2, 3)
	st.request(0, 1)
	st.request(1, 2)
	if got := st.localVersion(); got != 0 {
		t.Fatalf("lv = %d while drain flag held elsewhere, want 0", got)
	}
	st.draining.Store(0)
	st.drain() // the whole batch folds in one group commit
	if got := st.localVersion(); got != 3 {
		t.Fatalf("lv = %d after batch drain, want 3", got)
	}
	if st.relq.Load() != nil {
		t.Fatal("release stack must be empty after drain")
	}
}
