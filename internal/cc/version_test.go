package cc

import (
	"sync"
	"testing"
	"testing/quick"
)

// White-box tests for the deferred-release version machinery shared by the
// VCA* controllers.

func TestMPStateBumpAndWait(t *testing.T) {
	st := newMPState()
	if st.localVersion() != 0 {
		t.Fatal("initial lv must be 0")
	}
	st.bump()
	st.bump()
	if st.localVersion() != 2 {
		t.Fatalf("lv = %d", st.localVersion())
	}
	// wait returns immediately once the predicate holds.
	st.wait(func(lv uint64) bool { return lv >= 2 })
}

func TestMPStateReleaseImmediate(t *testing.T) {
	st := newMPState()
	st.request(0, 3) // lv(0) >= minLv(0): apply now
	if got := st.localVersion(); got != 3 {
		t.Fatalf("lv = %d, want 3", got)
	}
}

func TestMPStateReleaseDeferredUntilDue(t *testing.T) {
	st := newMPState()
	st.request(2, 5) // not due: lv=0 < 2
	if got := st.localVersion(); got != 0 {
		t.Fatalf("lv = %d, want 0 (release deferred)", got)
	}
	st.bump() // lv=1
	if got := st.localVersion(); got != 1 {
		t.Fatalf("lv = %d, want 1", got)
	}
	st.bump() // lv=2: the pending release fires, lv jumps to 5
	if got := st.localVersion(); got != 5 {
		t.Fatalf("lv = %d, want 5", got)
	}
}

func TestMPStateReleasesApplyInVersionOrder(t *testing.T) {
	st := newMPState()
	// Three computations completing out of spawn order: the queue must
	// chain them 0→1→2→3 regardless of request order.
	st.request(2, 3) // k3
	st.request(1, 2) // k2
	if st.localVersion() != 0 {
		t.Fatal("nothing due yet")
	}
	st.request(0, 1) // k1: fires and cascades through k2 and k3
	if got := st.localVersion(); got != 3 {
		t.Fatalf("lv = %d, want 3 after cascade", got)
	}
}

func TestMPStateNeverDowngrades(t *testing.T) {
	st := newMPState()
	st.request(0, 5)
	st.request(0, 2) // stale target below current lv: must be dropped
	if got := st.localVersion(); got != 5 {
		t.Fatalf("lv = %d, want 5 (no downgrade)", got)
	}
}

func TestMPStateWaitWakesOnRelease(t *testing.T) {
	st := newMPState()
	done := make(chan struct{})
	go func() {
		st.wait(func(lv uint64) bool { return lv >= 4 })
		close(done)
	}()
	st.request(0, 4)
	<-done
}

// TestMPStateCascadePropertyRandomOrder: any permutation of a chain of
// releases k_i = (i, i+1) ends with lv == n.
func TestMPStateCascadeProperty(t *testing.T) {
	prop := func(perm []int) bool {
		n := len(perm)
		if n == 0 {
			return true
		}
		// Build a permutation of 0..n-1 out of arbitrary ints.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i, v := range perm {
			j := abs(v) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		st := newMPState()
		for _, i := range order {
			st.request(uint64(i), uint64(i+1))
		}
		return st.localVersion() == uint64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestMPStateConcurrentBumpers(t *testing.T) {
	st := newMPState()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				st.bump()
			}
		}()
	}
	wg.Wait()
	if got := st.localVersion(); got != 800 {
		t.Fatalf("lv = %d, want 800", got)
	}
}

func TestVersionTableLazyStates(t *testing.T) {
	vt := newVersionTable()
	vt.mu.Lock()
	// Use distinct keys; nil microprotocol pointers suffice for identity
	// — but create real ones to mirror usage.
	defer vt.mu.Unlock()
	if len(vt.states) != 0 {
		t.Fatal("fresh table must be empty")
	}
}
