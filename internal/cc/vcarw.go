package cc

import (
	"context"

	"repro/internal/core"
	"repro/internal/sched"
)

// VCARW implements the paper's §7 future-work extension: "introduce
// different types of handlers (e.g. read-only, read-and-write) and several
// levels of isolation". Handlers declared with core.ReadOnly() mark what a
// computation's use of a microprotocol can be; a computation whose
// declared handlers on a microprotocol are all read-only is admitted as a
// *reader* of it.
//
// Versioning works as in VCAbasic, with one twist in rule 1: consecutive
// reader spawns with no intervening writer share one version of the
// microprotocol — they hold it concurrently, because read-only executions
// commute, and the shared version keeps the equivalent serial order
// well-defined (readers of a group may be serialized in any order among
// themselves). The group's local-version upgrade happens when its last
// member completes. Writers take fresh versions and serialize exactly as
// in VCAbasic.
//
// A reader computation that calls a non-read-only handler gets a
// ReadOnlyViolationError in the calling thread — the annotation is
// enforced, not trusted. Whether a spec reads or writes each
// microprotocol is spec-static, so it is computed once at footprint
// compilation, not per spawn.
//
// Contention-wise, VCARW shards its group bookkeeping by slot (each
// mpState carries its own rwState, guarded by the slot's spawnMu) but
// takes no lock-free fast path: rule 1 here is not a pure counter
// increment — joining or closing a reader group mutates lastVer/lastRO/
// refs, which a CAS on gv cannot publish atomically. Disjoint spawns
// still scale, because they touch disjoint spawnMu locks.
type VCARW struct {
	vt *versionTable
}

// rwState is one slot's reader-group bookkeeping, hanging off the slot's
// mpState and guarded by its spawnMu.
type rwState struct {
	lastVer uint64
	lastRO  bool
	refs    map[uint64]int // open group / writer refcounts per version
}

// NewVCARW creates the read/write-aware versioning controller.
func NewVCARW() *VCARW {
	return &VCARW{vt: newVersionTable()}
}

// Name implements core.Controller.
func (c *VCARW) Name() string { return "vca-rw" }

// SetBlocker implements sched.Schedulable.
func (c *VCARW) SetBlocker(b sched.Blocker) { c.vt.setBlocker(b) }

// SpawnStats reports spawn admission-path counts; every VCARW spawn is a
// slow-path (ordered-lock) spawn by design, so fast is always 0.
func (c *VCARW) SpawnStats() (fast, slow uint64) { return c.vt.spawnStats() }

// InstallEpoch implements core.Reconfigurer (see versionTable.installEpoch).
func (c *VCARW) InstallEpoch(ec core.EpochChange) { c.vt.installEpoch(ec) }

// RetireEpoch implements core.Reconfigurer (see versionTable.retireEpoch).
func (c *VCARW) RetireEpoch(ec core.EpochChange) error { return c.vt.retireEpoch(ec) }

// rwToken carries the computation's claims parallel to the spec's
// compiled footprint (nodes[i].target is pv[i]); reader-ness comes from
// the footprint itself.
type rwToken struct {
	fp    *footprint
	nodes []relNode
}

// readerOf reports whether a computation with this spec can only read mp:
// every handler of mp it may call is declared read-only. Route specs are
// judged by their graph vertices, other specs by all of mp's handlers.
func readerOf(spec *core.Spec, mp *core.Microprotocol) bool {
	if g := spec.Graph(); g != nil {
		any := false
		for _, h := range g.Vertices() {
			if h.MP() == mp {
				any = true
				if !h.IsReadOnly() {
					return false
				}
			}
		}
		return any
	}
	hs := mp.Handlers()
	if len(hs) == 0 {
		return false
	}
	for _, h := range hs {
		if !h.IsReadOnly() {
			return false
		}
	}
	return true
}

// Spawn implements rule 1 with reader-group sharing: hold every declared
// slot's spawnMu (in the footprint's compiled ascending-slot order, the
// same discipline as versionTable.claimSlow), then per slot either join
// the open reader group or take a fresh version. It never blocks on
// admission, so the context is not consulted.
func (c *VCARW) Spawn(_ context.Context, spec *core.Spec) (core.Token, error) {
	fp, err := c.vt.footprint(spec)
	if err != nil {
		return nil, err
	}
	t := &rwToken{fp: fp, nodes: make([]relNode, len(fp.slots))}
	for _, p := range fp.lockOrder {
		fp.states[p].spawnMu.Lock()
	}
	for _, st := range fp.states {
		if err := st.gone.Load(); err != nil {
			for _, p := range fp.lockOrder {
				fp.states[p].spawnMu.Unlock()
			}
			return nil, err
		}
	}
	for i, st := range fp.states {
		rw := st.rw
		if rw == nil {
			rw = &rwState{refs: make(map[uint64]int)}
			st.rw = rw
		}
		ro := fp.reader[i]
		var pv uint64
		if ro && rw.lastRO && rw.refs[rw.lastVer] > 0 {
			pv = rw.lastVer // join the open reader group
			rw.refs[pv]++
		} else {
			pv = st.gv.Add(1)
			rw.lastVer = pv
			rw.lastRO = ro
			rw.refs[pv] = 1
		}
		t.nodes[i] = relNode{minLv: pv - 1, target: pv}
	}
	for _, p := range fp.lockOrder {
		fp.states[p].spawnMu.Unlock()
	}
	c.vt.slowSpawns.Add(1)
	return t, nil
}

// Request validates declaration and enforces the read-only annotation.
func (c *VCARW) Request(t core.Token, _, h *core.Handler) error {
	tok := t.(*rwToken)
	i := tok.fp.pos(h.MP())
	if i < 0 {
		return undeclared(h, tok.fp.mps)
	}
	if tok.fp.reader[i] && !h.IsReadOnly() {
		return &core.ReadOnlyViolationError{MP: h.MP().Name(), Handler: h.Name()}
	}
	return nil
}

// Enter implements rule 2; every member of a reader group satisfies it
// simultaneously, since they share the private version (and hence the
// claim's recorded minLv threshold).
func (c *VCARW) Enter(ctx context.Context, t core.Token, _, h *core.Handler) error {
	tok := t.(*rwToken)
	i := tok.fp.pos(h.MP())
	if i < 0 {
		return undeclared(h, tok.fp.mps)
	}
	if err := tok.fp.states[i].waitAtLeastCtx(ctx, tok.nodes[i].minLv); err != nil {
		return deadline("enter", h, err)
	}
	return nil
}

// Exit implements core.Controller (no early release in this variant).
func (c *VCARW) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op).
func (c *VCARW) RootReturned(core.Token) {}

// Complete implements rule 3; a reader group's upgrade fires when its
// last member completes, pushing that member's embedded node. Group
// members share (minLv, target), so which member's node carries the
// release is immaterial.
func (c *VCARW) Complete(t core.Token) {
	tok := t.(*rwToken)
	for i, st := range tok.fp.states {
		pv := tok.nodes[i].target
		st.spawnMu.Lock()
		rw := st.rw
		rw.refs[pv]--
		last := rw.refs[pv] == 0
		if last {
			delete(rw.refs, pv)
		}
		st.spawnMu.Unlock()
		if last {
			st.requestNode(&tok.nodes[i])
		}
	}
}
