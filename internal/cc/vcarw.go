package cc

import (
	"sync"

	"repro/internal/core"
)

// VCARW implements the paper's §7 future-work extension: "introduce
// different types of handlers (e.g. read-only, read-and-write) and several
// levels of isolation". Handlers declared with core.ReadOnly() mark what a
// computation's use of a microprotocol can be; a computation whose
// declared handlers on a microprotocol are all read-only is admitted as a
// *reader* of it.
//
// Versioning works as in VCAbasic, with one twist in rule 1: consecutive
// reader spawns with no intervening writer share one version of the
// microprotocol — they hold it concurrently, because read-only executions
// commute, and the shared version keeps the equivalent serial order
// well-defined (readers of a group may be serialized in any order among
// themselves). The group's local-version upgrade happens when its last
// member completes. Writers take fresh versions and serialize exactly as
// in VCAbasic.
//
// A reader computation that calls a non-read-only handler gets a
// ReadOnlyViolationError in the calling thread — the annotation is
// enforced, not trusted.
type VCARW struct {
	vt *versionTable

	mu sync.Mutex // guards rw (group bookkeeping); nests inside vt.mu ordering: always take vt.mu first or alone
	rw map[*core.Microprotocol]*rwState
}

type rwState struct {
	lastVer uint64
	lastRO  bool
	refs    map[uint64]int // open group / writer refcounts per version
}

// NewVCARW creates the read/write-aware versioning controller.
func NewVCARW() *VCARW {
	return &VCARW{vt: newVersionTable(), rw: make(map[*core.Microprotocol]*rwState)}
}

// Name implements core.Controller.
func (c *VCARW) Name() string { return "vca-rw" }

type rwEntry struct {
	st     *mpState
	pv     uint64
	reader bool
}

type rwToken struct {
	entries map[*core.Microprotocol]*rwEntry
}

// readerOf reports whether a computation with this spec can only read mp:
// every handler of mp it may call is declared read-only. Route specs are
// judged by their graph vertices, other specs by all of mp's handlers.
func readerOf(spec *core.Spec, mp *core.Microprotocol) bool {
	if g := spec.Graph(); g != nil {
		any := false
		for _, h := range g.Vertices() {
			if h.MP() == mp {
				any = true
				if !h.IsReadOnly() {
					return false
				}
			}
		}
		return any
	}
	hs := mp.Handlers()
	if len(hs) == 0 {
		return false
	}
	for _, h := range hs {
		if !h.IsReadOnly() {
			return false
		}
	}
	return true
}

// Spawn implements rule 1 with reader-group sharing.
func (c *VCARW) Spawn(spec *core.Spec) (core.Token, error) {
	t := &rwToken{entries: make(map[*core.Microprotocol]*rwEntry, len(spec.MPs()))}
	c.vt.mu.Lock()
	defer c.vt.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, mp := range spec.MPs() {
		st := c.vt.stateLocked(mp)
		ro := readerOf(spec, mp)
		rw := c.rw[mp]
		if rw == nil {
			rw = &rwState{refs: make(map[uint64]int)}
			c.rw[mp] = rw
		}
		var pv uint64
		if ro && rw.lastRO && rw.refs[rw.lastVer] > 0 {
			pv = rw.lastVer // join the open reader group
			rw.refs[pv]++
		} else {
			c.vt.gv[mp]++
			pv = c.vt.gv[mp]
			rw.lastVer = pv
			rw.lastRO = ro
			rw.refs[pv] = 1
		}
		t.entries[mp] = &rwEntry{st: st, pv: pv, reader: ro}
	}
	return t, nil
}

// Request validates declaration and enforces the read-only annotation.
func (c *VCARW) Request(t core.Token, _, h *core.Handler) error {
	e := t.(*rwToken).entries[h.MP()]
	if e == nil {
		return &core.UndeclaredError{MP: h.MP().Name(), Handler: h.Name()}
	}
	if e.reader && !h.IsReadOnly() {
		return &core.ReadOnlyViolationError{MP: h.MP().Name(), Handler: h.Name()}
	}
	return nil
}

// Enter implements rule 2; every member of a reader group satisfies it
// simultaneously, since they share the private version.
func (c *VCARW) Enter(t core.Token, _, h *core.Handler) error {
	e := t.(*rwToken).entries[h.MP()]
	if e == nil {
		return &core.UndeclaredError{MP: h.MP().Name(), Handler: h.Name()}
	}
	e.st.wait(func(lv uint64) bool { return lv+1 >= e.pv })
	return nil
}

// Exit implements core.Controller (no early release in this variant).
func (c *VCARW) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op).
func (c *VCARW) RootReturned(core.Token) {}

// Complete implements rule 3; a reader group's upgrade fires when its last
// member completes.
func (c *VCARW) Complete(t core.Token) {
	for mp, e := range t.(*rwToken).entries {
		c.mu.Lock()
		rw := c.rw[mp]
		rw.refs[e.pv]--
		last := rw.refs[e.pv] == 0
		if last {
			delete(rw.refs, e.pv)
		}
		c.mu.Unlock()
		if last {
			e.st.request(e.pv-1, e.pv)
		}
	}
}
