package cc

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sched"
)

// mpState is the per-microprotocol versioning state shared by the VCA*
// controllers: the local version counter lv of the paper, the global
// version counter gv (rule 1), an ordered queue of parked waiters, and a
// queue of deferred release requests. Since the contention work
// (DESIGN.md §11) every microprotocol slot is an independent shard —
// there is no controller-wide lock anywhere in the admission, wait, or
// release paths.
//
// The paper's rules 3/4 read "wait until (1)/(2) is true, then upgrade the
// local version". Three mechanisms keep that cheap:
//
//   - Deferred releases: a release request (minLv, target) is queued and
//     applied — in ascending order — whenever lv changes and reaches
//     minLv. Because minLv values derive from the per-slot-ordered gv
//     increments of rule 1, applications happen exactly in spawn order,
//     which is the correctness condition of the paper's proofs.
//   - Targeted wakeups: every admission predicate used by the algorithms
//     has the shape "lv >= threshold", so waiters park on an ordered
//     queue keyed by the threshold they need. When lv advances, exactly
//     the now-admissible prefix is woken; when an update leaves lv
//     unchanged, nobody is signalled. The admission fast path reads lv
//     atomically and never takes the mutex.
//   - Group commit: releases are pushed onto a per-slot lock-free stack
//     (relq) and one drainer folds the whole batch into the pending
//     queue, advancing lv and waking the due waiters once per batch
//     rather than once per release (requestNode/drain below).
type mpState struct {
	blk     sched.Blocker
	mu      sync.Mutex
	lv      atomic.Uint64 //samoa:guard mu — written only under mu; read lock-free by waitAtLeast
	pending []release     // sorted by minLv ascending
	waiters []waitEntry   // sorted by min ascending; FIFO among equal thresholds

	// Rule-1 admission shard. gv is the slot's global version counter;
	// the invariant lv <= gv always holds (lv only ever rises to pv
	// values that gv already passed). A slot is *quiescent* when
	// lv == gv: every computation that ever claimed it has released it.
	//
	// spawnMu serializes slow-path claims on this slot. A multi-slot
	// slow-path spawn holds the spawnMu of every declared slot
	// simultaneously, acquired in ascending slot order (the footprint's
	// compiled lockOrder), which makes the claim critical sections of
	// conflicting spawns pairwise non-overlapping — hence totally ordered
	// in time — so version orders can never cycle across slots. The
	// lock-free fast path (versionTable.claimFast) bypasses spawnMu
	// entirely: it CASes gv only at quiescence, which proves no
	// conflicting computation is in flight.
	spawnMu sync.Mutex
	gv      atomic.Uint64

	// fastSpawns counts spawns whose lock-free claim started at this
	// slot; kept per-slot (not on the table) so the hot path never
	// touches a shared cache line. versionTable.spawnStats sums them.
	fastSpawns atomic.Uint64

	// relq is the group-commit stack: completed computations push their
	// embedded release nodes here lock-free; whoever wins the draining
	// flag folds the batch into pending under mu and advances lv once.
	relq     atomic.Pointer[relNode]
	draining atomic.Uint32

	// gone is non-nil once a live reconfiguration removed this slot's
	// microprotocol: new claims are rejected with the stored error (one
	// preallocated per removal, so the rejection path allocates nothing).
	// Claims already holding the slot release normally — retireEpoch's
	// drain waits for exactly that. A later epoch re-adding the same
	// microprotocol clears the marker; the slot resumes where it left off.
	gone atomic.Pointer[core.ReconfiguredError]

	// rw is VCARW's reader-group bookkeeping for this slot, created
	// lazily. Nil for every other controller.
	rw *rwState //samoa:guard spawnMu — created and mutated only under the slot's spawnMu
}

// release asks for lv to be raised to target once lv >= minLv. Targets
// never lower lv (the algorithms' "never downgraded" guarantee).
type release struct {
	minLv  uint64
	target uint64
}

// relNode is one deferred-release request on the group-commit stack.
// Tokens embed one node per footprint position (filled at claim time:
// minLv is the pre-claim gv, target the post-claim gv == pv), so the
// steady-state release path allocates nothing. A node must be pushed at
// most once; its fields are immutable from push until the drainer
// consumes it.
type relNode struct {
	minLv  uint64
	target uint64
	next   *relNode
}

// waitEntry is one parked computation thread: the lv threshold it needs
// and the one-shot waiter it parked on. The waiter comes from the
// state's Blocker — pooled channels in production, virtual scheduler
// park points under deterministic exploration. c is non-nil only for
// cancellable waits (waitAtLeastCtx).
type waitEntry struct {
	min uint64
	w   sched.Waiter
	c   *waitCancel
}

// waitCancel coordinates a parked waiter with its cancellation watchdog.
// All fields are guarded by the owning mpState's mu.
type waitCancel struct {
	done     bool // the entry left the queue (woken or cancelled)
	canceled bool // it left because the context expired
}

func newMPState(blk sched.Blocker) *mpState { return &mpState{blk: blk} }

// waitAtLeast blocks until lv >= min. The fast path is a single atomic
// load; the slow path parks the caller on the ordered wait queue.
func (st *mpState) waitAtLeast(min uint64) {
	if st.lv.Load() >= min {
		return
	}
	st.mu.Lock()
	if st.lv.Load() >= min {
		st.mu.Unlock()
		return
	}
	w := st.blk.NewWaiter()
	i := sort.Search(len(st.waiters), func(i int) bool { return st.waiters[i].min > min })
	st.waiters = append(st.waiters, waitEntry{})
	copy(st.waiters[i+1:], st.waiters[i:])
	st.waiters[i] = waitEntry{min: min, w: w}
	st.mu.Unlock()
	w.Park()
}

// waitAtLeastCtx is waitAtLeast bounded by a context: it returns nil once
// lv >= min, or the context's error if ctx expires first — the caller's
// admission wait becomes a clean abort instead of a permanent block.
//
// Unbounded contexts (Done() == nil, e.g. context.Background) take the
// exact waitAtLeast path: no watchdog goroutine, no extra allocation, and
// — critically for the deterministic explorer — no scheduling nondeterminism.
// A cancellable wait parks on the same ordered queue; a watchdog goroutine
// removes the entry and wakes the parked thread when ctx fires first.
func (st *mpState) waitAtLeastCtx(ctx context.Context, min uint64) error {
	if ctx == nil || ctx.Done() == nil {
		st.waitAtLeast(min)
		return nil
	}
	if st.lv.Load() >= min {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st.mu.Lock()
	if st.lv.Load() >= min {
		st.mu.Unlock()
		return nil
	}
	w := st.blk.NewWaiter()
	c := &waitCancel{}
	i := sort.Search(len(st.waiters), func(i int) bool { return st.waiters[i].min > min })
	st.waiters = append(st.waiters, waitEntry{})
	copy(st.waiters[i+1:], st.waiters[i:])
	st.waiters[i] = waitEntry{min: min, w: w, c: c}
	st.mu.Unlock()

	stop := make(chan struct{})
	//samoa:ignore blocking — cancellation watchdog; the admission park below stays on the Blocker seam, and unbounded contexts never reach this path
	go func() {
		select { //samoa:ignore blocking — watchdog body: waits on ctx expiry, a seam the Blocker cannot express; unbounded contexts never start it
		case <-ctx.Done():
			st.mu.Lock()
			if !c.done {
				for j := range st.waiters {
					if st.waiters[j].c == c {
						copy(st.waiters[j:], st.waiters[j+1:])
						st.waiters[len(st.waiters)-1] = waitEntry{}
						st.waiters = st.waiters[:len(st.waiters)-1]
						break
					}
				}
				c.done = true
				c.canceled = true
				w.Wake()
			}
			st.mu.Unlock()
		case <-stop: //samoa:ignore blocking — watchdog shutdown signal from the waking thread
		}
	}()
	w.Park()
	close(stop)
	st.mu.Lock()
	canceled := c.canceled
	st.mu.Unlock()
	if canceled {
		return ctx.Err()
	}
	return nil
}

// bump increments lv by one (rule 4 of VCAbound: a handler execution
// completed), applies any releases that became due, and wakes the
// now-admissible waiters.
func (st *mpState) bump() {
	st.mu.Lock()
	st.advanceLocked(st.lv.Load() + 1)
	st.mu.Unlock()
}

// request queues a release, allocating its node. The steady-state paths
// push token-embedded nodes through requestNode instead; this entry
// point serves the rare flows with no node at hand (fast-path claim
// abandonment, tests).
func (st *mpState) request(minLv, target uint64) {
	st.requestNode(&relNode{minLv: minLv, target: target})
}

// requestNode pushes one release onto the group-commit stack and joins
// the drain protocol. Exactly one thread drains at a time; a push that
// loses the draining flag returns immediately — the current drainer's
// post-clear recheck is guaranteed to see the node. Uncontended (and
// under the deterministic explorer, where requestNode contains no yield
// point and therefore runs atomically), the push drains synchronously
// and the call behaves exactly like the old one-release-one-wakeup path.
func (st *mpState) requestNode(n *relNode) {
	for {
		head := st.relq.Load()
		n.next = head
		if st.relq.CompareAndSwap(head, n) {
			break
		}
	}
	st.drain()
}

// drain folds batches off the release stack into the pending queue until
// the stack is observed empty: one advanceLocked per batch applies every
// due release and wakes the whole now-admissible prefix of waiters in a
// single pass — the group commit. The clear-then-recheck ordering against
// requestNode's push-then-CAS makes lost releases impossible.
func (st *mpState) drain() {
	for st.draining.CompareAndSwap(0, 1) {
		if batch := st.relq.Swap(nil); batch != nil {
			st.mu.Lock()
			for n := batch; n != nil; n = n.next {
				st.enqueueLocked(n.minLv, n.target)
			}
			st.advanceLocked(st.lv.Load())
			st.mu.Unlock()
		}
		st.draining.Store(0)
		if st.relq.Load() == nil {
			return
		}
	}
}

// enqueueLocked inserts one release into the pending queue, keeping it
// sorted by minLv ascending. Callers hold st.mu.
func (st *mpState) enqueueLocked(minLv, target uint64) {
	i := sort.Search(len(st.pending), func(i int) bool { return st.pending[i].minLv >= minLv })
	st.pending = append(st.pending, release{})
	copy(st.pending[i+1:], st.pending[i:])
	st.pending[i] = release{minLv: minLv, target: target}
}

// advanceLocked raises lv to newLv, drains the due prefix of the pending
// queue (cascading releases), and — only if lv actually changed — wakes
// exactly the waiters whose thresholds are now satisfied. Callers hold
// st.mu.
func (st *mpState) advanceLocked(newLv uint64) {
	lv := st.lv.Load()
	if newLv > lv {
		lv = newLv
	}
	d := 0
	for d < len(st.pending) && lv >= st.pending[d].minLv {
		if t := st.pending[d].target; t > lv {
			lv = t
		}
		d++
	}
	if d > 0 {
		// Copy-down instead of reslicing off the front, so the backing
		// array (and its capacity) is reused by later requests.
		m := copy(st.pending, st.pending[d:])
		st.pending = st.pending[:m]
	}
	if lv == st.lv.Load() {
		return // nothing changed: skip signalling entirely
	}
	st.lv.Store(lv)
	n := 0
	for n < len(st.waiters) && st.waiters[n].min <= lv {
		if c := st.waiters[n].c; c != nil {
			c.done = true // beat the cancellation watchdog to the entry
		}
		st.waiters[n].w.Wake()
		n++
	}
	if n > 0 {
		m := copy(st.waiters, st.waiters[n:])
		for i := m; i < len(st.waiters); i++ {
			st.waiters[i] = waitEntry{}
		}
		st.waiters = st.waiters[:m]
	}
}

// localVersion reports lv (for tests and introspection).
func (st *mpState) localVersion() uint64 { return st.lv.Load() }

// globalVersion reports gv (for tests and introspection).
func (st *mpState) globalVersion() uint64 { return st.gv.Load() }

// versionTable owns the dense microprotocol index and the mpState of
// every microprotocol a controller has seen. Each state is a fully
// independent shard — its own gv counter, admission lock, wait queue and
// release stack — so the table's mutex guards only slot assignment and
// is never touched after a spec's footprint has been compiled.
//
// Microprotocols get controller-local dense slots on first sight, so the
// per-spawn work is an array walk over a compiled footprint rather than
// pointer-keyed map churn.
type versionTable struct {
	blk       sched.Blocker
	useBounds bool // rule-1 deltas come from spec bounds (VCAbound)

	mu     sync.Mutex
	index  map[*core.Microprotocol]int // mp → dense slot; grows under mu
	states []*mpState                  // by dense slot; pointers are stable

	// retired maps a microprotocol removed by reconfiguration to its
	// rejection error, so a spec naming it fails at compile time even if
	// the table never assigned it a slot. Added-back microprotocols are
	// deleted again. Guarded by mu; nil until the first removal.
	retired map[*core.Microprotocol]*core.ReconfiguredError

	footprints sync.Map // *core.Spec → *footprint, compiled per epoch (invalidated on removal)

	// fastEmpty counts fast-path spawns of empty footprints (no slot to
	// charge them to); slowSpawns counts ordered-lock spawns. Slot-charged
	// fast counts live on the states — see mpState.fastSpawns.
	fastEmpty  atomic.Uint64
	slowSpawns atomic.Uint64
}

func newVersionTable() *versionTable {
	return &versionTable{
		blk:   sched.DefaultBlocker(),
		index: make(map[*core.Microprotocol]int),
	}
}

// newBoundVersionTable creates a table whose rule-1 claims advance gv by
// the spec's declared visit bounds instead of 1 (VCAbound's rule 1).
func newBoundVersionTable() *versionTable {
	vt := newVersionTable()
	vt.useBounds = true
	return vt
}

// setBlocker routes every park/wake point through blk. Must be called
// before the controller admits its first computation.
func (vt *versionTable) setBlocker(blk sched.Blocker) {
	vt.mu.Lock()
	vt.blk = blk
	for _, st := range vt.states {
		st.blk = blk
	}
	vt.mu.Unlock()
}

// spawnStats reports how many spawns were admitted by the lock-free fast
// path and by the ordered-lock slow path (for tests, benchmarks, and the
// E11 tables).
func (vt *versionTable) spawnStats() (fast, slow uint64) {
	vt.mu.Lock()
	fast = vt.fastEmpty.Load()
	for _, st := range vt.states {
		fast += st.fastSpawns.Load()
	}
	vt.mu.Unlock()
	return fast, vt.slowSpawns.Load()
}

// slotLocked returns mp's dense slot, assigning the next one on first
// sight. Callers hold vt.mu.
func (vt *versionTable) slotLocked(mp *core.Microprotocol) int {
	if i, ok := vt.index[mp]; ok {
		return i
	}
	i := len(vt.states)
	vt.index[mp] = i
	vt.states = append(vt.states, newMPState(vt.blk))
	return i
}

// claim performs rule 1 for one spawn: every declared slot's gv advances
// by its delta, and nodes[i] records the claim — minLv is the pre-claim
// gv (the lv value the computation's admission waits for), target the
// post-claim gv (the private version pv, and the lv value its release
// will install). The same nodes are later pushed to the slots' release
// stacks by Complete, so rule 3 allocates nothing.
//
// A slot whose microprotocol a reconfiguration has removed rejects the
// claim with the removal's preallocated ReconfiguredError — the caller
// raced an epoch swap and must rebuild its spec against the new epoch.
// The check costs one pointer load per slot on the fast path; the slow
// path re-checks under the admission locks, so a claim that loses the
// race with InstallEpoch cannot slip a new version onto a retiring slot.
func (vt *versionTable) claim(fp *footprint, nodes []relNode) error {
	for _, st := range fp.states {
		if err := st.gone.Load(); err != nil {
			return err
		}
	}
	if vt.claimFast(fp, nodes) {
		return nil
	}
	return vt.claimSlow(fp, nodes)
}

// claimFast is the lock-free admission path: it succeeds only when every
// declared slot is quiescent (lv == gv — no conflicting computation in
// flight), publishing each claim by a CAS on the slot's gv. Quiescence
// is what makes per-slot CAS sufficient for rule 1's atomicity: a claim
// can never slot in *behind* an in-flight conflicting spawn, so the
// per-slot version orders of any two computations always agree and the
// admission waits of a fast-path computation are satisfied the moment it
// is spawned. On any conflict the already-claimed prefix is rolled back
// (or retired as an instantly-released phantom when a later claim has
// built on it) and the spawn falls to the ordered-lock slow path.
func (vt *versionTable) claimFast(fp *footprint, nodes []relNode) bool {
	for _, st := range fp.states {
		if st.gv.Load() != st.lv.Load() {
			return false // conflicting computation in flight: don't claim
		}
	}
	for i, st := range fp.states {
		g := st.gv.Load()
		if g != st.lv.Load() || !st.gv.CompareAndSwap(g, g+fp.deltas[i]) {
			vt.unclaim(fp, nodes, i)
			return false
		}
		nodes[i] = relNode{minLv: g, target: g + fp.deltas[i]}
	}
	if len(fp.states) > 0 {
		fp.states[0].fastSpawns.Add(1)
	} else {
		vt.fastEmpty.Add(1)
	}
	return true
}

// unclaim abandons the first n fast-path claims of a failed claimFast.
// A claim nobody has built on is reverted by the inverse CAS; one that a
// concurrent spawn has already stacked a version on is retired as a
// phantom — an instantly-completed computation whose release keeps the
// slot's version chain gap-free.
func (vt *versionTable) unclaim(fp *footprint, nodes []relNode, n int) {
	for j := 0; j < n; j++ {
		st := fp.states[j]
		if !st.gv.CompareAndSwap(nodes[j].target, nodes[j].minLv) {
			st.request(nodes[j].minLv, nodes[j].target)
		}
	}
}

// claimSlow is the ordered-lock admission path for overlapping
// footprints: acquire the spawnMu of every declared slot in ascending
// slot order (deadlock freedom), advance all the gv counters while
// holding all the locks (two-phase — conflicting spawns' critical
// sections cannot overlap, so cross-slot version orders cannot cycle),
// then release. Disjoint spawns that both fall here still proceed in
// parallel: they share no slot, hence no lock.
func (vt *versionTable) claimSlow(fp *footprint, nodes []relNode) error {
	for _, p := range fp.lockOrder {
		fp.states[p].spawnMu.Lock()
	}
	for _, st := range fp.states {
		if err := st.gone.Load(); err != nil {
			for _, p := range fp.lockOrder {
				fp.states[p].spawnMu.Unlock()
			}
			return err
		}
	}
	for i, st := range fp.states {
		g := st.gv.Add(fp.deltas[i])
		nodes[i] = relNode{minLv: g - fp.deltas[i], target: g}
	}
	for _, p := range fp.lockOrder {
		fp.states[p].spawnMu.Unlock()
	}
	vt.slowSpawns.Add(1)
	return nil
}

// installEpoch is the synchronous half of the table's core.Reconfigurer
// support, run inside Reconfigure right after the new epoch is published.
// Removed microprotocols stop admitting: their slots get the removal's
// preallocated rejection error, and the retired map catches specs naming
// them that the table has never compiled. A replacement continues its
// predecessor's slot — both microprotocols index the same mpState, so
// old-epoch computations still holding the old version serialize against
// new-epoch claims and the two versions may share state across the swap —
// while specs still naming the old side are rejected like removals.
// Re-added microprotocols are un-marked and resume their version chain.
// Compiled footprints touching a removed or replaced microprotocol are
// dropped from the cache, so the footprints and lock orders live specs
// see are always re-derived against the new epoch (a plain addition gets
// a fresh slot, which starts quiescent: lv == gv == 0).
func (vt *versionTable) installEpoch(ec core.EpochChange) {
	stale := make(map[*core.Microprotocol]bool, len(ec.Removed)+len(ec.Replaced))
	vt.mu.Lock()
	if vt.retired == nil && len(ec.Removed)+len(ec.Replaced) > 0 {
		vt.retired = make(map[*core.Microprotocol]*core.ReconfiguredError)
	}
	for _, mp := range ec.Removed {
		err := &core.ReconfiguredError{MP: mp.Name(), Epoch: ec.Epoch}
		vt.retired[mp] = err
		stale[mp] = true
		if i, ok := vt.index[mp]; ok {
			vt.states[i].gone.Store(err)
		}
	}
	for _, r := range ec.Replaced {
		vt.retired[r.Old] = &core.ReconfiguredError{MP: r.Old.Name(), Epoch: ec.Epoch}
		stale[r.Old] = true
		delete(vt.retired, r.New)
		if i, ok := vt.index[r.Old]; ok {
			vt.index[r.New] = i // continue the version chain under the new mp
		}
	}
	for _, mp := range ec.Added {
		delete(vt.retired, mp)
		if i, ok := vt.index[mp]; ok {
			vt.states[i].gone.Store(nil)
		}
	}
	vt.mu.Unlock()
	if len(stale) == 0 {
		return
	}
	vt.footprints.Range(func(k, v any) bool {
		fp := v.(*footprint)
		for _, mp := range fp.mps {
			if stale[mp] {
				vt.footprints.Delete(k)
				break
			}
		}
		return true
	})
}

// retireEpoch is the asynchronous half, run once the superseded epoch's
// last computation has exited: every removed slot is drained to
// quiescence (lv == gv — each claim that beat the removal's install has
// released) before the epoch retires. The stabilization loop re-reads gv
// after the wait so a straggler claim that raced the gone-marker cannot
// be missed; gone stops new admissions, so the loop terminates. In
// practice the wait is already satisfied when retirement fires — the old
// epoch's computations completed, and completion pushed their releases.
func (vt *versionTable) retireEpoch(ec core.EpochChange) error {
	for _, mp := range ec.Removed {
		vt.mu.Lock()
		var st *mpState
		if i, ok := vt.index[mp]; ok {
			st = vt.states[i]
		}
		vt.mu.Unlock()
		if st == nil {
			continue // never claimed: trivially quiescent
		}
		for st.gone.Load() != nil { // a later epoch re-adding mp ends the drain
			g := st.gv.Load()
			st.waitAtLeast(g)
			if st.gv.Load() == g && st.lv.Load() == g {
				break
			}
		}
	}
	return nil
}

// footprint is a Spec compiled against one versionTable: for each
// declared microprotocol, in Spec.MPs() order, its dense slot, resolved
// mpState, visit bound (0 when the spec carries none), rule-1 delta,
// and whether the spec can only read it. lockOrder lists the footprint
// positions in ascending slot order — the slow path's lock acquisition
// discipline, free because it is compiled once per spec. Route specs
// additionally carry a compiled vertex-indexed view of the routing
// graph. A footprint is immutable once published; Spawn reuses it for
// every computation of the spec.
type footprint struct {
	mps       []*core.Microprotocol
	slots     []int
	states    []*mpState
	bounds    []uint64
	deltas    []uint64
	reader    []bool
	lockOrder []int

	route *routeInfo // nil for non-route specs
}

// pos returns mp's position in the footprint, or -1. Specs are small, so
// a linear scan beats hashing.
func (fp *footprint) pos(mp *core.Microprotocol) int {
	for i, m := range fp.mps {
		if m == mp {
			return i
		}
	}
	return -1
}

// routeInfo is the dense compilation of a RouteGraph: vertices are
// numbered, edges become index adjacency lists, and each vertex knows the
// footprint position of its microprotocol. hpos is read-only after
// compilation, so concurrent lookups need no lock.
type routeInfo struct {
	handlers []*core.Handler
	hpos     map[*core.Handler]int
	succs    [][]int
	isRoot   []bool
	mpOf     []int   // vertex → footprint position of its microprotocol
	mpVerts  [][]int // footprint position → vertex indices
}

// footprint returns (compiling on first use) spec's footprint. A spec
// naming a microprotocol removed by reconfiguration fails with the
// removal's ReconfiguredError instead of compiling.
func (vt *versionTable) footprint(spec *core.Spec) (*footprint, error) {
	if fp, ok := vt.footprints.Load(spec); ok {
		return fp.(*footprint), nil
	}
	fp, err := vt.compile(spec)
	if err != nil {
		return nil, err
	}
	actual, _ := vt.footprints.LoadOrStore(spec, fp)
	return actual.(*footprint), nil
}

func (vt *versionTable) compile(spec *core.Spec) (*footprint, error) {
	mps := spec.MPs()
	fp := &footprint{
		mps:       mps,
		slots:     make([]int, len(mps)),
		states:    make([]*mpState, len(mps)),
		bounds:    make([]uint64, len(mps)),
		deltas:    make([]uint64, len(mps)),
		reader:    make([]bool, len(mps)),
		lockOrder: make([]int, len(mps)),
	}
	vt.mu.Lock()
	for i, mp := range mps {
		if err := vt.retired[mp]; err != nil {
			vt.mu.Unlock()
			return nil, err
		}
		slot := vt.slotLocked(mp)
		fp.slots[i] = slot
		fp.states[i] = vt.states[slot]
	}
	vt.mu.Unlock()
	for i, mp := range mps {
		if b, ok := spec.Bound(mp); ok && b > 0 {
			fp.bounds[i] = uint64(b)
		}
		fp.deltas[i] = 1
		if vt.useBounds && fp.bounds[i] > 0 {
			fp.deltas[i] = fp.bounds[i]
		}
		fp.reader[i] = readerOf(spec, mp)
		fp.lockOrder[i] = i
	}
	sort.Slice(fp.lockOrder, func(a, b int) bool {
		return fp.slots[fp.lockOrder[a]] < fp.slots[fp.lockOrder[b]]
	})
	if g := spec.Graph(); g != nil {
		fp.route = compileRoute(g, fp)
	}
	return fp, nil
}

func compileRoute(g *core.RouteGraph, fp *footprint) *routeInfo {
	vs := g.Vertices()
	r := &routeInfo{
		handlers: vs,
		hpos:     make(map[*core.Handler]int, len(vs)),
		succs:    make([][]int, len(vs)),
		isRoot:   make([]bool, len(vs)),
		mpOf:     make([]int, len(vs)),
		mpVerts:  make([][]int, len(fp.mps)),
	}
	for i, h := range vs {
		r.hpos[h] = i
	}
	for i, h := range vs {
		r.isRoot[i] = g.IsRoot(h)
		p := fp.pos(h.MP())
		r.mpOf[i] = p
		if p >= 0 {
			r.mpVerts[p] = append(r.mpVerts[p], i)
		}
		for _, succ := range g.Succs(h) {
			r.succs[i] = append(r.succs[i], r.hpos[succ])
		}
	}
	return r
}
