package cc

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sched"
)

// mpState is the per-microprotocol versioning state shared by the VCA*
// controllers: the local version counter lv of the paper, an ordered
// queue of parked waiters, and a queue of deferred release requests.
//
// The paper's rules 3/4 read "wait until (1)/(2) is true, then upgrade the
// local version". Two mechanisms keep that cheap:
//
//   - Deferred releases: a release request (minLv, target) is queued and
//     applied — in ascending order — whenever lv changes and reaches
//     minLv. Because minLv values derive from the atomically-ordered
//     global counter increments of rule 1, applications happen exactly in
//     spawn order, which is the correctness condition of the paper's
//     proofs.
//   - Targeted wakeups: every admission predicate used by the algorithms
//     has the shape "lv >= threshold", so waiters park on an ordered
//     queue keyed by the threshold they need. When lv advances, exactly
//     the now-admissible prefix is woken; when an update leaves lv
//     unchanged, nobody is signalled. The admission fast path reads lv
//     atomically and never takes the mutex.
type mpState struct {
	blk     sched.Blocker
	mu      sync.Mutex
	lv      atomic.Uint64 // written only under mu; read lock-free by waitAtLeast
	pending []release     // sorted by minLv ascending
	waiters []waitEntry   // sorted by min ascending; FIFO among equal thresholds
}

// release asks for lv to be raised to target once lv >= minLv. Targets
// never lower lv (the algorithms' "never downgraded" guarantee).
type release struct {
	minLv  uint64
	target uint64
}

// waitEntry is one parked computation thread: the lv threshold it needs
// and the one-shot waiter it parked on. The waiter comes from the
// state's Blocker — pooled channels in production, virtual scheduler
// park points under deterministic exploration. c is non-nil only for
// cancellable waits (waitAtLeastCtx).
type waitEntry struct {
	min uint64
	w   sched.Waiter
	c   *waitCancel
}

// waitCancel coordinates a parked waiter with its cancellation watchdog.
// All fields are guarded by the owning mpState's mu.
type waitCancel struct {
	done     bool // the entry left the queue (woken or cancelled)
	canceled bool // it left because the context expired
}

func newMPState(blk sched.Blocker) *mpState { return &mpState{blk: blk} }

// waitAtLeast blocks until lv >= min. The fast path is a single atomic
// load; the slow path parks the caller on the ordered wait queue.
func (st *mpState) waitAtLeast(min uint64) {
	if st.lv.Load() >= min {
		return
	}
	st.mu.Lock()
	if st.lv.Load() >= min {
		st.mu.Unlock()
		return
	}
	w := st.blk.NewWaiter()
	i := sort.Search(len(st.waiters), func(i int) bool { return st.waiters[i].min > min })
	st.waiters = append(st.waiters, waitEntry{})
	copy(st.waiters[i+1:], st.waiters[i:])
	st.waiters[i] = waitEntry{min: min, w: w}
	st.mu.Unlock()
	w.Park()
}

// waitAtLeastCtx is waitAtLeast bounded by a context: it returns nil once
// lv >= min, or the context's error if ctx expires first — the caller's
// admission wait becomes a clean abort instead of a permanent block.
//
// Unbounded contexts (Done() == nil, e.g. context.Background) take the
// exact waitAtLeast path: no watchdog goroutine, no extra allocation, and
// — critically for the deterministic explorer — no scheduling nondeterminism.
// A cancellable wait parks on the same ordered queue; a watchdog goroutine
// removes the entry and wakes the parked thread when ctx fires first.
func (st *mpState) waitAtLeastCtx(ctx context.Context, min uint64) error {
	if ctx == nil || ctx.Done() == nil {
		st.waitAtLeast(min)
		return nil
	}
	if st.lv.Load() >= min {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st.mu.Lock()
	if st.lv.Load() >= min {
		st.mu.Unlock()
		return nil
	}
	w := st.blk.NewWaiter()
	c := &waitCancel{}
	i := sort.Search(len(st.waiters), func(i int) bool { return st.waiters[i].min > min })
	st.waiters = append(st.waiters, waitEntry{})
	copy(st.waiters[i+1:], st.waiters[i:])
	st.waiters[i] = waitEntry{min: min, w: w, c: c}
	st.mu.Unlock()

	stop := make(chan struct{})
	//samoa:ignore blocking — cancellation watchdog; the admission park below stays on the Blocker seam, and unbounded contexts never reach this path
	go func() {
		select { //samoa:ignore blocking — watchdog body: waits on ctx expiry, a seam the Blocker cannot express; unbounded contexts never start it
		case <-ctx.Done():
			st.mu.Lock()
			if !c.done {
				for j := range st.waiters {
					if st.waiters[j].c == c {
						copy(st.waiters[j:], st.waiters[j+1:])
						st.waiters[len(st.waiters)-1] = waitEntry{}
						st.waiters = st.waiters[:len(st.waiters)-1]
						break
					}
				}
				c.done = true
				c.canceled = true
				w.Wake()
			}
			st.mu.Unlock()
		case <-stop: //samoa:ignore blocking — watchdog shutdown signal from the waking thread
		}
	}()
	w.Park()
	close(stop)
	st.mu.Lock()
	canceled := c.canceled
	st.mu.Unlock()
	if canceled {
		return ctx.Err()
	}
	return nil
}

// bump increments lv by one (rule 4 of VCAbound: a handler execution
// completed), applies any releases that became due, and wakes the
// now-admissible waiters.
func (st *mpState) bump() {
	st.mu.Lock()
	st.advanceLocked(st.lv.Load() + 1)
	st.mu.Unlock()
}

// request queues (and immediately applies, if due) a release.
func (st *mpState) request(minLv, target uint64) {
	st.mu.Lock()
	i := sort.Search(len(st.pending), func(i int) bool { return st.pending[i].minLv >= minLv })
	st.pending = append(st.pending, release{})
	copy(st.pending[i+1:], st.pending[i:])
	st.pending[i] = release{minLv: minLv, target: target}
	st.advanceLocked(st.lv.Load())
	st.mu.Unlock()
}

// advanceLocked raises lv to newLv, drains the due prefix of the pending
// queue (cascading releases), and — only if lv actually changed — wakes
// exactly the waiters whose thresholds are now satisfied. Callers hold
// st.mu.
func (st *mpState) advanceLocked(newLv uint64) {
	lv := st.lv.Load()
	if newLv > lv {
		lv = newLv
	}
	d := 0
	for d < len(st.pending) && lv >= st.pending[d].minLv {
		if t := st.pending[d].target; t > lv {
			lv = t
		}
		d++
	}
	if d > 0 {
		// Copy-down instead of reslicing off the front, so the backing
		// array (and its capacity) is reused by later requests.
		m := copy(st.pending, st.pending[d:])
		st.pending = st.pending[:m]
	}
	if lv == st.lv.Load() {
		return // nothing changed: skip signalling entirely
	}
	st.lv.Store(lv)
	n := 0
	for n < len(st.waiters) && st.waiters[n].min <= lv {
		if c := st.waiters[n].c; c != nil {
			c.done = true // beat the cancellation watchdog to the entry
		}
		st.waiters[n].w.Wake()
		n++
	}
	if n > 0 {
		m := copy(st.waiters, st.waiters[n:])
		for i := m; i < len(st.waiters); i++ {
			st.waiters[i] = waitEntry{}
		}
		st.waiters = st.waiters[:m]
	}
}

// localVersion reports lv (for tests and introspection).
func (st *mpState) localVersion() uint64 { return st.lv.Load() }

// versionTable owns the dense microprotocol index, the global version
// counters gv, and the mpState of every microprotocol a controller has
// seen. Its mutex serializes spawns, making rule 1's multi-counter
// increment atomic and totally ordering computations.
//
// Microprotocols get controller-local dense slots on first sight, so the
// per-spawn work is an array walk over a compiled footprint rather than
// pointer-keyed map churn.
type versionTable struct {
	blk    sched.Blocker
	mu     sync.Mutex
	index  map[*core.Microprotocol]int // mp → dense slot; grows under mu
	gv     []uint64                    // by dense slot
	states []*mpState                  // by dense slot; pointers are stable

	footprints sync.Map // *core.Spec → *footprint, compiled once per spec
}

func newVersionTable() *versionTable {
	return &versionTable{
		blk:   sched.DefaultBlocker(),
		index: make(map[*core.Microprotocol]int),
	}
}

// setBlocker routes every park/wake point through blk. Must be called
// before the controller admits its first computation.
func (vt *versionTable) setBlocker(blk sched.Blocker) {
	vt.mu.Lock()
	vt.blk = blk
	for _, st := range vt.states {
		st.blk = blk
	}
	vt.mu.Unlock()
}

// slotLocked returns mp's dense slot, assigning the next one on first
// sight. Callers hold vt.mu.
func (vt *versionTable) slotLocked(mp *core.Microprotocol) int {
	if i, ok := vt.index[mp]; ok {
		return i
	}
	i := len(vt.gv)
	vt.index[mp] = i
	vt.gv = append(vt.gv, 0)
	vt.states = append(vt.states, newMPState(vt.blk))
	return i
}

// footprint is a Spec compiled against one versionTable: for each
// declared microprotocol, in Spec.MPs() order, its dense slot, resolved
// mpState, visit bound (0 when the spec carries none), and whether the
// spec can only read it. Route specs additionally carry a compiled
// vertex-indexed view of the routing graph. A footprint is immutable
// once published; Spawn reuses it for every computation of the spec.
type footprint struct {
	mps    []*core.Microprotocol
	slots  []int
	states []*mpState
	bounds []uint64
	reader []bool

	route *routeInfo // nil for non-route specs
}

// pos returns mp's position in the footprint, or -1. Specs are small, so
// a linear scan beats hashing.
func (fp *footprint) pos(mp *core.Microprotocol) int {
	for i, m := range fp.mps {
		if m == mp {
			return i
		}
	}
	return -1
}

// routeInfo is the dense compilation of a RouteGraph: vertices are
// numbered, edges become index adjacency lists, and each vertex knows the
// footprint position of its microprotocol. hpos is read-only after
// compilation, so concurrent lookups need no lock.
type routeInfo struct {
	handlers []*core.Handler
	hpos     map[*core.Handler]int
	succs    [][]int
	isRoot   []bool
	mpOf     []int   // vertex → footprint position of its microprotocol
	mpVerts  [][]int // footprint position → vertex indices
}

// footprint returns (compiling on first use) spec's footprint.
func (vt *versionTable) footprint(spec *core.Spec) *footprint {
	if fp, ok := vt.footprints.Load(spec); ok {
		return fp.(*footprint)
	}
	fp := vt.compile(spec)
	actual, _ := vt.footprints.LoadOrStore(spec, fp)
	return actual.(*footprint)
}

func (vt *versionTable) compile(spec *core.Spec) *footprint {
	mps := spec.MPs()
	fp := &footprint{
		mps:    mps,
		slots:  make([]int, len(mps)),
		states: make([]*mpState, len(mps)),
		bounds: make([]uint64, len(mps)),
		reader: make([]bool, len(mps)),
	}
	vt.mu.Lock()
	for i, mp := range mps {
		slot := vt.slotLocked(mp)
		fp.slots[i] = slot
		fp.states[i] = vt.states[slot]
	}
	vt.mu.Unlock()
	for i, mp := range mps {
		if b, ok := spec.Bound(mp); ok && b > 0 {
			fp.bounds[i] = uint64(b)
		}
		fp.reader[i] = readerOf(spec, mp)
	}
	if g := spec.Graph(); g != nil {
		fp.route = compileRoute(g, fp)
	}
	return fp
}

func compileRoute(g *core.RouteGraph, fp *footprint) *routeInfo {
	vs := g.Vertices()
	r := &routeInfo{
		handlers: vs,
		hpos:     make(map[*core.Handler]int, len(vs)),
		succs:    make([][]int, len(vs)),
		isRoot:   make([]bool, len(vs)),
		mpOf:     make([]int, len(vs)),
		mpVerts:  make([][]int, len(fp.mps)),
	}
	for i, h := range vs {
		r.hpos[h] = i
	}
	for i, h := range vs {
		r.isRoot[i] = g.IsRoot(h)
		p := fp.pos(h.MP())
		r.mpOf[i] = p
		if p >= 0 {
			r.mpVerts[p] = append(r.mpVerts[p], i)
		}
		for _, succ := range g.Succs(h) {
			r.succs[i] = append(r.succs[i], r.hpos[succ])
		}
	}
	return r
}
