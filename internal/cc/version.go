package cc

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// mpState is the per-microprotocol versioning state shared by the VCA*
// controllers: the local version counter lv of the paper, a condition
// variable for computations waiting to enter, and a queue of deferred
// release requests.
//
// The paper's rules 3/4 read "wait until (1)/(2) is true, then upgrade the
// local version". Parking a goroutine per pending upgrade would be
// wasteful; instead a release request (minLv, target) is queued and
// applied — in ascending order — whenever lv changes and reaches minLv.
// Because minLv values derive from the atomically-ordered global counter
// increments of rule 1, applications happen exactly in spawn order, which
// is the correctness condition of the paper's proofs.
type mpState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	lv      uint64
	pending []release // sorted by minLv ascending
}

// release asks for lv to be raised to target once lv >= minLv. Targets
// never lower lv (the algorithms' "never downgraded" guarantee).
type release struct {
	minLv  uint64
	target uint64
}

func newMPState() *mpState {
	st := &mpState{}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// wait blocks until pred holds for the local version.
func (st *mpState) wait(pred func(lv uint64) bool) {
	st.mu.Lock()
	for !pred(st.lv) {
		st.cond.Wait()
	}
	st.mu.Unlock()
}

// bump increments lv by one (rule 4 of VCAbound: a handler execution
// completed) and applies any releases that became due.
func (st *mpState) bump() {
	st.mu.Lock()
	st.lv++
	st.applyLocked()
	st.cond.Broadcast()
	st.mu.Unlock()
}

// request queues (and immediately applies, if due) a release.
func (st *mpState) request(minLv, target uint64) {
	st.mu.Lock()
	i := sort.Search(len(st.pending), func(i int) bool { return st.pending[i].minLv >= minLv })
	st.pending = append(st.pending, release{})
	copy(st.pending[i+1:], st.pending[i:])
	st.pending[i] = release{minLv: minLv, target: target}
	st.applyLocked()
	st.cond.Broadcast()
	st.mu.Unlock()
}

func (st *mpState) applyLocked() {
	for len(st.pending) > 0 && st.lv >= st.pending[0].minLv {
		if t := st.pending[0].target; t > st.lv {
			st.lv = t
		}
		st.pending = st.pending[1:]
	}
}

// localVersion reports lv (for tests and introspection).
func (st *mpState) localVersion() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lv
}

// versionTable owns the global version counters gv and the mpState of
// every microprotocol a controller has seen. Its mutex also serializes
// spawns, making rule 1's multi-counter increment atomic and totally
// ordering computations.
type versionTable struct {
	mu     sync.Mutex
	gv     map[*core.Microprotocol]uint64
	states map[*core.Microprotocol]*mpState
}

func newVersionTable() *versionTable {
	return &versionTable{
		gv:     make(map[*core.Microprotocol]uint64),
		states: make(map[*core.Microprotocol]*mpState),
	}
}

// stateLocked returns (creating if needed) mp's state. Callers hold vt.mu.
func (vt *versionTable) stateLocked(mp *core.Microprotocol) *mpState {
	st := vt.states[mp]
	if st == nil {
		st = newMPState()
		vt.states[mp] = st
	}
	return st
}
