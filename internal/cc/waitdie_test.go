package cc_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/trace"
)

// intState is a snapshottable counter.
type intState struct{ v int }

func (s *intState) Snapshot() any    { return s.v }
func (s *intState) Restore(snap any) { s.v = snap.(int) }

// wdFixture: m snapshottable counter microprotocols; handler i increments
// counter i and triggers the next script step.
type wdFixture struct {
	s      *core.Stack
	rec    *trace.Recorder
	ctrl   *cc.WaitDie
	mps    []*core.Microprotocol
	states []*intState
	evs    []*core.EventType
}

func newWDFixture(m int) *wdFixture {
	f := &wdFixture{ctrl: cc.NewWaitDie(), rec: trace.NewRecorder()}
	f.s = core.NewStack(f.ctrl, core.WithTracer(f.rec))
	for i := 0; i < m; i++ {
		st := &intState{}
		mp := core.NewMicroprotocol(fmt.Sprintf("mp%d", i))
		mp.SetSnapshotter(st)
		ev := core.NewEventType(fmt.Sprintf("e%d", i))
		h := mp.AddHandler("inc", func(ctx *core.Context, msg core.Message) error {
			st.v++
			if s, ok := msg.(*visitScript); ok && s.pos+1 < len(s.seq) {
				return ctx.Trigger(f.evs[s.seq[s.pos+1]], &visitScript{seq: s.seq, pos: s.pos + 1})
			}
			return nil
		})
		f.mps = append(f.mps, mp)
		f.states = append(f.states, st)
		f.evs = append(f.evs, ev)
		f.s.Register(mp)
		f.s.Bind(ev, h)
	}
	return f
}

func (f *wdFixture) spec(seq []int) *core.Spec {
	var mps []*core.Microprotocol
	for _, i := range seq {
		mps = append(mps, f.mps[i])
	}
	return core.Access(mps...)
}

func TestWaitDieName(t *testing.T) {
	if cc.NewWaitDie().Name() != "wait-die" {
		t.Fatal("name")
	}
}

func TestWaitDieRequiresSnapshotter(t *testing.T) {
	s := core.NewStack(cc.NewWaitDie())
	p := core.NewMicroprotocol("p") // no snapshotter
	p.AddHandler("h", nop)
	s.Register(p)
	err := s.Isolated(core.Access(p), nil)
	var se *core.SpecError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitDieSequential(t *testing.T) {
	f := newWDFixture(2)
	for i := 0; i < 5; i++ {
		if err := f.s.External(f.spec([]int{0, 1}), f.evs[0], &visitScript{seq: []int{0, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if f.states[0].v != 5 || f.states[1].v != 5 {
		t.Fatalf("counters = %d, %d", f.states[0].v, f.states[1].v)
	}
	if f.ctrl.Aborts() != 0 {
		t.Fatalf("sequential run aborted %d times", f.ctrl.Aborts())
	}
}

func TestWaitDieUndeclared(t *testing.T) {
	f := newWDFixture(2)
	err := f.s.External(f.spec([]int{0}), f.evs[1], &visitScript{seq: []int{1}})
	var ue *core.UndeclaredError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v", err)
	}
}

// TestWaitDieAbortAndRetry orchestrates the classic crossed lock order:
// the older computation A holds mp0 and wants mp1; the younger B holds
// mp1 and wants mp0 — B dies, its increment of mp1 is rolled back, it
// retries and succeeds. Final counters prove exactly-once effects.
func TestWaitDieAbortAndRetry(t *testing.T) {
	ctrl := cc.NewWaitDie()
	s := core.NewStack(ctrl)
	st0, st1 := &intState{}, &intState{}
	mp0 := core.NewMicroprotocol("mp0")
	mp0.SetSnapshotter(st0)
	mp1 := core.NewMicroprotocol("mp1")
	mp1.SetSnapshotter(st1)
	e0, e1 := core.NewEventType("e0"), core.NewEventType("e1")
	h0 := mp0.AddHandler("inc", func(*core.Context, core.Message) error { st0.v++; return nil })
	h1 := mp1.AddHandler("inc", func(*core.Context, core.Message) error { st1.v++; return nil })
	s.Register(mp0, mp1)
	s.Bind(e0, h0)
	s.Bind(e1, h1)
	spec := core.Access(mp0, mp1)

	bHolds1 := make(chan struct{}, 1)
	aHolds0 := make(chan struct{})
	aDone := make(chan error, 1)
	bDone := make(chan error, 1)
	go func() {
		aDone <- s.Isolated(spec, func(ctx *core.Context) error {
			if err := ctx.Trigger(e0, nil); err != nil {
				return err
			}
			close(aHolds0)
			<-bHolds1 // make sure B holds mp1 before A asks for it
			return ctx.Trigger(e1, nil)
		})
	}()
	<-aHolds0
	go func() {
		bDone <- s.Isolated(spec, func(ctx *core.Context) error {
			if err := ctx.Trigger(e1, nil); err != nil { // acquires mp1
				return err
			}
			select { // non-blocking: retries must not hang on a full buffer
			case bHolds1 <- struct{}{}:
			default:
			}
			return ctx.Trigger(e0, nil) // A (older) holds mp0 → B dies
		})
	}()
	if err := <-aDone; err != nil {
		t.Fatal(err)
	}
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}
	if ctrl.Aborts() < 1 {
		t.Fatal("expected at least one abort")
	}
	if st0.v != 2 || st1.v != 2 {
		t.Fatalf("counters = %d, %d — rollback failed (want 2, 2)", st0.v, st1.v)
	}
}

// TestWaitDieContentionProperty: random crossed-order workloads finish
// with exact counters and a serializable committed trace, despite aborts.
func TestWaitDieContentionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		f := newWDFixture(m)
		scripts := make([][]int, 4+rng.Intn(8))
		want := make([]int, m)
		for i := range scripts {
			perm := rng.Perm(m)[:1+rng.Intn(m)]
			scripts[i] = perm
			for _, j := range perm {
				want[j]++
			}
		}
		var wg sync.WaitGroup
		for _, seq := range scripts {
			wg.Add(1)
			go func(seq []int) {
				defer wg.Done()
				if err := f.s.External(f.spec(seq), f.evs[seq[0]], &visitScript{seq: seq}); err != nil {
					t.Error(err)
				}
			}(seq)
		}
		wg.Wait()
		for i, w := range want {
			if f.states[i].v != w {
				t.Errorf("seed %d: counter[%d] = %d, want %d (aborts=%d)", seed, i, f.states[i].v, w, f.ctrl.Aborts())
			}
		}
		rep := f.rec.Check()
		if !rep.Serializable {
			t.Errorf("seed %d: committed trace not serializable (cycle %v)", seed, rep.Cycle)
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWaitDieTraceMarksAborts: rolled-back attempts appear as Aborted in
// the trace and are excluded from the isolation analysis.
func TestWaitDieTraceMarksAborts(t *testing.T) {
	f := newWDFixture(3)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		seq := []int{i % 3, (i + 1) % 3, (i + 2) % 3} // rotated orders: plenty of conflicts
		wg.Add(1)
		go func(seq []int) {
			defer wg.Done()
			if err := f.s.External(f.spec(seq), f.evs[seq[0]], &visitScript{seq: seq}); err != nil {
				t.Error(err)
			}
		}(seq)
	}
	wg.Wait()
	rep := f.rec.Check()
	if !rep.Serializable {
		t.Fatalf("committed trace not serializable: %v", rep.Cycle)
	}
	if uint64(rep.Aborted) != f.ctrl.Aborts() {
		t.Fatalf("trace aborts = %d, controller aborts = %d", rep.Aborted, f.ctrl.Aborts())
	}
	if f.states[0].v != 12 || f.states[1].v != 12 || f.states[2].v != 12 {
		t.Fatalf("counters = %v", []int{f.states[0].v, f.states[1].v, f.states[2].v})
	}
}

// TestWaitDieDisjointNoAborts: disjoint computations never conflict, so
// they run concurrently with zero aborts.
func TestWaitDieDisjointNoAborts(t *testing.T) {
	f := newWDFixture(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := f.s.External(f.spec([]int{w}), f.evs[w], &visitScript{seq: []int{w}}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if f.ctrl.Aborts() != 0 {
		t.Fatalf("disjoint workload aborted %d times", f.ctrl.Aborts())
	}
	for i := 0; i < 4; i++ {
		if f.states[i].v != 20 {
			t.Fatalf("counter[%d] = %d", i, f.states[i].v)
		}
	}
}
