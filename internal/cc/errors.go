package cc

import "repro/internal/core"

// undeclared builds the UndeclaredError every controller returns for a
// call outside the declared set, naming the spec so the message points
// at the fix (declare the microprotocol, or stop reaching the handler).
func undeclared(h *core.Handler, declared []*core.Microprotocol) error {
	names := make([]string, len(declared))
	for i, mp := range declared {
		names[i] = mp.Name()
	}
	return &core.UndeclaredError{MP: h.MP().Name(), Handler: h.Name(), Declared: names}
}

// deadline wraps a context error from a cancelled admission wait into the
// typed error the core contract prescribes (stage "spawn" or "enter").
func deadline(stage string, h *core.Handler, err error) error {
	name := ""
	if h != nil {
		name = h.String()
	}
	return &core.DeadlineError{Stage: stage, Handler: name, Err: err}
}
