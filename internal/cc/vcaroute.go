package cc

import (
	"sync"

	"repro/internal/core"
)

// VCARoute is the Version-Counting with Routing Pattern Algorithm of paper
// §5.3, implementing "isolated route M e".
//
// The spec's routing graph declares, per computation, which handlers may
// be called and by whom (an edge h1→h2 means the body of h1 may call h2;
// rule 2 admits a call when a route — a path — exists). Versioning works
// as in VCAbasic (one version per microprotocol), but rule 4(b) releases a
// microprotocol early: as soon as all its handlers are inactive and
// unreachable from any active handler, its vertices leave the graph and
// its local version is upgraded, letting the next computation in before
// this one completes.
//
// Two details the paper leaves implicit are made concrete here:
//
//   - A handler requested asynchronously but not yet started counts as
//     active for reachability, from the moment the event is issued;
//     otherwise its microprotocol could be released out from under it.
//   - Early upgrades go through the same version-ordered release queue as
//     completions, so a release by computation k never overtakes an
//     older computation still using the microprotocol.
//
// A virtual ROOT vertex (edges to the graph's declared roots) models
// "handlers to be called directly by expression e"; it stays active until
// the root expression returns.
type VCARoute struct {
	vt *versionTable
}

// NewVCARoute creates a controller enforcing the routing-pattern
// version-counting algorithm. Specs must be built with core.Route.
func NewVCARoute() *VCARoute { return &VCARoute{vt: newVersionTable()} }

// Name implements core.Controller.
func (c *VCARoute) Name() string { return "vca-route" }

type routeEntry struct {
	st       *mpState
	pv       uint64
	released bool
	vertices []*core.Handler // graph vertices belonging to this microprotocol
}

type routeToken struct {
	mu         sync.Mutex
	graph      *core.RouteGraph
	entries    map[*core.Microprotocol]*routeEntry
	present    map[*core.Handler]bool // vertices still in the graph
	counts     map[*core.Handler]int  // pending + active executions
	rootActive bool
}

// Spawn implements rule 1 of VCAbasic over the graph's microprotocols.
func (c *VCARoute) Spawn(spec *core.Spec) (core.Token, error) {
	g := spec.Graph()
	if g == nil {
		return nil, &core.SpecError{Controller: c.Name(), Reason: "spec carries no routing graph; build it with core.Route"}
	}
	t := &routeToken{
		graph:      g,
		entries:    make(map[*core.Microprotocol]*routeEntry, len(spec.MPs())),
		present:    make(map[*core.Handler]bool),
		counts:     make(map[*core.Handler]int),
		rootActive: true,
	}
	c.vt.mu.Lock()
	for _, mp := range spec.MPs() {
		c.vt.gv[mp]++
		t.entries[mp] = &routeEntry{st: c.vt.stateLocked(mp), pv: c.vt.gv[mp]}
	}
	c.vt.mu.Unlock()
	for _, h := range g.Vertices() {
		t.present[h] = true
		e := t.entries[h.MP()]
		e.vertices = append(e.vertices, h)
	}
	return t, nil
}

// Request implements the admission part of rule 2: the call must follow a
// declared route (or target a declared root when issued by the root
// expression). An admitted call marks the handler as requested — it counts
// as active for rule 4(b) from this moment.
func (c *VCARoute) Request(t core.Token, caller, h *core.Handler) error {
	tok := t.(*routeToken)
	tok.mu.Lock()
	defer tok.mu.Unlock()
	if tok.entries[h.MP()] == nil {
		return &core.UndeclaredError{MP: h.MP().Name(), Handler: h.Name()}
	}
	if !tok.present[h] {
		// The vertex was declared but already removed by rule 4(b); a
		// call now would break the release the algorithm performed.
		return &core.NoRouteError{From: nameOf(caller), To: h.String()}
	}
	if caller == nil {
		if !tok.graph.IsRoot(h) {
			return &core.NoRouteError{From: "", To: h.String()}
		}
	} else if !tok.routeExists(caller, h) {
		return &core.NoRouteError{From: caller.String(), To: h.String()}
	}
	tok.counts[h]++
	return nil
}

// routeExists reports whether a path from src to dst (length ≥ 1) exists
// over the still-present vertices. Callers hold tok.mu.
func (tok *routeToken) routeExists(src, dst *core.Handler) bool {
	if !tok.present[src] {
		return false
	}
	seen := map[*core.Handler]bool{}
	queue := []*core.Handler{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, succ := range tok.graph.Succs(x) {
			if !tok.present[succ] || seen[succ] {
				continue
			}
			if succ == dst {
				return true
			}
			seen[succ] = true
			queue = append(queue, succ)
		}
	}
	return false
}

// Enter implements the versioning part of rule 2 (condition (1) of
// VCAbasic).
func (c *VCARoute) Enter(t core.Token, _, h *core.Handler) error {
	e := t.(*routeToken).entries[h.MP()]
	if e == nil {
		return &core.UndeclaredError{MP: h.MP().Name(), Handler: h.Name()}
	}
	e.st.wait(func(lv uint64) bool { return lv+1 >= e.pv })
	return nil
}

// Exit implements rule 4: the handler becomes inactive, and any
// microprotocol left with only inactive, unreachable handlers is released.
func (c *VCARoute) Exit(t core.Token, h *core.Handler) {
	tok := t.(*routeToken)
	tok.mu.Lock()
	tok.counts[h]--
	tok.scanReleaseLocked()
	tok.mu.Unlock()
}

// RootReturned deactivates the virtual ROOT vertex: the root expression
// will issue no more direct calls, so handlers reachable only from ROOT
// become releasable.
func (c *VCARoute) RootReturned(t core.Token) {
	tok := t.(*routeToken)
	tok.mu.Lock()
	tok.rootActive = false
	tok.scanReleaseLocked()
	tok.mu.Unlock()
}

// Complete implements rule 3 (as in VCAbound): upgrade what rule 4(b)
// could not release early — e.g. microprotocols kept reachable by cycles.
func (c *VCARoute) Complete(t core.Token) {
	tok := t.(*routeToken)
	tok.mu.Lock()
	for _, e := range tok.entries {
		if !e.released {
			e.released = true
			e.st.request(e.pv-1, e.pv)
		}
	}
	tok.mu.Unlock()
}

// scanReleaseLocked is rule 4(b): compute the set of handlers that are
// active or reachable from an active handler (including the virtual ROOT)
// over present vertices, then release every unreleased microprotocol none
// of whose present vertices is in that set. Callers hold tok.mu.
func (tok *routeToken) scanReleaseLocked() {
	busy := map[*core.Handler]bool{}
	var queue []*core.Handler
	for h, n := range tok.counts {
		if n > 0 && tok.present[h] && !busy[h] {
			busy[h] = true
			queue = append(queue, h)
		}
	}
	if tok.rootActive {
		for _, h := range tok.graph.Vertices() {
			if tok.graph.IsRoot(h) && tok.present[h] && !busy[h] {
				busy[h] = true
				queue = append(queue, h)
			}
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, succ := range tok.graph.Succs(x) {
			if tok.present[succ] && !busy[succ] {
				busy[succ] = true
				queue = append(queue, succ)
			}
		}
	}
	for _, e := range tok.entries {
		if e.released {
			continue
		}
		inUse := false
		for _, h := range e.vertices {
			if tok.present[h] && busy[h] {
				inUse = true
				break
			}
		}
		if inUse {
			continue
		}
		for _, h := range e.vertices {
			delete(tok.present, h)
		}
		e.released = true
		e.st.request(e.pv-1, e.pv)
	}
}

func nameOf(h *core.Handler) string {
	if h == nil {
		return ""
	}
	return h.String()
}
