package cc

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// VCARoute is the Version-Counting with Routing Pattern Algorithm of paper
// §5.3, implementing "isolated route M e".
//
// The spec's routing graph declares, per computation, which handlers may
// be called and by whom (an edge h1→h2 means the body of h1 may call h2;
// rule 2 admits a call when a route — a path — exists). Versioning works
// as in VCAbasic (one version per microprotocol), but rule 4(b) releases a
// microprotocol early: as soon as all its handlers are inactive and
// unreachable from any active handler, its vertices leave the graph and
// its local version is upgraded, letting the next computation in before
// this one completes.
//
// Two details the paper leaves implicit are made concrete here:
//
//   - A handler requested asynchronously but not yet started counts as
//     active for reachability, from the moment the event is issued;
//     otherwise its microprotocol could be released out from under it.
//   - Early upgrades go through the same version-ordered release queue as
//     completions, so a release by computation k never overtakes an
//     older computation still using the microprotocol.
//
// A virtual ROOT vertex (edges to the graph's declared roots) models
// "handlers to be called directly by expression e"; it stays active until
// the root expression returns.
//
// The routing graph is compiled once per spec into dense vertex indices
// (footprint.route); per-token state — presence, activity counts, BFS
// scratch — is then plain slices over those indices.
type VCARoute struct {
	vt *versionTable
}

// NewVCARoute creates a controller enforcing the routing-pattern
// version-counting algorithm. Specs must be built with core.Route.
func NewVCARoute() *VCARoute { return &VCARoute{vt: newVersionTable()} }

// Name implements core.Controller.
func (c *VCARoute) Name() string { return "vca-route" }

// SetBlocker implements sched.Schedulable.
func (c *VCARoute) SetBlocker(b sched.Blocker) { c.vt.setBlocker(b) }

// SpawnStats reports how many spawns took the lock-free fast path and
// the ordered-lock slow path (see DESIGN.md §11).
func (c *VCARoute) SpawnStats() (fast, slow uint64) { return c.vt.spawnStats() }

// InstallEpoch implements core.Reconfigurer (see versionTable.installEpoch).
func (c *VCARoute) InstallEpoch(ec core.EpochChange) { c.vt.installEpoch(ec) }

// RetireEpoch implements core.Reconfigurer (see versionTable.retireEpoch).
func (c *VCARoute) RetireEpoch(ec core.EpochChange) error { return c.vt.retireEpoch(ec) }

type routeToken struct {
	mu         sync.Mutex
	fp         *footprint
	nodes      []relNode // claims; nodes[i].target is pv[i]
	released   []bool    // by footprint position
	present    []bool    // by vertex index: still in the graph
	counts     []int32   // by vertex index: pending + active executions
	rootActive bool

	// BFS scratch, reused across routeExists/scanRelease calls; guarded
	// by mu like everything else here.
	seen  []bool
	queue []int
}

// Spawn implements rule 1 of VCAbasic over the graph's microprotocols.
// It never blocks, so the context is not consulted.
func (c *VCARoute) Spawn(_ context.Context, spec *core.Spec) (core.Token, error) {
	if spec.Graph() == nil {
		return nil, &core.SpecError{Controller: c.Name(), Reason: "spec carries no routing graph; build it with core.Route"}
	}
	fp, err := c.vt.footprint(spec)
	if err != nil {
		return nil, err
	}
	nv := len(fp.route.handlers)
	t := &routeToken{
		fp:         fp,
		nodes:      make([]relNode, len(fp.slots)),
		released:   make([]bool, len(fp.slots)),
		present:    make([]bool, nv),
		counts:     make([]int32, nv),
		rootActive: true,
		seen:       make([]bool, nv),
	}
	for v := range t.present {
		t.present[v] = true
	}
	if err := c.vt.claim(fp, t.nodes); err != nil {
		return nil, err
	}
	return t, nil
}

// Request implements the admission part of rule 2: the call must follow a
// declared route (or target a declared root when issued by the root
// expression). An admitted call marks the handler as requested — it counts
// as active for rule 4(b) from this moment.
func (c *VCARoute) Request(t core.Token, caller, h *core.Handler) error {
	tok := t.(*routeToken)
	r := tok.fp.route
	if tok.fp.pos(h.MP()) < 0 {
		return undeclared(h, tok.fp.mps)
	}
	v, inGraph := r.hpos[h]
	tok.mu.Lock()
	defer tok.mu.Unlock()
	if !inGraph || !tok.present[v] {
		// The vertex was never declared, or already removed by rule
		// 4(b); a call now would break the release the algorithm
		// performed.
		return &core.NoRouteError{From: nameOf(caller), To: h.String()}
	}
	if caller == nil {
		if !r.isRoot[v] {
			return &core.NoRouteError{From: "", To: h.String()}
		}
	} else {
		src, ok := r.hpos[caller]
		if !ok || !tok.routeExistsLocked(src, v) {
			return &core.NoRouteError{From: caller.String(), To: h.String()}
		}
	}
	tok.counts[v]++
	return nil
}

// routeExistsLocked reports whether a path from src to dst (length ≥ 1)
// exists over the still-present vertices. Callers hold tok.mu.
func (tok *routeToken) routeExistsLocked(src, dst int) bool {
	if !tok.present[src] {
		return false
	}
	r := tok.fp.route
	seen := tok.seen
	for i := range seen {
		seen[i] = false
	}
	queue := append(tok.queue[:0], src)
	for head := 0; head < len(queue); head++ {
		for _, succ := range r.succs[queue[head]] {
			if !tok.present[succ] || seen[succ] {
				continue
			}
			if succ == dst {
				tok.queue = queue[:0]
				return true
			}
			seen[succ] = true
			queue = append(queue, succ)
		}
	}
	tok.queue = queue[:0]
	return false
}

// Enter implements the versioning part of rule 2 (condition (1) of
// VCAbasic). A cancelled wait leaves the Request-time activity count in
// place — conservative for rule 4(b), and Complete force-releases every
// unreleased microprotocol regardless.
func (c *VCARoute) Enter(ctx context.Context, t core.Token, _, h *core.Handler) error {
	tok := t.(*routeToken)
	i := tok.fp.pos(h.MP())
	if i < 0 {
		return undeclared(h, tok.fp.mps)
	}
	if err := tok.fp.states[i].waitAtLeastCtx(ctx, tok.nodes[i].minLv); err != nil {
		return deadline("enter", h, err)
	}
	return nil
}

// Exit implements rule 4: the handler becomes inactive, and any
// microprotocol left with only inactive, unreachable handlers is released.
func (c *VCARoute) Exit(t core.Token, h *core.Handler) {
	tok := t.(*routeToken)
	v, ok := tok.fp.route.hpos[h]
	if !ok {
		return
	}
	tok.mu.Lock()
	tok.counts[v]--
	tok.scanReleaseLocked()
	tok.mu.Unlock()
}

// RootReturned deactivates the virtual ROOT vertex: the root expression
// will issue no more direct calls, so handlers reachable only from ROOT
// become releasable.
func (c *VCARoute) RootReturned(t core.Token) {
	tok := t.(*routeToken)
	tok.mu.Lock()
	tok.rootActive = false
	tok.scanReleaseLocked()
	tok.mu.Unlock()
}

// Complete implements rule 3 (as in VCAbound): upgrade what rule 4(b)
// could not release early — e.g. microprotocols kept reachable by cycles.
func (c *VCARoute) Complete(t core.Token) {
	tok := t.(*routeToken)
	tok.mu.Lock()
	for i := range tok.released {
		if !tok.released[i] {
			tok.released[i] = true
			tok.fp.states[i].requestNode(&tok.nodes[i])
		}
	}
	tok.mu.Unlock()
}

// scanReleaseLocked is rule 4(b): compute the set of handlers that are
// active or reachable from an active handler (including the virtual ROOT)
// over present vertices, then release every unreleased microprotocol none
// of whose present vertices is in that set. Callers hold tok.mu.
func (tok *routeToken) scanReleaseLocked() {
	r := tok.fp.route
	busy := tok.seen
	for i := range busy {
		busy[i] = false
	}
	queue := tok.queue[:0]
	for v := range tok.counts {
		if tok.counts[v] > 0 && tok.present[v] {
			busy[v] = true
			queue = append(queue, v)
		}
	}
	if tok.rootActive {
		for v := range r.isRoot {
			if r.isRoot[v] && tok.present[v] && !busy[v] {
				busy[v] = true
				queue = append(queue, v)
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, succ := range r.succs[queue[head]] {
			if tok.present[succ] && !busy[succ] {
				busy[succ] = true
				queue = append(queue, succ)
			}
		}
	}
	tok.queue = queue[:0]
	for p := range tok.released {
		if tok.released[p] {
			continue
		}
		inUse := false
		for _, v := range r.mpVerts[p] {
			if tok.present[v] && busy[v] {
				inUse = true
				break
			}
		}
		if inUse {
			continue
		}
		for _, v := range r.mpVerts[p] {
			tok.present[v] = false
		}
		tok.released[p] = true
		tok.fp.states[p].requestNode(&tok.nodes[p])
	}
}

func nameOf(h *core.Handler) string {
	if h == nil {
		return ""
	}
	return h.String()
}
