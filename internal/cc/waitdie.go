package cc

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// WaitDie is a representative of the paper's *second* algorithm group —
// "timestamp-ordering algorithms with rollback/recovery" (§1), which the
// paper mentions but does not describe. It schedules handler calls with
// timestamp-ordered locking and undoes computations instead of delaying
// them:
//
//   - Every computation takes a timestamp at its first spawn (kept across
//     retries, so a repeatedly aborted computation eventually becomes the
//     oldest and must win — no starvation).
//   - The first handler call on a microprotocol locks it until the
//     computation completes, taking a snapshot of its state (the
//     microprotocol must provide a core.Snapshotter).
//   - Conflicts resolve by the classic wait–die rule: an older computation
//     waits for a younger lock holder; a younger one "dies" — it aborts
//     with core.ErrComputationAborted, its snapshots are restored, its
//     locks released, and Isolated re-executes it.
//
// Waits only ever point from older to younger computations, so the
// wait-for graph is acyclic: no deadlocks. Locks are held to completion,
// so no computation ever observes state that is later rolled back — no
// dirty reads, no cascading aborts, and the committed execution is
// conflict-serializable (equivalently: the isolation property holds for
// the effects that survive).
//
// The price — and the reason the paper's own focus is the versioning
// group, whose computations are "never aborted" — is that handlers must
// tolerate re-execution: all their effects must live in snapshottable
// microprotocol state. A handler that sends a network message cannot be
// rolled back, so protocol stacks like internal/gc are out of scope for
// this controller.
type WaitDie struct {
	mu      sync.Mutex
	note    *notifier
	nextTS  uint64
	locks   map[*core.Microprotocol]*wdToken
	waiters map[*core.Microprotocol]map[*wdToken]bool
	aborts  uint64
	backoff bool // real time.Sleep backoff between retries (off under sched)
}

// NewWaitDie creates the wait–die rollback controller.
func NewWaitDie() *WaitDie {
	return &WaitDie{
		note:    newNotifier(),
		locks:   make(map[*core.Microprotocol]*wdToken),
		waiters: make(map[*core.Microprotocol]map[*wdToken]bool),
		backoff: true,
	}
}

// Name implements core.Controller.
func (c *WaitDie) Name() string { return "wait-die" }

// SetBlocker implements sched.Schedulable. It also disables the
// wall-clock retry backoff: under a virtual scheduler, sleeping conveys
// no ordering (the retry loop's fairness comes from the strategy), and
// real delays would only slow exploration down.
func (c *WaitDie) SetBlocker(b sched.Blocker) {
	c.mu.Lock()
	c.note.blk = b
	c.backoff = false
	c.mu.Unlock()
}

// Aborts reports the total number of aborts so far (for the E8
// experiment).
func (c *WaitDie) Aborts() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborts
}

// wdToken keeps the declared set as the spec's ID-sorted slice; held
// locks and snapshots live in slices parallel to it.
type wdToken struct {
	ts      uint64
	attempt int
	mps     []*core.Microprotocol // Spec.MPs(): sorted by ID, immutable
	held    []bool                // parallel to mps; guarded by WaitDie.mu
	snapped []bool                // parallel to mps; guarded by WaitDie.mu
	snaps   []any                 // parallel to mps; guarded by WaitDie.mu
	aborted bool                  // guarded by WaitDie.mu
	diedOn  *core.Microprotocol   // lock whose holder killed us; guarded by WaitDie.mu
}

// pos returns mp's position in the declared set, or -1.
func (t *wdToken) pos(mp *core.Microprotocol) int {
	for i, m := range t.mps {
		if m == mp {
			return i
		}
	}
	return -1
}

// Spawn validates that every declared microprotocol is snapshottable and
// assigns the computation's timestamp. It never blocks, so the context is
// not consulted.
func (c *WaitDie) Spawn(_ context.Context, spec *core.Spec) (core.Token, error) {
	mps := spec.MPs()
	for _, mp := range mps {
		if mp.Snapshotter() == nil {
			return nil, &core.SpecError{
				Controller: c.Name(),
				Reason:     "microprotocol " + mp.Name() + " has no Snapshotter; rollback scheduling needs one",
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextTS++
	return &wdToken{
		ts:      c.nextTS,
		mps:     mps,
		held:    make([]bool, len(mps)),
		snapped: make([]bool, len(mps)),
		snaps:   make([]any, len(mps)),
	}, nil
}

// Request validates the declared set.
func (c *WaitDie) Request(t core.Token, _, h *core.Handler) error {
	tok := t.(*wdToken)
	if tok.pos(h.MP()) < 0 {
		return undeclared(h, tok.mps)
	}
	return nil
}

// Enter acquires the microprotocol's lock under the wait–die rule,
// snapshotting on first acquisition. Releases hand the lock directly to
// the oldest waiter (see grantNextLocked), so a repeatedly dying young
// computation cannot livelock an older one by re-grabbing the lock before
// the waiter wakes.
//
// A cancelled wait returns a *DeadlineError; if a release granted the
// lock while the thread was parked, the grant is passed on so the lock is
// not stranded. Locks the computation already holds stay held until
// Complete, so — as always under wait–die — no other computation observes
// its partial effects before they commit.
func (c *WaitDie) Enter(ctx context.Context, t core.Token, _, h *core.Handler) error {
	tok := t.(*wdToken)
	mp := h.MP()
	i := tok.pos(mp)
	if i < 0 {
		return undeclared(h, tok.mps)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		holder := c.locks[mp]
		if holder == tok {
			// Reentrant, or granted by a release while we waited. If a
			// sibling thread aborted us in the meantime, pass the lock
			// on rather than stranding it.
			if tok.aborted {
				tok.held[i] = false
				c.grantNextLocked(mp)
				return core.ErrComputationAborted
			}
			return nil
		}
		if tok.aborted {
			c.dropWaiterLocked(mp, tok)
			return core.ErrComputationAborted
		}
		switch {
		case holder == nil:
			c.dropWaiterLocked(mp, tok)
			c.acquireLocked(mp, tok)
			return nil
		case tok.ts < holder.ts:
			// Older waits for younger.
			w := c.waiters[mp]
			if w == nil {
				w = make(map[*wdToken]bool)
				c.waiters[mp] = w
			}
			w[tok] = true
			if err := c.note.waitLockedCtx(&c.mu, ctx); err != nil {
				if c.locks[mp] == tok {
					// A release granted us the lock while we were parked;
					// hand it on rather than strand it.
					tok.held[i] = false
					c.grantNextLocked(mp)
				} else {
					c.dropWaiterLocked(mp, tok)
				}
				return deadline("enter", h, err)
			}
		default:
			// Younger dies: roll back and retry with the same ts.
			tok.aborted = true
			tok.diedOn = mp
			c.aborts++
			return core.ErrComputationAborted
		}
	}
}

// acquireLocked hands mp to tok, snapshotting on first touch. Callers
// hold c.mu.
func (c *WaitDie) acquireLocked(mp *core.Microprotocol, tok *wdToken) {
	c.locks[mp] = tok
	i := tok.pos(mp)
	tok.held[i] = true
	if !tok.snapped[i] {
		tok.snapped[i] = true
		tok.snaps[i] = mp.Snapshotter().Snapshot()
	}
}

func (c *WaitDie) dropWaiterLocked(mp *core.Microprotocol, tok *wdToken) {
	if w := c.waiters[mp]; w != nil {
		delete(w, tok)
	}
}

// grantNextLocked frees mp and hands it to the oldest live waiter, if
// any. Callers hold c.mu.
func (c *WaitDie) grantNextLocked(mp *core.Microprotocol) {
	delete(c.locks, mp)
	var oldest *wdToken
	for w := range c.waiters[mp] {
		if !w.aborted && (oldest == nil || w.ts < oldest.ts) {
			oldest = w
		}
	}
	if oldest != nil {
		delete(c.waiters[mp], oldest)
		c.acquireLocked(mp, oldest)
	}
	c.note.broadcastLocked()
}

// Exit implements core.Controller; locks are held to completion.
func (c *WaitDie) Exit(core.Token, *core.Handler) {}

// RootReturned implements core.Controller (no-op).
func (c *WaitDie) RootReturned(core.Token) {}

// Complete releases the computation's locks; its effects commit.
func (c *WaitDie) Complete(t core.Token) {
	tok := t.(*wdToken)
	c.mu.Lock()
	c.releaseLocked(tok)
	c.mu.Unlock()
}

// PrepareRetry implements core.Restorer: restore every touched
// microprotocol to its pre-first-touch snapshot (nobody else saw the
// intermediate state — the lock was held throughout), release the locks,
// and hand back a fresh attempt with the original timestamp. A growing
// backoff keeps a tight retry loop from livelocking an older computation
// that is slower to re-acquire the contested lock.
func (c *WaitDie) PrepareRetry(t core.Token) (core.Token, bool) {
	tok := t.(*wdToken)
	c.mu.Lock()
	for i, mp := range tok.mps {
		if tok.snapped[i] {
			mp.Snapshotter().Restore(tok.snaps[i])
		}
	}
	c.releaseLocked(tok)
	useBackoff := c.backoff
	if !useBackoff {
		// Virtual-scheduler analog of the backoff below: an unthrottled
		// die/retry loop never blocks, so an adversarial schedule could
		// spin it past any step bound — a livelock the wall-clock backoff
		// prevents in production. Park until the killing conflict clears
		// (every lock release broadcasts). The retrying computation holds
		// no locks here, so it cannot extend any wait cycle.
		for {
			h := c.locks[tok.diedOn]
			if h == nil || h.ts >= tok.ts {
				break
			}
			c.note.waitLocked(&c.mu)
		}
	}
	c.mu.Unlock()
	if useBackoff {
		backoff := time.Duration(tok.attempt+1) * 200 * time.Microsecond
		if backoff > 10*time.Millisecond {
			backoff = 10 * time.Millisecond
		}
		time.Sleep(backoff) //samoa:ignore blocking — production-only backoff; under a scheduler useBackoff is false and the park above is the seam
	}
	return &wdToken{
		ts:      tok.ts,
		attempt: tok.attempt + 1,
		mps:     tok.mps,
		held:    make([]bool, len(tok.mps)),
		snapped: make([]bool, len(tok.mps)),
		snaps:   make([]any, len(tok.mps)),
	}, true
}

// releaseLocked drops tok's locks, handing each to its oldest waiter.
// Callers hold c.mu.
func (c *WaitDie) releaseLocked(tok *wdToken) {
	for i, mp := range tok.mps {
		if tok.held[i] && c.locks[mp] == tok {
			c.grantNextLocked(mp)
		}
		tok.held[i] = false
	}
	c.note.broadcastLocked()
}
