package cc

import (
	"sync"

	"repro/internal/sched"
)

// notifier replaces sync.Cond in controllers whose blocking must be
// visible to a deterministic scheduler. Semantics match the cond idiom
// the controllers used before:
//
//	n.waitLocked(&mu)   ≈ cond.Wait()   — unlocks mu, parks, relocks
//	n.broadcastLocked() ≈ cond.Broadcast() (call with mu held)
//
// Each wait parks on a fresh one-shot Waiter from the Blocker, so under
// sched.DefaultBlocker this costs the same pooled channel operations as
// before, while under a *sched.Scheduler every wait is a virtual park
// the exploration strategies can order.
type notifier struct {
	blk sched.Blocker
	ws  []sched.Waiter
}

func newNotifier() *notifier { return &notifier{blk: sched.DefaultBlocker()} }

// waitLocked atomically releases mu and parks until the next broadcast,
// then reacquires mu. Spurious wakeups do not occur, but callers keep
// their predicate loops (another thread can win the race after wakeup).
func (n *notifier) waitLocked(mu *sync.Mutex) {
	w := n.blk.NewWaiter()
	n.ws = append(n.ws, w)
	mu.Unlock()
	w.Park()
	mu.Lock()
}

// broadcastLocked wakes every parked thread. The controller's mutex must
// be held, which orders the wake set against concurrent waitLocked calls.
func (n *notifier) broadcastLocked() {
	for i, w := range n.ws {
		w.Wake()
		n.ws[i] = nil
	}
	n.ws = n.ws[:0]
}
