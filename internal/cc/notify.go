package cc

import (
	"context"
	"sync"

	"repro/internal/sched"
)

// notifier replaces sync.Cond in controllers whose blocking must be
// visible to a deterministic scheduler. Semantics match the cond idiom
// the controllers used before:
//
//	n.waitLocked(&mu)   ≈ cond.Wait()   — unlocks mu, parks, relocks
//	n.broadcastLocked() ≈ cond.Broadcast() (call with mu held)
//
// Each wait parks on a fresh one-shot Waiter from the Blocker, so under
// sched.DefaultBlocker this costs the same pooled channel operations as
// before, while under a *sched.Scheduler every wait is a virtual park
// the exploration strategies can order.
//
// waitLockedCtx additionally bounds the wait by a context, so an
// admission loop can abandon cleanly instead of blocking forever behind a
// stuck computation (fault containment, DESIGN.md §10).
type notifier struct {
	blk sched.Blocker
	ws  []notifyEntry
}

// notifyEntry is one parked thread; c is non-nil only for cancellable
// waits. Fields of notifyCancel are guarded by the controller mutex
// passed to waitLocked/waitLockedCtx.
type notifyEntry struct {
	w sched.Waiter
	c *notifyCancel
}

type notifyCancel struct {
	done     bool // left the wait set (broadcast or cancellation)
	canceled bool // left because the context expired
}

func newNotifier() *notifier { return &notifier{blk: sched.DefaultBlocker()} }

// waitLocked atomically releases mu and parks until the next broadcast,
// then reacquires mu. Spurious wakeups do not occur, but callers keep
// their predicate loops (another thread can win the race after wakeup).
func (n *notifier) waitLocked(mu *sync.Mutex) {
	w := n.blk.NewWaiter()
	n.ws = append(n.ws, notifyEntry{w: w})
	mu.Unlock()
	w.Park()
	mu.Lock()
}

// waitLockedCtx is waitLocked bounded by a context: it returns nil after
// a broadcast and ctx.Err() when the context expires first. Either way mu
// is held again on return. Unbounded contexts take the exact waitLocked
// path (no watchdog, no nondeterminism under the explorer).
func (n *notifier) waitLockedCtx(mu *sync.Mutex, ctx context.Context) error {
	if ctx == nil || ctx.Done() == nil {
		n.waitLocked(mu)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := n.blk.NewWaiter()
	c := &notifyCancel{}
	n.ws = append(n.ws, notifyEntry{w: w, c: c})
	mu.Unlock()

	stop := make(chan struct{})
	//samoa:ignore blocking — cancellation watchdog; the park below stays on the Blocker seam, and unbounded contexts never reach this path
	go func() {
		select { //samoa:ignore blocking — watchdog body: waits on ctx expiry, a seam the Blocker cannot express; unbounded contexts never start it
		case <-ctx.Done():
			mu.Lock()
			if !c.done {
				for j := range n.ws {
					if n.ws[j].c == c {
						copy(n.ws[j:], n.ws[j+1:])
						n.ws[len(n.ws)-1] = notifyEntry{}
						n.ws = n.ws[:len(n.ws)-1]
						break
					}
				}
				c.done = true
				c.canceled = true
				w.Wake()
			}
			mu.Unlock()
		case <-stop: //samoa:ignore blocking — watchdog shutdown signal from the waking thread
		}
	}()
	w.Park()
	close(stop)
	mu.Lock()
	if c.canceled {
		return ctx.Err()
	}
	return nil
}

// signalLocked wakes the longest-parked thread (FIFO) and reports
// whether there was one. Unlike broadcastLocked, a true return is a
// transfer: exactly the woken thread left the wait set, so the caller
// can hand it a claim directly — threads that never park cannot barge in
// ahead of it. The controller's mutex must be held.
func (n *notifier) signalLocked() bool {
	if len(n.ws) == 0 {
		return false
	}
	e := n.ws[0]
	copy(n.ws, n.ws[1:])
	n.ws[len(n.ws)-1] = notifyEntry{}
	n.ws = n.ws[:len(n.ws)-1]
	if e.c != nil {
		e.c.done = true // beat the cancellation watchdog to the entry
	}
	e.w.Wake()
	return true
}

// broadcastLocked wakes every parked thread. The controller's mutex must
// be held, which orders the wake set against concurrent waitLocked calls.
func (n *notifier) broadcastLocked() {
	for i, e := range n.ws {
		if e.c != nil {
			e.c.done = true // beat the cancellation watchdog to the entry
		}
		e.w.Wake()
		n.ws[i] = notifyEntry{}
	}
	n.ws = n.ws[:0]
}
