package gc

import (
	"testing"

	"repro/internal/simnet"
	"repro/internal/wire"
)

// FuzzDecodeMessages feeds arbitrary bytes to every gc decoder: none may
// panic; errors must surface through the sticky reader.
func FuzzDecodeMessages(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeCastFrame(&CastMsg{ID: MsgID{Origin: 1, Seq: 2}, Kind: castApp, Data: []byte("x")}))
	f.Add(encodeConsFrame(&consMsg{Type: cAccept, Inst: 1, Round: 2, HasValue: true,
		Value: []CastMsg{{ID: MsgID{Origin: 1, Seq: 1}, Kind: castViewChg, Op: '+', Site: 3}}}))
	f.Add(encodeSyncFrame(7, []byte("snap")))
	f.Add(encodeData(4, 9, []byte("inner")))
	f.Add(encodeAck(4, 9))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = decodeCastMsg(wire.NewReader(data))
		_ = decodeConsMsg(wire.NewReader(data))
	})
}

// FuzzSiteSurvivesGarbageDatagrams injects arbitrary datagrams into a
// passive site: the stack must neither panic nor wedge; decode failures
// surface via Errs, and valid frames behave normally.
func FuzzSiteSurvivesGarbageDatagrams(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{dgData})
	f.Add([]byte{dgAck, 1, 2})
	f.Add([]byte{dgBeat})
	f.Add(encodeData(0, 1, encodeCastFrame(&CastMsg{ID: MsgID{Origin: 0, Seq: 1}, Kind: castRApp, Data: []byte("ok")})))
	f.Fuzz(func(t *testing.T, payload []byte) {
		net := simnet.New(simnet.Config{Nodes: 2, Seed: 1})
		defer net.Close()
		s := NewSite(Config{
			Net: net, ID: 1, InitialView: NewView(0, 1),
			FDInterval: -1, Passive: true,
		})
		s.Start()
		defer s.Stop()
		_ = s.InjectDatagram(simnet.Datagram{From: 0, To: 1, Payload: payload})
	})
}
