package gc_test

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/simnet"
)

// TestE6ViewChangeRace reproduces the paper's §3 Problem end to end.
//
// Setup: sites A=0 (origin, crashed mid-broadcast), B=1 (relay), C=2 (the
// freshly joined site). B starts with view {A,B}; C already knows the new
// view {A,B,C}. A's broadcast of m reached only B before A crashed, so C's
// only hope is B's rebroadcast.
//
// The race: B processes the view change [+C] concurrently with m. RelCast
// installs the new view first (so the rebroadcast loop targets C), but
// RelComm still holds the old view — and silently discards the send to C.
// A test hook holds B exactly in that window.
//
// Under the Cactus-model None controller the two computations interleave
// in the window and m is lost forever (RelCast already marked it seen;
// RelComm never buffered it). Under every isolating controller the m
// computation cannot interleave with the view-change computation, so C
// receives m — the paper's Solution by Isolation.
func TestE6ViewChangeRace(t *testing.T) {
	type result struct {
		delivered bool
		dropped   uint64
	}
	run := func(t *testing.T, ctrl core.Controller, kind gc.SpecKind) result {
		t.Helper()
		net := simnet.New(simnet.Config{Nodes: 3, Seed: 61})
		defer net.Close()

		inWindow := make(chan struct{}, 1)
		release := make(chan struct{})
		var b, c *gc.Site

		cDelivered := make(chan struct{}, 4)
		c = gc.NewSite(gc.Config{
			Net: net, ID: 2, InitialView: gc.NewView(0, 1, 2), FDInterval: -1,
			RDeliver: func(simnet.NodeID, []byte) { cDelivered <- struct{}{} },
		})
		c.Start()
		defer c.Stop()

		b = gc.NewSite(gc.Config{
			Net: net, ID: 1, InitialView: gc.NewView(0, 1), FDInterval: -1,
			Controller: ctrl, SpecKind: kind,
			Passive: true, // only the two orchestrated computations run on B
			AfterRelCastView: func() {
				select {
				case inWindow <- struct{}{}:
				default:
				}
				<-release
			},
		})
		b.Start()
		defer b.Stop()

		// A's broadcast of m as it arrives at B: a RelComm data datagram
		// from node 0 carrying a RelCast frame. A itself is gone.
		m := gc.BuildCastDatagram(0, 1, gc.MsgID{Origin: 0, Seq: 1}, []byte("m"))
		net.Crash(0)

		// B processes the view change [+C]; the hook parks it in the
		// window after RelCast updated but before RelComm did.
		viewDone := make(chan error, 1)
		go func() { viewDone <- b.InjectViewChange('+', 2) }()
		<-inWindow

		// B processes m concurrently. Under None it runs inside the
		// window; under an isolating controller it blocks until the
		// view-change computation completes.
		mDone := make(chan error, 1)
		go func() { mDone <- b.InjectDatagram(m) }()
		if _, isNone := ctrl.(*cc.None); isNone {
			<-mDone // interleaves freely: finishes inside the window
		} else {
			time.Sleep(30 * time.Millisecond) // let it park on the controller
		}
		close(release)
		if err := <-viewDone; err != nil {
			t.Fatal(err)
		}
		if _, isNone := ctrl.(*cc.None); !isNone {
			if err := <-mDone; err != nil {
				t.Fatal(err)
			}
		}

		// Give C's pump a moment to drain whatever B actually sent.
		select {
		case <-cDelivered:
			return result{delivered: true, dropped: b.DroppedStale()}
		case <-time.After(300 * time.Millisecond):
			return result{delivered: false, dropped: b.DroppedStale()}
		}
	}

	t.Run("none-loses-message", func(t *testing.T) {
		res := run(t, cc.NewNone(), gc.SpecBasic)
		if res.delivered {
			t.Fatal("under None the §3 race must lose the message")
		}
		if res.dropped == 0 {
			t.Fatal("RelComm should have dropped the send to the joiner (stale view)")
		}
	})
	t.Run("vca-basic-delivers", func(t *testing.T) {
		res := run(t, cc.NewVCABasic(), gc.SpecBasic)
		if !res.delivered {
			t.Fatalf("VCAbasic must prevent the race (dropped=%d)", res.dropped)
		}
	})
	t.Run("vca-bound-delivers", func(t *testing.T) {
		res := run(t, cc.NewVCABound(), gc.SpecBound)
		if !res.delivered {
			t.Fatalf("VCAbound must prevent the race (dropped=%d)", res.dropped)
		}
	})
	t.Run("vca-route-delivers", func(t *testing.T) {
		res := run(t, cc.NewVCARoute(), gc.SpecRoute)
		if !res.delivered {
			t.Fatalf("VCAroute must prevent the race (dropped=%d)", res.dropped)
		}
	})
	t.Run("serial-delivers", func(t *testing.T) {
		res := run(t, cc.NewSerial(), gc.SpecBasic)
		if !res.delivered {
			t.Fatalf("Serial must prevent the race (dropped=%d)", res.dropped)
		}
	})
}
