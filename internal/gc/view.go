package gc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/transport"
)

// View is a group view: the current set of sites considered non-faulty
// (paper §3). Views are immutable; operations return new views.
type View struct {
	members []transport.NodeID // sorted
}

// NewView builds a view from the given members.
func NewView(members ...transport.NodeID) *View {
	v := &View{members: append([]transport.NodeID(nil), members...)}
	sort.Slice(v.members, func(i, j int) bool { return v.members[i] < v.members[j] })
	return v
}

// Members returns the members in ascending order. The slice must not be
// modified.
func (v *View) Members() []transport.NodeID { return v.members }

// Size reports the number of members.
func (v *View) Size() int { return len(v.members) }

// Contains reports membership of the site.
func (v *View) Contains(id transport.NodeID) bool {
	i := sort.Search(len(v.members), func(i int) bool { return v.members[i] >= id })
	return i < len(v.members) && v.members[i] == id
}

// Add returns a view with the site added (no-op if present).
func (v *View) Add(id transport.NodeID) *View {
	if v.Contains(id) {
		return v
	}
	return NewView(append(append([]transport.NodeID(nil), v.members...), id)...)
}

// Remove returns a view with the site removed (no-op if absent).
func (v *View) Remove(id transport.NodeID) *View {
	if !v.Contains(id) {
		return v
	}
	out := make([]transport.NodeID, 0, len(v.members)-1)
	for _, m := range v.members {
		if m != id {
			out = append(out, m)
		}
	}
	return &View{members: out}
}

// Apply performs the paper's "view op site" with op ∈ {+,-}.
func (v *View) Apply(op byte, id transport.NodeID) *View {
	if op == '-' {
		return v.Remove(id)
	}
	return v.Add(id)
}

// Quorum reports the majority size of the view.
func (v *View) Quorum() int { return len(v.members)/2 + 1 }

// Coordinator returns the rotating coordinator for a consensus instance
// and round (paper: the distributed consensus microprotocol).
func (v *View) Coordinator(inst uint64, round uint32) transport.NodeID {
	n := uint64(len(v.members))
	return v.members[(inst+uint64(round))%n]
}

// String implements fmt.Stringer.
func (v *View) String() string {
	parts := make([]string, len(v.members))
	for i, m := range v.members {
		parts[i] = fmt.Sprintf("%d", m)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
