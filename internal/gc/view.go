package gc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/transport"
)

// View is a group view: the current set of sites considered non-faulty
// (paper §3), plus the protocol version the group runs. Views are
// immutable; operations return new views.
type View struct {
	members []transport.NodeID // sorted
	proto   uint16             // 0: baseline (no upgrade proposed yet)
}

// NewView builds a view from the given members.
func NewView(members ...transport.NodeID) *View {
	v := &View{members: append([]transport.NodeID(nil), members...)}
	sort.Slice(v.members, func(i, j int) bool { return v.members[i] < v.members[j] })
	return v
}

// Proto reports the group's protocol version: 0 until an upgrade is
// delivered, then the highest version any '^' operation carried.
func (v *View) Proto() uint16 { return v.proto }

// WithProto returns a view running the given protocol version. Like the
// membership operations it is delivered through ABcast, so every member
// adopts the version at the same total-order point.
func (v *View) WithProto(p uint16) *View {
	if v.proto == p {
		return v
	}
	return &View{members: v.members, proto: p}
}

// Members returns the members in ascending order. The slice must not be
// modified.
func (v *View) Members() []transport.NodeID { return v.members }

// Size reports the number of members.
func (v *View) Size() int { return len(v.members) }

// Contains reports membership of the site.
func (v *View) Contains(id transport.NodeID) bool {
	i := sort.Search(len(v.members), func(i int) bool { return v.members[i] >= id })
	return i < len(v.members) && v.members[i] == id
}

// Add returns a view with the site added (no-op if present).
func (v *View) Add(id transport.NodeID) *View {
	if v.Contains(id) {
		return v
	}
	out := NewView(append(append([]transport.NodeID(nil), v.members...), id)...)
	out.proto = v.proto
	return out
}

// Remove returns a view with the site removed (no-op if absent).
func (v *View) Remove(id transport.NodeID) *View {
	if !v.Contains(id) {
		return v
	}
	out := make([]transport.NodeID, 0, len(v.members)-1)
	for _, m := range v.members {
		if m != id {
			out = append(out, m)
		}
	}
	return &View{members: out, proto: v.proto}
}

// Apply performs the paper's "view op site" with op ∈ {+,-}, extended
// with '^': a protocol upgrade, whose operand is the version number
// rather than a site. Upgrades never downgrade — a stale '^' reordered
// behind a newer one is a no-op.
func (v *View) Apply(op byte, id transport.NodeID) *View {
	switch op {
	case '-':
		return v.Remove(id)
	case '^':
		if p := uint16(id); p > v.proto {
			return v.WithProto(p)
		}
		return v
	}
	return v.Add(id)
}

// Quorum reports the majority size of the view.
func (v *View) Quorum() int { return len(v.members)/2 + 1 }

// Coordinator returns the rotating coordinator for a consensus instance
// and round (paper: the distributed consensus microprotocol).
func (v *View) Coordinator(inst uint64, round uint32) transport.NodeID {
	n := uint64(len(v.members))
	return v.members[(inst+uint64(round))%n]
}

// String implements fmt.Stringer.
func (v *View) String() string {
	parts := make([]string, len(v.members))
	for i, m := range v.members {
		parts[i] = fmt.Sprintf("%d", m)
	}
	out := "{" + strings.Join(parts, ",") + "}"
	if v.proto != 0 {
		out += fmt.Sprintf("@v%d", v.proto)
	}
	return out
}
