package gc_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/simnet"
)

// appState is a toy replicated application for state-transfer tests: an
// append-only log fed by deliveries, snapshot = the log serialised.
type appState struct {
	mu        sync.Mutex
	log       []string
	installed int // snapshots installed
}

func (a *appState) deliver(data []byte) {
	a.mu.Lock()
	a.log = append(a.log, string(data))
	a.mu.Unlock()
}

func (a *appState) snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return []byte(strings.Join(a.log, "\n"))
}

func (a *appState) install(snap []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.log = nil
	if len(snap) > 0 {
		a.log = strings.Split(string(snap), "\n")
	}
	a.installed++
}

func (a *appState) snapshotLog() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.log...)
}

func (a *appState) installs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.installed
}

// TestJoinStateTransfer: a joiner receives an application snapshot from
// an established member alongside the sync point and converges on the
// full state — including history it never delivered — then applies
// post-join deliveries on top.
func TestJoinStateTransfer(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 300 * time.Microsecond, Seed: 61})
	apps := map[simnet.NodeID]*appState{0: {}, 1: {}, 2: {}}
	withApp := func(id simnet.NodeID) func(*gc.Config) {
		return func(cfg *gc.Config) {
			prev := cfg.Deliver
			cfg.Deliver = func(from simnet.NodeID, data []byte) {
				apps[id].deliver(data)
				prev(from, data)
			}
			cfg.Snapshot = apps[id].snapshot
			cfg.InstallSnapshot = apps[id].install
		}
	}
	established := gc.NewView(0, 1)
	c.addSite(0, established, withApp(0))
	c.addSite(1, established, withApp(1))

	// Pre-join history that must reach the joiner only via the snapshot.
	for _, m := range []string{"pre1", "pre2"} {
		if err := c.sites[0].ABcast([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	c.waitDeliveredAt(0, 2)
	c.waitDeliveredAt(1, 2)

	c.addSite(2, gc.NewView(0, 1, 2), withApp(2))
	if err := c.sites[0].Join(2); err != nil {
		t.Fatal(err)
	}
	c.waitFor(10*time.Second, "established sites to install {0,1,2}", func() bool {
		return c.sites[0].View().Contains(2) && c.sites[1].View().Contains(2)
	})
	c.waitFor(10*time.Second, "joiner to install a snapshot", func() bool {
		return apps[2].installs() >= 1
	})

	// The snapshot carried the full pre-join history in the established
	// members' delivery order. (ABcast totally orders deliveries but does
	// not promise sender FIFO — consensus may decide a pool holding only
	// the later message first — so compare against site 0's log, not the
	// broadcast order.)
	snap := apps[2].snapshotLog()
	if len(snap) < 2 || !contains(snap, "pre1") || !contains(snap, "pre2") {
		t.Fatalf("joiner state after install = %v, want both pre1 and pre2", snap)
	}
	if got, want := strings.Join(snap[:2], " "), strings.Join(apps[0].snapshotLog()[:2], " "); got != want {
		t.Fatalf("joiner installed order %q, established member delivered %q", got, want)
	}
	// Pre-join history arrived via install, not via delivery.
	for _, m := range c.adeliveries(2) {
		if m == "pre1" || m == "pre2" {
			t.Fatalf("joiner delivered pre-join message %q instead of installing it", m)
		}
	}

	// Post-join deliveries apply on top of the installed snapshot.
	if err := c.sites[1].ABcast([]byte("post")); err != nil {
		t.Fatal(err)
	}
	c.waitFor(10*time.Second, "joiner to apply post-join delivery", func() bool {
		log := apps[2].snapshotLog()
		return len(log) >= 3 && log[len(log)-1] == "post"
	})
	// All three applications converge on the same log (sampled fresh each
	// poll: site 0 may deliver "post" after the joiner does).
	c.waitFor(10*time.Second, "app states to converge", func() bool {
		want := strings.Join(apps[0].snapshotLog(), "\n")
		return strings.HasSuffix(want, "post") &&
			strings.Join(apps[1].snapshotLog(), "\n") == want &&
			strings.Join(apps[2].snapshotLog(), "\n") == want
	})
}

// TestPumpBackoffDuringOutage: while a site's transport node is crashed,
// its receive pump must back off instead of hot-polling. A ~400ms outage
// costs O(log) retries with exponential backoff, versus ~400 with the
// old fixed 1ms sleep.
func TestPumpBackoffDuringOutage(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 2, MinDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond, Seed: 71})
	view := gc.NewView(0, 1)
	c.addSite(0, view, nil)
	c.addSite(1, view, nil)
	if err := c.sites[0].ABcast([]byte("before")); err != nil {
		t.Fatal(err)
	}
	c.waitDeliveredAt(0, 1)
	c.waitDeliveredAt(1, 1)

	base := c.sites[1].PumpRetries()
	c.net.Crash(1)
	time.Sleep(400 * time.Millisecond)
	c.net.Restart(1)

	retries := c.sites[1].PumpRetries() - base
	if retries == 0 {
		t.Fatal("pump never observed the outage")
	}
	if retries > 40 {
		t.Fatalf("pump retried %d times in 400ms; backoff is not engaging", retries)
	}
	// The site still works after the transport node restarts: sender 0's
	// retransmissions refill the new incarnation's inbox.
	if err := c.sites[0].ABcast([]byte("after")); err != nil {
		t.Fatal(err)
	}
	c.waitFor(15*time.Second, "delivery after restart", func() bool {
		return contains(c.adeliveries(0), "after") && contains(c.adeliveries(1), "after")
	})
}
