package gc

import (
	"fmt"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// abHarness drives one ABcast microprotocol in isolation, capturing its
// proposals, total-order deliveries, Bcast requests, and sync sends.
type abHarness struct {
	s         *core.Stack
	a         *ABcast
	ev        *events
	spec      *core.Spec
	proposals []proposeReq
	adeliv    []string
	bcasts    []*CastMsg
	syncSent  []rcSendReq
	snapped   int    // Snapshot hook invocations
	installed []byte // last InstallSnapshot payload
	capture   *core.Microprotocol
}

// snapshot and install are the harness's application state-transfer
// hooks: snapshot reflects the deliveries so far.
func (h *abHarness) snapshot() []byte {
	h.snapped++
	return []byte(fmt.Sprintf("snap-%d", len(h.adeliv)))
}

func (h *abHarness) install(b []byte) { h.installed = b }

func newABHarness(t *testing.T, batchMax int) *abHarness {
	t.Helper()
	h := &abHarness{ev: newEvents()}
	h.s = core.NewStack(cc.NewVCABasic())
	h.a = newABcast(0, batchMax, h.ev, h.snapshot, h.install)
	capture := core.NewMicroprotocol("capture")
	hProp := capture.AddHandler("propose", func(_ *core.Context, msg core.Message) error {
		h.proposals = append(h.proposals, msg.(proposeReq))
		return nil
	})
	hDeliv := capture.AddHandler("adeliver", func(_ *core.Context, msg core.Message) error {
		h.adeliv = append(h.adeliv, string(msg.(CastMsg).Data))
		return nil
	})
	hBcast := capture.AddHandler("bcast", func(_ *core.Context, msg core.Message) error {
		h.bcasts = append(h.bcasts, msg.(*CastMsg))
		return nil
	})
	hSend := capture.AddHandler("send", func(_ *core.Context, msg core.Message) error {
		h.syncSent = append(h.syncSent, msg.(rcSendReq))
		return nil
	})
	h.s.Register(h.a.mp, capture)
	h.s.Bind(h.ev.ProposeEv, hProp)
	h.s.Bind(h.ev.ADeliver, hDeliv)
	h.s.Bind(h.ev.Bcast, hBcast)
	h.s.Bind(h.ev.SendOut, hSend)
	h.s.Bind(h.ev.ABcastEv, h.a.hABcast)
	h.s.Bind(h.ev.DeliverOut, h.a.hRecv)
	h.s.Bind(h.ev.Decide, h.a.hOnDecide)
	h.s.Bind(h.ev.FromRComm, h.a.hSync)
	h.s.Bind(h.ev.SyncReq, h.a.hSendSync)
	h.s.Bind(h.ev.PeerReset, h.a.hPeerReset)
	h.capture = capture
	h.spec = core.Access(h.a.mp, capture)
	return h
}

func cm(origin simnet.NodeID, seq uint64, data string) CastMsg {
	return CastMsg{ID: MsgID{Origin: origin, Seq: seq}, Kind: castApp, Data: []byte(data)}
}

func (h *abHarness) pool(t *testing.T, m CastMsg) {
	t.Helper()
	if err := h.s.External(h.spec, h.ev.DeliverOut, m); err != nil {
		t.Fatal(err)
	}
}

func (h *abHarness) decide(t *testing.T, inst uint64, batch ...CastMsg) {
	t.Helper()
	if err := h.s.External(h.spec, h.ev.Decide, decision{inst: inst, value: batch}); err != nil {
		t.Fatal(err)
	}
}

func TestABcastProposesOncePerInstance(t *testing.T) {
	h := newABHarness(t, 64)
	h.pool(t, cm(1, 1, "a"))
	if len(h.proposals) != 1 || h.proposals[0].inst != 0 {
		t.Fatalf("proposals = %+v", h.proposals)
	}
	// More pool arrivals while instance 0 is open: no second proposal.
	h.pool(t, cm(1, 2, "b"))
	h.pool(t, cm(2, 1, "c"))
	if len(h.proposals) != 1 {
		t.Fatalf("re-proposed for an open instance: %+v", h.proposals)
	}
	// Deciding instance 0 re-proposes the remaining pool for instance 1.
	h.decide(t, 0, cm(1, 1, "a"))
	if len(h.proposals) != 2 || h.proposals[1].inst != 1 || len(h.proposals[1].value) != 2 {
		t.Fatalf("proposals = %+v", h.proposals)
	}
}

func TestABcastDeliversBatchesInIDOrder(t *testing.T) {
	h := newABHarness(t, 64)
	h.decide(t, 0, cm(2, 1, "z"), cm(1, 1, "a"), cm(1, 2, "b"))
	want := []string{"a", "b", "z"} // (1,1) < (1,2) < (2,1)
	if len(h.adeliv) != 3 {
		t.Fatalf("delivered %v", h.adeliv)
	}
	for i, w := range want {
		if h.adeliv[i] != w {
			t.Fatalf("delivered %v, want %v", h.adeliv, want)
		}
	}
}

func TestABcastBuffersOutOfOrderDecisions(t *testing.T) {
	h := newABHarness(t, 64)
	h.decide(t, 2, cm(1, 3, "c"))
	h.decide(t, 1, cm(1, 2, "b"))
	if len(h.adeliv) != 0 {
		t.Fatalf("delivered before the gap filled: %v", h.adeliv)
	}
	h.decide(t, 0, cm(1, 1, "a"))
	want := []string{"a", "b", "c"}
	if len(h.adeliv) != 3 {
		t.Fatalf("delivered %v", h.adeliv)
	}
	for i, w := range want {
		if h.adeliv[i] != w {
			t.Fatalf("delivered %v, want %v", h.adeliv, want)
		}
	}
}

func TestABcastDeduplicatesAcrossBatches(t *testing.T) {
	h := newABHarness(t, 64)
	h.decide(t, 0, cm(1, 1, "a"))
	h.decide(t, 1, cm(1, 1, "a"), cm(1, 2, "b")) // a won two races
	if len(h.adeliv) != 2 || h.adeliv[0] != "a" || h.adeliv[1] != "b" {
		t.Fatalf("delivered %v", h.adeliv)
	}
	// Duplicate decision for a past instance is ignored.
	h.decide(t, 0, cm(9, 9, "ghost"))
	if len(h.adeliv) != 2 {
		t.Fatalf("ghost delivered: %v", h.adeliv)
	}
}

func TestABcastEmptyBatchAdvances(t *testing.T) {
	h := newABHarness(t, 64)
	h.pool(t, cm(1, 1, "a"))
	h.decide(t, 0) // empty decision burns instance 0
	// The pool must be re-proposed for instance 1.
	if len(h.proposals) != 2 || h.proposals[1].inst != 1 {
		t.Fatalf("proposals = %+v", h.proposals)
	}
	h.decide(t, 1, cm(1, 1, "a"))
	if len(h.adeliv) != 1 || h.adeliv[0] != "a" {
		t.Fatalf("delivered %v", h.adeliv)
	}
}

func TestABcastBatchCap(t *testing.T) {
	h := newABHarness(t, 2)
	// Three messages pooled before the first proposal would fire... the
	// first arrival proposes immediately with batch size 1; decide it,
	// then the remaining two must fit the cap.
	h.pool(t, cm(1, 1, "a"))
	h.pool(t, cm(1, 2, "b"))
	h.pool(t, cm(1, 3, "c"))
	h.pool(t, cm(1, 4, "d"))
	h.decide(t, 0, cm(1, 1, "a"))
	if got := len(h.proposals[1].value); got != 2 {
		t.Fatalf("batch size = %d, want cap 2", got)
	}
}

func TestABcastRApplIgnored(t *testing.T) {
	h := newABHarness(t, 64)
	h.pool(t, CastMsg{ID: MsgID{Origin: 1, Seq: 1}, Kind: castRApp, Data: []byte("plain")})
	if len(h.proposals) != 0 {
		t.Fatal("plain reliable broadcast must not be ordered")
	}
}

func TestABcastSyncFastForwards(t *testing.T) {
	h := newABHarness(t, 64)
	if err := h.s.External(h.spec, h.ev.FromRComm, rcRecvd{sender: 1, inner: encodeSyncFrame(5, nil)}); err != nil {
		t.Fatal(err)
	}
	// Decisions below the sync point are ignored; 5 delivers.
	h.decide(t, 3, cm(1, 1, "old"))
	h.decide(t, 5, cm(1, 2, "new"))
	if len(h.adeliv) != 1 || h.adeliv[0] != "new" {
		t.Fatalf("delivered %v", h.adeliv)
	}
}

func TestABcastSyncInstallsSnapshot(t *testing.T) {
	h := newABHarness(t, 64)
	if err := h.s.External(h.spec, h.ev.FromRComm, rcRecvd{sender: 1, inner: encodeSyncFrame(4, []byte("state@4"))}); err != nil {
		t.Fatal(err)
	}
	if string(h.installed) != "state@4" {
		t.Fatalf("installed %q, want state@4", h.installed)
	}
	// A second sync (another established member's copy) is ignored.
	if err := h.s.External(h.spec, h.ev.FromRComm, rcRecvd{sender: 2, inner: encodeSyncFrame(6, []byte("state@6"))}); err != nil {
		t.Fatal(err)
	}
	if string(h.installed) != "state@4" {
		t.Fatal("duplicate sync must not reinstall")
	}
}

func TestABcastSyncIgnoredOnceEstablished(t *testing.T) {
	h := newABHarness(t, 64)
	h.decide(t, 0, cm(1, 1, "a"))
	if err := h.s.External(h.spec, h.ev.FromRComm, rcRecvd{sender: 1, inner: encodeSyncFrame(9, []byte("stale"))}); err != nil {
		t.Fatal(err)
	}
	if h.installed != nil {
		t.Fatal("established member must not install a snapshot")
	}
	h.decide(t, 1, cm(1, 2, "b"))
	if len(h.adeliv) != 2 {
		t.Fatalf("sync after delivery must be ignored; delivered %v", h.adeliv)
	}
}

// decodeSyncSent unpacks a captured sync frame.
func decodeSyncSent(t *testing.T, req rcSendReq) (next uint64, snap []byte) {
	t.Helper()
	r := wire.NewReader(req.inner)
	if r.U8() != layerSync {
		t.Fatal("not a sync frame")
	}
	next = r.U64()
	snap = r.BytesPrefixed()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return next, snap
}

func TestABcastSendSyncCarriesSnapshot(t *testing.T) {
	h := newABHarness(t, 64)
	h.decide(t, 0, cm(1, 1, "a"))
	// Outside a flush: emit immediately, snapshot reflecting 1 delivery.
	if err := h.s.External(h.spec, h.ev.SyncReq, simnet.NodeID(2)); err != nil {
		t.Fatal(err)
	}
	if len(h.syncSent) != 1 || h.syncSent[0].to != 2 {
		t.Fatalf("sync sends = %+v", h.syncSent)
	}
	next, snap := decodeSyncSent(t, h.syncSent[0])
	if next != 1 || string(snap) != "snap-1" {
		t.Fatalf("sync = (%d, %q), want (1, snap-1)", next, snap)
	}
}

func TestABcastSendSyncDefersUntilFlushEnd(t *testing.T) {
	h := newABHarness(t, 64)
	// A join decided mid-batch: the view op's deliverView triggers
	// SyncReq while the batch's tail ("z") is still undelivered. The
	// sync must wait, or the snapshot would miss "z" while the joiner
	// skips the instance that carries it.
	join := CastMsg{ID: MsgID{Origin: 1, Seq: 1}, Kind: castViewChg, Op: '+', Site: 2}
	syncer := core.NewMicroprotocol("syncer")
	hSyncer := syncer.AddHandler("onJoin", func(ctx *core.Context, msg core.Message) error {
		if m := msg.(CastMsg); m.Kind == castViewChg {
			return ctx.Trigger(h.ev.SyncReq, m.Site)
		}
		return nil
	})
	h.s.Register(syncer)
	h.s.Bind(h.ev.ADeliver, hSyncer)
	h.spec = core.Access(h.a.mp, syncer, h.capture)
	h.decide(t, 0, join, cm(1, 2, "z"))
	if len(h.syncSent) != 1 {
		t.Fatalf("sync sends = %+v", h.syncSent)
	}
	next, snap := decodeSyncSent(t, h.syncSent[0])
	// Both deliveries (the view op and "z") precede the snapshot, and
	// the joiner resumes at instance 1.
	if next != 1 || string(snap) != "snap-2" {
		t.Fatalf("sync = (%d, %q), want (1, snap-2)", next, snap)
	}
}

func TestABcastPeerResetForgetsOrigin(t *testing.T) {
	h := newABHarness(t, 64)
	h.decide(t, 0, cm(2, 1, "old"))
	h.pool(t, cm(2, 7, "pooled"))
	if err := h.s.External(h.spec, h.ev.PeerReset, simnet.NodeID(2)); err != nil {
		t.Fatal(err)
	}
	// The fresh incarnation's restarted IDs are orderable again...
	h.decide(t, 1, cm(2, 1, "new"))
	if len(h.adeliv) != 2 || h.adeliv[1] != "new" {
		t.Fatalf("delivered %v, want old then new", h.adeliv)
	}
	// ...and the dead incarnation's pooled leftovers are gone.
	if _, ok := h.a.pool[MsgID{Origin: 2, Seq: 7}]; ok {
		t.Fatal("pool entry for the dead incarnation survived the reset")
	}
}

func TestABcastAbcastTriggersBcast(t *testing.T) {
	h := newABHarness(t, 64)
	if err := h.s.External(h.spec, h.ev.ABcastEv, abcastReq{kind: castApp, data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if len(h.bcasts) != 1 || string(h.bcasts[0].Data) != "x" || h.bcasts[0].Kind != castApp {
		t.Fatalf("bcasts = %+v", h.bcasts)
	}
	if h.bcasts[0].ID != (MsgID{}) {
		t.Fatal("ID must be assigned by RelCast, not ABcast")
	}
}
