package gc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/transport"
)

// SpecKind selects how a Site declares its computations' specs — i.e.
// which isolated variant the stack uses (paper §4). It must match the
// configured controller: VCABound needs SpecBound, VCARoute needs
// SpecRoute; every other controller runs SpecBasic specs.
type SpecKind int

// Spec kinds.
const (
	SpecBasic SpecKind = iota // isolated M e
	SpecBound                 // isolated bound M e
	SpecRoute                 // isolated route M e
)

// Config describes one Site.
type Config struct {
	// Net and ID place the site on a simulated network node.
	Net transport.Transport
	ID  transport.NodeID
	// InitialView is the starting group view (must include ID).
	InitialView *View
	// Controller schedules the site's computations; default
	// cc.NewVCABasic(). Controllers must not be shared between sites.
	Controller core.Controller
	// SpecKind must match the controller (see SpecKind).
	SpecKind SpecKind
	// Bound is the per-microprotocol visit bound declared by SpecBound
	// computations (default 1024 — deliberately loose; the paper notes
	// that tight bounds are hard to state for recursive protocols).
	Bound int
	// BatchMax caps consensus batch sizes (default 64).
	BatchMax int
	// Deliver receives totally-ordered application payloads; RDeliver
	// receives plain reliable broadcasts; FDeliver receives FIFO-ordered
	// broadcasts; CDeliver receives causally-ordered broadcasts;
	// OnViewChange observes view installations. All run inside
	// computations: they must be quick and must not call Site methods
	// synchronously.
	Deliver      func(from transport.NodeID, data []byte)
	RDeliver     func(from transport.NodeID, data []byte)
	FDeliver     func(from transport.NodeID, data []byte)
	CDeliver     func(from transport.NodeID, data []byte)
	OnViewChange func(v *View)
	// Snapshot and InstallSnapshot are the application state-transfer
	// hooks for joining sites. When a '+' view operation is delivered,
	// every established member calls Snapshot — at a point where exactly
	// the deliveries below the shipped sync instance have run — and sends
	// the bytes to the joiner, whose InstallSnapshot replaces its state
	// before subsequent deliveries apply. Both run inside computations:
	// quick, no synchronous Site calls. Nil disables state transfer (the
	// joiner then starts empty, as before).
	Snapshot        func() []byte
	InstallSnapshot func(snap []byte)
	// RTO is the retransmission timeout (default 50ms); retransmission
	// scans run at RTO/2.
	RTO time.Duration
	// SendWindow is RelComm's flow-control window: the maximum
	// unacknowledged messages per peer (default 64; negative disables
	// flow control). Excess sends queue until acks open the window.
	SendWindow int
	// FDInterval is the failure-detector period (default 25ms; negative
	// disables the detector). SuspectAfter is the silence threshold
	// (default 6×FDInterval).
	FDInterval   time.Duration
	SuspectAfter time.Duration
	// PumpWorkers caps concurrently processed incoming datagrams
	// (default 32).
	PumpWorkers int
	// Tracer, if set, observes the site's stack.
	Tracer core.Tracer
	// AfterRelCastView is the E6 test hook; see RelCast.
	AfterRelCastView func()
	// Passive disables the receive pump and the timer loops: events
	// enter only through the Site methods (Inject*, ABcast, …). The E6
	// experiments use it so that, under the deliberately unsafe None
	// controller, the only concurrent computations are the two the
	// adversarial schedule orchestrates — the paper's *logical* race —
	// rather than incidental Go-level map races with pump workers.
	Passive bool
}

// specSet holds one pre-built Spec per external-event entry point.
type specSet struct {
	fromnet, ack, beat, fdtick, retrans *core.Spec
	abcast, rbcast, joinleave, inject   *core.Spec
	fbcast, cbcast                      *core.Spec
}

// Site is one member of the group: a full SAMOA stack (NetOut, RelComm,
// RelCast, FD, Consensus, ABcast, Membership, App) wired to a simnet
// node. Every external event — datagram, timer tick, application call —
// enters through Isolated with the spec pre-built for that entry point.
type Site struct {
	cfg   Config
	ev    *events
	stack *core.Stack
	node  transport.Endpoint

	netout  *NetOut
	relcomm *RelComm
	relcast *RelCast
	fd      *FD
	cons    *Consensus
	ab      *ABcast
	memb    *Membership
	fifo    *Fifo
	causal  *Causal
	app     *App

	// specs is the per-entry-point spec set for the stack's current
	// configuration epoch. A live upgrade republishes it (buildSpecs)
	// right after the swap; readers load it per spawn and retry through
	// spawnRetry when they raced the window.
	specs  atomic.Pointer[specSet]
	upMu   sync.Mutex    // serializes maybeUpgrade
	appVer atomic.Uint32 // current app protocol version (starts at 1)

	quit     chan struct{}
	stopOnce sync.Once
	sem      chan struct{}
	wg       sync.WaitGroup

	pumpRetries atomic.Uint64 // Recv-not-ok wakeups while the transport is down

	errMu sync.Mutex
	errs  []error
}

// NewSite builds (but does not start) a site.
func NewSite(cfg Config) *Site {
	if cfg.Net == nil || cfg.InitialView == nil {
		panic("gc: Config needs Net and InitialView")
	}
	if !cfg.InitialView.Contains(cfg.ID) {
		panic("gc: InitialView must contain the site itself")
	}
	if cfg.Controller == nil {
		cfg.Controller = cc.NewVCABasic()
	}
	if cfg.Bound <= 0 {
		cfg.Bound = 1024
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.SendWindow == 0 {
		cfg.SendWindow = 64
	}
	if cfg.FDInterval == 0 {
		cfg.FDInterval = 25 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 6 * cfg.FDInterval
	}
	if cfg.PumpWorkers <= 0 {
		cfg.PumpWorkers = 32
	}

	s := &Site{
		cfg:  cfg,
		ev:   newEvents(),
		node: cfg.Net.Endpoint(cfg.ID),
		quit: make(chan struct{}),
		sem:  make(chan struct{}, cfg.PumpWorkers),
	}
	opts := []core.StackOption{core.WithName("site")}
	if cfg.Tracer != nil {
		opts = append(opts, core.WithTracer(cfg.Tracer))
	}
	s.stack = core.NewStack(cfg.Controller, opts...)

	v := cfg.InitialView
	s.netout = newNetOut(s.node)
	s.relcomm = newRelComm(cfg.ID, v, cfg.RTO, cfg.SendWindow, s.ev)
	s.relcast = newRelCast(cfg.ID, v, s.ev, cfg.AfterRelCastView)
	s.fd = newFD(cfg.ID, v, cfg.SuspectAfter, s.ev)
	s.cons = newConsensus(cfg.ID, v, s.ev)
	s.ab = newABcast(cfg.ID, cfg.BatchMax, s.ev, cfg.Snapshot, cfg.InstallSnapshot)
	s.memb = newMembership(cfg.ID, v, s.ev)
	s.fifo = newFifo(cfg.ID, s.ev, cfg.FDeliver)
	s.causal = newCausal(cfg.ID, s.ev, cfg.CDeliver)
	s.app = newApp(1, cfg.Deliver, cfg.RDeliver, cfg.OnViewChange, s.maybeUpgrade)
	s.appVer.Store(1)

	s.stack.Register(s.netout.mp, s.relcomm.mp, s.relcast.mp, s.fd.mp,
		s.cons.mp, s.ab.mp, s.memb.mp, s.fifo.mp, s.causal.mp, s.app.mp)
	s.bind()
	s.buildSpecs()
	return s
}

func (s *Site) bind() {
	ev := s.ev
	s.stack.Bind(ev.FromNet, s.relcomm.hRecv)
	s.stack.Bind(ev.NetSend, s.netout.send)
	s.stack.Bind(ev.SendOut, s.relcomm.hSend)
	s.stack.Bind(ev.FromRComm, s.relcast.hRecv, s.cons.hRecv, s.ab.hSync)
	s.stack.Bind(ev.Bcast, s.relcast.hBcast)
	s.stack.Bind(ev.DeliverOut, s.ab.hRecv, s.app.hRDeliver, s.fifo.hRecv, s.causal.hRecv)
	s.stack.Bind(ev.ABcastEv, s.ab.hABcast)
	s.stack.Bind(ev.FifoEv, s.fifo.hBcast)
	s.stack.Bind(ev.CausalEv, s.causal.hBcast)
	s.stack.Bind(ev.ProposeEv, s.cons.hPropose)
	s.stack.Bind(ev.Decide, s.ab.hOnDecide)
	s.stack.Bind(ev.ADeliver, s.memb.hDeliverView, s.app.hDeliver)
	// ViewChange bind order matters for E6: RelCast updates strictly
	// before RelComm, opening the paper's §3 window under None.
	s.stack.Bind(ev.ViewChange, s.relcast.hViewChange, s.relcomm.hViewChange,
		s.fd.hViewChange, s.cons.hViewChange, s.app.hViewChange)
	s.stack.Bind(ev.JoinLeave, s.memb.hJoinLeave)
	s.stack.Bind(ev.SyncReq, s.ab.hSendSync)
	s.stack.Bind(ev.PeerReset, s.relcast.hPeerReset, s.ab.hPeerReset)
	s.stack.Bind(ev.RetrTick, s.relcomm.hRetransmit)
	s.stack.Bind(ev.FDTick, s.fd.hTick)
	s.stack.Bind(ev.FDBeat, s.fd.hBeat)
	s.stack.Bind(ev.Suspect, s.cons.hSuspect)
}

// callGraph lists every caller→callee pair in the stack — the single
// source of truth all three spec kinds derive from.
func (s *Site) callGraph() [][2]*core.Handler {
	return [][2]*core.Handler{
		{s.relcomm.hRecv, s.netout.send},
		{s.relcomm.hRecv, s.relcast.hRecv},
		{s.relcomm.hRecv, s.cons.hRecv},
		{s.relcomm.hRecv, s.ab.hSync},
		{s.relcomm.hSend, s.netout.send},
		{s.relcomm.hRetransmit, s.netout.send},
		{s.relcast.hBcast, s.relcomm.hSend},
		{s.relcast.hRecv, s.relcomm.hSend},
		{s.relcast.hRecv, s.ab.hRecv},
		{s.relcast.hRecv, s.app.hRDeliver},
		{s.relcast.hRecv, s.fifo.hRecv},
		{s.relcast.hRecv, s.causal.hRecv},
		{s.fifo.hBcast, s.relcast.hBcast},
		{s.causal.hBcast, s.relcast.hBcast},
		{s.cons.hRecv, s.relcomm.hSend},
		{s.cons.hRecv, s.ab.hOnDecide},
		{s.cons.hPropose, s.relcomm.hSend},
		{s.cons.hSuspect, s.relcomm.hSend},
		{s.ab.hABcast, s.relcast.hBcast},
		{s.ab.hRecv, s.cons.hPropose},
		{s.ab.hOnDecide, s.memb.hDeliverView},
		{s.ab.hOnDecide, s.app.hDeliver},
		{s.ab.hOnDecide, s.cons.hPropose},
		{s.memb.hDeliverView, s.relcast.hViewChange},
		{s.memb.hDeliverView, s.relcomm.hViewChange},
		{s.memb.hDeliverView, s.fd.hViewChange},
		{s.memb.hDeliverView, s.cons.hViewChange},
		{s.memb.hDeliverView, s.app.hViewChange},
		{s.memb.hJoinLeave, s.ab.hABcast},
		{s.memb.hDeliverView, s.ab.hSendSync},
		{s.memb.hDeliverView, s.relcast.hPeerReset},
		{s.memb.hDeliverView, s.ab.hPeerReset},
		{s.ab.hOnDecide, s.ab.hSendSync},
		{s.ab.hSendSync, s.relcomm.hSend},
		{s.ab.hSync, s.cons.hPropose},
		{s.fd.hTick, s.netout.send},
		{s.fd.hTick, s.cons.hSuspect},
	}
}

// buildSpecs derives, for each external-event entry point, the spec of the
// configured kind from the call graph: the reachable subgraph from the
// entry's root handlers. An acknowledgement datagram, for instance, only
// touches RelComm — a much smaller M than a data datagram, which may
// cascade through the whole stack.
func (s *Site) buildSpecs() {
	b := core.NewSpecBuilder()
	for _, e := range s.callGraph() {
		b.Edge(e[0], e[1])
	}
	build := func(roots ...*core.Handler) *core.Spec {
		switch s.cfg.SpecKind {
		case SpecRoute:
			return b.Route(roots...)
		case SpecBound:
			return b.Bound(s.cfg.Bound, roots...)
		default:
			return b.Basic(roots...)
		}
	}
	sp := &specSet{
		fromnet:   build(s.relcomm.hRecv),
		ack:       build(s.relcomm.hRecv), // see pump: acks never cascade
		beat:      build(s.fd.hBeat),
		fdtick:    build(s.fd.hTick),
		retrans:   build(s.relcomm.hRetransmit),
		abcast:    build(s.ab.hABcast),
		rbcast:    build(s.relcast.hBcast),
		fbcast:    build(s.fifo.hBcast),
		cbcast:    build(s.causal.hBcast),
		joinleave: build(s.memb.hJoinLeave),
		inject:    build(s.memb.hDeliverView, s.app.hDeliver),
	}
	// Acks only touch RelComm state: declare exactly that.
	switch s.cfg.SpecKind {
	case SpecRoute:
		sp.ack = core.Route(core.NewRouteGraph().
			Root(s.relcomm.hRecv).Edge(s.relcomm.hRecv, s.netout.send))
	case SpecBound:
		sp.ack = core.AccessBound(map[*core.Microprotocol]int{
			s.relcomm.mp: 2, s.netout.mp: 2,
		})
	default:
		sp.ack = core.Access(s.relcomm.mp, s.netout.mp)
	}
	s.specs.Store(sp)
}

// spawnRetry runs one external computation against the current spec set,
// retrying when its spec raced a live upgrade: ReconfiguredError means
// the set was republished for a new configuration epoch between the load
// and the spawn, so the retry simply picks up the rebuilt specs.
func (s *Site) spawnRetry(run func(*specSet) error) error {
	for tries := 0; ; tries++ {
		err := run(s.specs.Load())
		var re *core.ReconfiguredError
		if !errors.As(err, &re) || tries >= 8 {
			return err
		}
		runtime.Gosched()
	}
}

// maybeUpgrade performs a delivered protocol bump. It runs inside the
// deliverView computation — the same total-order point on every member —
// building the next App incarnation and swapping it in with one live
// Reconfigure. Replace keeps the app's isolation identity (its version
// slot continues under the new microprotocol), so in-flight computations
// of the superseded epoch serialize against the new version's, and the
// spec set is rebuilt against the new identity for subsequent spawns. A
// bump at or below the running version is a no-op (duplicate or stale
// '^' deliveries).
func (s *Site) maybeUpgrade(proto uint16) {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	old := s.app
	if proto <= old.ver {
		return
	}
	next := newApp(proto, s.cfg.Deliver, s.cfg.RDeliver, s.cfg.OnViewChange, s.maybeUpgrade)
	if err := s.stack.Reconfigure(func(e *core.Epoch) {
		e.Replace(old.mp.Name(), next.mp)
	}); err != nil {
		// A site mid-Stop loses the race to Close; that is not an error.
		if !errors.Is(err, core.ErrClosed) {
			s.record(fmt.Errorf("gc: upgrade to v%d: %w", proto, err))
		}
		return
	}
	s.app = next
	s.buildSpecs()
	s.appVer.Store(uint32(proto))
}

// Start launches the receive pump and the timer loops (none in Passive
// mode).
func (s *Site) Start() {
	if s.cfg.Passive {
		return
	}
	s.wg.Add(1)
	go s.pump()
	if s.cfg.FDInterval > 0 {
		s.startTicker(s.cfg.FDInterval, func(sp *specSet) *core.Spec { return sp.fdtick }, s.ev.FDTick)
	}
	s.startTicker(s.cfg.RTO/2, func(sp *specSet) *core.Spec { return sp.retrans }, s.ev.RetrTick)
}

// Stop shuts the site down: it crashes the node (unblocking the pump),
// waits for in-flight computations to complete, then closes the stack —
// draining it and verifying its lifecycle balance (any violation lands in
// Errs). Stop is idempotent.
func (s *Site) Stop() {
	s.stopOnce.Do(func() {
		close(s.quit)
		s.cfg.Net.Crash(s.cfg.ID)
	})
	s.wg.Wait()
	s.record(s.stack.Close())
}

// pump turns every incoming datagram into one isolated computation,
// classifying by kind so that heartbeats and acks get their narrow specs.
func (s *Site) pump() {
	defer s.wg.Done()
	const maxBackoff = 250 * time.Millisecond
	backoff := time.Millisecond
	for {
		d, ok := s.node.Recv()
		if !ok {
			// The node's current incarnation crashed or the transport
			// closed. A transport-level Restart installs a fresh
			// incarnation that the same Endpoint reads from, so keep
			// the pump alive until the site itself stops — the stack
			// survives the network blinking (crash-recovery model) and
			// RelComm's retransmission refills what the outage lost.
			// Retries back off exponentially (capped) so a long outage
			// idles instead of burning CPU on a 1ms poll.
			s.pumpRetries.Add(1)
			select {
			case <-s.quit:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = time.Millisecond
		if len(d.Payload) == 0 {
			continue
		}
		var pick func(*specSet) *core.Spec
		var et *core.EventType
		switch d.Payload[0] {
		case dgBeat:
			pick, et = func(sp *specSet) *core.Spec { return sp.beat }, s.ev.FDBeat
		case dgAck:
			pick, et = func(sp *specSet) *core.Spec { return sp.ack }, s.ev.FromNet
		default:
			pick, et = func(sp *specSet) *core.Spec { return sp.fromnet }, s.ev.FromNet
		}
		select {
		case s.sem <- struct{}{}:
		case <-s.quit:
			return
		}
		s.wg.Add(1)
		go func(d transport.Datagram) {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			s.record(s.spawnRetry(func(sp *specSet) error {
				return s.stack.External(pick(sp), et, d)
			}))
		}(d)
	}
}

// startTicker runs a skip-if-busy periodic computation.
func (s *Site) startTicker(period time.Duration, pick func(*specSet) *core.Spec, et *core.EventType) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		busy := make(chan struct{}, 1)
		for {
			select {
			case <-s.quit:
				return
			case <-t.C:
			}
			select {
			case busy <- struct{}{}:
			default:
				continue // previous tick still running
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() { <-busy }()
				s.record(s.spawnRetry(func(sp *specSet) error {
					return s.stack.External(pick(sp), et, nil)
				}))
			}()
		}
	}()
}

func (s *Site) record(err error) {
	if err == nil {
		return
	}
	s.errMu.Lock()
	s.errs = append(s.errs, err)
	s.errMu.Unlock()
}

// Errs returns every error recorded by the site's computations so far —
// empty in a healthy run; spec violations and decode failures land here.
func (s *Site) Errs() []error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return append([]error(nil), s.errs...)
}

// ID reports the site's node ID.
func (s *Site) ID() transport.NodeID { return s.cfg.ID }

// View returns the site's current view (as installed at RelComm).
func (s *Site) View() *View { return s.relcomm.view.Load() }

// DroppedStale reports RelComm sends dropped by the view filter — the E6
// observable for the paper's §3 Problem.
func (s *Site) DroppedStale() uint64 { return s.relcomm.DroppedStale() }

// PumpRetries reports how many times the receive pump woke to a
// still-down transport (regression observable for the pump's backoff: a
// long outage must cost dozens of wakeups, not one per millisecond).
func (s *Site) PumpRetries() uint64 { return s.pumpRetries.Load() }

// ABcast atomically (totally-ordered) broadcasts an application payload:
// one isolated computation triggering the ABcast event, per paper §4.
func (s *Site) ABcast(data []byte) error {
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.External(sp.abcast, s.ev.ABcastEv, abcastReq{kind: castApp, data: data})
	})
}

// RBcast reliably broadcasts an application payload with no ordering
// guarantee beyond RelCast's.
func (s *Site) RBcast(data []byte) error {
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.External(sp.rbcast, s.ev.Bcast, &CastMsg{Kind: castRApp, Data: data})
	})
}

// FBcast reliably broadcasts with FIFO order: every site delivers this
// site's FBcasts in send order.
func (s *Site) FBcast(data []byte) error {
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.External(sp.fbcast, s.ev.FifoEv, append([]byte(nil), data...))
	})
}

// CBcast reliably broadcasts with causal order: a message is delivered
// only after everything that causally precedes it.
func (s *Site) CBcast(data []byte) error {
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.External(sp.cbcast, s.ev.CausalEv, append([]byte(nil), data...))
	})
}

// Join proposes adding a site to the view (totally ordered, so every
// member installs the same view sequence).
func (s *Site) Join(id transport.NodeID) error {
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.External(sp.joinleave, s.ev.JoinLeave, joinLeaveReq{op: '+', site: id})
	})
}

// Leave proposes removing a site from the view.
func (s *Site) Leave(id transport.NodeID) error {
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.External(sp.joinleave, s.ev.JoinLeave, joinLeaveReq{op: '-', site: id})
	})
}

// ProposeUpgrade proposes a protocol-version bump: a '^' membership
// operation carried through the total order like a join or leave, so
// every member upgrades its app microprotocol — one live epoch swap per
// site — at the same delivery point. A proposal at or below the running
// version is delivered and ignored.
func (s *Site) ProposeUpgrade(proto uint16) error {
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.External(sp.joinleave, s.ev.JoinLeave, joinLeaveReq{op: '^', site: transport.NodeID(proto)})
	})
}

// AppVersion reports the protocol version the site's app microprotocol
// currently runs (1 until an upgrade is delivered).
func (s *Site) AppVersion() uint16 { return uint16(s.appVer.Load()) }

// Epoch reports the stack's current configuration epoch — it advances by
// one per applied upgrade.
func (s *Site) Epoch() uint64 { return s.stack.CurrentEpoch() }

// InjectViewChange runs a local view-delivery computation, as if
// Membership had just delivered [op site] — the E6 entry point for
// reproducing the §3 race without the full join choreography.
func (s *Site) InjectViewChange(op byte, site transport.NodeID) error {
	m := CastMsg{ID: MsgID{Origin: s.cfg.ID, Seq: ^uint64(0)}, Kind: castViewChg, Op: op, Site: site}
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.ExternalAll(sp.inject, s.ev.ADeliver, m)
	})
}

// InjectDatagram feeds a raw datagram into the stack as if it had arrived
// from the network, running it as a FromNet computation (test helper).
func (s *Site) InjectDatagram(d transport.Datagram) error {
	return s.spawnRetry(func(sp *specSet) error {
		return s.stack.External(sp.fromnet, s.ev.FromNet, d)
	})
}

// BuildCastDatagram builds the raw datagram a RelComm at `from` would have
// emitted to carry a plain reliable broadcast — the E6 experiments use it
// to inject "the message from the crashed origin" (paper §3 Problem).
func BuildCastDatagram(from transport.NodeID, rcSeq uint64, id MsgID, data []byte) transport.Datagram {
	frame := encodeCastFrame(&CastMsg{ID: id, Kind: castRApp, Data: data})
	// Epoch 0 stands in for the crashed origin's incarnation; the
	// receiver adopts whatever epoch a peer's first datagram carries.
	return transport.Datagram{From: from, Payload: encodeData(0, rcSeq, frame)}
}
