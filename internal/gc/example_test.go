package gc_test

import (
	"fmt"
	"time"

	"repro/internal/gc"
	"repro/internal/simnet"
)

// A single-member group still runs the full machinery — RelCast
// dissemination, consensus, total-order delivery — over the loopback.
func ExampleSite() {
	net := simnet.New(simnet.Config{Nodes: 1})
	defer net.Close()

	delivered := make(chan string, 1)
	site := gc.NewSite(gc.Config{
		Net:         net,
		ID:          0,
		InitialView: gc.NewView(0),
		FDInterval:  -1,
		Deliver: func(from simnet.NodeID, data []byte) {
			delivered <- string(data)
		},
	})
	site.Start()
	defer site.Stop()

	if err := site.ABcast([]byte("hello group")); err != nil {
		fmt.Println(err)
		return
	}
	select {
	case msg := <-delivered:
		fmt.Println(msg)
	case <-time.After(5 * time.Second):
		fmt.Println("timeout")
	}
	// Output: hello group
}
