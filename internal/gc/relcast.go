package gc

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dedupe"
	"repro/internal/transport"
	"repro/internal/wire"
)

// RelCast is the reliable broadcast microprotocol of paper §3: to
// broadcast, send to every site in the view; on first receipt of a
// message, rebroadcast it (so delivery survives a mid-broadcast sender
// crash) and deliver it locally via DeliverOut.
//
// The broadcast loop sends to every view member including the sender
// itself; the origin's own copy comes back through the network and is the
// local delivery. The rebroadcast wave terminates because every site
// rebroadcasts a given message at most once (the seen set).
type RelCast struct {
	mp   *core.Microprotocol
	self transport.NodeID
	ev   *events

	view atomic.Pointer[View]
	seen map[transport.NodeID]*dedupe.Seq // per-origin, high-water compacted
	seq  uint64                           // per-origin ID allocator for locally originated casts

	// afterViewChange is the E6 test hook: it runs after RelCast
	// installed a new view but before RelComm gets to (bind order), the
	// exact window of the paper's §3 Problem.
	afterViewChange func()

	hBcast, hRecv, hViewChange, hPeerReset *core.Handler
}

func newRelCast(self transport.NodeID, initial *View, ev *events, afterViewChange func()) *RelCast {
	rb := &RelCast{
		mp:              core.NewMicroprotocol("relcast"),
		self:            self,
		ev:              ev,
		seen:            make(map[transport.NodeID]*dedupe.Seq),
		afterViewChange: afterViewChange,
	}
	rb.view.Store(initial)
	rb.hBcast = rb.mp.AddHandler("bcast", rb.bcast)
	rb.hRecv = rb.mp.AddHandler("recv", rb.recv)
	rb.hViewChange = rb.mp.AddHandler("viewChange", rb.viewChange)
	rb.hPeerReset = rb.mp.AddHandler("peerReset", rb.peerReset)
	return rb
}

// bcast implements "for all site in view: trigger SendOut (m, site)". A
// locally-originated message (zero ID) gets a fresh ID first.
func (rb *RelCast) bcast(ctx *core.Context, msg core.Message) error {
	m := msg.(*CastMsg)
	if m.ID == (MsgID{}) {
		rb.seq++
		m.ID = MsgID{Origin: rb.self, Seq: rb.seq}
	}
	return rb.sendAll(ctx, m)
}

func (rb *RelCast) sendAll(ctx *core.Context, m *CastMsg) error {
	frame := encodeCastFrame(m)
	for _, site := range rb.view.Load().Members() {
		if err := ctx.Trigger(rb.ev.SendOut, rcSendReq{to: site, inner: frame}); err != nil {
			return err
		}
	}
	return nil
}

// recv implements "if (new message m) then { bcast m; asyncTriggerAll
// DeliverOut m; }". Non-RelCast payloads on FromRComm belong to other
// microprotocols and are ignored.
func (rb *RelCast) recv(ctx *core.Context, msg core.Message) error {
	in := msg.(rcRecvd)
	r := wire.NewReader(in.inner)
	if r.U8() != layerRelCast {
		return nil
	}
	m := decodeCastMsg(r)
	if err := r.Err(); err != nil {
		return err
	}
	d := rb.seen[m.ID.Origin]
	if d == nil {
		d = &dedupe.Seq{}
		rb.seen[m.ID.Origin] = d
	}
	if !d.Mark(m.ID.Seq) {
		return nil
	}
	if err := rb.sendAll(ctx, &m); err != nil {
		return err
	}
	return ctx.AsyncTriggerAll(rb.ev.DeliverOut, m)
}

// viewChange installs a new view.
func (rb *RelCast) viewChange(_ *core.Context, msg core.Message) error {
	rb.view.Store(msg.(*View))
	if rb.afterViewChange != nil {
		rb.afterViewChange()
	}
	return nil
}

// peerReset forgets a rejoining site's origin history. It runs inside
// the total-order delivery of the site's '+' view operation, so every
// member resets at the same point in the order — the fresh incarnation's
// message IDs (its per-origin sequence restarts at 1) would otherwise be
// swallowed as duplicates of the dead incarnation's.
func (rb *RelCast) peerReset(_ *core.Context, msg core.Message) error {
	delete(rb.seen, msg.(transport.NodeID))
	return nil
}
