package gc

import (
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func TestViewBasics(t *testing.T) {
	v := NewView(2, 0, 1)
	if v.Size() != 3 {
		t.Fatalf("size = %d", v.Size())
	}
	if got := v.Members(); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("members = %v (must be sorted)", got)
	}
	for _, id := range []simnet.NodeID{0, 1, 2} {
		if !v.Contains(id) {
			t.Fatalf("missing %d", id)
		}
	}
	if v.Contains(3) {
		t.Fatal("phantom member")
	}
	if v.String() != "{0,1,2}" {
		t.Fatalf("string = %q", v.String())
	}
}

func TestViewAddRemoveImmutable(t *testing.T) {
	v := NewView(0, 1)
	v2 := v.Add(2)
	if v.Contains(2) {
		t.Fatal("Add mutated the receiver")
	}
	if !v2.Contains(2) || v2.Size() != 3 {
		t.Fatalf("v2 = %v", v2)
	}
	if v.Add(1) != v {
		t.Fatal("adding an existing member must be a no-op")
	}
	v3 := v2.Remove(0)
	if v2.Contains(0) == false {
		t.Fatal("Remove mutated the receiver")
	}
	if v3.Contains(0) || v3.Size() != 2 {
		t.Fatalf("v3 = %v", v3)
	}
	if v3.Remove(0) != v3 {
		t.Fatal("removing an absent member must be a no-op")
	}
}

func TestViewApply(t *testing.T) {
	v := NewView(0)
	v = v.Apply('+', 5)
	if !v.Contains(5) {
		t.Fatal("+ failed")
	}
	v = v.Apply('-', 5)
	if v.Contains(5) {
		t.Fatal("- failed")
	}
}

func TestViewQuorum(t *testing.T) {
	for _, tc := range []struct{ n, q int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {7, 4}} {
		ids := make([]simnet.NodeID, tc.n)
		for i := range ids {
			ids[i] = simnet.NodeID(i)
		}
		if got := NewView(ids...).Quorum(); got != tc.q {
			t.Fatalf("quorum(%d) = %d, want %d", tc.n, got, tc.q)
		}
	}
}

func TestViewCoordinatorRotates(t *testing.T) {
	v := NewView(0, 1, 2)
	if v.Coordinator(0, 0) != 0 || v.Coordinator(0, 1) != 1 || v.Coordinator(0, 2) != 2 || v.Coordinator(0, 3) != 0 {
		t.Fatal("round rotation wrong")
	}
	if v.Coordinator(1, 0) != 1 {
		t.Fatal("instance rotation wrong")
	}
	// Rotation respects membership, not raw IDs.
	v2 := NewView(3, 7)
	if v2.Coordinator(0, 0) != 3 || v2.Coordinator(0, 1) != 7 {
		t.Fatal("sparse membership rotation wrong")
	}
}

func TestViewContainsProperty(t *testing.T) {
	prop := func(ids []uint8, probe uint8) bool {
		ns := make([]simnet.NodeID, len(ids))
		want := false
		for i, id := range ids {
			ns[i] = simnet.NodeID(id)
			if id == probe {
				want = true
			}
		}
		return NewView(ns...).Contains(simnet.NodeID(probe)) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
