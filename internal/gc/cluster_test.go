package gc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/simnet"
)

// cluster is a test harness owning a simnet and a set of sites, recording
// every delivery and view installation per site.
type cluster struct {
	t     *testing.T
	net   *simnet.Network
	sites map[simnet.NodeID]*gc.Site

	mu     sync.Mutex
	adeliv map[simnet.NodeID][]string
	rdeliv map[simnet.NodeID][]string
	views  map[simnet.NodeID][]string
}

func newCluster(t *testing.T, netCfg simnet.Config) *cluster {
	t.Helper()
	c := &cluster{
		t:      t,
		net:    simnet.New(netCfg),
		sites:  make(map[simnet.NodeID]*gc.Site),
		adeliv: make(map[simnet.NodeID][]string),
		rdeliv: make(map[simnet.NodeID][]string),
		views:  make(map[simnet.NodeID][]string),
	}
	t.Cleanup(func() {
		for _, s := range c.sites {
			s.Stop()
		}
		c.net.Close()
		for id, s := range c.sites {
			for _, err := range s.Errs() {
				t.Errorf("site %d: %v", id, err)
			}
		}
	})
	return c
}

// addSite creates and starts a site delivering into the cluster's logs.
func (c *cluster) addSite(id simnet.NodeID, view *gc.View, mutate func(*gc.Config)) *gc.Site {
	c.t.Helper()
	cfg := gc.Config{
		Net:         c.net,
		ID:          id,
		InitialView: view,
		FDInterval:  -1, // most tests are crash-free; crash tests override
		Deliver: func(from simnet.NodeID, data []byte) {
			c.mu.Lock()
			c.adeliv[id] = append(c.adeliv[id], string(data))
			c.mu.Unlock()
		},
		RDeliver: func(from simnet.NodeID, data []byte) {
			c.mu.Lock()
			c.rdeliv[id] = append(c.rdeliv[id], string(data))
			c.mu.Unlock()
		},
		OnViewChange: func(v *gc.View) {
			c.mu.Lock()
			c.views[id] = append(c.views[id], v.String())
			c.mu.Unlock()
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := gc.NewSite(cfg)
	c.sites[id] = s
	s.Start()
	return s
}

func (c *cluster) adeliveries(id simnet.NodeID) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.adeliv[id]...)
}

func (c *cluster) rdeliveries(id simnet.NodeID) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.rdeliv[id]...)
}

// waitFor polls cond until it holds or the deadline passes.
func (c *cluster) waitFor(timeout time.Duration, what string, cond func() bool) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("timeout waiting for %s", what)
}

func (c *cluster) waitDeliveredAt(id simnet.NodeID, n int) {
	c.t.Helper()
	// Generous deadline: the full suite under -race on a loaded 1-CPU
	// box slows consensus rounds considerably.
	c.waitFor(30*time.Second, fmt.Sprintf("site %d to deliver %d messages", id, n), func() bool {
		return len(c.adeliveries(id)) >= n
	})
}

func TestSingleSiteABcast(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 1})
	s := c.addSite(0, gc.NewView(0), nil)
	for i := 0; i < 5; i++ {
		if err := s.ABcast([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.waitDeliveredAt(0, 5)
	// Atomic broadcast promises a total order, not sender-FIFO: assert
	// exactly-once delivery of the full set.
	got := c.adeliveries(0)
	if len(got) != 5 {
		t.Fatalf("delivered %v", got)
	}
	seen := map[string]bool{}
	for _, m := range got {
		seen[m] = true
	}
	for i := 0; i < 5; i++ {
		if !seen[fmt.Sprintf("m%d", i)] {
			t.Fatalf("missing m%d in %v", i, got)
		}
	}
}

func TestThreeSitesTotalOrder(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond, Seed: 11})
	view := gc.NewView(0, 1, 2)
	for id := simnet.NodeID(0); id < 3; id++ {
		c.addSite(id, view, nil)
	}
	const perSite = 5
	var wg sync.WaitGroup
	for id := simnet.NodeID(0); id < 3; id++ {
		wg.Add(1)
		go func(id simnet.NodeID) {
			defer wg.Done()
			for i := 0; i < perSite; i++ {
				if err := c.sites[id].ABcast([]byte(fmt.Sprintf("s%d-m%d", id, i))); err != nil {
					t.Error(err)
				}
			}
		}(id)
	}
	wg.Wait()
	total := 3 * perSite
	for id := simnet.NodeID(0); id < 3; id++ {
		c.waitDeliveredAt(id, total)
	}
	// Total order: every site delivered the same sequence.
	ref := c.adeliveries(0)
	if len(ref) != total {
		t.Fatalf("site 0 delivered %d, want %d", len(ref), total)
	}
	seen := map[string]bool{}
	for _, m := range ref {
		if seen[m] {
			t.Fatalf("duplicate delivery %q", m)
		}
		seen[m] = true
	}
	for id := simnet.NodeID(1); id < 3; id++ {
		got := c.adeliveries(id)
		if len(got) != total {
			t.Fatalf("site %d delivered %d, want %d", id, len(got), total)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order violated at %d: site %d has %v, site 0 has %v", i, id, got, ref)
			}
		}
	}
}

func TestRBcastReachesAll(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 300 * time.Microsecond, Seed: 5})
	view := gc.NewView(0, 1, 2)
	for id := simnet.NodeID(0); id < 3; id++ {
		c.addSite(id, view, nil)
	}
	for i := 0; i < 3; i++ {
		if err := c.sites[0].RBcast([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for id := simnet.NodeID(0); id < 3; id++ {
		c.waitFor(10*time.Second, "rdeliveries", func() bool { return len(c.rdeliveries(id)) >= 3 })
	}
}

func TestLossyNetworkStillDelivers(t *testing.T) {
	c := newCluster(t, simnet.Config{
		Nodes: 3, MinDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond,
		LossProb: 0.2, Seed: 99,
	})
	view := gc.NewView(0, 1, 2)
	for id := simnet.NodeID(0); id < 3; id++ {
		c.addSite(id, view, func(cfg *gc.Config) {
			cfg.RTO = 20 * time.Millisecond
		})
	}
	for i := 0; i < 5; i++ {
		if err := c.sites[simnet.NodeID(i%3)].ABcast([]byte(fmt.Sprintf("lossy%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for id := simnet.NodeID(0); id < 3; id++ {
		c.waitDeliveredAt(id, 5)
	}
	ref := c.adeliveries(0)[:5]
	for id := simnet.NodeID(1); id < 3; id++ {
		got := c.adeliveries(id)[:5]
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order differs under loss: %v vs %v", got, ref)
			}
		}
	}
}

func TestJoinAddsSiteAndSyncs(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 300 * time.Microsecond, Seed: 21})
	established := gc.NewView(0, 1)
	c.addSite(0, established, nil)
	c.addSite(1, established, nil)

	// Some pre-join history the joiner must not need.
	if err := c.sites[0].ABcast([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	c.waitDeliveredAt(0, 1)
	c.waitDeliveredAt(1, 1)

	// The joiner knows the view it is joining into.
	c.addSite(2, gc.NewView(0, 1, 2), nil)
	if err := c.sites[0].Join(2); err != nil {
		t.Fatal(err)
	}
	c.waitFor(10*time.Second, "established sites to install {0,1,2}", func() bool {
		return c.sites[0].View().Contains(2) && c.sites[1].View().Contains(2)
	})

	// Post-join broadcasts reach the new member.
	if err := c.sites[1].ABcast([]byte("post")); err != nil {
		t.Fatal(err)
	}
	c.waitFor(10*time.Second, "joiner to deliver post-join message", func() bool {
		for _, m := range c.adeliveries(2) {
			if m == "post" {
				return true
			}
		}
		return false
	})
	// The joiner must not have delivered pre-join history.
	for _, m := range c.adeliveries(2) {
		if m == "pre" {
			t.Fatal("joiner delivered pre-join history")
		}
	}
}

func TestLeaveShrinksView(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 300 * time.Microsecond, Seed: 31})
	view := gc.NewView(0, 1, 2)
	for id := simnet.NodeID(0); id < 3; id++ {
		c.addSite(id, view, nil)
	}
	if err := c.sites[0].Leave(2); err != nil {
		t.Fatal(err)
	}
	c.waitFor(10*time.Second, "views to shrink", func() bool {
		return !c.sites[0].View().Contains(2) && !c.sites[1].View().Contains(2)
	})
	if err := c.sites[0].ABcast([]byte("after-leave")); err != nil {
		t.Fatal(err)
	}
	c.waitFor(10*time.Second, "remaining members to deliver", func() bool {
		a0, a1 := c.adeliveries(0), c.adeliveries(1)
		return contains(a0, "after-leave") && contains(a1, "after-leave")
	})
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestCrashedCoordinatorRoundAdvance: instance 0's round-0 coordinator is
// site 0; crashing it forces the failure detector + round advance path.
func TestCrashedCoordinatorRoundAdvance(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 300 * time.Microsecond, Seed: 41})
	view := gc.NewView(0, 1, 2)
	for id := simnet.NodeID(0); id < 3; id++ {
		c.addSite(id, view, func(cfg *gc.Config) {
			cfg.FDInterval = 10 * time.Millisecond
			cfg.SuspectAfter = 60 * time.Millisecond
		})
	}
	c.net.Crash(0)
	if err := c.sites[1].ABcast([]byte("survivor")); err != nil {
		t.Fatal(err)
	}
	c.waitDeliveredAt(1, 1)
	c.waitDeliveredAt(2, 1)
	if got := c.adeliveries(1); got[0] != "survivor" {
		t.Fatalf("delivered %v", got)
	}
}

// TestAllControllerSpecCombos drives the full stack under every
// (controller, spec kind) combination the framework supports — the
// integration proof that each isolated variant can run a real protocol.
func TestAllControllerSpecCombos(t *testing.T) {
	combos := []struct {
		name string
		mk   func() core.Controller
		kind gc.SpecKind
	}{
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, gc.SpecBasic},
		{"vca-bound", func() core.Controller { return cc.NewVCABound() }, gc.SpecBound},
		{"vca-route", func() core.Controller { return cc.NewVCARoute() }, gc.SpecRoute},
		{"serial", func() core.Controller { return cc.NewSerial() }, gc.SpecBasic},
		{"tso", func() core.Controller { return cc.NewTSO() }, gc.SpecBasic},
		{"vca-rw", func() core.Controller { return cc.NewVCARW() }, gc.SpecBasic},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			c := newCluster(t, simnet.Config{Nodes: 2, MinDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond, Seed: 51})
			view := gc.NewView(0, 1)
			for id := simnet.NodeID(0); id < 2; id++ {
				c.addSite(id, view, func(cfg *gc.Config) {
					cfg.Controller = combo.mk()
					cfg.SpecKind = combo.kind
				})
			}
			for i := 0; i < 4; i++ {
				if err := c.sites[simnet.NodeID(i%2)].ABcast([]byte(fmt.Sprintf("c%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			c.waitDeliveredAt(0, 4)
			c.waitDeliveredAt(1, 4)
			ref, got := c.adeliveries(0), c.adeliveries(1)
			for i := range ref[:4] {
				if ref[i] != got[i] {
					t.Fatalf("order differs: %v vs %v", ref, got)
				}
			}
		})
	}
}
