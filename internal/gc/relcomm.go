package gc

import (
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dedupe"
	"repro/internal/transport"
	"repro/internal/wire"
)

// rcSendReq asks RelComm to reliably send an inner payload to a site
// (the paper's SendOut event message: (m, site)).
type rcSendReq struct {
	to    transport.NodeID
	inner []byte
}

// rcRecvd is a reliably-delivered inner payload (the paper's FromRComm
// event message).
type rcRecvd struct {
	sender transport.NodeID
	inner  []byte
}

// pendingSend is an unacknowledged data message awaiting retransmission.
type pendingSend struct {
	inner  []byte
	sentAt time.Time
}

// peerIn is the receive-side state for one peer: the incarnation (epoch)
// its datagrams currently carry and the dedup window within it. A peer
// that crash-restarts announces a fresh random epoch; the first datagram
// of a new epoch resets the dedup window, so the restarted sender's
// sequence space (starting over at 1) is not swallowed by the dead
// incarnation's high-water mark.
type peerIn struct {
	epoch uint32
	seen  dedupe.Seq
}

// RelComm is the reliable point-to-point microprotocol of paper §3:
// sequence numbers, acknowledgements, retransmission, and the group-view
// filter ("the message is discarded if the target is not known"; on
// receipt, delivered upward only "if the sender is in the current group
// view"). That filter is the heart of experiment E6: a stale view here
// silently loses messages.
//
// All state except the view is plain — isolation is its synchronisation.
// The view is an atomic pointer so that the deliberately unsafe None
// controller produces the paper's stale-view bug rather than an undefined
// data race.
type RelComm struct {
	mp     *core.Microprotocol
	self   transport.NodeID
	epoch  uint32 // this incarnation's identity, constant for the RelComm's life
	rto    time.Duration
	window int // max unacknowledged messages per peer; <=0 = unlimited
	ev     *events

	view atomic.Pointer[View]

	nextSeq map[transport.NodeID]uint64
	pending map[transport.NodeID]map[uint64]*pendingSend
	queued  map[transport.NodeID][][]byte // flow control: waiting for window space
	peers   map[transport.NodeID]*peerIn

	// droppedStale counts sends discarded because the target was not in
	// the view — the observable of the §3 Problem.
	droppedStale atomic.Uint64

	hSend, hRecv, hRetransmit, hViewChange *core.Handler
}

func newRelComm(self transport.NodeID, initial *View, rto time.Duration, window int, ev *events) *RelComm {
	rc := &RelComm{
		mp:      core.NewMicroprotocol("relcomm"),
		self:    self,
		epoch:   rand.Uint32(),
		rto:     rto,
		window:  window,
		ev:      ev,
		nextSeq: make(map[transport.NodeID]uint64),
		pending: make(map[transport.NodeID]map[uint64]*pendingSend),
		queued:  make(map[transport.NodeID][][]byte),
		peers:   make(map[transport.NodeID]*peerIn),
	}
	rc.view.Store(initial)
	rc.hSend = rc.mp.AddHandler("send", rc.send)
	rc.hRecv = rc.mp.AddHandler("recv", rc.recv)
	rc.hRetransmit = rc.mp.AddHandler("retransmit", rc.retransmit)
	rc.hViewChange = rc.mp.AddHandler("viewChange", rc.viewChange)
	return rc
}

// send implements the paper's "handler send (m, target): if (target in
// view) try to send m to target", plus flow control (paper §5 lists
// "message flow control" as part of the implementation): at most `window`
// messages per peer may be unacknowledged; the rest queue and flow as
// acks open the window — this is also what makes the view filter's
// "necessary to implement finite buffers" remark (§3) concrete.
func (rc *RelComm) send(ctx *core.Context, msg core.Message) error {
	req := msg.(rcSendReq)
	if !rc.view.Load().Contains(req.to) {
		rc.droppedStale.Add(1)
		return nil
	}
	if rc.window > 0 && len(rc.pending[req.to]) >= rc.window {
		rc.queued[req.to] = append(rc.queued[req.to], req.inner)
		return nil
	}
	return rc.transmit(ctx, req.to, req.inner)
}

// transmit assigns a sequence number, buffers for retransmission, and
// hands the datagram to NetOut.
func (rc *RelComm) transmit(ctx *core.Context, to transport.NodeID, inner []byte) error {
	rc.nextSeq[to]++
	seq := rc.nextSeq[to]
	p := rc.pending[to]
	if p == nil {
		p = make(map[uint64]*pendingSend)
		rc.pending[to] = p
	}
	p[seq] = &pendingSend{inner: inner, sentAt: time.Now()}
	return ctx.Trigger(rc.ev.NetSend, outDatagram{to: to, data: encodeData(rc.epoch, seq, inner)})
}

// drainQueue sends queued messages while the peer's window has space.
func (rc *RelComm) drainQueue(ctx *core.Context, to transport.NodeID) error {
	for len(rc.queued[to]) > 0 && (rc.window <= 0 || len(rc.pending[to]) < rc.window) {
		inner := rc.queued[to][0]
		rc.queued[to] = rc.queued[to][1:]
		if !rc.view.Load().Contains(to) {
			rc.droppedStale.Add(1)
			continue
		}
		if err := rc.transmit(ctx, to, inner); err != nil {
			return err
		}
	}
	if len(rc.queued[to]) == 0 {
		delete(rc.queued, to)
	}
	return nil
}

// recv handles an incoming datagram: data messages are acknowledged,
// deduplicated and — if the sender is in the current view — handed upward
// via FromRComm; acks clear the retransmission buffer.
func (rc *RelComm) recv(ctx *core.Context, msg core.Message) error {
	d := msg.(transport.Datagram)
	r := wire.NewReader(d.Payload)
	switch kind := r.U8(); kind {
	case dgData:
		epoch := r.U32()
		seq := r.U64()
		inner := r.BytesPrefixed()
		if err := r.Err(); err != nil {
			return err
		}
		// Ack unconditionally (duplicates mean the ack was lost), echoing
		// the sender's epoch so it can reject acks meant for a previous
		// incarnation of itself.
		if err := ctx.Trigger(rc.ev.NetSend, outDatagram{to: d.From, data: encodeAck(epoch, seq)}); err != nil {
			return err
		}
		p := rc.peers[d.From]
		if p == nil {
			p = &peerIn{epoch: epoch}
			rc.peers[d.From] = p
		} else if p.epoch != epoch {
			// The peer restarted into a new incarnation: its sequence
			// space starts over, so the old dedup window would swallow
			// everything it now sends.
			*p = peerIn{epoch: epoch}
		}
		if !p.seen.Mark(seq) {
			return nil
		}
		if !rc.view.Load().Contains(d.From) {
			return nil
		}
		return ctx.AsyncTriggerAll(rc.ev.FromRComm, rcRecvd{sender: d.From, inner: append([]byte(nil), inner...)})
	case dgAck:
		epoch := r.U32()
		seq := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if epoch != rc.epoch {
			return nil // ack for a previous incarnation of this site
		}
		if p := rc.pending[d.From]; p != nil {
			delete(p, seq)
		}
		return rc.drainQueue(ctx, d.From)
	default:
		return nil // unknown kind: drop
	}
}

// retransmit re-sends every unacknowledged message older than the RTO.
// It runs as its own timer-driven computation.
func (rc *RelComm) retransmit(ctx *core.Context, _ core.Message) error {
	now := time.Now()
	for to, msgs := range rc.pending {
		for seq, p := range msgs {
			if now.Sub(p.sentAt) < rc.rto {
				continue
			}
			p.sentAt = now
			if err := ctx.Trigger(rc.ev.NetSend, outDatagram{to: to, data: encodeData(rc.epoch, seq, p.inner)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// viewChange installs a new view and stops retransmitting to (or queueing
// for) removed sites.
func (rc *RelComm) viewChange(_ *core.Context, msg core.Message) error {
	v := msg.(*View)
	rc.view.Store(v)
	for to := range rc.pending {
		if !v.Contains(to) {
			delete(rc.pending, to)
		}
	}
	for to := range rc.queued {
		if !v.Contains(to) {
			rc.droppedStale.Add(uint64(len(rc.queued[to])))
			delete(rc.queued, to)
		}
	}
	return nil
}

// Queued reports messages waiting for window space to the peer (tests).
func (rc *RelComm) Queued(to transport.NodeID) int { return len(rc.queued[to]) }

// DroppedStale reports sends dropped by the view filter (E6 observable).
func (rc *RelComm) DroppedStale() uint64 { return rc.droppedStale.Load() }
