package gc

import (
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// suspicion announces that a site is suspected to have crashed.
type suspicion struct {
	site transport.NodeID
}

// FD is a heartbeat failure detector in the eventually-perfect style: each
// tick it beats every view member and suspects any member not heard from
// within the suspicion timeout. Suspicions are announced once per
// transition via the Suspect event; hearing from a suspect again clears
// the suspicion locally (consensus keeps its own record, so no Trust
// event is needed for the protocols built here).
type FD struct {
	mp           *core.Microprotocol
	self         transport.NodeID
	ev           *events
	suspectAfter time.Duration

	view      *View
	lastHeard map[transport.NodeID]time.Time
	suspected map[transport.NodeID]bool

	hTick, hBeat, hViewChange *core.Handler
}

func newFD(self transport.NodeID, initial *View, suspectAfter time.Duration, ev *events) *FD {
	f := &FD{
		mp:           core.NewMicroprotocol("fd"),
		self:         self,
		ev:           ev,
		suspectAfter: suspectAfter,
		view:         initial,
		lastHeard:    make(map[transport.NodeID]time.Time),
		suspected:    make(map[transport.NodeID]bool),
	}
	now := time.Now()
	for _, m := range initial.Members() {
		f.lastHeard[m] = now
	}
	f.hTick = f.mp.AddHandler("tick", f.tick)
	f.hBeat = f.mp.AddHandler("beat", f.beat)
	f.hViewChange = f.mp.AddHandler("viewChange", f.viewChange)
	return f
}

// tick beats every peer and raises suspicions for silent ones.
func (f *FD) tick(ctx *core.Context, _ core.Message) error {
	now := time.Now()
	beat := encodeBeat()
	for _, m := range f.view.Members() {
		if m == f.self {
			continue
		}
		if err := ctx.Trigger(f.ev.NetSend, outDatagram{to: m, data: beat}); err != nil {
			return err
		}
		if !f.suspected[m] && now.Sub(f.lastHeard[m]) > f.suspectAfter {
			f.suspected[m] = true
			if err := ctx.TriggerAll(f.ev.Suspect, suspicion{site: m}); err != nil {
				return err
			}
		}
	}
	return nil
}

// beat records a heartbeat from a peer.
func (f *FD) beat(_ *core.Context, msg core.Message) error {
	from := msg.(transport.Datagram).From
	f.lastHeard[from] = time.Now()
	delete(f.suspected, from)
	return nil
}

// viewChange adopts the new view, granting fresh members a full timeout.
func (f *FD) viewChange(_ *core.Context, msg core.Message) error {
	v := msg.(*View)
	now := time.Now()
	for _, m := range v.Members() {
		if !f.view.Contains(m) {
			f.lastHeard[m] = now
		}
	}
	f.view = v
	return nil
}
