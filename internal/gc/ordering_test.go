package gc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// TestFifoPerOriginOrder: with heavy reordering delays, each origin's
// FBcast stream is delivered in send order at every site.
func TestFifoPerOriginOrder(t *testing.T) {
	net := simnet.New(simnet.Config{
		Nodes: 3, MinDelay: 10 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Seed: 110,
	})
	defer net.Close()
	view := NewView(0, 1, 2)
	var mu sync.Mutex
	got := map[simnet.NodeID]map[simnet.NodeID][]string{} // site → origin → msgs
	sites := map[simnet.NodeID]*Site{}
	for i := simnet.NodeID(0); i < 3; i++ {
		i := i
		got[i] = map[simnet.NodeID][]string{}
		sites[i] = NewSite(Config{
			Net: net, ID: i, InitialView: view, FDInterval: -1,
			FDeliver: func(from simnet.NodeID, data []byte) {
				mu.Lock()
				got[i][from] = append(got[i][from], string(data))
				mu.Unlock()
			},
		})
		sites[i].Start()
	}
	defer func() {
		for id, s := range sites {
			s.Stop()
			for _, err := range s.Errs() {
				t.Errorf("site %d: %v", id, err)
			}
		}
	}()

	const perSite = 8
	var wg sync.WaitGroup
	for id := simnet.NodeID(0); id < 3; id++ {
		wg.Add(1)
		go func(id simnet.NodeID) {
			defer wg.Done()
			for k := 0; k < perSite; k++ {
				if err := sites[id].FBcast([]byte(fmt.Sprintf("s%d-%d", id, k))); err != nil {
					t.Error(err)
				}
			}
		}(id)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	complete := func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, perOrigin := range got {
			total := 0
			for _, msgs := range perOrigin {
				total += len(msgs)
			}
			if total < 3*perSite {
				return false
			}
		}
		return true
	}
	for !complete() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for FIFO deliveries")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for site, perOrigin := range got {
		for origin, msgs := range perOrigin {
			for k, m := range msgs {
				if m != fmt.Sprintf("s%d-%d", origin, k) {
					t.Fatalf("site %d, origin %d: stream %v violates FIFO", site, origin, msgs)
				}
			}
		}
	}
}

// causalUnit drives one Causal microprotocol directly with crafted
// deliveries, for the deterministic textbook scenario.
type causalUnit struct {
	s    *core.Stack
	c    *Causal
	ev   *events
	spec *core.Spec
	got  []string
}

func newCausalUnit(t *testing.T, self simnet.NodeID) *causalUnit {
	t.Helper()
	u := &causalUnit{ev: newEvents()}
	u.s = core.NewStack(cc.NewVCABasic())
	u.c = newCausal(self, u.ev, func(_ simnet.NodeID, data []byte) {
		u.got = append(u.got, string(data))
	})
	capture := core.NewMicroprotocol("capture")
	hB := capture.AddHandler("bcast", func(*core.Context, core.Message) error { return nil })
	u.s.Register(u.c.mp, capture)
	u.s.Bind(u.ev.Bcast, hB)
	u.s.Bind(u.ev.DeliverOut, u.c.hRecv)
	u.s.Bind(u.ev.CausalEv, u.c.hBcast)
	u.spec = core.Access(u.c.mp, capture)
	return u
}

// craftCausal builds the CastMsg the causal layer would broadcast.
func craftCausal(origin simnet.NodeID, seq uint64, vc map[simnet.NodeID]uint64, data string) CastMsg {
	w := wire.NewWriter(64)
	encodeVC(w, vc)
	w.BytesPrefixed([]byte(data))
	return CastMsg{
		ID:   MsgID{Origin: origin, Seq: seq},
		Kind: castCausal,
		Data: append([]byte(nil), w.Bytes()...),
	}
}

func (u *causalUnit) feed(t *testing.T, m CastMsg) {
	t.Helper()
	if err := u.s.External(u.spec, u.ev.DeliverOut, m); err != nil {
		t.Fatal(err)
	}
}

// TestCausalBuffersUntilPastDelivered is the textbook case: site C gets
// m2 (B's reply to m1) before m1 itself; m2 must wait.
func TestCausalBuffersUntilPastDelivered(t *testing.T) {
	u := newCausalUnit(t, 2) // we are site C
	m1 := craftCausal(0, 1, map[simnet.NodeID]uint64{0: 1}, "m1")
	m2 := craftCausal(1, 1, map[simnet.NodeID]uint64{0: 1, 1: 1}, "m2") // B saw m1

	u.feed(t, m2)
	if len(u.got) != 0 || u.c.Pending() != 1 {
		t.Fatalf("m2 delivered before its causal past: got=%v pending=%d", u.got, u.c.Pending())
	}
	u.feed(t, m1)
	if len(u.got) != 2 || u.got[0] != "m1" || u.got[1] != "m2" {
		t.Fatalf("causal order broken: %v", u.got)
	}
	if u.c.Pending() != 0 {
		t.Fatalf("pending = %d", u.c.Pending())
	}
}

func TestCausalDuplicateDropped(t *testing.T) {
	u := newCausalUnit(t, 2)
	m1 := craftCausal(0, 1, map[simnet.NodeID]uint64{0: 1}, "m1")
	u.feed(t, m1)
	u.feed(t, m1)
	if len(u.got) != 1 {
		t.Fatalf("duplicate delivered: %v", u.got)
	}
}

func TestCausalConcurrentMessagesAnyOrder(t *testing.T) {
	u := newCausalUnit(t, 2)
	// Two concurrent messages (neither saw the other): both deliverable
	// immediately, in arrival order.
	ma := craftCausal(0, 1, map[simnet.NodeID]uint64{0: 1}, "ma")
	mb := craftCausal(1, 1, map[simnet.NodeID]uint64{1: 1}, "mb")
	u.feed(t, mb)
	u.feed(t, ma)
	if len(u.got) != 2 || u.got[0] != "mb" || u.got[1] != "ma" {
		t.Fatalf("got %v", u.got)
	}
}

func TestCausalSenderFIFOGap(t *testing.T) {
	u := newCausalUnit(t, 2)
	// Second message from A arrives first: it must wait for the first
	// (causal order subsumes sender FIFO).
	a2 := craftCausal(0, 2, map[simnet.NodeID]uint64{0: 2}, "a2")
	a1 := craftCausal(0, 1, map[simnet.NodeID]uint64{0: 1}, "a1")
	u.feed(t, a2)
	if len(u.got) != 0 {
		t.Fatalf("gap jumped: %v", u.got)
	}
	u.feed(t, a1)
	if len(u.got) != 2 || u.got[0] != "a1" || u.got[1] != "a2" {
		t.Fatalf("got %v", u.got)
	}
}

// TestCausalEndToEnd: B replies to A's message; C must never see the
// reply first, across many reordering trials on a real network.
func TestCausalEndToEnd(t *testing.T) {
	net := simnet.New(simnet.Config{
		Nodes: 3, MinDelay: 10 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Seed: 111,
	})
	defer net.Close()
	view := NewView(0, 1, 2)
	var mu sync.Mutex
	order := map[simnet.NodeID][]string{}
	sites := map[simnet.NodeID]*Site{}
	replied := make(chan struct{}, 64)
	for i := simnet.NodeID(0); i < 3; i++ {
		i := i
		sites[i] = NewSite(Config{
			Net: net, ID: i, InitialView: view, FDInterval: -1,
			CDeliver: func(from simnet.NodeID, data []byte) {
				mu.Lock()
				order[i] = append(order[i], string(data))
				mu.Unlock()
				if i == 1 && len(data) >= 3 && string(data[:3]) == "msg" {
					replied <- struct{}{} // signal B's application to reply
				}
			},
		})
		sites[i].Start()
	}
	defer func() {
		for id, s := range sites {
			s.Stop()
			for _, err := range s.Errs() {
				t.Errorf("site %d: %v", id, err)
			}
		}
	}()

	const rounds = 6
	go func() {
		for range replied {
			// B replies from its own goroutine (a caused computation is
			// a new external event, paper §2).
			_ = sites[1].CBcast([]byte("reply"))
		}
	}()
	for r := 0; r < rounds; r++ {
		if err := sites[0].CBcast([]byte(fmt.Sprintf("msg%d", r))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(order[2])
		mu.Unlock()
		if n >= 2*rounds {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("timeout; site 2 got %v", order[2])
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	// At every site: the number of replies delivered never exceeds the
	// number of msgs delivered at any prefix (a reply is caused by a
	// msg, so causal order forbids reply-before-cause... each reply is
	// caused by SOME msg; count-wise, reply k requires ≥k msgs before).
	for id, seq := range order {
		msgs, replies := 0, 0
		for _, m := range seq {
			if m == "reply" {
				replies++
			} else {
				msgs++
			}
			if replies > msgs {
				t.Fatalf("site %d: reply before its cause in %v", id, seq)
			}
		}
	}
}
