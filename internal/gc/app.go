package gc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/transport"
)

// App is the application-facing microprotocol: it turns deliveries and
// view changes into upcalls. Upcalls run inside computations and must not
// call Site methods synchronously (spawn a goroutine for follow-up
// broadcasts — a caused computation is a new external event, paper §2).
//
// App instances are versioned: a '^' view operation delivered through
// the total order makes the site replace its App with a successor built
// for the new protocol version (Site.maybeUpgrade), swapping the stack's
// configuration epoch while computations keep running.
type App struct {
	mp  *core.Microprotocol
	ver uint16

	deliver  func(from transport.NodeID, data []byte)
	rdeliver func(from transport.NodeID, data []byte)
	onView   func(v *View)
	upgrade  func(proto uint16)

	hDeliver, hRDeliver, hViewChange *core.Handler
}

// appName names the App microprotocol for a protocol version; versions
// above the baseline carry the version so epoch histories and vet output
// show which incarnation a handler belongs to.
func appName(ver uint16) string {
	if ver <= 1 {
		return "app"
	}
	return fmt.Sprintf("app@v%d", ver)
}

func newApp(ver uint16, deliver, rdeliver func(from transport.NodeID, data []byte), onView func(*View), upgrade func(uint16)) *App {
	a := &App{
		mp:       core.NewMicroprotocol(appName(ver)),
		ver:      ver,
		deliver:  deliver,
		rdeliver: rdeliver,
		onView:   onView,
		upgrade:  upgrade,
	}
	a.hDeliver = a.mp.AddHandler("deliver", func(_ *core.Context, msg core.Message) error {
		m := msg.(CastMsg)
		if m.Kind == castApp && a.deliver != nil {
			a.deliver(m.ID.Origin, m.Data)
		}
		return nil
	})
	a.hRDeliver = a.mp.AddHandler("rdeliver", func(_ *core.Context, msg core.Message) error {
		m := msg.(CastMsg)
		if m.Kind == castRApp && a.rdeliver != nil {
			a.rdeliver(m.ID.Origin, m.Data)
		}
		return nil
	})
	a.hViewChange = a.mp.AddHandler("viewChange", func(_ *core.Context, msg core.Message) error {
		v := msg.(*View)
		if a.onView != nil {
			a.onView(v)
		}
		// A delivered protocol bump upgrades this very microprotocol:
		// the hook runs inside the deliverView computation, so every
		// member swaps at the same total-order point.
		if a.upgrade != nil && v.Proto() > a.ver {
			a.upgrade(v.Proto())
		}
		return nil
	})
	return a
}
