package gc

import (
	"repro/internal/core"
	"repro/internal/transport"
)

// App is the application-facing microprotocol: it turns deliveries and
// view changes into upcalls. Upcalls run inside computations and must not
// call Site methods synchronously (spawn a goroutine for follow-up
// broadcasts — a caused computation is a new external event, paper §2).
type App struct {
	mp *core.Microprotocol

	deliver  func(from transport.NodeID, data []byte)
	rdeliver func(from transport.NodeID, data []byte)
	onView   func(v *View)

	hDeliver, hRDeliver, hViewChange *core.Handler
}

func newApp(deliver, rdeliver func(from transport.NodeID, data []byte), onView func(*View)) *App {
	a := &App{
		mp:       core.NewMicroprotocol("app"),
		deliver:  deliver,
		rdeliver: rdeliver,
		onView:   onView,
	}
	a.hDeliver = a.mp.AddHandler("deliver", func(_ *core.Context, msg core.Message) error {
		m := msg.(CastMsg)
		if m.Kind == castApp && a.deliver != nil {
			a.deliver(m.ID.Origin, m.Data)
		}
		return nil
	})
	a.hRDeliver = a.mp.AddHandler("rdeliver", func(_ *core.Context, msg core.Message) error {
		m := msg.(CastMsg)
		if m.Kind == castRApp && a.rdeliver != nil {
			a.rdeliver(m.ID.Origin, m.Data)
		}
		return nil
	})
	a.hViewChange = a.mp.AddHandler("viewChange", func(_ *core.Context, msg core.Message) error {
		if a.onView != nil {
			a.onView(msg.(*View))
		}
		return nil
	})
	return a
}
