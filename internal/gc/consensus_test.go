package gc

import (
	"fmt"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// consHarness drives one Consensus microprotocol in isolation: SendOut and
// Decide are bound to capture handlers, and protocol messages are fed in
// as decoded FromRComm deliveries.
type consHarness struct {
	s       *core.Stack
	c       *Consensus
	ev      *events
	spec    *core.Spec
	sent    []rcSendReq
	decided []decision
}

func newConsHarness(t *testing.T, self simnet.NodeID, view *View) *consHarness {
	t.Helper()
	h := &consHarness{ev: newEvents()}
	h.s = core.NewStack(cc.NewVCABasic())
	h.c = newConsensus(self, view, h.ev)
	capture := core.NewMicroprotocol("capture")
	hSend := capture.AddHandler("send", func(_ *core.Context, msg core.Message) error {
		h.sent = append(h.sent, msg.(rcSendReq))
		return nil
	})
	hDecide := capture.AddHandler("decide", func(_ *core.Context, msg core.Message) error {
		h.decided = append(h.decided, msg.(decision))
		return nil
	})
	h.s.Register(h.c.mp, capture)
	h.s.Bind(h.ev.SendOut, hSend)
	h.s.Bind(h.ev.Decide, hDecide)
	h.s.Bind(h.ev.ProposeEv, h.c.hPropose)
	h.s.Bind(h.ev.FromRComm, h.c.hRecv)
	h.s.Bind(h.ev.Suspect, h.c.hSuspect)
	h.spec = core.Access(h.c.mp, capture)
	return h
}

func (h *consHarness) propose(t *testing.T, inst uint64, tag string) {
	t.Helper()
	v := []CastMsg{{ID: MsgID{Origin: 9, Seq: 1}, Kind: castApp, Data: []byte(tag)}}
	if err := h.s.External(h.spec, h.ev.ProposeEv, proposeReq{inst: inst, value: v}); err != nil {
		t.Fatal(err)
	}
}

func (h *consHarness) feed(t *testing.T, from simnet.NodeID, m consMsg) {
	t.Helper()
	if err := h.s.External(h.spec, h.ev.FromRComm, rcRecvd{sender: from, inner: encodeConsFrame(&m)}); err != nil {
		t.Fatal(err)
	}
}

func (h *consHarness) suspect(t *testing.T, site simnet.NodeID) {
	t.Helper()
	if err := h.s.External(h.spec, h.ev.Suspect, suspicion{site: site}); err != nil {
		t.Fatal(err)
	}
}

// sentOfType decodes captured sends of one message type.
func (h *consHarness) sentOfType(t *testing.T, typ uint8) []struct {
	to simnet.NodeID
	m  consMsg
} {
	t.Helper()
	var out []struct {
		to simnet.NodeID
		m  consMsg
	}
	for _, s := range h.sent {
		r := wire.NewReader(s.inner)
		if r.U8() != layerConsensus {
			continue
		}
		m := decodeConsMsg(r)
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
		if m.Type == typ {
			out = append(out, struct {
				to simnet.NodeID
				m  consMsg
			}{s.to, m})
		}
	}
	return out
}

func TestConsensusRound0CoordinatorPath(t *testing.T) {
	h := newConsHarness(t, 0, NewView(0, 1, 2)) // coord(inst 0, round 0) = 0
	h.propose(t, 0, "v")

	accepts := h.sentOfType(t, cAccept)
	if len(accepts) != 3 {
		t.Fatalf("ACCEPT sent to %d sites, want all 3", len(accepts))
	}
	if accepts[0].m.Round != 0 || !accepts[0].m.HasValue || string(accepts[0].m.Value[0].Data) != "v" {
		t.Fatalf("accept = %+v", accepts[0].m)
	}

	// Quorum (2 of 3) of ACCEPTED ⇒ DECIDE to all.
	h.feed(t, 0, consMsg{Type: cAccepted, Inst: 0, Round: 0})
	if len(h.sentOfType(t, cDecide)) != 0 {
		t.Fatal("decided before quorum")
	}
	h.feed(t, 1, consMsg{Type: cAccepted, Inst: 0, Round: 0})
	decides := h.sentOfType(t, cDecide)
	if len(decides) != 3 {
		t.Fatalf("DECIDE sent to %d sites, want 3", len(decides))
	}
	// Duplicate ACCEPTED must not re-decide.
	h.feed(t, 2, consMsg{Type: cAccepted, Inst: 0, Round: 0})
	if len(h.sentOfType(t, cDecide)) != 3 {
		t.Fatal("re-decided on late ACCEPTED")
	}

	// Our own DECIDE loopback raises the Decide event, exactly once.
	h.feed(t, 0, consMsg{Type: cDecide, Inst: 0, Round: 0, HasValue: true, Value: decides[0].m.Value})
	h.feed(t, 1, consMsg{Type: cDecide, Inst: 0, Round: 0, HasValue: true, Value: decides[0].m.Value})
	if len(h.decided) != 1 || string(h.decided[0].value[0].Data) != "v" {
		t.Fatalf("decided = %+v", h.decided)
	}
}

func TestConsensusProposerForwardsToCoordinator(t *testing.T) {
	h := newConsHarness(t, 1, NewView(0, 1, 2)) // not coordinator of inst 0
	h.propose(t, 0, "v")
	props := h.sentOfType(t, cPropose)
	if len(props) != 1 || props[0].to != 0 {
		t.Fatalf("PROPOSE routing = %+v", props)
	}
}

func TestConsensusAcceptorPath(t *testing.T) {
	h := newConsHarness(t, 2, NewView(0, 1, 2))
	val := []CastMsg{{ID: MsgID{Origin: 0, Seq: 1}, Kind: castApp, Data: []byte("x")}}
	h.feed(t, 0, consMsg{Type: cAccept, Inst: 0, Round: 0, HasValue: true, Value: val})
	acks := h.sentOfType(t, cAccepted)
	if len(acks) != 1 || acks[0].to != 0 || acks[0].m.Round != 0 {
		t.Fatalf("ACCEPTED = %+v", acks)
	}
	// A stale (lower-round) ACCEPT after promising a higher round is ignored.
	h.feed(t, 1, consMsg{Type: cPrepare, Inst: 0, Round: 3})
	if n := len(h.sentOfType(t, cPromise)); n != 1 {
		t.Fatalf("PROMISE count = %d", n)
	}
	h.feed(t, 0, consMsg{Type: cAccept, Inst: 0, Round: 1, HasValue: true, Value: val})
	if n := len(h.sentOfType(t, cAccepted)); n != 1 {
		t.Fatalf("stale ACCEPT was accepted; ACCEPTED count = %d", n)
	}
}

func TestConsensusPromiseCarriesAcceptedValue(t *testing.T) {
	h := newConsHarness(t, 2, NewView(0, 1, 2))
	val := []CastMsg{{ID: MsgID{Origin: 0, Seq: 1}, Kind: castApp, Data: []byte("locked-in")}}
	h.feed(t, 0, consMsg{Type: cAccept, Inst: 0, Round: 0, HasValue: true, Value: val})
	h.feed(t, 1, consMsg{Type: cPrepare, Inst: 0, Round: 2})
	proms := h.sentOfType(t, cPromise)
	if len(proms) != 1 || proms[0].to != 1 {
		t.Fatalf("PROMISE = %+v", proms)
	}
	if !proms[0].m.HasValue || proms[0].m.AccRound != 0 || string(proms[0].m.Value[0].Data) != "locked-in" {
		t.Fatalf("promise must carry the accepted value: %+v", proms[0].m)
	}
}

// TestConsensusNewCoordinatorAdoptsPromisedValue is the Paxos-safety
// heart: after suspicion promotes this site to coordinator, the quorum's
// highest-round accepted value wins over the site's own proposal.
func TestConsensusNewCoordinatorAdoptsPromisedValue(t *testing.T) {
	h := newConsHarness(t, 1, NewView(0, 1, 2)) // coord(inst 0, round 1) = 1
	h.propose(t, 0, "mine")                     // forwards to 0
	h.suspect(t, 0)                             // round 0 coordinator suspected

	preps := h.sentOfType(t, cPrepare)
	if len(preps) != 3 || preps[0].m.Round != 1 {
		t.Fatalf("PREPARE = %+v", preps)
	}

	locked := []CastMsg{{ID: MsgID{Origin: 0, Seq: 7}, Kind: castApp, Data: []byte("theirs")}}
	h.feed(t, 2, consMsg{Type: cPromise, Inst: 0, Round: 1, AccRound: 0, HasValue: true, Value: locked})
	h.feed(t, 1, consMsg{Type: cPromise, Inst: 0, Round: 1}) // own loopback, no accepted value

	accepts := h.sentOfType(t, cAccept)
	if len(accepts) != 3 {
		t.Fatalf("ACCEPT fan-out = %d", len(accepts))
	}
	if string(accepts[0].m.Value[0].Data) != "theirs" {
		t.Fatalf("coordinator must adopt the promised value, sent %q", accepts[0].m.Value[0].Data)
	}
}

// TestConsensusNewCoordinatorUsesOwnProposalWhenNoneAccepted: with no
// accepted value in the promise quorum, the coordinator's own proposal is
// chosen.
func TestConsensusNewCoordinatorUsesOwnProposal(t *testing.T) {
	h := newConsHarness(t, 1, NewView(0, 1, 2))
	h.propose(t, 0, "mine")
	h.suspect(t, 0)
	h.feed(t, 2, consMsg{Type: cPromise, Inst: 0, Round: 1})
	h.feed(t, 1, consMsg{Type: cPromise, Inst: 0, Round: 1})
	accepts := h.sentOfType(t, cAccept)
	if len(accepts) != 3 || string(accepts[0].m.Value[0].Data) != "mine" {
		t.Fatalf("accepts = %+v", accepts)
	}
}

// TestConsensusSuspicionReforwardsProposal: when the coordinator changes
// and this site is not the new one, its proposal is re-forwarded.
func TestConsensusSuspicionReforwards(t *testing.T) {
	h := newConsHarness(t, 2, NewView(0, 1, 2)) // coord(0,1)=1, not us
	h.propose(t, 0, "v")                        // → site 0
	h.suspect(t, 0)
	props := h.sentOfType(t, cPropose)
	if len(props) != 2 {
		t.Fatalf("PROPOSE count = %d, want re-forward", len(props))
	}
	if props[1].to != 1 {
		t.Fatalf("re-forward went to %d, want new coordinator 1", props[1].to)
	}
}

// TestConsensusSkipsSuspectedCoordinators: a fresh proposal jumps over
// already-suspected rounds.
func TestConsensusSkipsSuspected(t *testing.T) {
	h := newConsHarness(t, 2, NewView(0, 1, 2))
	h.suspect(t, 0)
	h.suspect(t, 1)
	h.propose(t, 0, "v") // rounds 0 (coord 0) and 1 (coord 1) are suspect → round 2, coord 2 = us
	if len(h.sentOfType(t, cPrepare)) != 3 {
		t.Fatal("expected to coordinate via PREPARE after skipping suspects")
	}
	if len(h.sentOfType(t, cPropose)) != 0 {
		t.Fatal("must not forward to suspected coordinators")
	}
}

func TestConsensusStalePrepareIgnored(t *testing.T) {
	h := newConsHarness(t, 2, NewView(0, 1, 2))
	h.feed(t, 1, consMsg{Type: cPrepare, Inst: 0, Round: 5})
	h.feed(t, 0, consMsg{Type: cPrepare, Inst: 0, Round: 2}) // stale
	proms := h.sentOfType(t, cPromise)
	if len(proms) != 1 || proms[0].m.Round != 5 {
		t.Fatalf("promises = %+v", proms)
	}
}

func TestConsensusInstancesIndependent(t *testing.T) {
	h := newConsHarness(t, 0, NewView(0, 1, 2))
	for inst := uint64(0); inst < 3; inst++ {
		coord := NewView(0, 1, 2).Coordinator(inst, 0)
		h.propose(t, inst, fmt.Sprintf("v%d", inst))
		if coord == 0 {
			if len(h.sentOfType(t, cAccept)) == 0 {
				t.Fatalf("inst %d: expected to coordinate", inst)
			}
		}
	}
	// Instance 1's coordinator is site 1: we forwarded.
	props := h.sentOfType(t, cPropose)
	if len(props) != 2 || props[0].to != 1 || props[1].to != 2 {
		t.Fatalf("forwards = %+v", props)
	}
}
