package gc_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/simnet"
)

// TestMembershipChurn runs a sequence of joins and leaves interleaved
// with broadcasts: all established sites must install the same view
// sequence (views ride the total order) and keep delivering throughout.
func TestMembershipChurn(t *testing.T) {
	c := newCluster(t, simnet.Config{
		Nodes: 5, MinDelay: 50 * time.Microsecond, MaxDelay: 400 * time.Microsecond, Seed: 101,
	})
	established := gc.NewView(0, 1)
	c.addSite(0, established, nil)
	c.addSite(1, established, nil)

	// send broadcasts and waits until every listed member delivered it.
	// The quiescence matters for the pre-join-history assertion below: a
	// frame still in flight during a join may legitimately straggle to
	// the joiner via rebroadcast (this stack is not view-synchronous);
	// once every member has seen a message, no one will rebroadcast it
	// into the new view.
	send := func(from simnet.NodeID, tag string, members ...simnet.NodeID) {
		t.Helper()
		if err := c.sites[from].ABcast([]byte(tag)); err != nil {
			t.Fatal(err)
		}
		c.waitFor(10*time.Second, tag+" delivered", func() bool {
			for _, id := range members {
				if !contains(c.adeliveries(id), tag) {
					return false
				}
			}
			return true
		})
	}
	waitView := func(pred func(*gc.View) bool, what string, ids ...simnet.NodeID) {
		t.Helper()
		c.waitFor(10*time.Second, what, func() bool {
			for _, id := range ids {
				if !pred(c.sites[id].View()) {
					return false
				}
			}
			return true
		})
	}

	send(0, "phase0", 0, 1)

	// Join 2, then 3 — each joiner already knows its view.
	c.addSite(2, gc.NewView(0, 1, 2), nil)
	if err := c.sites[0].Join(2); err != nil {
		t.Fatal(err)
	}
	waitView(func(v *gc.View) bool { return v.Contains(2) }, "view +2", 0, 1)
	send(1, "phase1", 0, 1, 2)

	c.addSite(3, gc.NewView(0, 1, 2, 3), nil)
	if err := c.sites[2].Join(3); err != nil {
		t.Fatal(err)
	}
	waitView(func(v *gc.View) bool { return v.Contains(3) }, "view +3", 0, 1, 2)
	send(2, "phase2", 0, 1, 2, 3)

	// Leave 1.
	if err := c.sites[0].Leave(1); err != nil {
		t.Fatal(err)
	}
	waitView(func(v *gc.View) bool { return !v.Contains(1) }, "view -1", 0, 2, 3)
	send(3, "phase3", 0, 2, 3)

	// Every remaining member delivers phase3; the late joiners deliver
	// the phases after their join.
	c.waitFor(10*time.Second, "phase3 at survivors", func() bool {
		for _, id := range []simnet.NodeID{0, 2, 3} {
			if !contains(c.adeliveries(id), "phase3") {
				return false
			}
		}
		return true
	})
	// Site 3 joined after phase1: it must not have pre-join history.
	for _, m := range c.adeliveries(3) {
		if m == "phase0" || m == "phase1" {
			t.Fatalf("late joiner delivered pre-join message %q", m)
		}
	}
	// View sequences: same order of view strings at 0 (all four changes)
	// and matching suffixes at late joiners.
	c.mu.Lock()
	v0 := append([]string(nil), c.views[0]...)
	v2 := append([]string(nil), c.views[2]...)
	c.mu.Unlock()
	want := []string{"{0,1,2}", "{0,1,2,3}", "{0,2,3}"}
	if len(v0) != 3 {
		t.Fatalf("site 0 views = %v", v0)
	}
	for i, w := range want {
		if v0[i] != w {
			t.Fatalf("site 0 view sequence = %v, want %v", v0, want)
		}
	}
	// Site 2's first view change observation is [+3] (it joined in [+2]).
	if len(v2) == 0 || v2[0] != "{0,1,2,3}" {
		t.Fatalf("site 2 views = %v", v2)
	}
}

// TestSoakManyMessagesUnderChurnFreeLoad pushes a few hundred messages
// through a 3-site group and checks exactly-once total order end to end.
func TestSoakManyMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	c := newCluster(t, simnet.Config{
		Nodes: 3, MinDelay: 10 * time.Microsecond, MaxDelay: 150 * time.Microsecond,
		LossProb: 0.05, Seed: 103,
	})
	view := gc.NewView(0, 1, 2)
	for id := simnet.NodeID(0); id < 3; id++ {
		c.addSite(id, view, func(cfg *gc.Config) { cfg.RTO = 15 * time.Millisecond })
	}
	const total = 240
	done := make(chan error, 3)
	for id := simnet.NodeID(0); id < 3; id++ {
		go func(id simnet.NodeID) {
			for i := 0; i < total/3; i++ {
				if err := c.sites[id].ABcast([]byte(fmt.Sprintf("s%d-%d", id, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(id)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for id := simnet.NodeID(0); id < 3; id++ {
		c.waitDeliveredAt(id, total)
	}
	ref := c.adeliveries(0)
	seen := map[string]bool{}
	for _, m := range ref {
		if seen[m] {
			t.Fatalf("duplicate delivery %q", m)
		}
		seen[m] = true
	}
	for id := simnet.NodeID(1); id < 3; id++ {
		got := c.adeliveries(id)
		for i := 0; i < total; i++ {
			if got[i] != ref[i] {
				t.Fatalf("total order diverged at %d", i)
			}
		}
	}
}
