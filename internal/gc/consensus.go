package gc

import (
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// proposeReq asks consensus to decide a value for an instance.
type proposeReq struct {
	inst  uint64
	value []CastMsg
}

// decision announces a decided instance (the Decide event message).
type decision struct {
	inst  uint64
	value []CastMsg
}

// promiseVal is what an acceptor reports in a PROMISE: its last accepted
// round and value, if any.
type promiseVal struct {
	accRound uint32
	hasAcc   bool
	value    []CastMsg
}

// consInst is the per-instance consensus state machine.
type consInst struct {
	round    uint32 // current round this site participates in
	promised uint32 // highest round promised / accepted for
	accRound uint32 // round of the last accepted value
	accValue []CastMsg
	hasAcc   bool
	proposal []CastMsg // locally known proposal (own or forwarded)
	hasProp  bool
	decided  bool
	// decidedVal keeps the decided value so a late proposer — typically a
	// joiner whose sync point lies past a decision it never received —
	// can be answered with a replayed DECIDE instead of stalling forever.
	decidedVal []CastMsg

	// Coordinator-side bookkeeping.
	prepared    bool
	prepRound   uint32
	promises    map[transport.NodeID]promiseVal
	acceptSent  bool
	acceptRound uint32
	acceptVal   []CastMsg
	accepts     map[transport.NodeID]bool
	decideSent  bool
}

// Consensus is the distributed consensus microprotocol the paper's atomic
// broadcast builds on (§3). It runs one single-decree, majority-quorum,
// rotating-coordinator agreement per instance:
//
//   - Round 0 belongs to its coordinator, which may send ACCEPT directly.
//   - Higher rounds require a PREPARE/PROMISE phase; the coordinator
//     adopts the value of the highest-round promise, or its own proposal,
//     or an empty batch (which merely burns the instance).
//   - A quorum of ACCEPTED yields a DECIDE broadcast.
//   - Failure-detector suspicions advance the round past suspected
//     coordinators; a site that becomes coordinator runs PREPARE, and
//     proposers re-forward their proposal to the new coordinator.
//
// All messages travel over RelComm (reliable), including self-addressed
// ones — the coordinator's own promise/accept arrives as a loopback, which
// keeps every path uniform.
type Consensus struct {
	mp   *core.Microprotocol
	self transport.NodeID
	ev   *events

	view     *View
	suspects map[transport.NodeID]bool
	insts    map[uint64]*consInst

	hPropose, hRecv, hSuspect, hViewChange *core.Handler
}

func newConsensus(self transport.NodeID, initial *View, ev *events) *Consensus {
	c := &Consensus{
		mp:       core.NewMicroprotocol("consensus"),
		self:     self,
		ev:       ev,
		view:     initial,
		suspects: make(map[transport.NodeID]bool),
		insts:    make(map[uint64]*consInst),
	}
	c.hPropose = c.mp.AddHandler("propose", c.propose)
	c.hRecv = c.mp.AddHandler("recv", c.recv)
	c.hSuspect = c.mp.AddHandler("suspect", c.suspect)
	c.hViewChange = c.mp.AddHandler("viewChange", c.viewChange)
	return c
}

func (c *Consensus) get(inst uint64) *consInst {
	st := c.insts[inst]
	if st == nil {
		st = &consInst{}
		c.insts[inst] = st
	}
	return st
}

func (c *Consensus) sendTo(ctx *core.Context, to transport.NodeID, m *consMsg) error {
	return ctx.Trigger(c.ev.SendOut, rcSendReq{to: to, inner: encodeConsFrame(m)})
}

func (c *Consensus) sendAll(ctx *core.Context, m *consMsg) error {
	frame := encodeConsFrame(m)
	for _, site := range c.view.Members() {
		if err := ctx.Trigger(c.ev.SendOut, rcSendReq{to: site, inner: frame}); err != nil {
			return err
		}
	}
	return nil
}

// advanceRounds moves past rounds whose coordinator is suspected (at most
// one full rotation, in case everyone is suspected).
func (c *Consensus) advanceRounds(inst uint64, st *consInst) {
	for i := 0; i < c.view.Size() && c.suspects[c.view.Coordinator(inst, st.round)]; i++ {
		st.round++
	}
}

// propose handles a local proposal (from ABcast).
func (c *Consensus) propose(ctx *core.Context, msg core.Message) error {
	req := msg.(proposeReq)
	st := c.get(req.inst)
	if st.decided {
		return nil
	}
	if !st.hasProp {
		st.hasProp = true
		st.proposal = req.value
	}
	c.advanceRounds(req.inst, st)
	coord := c.view.Coordinator(req.inst, st.round)
	if coord == c.self {
		return c.tryCoordinate(ctx, req.inst, st)
	}
	return c.sendTo(ctx, coord, &consMsg{Type: cPropose, Inst: req.inst, Round: st.round, HasValue: true, Value: st.proposal})
}

// tryCoordinate drives the coordinator role for the current round.
func (c *Consensus) tryCoordinate(ctx *core.Context, inst uint64, st *consInst) error {
	if st.decided || c.view.Coordinator(inst, st.round) != c.self {
		return nil
	}
	if st.round == 0 {
		// Round 0 is pre-prepared: ACCEPT directly.
		if !st.acceptSent && st.hasProp {
			return c.sendAccept(ctx, inst, st, st.proposal)
		}
		return nil
	}
	if !st.prepared || st.prepRound != st.round {
		st.prepared = true
		st.prepRound = st.round
		st.promises = make(map[transport.NodeID]promiseVal)
		return c.sendAll(ctx, &consMsg{Type: cPrepare, Inst: inst, Round: st.round})
	}
	return nil
}

func (c *Consensus) sendAccept(ctx *core.Context, inst uint64, st *consInst, value []CastMsg) error {
	st.acceptSent = true
	st.acceptRound = st.round
	st.acceptVal = value
	st.accepts = make(map[transport.NodeID]bool)
	return c.sendAll(ctx, &consMsg{Type: cAccept, Inst: inst, Round: st.round, HasValue: true, Value: value})
}

// recv dispatches consensus protocol messages arriving via FromRComm.
func (c *Consensus) recv(ctx *core.Context, msg core.Message) error {
	in := msg.(rcRecvd)
	r := wire.NewReader(in.inner)
	if r.U8() != layerConsensus {
		return nil
	}
	m := decodeConsMsg(r)
	if err := r.Err(); err != nil {
		return err
	}
	st := c.get(m.Inst)
	switch m.Type {
	case cPropose:
		if st.decided {
			// Replay the decision: the proposer missed it (a joiner's
			// first instance, or a DECIDE lost to its dead incarnation).
			return c.sendTo(ctx, in.sender, &consMsg{Type: cDecide, Inst: m.Inst, Round: m.Round, HasValue: true, Value: st.decidedVal})
		}
		if !st.hasProp {
			st.hasProp = true
			st.proposal = m.Value
		}
		c.advanceRounds(m.Inst, st)
		return c.tryCoordinate(ctx, m.Inst, st)

	case cPrepare:
		if m.Round < st.promised {
			return nil
		}
		st.promised = m.Round
		if m.Round > st.round {
			st.round = m.Round
		}
		return c.sendTo(ctx, in.sender, &consMsg{
			Type: cPromise, Inst: m.Inst, Round: m.Round,
			AccRound: st.accRound, HasValue: st.hasAcc, Value: st.accValue,
		})

	case cPromise:
		if st.decided || !st.prepared || m.Round != st.round ||
			c.view.Coordinator(m.Inst, st.round) != c.self {
			return nil
		}
		pv := promiseVal{accRound: m.AccRound}
		if m.HasValue {
			pv.hasAcc = true
			pv.value = m.Value
		}
		st.promises[in.sender] = pv
		if len(st.promises) < c.view.Quorum() || (st.acceptSent && st.acceptRound == st.round) {
			return nil
		}
		// Adopt the highest-round accepted value; else the proposal;
		// else an empty batch, which just burns the instance.
		var value []CastMsg
		var best uint32
		var found bool
		for _, p := range st.promises {
			if p.hasAcc && (!found || p.accRound > best) {
				found = true
				best = p.accRound
				value = p.value
			}
		}
		if !found && st.hasProp {
			value = st.proposal
		}
		return c.sendAccept(ctx, m.Inst, st, value)

	case cAccept:
		if m.Round < st.promised {
			return nil
		}
		st.promised = m.Round
		st.accRound = m.Round
		st.accValue = m.Value
		st.hasAcc = true
		if m.Round > st.round {
			st.round = m.Round
		}
		return c.sendTo(ctx, in.sender, &consMsg{Type: cAccepted, Inst: m.Inst, Round: m.Round})

	case cAccepted:
		if st.decided || st.decideSent || !st.acceptSent || st.acceptRound != m.Round ||
			c.view.Coordinator(m.Inst, m.Round) != c.self {
			return nil
		}
		st.accepts[in.sender] = true
		if len(st.accepts) < c.view.Quorum() {
			return nil
		}
		st.decideSent = true
		return c.sendAll(ctx, &consMsg{Type: cDecide, Inst: m.Inst, Round: m.Round, HasValue: true, Value: st.acceptVal})

	case cDecide:
		if st.decided {
			return nil
		}
		st.decided = true
		st.decidedVal = m.Value
		return ctx.TriggerAll(c.ev.Decide, decision{inst: m.Inst, value: m.Value})
	}
	return nil
}

// suspect reacts to a failure-detector suspicion: undecided instances
// whose coordinator is the suspect advance their round; if this site is
// the new coordinator it runs PREPARE, otherwise it re-forwards its
// proposal so the new coordinator has a value.
func (c *Consensus) suspect(ctx *core.Context, msg core.Message) error {
	s := msg.(suspicion)
	c.suspects[s.site] = true
	for inst, st := range c.insts {
		if st.decided {
			continue
		}
		old := st.round
		c.advanceRounds(inst, st)
		if st.round == old {
			continue
		}
		coord := c.view.Coordinator(inst, st.round)
		if coord == c.self {
			if err := c.tryCoordinate(ctx, inst, st); err != nil {
				return err
			}
		} else if st.hasProp {
			if err := c.sendTo(ctx, coord, &consMsg{Type: cPropose, Inst: inst, Round: st.round, HasValue: true, Value: st.proposal}); err != nil {
				return err
			}
		}
	}
	return nil
}

// viewChange adopts the new view for quorum and coordinator computation.
func (c *Consensus) viewChange(_ *core.Context, msg core.Message) error {
	c.view = msg.(*View)
	return nil
}
