package gc

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/simnet"
)

// fdHarness drives one FD microprotocol, capturing heartbeats (NetSend)
// and suspicions.
type fdHarness struct {
	s          *core.Stack
	f          *FD
	ev         *events
	spec       *core.Spec
	beats      []outDatagram
	suspicions []simnet.NodeID
}

func newFDHarness(t *testing.T, self simnet.NodeID, view *View, timeout time.Duration) *fdHarness {
	t.Helper()
	h := &fdHarness{ev: newEvents()}
	h.s = core.NewStack(cc.NewVCABasic())
	h.f = newFD(self, view, timeout, h.ev)
	capture := core.NewMicroprotocol("capture")
	hSend := capture.AddHandler("send", func(_ *core.Context, msg core.Message) error {
		h.beats = append(h.beats, msg.(outDatagram))
		return nil
	})
	hSusp := capture.AddHandler("suspect", func(_ *core.Context, msg core.Message) error {
		h.suspicions = append(h.suspicions, msg.(suspicion).site)
		return nil
	})
	h.s.Register(h.f.mp, capture)
	h.s.Bind(h.ev.NetSend, hSend)
	h.s.Bind(h.ev.Suspect, hSusp)
	h.s.Bind(h.ev.FDTick, h.f.hTick)
	h.s.Bind(h.ev.FDBeat, h.f.hBeat)
	h.s.Bind(h.ev.ViewChange, h.f.hViewChange)
	h.spec = core.Access(h.f.mp, capture)
	return h
}

func (h *fdHarness) tick(t *testing.T) {
	t.Helper()
	if err := h.s.External(h.spec, h.ev.FDTick, nil); err != nil {
		t.Fatal(err)
	}
}

func (h *fdHarness) beat(t *testing.T, from simnet.NodeID) {
	t.Helper()
	d := simnet.Datagram{From: from, To: 0, Payload: encodeBeat()}
	if err := h.s.External(h.spec, h.ev.FDBeat, d); err != nil {
		t.Fatal(err)
	}
}

func TestFDBeatsEveryPeerNotSelf(t *testing.T) {
	h := newFDHarness(t, 0, NewView(0, 1, 2), time.Hour)
	h.tick(t)
	if len(h.beats) != 2 {
		t.Fatalf("beats = %d, want 2 (peers only)", len(h.beats))
	}
	tos := map[simnet.NodeID]bool{}
	for _, b := range h.beats {
		tos[b.to] = true
		if b.data[0] != dgBeat {
			t.Fatal("not a heartbeat datagram")
		}
	}
	if tos[0] || !tos[1] || !tos[2] {
		t.Fatalf("beat targets = %v", tos)
	}
}

func TestFDSuspectsSilentPeerOnce(t *testing.T) {
	h := newFDHarness(t, 0, NewView(0, 1), 10*time.Millisecond)
	h.tick(t)
	if len(h.suspicions) != 0 {
		t.Fatal("suspected within the grace period")
	}
	time.Sleep(20 * time.Millisecond)
	h.tick(t)
	if len(h.suspicions) != 1 || h.suspicions[0] != 1 {
		t.Fatalf("suspicions = %v", h.suspicions)
	}
	// Edge-triggered: silent ticks do not re-announce.
	h.tick(t)
	if len(h.suspicions) != 1 {
		t.Fatalf("re-announced suspicion: %v", h.suspicions)
	}
}

func TestFDBeatClearsSuspicion(t *testing.T) {
	h := newFDHarness(t, 0, NewView(0, 1), 10*time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	h.tick(t)
	if len(h.suspicions) != 1 {
		t.Fatalf("suspicions = %v", h.suspicions)
	}
	h.beat(t, 1) // peer is alive after all
	h.tick(t)
	if len(h.suspicions) != 1 {
		t.Fatal("suspicion not cleared by heartbeat")
	}
	// Goes silent again: a fresh suspicion fires.
	time.Sleep(20 * time.Millisecond)
	h.tick(t)
	if len(h.suspicions) != 2 {
		t.Fatalf("suspicions = %v", h.suspicions)
	}
}

func TestFDNewMemberGetsGracePeriod(t *testing.T) {
	h := newFDHarness(t, 0, NewView(0, 1), 15*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	// Site 2 joins right before the tick: it must not be insta-suspected
	// even though it has never been heard from.
	if err := h.s.External(h.spec, h.ev.ViewChange, NewView(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	h.tick(t)
	for _, s := range h.suspicions {
		if s == 2 {
			t.Fatal("fresh member suspected without a grace period")
		}
	}
}

// membHarness drives one Membership microprotocol, capturing the
// ViewChange fan-out, ABcast requests, and sync requests.
type membHarness struct {
	s        *core.Stack
	m        *Membership
	ev       *events
	spec     *core.Spec
	views    []*View
	abcasts  []abcastReq
	syncReqs []simnet.NodeID
}

func newMembHarness(t *testing.T, self simnet.NodeID, view *View) *membHarness {
	t.Helper()
	h := &membHarness{ev: newEvents()}
	h.s = core.NewStack(cc.NewVCABasic())
	h.m = newMembership(self, view, h.ev)
	capture := core.NewMicroprotocol("capture")
	hView := capture.AddHandler("view", func(_ *core.Context, msg core.Message) error {
		h.views = append(h.views, msg.(*View))
		return nil
	})
	hAB := capture.AddHandler("abcast", func(_ *core.Context, msg core.Message) error {
		h.abcasts = append(h.abcasts, msg.(abcastReq))
		return nil
	})
	hSync := capture.AddHandler("sync", func(_ *core.Context, msg core.Message) error {
		h.syncReqs = append(h.syncReqs, msg.(simnet.NodeID))
		return nil
	})
	h.s.Register(h.m.mp, capture)
	h.s.Bind(h.ev.ViewChange, hView)
	h.s.Bind(h.ev.ABcastEv, hAB)
	h.s.Bind(h.ev.SyncReq, hSync)
	h.s.Bind(h.ev.JoinLeave, h.m.hJoinLeave)
	h.s.Bind(h.ev.ADeliver, h.m.hDeliverView)
	h.spec = core.Access(h.m.mp, capture)
	return h
}

func TestMembershipJoinLeaveABcasts(t *testing.T) {
	h := newMembHarness(t, 0, NewView(0, 1))
	if err := h.s.External(h.spec, h.ev.JoinLeave, joinLeaveReq{op: '+', site: 2}); err != nil {
		t.Fatal(err)
	}
	if len(h.abcasts) != 1 || h.abcasts[0].kind != castViewChg || h.abcasts[0].op != '+' || h.abcasts[0].site != 2 {
		t.Fatalf("abcasts = %+v", h.abcasts)
	}
}

func TestMembershipDeliverViewFansOut(t *testing.T) {
	h := newMembHarness(t, 0, NewView(0, 1))
	cm := CastMsg{ID: MsgID{Origin: 1, Seq: 1}, Kind: castViewChg, Op: '+', Site: 2}
	if err := h.s.External(h.spec, h.ev.ADeliver, cm); err != nil {
		t.Fatal(err)
	}
	if len(h.views) != 1 || !h.views[0].Contains(2) || h.views[0].Size() != 3 {
		t.Fatalf("views = %v", h.views)
	}
	if h.m.View().Size() != 3 {
		t.Fatal("membership's own view not updated")
	}
	// Established members sync the joiner.
	if len(h.syncReqs) != 1 || h.syncReqs[0] != 2 {
		t.Fatalf("syncReqs = %v", h.syncReqs)
	}
}

func TestMembershipJoinerDoesNotSyncItself(t *testing.T) {
	h := newMembHarness(t, 2, NewView(0, 1, 2)) // we are the joiner
	cm := CastMsg{ID: MsgID{Origin: 1, Seq: 1}, Kind: castViewChg, Op: '+', Site: 2}
	if err := h.s.External(h.spec, h.ev.ADeliver, cm); err != nil {
		t.Fatal(err)
	}
	if len(h.syncReqs) != 0 {
		t.Fatalf("joiner synced itself: %v", h.syncReqs)
	}
}

func TestMembershipLeaveNoSync(t *testing.T) {
	h := newMembHarness(t, 0, NewView(0, 1, 2))
	cm := CastMsg{ID: MsgID{Origin: 1, Seq: 1}, Kind: castViewChg, Op: '-', Site: 2}
	if err := h.s.External(h.spec, h.ev.ADeliver, cm); err != nil {
		t.Fatal(err)
	}
	if len(h.views) != 1 || h.views[0].Contains(2) {
		t.Fatalf("views = %v", h.views)
	}
	if len(h.syncReqs) != 0 {
		t.Fatalf("leave must not sync: %v", h.syncReqs)
	}
}

func TestMembershipIgnoresAppDeliveries(t *testing.T) {
	h := newMembHarness(t, 0, NewView(0, 1))
	cm := CastMsg{ID: MsgID{Origin: 1, Seq: 1}, Kind: castApp, Data: []byte("x")}
	if err := h.s.External(h.spec, h.ev.ADeliver, cm); err != nil {
		t.Fatal(err)
	}
	if len(h.views) != 0 {
		t.Fatal("app delivery changed the view")
	}
}
