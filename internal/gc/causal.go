package gc

import (
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Causal is the causal-order broadcast microprotocol (vector clocks, in
// the CBCAST tradition): a message is delivered only after every message
// that causally precedes it. It rides RelCast for reliability.
//
// Each site keeps a vector clock counting messages *delivered* per
// origin; a broadcast carries the sender's clock with its own entry
// pre-incremented. A received message m from s is deliverable when
//
//	m.vc[s]  == vc[s]+1            (next from its sender), and
//	m.vc[k]  <= vc[k]  for k ≠ s   (its causal past is delivered here).
//
// Vector entries are created on demand, so the protocol tolerates members
// joining mid-stream (a joiner misses pre-join history, as with the other
// broadcast kinds).
type Causal struct {
	mp   *core.Microprotocol
	self transport.NodeID
	ev   *events

	vc      map[transport.NodeID]uint64
	sent    uint64 // own broadcasts issued; may run ahead of vc[self]
	pending []causalMsg

	deliver func(from transport.NodeID, data []byte)

	hBcast, hRecv *core.Handler
}

type causalMsg struct {
	origin transport.NodeID
	vc     map[transport.NodeID]uint64
	data   []byte
}

func newCausal(self transport.NodeID, ev *events, deliver func(transport.NodeID, []byte)) *Causal {
	c := &Causal{
		mp:      core.NewMicroprotocol("causal"),
		self:    self,
		ev:      ev,
		vc:      make(map[transport.NodeID]uint64),
		deliver: deliver,
	}
	c.hBcast = c.mp.AddHandler("bcast", c.bcast)
	c.hRecv = c.mp.AddHandler("recv", c.recv)
	return c
}

func encodeVC(w *wire.Writer, vc map[transport.NodeID]uint64) {
	w.UVarint(uint64(len(vc)))
	for site, n := range vc {
		w.U16(uint16(site))
		w.U64(n)
	}
}

func decodeVC(r *wire.Reader) map[transport.NodeID]uint64 {
	n := r.UVarint()
	if n > 1<<16 {
		return nil
	}
	vc := make(map[transport.NodeID]uint64, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		site := transport.NodeID(r.U16())
		vc[site] = r.U64()
	}
	return vc
}

// bcast stamps the payload with the sender's vector clock, with its own
// entry taken from a separate send counter: the vc tracks *deliveries*,
// and a sender may issue several broadcasts before its own loopbacks
// return, each of which must still get a distinct, increasing stamp. The
// local delivery happens when the loopback copy arrives, like every other
// broadcast kind.
func (c *Causal) bcast(ctx *core.Context, msg core.Message) error {
	data := msg.([]byte)
	stamp := make(map[transport.NodeID]uint64, len(c.vc)+1)
	for k, v := range c.vc {
		stamp[k] = v
	}
	c.sent++
	stamp[c.self] = c.sent
	w := wire.NewWriter(16 + 10*len(stamp) + len(data))
	encodeVC(w, stamp)
	w.BytesPrefixed(data)
	return ctx.Trigger(c.ev.Bcast, &CastMsg{Kind: castCausal, Data: append([]byte(nil), w.Bytes()...)})
}

// recv buffers causal messages until deliverable, then drains everything
// the delivery unblocked.
func (c *Causal) recv(_ *core.Context, msg core.Message) error {
	m := msg.(CastMsg)
	if m.Kind != castCausal {
		return nil
	}
	r := wire.NewReader(m.Data)
	vc := decodeVC(r)
	data := r.BytesPrefixed()
	if err := r.Err(); err != nil {
		return err
	}
	if vc[m.ID.Origin] <= c.vc[m.ID.Origin] {
		return nil // duplicate (already delivered)
	}
	c.pending = append(c.pending, causalMsg{
		origin: m.ID.Origin,
		vc:     vc,
		data:   append([]byte(nil), data...),
	})
	c.drain()
	return nil
}

func (c *Causal) deliverable(m causalMsg) bool {
	if m.vc[m.origin] != c.vc[m.origin]+1 {
		return false
	}
	for site, n := range m.vc {
		if site != m.origin && n > c.vc[site] {
			return false
		}
	}
	return true
}

func (c *Causal) drain() {
	for progress := true; progress; {
		progress = false
		for i, m := range c.pending {
			if !c.deliverable(m) {
				continue
			}
			c.vc[m.origin] = m.vc[m.origin]
			if c.deliver != nil {
				c.deliver(m.origin, m.data)
			}
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			progress = true
			break
		}
	}
}

// Pending reports buffered undeliverable messages (tests).
func (c *Causal) Pending() int { return len(c.pending) }
