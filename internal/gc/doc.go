// Package gc is the group-communication system of paper §3, rebuilt from
// scratch as SAMOA microprotocols:
//
//	Membership ── view changes via atomic broadcast
//	ABcast     ── total-order broadcast: consensus on batches
//	Consensus  ── rotating-coordinator, majority-quorum consensus
//	Fifo       ── FIFO-order broadcast (per-origin sequence numbers)
//	Causal     ── causal-order broadcast (vector clocks)
//	RelCast    ── reliable broadcast (rebroadcast on first receipt)
//	RelComm    ── reliable point-to-point (seq/ack/retransmit/window)
//	FD         ── heartbeat failure detector
//	NetOut     ── datagram egress to the simulated network
//	App        ── delivery upcalls to the embedding application
//
// The four broadcast flavours — unordered (RBcast), FIFO (FBcast), causal
// (CBcast) and total (ABcast) — are the classic ordering spectrum of
// group-communication toolkits. The stack is not view-synchronous: a
// joiner may deliver messages that were in flight around its join, and
// misses pre-join history (ABcast fast-forwards the joiner's instance
// pointer via a SYNC message).
//
// A Site assembles one full stack per simnet node. Exactly as the paper
// prescribes (§4), every external event — a datagram arriving, an
// application broadcast, a timer firing — enters the stack through
// Isolated with a declared spec, and the configured concurrency controller
// enforces the isolation property across the computations.
//
// Consequently, microprotocol state carries no locks: handlers mutate
// plain maps and slices, and correctness under concurrency is exactly the
// isolation guarantee under test. The one exception is the group view
// held by RelComm and RelCast, stored through atomic pointers: under the
// deliberately unsafe None (Cactus-model) controller used by experiment
// E6, view reads and view installation race *logically* — the paper's §3
// "Problem" — and the atomic pointer keeps that a stale-read bug rather
// than an undefined data race.
//
// Handlers never block on the network: every protocol is an event-driven
// state machine, so computations always terminate — the liveness
// precondition of the versioning algorithms' completion rules.
package gc
