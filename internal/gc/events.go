package gc

import "repro/internal/core"

// events holds one site's event types — first-class values passed to the
// microprotocol constructors, exactly as the paper's Protocol parameters
// (e.g. "Protocol RelCast (SendOut, DeliverOut, Bcast, FromRComm,
// ViewChange : Event)").
type events struct {
	FromNet    *core.EventType // transport.Datagram → relcomm.recv
	NetSend    *core.EventType // outDatagram → netout.send
	SendOut    *core.EventType // rcSendReq → relcomm.send
	FromRComm  *core.EventType // rcRecvd → relcast.recv + consensus.recv
	Bcast      *core.EventType // *CastMsg → relcast.bcast
	DeliverOut *core.EventType // CastMsg → abcast.recv + app.rdeliver
	ABcastEv   *core.EventType // abcastReq → abcast.abcast
	FifoEv     *core.EventType // []byte → fifo.bcast
	CausalEv   *core.EventType // []byte → causal.bcast
	ProposeEv  *core.EventType // proposeReq → consensus.propose
	Decide     *core.EventType // decision → abcast.onDecide
	ADeliver   *core.EventType // CastMsg → membership.deliverView + app.deliver
	ViewChange *core.EventType // *View → relcast, relcomm, fd, consensus, app
	JoinLeave  *core.EventType // joinLeaveReq → membership.joinleave
	SyncReq    *core.EventType // transport.NodeID → abcast.sendSync
	PeerReset  *core.EventType // transport.NodeID → relcast.peerReset + abcast.peerReset
	RetrTick   *core.EventType // nil → relcomm.retransmit
	FDTick     *core.EventType // nil → fd.tick
	FDBeat     *core.EventType // transport.Datagram → fd.beat
	Suspect    *core.EventType // suspicion → consensus.suspect
}

func newEvents() *events {
	return &events{
		FromNet:    core.NewEventType("FromNet"),
		NetSend:    core.NewEventType("NetSend"),
		SendOut:    core.NewEventType("SendOut"),
		FromRComm:  core.NewEventType("FromRComm"),
		Bcast:      core.NewEventType("Bcast"),
		DeliverOut: core.NewEventType("DeliverOut"),
		ABcastEv:   core.NewEventType("ABcast"),
		FifoEv:     core.NewEventType("FBcast"),
		CausalEv:   core.NewEventType("CBcast"),
		ProposeEv:  core.NewEventType("Propose"),
		Decide:     core.NewEventType("Decide"),
		ADeliver:   core.NewEventType("ADeliver"),
		ViewChange: core.NewEventType("ViewChange"),
		JoinLeave:  core.NewEventType("JoinLeave"),
		SyncReq:    core.NewEventType("SyncReq"),
		PeerReset:  core.NewEventType("PeerReset"),
		RetrTick:   core.NewEventType("RetransmitTick"),
		FDTick:     core.NewEventType("FDTick"),
		FDBeat:     core.NewEventType("FDBeat"),
		Suspect:    core.NewEventType("Suspect"),
	}
}
