package gc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// TestStackExecutionSatisfiesIsolation is the repository's strongest
// end-to-end check: record every handler execution of real group-
// communication traffic (broadcasts, consensus, acks, timers) per site,
// and verify with the conflict-graph checker that each site's execution
// satisfies the isolation property — the paper's core guarantee, measured
// on the paper's own example system rather than a synthetic workload.
func TestStackExecutionSatisfiesIsolation(t *testing.T) {
	combos := []struct {
		name string
		mk   func() core.Controller
		kind gc.SpecKind
	}{
		{"vca-basic", func() core.Controller { return cc.NewVCABasic() }, gc.SpecBasic},
		{"vca-bound", func() core.Controller { return cc.NewVCABound() }, gc.SpecBound},
		{"vca-route", func() core.Controller { return cc.NewVCARoute() }, gc.SpecRoute},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			net := simnet.New(simnet.Config{
				Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 400 * time.Microsecond, Seed: 90,
			})
			defer net.Close()
			view := gc.NewView(0, 1, 2)
			recs := make([]*trace.Recorder, 3)
			sites := make([]*gc.Site, 3)
			var delivered sync.WaitGroup
			delivered.Add(3 * 6)
			for i := 0; i < 3; i++ {
				recs[i] = trace.NewRecorder()
				sites[i] = gc.NewSite(gc.Config{
					Net: net, ID: simnet.NodeID(i), InitialView: view,
					Controller: combo.mk(), SpecKind: combo.kind,
					FDInterval: 5 * time.Millisecond, // extra concurrent computations
					RTO:        10 * time.Millisecond,
					Tracer:     recs[i],
					Deliver:    func(simnet.NodeID, []byte) { delivered.Done() },
				})
				sites[i].Start()
			}
			defer func() {
				for i, s := range sites {
					s.Stop()
					for _, err := range s.Errs() {
						t.Errorf("site %d: %v", i, err)
					}
				}
			}()
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for k := 0; k < 2; k++ {
						if err := sites[i].ABcast([]byte(fmt.Sprintf("s%d-%d", i, k))); err != nil {
							t.Error(err)
						}
					}
				}(i)
			}
			wg.Wait()
			done := make(chan struct{})
			go func() { delivered.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				t.Fatal("timeout waiting for deliveries")
			}
			for i, rec := range recs {
				rep := rec.Check()
				if !rep.Serializable {
					t.Fatalf("site %d execution violates isolation: cycle %v", i, rep.Cycle)
				}
				if rep.Computations < 10 {
					t.Fatalf("site %d recorded only %d computations — trace wiring broken?", i, rep.Computations)
				}
			}
		})
	}
}
