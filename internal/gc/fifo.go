package gc

import (
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Fifo is the FIFO-order broadcast microprotocol: messages from one
// origin are delivered in the order that origin sent them; messages from
// different origins are unordered relative to each other. It rides
// RelCast for reliability and adds its own per-origin sequence numbers
// (RelCast's message IDs cannot be reused: the ID counter is shared by
// every broadcast kind, so one kind's view of it has gaps).
//
// Together with RelCast (unordered), Causal and ABcast (total), this
// completes the classic ordering spectrum of group-communication
// toolkits — the shape of the middleware the paper's §3 example is
// drawn from.
type Fifo struct {
	mp   *core.Microprotocol
	self transport.NodeID
	ev   *events

	nextOut uint64
	nextIn  map[transport.NodeID]uint64
	buffer  map[transport.NodeID]map[uint64][]byte

	deliver func(from transport.NodeID, data []byte)

	hBcast, hRecv *core.Handler
}

func newFifo(self transport.NodeID, ev *events, deliver func(transport.NodeID, []byte)) *Fifo {
	f := &Fifo{
		mp:      core.NewMicroprotocol("fifo"),
		self:    self,
		ev:      ev,
		nextIn:  make(map[transport.NodeID]uint64),
		buffer:  make(map[transport.NodeID]map[uint64][]byte),
		deliver: deliver,
	}
	f.hBcast = f.mp.AddHandler("bcast", f.bcast)
	f.hRecv = f.mp.AddHandler("recv", f.recv)
	return f
}

// bcast stamps the payload with the next per-origin FIFO sequence number
// and hands it to RelCast.
func (f *Fifo) bcast(ctx *core.Context, msg core.Message) error {
	data := msg.([]byte)
	f.nextOut++
	w := wire.NewWriter(12 + len(data))
	w.U64(f.nextOut)
	w.BytesPrefixed(data)
	return ctx.Trigger(f.ev.Bcast, &CastMsg{Kind: castFifo, Data: append([]byte(nil), w.Bytes()...)})
}

// recv buffers FIFO messages and releases each origin's stream in
// sequence.
func (f *Fifo) recv(_ *core.Context, msg core.Message) error {
	m := msg.(CastMsg)
	if m.Kind != castFifo {
		return nil
	}
	r := wire.NewReader(m.Data)
	fseq := r.U64()
	data := r.BytesPrefixed()
	if err := r.Err(); err != nil {
		return err
	}
	origin := m.ID.Origin
	next := f.nextIn[origin] + 1
	if fseq < next {
		return nil // duplicate
	}
	buf := f.buffer[origin]
	if buf == nil {
		buf = make(map[uint64][]byte)
		f.buffer[origin] = buf
	}
	if _, dup := buf[fseq]; dup {
		return nil
	}
	buf[fseq] = append([]byte(nil), data...)
	for {
		data, ok := buf[next]
		if !ok {
			f.nextIn[origin] = next - 1
			return nil
		}
		delete(buf, next)
		if f.deliver != nil {
			f.deliver(origin, data)
		}
		next++
	}
}
