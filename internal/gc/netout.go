package gc

import (
	"repro/internal/core"
	"repro/internal/transport"
)

// outDatagram asks NetOut to transmit bytes to a site.
type outDatagram struct {
	to   transport.NodeID
	data []byte
}

// NetOut is the egress microprotocol: the single place where the stack
// hands datagrams to the (simulated) network. Keeping egress behind a
// microprotocol keeps the whole stack inside the event model, so routing
// graphs and visit bounds can account for sends.
type NetOut struct {
	mp   *core.Microprotocol
	send *core.Handler
	node transport.Endpoint
}

func newNetOut(node transport.Endpoint) *NetOut {
	n := &NetOut{
		mp:   core.NewMicroprotocol("netout"),
		node: node,
	}
	n.send = n.mp.AddHandler("send", func(_ *core.Context, msg core.Message) error {
		d := msg.(outDatagram)
		n.node.Send(d.to, d.data)
		return nil
	})
	return n
}
