package gc

import (
	"fmt"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Datagram kinds (outermost byte on the wire).
const (
	dgData uint8 = 1 // RelComm data: seq + inner payload
	dgAck  uint8 = 2 // RelComm ack: seq
	dgBeat uint8 = 3 // failure-detector heartbeat
)

// Inner payload layers carried by RelComm (demultiplexed by the handlers
// bound to FromRComm, each of which ignores the other's layer).
const (
	layerRelCast   uint8 = 1
	layerConsensus uint8 = 2
	layerSync      uint8 = 3 // join-time state transfer: next ABcast instance
)

// Cast content kinds (what a delivered broadcast means).
const (
	castApp     uint8 = 1 // application payload, totally ordered by ABcast
	castViewChg uint8 = 2 // membership operation, totally ordered by ABcast
	castRApp    uint8 = 3 // application payload, plain reliable broadcast
	castFifo    uint8 = 4 // application payload, FIFO-ordered per origin
	castCausal  uint8 = 5 // application payload, causally ordered
)

// Consensus message types.
const (
	cPropose  uint8 = 1 // proposer → coordinator: please decide this value
	cPrepare  uint8 = 2 // coordinator → all: new round
	cPromise  uint8 = 3 // acceptor → coordinator: promise + last accepted
	cAccept   uint8 = 4 // coordinator → all: accept this value
	cAccepted uint8 = 5 // acceptor → coordinator: accepted
	cDecide   uint8 = 6 // coordinator → all: decision
)

// MsgID uniquely identifies a broadcast message: origin site plus a
// per-origin sequence number. It doubles as the total-order tie-breaker
// inside decided batches.
type MsgID struct {
	Origin transport.NodeID
	Seq    uint64
}

// Less orders IDs (origin, then seq).
func (a MsgID) Less(b MsgID) bool {
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	return a.Seq < b.Seq
}

// String implements fmt.Stringer.
func (a MsgID) String() string { return fmt.Sprintf("%d:%d", a.Origin, a.Seq) }

// CastMsg is the unit RelCast broadcasts and ABcast orders: an application
// payload or a membership operation.
type CastMsg struct {
	ID   MsgID
	Kind uint8 // castApp or castViewChg
	Data []byte
	Op   byte // '+' or '-' (castViewChg)
	Site transport.NodeID
}

func (m *CastMsg) encode(w *wire.Writer) {
	w.U16(uint16(m.ID.Origin))
	w.U64(m.ID.Seq)
	w.U8(m.Kind)
	switch m.Kind {
	case castViewChg:
		w.U8(m.Op)
		w.U16(uint16(m.Site))
	default:
		w.BytesPrefixed(m.Data)
	}
}

func decodeCastMsg(r *wire.Reader) CastMsg {
	var m CastMsg
	m.ID.Origin = transport.NodeID(r.U16())
	m.ID.Seq = r.U64()
	m.Kind = r.U8()
	switch m.Kind {
	case castViewChg:
		m.Op = r.U8()
		m.Site = transport.NodeID(r.U16())
	default:
		m.Data = append([]byte(nil), r.BytesPrefixed()...)
	}
	return m
}

// consMsg is one consensus protocol message.
type consMsg struct {
	Type     uint8
	Inst     uint64
	Round    uint32
	AccRound uint32 // cPromise: round of the piggybacked accepted value
	HasValue bool
	Value    []CastMsg
}

func (m *consMsg) encode(w *wire.Writer) {
	w.U8(m.Type)
	w.U64(m.Inst)
	w.U32(m.Round)
	w.U32(m.AccRound)
	w.Bool(m.HasValue)
	if m.HasValue {
		w.UVarint(uint64(len(m.Value)))
		for i := range m.Value {
			m.Value[i].encode(w)
		}
	}
}

func decodeConsMsg(r *wire.Reader) consMsg {
	var m consMsg
	m.Type = r.U8()
	m.Inst = r.U64()
	m.Round = r.U32()
	m.AccRound = r.U32()
	m.HasValue = r.Bool()
	if m.HasValue {
		n := r.UVarint()
		if n > 1<<16 {
			return m // sticky reader error will surface via r.Err()
		}
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			m.Value = append(m.Value, decodeCastMsg(r))
		}
	}
	return m
}

// encodeCastFrame wraps a CastMsg as a layerRelCast inner payload.
func encodeCastFrame(m *CastMsg) []byte {
	w := wire.NewWriter(32 + len(m.Data))
	w.U8(layerRelCast)
	m.encode(w)
	return append([]byte(nil), w.Bytes()...)
}

// encodeConsFrame wraps a consMsg as a layerConsensus inner payload.
func encodeConsFrame(m *consMsg) []byte {
	w := wire.NewWriter(64)
	w.U8(layerConsensus)
	m.encode(w)
	return append([]byte(nil), w.Bytes()...)
}

// encodeSyncFrame wraps the join-time state transfer as a layerSync inner
// payload: the next ABcast instance (where the total order resumes) plus
// an opaque application snapshot reflecting every delivery before it —
// possibly empty when the site runs no snapshot hook. Decided values
// carry full message contents, so beyond the snapshot a fresh member only
// needs to know where the order resumes.
func encodeSyncFrame(nextInst uint64, snap []byte) []byte {
	w := wire.NewWriter(16 + len(snap))
	w.U8(layerSync)
	w.U64(nextInst)
	w.BytesPrefixed(snap)
	return append([]byte(nil), w.Bytes()...)
}

// encodeData builds a RelComm data datagram. The epoch identifies the
// sender's RelComm incarnation: a crash-restarted process starts a fresh
// epoch, telling receivers to discard the dead incarnation's dedup state
// instead of silently swallowing the newcomer's restarted sequence space.
func encodeData(epoch uint32, seq uint64, inner []byte) []byte {
	w := wire.NewWriter(20 + len(inner))
	w.U8(dgData)
	w.U32(epoch)
	w.U64(seq)
	w.BytesPrefixed(inner)
	return append([]byte(nil), w.Bytes()...)
}

// encodeAck builds a RelComm ack datagram, echoing the epoch of the data
// datagram it acknowledges (so a sender ignores acks addressed to a
// previous incarnation of itself).
func encodeAck(epoch uint32, seq uint64) []byte {
	w := wire.NewWriter(13)
	w.U8(dgAck)
	w.U32(epoch)
	w.U64(seq)
	return append([]byte(nil), w.Bytes()...)
}

// encodeBeat builds a failure-detector heartbeat datagram.
func encodeBeat() []byte { return []byte{dgBeat} }
