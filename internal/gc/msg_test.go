package gc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
	"repro/internal/wire"
)

func TestCastMsgRoundTrip(t *testing.T) {
	for _, m := range []CastMsg{
		{ID: MsgID{Origin: 3, Seq: 42}, Kind: castApp, Data: []byte("payload")},
		{ID: MsgID{Origin: 0, Seq: 1}, Kind: castRApp, Data: nil},
		{ID: MsgID{Origin: 7, Seq: 9}, Kind: castViewChg, Op: '+', Site: 5},
		{ID: MsgID{Origin: 7, Seq: 10}, Kind: castViewChg, Op: '-', Site: 2},
	} {
		w := wire.NewWriter(64)
		m.encode(w)
		r := wire.NewReader(w.Bytes())
		got := decodeCastMsg(r)
		if r.Err() != nil {
			t.Fatalf("decode: %v", r.Err())
		}
		if got.ID != m.ID || got.Kind != m.Kind || got.Op != m.Op || got.Site != m.Site || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip: %+v != %+v", got, m)
		}
	}
}

func TestConsMsgRoundTrip(t *testing.T) {
	m := consMsg{
		Type: cAccept, Inst: 12, Round: 3, AccRound: 2, HasValue: true,
		Value: []CastMsg{
			{ID: MsgID{Origin: 1, Seq: 1}, Kind: castApp, Data: []byte("a")},
			{ID: MsgID{Origin: 2, Seq: 9}, Kind: castViewChg, Op: '+', Site: 4},
		},
	}
	w := wire.NewWriter(64)
	m.encode(w)
	r := wire.NewReader(w.Bytes())
	got := decodeConsMsg(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if got.Type != m.Type || got.Inst != m.Inst || got.Round != m.Round || len(got.Value) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Value[1].Site != 4 || got.Value[0].Data[0] != 'a' {
		t.Fatalf("value round trip: %+v", got.Value)
	}
}

func TestConsMsgNoValue(t *testing.T) {
	m := consMsg{Type: cPrepare, Inst: 1, Round: 7}
	w := wire.NewWriter(16)
	m.encode(w)
	got := decodeConsMsg(wire.NewReader(w.Bytes()))
	if got.HasValue || got.Round != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestFrameLayers(t *testing.T) {
	cm := CastMsg{ID: MsgID{Origin: 1, Seq: 2}, Kind: castApp, Data: []byte("x")}
	if f := encodeCastFrame(&cm); f[0] != layerRelCast {
		t.Fatal("cast frame layer")
	}
	if f := encodeConsFrame(&consMsg{Type: cDecide}); f[0] != layerConsensus {
		t.Fatal("cons frame layer")
	}
	if f := encodeSyncFrame(5, []byte("snap")); f[0] != layerSync {
		t.Fatal("sync frame layer")
	}
}

func TestSyncFrameRoundTrip(t *testing.T) {
	f := encodeSyncFrame(7, []byte("state"))
	r := wire.NewReader(f)
	if r.U8() != layerSync || r.U64() != 7 || string(r.BytesPrefixed()) != "state" || r.Err() != nil {
		t.Fatal("sync frame round trip")
	}
	f = encodeSyncFrame(3, nil)
	r = wire.NewReader(f)
	if r.U8() != layerSync || r.U64() != 3 || len(r.BytesPrefixed()) != 0 || r.Err() != nil {
		t.Fatal("empty-snapshot sync frame round trip")
	}
}

func TestDatagramEncodings(t *testing.T) {
	d := encodeData(77, 9, []byte("inner"))
	r := wire.NewReader(d)
	if r.U8() != dgData || r.U32() != 77 || r.U64() != 9 || string(r.BytesPrefixed()) != "inner" || r.Err() != nil {
		t.Fatal("data datagram round trip")
	}
	a := encodeAck(77, 9)
	r = wire.NewReader(a)
	if r.U8() != dgAck || r.U32() != 77 || r.U64() != 9 || r.Err() != nil {
		t.Fatal("ack datagram round trip")
	}
	if b := encodeBeat(); len(b) != 1 || b[0] != dgBeat {
		t.Fatal("beat datagram")
	}
}

func TestMsgIDOrdering(t *testing.T) {
	a := MsgID{Origin: 1, Seq: 5}
	b := MsgID{Origin: 1, Seq: 6}
	c := MsgID{Origin: 2, Seq: 1}
	if !a.Less(b) || b.Less(a) || !b.Less(c) || c.Less(a) {
		t.Fatal("ordering wrong")
	}
	if a.String() != "1:5" {
		t.Fatalf("string = %q", a.String())
	}
}

func TestCastMsgQuickRoundTrip(t *testing.T) {
	prop := func(origin uint16, seq uint64, data []byte) bool {
		m := CastMsg{ID: MsgID{Origin: simnet.NodeID(origin), Seq: seq}, Kind: castApp, Data: data}
		w := wire.NewWriter(32)
		m.encode(w)
		r := wire.NewReader(w.Bytes())
		got := decodeCastMsg(r)
		return r.Err() == nil && got.ID == m.ID && bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	prop := func(buf []byte) bool {
		r := wire.NewReader(buf)
		_ = decodeConsMsg(r)
		r2 := wire.NewReader(buf)
		_ = decodeCastMsg(r2)
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
