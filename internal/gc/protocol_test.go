package gc_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/simnet"
)

// TestRelCommRetransmission: a message sent across a partition is lost,
// then delivered after the partition heals, by the retransmission timer.
func TestRelCommRetransmission(t *testing.T) {
	net := simnet.New(simnet.Config{Nodes: 2, Seed: 71})
	defer net.Close()
	var got atomic.Int32
	view := gc.NewView(0, 1)
	a := gc.NewSite(gc.Config{
		Net: net, ID: 0, InitialView: view, FDInterval: -1,
		RTO: 10 * time.Millisecond,
	})
	b := gc.NewSite(gc.Config{
		Net: net, ID: 1, InitialView: view, FDInterval: -1,
		RTO:      10 * time.Millisecond,
		RDeliver: func(simnet.NodeID, []byte) { got.Add(1) },
	})
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()

	net.Partition([]simnet.NodeID{0}, []simnet.NodeID{1})
	if err := a.RBcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("delivery crossed the partition")
	}
	net.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("retransmission never delivered; net=%+v", net.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRelCommExactlyOnce: duplicated datagrams deliver upward once.
func TestRelCommExactlyOnce(t *testing.T) {
	net := simnet.New(simnet.Config{Nodes: 2, Seed: 72})
	defer net.Close()
	var got atomic.Int32
	b := gc.NewSite(gc.Config{
		Net: net, ID: 1, InitialView: gc.NewView(0, 1), FDInterval: -1,
		RDeliver: func(simnet.NodeID, []byte) { got.Add(1) },
	})
	b.Start()
	defer b.Stop()

	d := gc.BuildCastDatagram(0, 1, gc.MsgID{Origin: 0, Seq: 1}, []byte("dup"))
	for i := 0; i < 3; i++ {
		if err := b.InjectDatagram(d); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("delivered %d times, want exactly once", got.Load())
	}
}

// TestRelCastDistinctMessagesBothDeliver: dedupe is per message ID, not
// per sender.
func TestRelCastDistinctMessages(t *testing.T) {
	net := simnet.New(simnet.Config{Nodes: 2, Seed: 73})
	defer net.Close()
	var got atomic.Int32
	b := gc.NewSite(gc.Config{
		Net: net, ID: 1, InitialView: gc.NewView(0, 1), FDInterval: -1,
		RDeliver: func(simnet.NodeID, []byte) { got.Add(1) },
	})
	b.Start()
	defer b.Stop()
	if err := b.InjectDatagram(gc.BuildCastDatagram(0, 1, gc.MsgID{Origin: 0, Seq: 1}, []byte("m1"))); err != nil {
		t.Fatal(err)
	}
	if err := b.InjectDatagram(gc.BuildCastDatagram(0, 2, gc.MsgID{Origin: 0, Seq: 2}, []byte("m2"))); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 2 {
		t.Fatalf("delivered %d, want 2", got.Load())
	}
}

// TestCrashNonCoordinator: losing a non-coordinator member keeps the
// quorum and does not need round advancement.
func TestCrashNonCoordinator(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 300 * time.Microsecond, Seed: 74})
	view := gc.NewView(0, 1, 2)
	for id := simnet.NodeID(0); id < 3; id++ {
		c.addSite(id, view, func(cfg *gc.Config) {
			cfg.FDInterval = 10 * time.Millisecond
			cfg.SuspectAfter = 60 * time.Millisecond
		})
	}
	c.net.Crash(2) // instance 0 coordinator is site 0; 2 is a bystander
	if err := c.sites[0].ABcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	c.waitDeliveredAt(0, 1)
	c.waitDeliveredAt(1, 1)
}

// TestViewAccessorsAndStats exercises the Site introspection surface.
func TestViewAccessorsAndStats(t *testing.T) {
	net := simnet.New(simnet.Config{Nodes: 1, Seed: 75})
	defer net.Close()
	s := gc.NewSite(gc.Config{Net: net, ID: 0, InitialView: gc.NewView(0), FDInterval: -1})
	s.Start()
	defer s.Stop()
	if s.ID() != 0 {
		t.Fatal("ID")
	}
	if !s.View().Contains(0) || s.View().Size() != 1 {
		t.Fatalf("view = %v", s.View())
	}
	if s.DroppedStale() != 0 {
		t.Fatal("fresh site dropped sends")
	}
	if len(s.Errs()) != 0 {
		t.Fatalf("errs = %v", s.Errs())
	}
}

// TestSiteConfigValidation: construction-time misuse panics.
func TestSiteConfigValidation(t *testing.T) {
	net := simnet.New(simnet.Config{Nodes: 1, Seed: 76})
	defer net.Close()
	mustPanicGC(t, "nil net", func() {
		gc.NewSite(gc.Config{ID: 0, InitialView: gc.NewView(0)})
	})
	mustPanicGC(t, "view without self", func() {
		gc.NewSite(gc.Config{Net: net, ID: 0, InitialView: gc.NewView(1)})
	})
}

func mustPanicGC(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestTwoGroupsShareNetwork: independent stacks on one network do not
// interfere (different views, no cross-talk deliveries).
func TestTwoGroupsShareNetwork(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 4, Seed: 78})
	g1 := gc.NewView(0, 1)
	g2 := gc.NewView(2, 3)
	for _, id := range []simnet.NodeID{0, 1} {
		c.addSite(id, g1, nil)
	}
	for _, id := range []simnet.NodeID{2, 3} {
		c.addSite(id, g2, nil)
	}
	if err := c.sites[0].ABcast([]byte("g1-msg")); err != nil {
		t.Fatal(err)
	}
	if err := c.sites[2].ABcast([]byte("g2-msg")); err != nil {
		t.Fatal(err)
	}
	c.waitDeliveredAt(0, 1)
	c.waitDeliveredAt(1, 1)
	c.waitDeliveredAt(2, 1)
	c.waitDeliveredAt(3, 1)
	if got := c.adeliveries(0); got[0] != "g1-msg" {
		t.Fatalf("group 1 delivered %v", got)
	}
	if got := c.adeliveries(2); got[0] != "g2-msg" {
		t.Fatalf("group 2 delivered %v", got)
	}
}
