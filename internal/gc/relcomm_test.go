package gc

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// rcHarness wires a bare NetOut + RelComm stack on node 0 of a 2-node
// simnet, for white-box flow-control and retransmission tests.
type rcHarness struct {
	net   *simnet.Network
	stack *core.Stack
	rc    *RelComm
	ev    *events
	spec  *core.Spec

	mu    sync.Mutex
	recvd []rcRecvd // FromRComm deliveries captured by the sink mp
}

func newRCHarness(t *testing.T, window int) *rcHarness {
	t.Helper()
	h := &rcHarness{
		net: simnet.New(simnet.Config{Nodes: 2, Seed: 80}),
		ev:  newEvents(),
	}
	t.Cleanup(h.net.Close)
	h.stack = core.NewStack(cc.NewVCABasic())
	no := newNetOut(h.net.Node(0))
	h.rc = newRelComm(0, NewView(0, 1), 50*time.Millisecond, window, h.ev)
	sink := core.NewMicroprotocol("rcSink")
	hSink := sink.AddHandler("capture", func(_ *core.Context, msg core.Message) error {
		h.mu.Lock()
		h.recvd = append(h.recvd, msg.(rcRecvd))
		h.mu.Unlock()
		return nil
	})
	h.stack.Register(no.mp, h.rc.mp, sink)
	h.stack.Bind(h.ev.NetSend, no.send)
	h.stack.Bind(h.ev.SendOut, h.rc.hSend)
	h.stack.Bind(h.ev.FromNet, h.rc.hRecv)
	h.stack.Bind(h.ev.RetrTick, h.rc.hRetransmit)
	h.stack.Bind(h.ev.ViewChange, h.rc.hViewChange)
	h.stack.Bind(h.ev.FromRComm, hSink)
	h.spec = core.Access(no.mp, h.rc.mp, sink)
	return h
}

// delivered returns the payloads handed upward so far. FromRComm is
// triggered asynchronously, so callers poll briefly.
func (h *rcHarness) delivered(t *testing.T, want int) []string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		h.mu.Lock()
		var out []string
		for _, r := range h.recvd {
			out = append(out, string(r.inner))
		}
		h.mu.Unlock()
		if len(out) >= want || time.Now().After(deadline) {
			return out
		}
		time.Sleep(time.Millisecond)
	}
}

func (h *rcHarness) sendTo1(t *testing.T, payload string) {
	t.Helper()
	if err := h.stack.External(h.spec, h.ev.SendOut, rcSendReq{to: 1, inner: []byte(payload)}); err != nil {
		t.Fatal(err)
	}
}

// recvData drains node 1's inbox, returning the seqs of data datagrams.
func (h *rcHarness) recvData(t *testing.T) []uint64 {
	t.Helper()
	var seqs []uint64
	for {
		d, ok := h.net.Node(1).TryRecv()
		if !ok {
			return seqs
		}
		r := wire.NewReader(d.Payload)
		if r.U8() == dgData {
			r.U32() // epoch
			seqs = append(seqs, r.U64())
		}
	}
}

// ackFrom1 feeds an ack for seq into node 0's stack, echoing node 0's
// own epoch (as a real peer would).
func (h *rcHarness) ackFrom1(t *testing.T, seq uint64) {
	t.Helper()
	d := simnet.Datagram{From: 1, To: 0, Payload: encodeAck(h.rc.epoch, seq)}
	if err := h.stack.External(h.spec, h.ev.FromNet, d); err != nil {
		t.Fatal(err)
	}
}

func TestFlowControlWindowLimitsInFlight(t *testing.T) {
	h := newRCHarness(t, 2)
	for i := 0; i < 5; i++ {
		h.sendTo1(t, "m")
	}
	if got := h.recvData(t); len(got) != 2 {
		t.Fatalf("transmitted %d data datagrams, window is 2", len(got))
	}
	if h.rc.Queued(1) != 3 {
		t.Fatalf("queued = %d, want 3", h.rc.Queued(1))
	}
	// One ack opens one slot.
	h.ackFrom1(t, 1)
	if got := h.recvData(t); len(got) != 1 {
		t.Fatalf("after ack: %d new datagrams, want 1", len(got))
	}
	if h.rc.Queued(1) != 2 {
		t.Fatalf("queued = %d, want 2", h.rc.Queued(1))
	}
	// Remaining acks drain the rest.
	h.ackFrom1(t, 2)
	h.ackFrom1(t, 3)
	h.ackFrom1(t, 4)
	h.ackFrom1(t, 5)
	if h.rc.Queued(1) != 0 {
		t.Fatalf("queued = %d, want 0", h.rc.Queued(1))
	}
}

func TestFlowControlUnlimitedWindow(t *testing.T) {
	h := newRCHarness(t, -1)
	for i := 0; i < 10; i++ {
		h.sendTo1(t, "m")
	}
	if got := h.recvData(t); len(got) != 10 {
		t.Fatalf("transmitted %d, want all 10 with flow control disabled", len(got))
	}
}

func TestFlowControlQueueDroppedOnViewRemoval(t *testing.T) {
	h := newRCHarness(t, 1)
	for i := 0; i < 4; i++ {
		h.sendTo1(t, "m")
	}
	if h.rc.Queued(1) != 3 {
		t.Fatalf("queued = %d", h.rc.Queued(1))
	}
	before := h.rc.DroppedStale()
	if err := h.stack.External(h.spec, h.ev.ViewChange, NewView(0)); err != nil {
		t.Fatal(err)
	}
	if h.rc.Queued(1) != 0 {
		t.Fatal("queue must be dropped when the peer leaves the view")
	}
	if h.rc.DroppedStale() != before+3 {
		t.Fatalf("droppedStale = %d, want %d", h.rc.DroppedStale(), before+3)
	}
}

func TestRetransmitResendsUnacked(t *testing.T) {
	h := newRCHarness(t, 0) // window 0 → unlimited (site default applies elsewhere)
	h.sendTo1(t, "m")
	if got := h.recvData(t); len(got) != 1 {
		t.Fatalf("initial send missing: %v", got)
	}
	time.Sleep(60 * time.Millisecond) // past RTO
	if err := h.stack.External(h.spec, h.ev.RetrTick, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.recvData(t); len(got) != 1 || got[0] != 1 {
		t.Fatalf("retransmission = %v, want seq 1 again", got)
	}
	// Acked messages are not retransmitted.
	h.ackFrom1(t, 1)
	time.Sleep(60 * time.Millisecond)
	if err := h.stack.External(h.spec, h.ev.RetrTick, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.recvData(t); len(got) != 0 {
		t.Fatalf("acked message retransmitted: %v", got)
	}
}

// dataFrom1 injects a data datagram from peer 1 with an explicit epoch.
func (h *rcHarness) dataFrom1(t *testing.T, epoch uint32, seq uint64, payload string) {
	t.Helper()
	d := simnet.Datagram{From: 1, To: 0, Payload: encodeData(epoch, seq, []byte(payload))}
	if err := h.stack.External(h.spec, h.ev.FromNet, d); err != nil {
		t.Fatal(err)
	}
}

// TestEpochChangeResetsDedup is the crash-restart regression: a peer that
// restarts announces a fresh epoch and restarts its sequence space at 1.
// Without the epoch reset, the dead incarnation's high-water mark would
// swallow every post-restart message.
func TestEpochChangeResetsDedup(t *testing.T) {
	h := newRCHarness(t, -1)
	h.dataFrom1(t, 10, 1, "a")
	h.dataFrom1(t, 10, 2, "b")
	h.dataFrom1(t, 10, 2, "b-dup") // same epoch, same seq: deduplicated
	if got := h.delivered(t, 2); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("before restart: delivered %v, want [a b]", got)
	}
	// Peer restarts: new epoch, seq restarts at 1. Must be delivered.
	h.dataFrom1(t, 11, 1, "after-restart")
	if got := h.delivered(t, 3); len(got) != 3 || got[2] != "after-restart" {
		t.Fatalf("after restart: delivered %v, want after-restart last", got)
	}
	// Dedup works within the new epoch too.
	h.dataFrom1(t, 11, 1, "after-restart")
	time.Sleep(20 * time.Millisecond)
	if got := h.delivered(t, 3); len(got) != 3 {
		t.Fatalf("new-epoch duplicate delivered: %v", got)
	}
}

// TestAckFromStaleEpochIgnored: after this site restarts, acks addressed
// to its previous incarnation must not clear the new incarnation's
// retransmission buffer (the seq numbers would collide otherwise).
func TestAckFromStaleEpochIgnored(t *testing.T) {
	h := newRCHarness(t, -1)
	h.sendTo1(t, "m")
	if len(h.rc.pending[1]) != 1 {
		t.Fatalf("pending = %d, want 1", len(h.rc.pending[1]))
	}
	// Ack carrying a different epoch — as if meant for a prior incarnation.
	stale := simnet.Datagram{From: 1, To: 0, Payload: encodeAck(h.rc.epoch+1, 1)}
	if err := h.stack.External(h.spec, h.ev.FromNet, stale); err != nil {
		t.Fatal(err)
	}
	if len(h.rc.pending[1]) != 1 {
		t.Fatal("stale-epoch ack cleared the retransmission buffer")
	}
	h.ackFrom1(t, 1) // correct epoch clears it
	if len(h.rc.pending[1]) != 0 {
		t.Fatal("current-epoch ack did not clear the buffer")
	}
}

func TestSendToNonMemberDropped(t *testing.T) {
	h := newRCHarness(t, 4)
	if err := h.stack.External(h.spec, h.ev.SendOut, rcSendReq{to: 1, inner: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := h.stack.External(h.spec, h.ev.ViewChange, NewView(0)); err != nil {
		t.Fatal(err)
	}
	before := h.rc.DroppedStale()
	if err := h.stack.External(h.spec, h.ev.SendOut, rcSendReq{to: 1, inner: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if h.rc.DroppedStale() != before+1 {
		t.Fatal("send to a non-member must be dropped and counted")
	}
}
