package gc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/simnet"
)

// TestLiveUpgradeMidTraffic drives the zero-downtime upgrade path end to
// end: a 3-site cluster under concurrent ABcast traffic receives a '^'
// protocol bump through the total order; every member swaps its app
// microprotocol (one configuration epoch per site) without dropping or
// reordering a single delivery, and the group converges on the new
// version. A second, stale proposal must be delivered and ignored.
func TestLiveUpgradeMidTraffic(t *testing.T) {
	c := newCluster(t, simnet.Config{Nodes: 3, MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond, Seed: 23})
	view := gc.NewView(0, 1, 2)
	for id := simnet.NodeID(0); id < 3; id++ {
		c.addSite(id, view, nil)
	}

	const perSite = 8
	var wg sync.WaitGroup
	for id := simnet.NodeID(0); id < 3; id++ {
		wg.Add(1)
		go func(id simnet.NodeID) {
			defer wg.Done()
			for i := 0; i < perSite; i++ {
				if err := c.sites[id].ABcast([]byte(fmt.Sprintf("s%d-m%d", id, i))); err != nil {
					t.Error(err)
				}
				if id == 0 && i == perSite/2 {
					if err := c.sites[id].ProposeUpgrade(2); err != nil {
						t.Error(err)
					}
				}
			}
		}(id)
	}
	wg.Wait()

	for id := simnet.NodeID(0); id < 3; id++ {
		id := id
		c.waitFor(30*time.Second, fmt.Sprintf("site %d to reach app v2", id), func() bool {
			return c.sites[id].AppVersion() == 2
		})
		if got := c.sites[id].Epoch(); got != 2 {
			t.Errorf("site %d: epoch %d after one upgrade, want 2", id, got)
		}
		if got := c.sites[id].View().Proto(); got != 2 {
			t.Errorf("site %d: view proto %d, want 2", id, got)
		}
	}

	// No acked broadcast was lost or reordered across the swap: the
	// post-upgrade app incarnation delivers the same total order.
	total := 3 * perSite
	for id := simnet.NodeID(0); id < 3; id++ {
		c.waitDeliveredAt(id, total)
	}
	ref := c.adeliveries(0)
	if len(ref) != total {
		t.Fatalf("site 0 delivered %d, want %d", len(ref), total)
	}
	seen := map[string]bool{}
	for _, m := range ref {
		if seen[m] {
			t.Fatalf("duplicate delivery %q", m)
		}
		seen[m] = true
	}
	for id := simnet.NodeID(1); id < 3; id++ {
		got := c.adeliveries(id)
		if len(got) != total {
			t.Fatalf("site %d delivered %d, want %d", id, len(got), total)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order violated at %d across the upgrade: site %d has %v, site 0 has %v", i, id, got, ref)
			}
		}
	}

	// A stale re-proposal is ordered, delivered, and ignored: no second
	// swap. A real bump advances the epoch again.
	if err := c.sites[1].ProposeUpgrade(2); err != nil {
		t.Fatal(err)
	}
	if err := c.sites[2].ProposeUpgrade(3); err != nil {
		t.Fatal(err)
	}
	for id := simnet.NodeID(0); id < 3; id++ {
		id := id
		c.waitFor(30*time.Second, fmt.Sprintf("site %d to reach app v3", id), func() bool {
			return c.sites[id].AppVersion() == 3
		})
		if got := c.sites[id].Epoch(); got != 3 {
			t.Errorf("site %d: epoch %d after two applied upgrades, want 3", id, got)
		}
	}

	// Traffic keeps flowing on the upgraded stack.
	if err := c.sites[0].ABcast([]byte("post-upgrade")); err != nil {
		t.Fatal(err)
	}
	for id := simnet.NodeID(0); id < 3; id++ {
		c.waitDeliveredAt(id, total+1)
	}
}

// TestViewProtoThreadsThroughMembership pins the proto field's algebra:
// it survives adds and removes, '^' never downgrades, and it renders in
// String once set.
func TestViewProtoThreadsThroughMembership(t *testing.T) {
	v := gc.NewView(0, 1)
	if v.Proto() != 0 {
		t.Fatalf("fresh view proto = %d", v.Proto())
	}
	v = v.Apply('^', 2)
	if v.Proto() != 2 {
		t.Fatalf("proto after upgrade = %d, want 2", v.Proto())
	}
	v = v.Add(3).Remove(1)
	if v.Proto() != 2 {
		t.Fatalf("proto lost across membership ops: %d", v.Proto())
	}
	if v = v.Apply('^', 1); v.Proto() != 2 {
		t.Fatalf("stale upgrade downgraded proto to %d", v.Proto())
	}
	if got, want := v.String(), "{0,3}@v2"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
