package gc

import (
	"sort"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// abcastReq asks ABcast to totally-order-broadcast a payload or a
// membership operation.
type abcastReq struct {
	kind uint8
	data []byte
	op   byte
	site transport.NodeID
}

// ABcast is the atomic (total-order) broadcast microprotocol (paper §3,
// §7): payloads are disseminated with RelCast, and their delivery order is
// fixed by running consensus on batches of not-yet-delivered message IDs.
// Every site proposes its current pool for the next undecided instance;
// whichever batch the instance's consensus decides is delivered — in
// deterministic ID order — on every site; messages that lost the race stay
// in the pool and ride the next instance.
type ABcast struct {
	mp       *core.Microprotocol
	self     transport.NodeID
	ev       *events
	batchMax int

	// snapshot and install are the application state-transfer hooks
	// (gc.Config.Snapshot / InstallSnapshot): snapshot captures the state
	// every delivery below the sync point produced; install replaces a
	// joiner's state with it.
	snapshot func() []byte
	install  func([]byte)

	pool       map[MsgID]CastMsg
	delivered  map[MsgID]bool
	decisions  map[uint64][]CastMsg
	nextDecide uint64
	proposed   map[uint64]bool
	inFlush    bool
	flushInst  uint64

	// pendingSync holds joiners whose sync must wait for the current
	// flush to finish: a snapshot taken mid-batch would miss the batch
	// tail the joiner is told to skip.
	pendingSync []transport.NodeID

	hABcast, hRecv, hOnDecide, hSync, hSendSync, hPeerReset *core.Handler
}

func newABcast(self transport.NodeID, batchMax int, ev *events, snapshot func() []byte, install func([]byte)) *ABcast {
	a := &ABcast{
		mp:        core.NewMicroprotocol("abcast"),
		self:      self,
		ev:        ev,
		batchMax:  batchMax,
		snapshot:  snapshot,
		install:   install,
		pool:      make(map[MsgID]CastMsg),
		delivered: make(map[MsgID]bool),
		decisions: make(map[uint64][]CastMsg),
		proposed:  make(map[uint64]bool),
	}
	a.hABcast = a.mp.AddHandler("abcast", a.abcast)
	a.hRecv = a.mp.AddHandler("recv", a.recv)
	a.hOnDecide = a.mp.AddHandler("onDecide", a.onDecide)
	a.hSync = a.mp.AddHandler("sync", a.sync)
	a.hSendSync = a.mp.AddHandler("sendSync", a.sendSync)
	a.hPeerReset = a.mp.AddHandler("peerReset", a.peerReset)
	return a
}

// abcast disseminates the payload via RelCast; ordering starts when the
// message comes back through DeliverOut into the pool.
func (a *ABcast) abcast(ctx *core.Context, msg core.Message) error {
	req := msg.(abcastReq)
	return ctx.Trigger(a.ev.Bcast, &CastMsg{Kind: req.kind, Data: req.data, Op: req.op, Site: req.site})
}

// recv pools reliably-broadcast messages awaiting a total order.
func (a *ABcast) recv(ctx *core.Context, msg core.Message) error {
	m := msg.(CastMsg)
	if m.Kind != castApp && m.Kind != castViewChg {
		return nil // plain/FIFO/causal broadcasts are not ours to order
	}
	if a.delivered[m.ID] {
		return nil
	}
	a.pool[m.ID] = m
	return a.maybePropose(ctx)
}

// maybePropose proposes the pool for the next undecided instance, once
// per instance.
func (a *ABcast) maybePropose(ctx *core.Context) error {
	inst := a.nextDecide
	if a.proposed[inst] || len(a.pool) == 0 {
		return nil
	}
	a.proposed[inst] = true
	batch := make([]CastMsg, 0, len(a.pool))
	for _, m := range a.pool {
		batch = append(batch, m)
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].ID.Less(batch[j].ID) })
	if len(batch) > a.batchMax {
		batch = batch[:a.batchMax]
	}
	return ctx.Trigger(a.ev.ProposeEv, proposeReq{inst: inst, value: batch})
}

// onDecide buffers decisions and delivers them gap-free in instance
// order, each batch in deterministic ID order, deduplicated.
func (a *ABcast) onDecide(ctx *core.Context, msg core.Message) error {
	d := msg.(decision)
	if d.inst < a.nextDecide {
		return nil
	}
	if _, dup := a.decisions[d.inst]; dup {
		return nil
	}
	a.decisions[d.inst] = d.value
	for {
		batch, ok := a.decisions[a.nextDecide]
		if !ok {
			break
		}
		a.inFlush, a.flushInst = true, a.nextDecide
		sort.Slice(batch, func(i, j int) bool { return batch[i].ID.Less(batch[j].ID) })
		for _, m := range batch {
			if a.delivered[m.ID] {
				continue
			}
			a.delivered[m.ID] = true
			delete(a.pool, m.ID)
			if err := ctx.TriggerAll(a.ev.ADeliver, m); err != nil {
				a.inFlush = false
				return err
			}
		}
		delete(a.decisions, a.nextDecide)
		delete(a.proposed, a.nextDecide)
		a.nextDecide++
	}
	a.inFlush = false
	// Emit syncs deferred during the flush, now that every delivery below
	// nextDecide has been applied (snapshot and sync point agree).
	for len(a.pendingSync) > 0 {
		to := a.pendingSync[0]
		a.pendingSync = a.pendingSync[1:]
		if err := ctx.Trigger(a.ev.SyncReq, to); err != nil {
			return err
		}
	}
	return a.maybePropose(ctx)
}

// sync handles a join-time state transfer (layerSync on FromRComm): a
// fresh member installs the shipped application snapshot and
// fast-forwards its instance pointer to where the group's total order
// resumes. Members that have already delivered ignore it, which makes
// the transfer idempotent — every established member sends one, no
// coordinator needed, the first to arrive wins.
func (a *ABcast) sync(ctx *core.Context, msg core.Message) error {
	in := msg.(rcRecvd)
	r := wire.NewReader(in.inner)
	if r.U8() != layerSync {
		return nil
	}
	next := r.U64()
	snap := r.BytesPrefixed()
	if err := r.Err(); err != nil {
		return err
	}
	if a.nextDecide != 0 || len(a.delivered) > 0 || next <= a.nextDecide {
		return nil
	}
	a.nextDecide = next
	if len(snap) > 0 && a.install != nil {
		a.install(append([]byte(nil), snap...))
	}
	for inst := range a.decisions {
		if inst < next {
			delete(a.decisions, inst)
		}
	}
	return a.maybePropose(ctx)
}

// sendSync (SyncReq event) ships a freshly joined site the resume point
// of the total order plus the application snapshot those deliveries
// produced. It is triggered from Membership's deliverView, which runs
// inside the flush of the instance that decided the join — emitting
// there would snapshot mid-batch, so the request parks until onDecide
// finishes the flush and re-triggers it.
func (a *ABcast) sendSync(ctx *core.Context, msg core.Message) error {
	to := msg.(transport.NodeID)
	if a.inFlush {
		a.pendingSync = append(a.pendingSync, to)
		return nil
	}
	var snap []byte
	if a.snapshot != nil {
		snap = a.snapshot()
	}
	return ctx.Trigger(a.ev.SendOut, rcSendReq{to: to, inner: encodeSyncFrame(a.nextDecide, snap)})
}

// peerReset forgets a rejoining site's pooled and delivered message IDs.
// Like RelCast's reset it runs inside the delivery of the site's '+'
// view operation, so all members drop the dead incarnation's history at
// the same point in the total order and the fresh incarnation's IDs
// (sequence restarting at 1) order cleanly.
func (a *ABcast) peerReset(_ *core.Context, msg core.Message) error {
	site := msg.(transport.NodeID)
	for id := range a.pool {
		if id.Origin == site {
			delete(a.pool, id)
		}
	}
	for id := range a.delivered {
		if id.Origin == site {
			delete(a.delivered, id)
		}
	}
	return nil
}
