package gc

import (
	"repro/internal/core"
	"repro/internal/transport"
)

// joinLeaveReq asks Membership to add ('+') or remove ('-') a site.
type joinLeaveReq struct {
	op   byte
	site transport.NodeID
}

// Membership maintains the group view (paper §3): join/leave operations
// are atomically broadcast, so every site applies them in the same total
// order; each delivery transforms the view and propagates it to all
// interested microprotocols with a synchronous triggerAll of ViewChange —
// verbatim the paper's Membership pseudocode.
type Membership struct {
	mp   *core.Microprotocol
	self transport.NodeID
	ev   *events

	view *View

	hJoinLeave, hDeliverView *core.Handler
}

func newMembership(self transport.NodeID, initial *View, ev *events) *Membership {
	m := &Membership{
		mp:   core.NewMicroprotocol("membership"),
		self: self,
		ev:   ev,
		view: initial,
	}
	m.hJoinLeave = m.mp.AddHandler("joinleave", m.joinleave)
	m.hDeliverView = m.mp.AddHandler("deliverView", m.deliverView)
	return m
}

// joinleave implements "handler joinleave (op, site) trigger ABcast [op
// site]".
func (m *Membership) joinleave(ctx *core.Context, msg core.Message) error {
	req := msg.(joinLeaveReq)
	return ctx.Trigger(m.ev.ABcastEv, abcastReq{kind: castViewChg, op: req.op, site: req.site})
}

// deliverView implements "handler deliverView (op, site) { view = view op
// site; triggerAll ViewChange view; }". Non-membership deliveries on
// ADeliver are ignored.
func (m *Membership) deliverView(ctx *core.Context, msg core.Message) error {
	cm := msg.(CastMsg)
	if cm.Kind != castViewChg {
		return nil
	}
	m.view = m.view.Apply(cm.Op, cm.Site)
	if err := ctx.TriggerAll(m.ev.ViewChange, m.view); err != nil {
		return err
	}
	// Every established member tells a joiner where the total order
	// resumes, with the application snapshot attached (idempotent at the
	// receiver, so no coordinator needed). First, forget the joiner's
	// previous incarnation: this runs at the same total-order point on
	// every member, so a crash-restarted site's restarted message IDs
	// dedup identically everywhere.
	if cm.Op == '+' && cm.Site != m.self {
		if err := ctx.TriggerAll(m.ev.PeerReset, cm.Site); err != nil {
			return err
		}
		return ctx.Trigger(m.ev.SyncReq, cm.Site)
	}
	return nil
}

// View returns membership's current view (for inspection between
// computations).
func (m *Membership) View() *View { return m.view }
