package wire_test

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestRoundTripPrimitives(t *testing.T) {
	w := wire.NewWriter(64)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U16(65535)
	w.U32(1 << 30)
	w.U64(1 << 62)
	w.I64(-42)
	w.UVarint(300)
	w.BytesPrefixed([]byte{1, 2, 3})
	w.String("hello")

	r := wire.NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := r.U16(); got != 65535 {
		t.Fatalf("U16 = %d", got)
	}
	if got := r.U32(); got != 1<<30 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<62 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.UVarint(); got != 300 {
		t.Fatalf("UVarint = %d", got)
	}
	if got := r.BytesPrefixed(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if r.Err() != nil {
		t.Fatalf("err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestTruncatedReadsStick(t *testing.T) {
	r := wire.NewReader([]byte{1})
	_ = r.U32() // needs 4 bytes
	if !errors.Is(r.Err(), wire.ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}
	// Sticky: further reads keep the first error and return zeros.
	if got := r.U8(); got != 0 {
		t.Fatalf("post-error read = %d", got)
	}
	if !errors.Is(r.Err(), wire.ErrTruncated) {
		t.Fatalf("err changed: %v", r.Err())
	}
}

func TestBadVarint(t *testing.T) {
	// 10 continuation bytes: invalid varint.
	r := wire.NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	_ = r.UVarint()
	if !errors.Is(r.Err(), wire.ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestOversizedLengthPrefix(t *testing.T) {
	w := wire.NewWriter(16)
	w.UVarint(1 << 40) // absurd claimed length
	r := wire.NewReader(w.Bytes())
	_ = r.BytesPrefixed()
	if !errors.Is(r.Err(), wire.ErrTooLong) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestWriterReset(t *testing.T) {
	w := wire.NewWriter(8)
	w.U64(1)
	if w.Len() != 8 {
		t.Fatalf("len = %d", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("len after reset = %d", w.Len())
	}
}

func TestEmptyBytesAndString(t *testing.T) {
	w := wire.NewWriter(4)
	w.BytesPrefixed(nil)
	w.String("")
	r := wire.NewReader(w.Bytes())
	if got := r.BytesPrefixed(); len(got) != 0 {
		t.Fatalf("bytes = %v", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("string = %q", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// TestQuickRoundTrip: arbitrary (u64, bytes, string, bool) tuples survive
// a round trip.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(a uint64, b []byte, s string, c bool, d uint16) bool {
		w := wire.NewWriter(32)
		w.U64(a)
		w.BytesPrefixed(b)
		w.String(s)
		w.Bool(c)
		w.U16(d)
		r := wire.NewReader(w.Bytes())
		ra := r.U64()
		rb := r.BytesPrefixed()
		rs := r.String()
		rc := r.Bool()
		rd := r.U16()
		if r.Err() != nil || r.Remaining() != 0 {
			return false
		}
		if ra != a || rs != s || rc != c || rd != d || len(rb) != len(b) {
			return false
		}
		for i := range b {
			if rb[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVarint: varints round-trip for arbitrary values.
func TestQuickVarint(t *testing.T) {
	prop := func(vs []uint64) bool {
		w := wire.NewWriter(16)
		for _, v := range vs {
			w.UVarint(v)
		}
		r := wire.NewReader(w.Bytes())
		for _, v := range vs {
			if r.UVarint() != v {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTruncationNeverPanics: decoding arbitrary garbage with an
// arbitrary schedule of reads never panics, only errors.
func TestQuickTruncationNeverPanics(t *testing.T) {
	prop := func(buf []byte, ops []byte) bool {
		r := wire.NewReader(buf)
		for _, op := range ops {
			switch op % 7 {
			case 0:
				r.U8()
			case 1:
				r.U16()
			case 2:
				r.U32()
			case 3:
				r.U64()
			case 4:
				r.UVarint()
			case 5:
				r.BytesPrefixed()
			case 6:
				_ = r.String()
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
