package wire_test

import (
	"testing"

	"repro/internal/wire"
)

// FuzzReaderNeverPanics drives the sticky reader with arbitrary bytes and
// an arbitrary schedule of reads: decoding must fail with an error, never
// a panic, and must never read past the buffer.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte{4, 5, 6})
	f.Fuzz(func(t *testing.T, buf, ops []byte) {
		r := wire.NewReader(buf)
		for _, op := range ops {
			switch op % 7 {
			case 0:
				r.U8()
			case 1:
				r.U16()
			case 2:
				r.U32()
			case 3:
				r.U64()
			case 4:
				r.UVarint()
			case 5:
				r.BytesPrefixed()
			case 6:
				_ = r.String()
			}
			if r.Remaining() < 0 {
				t.Fatal("negative remaining")
			}
		}
	})
}

// FuzzRoundTrip encodes arbitrary values and checks they decode back
// exactly, with nothing left over.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte(nil), "", true)
	f.Add(uint64(1<<63), []byte{1, 2, 3}, "hello", false)
	f.Fuzz(func(t *testing.T, a uint64, b []byte, s string, c bool) {
		w := wire.NewWriter(16)
		w.U64(a)
		w.BytesPrefixed(b)
		w.String(s)
		w.Bool(c)
		w.UVarint(a)
		r := wire.NewReader(w.Bytes())
		if r.U64() != a {
			t.Fatal("u64")
		}
		rb := r.BytesPrefixed()
		if len(rb) != len(b) {
			t.Fatal("bytes len")
		}
		for i := range b {
			if rb[i] != b[i] {
				t.Fatal("bytes content")
			}
		}
		if r.String() != s {
			t.Fatal("string")
		}
		if r.Bool() != c {
			t.Fatal("bool")
		}
		if r.UVarint() != a {
			t.Fatal("varint")
		}
		if r.Err() != nil || r.Remaining() != 0 {
			t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
		}
	})
}
