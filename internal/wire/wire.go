// Package wire is a compact, allocation-light binary codec for the
// group-communication messages. It is deliberately hand-rolled (the paper's
// frameworks marshal messages to the network format themselves; x-kernel
// heritage) rather than reflective: fixed little-endian integers, varint
// lengths, and a sticky-error reader so decoding code needs a single error
// check at the end.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports a read past the end of the buffer.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLong reports a length prefix exceeding sane limits.
var ErrTooLong = errors.New("wire: length prefix too long")

// maxLen bounds byte-slice and string lengths (16 MiB) to stop corrupt
// length prefixes from allocating absurd buffers.
const maxLen = 16 << 20

// Writer appends primitive values to a growing buffer.
type Writer struct {
	buf []byte
}

// NewWriter creates a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The writer still owns it.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the number of encoded bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reset empties the writer, retaining its buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a byte 0/1.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian 16-bit value.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian 32-bit value.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian 64-bit value.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// UVarint appends an unsigned varint.
func (w *Writer) UVarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Bytes appends a varint length prefix followed by the bytes.
func (w *Writer) BytesPrefixed(b []byte) {
	w.UVarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a varint length prefix followed by the string bytes.
func (w *Writer) String(s string) {
	w.UVarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes primitive values from a buffer. The first decoding
// failure sticks: every later read returns zero values and Err() reports
// the failure, so decoders can check once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader creates a reader over buf (not copied).
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int {
	if r.off > len(r.buf) {
		return 0
	}
	return len(r.buf) - r.off
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.buf)))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte as a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a little-endian 16-bit value.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian 32-bit value.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// UVarint reads an unsigned varint.
func (r *Reader) UVarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad varint at offset %d", ErrTruncated, r.off))
		return 0
	}
	r.off += n
	return v
}

// BytesPrefixed reads a varint length prefix and that many bytes. The
// returned slice aliases the reader's buffer.
func (r *Reader) BytesPrefixed() []byte {
	n := r.UVarint()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.fail(fmt.Errorf("%w: %d bytes", ErrTooLong, n))
		return nil
	}
	return r.take(int(n))
}

// String reads a varint length prefix and that many bytes as a string.
func (r *Reader) String() string { return string(r.BytesPrefixed()) }
