package sched

import "math/rand"

// Strategy decides, at each scheduling step, which runnable task runs
// next. ids is the runnable set in ascending task-id order (task ids are
// themselves schedule-deterministic); Pick returns an index into ids.
// step counts decisions from 0 within one execution; stateHash is the
// workload fingerprint (0 when none is attached).
//
// A strategy is stateful across the executions of one Explore call and
// must not be shared between concurrent explorations.
type Strategy interface {
	Name() string
	Pick(ids []int, step int, stateHash uint64) int
}

// taskObserver is implemented by strategies that track task creation
// (PCT assigns priorities there).
type taskObserver interface {
	TaskCreated(id int)
}

// runObserver is implemented by strategies with per-execution
// bookkeeping; Explore brackets every run with it.
type runObserver interface {
	BeginRun()
	EndRun()
}

// exhaustible is implemented by strategies that can enumerate their
// whole search space (DFS); Explore stops once Exhausted reports true.
type exhaustible interface {
	Exhausted() bool
}

// --- seeded random walk ---

// RandomWalk picks uniformly among the runnable tasks — the same
// behaviour the randomized stress battery samples through the Go
// runtime, but seeded and replayable.
type RandomWalk struct {
	rng *rand.Rand
}

// NewRandomWalk creates a seeded uniform random strategy.
func NewRandomWalk(seed int64) *RandomWalk {
	return &RandomWalk{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (r *RandomWalk) Name() string { return "random" }

// Pick implements Strategy.
func (r *RandomWalk) Pick(ids []int, _ int, _ uint64) int { return r.rng.Intn(len(ids)) }

// --- PCT (probabilistic concurrency testing) ---

// PCT implements randomized priority scheduling in the style of
// Burckhardt et al.'s PCT: every task gets a random high priority at
// creation, the highest-priority runnable task always runs, and at d−1
// randomly chosen steps the running-candidate's priority is demoted to a
// low value. For a bug of depth d, each execution finds it with
// probability ≥ 1/(n·kᵈ⁻¹) — far better odds than uniform sampling on
// ordering-sensitive bugs.
type PCT struct {
	rng   *rand.Rand
	depth int

	prio      map[int]int // task id → priority (higher runs first)
	change    map[int]int // step → demotion rank (0..depth-2)
	stepsSeen int         // steps observed this run
	lastSteps int         // length estimate from the previous run
}

// NewPCT creates a PCT strategy with the given bug-depth budget
// (depth ≥ 1; depth−1 priority change points per execution).
func NewPCT(seed int64, depth int) *PCT {
	if depth < 1 {
		depth = 1
	}
	return &PCT{
		rng:   rand.New(rand.NewSource(seed)),
		depth: depth,
		prio:  make(map[int]int),
	}
}

// Name implements Strategy.
func (p *PCT) Name() string { return "pct" }

// TaskCreated assigns the task a random priority above every demotion
// rank.
func (p *PCT) TaskCreated(id int) {
	p.prio[id] = p.depth + p.rng.Intn(1<<16)
}

// BeginRun schedules this execution's priority change points over the
// previous run's observed length (first run: a small default).
func (p *PCT) BeginRun() {
	est := p.lastSteps
	if est < 8 {
		est = 8
	}
	p.prio = make(map[int]int)
	p.change = make(map[int]int, p.depth-1)
	for i := 0; i < p.depth-1; i++ {
		p.change[p.rng.Intn(est)] = i
	}
	p.stepsSeen = 0
}

// EndRun records the run length for the next round's change points.
func (p *PCT) EndRun() { p.lastSteps = p.stepsSeen }

// Pick implements Strategy: highest priority wins; at a change point the
// would-be winner is first demoted.
func (p *PCT) Pick(ids []int, step int, _ uint64) int {
	if step+1 > p.stepsSeen {
		p.stepsSeen = step + 1
	}
	best := p.highest(ids)
	if rank, ok := p.change[step]; ok {
		p.prio[ids[best]] = rank
		delete(p.change, step)
		best = p.highest(ids)
	}
	return best
}

func (p *PCT) highest(ids []int) int {
	best := 0
	for i := 1; i < len(ids); i++ {
		if p.prio[ids[i]] > p.prio[ids[best]] {
			best = i
		}
	}
	return best
}

// --- bounded exhaustive DFS ---

// DFS enumerates schedules depth-first: each execution replays a prefix
// of recorded decisions and extends it with first choices; backtracking
// increments the deepest incrementable decision. Two bounds keep small
// workloads tractable:
//
//   - maxDepth: decisions beyond it take the first choice without
//     recording alternatives (the tail of long runs is not branched);
//   - state-hash pruning: when the workload supplies a state hash and a
//     decision point's state was already expanded once, its alternatives
//     are skipped — revisiting an identical state cannot uncover new
//     behaviour. Without a workload hash no pruning happens (the
//     scheduler-only view is too coarse to be sound).
type DFS struct {
	maxDepth int

	path      []dfsNode
	replayLen int
	visited   map[uint64]bool
	exhausted bool
}

type dfsNode struct {
	chosen int
	n      int // alternatives recorded at this node
}

// NewDFS creates a bounded exhaustive strategy branching over the first
// maxDepth decisions of every execution.
func NewDFS(maxDepth int) *DFS {
	return &DFS{maxDepth: maxDepth, visited: make(map[uint64]bool)}
}

// Name implements Strategy.
func (d *DFS) Name() string { return "dfs" }

// BeginRun truncates run-local state; the replay prefix set up by the
// previous EndRun persists.
func (d *DFS) BeginRun() { d.path = d.path[:d.replayLen] }

// Pick implements Strategy.
func (d *DFS) Pick(ids []int, step int, stateHash uint64) int {
	if step < d.replayLen {
		c := d.path[step].chosen
		if c >= len(ids) {
			return -1 // workload diverged; the scheduler reports it
		}
		return c
	}
	n := len(ids)
	if step >= d.maxDepth {
		n = 1
	} else if n > 1 && stateHash != 0 {
		if d.visited[stateHash] {
			n = 1
		} else {
			d.visited[stateHash] = true
		}
	}
	d.path = append(d.path, dfsNode{chosen: 0, n: n})
	return 0
}

// EndRun backtracks: the deepest decision with an untried alternative is
// incremented and becomes the tip of the next run's replay prefix. When
// none remains the search space is exhausted.
func (d *DFS) EndRun() {
	i := len(d.path) - 1
	for i >= 0 && d.path[i].chosen+1 >= d.path[i].n {
		i--
	}
	if i < 0 {
		d.exhausted = true
		d.replayLen = 0
		d.path = d.path[:0]
		return
	}
	d.path[i].chosen++
	d.path = d.path[:i+1]
	d.replayLen = i + 1
}

// Exhausted reports whether every bounded schedule has been explored.
func (d *DFS) Exhausted() bool { return d.exhausted }

// --- fixed schedule (replay) ---

// fixed replays a recorded choice sequence verbatim; decisions past the
// recording (which a faithful replay never reaches) take first choices.
type fixed struct {
	choices []int
}

func (f *fixed) Name() string { return "replay" }

func (f *fixed) Pick(ids []int, step int, _ uint64) int {
	if step >= len(f.choices) {
		return 0
	}
	c := f.choices[step]
	if c >= len(ids) {
		return -1
	}
	return c
}
