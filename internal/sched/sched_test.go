package sched

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// toyRun builds a run of n tasks, each appending its id to a shared log
// k times with a yield between appends. The log is the execution's
// observable order.
func toyRun(s *Scheduler, n, k int, log *[]int) func() {
	return func() {
		for i := 0; i < n; i++ {
			id := i
			s.Go(func() {
				for j := 0; j < k; j++ {
					*log = append(*log, id)
					s.Step()
				}
			})
		}
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	runOnce := func() ([]int, []int) {
		var log []int
		s := New(NewRandomWalk(42))
		if err := s.Run(toyRun(s, 3, 3, &log)); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return log, s.Choices()
	}
	log1, ch1 := runOnce()
	log2, ch2 := runOnce()
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("same seed produced different orders:\n%v\n%v", log1, log2)
	}
	if !reflect.DeepEqual(ch1, ch2) {
		t.Fatalf("same seed produced different choice sequences:\n%v\n%v", ch1, ch2)
	}
	var log3 []int
	s := New(NewRandomWalk(43))
	if err := s.Run(toyRun(s, 3, 3, &log3)); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	// Not guaranteed in general, but with 9 interleaved appends these
	// seeds do diverge; a regression to seed-independence would pass both.
	if reflect.DeepEqual(log1, log3) {
		t.Fatalf("different seeds produced identical order %v", log1)
	}
}

func TestDFSEnumeratesAllInterleavings(t *testing.T) {
	// Two tasks, two appends each: C(4,2) = 6 distinct orders.
	dfs := NewDFS(64)
	seen := make(map[string]bool)
	execs := 0
	res := Explore(Options{Strategy: dfs, Runs: 1000}, func(s *Scheduler) RunSpec {
		var log []int
		return RunSpec{
			Body: toyRun(s, 2, 2, &log),
			Check: func() error {
				execs++
				seen[fmt.Sprint(log)] = true
				return nil
			},
		}
	})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if !res.Exhausted {
		t.Fatalf("DFS did not exhaust the space in %d executions", res.Executions)
	}
	if len(seen) != 6 {
		t.Fatalf("DFS found %d distinct orders, want 6: %v", len(seen), seen)
	}
	t.Logf("DFS: %d executions, %d distinct orders", execs, len(seen))
}

func TestPCTExploresOrders(t *testing.T) {
	pct := NewPCT(7, 3)
	seen := make(map[string]bool)
	res := Explore(Options{Strategy: pct, Runs: 100}, func(s *Scheduler) RunSpec {
		var log []int
		return RunSpec{
			Body:  toyRun(s, 2, 2, &log),
			Check: func() error { seen[fmt.Sprint(log)] = true; return nil },
		}
	})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if len(seen) < 2 {
		t.Fatalf("PCT found only %d distinct orders in %d runs", len(seen), res.Executions)
	}
}

func TestWaitTasksJoins(t *testing.T) {
	// A parent task spawns two children into a group and joins them; the
	// parent's post-join append must come after both children's.
	type group struct{}
	var log []int
	s := New(NewRandomWalk(1))
	err := s.Run(func() {
		g := &group{}
		for i := 0; i < 2; i++ {
			id := i
			tk := s.TaskSpawn(g)
			go func() {
				defer s.TaskEnd(tk)
				s.TaskBegin(tk)
				log = append(log, id)
				s.Step()
				log = append(log, id)
			}()
		}
		s.WaitTasks(g)
		log = append(log, 99)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(log) != 5 || log[4] != 99 {
		t.Fatalf("join did not order parent after children: %v", log)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(NewRandomWalk(1))
	err := s.Run(func() {
		w := s.NewWaiter()
		w.Park() // nobody will ever wake us
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if _, derr := DecodeSchedule(dl.Schedule); derr != nil {
		t.Fatalf("deadlock schedule token does not decode: %v", derr)
	}
}

func TestWakeBeforeParkNotDeadlock(t *testing.T) {
	s := New(NewRandomWalk(1))
	err := s.Run(func() {
		w := s.NewWaiter()
		w.Wake()
		w.Park() // must return immediately
	})
	if err != nil {
		t.Fatalf("wake-before-park run failed: %v", err)
	}
}

func TestParkWakeAcrossTasks(t *testing.T) {
	// One task parks, another wakes it; all schedules must complete.
	dfs := NewDFS(64)
	res := Explore(Options{Strategy: dfs, Runs: 500}, func(s *Scheduler) RunSpec {
		var got bool
		return RunSpec{
			Body: func() {
				w := s.NewWaiter()
				s.Go(func() {
					w.Park()
					got = true
				})
				s.Go(func() { w.Wake() })
			},
			Check: func() error {
				if !got {
					return errors.New("parked task never resumed")
				}
				return nil
			},
		}
	})
	if res.Violation != nil {
		t.Fatalf("park/wake violation: %v", res.Violation)
	}
	if !res.Exhausted {
		t.Fatalf("DFS did not exhaust park/wake space in %d runs", res.Executions)
	}
}

func TestScheduleTokenRoundTrip(t *testing.T) {
	cases := [][]int{nil, {}, {0}, {0, 1, 2, 300, 0, 70000}}
	for _, c := range cases {
		tok := EncodeSchedule(c)
		back, err := DecodeSchedule(tok)
		if err != nil {
			t.Fatalf("decode(%q): %v", tok, err)
		}
		if len(back) != len(c) {
			t.Fatalf("round trip %v -> %v", c, back)
		}
		for i := range c {
			if back[i] != c[i] {
				t.Fatalf("round trip %v -> %v", c, back)
			}
		}
	}
	if _, err := DecodeSchedule("nope"); err == nil {
		t.Fatal("decoding garbage token should fail")
	}
	if _, err := DecodeSchedule(schedulePrefix + "!!!"); err == nil {
		t.Fatal("decoding bad base64 should fail")
	}
}

func TestReplayReproducesOrder(t *testing.T) {
	// Find some order with a random walk, then replay its token and
	// demand the identical observable log.
	mk := func(s *Scheduler, log *[]int) RunSpec {
		return RunSpec{Body: toyRun(s, 3, 2, log)}
	}
	var origLog []int
	s := New(NewRandomWalk(99))
	if err := s.Run(mk(s, &origLog).Body); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	tok := EncodeSchedule(s.Choices())

	for i := 0; i < 3; i++ {
		var replayLog []int
		if err := Replay(tok, func(s *Scheduler) RunSpec { return mk(s, &replayLog) }); err != nil {
			t.Fatalf("replay %d failed: %v", i, err)
		}
		if !reflect.DeepEqual(origLog, replayLog) {
			t.Fatalf("replay %d diverged:\noriginal %v\nreplay   %v", i, origLog, replayLog)
		}
	}
}

func TestStepLimit(t *testing.T) {
	s := New(NewRandomWalk(1), WithMaxSteps(16))
	err := s.Run(func() {
		for {
			s.Step()
		}
	})
	if err == nil {
		t.Fatal("livelocked run should exceed the step limit")
	}
}

func TestDFSStateHashPruning(t *testing.T) {
	// With a constant state hash every revisited decision point collapses
	// to one alternative, so the search space shrinks drastically but at
	// least one full execution still happens.
	dfs := NewDFS(64)
	pruned := 0
	res := Explore(Options{Strategy: dfs, Runs: 1000}, func(s *Scheduler) RunSpec {
		var log []int
		return RunSpec{
			Body:      toyRun(s, 2, 2, &log),
			Check:     func() error { pruned++; return nil },
			StateHash: func() uint64 { return 0xfeed },
		}
	})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if !res.Exhausted {
		t.Fatal("pruned DFS should exhaust quickly")
	}
	if pruned >= 6 {
		t.Fatalf("constant-hash pruning should cut below the 6 full orders, got %d", pruned)
	}
}
