package sched

import "sync"

// Waiter is a one-shot park/wake point: exactly one thread calls Park
// (blocking until woken) and some other thread calls Wake exactly once.
// Waking before parking is allowed — Park then returns immediately. A
// Waiter is dead once Park has returned; obtain a fresh one per wait.
//
// The discipline (single Park, single Wake) is what lets both
// implementations stay allocation- and syscall-cheap; callers that need
// broadcast semantics layer a waiter list on top (see cc's notifier).
type Waiter interface {
	Park()
	Wake()
}

// Blocker supplies the park/wake points a concurrency controller blocks
// on. Production code uses DefaultBlocker (real pooled channels); a test
// attaches a *Scheduler instead, turning every block into a virtual
// scheduling decision. Controllers that block implement
//
//	SetBlocker(b Blocker)
//
// (interface Schedulable), which must be called before the controller's
// first Spawn.
type Blocker interface {
	NewWaiter() Waiter
}

// Schedulable is implemented by controllers whose blocking points can be
// routed through a deterministic scheduler. SetBlocker must be called
// before the controller admits its first computation.
type Schedulable interface {
	SetBlocker(Blocker)
}

// chanWaiter is the production Waiter: a pooled one-slot channel. The
// buffered slot makes Wake non-blocking and wake-before-park safe; Park
// returns the waiter to the pool after draining, which is safe because
// the single Wake has already completed its send by then.
type chanWaiter struct {
	ch   chan struct{}
	pool *sync.Pool
}

func (w *chanWaiter) Park() {
	<-w.ch
	w.pool.Put(w)
}

func (w *chanWaiter) Wake() { w.ch <- struct{}{} }

type chanBlocker struct{ pool sync.Pool }

func (b *chanBlocker) NewWaiter() Waiter { return b.pool.Get().(*chanWaiter) }

var defaultBlocker = newChanBlocker()

func newChanBlocker() *chanBlocker {
	b := &chanBlocker{}
	b.pool.New = func() any { return &chanWaiter{ch: make(chan struct{}, 1), pool: &b.pool} }
	return b
}

// DefaultBlocker returns the production Blocker: real channel-based
// waiters, pooled so steady-state blocking allocates nothing.
func DefaultBlocker() Blocker { return defaultBlocker }
