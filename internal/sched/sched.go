// Package sched is the repository's deterministic-simulation-testing
// subsystem: a virtual scheduler that owns all concurrency of a test
// run, so that every interleaving of a workload's computations is a
// deterministic function of an explicit choice sequence — searchable,
// recordable, and replayable.
//
// The pieces:
//
//   - Scheduler: a cooperative token-passing scheduler. Every thread of
//     the run is a registered task; exactly one task runs at a time, and
//     at each decision point a Strategy picks the next runnable task. It
//     plugs into the framework twice: as a core.Hook (computation
//     threads, joins, and dispatch yield points) and as a Blocker (the
//     park/wake points controllers block on). A schedule in which no
//     task is runnable but some are parked is a deadlock — detected
//     immediately, with the full schedule, instead of a test timeout.
//   - Strategies: seeded random walk (sampling, the behaviour the old
//     stress tests approximated), PCT-style randomized priority
//     scheduling with bounded depth, and bounded exhaustive DFS with
//     state-hash pruning for small workloads.
//   - Explore/Replay: the driver loop. Every explored execution is
//     checked by workload invariants; a violation carries a compact
//     schedule token, and Replay re-executes exactly that interleaving.
package sched

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
)

type taskState uint8

const (
	stateRunnable taskState = iota
	stateRunning
	stateParked    // blocked on a Waiter
	stateWaitGroup // blocked in WaitTasks
	stateDone
)

func (st taskState) String() string {
	switch st {
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateParked:
		return "parked"
	case stateWaitGroup:
		return "joining"
	case stateDone:
		return "done"
	default:
		return "?"
	}
}

// task is one virtual thread. Its gate carries the execution token: a
// task runs only between receiving on gate and its next transition.
type task struct {
	id    int
	state taskState
	gate  chan struct{}
	group any // join group it was spawned into; nil for root tasks
}

// DeadlockError reports a schedule under which every live task is
// blocked. Schedule is the replay token of the complete interleaving
// that led into the deadlock.
type DeadlockError struct {
	Schedule string
	Tasks    string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sched: deadlock — all live tasks blocked (%s); schedule %s", e.Tasks, e.Schedule)
}

// Scheduler is a deterministic cooperative scheduler for one execution.
// Create one per run with New; it is not reusable.
//
// It implements core.Hook (attach with core.WithHook) and Blocker
// (inject into controllers with SetBlocker), so both the framework's
// thread structure and the controllers' blocking are under its control.
type Scheduler struct {
	strategy  Strategy
	maxSteps  int
	stateHash func() uint64

	mu       sync.Mutex
	tasks    []*task // by id
	groups   map[any]*joinGroup
	running  *task
	live     int
	steps    int
	choices  []int
	err      error
	dead     bool // poisoned: a terminal error was recorded
	closed   bool
	finished chan struct{}
}

type joinGroup struct {
	n       int
	waiters []*task
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithMaxSteps bounds the number of scheduling decisions per run — a
// runaway guard that converts livelocks into errors (default 1 << 20).
func WithMaxSteps(n int) Option {
	return func(s *Scheduler) { s.maxSteps = n }
}

// WithStateHash attaches a workload state fingerprint, consulted at each
// decision point and fed to the strategy (the DFS strategy prunes
// states it has already expanded).
func WithStateHash(fn func() uint64) Option {
	return func(s *Scheduler) { s.stateHash = fn }
}

// New creates a scheduler for one execution driven by the strategy.
func New(strategy Strategy, opts ...Option) *Scheduler {
	s := &Scheduler{
		strategy: strategy,
		maxSteps: 1 << 20,
		groups:   make(map[any]*joinGroup),
		finished: make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Run executes root as the first task and returns when every task has
// terminated, or with an error when the run deadlocked, exceeded the
// step bound, or diverged from a replayed schedule. On error the
// scheduler is poisoned: all blocked tasks are released so their
// goroutines can drain (their further execution is uncontrolled and
// their results meaningless — the run already failed).
func (s *Scheduler) Run(root func()) error {
	s.mu.Lock()
	t := s.newTaskLocked(nil)
	s.mu.Unlock()
	go func() {
		<-t.gate
		root()
		s.taskDone(t)
	}()
	s.mu.Lock()
	s.scheduleLocked()
	s.mu.Unlock()
	<-s.finished
	return s.err
}

// Choices returns the decision sequence of the run so far: at step i,
// the index into the id-sorted runnable set that was granted.
func (s *Scheduler) Choices() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.choices))
	copy(out, s.choices)
	return out
}

// Go registers fn as a new root-level task. Call it from the run's root
// function (or any running task) to spawn the workload's computations;
// the caller keeps running, the new task waits to be scheduled.
func (s *Scheduler) Go(fn func()) {
	s.mu.Lock()
	t := s.newTaskLocked(nil)
	s.mu.Unlock()
	go func() {
		<-t.gate
		fn()
		s.taskDone(t)
	}()
}

// Step is an explicit yield point for workload code — e.g. between the
// read and the write of a deliberately racy handler body, modelling that
// real handlers are preemptible mid-expression.
func (s *Scheduler) Step() { s.yield() }

// --- core.Hook ---

// TaskSpawn implements core.Hook.
func (s *Scheduler) TaskSpawn(group any) any {
	s.mu.Lock()
	t := s.newTaskLocked(group)
	s.mu.Unlock()
	return t
}

// TaskBegin implements core.Hook: the new thread blocks here until the
// strategy first schedules it.
func (s *Scheduler) TaskBegin(tk any) {
	<-tk.(*task).gate
}

// TaskEnd implements core.Hook.
func (s *Scheduler) TaskEnd(tk any) { s.taskDone(tk.(*task)) }

// WaitTasks implements core.Hook: the running task blocks until every
// task spawned into the group has ended.
func (s *Scheduler) WaitTasks(group any) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	g := s.groups[group]
	if g == nil || g.n == 0 {
		s.mu.Unlock()
		return
	}
	t := s.running
	if t == nil {
		s.mu.Unlock()
		return
	}
	t.state = stateWaitGroup
	g.waiters = append(g.waiters, t)
	s.scheduleLocked()
	s.mu.Unlock()
	<-t.gate
}

// Yield implements core.Hook: a framework-level decision point.
func (s *Scheduler) Yield(core.YieldPoint) { s.yield() }

// --- Blocker ---

// schedWaiter parks its task inside the virtual scheduler. Wake marks
// the task runnable without a decision point — the waking task keeps
// running until its own next yield, exactly like a channel send.
type schedWaiter struct {
	s     *Scheduler
	t     *task
	woken bool
}

// NewWaiter implements Blocker.
func (s *Scheduler) NewWaiter() Waiter { return &schedWaiter{s: s} }

func (w *schedWaiter) Park() {
	s := w.s
	s.mu.Lock()
	if s.dead || w.woken {
		w.woken = false
		s.mu.Unlock()
		return
	}
	t := s.running
	if t == nil {
		s.mu.Unlock()
		return
	}
	w.t = t
	t.state = stateParked
	s.scheduleLocked()
	s.mu.Unlock()
	<-t.gate
}

func (w *schedWaiter) Wake() {
	s := w.s
	s.mu.Lock()
	if w.t == nil {
		w.woken = true
	} else {
		if w.t.state == stateParked {
			w.t.state = stateRunnable
		}
		w.t = nil
	}
	s.mu.Unlock()
}

// --- internals ---

func (s *Scheduler) newTaskLocked(group any) *task {
	t := &task{id: len(s.tasks), state: stateRunnable, gate: make(chan struct{}, 1), group: group}
	s.tasks = append(s.tasks, t)
	s.live++
	if group != nil {
		g := s.groups[group]
		if g == nil {
			g = &joinGroup{}
			s.groups[group] = g
		}
		g.n++
	}
	if ob, ok := s.strategy.(taskObserver); ok {
		ob.TaskCreated(t.id)
	}
	return t
}

func (s *Scheduler) yield() {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	t := s.running
	if t == nil {
		s.mu.Unlock()
		return
	}
	t.state = stateRunnable
	s.scheduleLocked()
	s.mu.Unlock()
	<-t.gate
}

func (s *Scheduler) taskDone(t *task) {
	s.mu.Lock()
	if t.state != stateDone {
		t.state = stateDone
		s.live--
	}
	if s.dead {
		s.mu.Unlock()
		return
	}
	if t.group != nil {
		if g := s.groups[t.group]; g != nil {
			g.n--
			if g.n == 0 {
				for _, w := range g.waiters {
					w.state = stateRunnable
				}
				delete(s.groups, t.group)
			}
		}
	}
	s.running = nil
	s.scheduleLocked()
	s.mu.Unlock()
}

// scheduleLocked is the decision point: collect the runnable set (in
// task-id order, which is deterministic because ids are assigned in
// schedule order), let the strategy pick, and grant the token. No
// runnable task with live tasks remaining is a deadlock. Callers hold
// s.mu.
func (s *Scheduler) scheduleLocked() {
	if s.dead {
		return
	}
	s.running = nil
	var runnable []*task
	for _, t := range s.tasks {
		if t.state == stateRunnable {
			runnable = append(runnable, t)
		}
	}
	if len(runnable) == 0 {
		if s.live == 0 {
			s.finishLocked(nil)
			return
		}
		s.finishLocked(&DeadlockError{
			Schedule: EncodeSchedule(s.choices),
			Tasks:    s.describeLocked(),
		})
		return
	}
	if s.steps >= s.maxSteps {
		s.finishLocked(fmt.Errorf("sched: step limit %d exceeded (livelock?); schedule %s",
			s.maxSteps, EncodeSchedule(s.choices)))
		return
	}
	ids := make([]int, len(runnable))
	for i, t := range runnable {
		ids[i] = t.id
	}
	var h uint64
	if s.stateHash != nil {
		h = s.stateHash()
	}
	idx := s.strategy.Pick(ids, s.steps, h)
	if idx < 0 || idx >= len(runnable) {
		s.finishLocked(fmt.Errorf("sched: schedule diverged at step %d (%d runnable tasks, strategy chose %d)",
			s.steps, len(runnable), idx))
		return
	}
	s.steps++
	s.choices = append(s.choices, idx)
	t := runnable[idx]
	t.state = stateRunning
	s.running = t
	t.gate <- struct{}{}
}

// finishLocked ends the run. A non-nil error poisons the scheduler and
// best-effort releases every blocked task so goroutines can drain.
func (s *Scheduler) finishLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	if err != nil {
		s.dead = true
		for _, t := range s.tasks {
			if t.state != stateDone {
				select {
				case t.gate <- struct{}{}:
				default:
				}
			}
		}
	}
	close(s.finished)
}

func (s *Scheduler) describeLocked() string {
	var b strings.Builder
	for _, t := range s.tasks {
		if t.state == stateDone {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "t%d:%s", t.id, t.state)
	}
	return b.String()
}
