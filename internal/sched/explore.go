package sched

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"strings"
)

// RunSpec is one deterministically-scheduled execution of a workload.
// The factory passed to Explore builds a fresh workload per execution
// around the scheduler it receives (attach the scheduler as the stack's
// hook and the controllers' blocker).
type RunSpec struct {
	// Body runs as the root task; it spawns the workload's computations
	// with Scheduler.Go and may return before they finish — the run ends
	// when every task has.
	Body func()
	// Check inspects the completed execution's invariants (serializability,
	// lost updates, lifecycle balance); a non-nil error is a violation.
	Check func() error
	// StateHash, optional, fingerprints the workload state for DFS
	// pruning.
	StateHash func() uint64
}

// Options parameterizes Explore.
type Options struct {
	Strategy Strategy
	// Runs caps the number of executions (an exhaustive strategy may
	// stop earlier).
	Runs int
	// MaxSteps bounds decisions per execution (0: the Scheduler default).
	MaxSteps int
}

// Violation is one failed execution: the invariant error together with
// the schedule token that reproduces it via Replay.
type Violation struct {
	Execution int
	Schedule  string
	Err       error
}

func (v *Violation) Error() string {
	return fmt.Sprintf("execution %d: %v (replay schedule %s)", v.Execution, v.Err, v.Schedule)
}

// Result summarises an exploration.
type Result struct {
	Strategy   string
	Executions int
	Exhausted  bool // the strategy enumerated its whole bounded space
	Violation  *Violation
}

// Explore runs up to opts.Runs executions of the workload, each under a
// fresh scheduler driven by the shared strategy, and stops at the first
// violation (deadlock, step-limit, or Check failure).
func Explore(opts Options, mk func(s *Scheduler) RunSpec) Result {
	res := Result{Strategy: opts.Strategy.Name()}
	for i := 0; i < opts.Runs; i++ {
		if ex, ok := opts.Strategy.(exhaustible); ok && ex.Exhausted() {
			res.Exhausted = true
			break
		}
		if ro, ok := opts.Strategy.(runObserver); ok {
			ro.BeginRun()
		}
		var sopts []Option
		if opts.MaxSteps > 0 {
			sopts = append(sopts, WithMaxSteps(opts.MaxSteps))
		}
		s := New(opts.Strategy, sopts...)
		spec := mk(s)
		s.stateHash = spec.StateHash
		err := s.Run(spec.Body)
		if ro, ok := opts.Strategy.(runObserver); ok {
			ro.EndRun()
		}
		if err == nil && spec.Check != nil {
			err = spec.Check()
		}
		res.Executions++
		if err != nil {
			res.Violation = &Violation{
				Execution: i,
				Schedule:  EncodeSchedule(s.Choices()),
				Err:       err,
			}
			return res
		}
	}
	if ex, ok := opts.Strategy.(exhaustible); ok && ex.Exhausted() {
		res.Exhausted = true
	}
	return res
}

// Replay re-executes exactly the interleaving a schedule token records
// against a fresh instance of the same workload, returning the run or
// check error it reproduces (nil when the schedule passes — e.g. the
// token came from a different workload build).
func Replay(token string, mk func(s *Scheduler) RunSpec) error {
	choices, err := DecodeSchedule(token)
	if err != nil {
		return err
	}
	s := New(&fixed{choices: choices}, WithMaxSteps(len(choices)+1024))
	spec := mk(s)
	s.stateHash = spec.StateHash
	if err := s.Run(spec.Body); err != nil {
		return err
	}
	if spec.Check != nil {
		return spec.Check()
	}
	return nil
}

// schedulePrefix versions the token wire format.
const schedulePrefix = "sx1:"

// EncodeSchedule renders a decision sequence as a compact printable
// token: "sx1:" + base64url(uvarint choices).
func EncodeSchedule(choices []int) string {
	buf := make([]byte, 0, len(choices)+8)
	var tmp [binary.MaxVarintLen64]byte
	for _, c := range choices {
		n := binary.PutUvarint(tmp[:], uint64(c))
		buf = append(buf, tmp[:n]...)
	}
	return schedulePrefix + base64.RawURLEncoding.EncodeToString(buf)
}

// DecodeSchedule parses a token produced by EncodeSchedule.
func DecodeSchedule(token string) ([]int, error) {
	if !strings.HasPrefix(token, schedulePrefix) {
		return nil, fmt.Errorf("sched: schedule token missing %q prefix", schedulePrefix)
	}
	raw, err := base64.RawURLEncoding.DecodeString(token[len(schedulePrefix):])
	if err != nil {
		return nil, fmt.Errorf("sched: malformed schedule token: %w", err)
	}
	var choices []int
	for len(raw) > 0 {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("sched: truncated schedule token")
		}
		choices = append(choices, int(v))
		raw = raw[n:]
	}
	return choices, nil
}
