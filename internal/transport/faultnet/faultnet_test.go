package faultnet_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/faultnet"
)

func wrap(t *testing.T, nodes int, cfg faultnet.Config) *faultnet.Net {
	t.Helper()
	cfg.Inner = simnet.New(simnet.Config{Nodes: nodes, Seed: 1})
	n := faultnet.New(cfg)
	t.Cleanup(n.Close)
	return n
}

// recvN drains exactly n datagrams (with a deadline) from an endpoint.
func recvN(t *testing.T, ep transport.Endpoint, n int) []transport.Datagram {
	t.Helper()
	var out []transport.Datagram
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		got := make(chan transport.Datagram, 1)
		go func() {
			if d, ok := ep.Recv(); ok {
				got <- d
			}
		}()
		select {
		case d := <-got:
			out = append(out, d)
		case <-deadline:
			t.Fatalf("timed out after %d/%d datagrams", len(out), n)
		}
	}
	return out
}

func TestZeroRatesPassThrough(t *testing.T) {
	n := wrap(t, 2, faultnet.Config{Seed: 7})
	for i := 0; i < 100; i++ {
		n.Endpoint(0).Send(1, []byte{byte(i)})
	}
	got := recvN(t, n.Endpoint(1), 100)
	for i, d := range got {
		if d.From != 0 || len(d.Payload) != 1 || d.Payload[0] != byte(i) {
			t.Fatalf("datagram %d: got %v", i, d)
		}
	}
	s := n.Stats()
	if s.Sent != 100 || s.Delivered != 100 || s.DroppedLoss != 0 || s.Corrupted != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDropIsSeededAndCounted(t *testing.T) {
	counts := make([]uint64, 2)
	for round := range counts {
		n := wrap(t, 2, faultnet.Config{Seed: 99, Rates: faultnet.Rates{Drop: 0.5}})
		for i := 0; i < 200; i++ {
			n.Endpoint(0).Send(1, []byte{byte(i)})
		}
		s := n.Stats()
		if s.DroppedLoss == 0 || s.DroppedLoss == 200 {
			t.Fatalf("round %d: implausible drop count %d", round, s.DroppedLoss)
		}
		if s.Sent != 200 {
			t.Fatalf("round %d: Sent = %d, want 200 (drops included)", round, s.Sent)
		}
		counts[round] = s.DroppedLoss
		n.Close()
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed, different drop counts: %d vs %d", counts[0], counts[1])
	}
}

func TestDuplicate(t *testing.T) {
	n := wrap(t, 2, faultnet.Config{Seed: 3, Rates: faultnet.Rates{Dup: 1}})
	n.Endpoint(0).Send(1, []byte("once"))
	got := recvN(t, n.Endpoint(1), 2)
	for _, d := range got {
		if string(d.Payload) != "once" {
			t.Fatalf("payload %q", d.Payload)
		}
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	n := wrap(t, 2, faultnet.Config{Seed: 5, Rates: faultnet.Rates{Corrupt: 1}})
	orig := []byte("untouched payload")
	n.Endpoint(0).Send(1, orig)
	d := recvN(t, n.Endpoint(1), 1)[0]
	if bytes.Equal(d.Payload, orig) {
		t.Fatal("payload arrived uncorrupted at Corrupt=1")
	}
	diff := 0
	for i := range orig {
		if d.Payload[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if string(orig) != "untouched payload" {
		t.Fatal("sender's buffer was mutated")
	}
	if n.Stats().Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", n.Stats().Corrupted)
	}
}

func TestReorderInvertsAdjacentPair(t *testing.T) {
	// Reorder every other message deterministically enough to observe at
	// least one inversion in a longer stream.
	n := wrap(t, 2, faultnet.Config{Seed: 11, Rates: faultnet.Rates{Reorder: 0.5}})
	const N = 50
	for i := 0; i < N; i++ {
		n.Endpoint(0).Send(1, []byte{byte(i)})
	}
	got := recvN(t, n.Endpoint(1), N)
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i].Payload[0] < got[i-1].Payload[0] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no inversions observed at Reorder=0.5")
	}
	// Nothing lost: every byte arrives exactly once.
	seen := make(map[byte]bool)
	for _, d := range got {
		if seen[d.Payload[0]] {
			t.Fatalf("byte %d delivered twice", d.Payload[0])
		}
		seen[d.Payload[0]] = true
	}
}

func TestReorderBackstopFlushesQuietLink(t *testing.T) {
	n := wrap(t, 2, faultnet.Config{Seed: 2, Rates: faultnet.Rates{Reorder: 1}})
	n.Endpoint(0).Send(1, []byte("lonely"))
	// No follow-up traffic: only the backstop can release it.
	d := recvN(t, n.Endpoint(1), 1)[0]
	if string(d.Payload) != "lonely" {
		t.Fatalf("payload %q", d.Payload)
	}
}

func TestDelayHoldsBack(t *testing.T) {
	n := wrap(t, 2, faultnet.Config{Seed: 4, Rates: faultnet.Rates{
		Delay: 1, DelayMin: 20 * time.Millisecond, DelayMax: 30 * time.Millisecond,
	}})
	start := time.Now()
	n.Endpoint(0).Send(1, []byte("late"))
	if _, ok := n.Endpoint(1).TryRecv(); ok {
		t.Fatal("datagram arrived inline despite Delay=1")
	}
	d := recvN(t, n.Endpoint(1), 1)[0]
	if string(d.Payload) != "late" {
		t.Fatalf("payload %q", d.Payload)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatalf("arrived after %v, want >= ~20ms", time.Since(start))
	}
}

func TestSymmetricPartitionAndHeal(t *testing.T) {
	n := wrap(t, 3, faultnet.Config{Seed: 6})
	n.Partition([]transport.NodeID{0, 1}, []transport.NodeID{2})
	n.Endpoint(0).Send(2, []byte("cut"))
	n.Endpoint(2).Send(0, []byte("cut"))
	n.Endpoint(0).Send(1, []byte("within"))
	d := recvN(t, n.Endpoint(1), 1)[0]
	if string(d.Payload) != "within" {
		t.Fatalf("payload %q", d.Payload)
	}
	if got := n.Stats().DroppedPartition; got != 2 {
		t.Fatalf("DroppedPartition = %d, want 2", got)
	}
	if _, ok := n.Endpoint(2).TryRecv(); ok {
		t.Fatal("datagram crossed the partition")
	}
	n.Heal()
	n.Endpoint(0).Send(2, []byte("healed"))
	if d := recvN(t, n.Endpoint(2), 1)[0]; string(d.Payload) != "healed" {
		t.Fatalf("payload %q", d.Payload)
	}
}

func TestAsymmetricBlockLink(t *testing.T) {
	n := wrap(t, 2, faultnet.Config{Seed: 8})
	n.BlockLink(0, 1)
	n.Endpoint(0).Send(1, []byte("blocked"))
	n.Endpoint(1).Send(0, []byte("reverse"))
	if d := recvN(t, n.Endpoint(0), 1)[0]; string(d.Payload) != "reverse" {
		t.Fatalf("payload %q", d.Payload)
	}
	if _, ok := n.Endpoint(1).TryRecv(); ok {
		t.Fatal("datagram crossed the blocked direction")
	}
	n.UnblockLink(0, 1)
	n.Endpoint(0).Send(1, []byte("open"))
	if d := recvN(t, n.Endpoint(1), 1)[0]; string(d.Payload) != "open" {
		t.Fatalf("payload %q", d.Payload)
	}
}

func TestSetRatesAtRuntime(t *testing.T) {
	n := wrap(t, 2, faultnet.Config{Seed: 9})
	n.Endpoint(0).Send(1, []byte("a"))
	n.SetRates(faultnet.Rates{Drop: 1})
	n.Endpoint(0).Send(1, []byte("b"))
	n.SetRates(faultnet.Rates{})
	n.Endpoint(0).Send(1, []byte("c"))
	got := recvN(t, n.Endpoint(1), 2)
	if string(got[0].Payload) != "a" || string(got[1].Payload) != "c" {
		t.Fatalf("got %q, %q; want a, c", got[0].Payload, got[1].Payload)
	}
	if n.Stats().DroppedLoss != 1 {
		t.Fatalf("DroppedLoss = %d, want 1", n.Stats().DroppedLoss)
	}
}

func TestCrashRestartDelegates(t *testing.T) {
	n := wrap(t, 2, faultnet.Config{Seed: 10})
	n.Crash(1)
	if !n.Crashed(1) {
		t.Fatal("Crashed(1) = false after Crash")
	}
	n.Endpoint(0).Send(1, []byte("lost"))
	if !n.Restart(1) {
		t.Fatal("Restart(1) failed")
	}
	if n.Crashed(1) {
		t.Fatal("Crashed(1) = true after Restart")
	}
	n.Endpoint(0).Send(1, []byte("alive"))
	if d := recvN(t, n.Endpoint(1), 1)[0]; string(d.Payload) != "alive" {
		t.Fatalf("payload %q", d.Payload)
	}
	if n.Stats().Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", n.Stats().Recovered)
	}
}
