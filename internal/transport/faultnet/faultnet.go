// Package faultnet is fault-injecting middleware for the transport seam:
// it wraps any transport.Transport backend — the deterministic simulator
// or real UDP sockets — and perturbs traffic at the sender's edge with
// seeded, per-link-deterministic faults: drop, duplicate, reorder, delay
// and payload corruption, plus symmetric and asymmetric partitions.
//
// Wrapping happens below the protocol stacks and above the wire, so the
// same storm definition runs unchanged against simnet and udpnet; in
// particular it is what gives real-socket clusters partition injection
// (transport.Partitioner), which a process cannot otherwise do to a real
// network. All fault decisions come from one RNG per directed link,
// seeded from Config.Seed and the link's endpoints — so a given seed
// produces the same fault pattern on a link regardless of how traffic on
// other links interleaves.
//
// With every rate zero the wrapper is a transparent pass-through and must
// be behaviorally invisible: internal/transport/conformance runs its full
// battery against faultnet-wrapped backends to hold it to that.
package faultnet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Rates configures the per-message fault probabilities. Faults are
// decided independently per Send, in this order: partition (absolute),
// drop, corrupt, duplicate, reorder, delay.
type Rates struct {
	// Drop is the probability a datagram is silently discarded.
	Drop float64
	// Corrupt is the probability one payload byte is flipped before the
	// datagram is forwarded (exercises checksum/decode layers).
	Corrupt float64
	// Dup is the probability a datagram is forwarded twice.
	Dup float64
	// Reorder is the probability a datagram is held back until the next
	// datagram on the same link has been forwarded (adjacent swap); a
	// short backstop timer flushes the held datagram if the link goes
	// quiet, so nothing is held forever.
	Reorder float64
	// Delay is the probability a datagram is forwarded after a uniform
	// hold in [DelayMin, DelayMax] instead of inline — later traffic
	// overtakes it.
	Delay float64
	// DelayMin and DelayMax bound the injected hold (defaults 1ms–5ms
	// when Delay > 0 and both are zero).
	DelayMin, DelayMax time.Duration
}

// Config describes a fault-injecting wrapper.
type Config struct {
	// Inner is the wrapped backend (required).
	Inner transport.Transport
	// Seed seeds the per-link fault generators.
	Seed int64
	// Rates are the initial fault rates (all zero = pass-through).
	Rates Rates
}

type linkKey struct{ from, to transport.NodeID }

// link is the per-directed-link fault state: its seeded RNG and the
// reorder hold-back slot.
type link struct {
	rng  *rand.Rand
	held []byte // payload awaiting the next send on this link
}

// Net is the fault-injecting transport. It implements
// transport.Transport and transport.Partitioner.
type Net struct {
	inner transport.Transport
	seed  int64

	mu      sync.Mutex
	rates   Rates                    //samoa:guard mu
	links   map[linkKey]*link        //samoa:guard mu
	group   map[transport.NodeID]int //samoa:guard mu — partition group per node; nil = healed
	blocked map[linkKey]bool         //samoa:guard mu — asymmetric one-way blocks
	closed  bool                     //samoa:guard mu

	// Overlay counters for faults injected here; Stats() adds them to
	// the inner backend's counters (which count what was forwarded).
	sent             atomic.Uint64
	corrupted        atomic.Uint64
	droppedLoss      atomic.Uint64
	droppedPartition atomic.Uint64
}

var (
	_ transport.Transport   = (*Net)(nil)
	_ transport.Partitioner = (*Net)(nil)
)

// New wraps cfg.Inner. It panics when Inner is nil (a construction-time
// programming error, like simnet's invalid node count).
func New(cfg Config) *Net {
	if cfg.Inner == nil {
		panic("faultnet: Config.Inner is required")
	}
	return &Net{
		inner:   cfg.Inner,
		seed:    cfg.Seed,
		rates:   cfg.Rates,
		links:   make(map[linkKey]*link),
		blocked: make(map[linkKey]bool),
	}
}

// SetRates replaces the fault rates; chaos storms use it to phase
// message chaos in and out at runtime.
func (n *Net) SetRates(r Rates) {
	n.mu.Lock()
	n.rates = r
	n.mu.Unlock()
}

// Rates returns the current fault rates.
func (n *Net) Rates() Rates {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rates
}

// Partition splits the cluster: datagrams flow only within a group;
// nodes not listed in any group land in an implicit extra group together
// (same semantics as simnet's Partitioner).
func (n *Net) Partition(groups ...[]transport.NodeID) {
	g := make(map[transport.NodeID]int)
	for i, grp := range groups {
		for _, id := range grp {
			g[id] = i + 1
		}
	}
	n.mu.Lock()
	n.group = g // unlisted nodes default to group 0
	n.mu.Unlock()
}

// BlockLink cuts the directed link from→to (asymmetric partition: from's
// datagrams to to are dropped; the reverse direction is unaffected).
func (n *Net) BlockLink(from, to transport.NodeID) {
	n.mu.Lock()
	n.blocked[linkKey{from, to}] = true
	n.mu.Unlock()
}

// UnblockLink restores the directed link from→to.
func (n *Net) UnblockLink(from, to transport.NodeID) {
	n.mu.Lock()
	delete(n.blocked, linkKey{from, to})
	n.mu.Unlock()
}

// Heal removes any partition, symmetric or asymmetric.
func (n *Net) Heal() {
	n.mu.Lock()
	n.group = nil
	n.blocked = make(map[linkKey]bool)
	n.mu.Unlock()
}

func (n *Net) linkLocked(k linkKey) *link {
	l := n.links[k]
	if l == nil {
		// Mix the endpoints into the seed so every directed link gets an
		// independent, reproducible stream.
		h := n.seed ^ (int64(k.from)+1)*0x7f4a7c15 ^ (int64(k.to)+1)*0x27d4eb4f
		l = &link{rng: rand.New(rand.NewSource(h))}
		n.links[k] = l
	}
	return l
}

// sendPlan is what the locked fault-decision phase concludes; the
// forwarding itself happens unlocked.
type sendPlan struct {
	payload []byte // nil when the datagram was dropped or held back
	dropped bool
	copies  int // 1 or 2 (duplicate)
	delay   time.Duration
	release []byte // previously held datagram to forward first
}

// send applies the fault pipeline to one datagram.
func (n *Net) send(from, to transport.NodeID, payload []byte) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	r := n.rates
	if n.group != nil && n.group[from] != n.group[to] || n.blocked[linkKey{from, to}] {
		n.mu.Unlock()
		n.sent.Add(1)
		n.droppedPartition.Add(1)
		return
	}
	l := n.linkLocked(linkKey{from, to})
	var plan sendPlan
	plan.copies = 1
	// A held datagram is released by the next send on its link,
	// whatever faults that send then suffers itself.
	plan.release, l.held = l.held, nil
	switch {
	case r.Drop > 0 && l.rng.Float64() < r.Drop:
		plan.dropped = true
	default:
		plan.payload = payload
		if r.Corrupt > 0 && l.rng.Float64() < r.Corrupt && len(payload) > 0 {
			plan.payload = append([]byte(nil), payload...)
			plan.payload[l.rng.Intn(len(plan.payload))] ^= 1 << uint(l.rng.Intn(8))
			n.corrupted.Add(1)
		}
		if r.Dup > 0 && l.rng.Float64() < r.Dup {
			plan.copies = 2
		}
		if r.Reorder > 0 && l.rng.Float64() < r.Reorder {
			l.held = append([]byte(nil), plan.payload...)
			plan.payload = nil // held, not lost
			n.backstopLocked(from, to)
		} else if r.Delay > 0 && l.rng.Float64() < r.Delay {
			lo, hi := r.DelayMin, r.DelayMax
			if lo == 0 && hi == 0 {
				lo, hi = time.Millisecond, 5*time.Millisecond
			}
			if hi < lo {
				hi = lo
			}
			plan.delay = lo
			if hi > lo {
				plan.delay += time.Duration(l.rng.Int63n(int64(hi - lo + 1)))
			}
		}
	}
	n.mu.Unlock()

	ep := n.inner.Endpoint(from)
	switch {
	case plan.dropped:
		n.sent.Add(1)
		n.droppedLoss.Add(1)
	case plan.payload == nil:
		// Held for reorder; the next send (or the backstop) emits it.
	case plan.delay > 0:
		p := append([]byte(nil), plan.payload...)
		copies := plan.copies
		time.AfterFunc(plan.delay, func() {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return
			}
			for i := 0; i < copies; i++ {
				ep.Send(to, p)
			}
		})
	default:
		for i := 0; i < plan.copies; i++ {
			ep.Send(to, plan.payload)
		}
	}
	// The previously held datagram goes out after the current one — that
	// inversion is the reorder.
	if plan.release != nil {
		ep.Send(to, plan.release)
	}
}

// backstopLocked flushes a held (reordered) datagram after a short quiet
// period, so a link that goes silent still delivers its last message.
func (n *Net) backstopLocked(from, to transport.NodeID) {
	k := linkKey{from, to}
	time.AfterFunc(2*time.Millisecond, func() {
		n.mu.Lock()
		var p []byte
		if l := n.links[k]; l != nil && l.held != nil {
			p, l.held = l.held, nil
		}
		closed := n.closed
		n.mu.Unlock()
		if p != nil && !closed {
			n.inner.Endpoint(from).Send(to, p)
		}
	})
}

// Size reports the wrapped cluster's address space.
func (n *Net) Size() int { return n.inner.Size() }

// Endpoint returns the fault-injecting attachment of a hosted node.
func (n *Net) Endpoint(id transport.NodeID) transport.Endpoint {
	return &endpoint{inner: n.inner.Endpoint(id), net: n}
}

// Crash delegates to the wrapped backend.
func (n *Net) Crash(id transport.NodeID) { n.inner.Crash(id) }

// Restart delegates to the wrapped backend.
func (n *Net) Restart(id transport.NodeID) bool { return n.inner.Restart(id) }

// Crashed delegates to the wrapped backend.
func (n *Net) Crashed(id transport.NodeID) bool { return n.inner.Crashed(id) }

// Stats merges the wrapper's fault counters with the wrapped backend's:
// a datagram killed here counts as Sent (the caller did call Send) plus
// the matching drop reason; forwarded datagrams are counted by the inner
// backend as usual.
func (n *Net) Stats() transport.Stats {
	s := n.inner.Stats()
	s.Sent += n.sent.Load()
	s.Corrupted += n.corrupted.Load()
	s.DroppedLoss += n.droppedLoss.Load()
	s.DroppedPartition += n.droppedPartition.Load()
	return s
}

// Close shuts down the wrapper and the wrapped backend; pending delayed
// and held datagrams are discarded.
func (n *Net) Close() {
	n.mu.Lock()
	n.closed = true
	for _, l := range n.links {
		l.held = nil
	}
	n.mu.Unlock()
	n.inner.Close()
}

// endpoint decorates an inner endpoint with the fault pipeline on Send.
type endpoint struct {
	inner transport.Endpoint
	net   *Net
}

func (e *endpoint) ID() transport.NodeID { return e.inner.ID() }

func (e *endpoint) Send(to transport.NodeID, payload []byte) {
	e.net.send(e.inner.ID(), to, payload)
}

func (e *endpoint) Recv() (transport.Datagram, bool)    { return e.inner.Recv() }
func (e *endpoint) TryRecv() (transport.Datagram, bool) { return e.inner.TryRecv() }
