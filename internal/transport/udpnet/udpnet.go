// Package udpnet is the real-socket backend of the transport seam: UDP
// datagrams on loopback or a LAN, wire-framed and CRC-checked (frame.go),
// implementing the same transport.Transport contract as the in-process
// simulator (internal/simnet) — the battery in
// internal/transport/conformance holds both to it.
//
// One udpnet.Net instance hosts the cluster nodes bound in this process
// (usually exactly one, the cmd/samoa-node shape; NewCluster builds the
// N-process shape inside one test process) and knows the rest of the
// cluster only as UDP addresses. UDP keeps the substrate honest about
// what the paper's protocols must themselves provide: datagrams are
// lost, duplicated and reordered by the network, and the stacks above
// (ctp's ARQ, gc's RelComm) supply the reliability.
//
// What simnet guarantees that udpnet does not:
//
//   - determinism — simnet's loss/delay/corruption come from a seeded
//     generator; the kernel's scheduling and buffers do not.
//   - omniscient stats — simnet counts why every datagram died; udpnet
//     sees only its own end of the socket (Config.LossProb exists to
//     inject loss for tests, since real loopback loss is too rare to
//     exercise retransmission).
//   - partitions — transport.Partitioner is simnet-only.
//   - remote liveness — Crash/Restart/Crashed act on hosted nodes; a
//     remote process's crash is just silence, as on a real network.
package udpnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Config describes one process's attachment to a cluster.
type Config struct {
	// Addrs lists one UDP address per node, indexed by NodeID. Hosted
	// nodes are bound to their entry (port 0 means kernel-assigned);
	// the rest are where datagrams for that node are sent.
	Addrs []string
	// Local lists the nodes this process hosts; nil means all of them.
	Local []transport.NodeID
	// Conns optionally provides pre-bound sockets for hosted nodes,
	// indexed by NodeID (nil entries bind Addrs[id] instead). This is
	// how a parent process hands inherited sockets to cmd/samoa-node
	// children, and how tests bind every port-0 socket up front so the
	// full address list exists before any node starts.
	Conns []net.PacketConn
	// InboxSize bounds each hosted node's receive queue (default 4096);
	// overflowing datagrams are dropped, like a full socket buffer.
	InboxSize int
	// LossProb injects seeded egress loss (test-only: real loopback
	// almost never drops, so retransmission paths would go unexercised).
	LossProb float64
	// Seed seeds the loss generator.
	Seed int64
}

// Net is a real-UDP transport. Safe for concurrent use.
type Net struct {
	cfg   Config
	nodes []*node

	mu     sync.Mutex
	rng    *rand.Rand //samoa:guard mu
	closed bool       //samoa:guard mu

	sent            atomic.Uint64
	delivered       atomic.Uint64
	corrupted       atomic.Uint64
	droppedLoss     atomic.Uint64
	droppedCrashed  atomic.Uint64
	droppedOverflow atomic.Uint64
	droppedOversize atomic.Uint64
	sendErrors      atomic.Uint64
	recovered       atomic.Uint64
}

// nodeGen is one incarnation of a hosted node, exactly as in simnet: a
// crash closes quit (unblocking receivers) and the socket (dropping
// traffic); a restart installs a fresh generation with an empty inbox
// bound to the same address, so datagrams sent during the outage stay
// lost.
type nodeGen struct {
	conn  net.PacketConn
	inbox chan transport.Datagram
	quit  chan struct{}
}

// node is one cluster address; only hosted nodes carry a generation.
type node struct {
	id      transport.NodeID
	net     *Net
	hosted  bool
	crashed atomic.Bool
	addr    atomic.Pointer[net.UDPAddr]
	gen     atomic.Pointer[nodeGen]
}

// New binds the hosted nodes and starts their receive loops. On any
// bind or resolve failure it closes what it had bound and returns the
// error.
func New(cfg Config) (*Net, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("udpnet: Config.Addrs required")
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 4096
	}
	hosted := make(map[transport.NodeID]bool, len(cfg.Addrs))
	if cfg.Local == nil {
		for i := range cfg.Addrs {
			hosted[transport.NodeID(i)] = true
		}
	} else {
		for _, id := range cfg.Local {
			if int(id) < 0 || int(id) >= len(cfg.Addrs) {
				return nil, fmt.Errorf("udpnet: Local node %d out of range", id)
			}
			hosted[id] = true
		}
	}

	n := &Net{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	fail := func(err error) (*Net, error) {
		n.Close()
		return nil, err
	}
	for i, a := range cfg.Addrs {
		id := transport.NodeID(i)
		nd := &node{id: id, net: n, hosted: hosted[id]}
		n.nodes = append(n.nodes, nd)
		if !nd.hosted {
			ua, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return fail(fmt.Errorf("udpnet: node %d addr %q: %w", i, a, err))
			}
			nd.addr.Store(ua)
			continue
		}
		var conn net.PacketConn
		if i < len(cfg.Conns) && cfg.Conns[i] != nil {
			conn = cfg.Conns[i]
		} else {
			var err error
			conn, err = net.ListenPacket("udp", a)
			if err != nil {
				return fail(fmt.Errorf("udpnet: bind node %d at %q: %w", i, a, err))
			}
		}
		ua, ok := conn.LocalAddr().(*net.UDPAddr)
		if !ok {
			conn.Close()
			return fail(fmt.Errorf("udpnet: node %d: %T is not a UDP socket", i, conn))
		}
		nd.addr.Store(ua)
		g := &nodeGen{
			conn:  conn,
			inbox: make(chan transport.Datagram, cfg.InboxSize),
			quit:  make(chan struct{}),
		}
		nd.gen.Store(g)
		go n.readLoop(nd, g)
	}
	return n, nil
}

// NewCluster binds n loopback nodes on kernel-assigned ports and returns
// one Net per node, each hosting exactly that node — the N-process
// deployment shape, inside one test process, with no port guessing: all
// sockets are bound before any transport is constructed.
func NewCluster(n int) ([]*Net, error) {
	conns := make([]net.PacketConn, n)
	addrs := make([]string, n)
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for i := range conns {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("udpnet: bind node %d: %w", i, err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	nets := make([]*Net, n)
	for i := range nets {
		cs := make([]net.PacketConn, n)
		cs[i] = conns[i]
		t, err := New(Config{
			Addrs: addrs,
			Local: []transport.NodeID{transport.NodeID(i)},
			Conns: cs,
			Seed:  int64(i),
		})
		if err != nil {
			for _, t := range nets[:i] {
				t.Close()
			}
			closeAll()
			return nil, err
		}
		nets[i] = t
	}
	return nets, nil
}

// Size reports the cluster's address-space size.
func (n *Net) Size() int { return len(n.nodes) }

// Addr reports a node's UDP address as currently known — for hosted
// nodes the concrete bound address (useful after binding port 0).
func (n *Net) Addr(id transport.NodeID) string { return n.node(id).addr.Load().String() }

func (n *Net) node(id transport.NodeID) *node {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("udpnet: no node %d", id))
	}
	return n.nodes[id]
}

// Endpoint returns a hosted node's attachment. It panics on an
// out-of-range or non-hosted ID.
func (n *Net) Endpoint(id transport.NodeID) transport.Endpoint {
	nd := n.node(id)
	if !nd.hosted {
		panic(fmt.Sprintf("udpnet: node %d is not hosted by this process", id))
	}
	return nd
}

// readLoop pumps one generation's socket into its inbox. It exits when
// the socket closes (crash or Close).
func (n *Net) readLoop(nd *node, g *nodeGen) {
	buf := make([]byte, MaxPayload+headerSize+crcSize+16)
	for {
		cnt, _, err := g.conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select { //samoa:ignore blocking — quit-checked retry on a real socket; non-blocking by its default arm
			case <-g.quit: //samoa:ignore blocking — the quit probe is what bounds the retry loop at crash/Close
				return
			default:
				continue // transient; UDP read errors are rare and non-fatal
			}
		}
		d, err := decodeFrame(buf[:cnt])
		if err != nil || d.To != nd.id {
			// Corrupt, truncated, alien or mis-addressed bytes never
			// reach the stack — the checksum covers the header, so a
			// flipped address byte lands here too.
			n.corrupted.Add(1)
			continue
		}
		d.Payload = append([]byte(nil), d.Payload...)
		select { //samoa:ignore blocking — socket pump hand-off; the default arm sheds load instead of blocking
		case g.inbox <- d: //samoa:ignore blocking — inbox enqueue never blocks (overflow is counted and dropped)
			n.delivered.Add(1)
		default:
			n.droppedOverflow.Add(1)
		}
	}
}

// send transmits from a hosted node, best-effort.
func (n *Net) send(from *node, to transport.NodeID, payload []byte) {
	n.sent.Add(1)
	dst := n.node(to)
	if from.crashed.Load() || (dst.hosted && dst.crashed.Load()) {
		n.droppedCrashed.Add(1)
		return
	}
	if len(payload) > MaxPayload {
		n.droppedOversize.Add(1)
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	drop := n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb
	n.mu.Unlock()
	if drop {
		n.droppedLoss.Add(1)
		return
	}
	frame := encodeFrame(from.id, to, payload)
	if _, err := from.gen.Load().conn.WriteTo(frame, dst.addr.Load()); err != nil {
		n.sendErrors.Add(1)
	}
}

// Crash takes a hosted node down (no-op for non-hosted nodes: a remote
// process cannot be crashed from here).
func (n *Net) Crash(id transport.NodeID) {
	nd := n.node(id)
	if !nd.hosted {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || nd.crashed.Load() {
		return
	}
	nd.crashed.Store(true)
	g := nd.gen.Load()
	close(g.quit)
	g.conn.Close()
}

// Restart revives a crashed hosted node: a fresh socket on the same
// address and an empty inbox — everything sent during the outage stays
// lost, mirroring simnet.Restart. It reports false when the node is not
// crashed, not hosted, the transport is closed, or the address could
// not be rebound.
func (n *Net) Restart(id transport.NodeID) bool {
	nd := n.node(id)
	if !nd.hosted {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || !nd.crashed.Load() {
		return false
	}
	addr := nd.addr.Load().String()
	var conn net.PacketConn
	var err error
	// The old socket is closed, so the concrete port is free again —
	// but give the kernel a few chances in case the close is still
	// settling or another process raced onto the port.
	for attempt := 0; attempt < 5; attempt++ {
		if conn, err = net.ListenPacket("udp", addr); err == nil {
			break
		}
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
	}
	if err != nil {
		return false
	}
	g := &nodeGen{
		conn:  conn,
		inbox: make(chan transport.Datagram, n.cfg.InboxSize),
		quit:  make(chan struct{}),
	}
	nd.gen.Store(g)
	nd.crashed.Store(false)
	n.recovered.Add(1)
	go n.readLoop(nd, g)
	return true
}

// Crashed reports whether a hosted node is crashed (false for non-hosted
// nodes).
func (n *Net) Crashed(id transport.NodeID) bool {
	nd := n.node(id)
	return nd.hosted && nd.crashed.Load()
}

// Close shuts the transport down: hosted sockets close, receivers
// unblock, later sends are dropped and crashed nodes can no longer be
// restarted. Close is idempotent.
func (n *Net) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, nd := range n.nodes {
		// gen is nil only for nodes a failed New never finished binding.
		if g := nd.gen.Load(); nd.hosted && !nd.crashed.Load() && g != nil {
			close(g.quit)
			g.conn.Close()
		}
	}
}

// Stats returns a snapshot of the transport counters. Corrupted counts
// checksum-rejected inbound frames; loss the kernel or wire inflicted is
// invisible here (see the package comment).
func (n *Net) Stats() transport.Stats {
	return transport.Stats{
		Sent:            n.sent.Load(),
		Delivered:       n.delivered.Load(),
		Corrupted:       n.corrupted.Load(),
		DroppedLoss:     n.droppedLoss.Load(),
		DroppedCrashed:  n.droppedCrashed.Load(),
		DroppedOverflow: n.droppedOverflow.Load(),
		DroppedOversize: n.droppedOversize.Load(),
		SendErrors:      n.sendErrors.Load(),
		Recovered:       n.recovered.Load(),
	}
}

// ID reports the node's identifier.
func (nd *node) ID() transport.NodeID { return nd.id }

// Send transmits payload to another node, best-effort and non-blocking
// (UDP writes never block meaningfully). The payload is serialized
// before Send returns, so the caller may reuse its buffer.
func (nd *node) Send(to transport.NodeID, payload []byte) { nd.net.send(nd, to, payload) }

// Recv blocks until a datagram arrives, returning ok == false once the
// current incarnation has crashed or the transport closed. After a
// Restart, Recv reads from the new incarnation.
func (nd *node) Recv() (transport.Datagram, bool) {
	g := nd.gen.Load()
	select {
	case d := <-g.inbox:
		return d, true
	case <-g.quit:
		// Drain anything already queued before reporting closure.
		select {
		case d := <-g.inbox:
			return d, true
		default:
			return transport.Datagram{}, false
		}
	}
}

// TryRecv returns a queued datagram without blocking.
func (nd *node) TryRecv() (transport.Datagram, bool) {
	select {
	case d := <-nd.gen.Load().inbox:
		return d, true
	default:
		return transport.Datagram{}, false
	}
}

// Compile-time checks: udpnet is a transport backend.
var (
	_ transport.Transport = (*Net)(nil)
	_ transport.Endpoint  = (*node)(nil)
)
