package udpnet

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Frame layout (little-endian, wire codec):
//
//	u16 magic | u8 version | u16 from | u16 to | uvarint len | payload | u32 crc
//
// The CRC (Castagnoli) covers everything before it — header included, so
// a flipped address byte is rejected just like a flipped payload byte and
// a datagram can never be mis-delivered to the wrong node silently. Any
// single-byte corruption is within CRC-32's guaranteed burst-detection
// length, so a lone bit- or byte-flip on the wire is always caught.
const (
	frameMagic   = 0x5A0A // "SAMOA" datagram
	frameVersion = 1

	// headerSize is the fixed part before the payload length prefix;
	// crcSize trails the frame.
	headerSize = 7
	crcSize    = 4

	// MaxPayload bounds one datagram's payload so an encoded frame
	// always fits a 64 KiB UDP datagram with header room to spare.
	MaxPayload = 63 << 10
)

// Frame decoding errors.
var (
	ErrFrameTruncated = errors.New("udpnet: truncated frame")
	ErrFrameChecksum  = errors.New("udpnet: frame checksum mismatch")
	ErrFrameMagic     = errors.New("udpnet: bad frame magic")
	ErrFrameVersion   = errors.New("udpnet: unsupported frame version")
	ErrFrameTrailing  = errors.New("udpnet: trailing bytes after frame")
	ErrFrameOversize  = errors.New("udpnet: payload exceeds MaxPayload")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame serializes one datagram. The payload is copied into the
// returned buffer.
func encodeFrame(from, to transport.NodeID, payload []byte) []byte {
	w := wire.NewWriter(headerSize + crcSize + 2 + len(payload))
	w.U16(frameMagic)
	w.U8(frameVersion)
	w.U16(uint16(from))
	w.U16(uint16(to))
	w.BytesPrefixed(payload)
	w.U32(crc32.Checksum(w.Bytes(), castagnoli))
	return w.Bytes()
}

// decodeFrame parses one datagram. The returned payload aliases b — the
// caller copies it before b is reused. Truncated, corrupted, oversized
// or trailing-garbage input returns an error, never a panic or a
// mis-addressed datagram.
func decodeFrame(b []byte) (transport.Datagram, error) {
	if len(b) < headerSize+1+crcSize {
		return transport.Datagram{}, fmt.Errorf("%w: %d bytes", ErrFrameTruncated, len(b))
	}
	body, tail := b[:len(b)-crcSize], b[len(b)-crcSize:]
	sum := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if crc32.Checksum(body, castagnoli) != sum {
		return transport.Datagram{}, ErrFrameChecksum
	}
	r := wire.NewReader(body)
	if r.U16() != frameMagic {
		return transport.Datagram{}, ErrFrameMagic
	}
	if v := r.U8(); v != frameVersion {
		return transport.Datagram{}, fmt.Errorf("%w: %d", ErrFrameVersion, v)
	}
	from := transport.NodeID(r.U16())
	to := transport.NodeID(r.U16())
	payload := r.BytesPrefixed()
	if err := r.Err(); err != nil {
		return transport.Datagram{}, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	if len(payload) > MaxPayload {
		return transport.Datagram{}, ErrFrameOversize
	}
	if r.Remaining() != 0 {
		return transport.Datagram{}, ErrFrameTrailing
	}
	return transport.Datagram{From: from, To: to, Payload: payload}, nil
}
