package udpnet

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode hammers the datagram header/framing path with
// arbitrary bytes: truncated, corrupted and oversized packets must
// never panic and never mis-deliver. Whatever does decode must be a
// frame the encoder itself stands behind (re-encoding it reproduces an
// equivalent datagram), and within the CRC's guaranteed burst length a
// corrupted-but-accepted frame is impossible.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a frame"))
	f.Add(encodeFrame(0, 1, nil))
	f.Add(encodeFrame(1, 0, []byte("hello")))
	f.Add(encodeFrame(65535, 65535, bytes.Repeat([]byte{0xAA}, 512)))
	long := encodeFrame(2, 3, bytes.Repeat([]byte("samoa"), 400))
	f.Add(long)
	f.Add(long[:len(long)-5]) // truncated
	mut := append([]byte(nil), long...)
	mut[3] ^= 0x40 // corrupted header byte
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := decodeFrame(b) // must never panic
		if err != nil {
			return
		}
		if len(d.Payload) > MaxPayload {
			t.Fatalf("decode accepted %d-byte payload above MaxPayload", len(d.Payload))
		}
		re := encodeFrame(d.From, d.To, d.Payload)
		d2, err := decodeFrame(re)
		if err != nil {
			t.Fatalf("re-encode of accepted frame rejected: %v", err)
		}
		if d2.From != d.From || d2.To != d.To || !bytes.Equal(d2.Payload, d.Payload) {
			t.Fatalf("round trip drifted: %+v → %+v", d, d2)
		}
		// NodeIDs travel as u16: an accepted frame's addresses are in range.
		if d.From < 0 || d.From > 65535 || d.To < 0 || d.To > 65535 {
			t.Fatalf("out-of-range address decoded: %+v", d)
		}
	})
}
