package udpnet

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/transport"
)

// requireLoopbackUDP skips socket tests in environments without a
// usable loopback UDP stack (some sandboxes forbid it).
func requireLoopbackUDP(t *testing.T) {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	c.Close()
}

func recvDeadline(t *testing.T, ep transport.Endpoint, d time.Duration) transport.Datagram {
	t.Helper()
	type res struct {
		d  transport.Datagram
		ok bool
	}
	ch := make(chan res, 1)
	go func() {
		dg, ok := ep.Recv()
		ch <- res{dg, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatal("Recv reported closure")
		}
		return r.d
	case <-time.After(d):
		t.Fatalf("no datagram within %v", d)
		panic("unreachable")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 2000)} {
		b := encodeFrame(3, 7, payload)
		d, err := decodeFrame(b)
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(payload), err)
		}
		if d.From != 3 || d.To != 7 || !bytes.Equal(d.Payload, payload) {
			t.Fatalf("round trip mangled %d-byte payload: %+v", len(payload), d)
		}
	}
}

// TestFrameSingleByteFlipsRejected: any single-byte corruption anywhere
// in a frame — header, length, payload or CRC — is rejected, never
// mis-delivered. Single-byte errors are within CRC-32's guaranteed
// detection length, so this is exhaustive, not probabilistic.
func TestFrameSingleByteFlipsRejected(t *testing.T) {
	frame := encodeFrame(1, 2, []byte("the payload under test"))
	for i := range frame {
		for _, flip := range []byte{0x01, 0x55, 0xFF} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= flip
			if d, err := decodeFrame(mut); err == nil {
				t.Fatalf("byte %d ^ %#x accepted: %+v", i, flip, d)
			}
		}
	}
}

func TestFrameRejectsTruncatedAndTrailing(t *testing.T) {
	frame := encodeFrame(0, 1, []byte("hello"))
	for n := 0; n < len(frame); n++ {
		if _, err := decodeFrame(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := decodeFrame(append(append([]byte(nil), frame...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestOversizeSendDropped: a payload over MaxPayload is counted and
// dropped, never split or truncated onto the wire.
func TestOversizeSendDropped(t *testing.T) {
	requireLoopbackUDP(t)
	n, err := New(Config{Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Endpoint(0).Send(1, make([]byte, MaxPayload+1))
	if got := n.Stats().DroppedOversize; got != 1 {
		t.Fatalf("DroppedOversize = %d; want 1", got)
	}
	if _, ok := n.Endpoint(1).TryRecv(); ok {
		t.Fatal("oversized datagram was delivered")
	}
}

// TestGarbageAndMisaddressedFramesDropped: raw socket writes that are
// not valid frames — or valid frames addressed to a different node —
// are counted as corrupted and never surface through Recv.
func TestGarbageAndMisaddressedFramesDropped(t *testing.T) {
	requireLoopbackUDP(t)
	n, err := New(Config{Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	raw, err := net.Dial("udp", n.Addr(1))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	payloads := [][]byte{
		[]byte("not a frame at all"),
		{},
		encodeFrame(0, 5, []byte("misaddressed")), // valid frame, wrong To
	}
	for _, p := range payloads {
		if _, err := raw.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats().Corrupted < uint64(len(payloads)) {
		if time.Now().After(deadline) {
			t.Fatalf("Corrupted = %d; want %d", n.Stats().Corrupted, len(payloads))
		}
		time.Sleep(200 * time.Microsecond)
	}
	// A real frame still gets through afterwards.
	n.Endpoint(0).Send(1, []byte("legit"))
	if d := recvDeadline(t, n.Endpoint(1), 5*time.Second); string(d.Payload) != "legit" {
		t.Fatalf("got %q; want legit", d.Payload)
	}
}

// TestClusterCrossProcessShape: NewCluster's per-node transports — the
// N-process deployment shape — exchange datagrams through real sockets,
// and remote nodes are correctly un-hosted.
func TestClusterCrossProcessShape(t *testing.T) {
	requireLoopbackUDP(t)
	nets, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nets {
			n.Close()
		}
	}()
	nets[0].Endpoint(0).Send(2, []byte("zero to two"))
	if d := recvDeadline(t, nets[2].Endpoint(2), 5*time.Second); string(d.Payload) != "zero to two" || d.From != 0 {
		t.Fatalf("got %+v", d)
	}
	// Remote nodes: Endpoint panics, Crash is a no-op, Crashed false,
	// Restart refuses.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Endpoint(1) on a transport hosting only node 0 did not panic")
			}
		}()
		nets[0].Endpoint(1)
	}()
	nets[0].Crash(1)
	if nets[0].Crashed(1) {
		t.Error("Crash of a remote node took effect locally")
	}
	if nets[0].Restart(1) {
		t.Error("Restart of a remote node succeeded")
	}
	// Crashing node 1 in its own process is invisible to net 0's
	// liveness view, exactly like a real remote crash.
	nets[1].Crash(1)
	if nets[0].Crashed(1) {
		t.Error("remote crash visible locally")
	}
}

// TestRestartAcrossTransports mirrors simnet.Restart semantics in the
// multi-process shape: datagrams sent by another process during the
// outage are lost, the restarted incarnation starts empty on the same
// address, and new traffic flows.
func TestRestartAcrossTransports(t *testing.T) {
	requireLoopbackUDP(t)
	nets, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nets {
			n.Close()
		}
	}()
	addr := nets[1].Addr(1)

	nets[1].Crash(1)
	nets[0].Endpoint(0).Send(1, []byte("during outage"))
	if !nets[1].Restart(1) {
		t.Fatal("Restart refused")
	}
	if got := nets[1].Addr(1); got != addr {
		t.Fatalf("restart moved the node: %s → %s", addr, got)
	}
	nets[0].Endpoint(0).Send(1, []byte("after restart"))
	if d := recvDeadline(t, nets[1].Endpoint(1), 5*time.Second); string(d.Payload) != "after restart" {
		t.Fatalf("restarted node surfaced %q; outage traffic must stay lost", d.Payload)
	}
	if extra, ok := nets[1].Endpoint(1).TryRecv(); ok {
		t.Fatalf("unexpected extra datagram %q", extra.Payload)
	}
}
