// Package transport is the seam between the protocol stacks and the
// network that carries their datagrams. It is the interface extracted
// from the original in-process simulator (internal/simnet): unreliable,
// unordered datagram exchange between small-integer-addressed nodes,
// with crash/restart and close hooks and monotonic counters.
//
// Two backends implement it:
//
//   - internal/simnet — the deterministic in-process simulator: seeded
//     loss, delay, corruption and partitions. The test substrate.
//   - internal/transport/udpnet — real UDP sockets on loopback or a
//     LAN, with wire-framed, CRC-checked datagrams. The production
//     substrate behind cmd/samoa-node.
//
// Both are held to the same behavioral contract by the battery in
// internal/transport/conformance; consumers (ctp.Endpoint, gc.Site and
// everything above them) compile against this package only and cannot
// tell the backends apart.
package transport

// NodeID identifies a node; IDs are 0..Size-1 across the cluster.
type NodeID int

// Datagram is one unreliable message.
type Datagram struct {
	From, To NodeID
	Payload  []byte
}

// Stats counts transport activity. All fields are monotonic. Backends
// fill in what they can observe: the simulator knows exactly why every
// datagram died, a real socket only sees its own end of the wire (a
// kernel- or switch-dropped packet is invisible, so real backends may
// under-report drops — never deliveries).
type Stats struct {
	// Sent counts Send calls, including ones that were then dropped.
	Sent uint64
	// Delivered counts datagrams enqueued into a receiver's inbox.
	Delivered uint64
	// Corrupted counts corrupted datagrams: injected by the simulator,
	// detected (and rejected) by checksum on real backends.
	Corrupted uint64
	// DroppedLoss counts datagrams dropped by injected loss.
	DroppedLoss uint64
	// DroppedPartition counts datagrams dropped by a partition.
	DroppedPartition uint64
	// DroppedCrashed counts datagrams dropped because an endpoint this
	// backend hosts was crashed.
	DroppedCrashed uint64
	// DroppedOverflow counts datagrams dropped at a full inbox.
	DroppedOverflow uint64
	// DroppedOversize counts sends rejected for exceeding the backend's
	// maximum datagram size (0 on the simulator, which has none).
	DroppedOversize uint64
	// SendErrors counts socket-level send failures (real backends only).
	SendErrors uint64
	// Recovered counts successful Restart calls.
	Recovered uint64
}

// Endpoint is one node's attachment to a transport: the handle a
// protocol stack sends and receives through. An Endpoint stays valid
// across Crash/Restart of its node — Recv simply reports closure for
// the crashed incarnation and reads from the new one after Restart.
type Endpoint interface {
	// ID reports the node's identifier.
	ID() NodeID
	// Send transmits payload to another node, best-effort: it never
	// blocks and reports no outcome. Payload bytes are copied (or
	// serialized) before Send returns, so the caller may reuse its
	// buffer. Sending to an unknown node is a programming error and
	// panics.
	Send(to NodeID, payload []byte)
	// Recv blocks until a datagram arrives. It returns ok == false once
	// the node's current incarnation has crashed or the transport
	// closed; after a Restart, calling Recv again reads from the new
	// incarnation.
	Recv() (Datagram, bool)
	// TryRecv returns a queued datagram without blocking.
	TryRecv() (Datagram, bool)
}

// Transport is the substrate: a cluster-wide address space of nodes, of
// which this instance hosts ("locally attaches") one or more. The
// simulator hosts every node; a udpnet instance hosts the node(s) bound
// in this process and knows the rest only as addresses. Crash, Restart
// and Endpoint address hosted nodes only.
//
// Implementations must be safe for concurrent use.
type Transport interface {
	// Size reports the number of nodes in the cluster's address space.
	Size() int
	// Endpoint returns the attachment of a hosted node. It panics on an
	// out-of-range or non-hosted ID (a construction-time programming
	// error, exactly like the simulator's out-of-range panic).
	Endpoint(id NodeID) Endpoint
	// Crash takes a hosted node down: its traffic is dropped and its
	// receivers unblock. The node stays down until Restart
	// (crash-recovery model). Crashing a non-hosted node is a no-op.
	Crash(id NodeID)
	// Restart revives a crashed hosted node with a fresh incarnation:
	// its inbox starts empty — everything sent while it was down stays
	// lost, as does anything queued at crash time — and it sends and
	// receives again afterwards. It reports false, and does nothing,
	// when the node is not crashed, not hosted, or the transport is
	// closed.
	Restart(id NodeID) bool
	// Crashed reports whether a hosted node is crashed (false for
	// non-hosted nodes, whose liveness is unknowable here).
	Crashed(id NodeID) bool
	// Stats returns a snapshot of the transport counters.
	Stats() Stats
	// Close shuts the transport down: subsequent sends are dropped, all
	// receivers unblock, and crashed nodes can no longer be restarted.
	// Close is idempotent.
	Close()
}

// Partitioner is the optional partition-injection capability. The
// simulator implements it; real backends generally cannot (a real
// partition is the network's doing, not the process's).
type Partitioner interface {
	// Partition splits the cluster: datagrams flow only within a group.
	// Nodes not listed in any group land in an implicit extra group
	// together.
	Partition(groups ...[]NodeID)
	// Heal removes any partition.
	Heal()
}
