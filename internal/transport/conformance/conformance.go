// Package conformance is the behavioral contract every transport
// backend must satisfy, written once and run against all of them: the
// deterministic simulator (internal/simnet) and the real-UDP backend
// (internal/transport/udpnet) pass the same battery, so the protocol
// stacks above the seam cannot tell them apart — proven by tests, not
// asserted.
//
// The battery covers datagram delivery, payload ownership, crash and
// restart semantics (a restarted node starts with an empty inbox;
// outage traffic stays lost), loss tolerance through ctp's ARQ, stats
// monotonicity, close/drain behavior, and — where the backend supports
// injecting one — partitions.
//
// Usage, from a backend's test file:
//
//	conformance.Run(t, conformance.Backend{
//		Name: "mynet",
//		New:  func(t *testing.T, opt conformance.Options) transport.Transport { ... },
//	})
//
// All tests synchronize on deadlines and channel receives, never bare
// sleeps, and bind no fixed ports (backends choose their own
// addressing), so the battery is -race clean and CI-safe.
package conformance

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/ctp"
	"repro/internal/transport"
)

// Options parameterizes one transport under test.
type Options struct {
	// Nodes is the cluster size (every node hosted in-process).
	Nodes int
	// LossProb asks the backend to drop roughly this fraction of
	// datagrams (seeded/injected — the ARQ battery needs real loss).
	LossProb float64
}

// Backend names a transport implementation and how to build one. New
// must return a started transport hosting all opt.Nodes nodes locally;
// the harness closes it. Backends register cleanup via t.Cleanup for
// anything beyond Close.
type Backend struct {
	Name string
	New  func(t *testing.T, opt Options) transport.Transport
}

// waitFor polls cond until it holds or the deadline passes — the
// battery's only time-based wait, used where no channel edge exists
// (e.g. asserting a counter catches up).
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// recvOne receives one datagram with a deadline, without leaking a
// blocked goroutine past the test on success.
func recvOne(t *testing.T, ep transport.Endpoint, d time.Duration) transport.Datagram {
	t.Helper()
	type res struct {
		d  transport.Datagram
		ok bool
	}
	ch := make(chan res, 1)
	go func() {
		dg, ok := ep.Recv()
		ch <- res{dg, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatalf("Recv reported closure while a datagram was expected")
		}
		return r.d
	case <-time.After(d):
		t.Fatalf("no datagram within %v", d)
		return transport.Datagram{}
	}
}

// recvClosed asserts that Recv reports closure (ok == false) within d.
func recvClosed(t *testing.T, ep transport.Endpoint, d time.Duration) {
	t.Helper()
	done := make(chan bool, 1)
	go func() {
		_, ok := ep.Recv()
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatalf("Recv returned a datagram; want closure")
		}
	case <-time.After(d):
		t.Fatalf("Recv still blocked %v after crash/close", d)
	}
}

const tick = 5 * time.Second // generous per-wait deadline; loaded CI boxes stall

// Run executes the full conformance battery against one backend.
func Run(t *testing.T, b Backend) {
	t.Run("Delivery", func(t *testing.T) { testDelivery(t, b) })
	t.Run("PayloadOwnership", func(t *testing.T) { testPayloadOwnership(t, b) })
	t.Run("SelfSend", func(t *testing.T) { testSelfSend(t, b) })
	t.Run("TryRecv", func(t *testing.T) { testTryRecv(t, b) })
	t.Run("StatsMonotonic", func(t *testing.T) { testStatsMonotonic(t, b) })
	t.Run("CrashDropsAndUnblocks", func(t *testing.T) { testCrashDropsAndUnblocks(t, b) })
	t.Run("RestartLosesInbox", func(t *testing.T) { testRestartLosesInbox(t, b) })
	t.Run("RestartRefusals", func(t *testing.T) { testRestartRefusals(t, b) })
	t.Run("CloseUnblocksAndDrains", func(t *testing.T) { testCloseUnblocksAndDrains(t, b) })
	t.Run("ARQLossRecovery", func(t *testing.T) { testARQLossRecovery(t, b) })
	t.Run("Partition", func(t *testing.T) { testPartition(t, b) })
}

// testDelivery: a datagram arrives with correct addressing and payload.
func testDelivery(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 2})
	defer n.Close()
	n.Endpoint(0).Send(1, []byte("hello"))
	d := recvOne(t, n.Endpoint(1), tick)
	if d.From != 0 || d.To != 1 || string(d.Payload) != "hello" {
		t.Fatalf("got %+v; want From=0 To=1 Payload=hello", d)
	}
}

// testPayloadOwnership: Send copies (or serializes) the payload before
// returning, so the sender reusing its buffer cannot corrupt a
// delivered datagram.
func testPayloadOwnership(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 2})
	defer n.Close()
	buf := []byte("original")
	n.Endpoint(0).Send(1, buf)
	for i := range buf {
		buf[i] = 'X'
	}
	d := recvOne(t, n.Endpoint(1), tick)
	if string(d.Payload) != "original" {
		t.Fatalf("payload %q shares the sender's buffer; want %q", d.Payload, "original")
	}
}

// testSelfSend: a node can send to itself.
func testSelfSend(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 1})
	defer n.Close()
	n.Endpoint(0).Send(0, []byte("me"))
	if d := recvOne(t, n.Endpoint(0), tick); string(d.Payload) != "me" {
		t.Fatalf("self-send delivered %q", d.Payload)
	}
}

// testTryRecv: non-blocking receive reports emptiness honestly and sees
// queued datagrams.
func testTryRecv(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 2})
	defer n.Close()
	if _, ok := n.Endpoint(1).TryRecv(); ok {
		t.Fatal("TryRecv returned a datagram from an empty inbox")
	}
	n.Endpoint(0).Send(1, []byte("q"))
	waitFor(t, tick, "datagram to be queued", func() bool {
		d, ok := n.Endpoint(1).TryRecv()
		return ok && string(d.Payload) == "q"
	})
}

// testStatsMonotonic: counters never move backwards and account for the
// traffic the test pushed.
func testStatsMonotonic(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 2})
	defer n.Close()
	prev := n.Stats()
	check := func(s transport.Stats) {
		t.Helper()
		if s.Sent < prev.Sent || s.Delivered < prev.Delivered ||
			s.Recovered < prev.Recovered || s.Corrupted < prev.Corrupted {
			t.Fatalf("stats moved backwards: %+v then %+v", prev, s)
		}
		prev = s
	}
	const rounds = 20
	for i := 0; i < rounds; i++ {
		n.Endpoint(0).Send(1, []byte{byte(i)})
		check(n.Stats())
	}
	for i := 0; i < rounds; i++ {
		recvOne(t, n.Endpoint(1), tick)
	}
	waitFor(t, tick, "Sent/Delivered to reflect traffic", func() bool {
		s := n.Stats()
		return s.Sent >= rounds && s.Delivered >= rounds
	})
	check(n.Stats())
}

// testCrashDropsAndUnblocks: a crashed node's receivers unblock, its
// traffic is dropped, and Crashed reports it.
func testCrashDropsAndUnblocks(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 2})
	defer n.Close()
	if n.Crashed(1) {
		t.Fatal("fresh node reports crashed")
	}
	n.Crash(1)
	if !n.Crashed(1) {
		t.Fatal("Crashed(1) false after Crash(1)")
	}
	recvClosed(t, n.Endpoint(1), tick)
	// Sends to (and from) the crashed node are dropped without panic.
	n.Endpoint(0).Send(1, []byte("into the void"))
	n.Endpoint(1).Send(0, []byte("from the void"))
	if _, ok := n.Endpoint(0).TryRecv(); ok {
		t.Fatal("datagram sent by a crashed node was delivered")
	}
}

// testRestartLosesInbox is the crash-recovery contract: datagrams queued
// at crash time and datagrams sent during the outage are lost; the
// restarted incarnation starts empty and receives new traffic.
func testRestartLosesInbox(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 2})
	defer n.Close()

	// Queue a datagram at node 1, then crash it: the queued datagram
	// must die with the incarnation.
	n.Endpoint(0).Send(1, []byte("queued-before-crash"))
	waitFor(t, tick, "pre-crash datagram to be queued", func() bool {
		return n.Stats().Delivered >= 1
	})
	n.Crash(1)
	// Outage traffic is lost too.
	n.Endpoint(0).Send(1, []byte("sent-during-outage"))
	if !n.Restart(1) {
		t.Fatal("Restart(1) refused a crashed node")
	}
	if n.Crashed(1) {
		t.Fatal("node still crashed after Restart")
	}
	waitFor(t, tick, "Recovered counter", func() bool { return n.Stats().Recovered >= 1 })

	// The first datagram the new incarnation sees must be post-restart
	// traffic — receiving it proves the two earlier ones are gone, since
	// delivery into one inbox preserves arrival order.
	n.Endpoint(0).Send(1, []byte("after-restart"))
	d := recvOne(t, n.Endpoint(1), tick)
	if string(d.Payload) != "after-restart" {
		t.Fatalf("restarted inbox surfaced %q; want only post-restart traffic", d.Payload)
	}
	if extra, ok := n.Endpoint(1).TryRecv(); ok {
		t.Fatalf("restarted inbox held a second datagram %q", extra.Payload)
	}
	// And the revived node can send again.
	n.Endpoint(1).Send(0, []byte("back"))
	if d := recvOne(t, n.Endpoint(0), tick); string(d.Payload) != "back" {
		t.Fatalf("revived node's send delivered %q", d.Payload)
	}
}

// testRestartRefusals: Restart refuses live nodes and closed transports.
func testRestartRefusals(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 1})
	if n.Restart(0) {
		t.Fatal("Restart of a live node must refuse")
	}
	n.Crash(0)
	n.Close()
	if n.Restart(0) {
		t.Fatal("Restart after Close must refuse")
	}
}

// testCloseUnblocksAndDrains: Close unblocks receivers, later sends are
// dropped without panic, and Close is idempotent.
func testCloseUnblocksAndDrains(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 2})
	ep := n.Endpoint(1)
	unblocked := make(chan bool, 1)
	go func() {
		_, ok := ep.Recv()
		unblocked <- ok
	}()
	n.Close()
	select {
	case ok := <-unblocked:
		if ok {
			t.Fatal("Recv returned a datagram at Close; want closure")
		}
	case <-time.After(tick):
		t.Fatal("Recv still blocked after Close")
	}
	n.Endpoint(0).Send(1, []byte("late")) // must not panic
	n.Close()                             // idempotent
	if _, ok := ep.TryRecv(); ok {
		t.Fatal("datagram delivered after Close")
	}
}

// testARQLossRecovery: the transport is lossy, yet a reliable ctp
// composition (ARQ + checksum + ordering) on top of the seam delivers
// everything, in order — the transport contract ctp's retransmission
// actually needs.
func testARQLossRecovery(t *testing.T, b Backend) {
	const msgs = 40
	n := b.New(t, Options{Nodes: 2, LossProb: 0.25})
	defer n.Close()

	got := make(chan []byte, msgs)
	mk := func(id, peer transport.NodeID, deliver func([]byte)) *ctp.Endpoint {
		e, err := ctp.NewEndpoint(ctp.Config{
			Net: n, ID: id, Peer: peer,
			Reliable: true, Ordered: true, Checksummed: true,
			RTO: 10 * time.Millisecond, MSS: 64,
			Deliver: deliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		return e
	}
	a := mk(0, 1, nil)
	bEp := mk(1, 0, func(m []byte) { got <- append([]byte(nil), m...) })
	defer func() {
		a.Stop()
		bEp.Stop()
		for _, err := range append(a.Errs(), bEp.Errs()...) {
			t.Errorf("endpoint error: %v", err)
		}
	}()

	for i := 0; i < msgs; i++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		select {
		case m := <-got:
			want := []byte(fmt.Sprintf("msg-%03d", i))
			if !bytes.Equal(m, want) {
				t.Fatalf("delivery %d = %q; want %q (ordered stream)", i, m, want)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("only %d of %d messages arrived over the lossy transport", i, msgs)
		}
	}
	if a.Retransmits() == 0 {
		t.Log("note: no retransmissions occurred; loss injection may be ineffective")
	}
}

// testPartition: where the backend can inject partitions, datagrams do
// not cross groups and flow again after Heal.
func testPartition(t *testing.T, b Backend) {
	n := b.New(t, Options{Nodes: 3})
	defer n.Close()
	p, ok := n.(transport.Partitioner)
	if !ok {
		t.Skipf("%s does not support partition injection", b.Name)
	}
	p.Partition([]transport.NodeID{0}, []transport.NodeID{1, 2})
	n.Endpoint(0).Send(1, []byte("across"))
	n.Endpoint(2).Send(1, []byte("within"))
	if d := recvOne(t, n.Endpoint(1), tick); string(d.Payload) != "within" {
		t.Fatalf("got %q through a partition", d.Payload)
	}
	p.Heal()
	n.Endpoint(0).Send(1, []byte("healed"))
	if d := recvOne(t, n.Endpoint(1), tick); string(d.Payload) != "healed" {
		t.Fatalf("after Heal got %q; want %q", d.Payload, "healed")
	}
}
