package conformance_test

import (
	"net"
	"testing"

	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
	"repro/internal/transport/faultnet"
	"repro/internal/transport/udpnet"
)

// requireLoopbackUDP skips socket tests in environments without a
// usable loopback UDP stack (some sandboxes forbid it).
func requireLoopbackUDP(t *testing.T) {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	c.Close()
}

// TestSimnetConformance holds the deterministic simulator to the
// transport contract. simnet is the reference backend: it must pass the
// battery unmodified.
func TestSimnetConformance(t *testing.T) {
	conformance.Run(t, conformance.Backend{
		Name: "simnet",
		New: func(t *testing.T, opt conformance.Options) transport.Transport {
			return simnet.New(simnet.Config{
				Nodes:    opt.Nodes,
				LossProb: opt.LossProb,
				Seed:     42,
			})
		},
	})
}

// TestUDPNetConformance holds the real-socket backend to the same
// contract, every node bound to a kernel-assigned loopback port.
func TestUDPNetConformance(t *testing.T) {
	requireLoopbackUDP(t)
	conformance.Run(t, conformance.Backend{
		Name: "udpnet",
		New: func(t *testing.T, opt conformance.Options) transport.Transport {
			addrs := make([]string, opt.Nodes)
			for i := range addrs {
				addrs[i] = "127.0.0.1:0"
			}
			n, err := udpnet.New(udpnet.Config{
				Addrs:    addrs,
				LossProb: opt.LossProb,
				Seed:     42,
			})
			if err != nil {
				t.Fatalf("udpnet.New: %v", err)
			}
			return n
		},
	})
}

// TestFaultnetSimnetConformance holds the fault-injecting wrapper to the
// same contract over the simulator: with zero rates it must be
// behaviorally invisible, and the battery's loss option routes through
// faultnet's own drop pipeline instead of simnet's.
func TestFaultnetSimnetConformance(t *testing.T) {
	conformance.Run(t, conformance.Backend{
		Name: "faultnet(simnet)",
		New: func(t *testing.T, opt conformance.Options) transport.Transport {
			return faultnet.New(faultnet.Config{
				Inner: simnet.New(simnet.Config{Nodes: opt.Nodes, Seed: 42}),
				Seed:  42,
				Rates: faultnet.Rates{Drop: opt.LossProb},
			})
		},
	})
}

// TestFaultnetUDPNetConformance runs the battery against real sockets
// wrapped in faultnet. This is the composition the distributed chaos
// harness ships, and it closes a hole in the plain udpnet run: udpnet
// cannot inject partitions itself (it skips the Partition test), but the
// wrapper is a transport.Partitioner, so here the partition battery
// executes against real UDP.
func TestFaultnetUDPNetConformance(t *testing.T) {
	requireLoopbackUDP(t)
	conformance.Run(t, conformance.Backend{
		Name: "udpnet+faultnet",
		New: func(t *testing.T, opt conformance.Options) transport.Transport {
			addrs := make([]string, opt.Nodes)
			for i := range addrs {
				addrs[i] = "127.0.0.1:0"
			}
			n, err := udpnet.New(udpnet.Config{Addrs: addrs, Seed: 42})
			if err != nil {
				t.Fatalf("udpnet.New: %v", err)
			}
			return faultnet.New(faultnet.Config{
				Inner: n,
				Seed:  42,
				Rates: faultnet.Rates{Drop: opt.LossProb},
			})
		},
	})
}
