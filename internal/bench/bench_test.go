package bench_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// The experiment smoke tests run every table with reduced parameters and
// assert the paper's qualitative shapes, so a regression in any runner or
// in the algorithms themselves fails CI, not just the evaluation run.

func cell(t *testing.T, tab *bench.Table, rowKey string, col int) string {
	t.Helper()
	for _, row := range tab.Rows {
		if row[0] == rowKey || (len(row) > 1 && row[0]+"/"+row[1] == rowKey) {
			return row[col]
		}
	}
	t.Fatalf("row %q not found in %s", rowKey, tab.ID)
	return ""
}

func atoiCell(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.Fields(s)[0])
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return n
}

func TestE1Shapes(t *testing.T) {
	tab := bench.E1Admissibility(60, 80*time.Microsecond)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		name, serial, conc, viol := row[0], atoiCell(t, row[1]), atoiCell(t, row[2]), atoiCell(t, row[3])
		switch name {
		case "serial":
			if conc != 0 || viol != 0 {
				t.Errorf("serial admitted non-serial runs: %v", row)
			}
		case "vca-basic", "vca-bound", "vca-route":
			if viol != 0 {
				t.Errorf("%s admitted violations: %v", name, row)
			}
			if conc == 0 {
				t.Errorf("%s admitted no concurrency at all: %v", name, row)
			}
		case "none":
			if viol == 0 {
				t.Errorf("none admitted no violations in %d trials (suspicious): %v", serial+conc+viol, row)
			}
		}
	}
}

func TestE2Runs(t *testing.T) {
	tab := bench.E2Overhead(500, 16)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE8Shapes(t *testing.T) {
	tab := bench.E8Rollback(4, 15, 100*time.Microsecond)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Low contention: wait-die must beat serial (disjoint overlap).
	wd := float64(atoiCell(t, cell(t, tab, "wait-die", 1)))
	serial := float64(atoiCell(t, cell(t, tab, "serial", 1)))
	if wd < serial {
		t.Errorf("wait-die low-contention %.0f < serial %.0f", wd, serial)
	}
}

func TestE3Shapes(t *testing.T) {
	tab := bench.E3Scalability([]int{1, 4}, 200, 200*time.Microsecond)
	// Disjoint: vca-basic must scale better than serial.
	var serialSpeedup, basicSpeedup float64
	for _, row := range tab.Rows {
		if row[0] != "disjoint" {
			continue
		}
		sp, err := strconv.ParseFloat(strings.TrimSuffix(row[len(row)-1], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[1] {
		case "serial":
			serialSpeedup = sp
		case "vca-basic":
			basicSpeedup = sp
		}
	}
	if basicSpeedup < serialSpeedup {
		t.Errorf("disjoint workload: vca-basic speedup %.1f < serial %.1f", basicSpeedup, serialSpeedup)
	}
}

func TestE4Runs(t *testing.T) {
	tab := bench.E4ABcast([]int{3}, 12)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d: %v", len(tab.Rows), tab.Rows)
	}
}

func TestE5Shapes(t *testing.T) {
	tab := bench.E5Ablation(16, time.Millisecond)
	dur := func(key string) time.Duration {
		d, err := time.ParseDuration(cell(t, tab, key, 1))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	basic := dur("vca-basic")
	exact := dur("vca-bound exact (1)")
	chain := dur("vca-route chain")
	loose8 := dur("vca-bound loose (8x)")
	if exact*3/2 >= basic {
		t.Errorf("exact bounds did not pipeline: exact=%v basic=%v", exact, basic)
	}
	if chain*3/2 >= basic {
		t.Errorf("precise route did not pipeline: chain=%v basic=%v", chain, basic)
	}
	if loose8*2 <= basic {
		t.Errorf("8x over-declared bound unexpectedly pipelined: loose=%v basic=%v", loose8, basic)
	}
}

func TestE6Shapes(t *testing.T) {
	tab := bench.E6ViewRace(1)
	for _, row := range tab.Rows {
		lost := strings.Split(row[1], "/")[0]
		if row[0] == "none" && lost == "0" {
			t.Errorf("none did not lose the message: %v", row)
		}
		if row[0] != "none" && lost != "0" {
			t.Errorf("%s lost messages: %v", row[0], row)
		}
	}
}

func TestE7Shapes(t *testing.T) {
	tab := bench.E7Extensions(8, 30, []float64{1.0}, 200*time.Microsecond)
	rw := float64(atoiCell(t, cell(t, tab, "vca-rw", 1)))
	basic := float64(atoiCell(t, cell(t, tab, "vca-basic", 1)))
	if rw < 2*basic {
		t.Errorf("vca-rw on 100%% reads should far exceed vca-basic: rw=%.0f basic=%.0f", rw, basic)
	}
}

func TestE9Shapes(t *testing.T) {
	tab := bench.E9Transport(30, 128)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		name, delivered := row[0], row[1]
		switch name {
		case "rel+ord+sum, lossy 20%", "rel+ord+sum, corrupt 20%":
			if delivered != "30/30" {
				t.Errorf("%s delivered %s, want everything (repair machinery)", name, delivered)
			}
			if atoiCell(t, row[4]) == 0 && name == "rel+ord+sum, lossy 20%" {
				t.Errorf("%s: no retransmissions on a lossy link", name)
			}
		case "raw datagram, clean":
			if delivered != "30/30" {
				t.Errorf("clean raw link lost messages: %s", delivered)
			}
		}
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &bench.Table{ID: "T", Title: "test", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.Note("n=%d", 1)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"T — test", "a", "1", "note: n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVariantRegistry(t *testing.T) {
	if len(bench.Variants()) != 8 {
		t.Fatalf("variants = %d", len(bench.Variants()))
	}
	if len(bench.Isolating()) != 7 {
		t.Fatal("isolating set wrong")
	}
	if len(bench.PaperVariants()) != 5 {
		t.Fatal("paper set wrong")
	}
	if _, ok := bench.VariantByName("vca-basic"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := bench.VariantByName("zz"); ok {
		t.Fatal("phantom variant")
	}
}

// TestE13Shapes: every swap-safe controller completes the swap battery,
// and settle (superseded epoch drained) can never undercut install
// (Reconfigure returned) — both clocks start at the same instant.
func TestE13Shapes(t *testing.T) {
	tab := bench.E13SwapLatency(4, 5, 50*time.Microsecond)
	if want := len(bench.SwapSafe()); len(tab.Rows) != want {
		t.Fatalf("rows = %d, want %d (one per swap-safe controller)", len(tab.Rows), want)
	}
	for _, row := range tab.Rows {
		install, settle := atoiCell(t, row[1]), atoiCell(t, row[3])
		if settle < install {
			t.Errorf("%s: settle p50 %dµs < install p50 %dµs", row[0], settle, install)
		}
	}
}
