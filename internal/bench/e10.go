package bench

import (
	"fmt"
	"time"

	"repro/internal/sched"
)

// E10SchedOverhead is the deterministic-scheduler overhead guard. Two
// numbers per controller:
//
//   - ns/call native: the production hot path, with the scheduler hook
//     compiled into core but inactive (nil). This must track E2 — the
//     hook's cost when unused is one predicted-not-taken branch per
//     yield point, and the alloc budgets in alloc_test.go pin it at
//     zero allocations.
//   - ns/call explored: the same workload with every computation thread,
//     block point, and dispatch step routed through a virtual scheduler
//     under a seeded random walk. This is the price of one explored
//     execution, paid only in tests (it includes per-execution fixture
//     construction, as exploration rebuilds the workload each run).
func E10SchedOverhead(comps, callsPerComp int) *Table {
	t := &Table{
		ID:     "E10",
		Title:  fmt.Sprintf("deterministic-scheduler overhead (%d computations × %d calls)", comps, callsPerComp),
		Header: []string{"controller", "ns/call native", "ns/call explored", "tax"},
	}
	for _, v := range Variants() {
		w := NewCallWorkload(v, callsPerComp)
		for i := 0; i < 50; i++ {
			if err := w.RunComputation(); err != nil {
				panic(fmt.Sprintf("E10 %s: %v", v.Name, err))
			}
		}
		start := time.Now()
		for i := 0; i < comps; i++ {
			if err := w.RunComputation(); err != nil {
				panic(fmt.Sprintf("E10 %s: %v", v.Name, err))
			}
		}
		nativeNs := float64(time.Since(start).Nanoseconds()) / float64(comps*callsPerComp)

		start = time.Now()
		res := sched.Explore(sched.Options{
			Strategy: sched.NewRandomWalk(1),
			Runs:     comps,
		}, func(s *sched.Scheduler) sched.RunSpec {
			ew := newCallWorkload(v, callsPerComp, s)
			var err error
			return sched.RunSpec{
				Body:  func() { s.Go(func() { err = ew.RunComputation() }) },
				Check: func() error { return err },
			}
		})
		if res.Violation != nil {
			panic(fmt.Sprintf("E10 %s: %v", v.Name, res.Violation))
		}
		exploredNs := float64(time.Since(start).Nanoseconds()) / float64(comps*callsPerComp)
		t.AddRow(v.Name,
			fmt.Sprintf("%.0f", nativeNs),
			fmt.Sprintf("%.0f", exploredNs),
			fmt.Sprintf("%.1fx", exploredNs/nativeNs))
	}
	t.Note("native must track E2 (the inactive hook is one branch per yield point); the explored tax is paid only under exploration")
	return t
}
