package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Fig1 is the protocol of the paper's Figure 1: external event a0 triggers
// handler P, which raises a1 (handler R) then a2 (handler S); b0 → Q → b1
// (R), b2 (S). R and S are shared. Experiment E1 runs its two external
// events concurrently many times and classifies the recorded runs as the
// paper does: serial (r1-like), concurrent-yet-isolated (r2-like), or
// isolation violations (r3-like).
type Fig1 struct {
	stack        *core.Stack
	rec          *trace.Recorder
	a0, b0       *core.EventType
	specA, specB *core.Spec
}

// NewFig1 builds the Figure 1 protocol under a controller variant, with
// up to maxWork of random simulated work per handler (work makes the
// interleavings the experiment is about actually occur).
func NewFig1(v Variant, maxWork time.Duration) *Fig1 {
	f := &Fig1{rec: trace.NewRecorder()}
	f.stack = core.NewStack(v.New(), core.WithTracer(f.rec), core.WithName("fig1"))

	work := func() {
		if maxWork > 0 {
			time.Sleep(time.Duration(rand.Int63n(int64(maxWork))))
		}
	}

	mpP := core.NewMicroprotocol("P")
	mpQ := core.NewMicroprotocol("Q")
	mpR := core.NewMicroprotocol("R")
	mpS := core.NewMicroprotocol("S")

	f.a0, f.b0 = core.NewEventType("a0"), core.NewEventType("b0")
	a1, b1 := core.NewEventType("a1"), core.NewEventType("b1")
	a2, b2 := core.NewEventType("a2"), core.NewEventType("b2")

	hR := mpR.AddHandler("R", func(*core.Context, core.Message) error { work(); return nil })
	hS := mpS.AddHandler("S", func(*core.Context, core.Message) error { work(); return nil })
	hP := mpP.AddHandler("P", func(ctx *core.Context, msg core.Message) error {
		work()
		if err := ctx.Trigger(a1, msg); err != nil {
			return err
		}
		work()
		return ctx.Trigger(a2, msg)
	})
	hQ := mpQ.AddHandler("Q", func(ctx *core.Context, msg core.Message) error {
		work()
		if err := ctx.Trigger(b1, msg); err != nil {
			return err
		}
		work()
		return ctx.Trigger(b2, msg)
	})

	f.stack.Register(mpP, mpQ, mpR, mpS)
	f.stack.Bind(f.a0, hP)
	f.stack.Bind(f.b0, hQ)
	f.stack.Bind(a1, hR)
	f.stack.Bind(b1, hR)
	f.stack.Bind(a2, hS)
	f.stack.Bind(b2, hS)

	switch v.Kind {
	case "bound":
		f.specA = core.AccessBound(map[*core.Microprotocol]int{mpP: 1, mpR: 1, mpS: 1})
		f.specB = core.AccessBound(map[*core.Microprotocol]int{mpQ: 1, mpR: 1, mpS: 1})
	case "route":
		f.specA = core.Route(core.NewRouteGraph().Root(hP).Edge(hP, hR).Edge(hP, hS))
		f.specB = core.Route(core.NewRouteGraph().Root(hQ).Edge(hQ, hR).Edge(hQ, hS))
	default:
		f.specA = core.Access(mpP, mpR, mpS)
		f.specB = core.Access(mpQ, mpR, mpS)
	}
	return f
}

// RunOnce fires a0 and b0 concurrently and reports the run's class.
func (f *Fig1) RunOnce() *trace.Report {
	done := make(chan error, 2)
	go func() { done <- f.stack.External(f.specA, f.a0, "m") }()
	go func() { done <- f.stack.External(f.specB, f.b0, "m") }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			panic(fmt.Sprintf("fig1: %v", err))
		}
	}
	rep := f.rec.Check()
	f.rec.Reset()
	return rep
}

// E1Admissibility classifies `trials` concurrent executions of Figure 1's
// external events per controller — reproducing the paper's §2 run
// analysis (r1 admissible everywhere, r2 only under SAMOA, r3 only under
// Cactus-style no-control).
func E1Admissibility(trials int, maxWork time.Duration) *Table {
	t := &Table{
		ID:     "E1",
		Title:  fmt.Sprintf("Figure 1 run admissibility (%d trials, ≤%v work/handler)", trials, maxWork),
		Header: []string{"controller", "serial (r1-like)", "concurrent-isolated (r2-like)", "violations (r3-like)"},
	}
	for _, v := range PaperVariants() {
		f := NewFig1(v, maxWork)
		serial, concurrent, violations := 0, 0, 0
		for i := 0; i < trials; i++ {
			rep := f.RunOnce()
			switch {
			case !rep.Serializable:
				violations++
			case rep.Serial:
				serial++
			default:
				concurrent++
			}
		}
		t.AddRow(v.Name, fmt.Sprint(serial), fmt.Sprint(concurrent), fmt.Sprint(violations))
	}
	t.Note("expected: Serial admits only r1-like; VCA* admit r2-like but never r3-like; None admits r3-like (paper §2)")
	return t
}
