package bench

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// SwapSafe returns the controller variants whose version tables survive a
// live Replace: the epoch-aware admission paths of serial and the VCA
// family. TSO and wait-die key their lock tables by microprotocol pointer
// and are excluded from reconfiguration workloads (see internal/chaos).
func SwapSafe() []Variant {
	all := Variants()
	out := make([]Variant, 0, len(all))
	for _, v := range all {
		switch v.Name {
		case "none", "tso", "wait-die":
		default:
			out = append(out, v)
		}
	}
	return out
}

// swapLatWorkload keeps `workers` goroutines spawning computations over
// one hot microprotocol while the measuring loop Replaces it. The
// identity table is RWMutex-guarded exactly like a live deployment's
// would be: spawns racing a swap compile against the retired identity,
// fail with ReconfiguredError, and respawn against the successor.
type swapLatWorkload struct {
	stack *core.Stack
	kind  string
	ev    *core.EventType
	work  time.Duration

	mu   sync.RWMutex
	name string
	mp   *core.Microprotocol
	h    *core.Handler

	respawns atomic.Int64
	stop     atomic.Bool
}

func newSwapLatWorkload(v Variant, work time.Duration) *swapLatWorkload {
	w := &swapLatWorkload{kind: v.Kind, work: work, name: "hot"}
	w.stack = core.NewStack(v.New())
	w.ev = core.NewEventType("hot-ev")
	w.mp = core.NewMicroprotocol(w.name)
	w.h = w.mp.AddHandler("visit", w.visit)
	w.stack.Register(w.mp)
	w.stack.Bind(w.ev, w.h)
	return w
}

func (w *swapLatWorkload) visit(ctx *core.Context, msg core.Message) error {
	time.Sleep(w.work) //samoa:ignore blocking — the sleep is the benchmark's simulated handler work
	return nil
}

// spec builds the variant's spec flavour against the current identity.
func (w *swapLatWorkload) spec() *core.Spec {
	w.mu.RLock()
	defer w.mu.RUnlock()
	switch w.kind {
	case "bound":
		return core.AccessBound(map[*core.Microprotocol]int{w.mp: 1})
	case "route":
		return core.Route(core.NewRouteGraph().Root(w.h))
	default:
		return core.Access(w.mp)
	}
}

// worker spawns computations back to back until stopped, respawning
// whenever a swap retires the identity it compiled against.
func (w *swapLatWorkload) worker() error {
	for !w.stop.Load() {
		err := w.stack.External(w.spec(), w.ev, nil)
		if err == nil {
			continue
		}
		var re *core.ReconfiguredError
		if errors.As(err, &re) {
			w.respawns.Add(1)
			continue
		}
		return err
	}
	return nil
}

// swap performs one measured Replace: install is the time until
// Reconfigure returns (the successor epoch is live and admitting), settle
// additionally waits for the superseded epoch to drain its in-flight
// computations.
func (w *swapLatWorkload) swap(ver int) (install, settle time.Duration, err error) {
	w.mu.RLock()
	oldName := w.name
	w.mu.RUnlock()
	nextName := fmt.Sprintf("hot@v%d", ver)
	next := core.NewMicroprotocol(nextName)
	h := next.AddHandler("visit", w.visit)

	superseded := w.stack.CurrentEpoch()
	start := time.Now()
	if err := w.stack.Reconfigure(func(e *core.Epoch) { e.Replace(oldName, next) }); err != nil {
		return 0, 0, err
	}
	install = time.Since(start)

	w.mu.Lock()
	w.name, w.mp, w.h = nextName, next, h
	w.mu.Unlock()

	<-w.stack.EpochDrained(superseded)
	settle = time.Since(start)
	return install, settle, nil
}

// pctile returns the q-quantile (0 ≤ q ≤ 1) of a sorted-in-place sample.
func pctile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := int(q * float64(len(ds)-1))
	return ds[i]
}

// E13SwapLatency measures what a live reconfiguration costs while traffic
// is flowing: `workers` goroutines keep computations in flight over one
// hot microprotocol, and the probe Replaces it `swaps` times back to
// back. Two latencies per swap:
//
//   - install: Reconfigure returns — the successor epoch is published and
//     new spawns land on it. This is the window during which spawns can
//     lose the compile-vs-install race and must respawn.
//   - settle: the superseded epoch has drained — every computation
//     admitted before the swap has finished on the old identity. Bounded
//     below by the handler work still in flight at swap time.
//
// Respawns counts spawns that raced a swap and retried; with `swaps`
// swaps against `workers` workers it stays O(workers·swaps) — respawn
// storms would indicate admission livelock.
func E13SwapLatency(workers, swaps int, work time.Duration) *Table {
	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("live-reconfiguration latency (%d workers, %d swaps, %v handler work)", workers, swaps, work),
		Header: []string{"controller", "install p50 µs", "install p99 µs", "settle p50 µs", "settle p99 µs", "respawns"},
	}
	for _, v := range SwapSafe() {
		w := newSwapLatWorkload(v, work)
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = w.worker()
			}(i)
		}
		// Let traffic reach steady state before the first swap.
		time.Sleep(4 * work)

		installs := make([]time.Duration, 0, swaps)
		settles := make([]time.Duration, 0, swaps)
		var swapErr error
		for s := 1; s <= swaps; s++ {
			install, settle, err := w.swap(s)
			if err != nil {
				swapErr = err
				break
			}
			installs = append(installs, install)
			settles = append(settles, settle)
			time.Sleep(2 * work)
		}
		w.stop.Store(true)
		wg.Wait()
		if swapErr == nil {
			for _, err := range errs {
				if err != nil {
					swapErr = err
					break
				}
			}
		}
		if swapErr == nil {
			swapErr = w.stack.Close()
		}
		if swapErr != nil {
			panic(fmt.Sprintf("E13 %s: %v", v.Name, swapErr))
		}
		t.AddRow(v.Name,
			fmt.Sprintf("%.0f", float64(pctile(installs, 0.50).Nanoseconds())/1e3),
			fmt.Sprintf("%.0f", float64(pctile(installs, 0.99).Nanoseconds())/1e3),
			fmt.Sprintf("%.0f", float64(pctile(settles, 0.50).Nanoseconds())/1e3),
			fmt.Sprintf("%.0f", float64(pctile(settles, 0.99).Nanoseconds())/1e3),
			fmt.Sprintf("%d", w.respawns.Load()),
		)
	}
	t.Note("install: Reconfigure returns, successor epoch admitting; settle: superseded epoch drained; settle floor is the handler work in flight at swap time")
	t.Note("tso and wait-die are excluded: their pointer-keyed lock tables are not epoch-aware (see internal/chaos swap storm)")
	return t
}
