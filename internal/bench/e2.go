package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// CallWorkload is the E2 micro-benchmark fixture: one microprotocol with
// one empty handler, exercised by computations of a fixed number of
// synchronous calls. With no contention and no handler work, the measured
// time is pure framework + concurrency-control overhead — the quantity
// behind the paper's §7 claim that "the overhead incurred by J-SAMOA's
// concurrency control algorithms ... is relatively low".
type CallWorkload struct {
	stack *core.Stack
	et    *core.EventType
	spec  *core.Spec
	calls int
}

// NewCallWorkload builds the fixture for a variant with the given number
// of handler calls per computation.
func NewCallWorkload(v Variant, callsPerComp int) *CallWorkload {
	return newCallWorkload(v, callsPerComp, nil)
}

// newCallWorkload optionally routes the stack and controller through a
// deterministic scheduler (E10 measures the cost of doing so).
func newCallWorkload(v Variant, callsPerComp int, s *sched.Scheduler) *CallWorkload {
	w := &CallWorkload{calls: callsPerComp}
	ctrl := v.New()
	var opts []core.StackOption
	if s != nil {
		if sc, ok := ctrl.(sched.Schedulable); ok {
			sc.SetBlocker(s)
		}
		opts = append(opts, core.WithHook(s))
	}
	w.stack = core.NewStack(ctrl, opts...)
	mp := core.NewMicroprotocol("mp")
	mp.SetSnapshotter(nopSnapshot{}) // lets rollback controllers run too
	h := mp.AddHandler("h", func(*core.Context, core.Message) error { return nil })
	w.stack.Register(mp)
	w.et = core.NewEventType("e")
	w.stack.Bind(w.et, h)
	switch v.Kind {
	case "bound":
		w.spec = core.AccessBound(map[*core.Microprotocol]int{mp: callsPerComp})
	case "route":
		w.spec = core.Route(core.NewRouteGraph().Root(h))
	default:
		w.spec = core.Access(mp)
	}
	return w
}

// RunComputation executes one computation making the configured calls.
func (w *CallWorkload) RunComputation() error {
	return w.stack.Isolated(w.spec, func(ctx *core.Context) error {
		for i := 0; i < w.calls; i++ {
			if err := ctx.Trigger(w.et, nil); err != nil {
				return err
			}
		}
		return nil
	})
}

// RunSpawnOnly executes one empty computation (spawn/complete only).
func (w *CallWorkload) RunSpawnOnly() error {
	return w.stack.Isolated(w.spec, nil)
}

// E2Overhead measures per-spawn and per-call costs of every controller and
// the overhead relative to the None (Cactus-model) baseline.
func E2Overhead(comps, callsPerComp int) *Table {
	t := &Table{
		ID:     "E2",
		Title:  fmt.Sprintf("concurrency-control overhead (%d computations × %d calls, uncontended)", comps, callsPerComp),
		Header: []string{"controller", "ns/spawn", "ns/call", "call overhead vs none"},
	}
	var baseCall float64
	for _, v := range Variants() {
		w := NewCallWorkload(v, callsPerComp)
		// Warm up lazy state.
		for i := 0; i < 100; i++ {
			if err := w.RunComputation(); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		for i := 0; i < comps; i++ {
			if err := w.RunSpawnOnly(); err != nil {
				panic(err)
			}
		}
		spawnNs := float64(time.Since(start).Nanoseconds()) / float64(comps)

		start = time.Now()
		for i := 0; i < comps; i++ {
			if err := w.RunComputation(); err != nil {
				panic(err)
			}
		}
		total := float64(time.Since(start).Nanoseconds()) / float64(comps)
		callNs := (total - spawnNs) / float64(callsPerComp)
		if callNs < 0 {
			callNs = 0
		}
		if v.Name == "none" {
			baseCall = callNs
		}
		over := "—"
		if v.Name != "none" && baseCall > 0 {
			over = fmt.Sprintf("+%.0f ns (%.1fx)", callNs-baseCall, callNs/baseCall)
		}
		t.AddRow(v.Name, fmt.Sprintf("%.0f", spawnNs), fmt.Sprintf("%.0f", callNs), over)
	}
	t.Note("expected: a small constant per call — 'relatively low' next to real handler work (paper §7)")
	return t
}
