package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ctp"
	"repro/internal/simnet"
)

// Transport is the E9 fixture: one ctp connection under a chosen layer
// composition and network adversity, measuring goodput and the repair
// machinery at work. It is the evaluation of the repository's second
// protocol system — the configurable transport in the Cactus/CTP
// tradition the paper builds on.
type Transport struct {
	net      *simnet.Network
	a, b     *ctp.Endpoint
	reliable bool
	got      atomic.Int64
}

// TransportShape selects an E9 composition/adversity point.
type TransportShape struct {
	Name                           string
	Reliable, Ordered, Checksummed bool
	Loss, Corrupt                  float64
}

// TransportShapes returns the E9 grid.
func TransportShapes() []TransportShape {
	return []TransportShape{
		{Name: "raw datagram, clean"},
		{Name: "checksum, clean", Checksummed: true},
		{Name: "reliable, clean", Reliable: true},
		{Name: "rel+ord, clean", Reliable: true, Ordered: true},
		{Name: "rel+ord+sum, clean", Reliable: true, Ordered: true, Checksummed: true},
		{Name: "rel+ord+sum, lossy 20%", Reliable: true, Ordered: true, Checksummed: true, Loss: 0.2},
		{Name: "rel+ord+sum, corrupt 20%", Reliable: true, Ordered: true, Checksummed: true, Corrupt: 0.2},
	}
}

// NewTransport builds the fixture.
func NewTransport(v Variant, shape TransportShape, seed int64) (*Transport, error) {
	tr := &Transport{reliable: shape.Reliable}
	tr.net = simnet.New(simnet.Config{
		Nodes:       2,
		MinDelay:    20 * time.Microsecond,
		MaxDelay:    200 * time.Microsecond,
		LossProb:    shape.Loss,
		CorruptProb: shape.Corrupt,
		Seed:        seed,
	})
	kind := ctp.SpecBasic
	switch v.Kind {
	case "bound":
		kind = ctp.SpecBound
	case "route":
		kind = ctp.SpecRoute
	}
	mk := func(id, peer simnet.NodeID, deliver func([]byte)) (*ctp.Endpoint, error) {
		return ctp.NewEndpoint(ctp.Config{
			Net: tr.net, ID: id, Peer: peer,
			Reliable: shape.Reliable, Ordered: shape.Ordered, Checksummed: shape.Checksummed,
			RTO:        10 * time.Millisecond,
			Controller: v.New(), SpecKind: kind,
			Deliver: deliver,
		})
	}
	var err error
	if tr.a, err = mk(0, 1, nil); err != nil {
		return nil, err
	}
	if tr.b, err = mk(1, 0, func([]byte) { tr.got.Add(1) }); err != nil {
		return nil, err
	}
	tr.a.Start()
	tr.b.Start()
	return tr, nil
}

// Run sends msgs messages of size bytes each and waits for delivery
// (reliable shapes) or quiescence (unreliable), returning the elapsed
// time and the delivered count.
func (tr *Transport) Run(msgs, size int) (time.Duration, int64, error) {
	payload := make([]byte, size)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	var sendErr error
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := tr.a.Send(payload); err != nil {
				sendErr = err
				return
			}
		}
	}()
	wg.Wait()
	if sendErr != nil {
		return 0, 0, sendErr
	}
	deadline := time.Now().Add(30 * time.Second)
	for tr.got.Load() < int64(msgs) {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Microsecond)
		if !tr.reliable && time.Since(start) > 150*time.Millisecond {
			break // no repair machinery: what's lost stays lost
		}
	}
	return time.Since(start), tr.got.Load(), nil
}

// Stop tears the fixture down and returns endpoint errors.
func (tr *Transport) Stop() []error {
	tr.a.Stop()
	tr.b.Stop()
	tr.net.Close()
	return append(tr.a.Errs(), tr.b.Errs()...)
}

// Retransmits reports sender-side retransmissions.
func (tr *Transport) Retransmits() uint64 { return tr.a.Retransmits() }

// BadFrames reports checksum rejections at either end.
func (tr *Transport) BadFrames() uint64 { return tr.a.BadFrames() + tr.b.BadFrames() }

// E9Transport measures the configurable transport across the composition
// grid under VCAbasic.
func E9Transport(msgs, size int) *Table {
	t := &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("configurable transport (ctp): %d msgs × %dB under vca-basic", msgs, size),
		Header: []string{"composition / link", "delivered", "time", "msgs/s", "retransmits", "bad frames"},
	}
	v, _ := VariantByName("vca-basic")
	for _, shape := range TransportShapes() {
		tr, err := NewTransport(v, shape, 31)
		if err != nil {
			panic(fmt.Sprintf("E9 %s: %v", shape.Name, err))
		}
		elapsed, got, err := tr.Run(msgs, size)
		retr, bad := tr.Retransmits(), tr.BadFrames()
		if errs := tr.Stop(); len(errs) > 0 {
			panic(fmt.Sprintf("E9 %s: %v", shape.Name, errs[0]))
		}
		if err != nil {
			panic(fmt.Sprintf("E9 %s: %v", shape.Name, err))
		}
		t.AddRow(shape.Name,
			fmt.Sprintf("%d/%d", got, msgs),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(got)/elapsed.Seconds()),
			fmt.Sprint(retr), fmt.Sprint(bad))
	}
	t.Note("expected: each layer costs a little goodput on a clean link; under loss or corruption")
	t.Note("the full stack delivers everything via retransmission/checksum-drop while raw datagrams lose;")
	t.Note("the protocol-composition flexibility is the Cactus/CTP heritage the paper builds on")
	return t
}
